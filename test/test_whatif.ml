(* What-if warm-start engine: delta algebra semantics, invalidation
   footprints, and the headline property — a warm [Design_strategy.rerun]
   is bit-identical to a cold run on the perturbed problem, for every
   delta class across every slack × bus policy. *)

module Json = Ftes_util.Json
module Prng = Ftes_util.Prng
module Problem = Ftes_model.Problem
module Application = Ftes_model.Application
module Design = Ftes_model.Design
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Preflight = Ftes_analyze.Preflight
module Delta = Ftes_whatif.Delta
module Reuse = Ftes_whatif.Reuse
module Request = Ftes_driver.Request
module Response = Ftes_driver.Response
module Daemon = Ftes_driver.Daemon
module Verify = Ftes_verify.Verify
module Whatif_rules = Ftes_verify.Whatif_rules
module Subject = Ftes_verify.Subject
module Report = Ftes_verify.Report

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let hex = Printf.sprintf "%h"

let ints a = String.concat "," (Array.to_list (Array.map string_of_int a))

(* --- bit-exact signatures ---
   Floats are rendered with %h (hex float literals) so two solutions
   compare equal iff their bits do; the signature covers every field
   the payload fingerprint derives from. *)

let solution_sig = function
  | None -> "none"
  | Some (s : Design_strategy.solution) ->
      let r = s.Design_strategy.result in
      let d = r.Redundancy_opt.design in
      String.concat "|"
        [ hex r.Redundancy_opt.cost;
          hex r.Redundancy_opt.schedule_length;
          hex r.Redundancy_opt.slack;
          hex r.Redundancy_opt.margin;
          hex s.Design_strategy.verdict.Ftes_sfp.Sfp.reliability_per_hour;
          hex s.Design_strategy.verdict.Ftes_sfp.Sfp.per_iteration_failure;
          string_of_int s.Design_strategy.explored;
          ints d.Design.members;
          ints d.Design.levels;
          ints d.Design.reexecs;
          ints d.Design.mapping ]

let step_sig (st : Design_strategy.step) =
  Printf.sprintf "%s:%s"
    (ints st.Design_strategy.step_members)
    (match st.Design_strategy.step_verdict with
    | `Schedulable c -> "ok@" ^ hex c
    | `Unschedulable -> "dead")

let trail_sig trail = String.concat ";" (List.map step_sig trail)

let reuse_sane name (r : Reuse.t) =
  Alcotest.(check bool)
    (name ^ ": reuse class known") true
    (List.mem r.Reuse.delta_class Delta.class_names);
  List.iter
    (fun (field, v) ->
      if v < 0 then Alcotest.failf "%s: reuse.%s negative (%d)" name field v)
    [ ("sfp_kept", r.Reuse.sfp_kept);
      ("sfp_dropped", r.Reuse.sfp_dropped);
      ("evals_kept", r.Reuse.evals_kept);
      ("evals_dropped", r.Reuse.evals_dropped);
      ("probes_kept", r.Reuse.probes_kept);
      ("probes_dropped", r.Reuse.probes_dropped);
      ("witnesses_rechecked", r.Reuse.witnesses_rechecked) ];
  Alcotest.(check bool)
    (name ^ ": replayed prefix within trail")
    true
    (r.Reuse.steps_replayed <= r.Reuse.steps_total)

(* The property: rerun from a recorded base = cold run on the perturbed
   problem, bit for bit (solution, trail, explored). *)
let check_bit_identity name config problem delta =
  let base = Design_strategy.run_recorded ~config problem in
  match Design_strategy.rerun ~from:base delta with
  | Error e -> Alcotest.failf "%s: generated delta rejected: %s" name e
  | Ok (warm, reuse) ->
      let perturbed = ok_exn (Delta.apply problem delta) in
      let config' =
        match Delta.kmax_override delta with
        | Some k -> Config.with_kmax k config
        | None -> config
      in
      let cold = Design_strategy.run_recorded ~config:config' perturbed in
      Alcotest.(check string)
        (name ^ ": solution bits")
        (solution_sig cold.Design_strategy.rec_solution)
        (solution_sig warm.Design_strategy.rec_solution);
      Alcotest.(check int)
        (name ^ ": explored")
        cold.Design_strategy.rec_explored warm.Design_strategy.rec_explored;
      Alcotest.(check string)
        (name ^ ": trail")
        (trail_sig cold.Design_strategy.rec_trail)
        (trail_sig warm.Design_strategy.rec_trail);
      Alcotest.(check string)
        (name ^ ": reuse tagged with the delta class")
        (Delta.class_name delta) reuse.Reuse.delta_class;
      reuse_sane name reuse

(* One alcotest case per delta class: every slack mode (including the
   randomized per-process and checkpointed ones) crossed with every bus
   policy, fresh deltas per cell. *)
let test_class cls () =
  let prng = Prng.create (0xC0FFEE + Hashtbl.hash cls) in
  let problem = Helpers.small_problem ~n:5 ~lib:2 ~levels:2 (Hashtbl.hash cls) in
  let n = Problem.n_processes problem in
  List.iteri
    (fun si slack ->
      List.iter
        (fun (bus_name, bus) ->
          let config =
            Config.default |> Config.with_slack slack |> Config.with_bus bus
          in
          let delta = Helpers.delta_of_class prng problem cls in
          let name = Printf.sprintf "%s/slack%d/%s" cls si bus_name in
          check_bit_identity name config problem delta)
        Helpers.named_bus_policies)
    (Helpers.slack_policies prng n)

(* Chained deltas: the recorded state returned by a rerun is itself a
   valid warm-start base (deltas compose). *)
let test_chained_rerun () =
  let prng = Prng.create 2026 in
  let problem = Helpers.small_problem 11 in
  let config = Config.default in
  let recorded = ref (Design_strategy.run_recorded ~config problem) in
  let current = ref problem in
  for step = 1 to 4 do
    let delta, perturbed = Helpers.perturbed_problem prng !current in
    match Design_strategy.rerun ~from:!recorded delta with
    | Error e ->
        Alcotest.failf "chain step %d (%s): rejected: %s" step
          (Delta.class_name delta) e
    | Ok (warm, reuse) ->
        let config' =
          match Delta.kmax_override delta with
          | Some k -> Config.with_kmax k config
          | None -> config
        in
        let cold = Design_strategy.run_recorded ~config:config' perturbed in
        Alcotest.(check string)
          (Printf.sprintf "chain step %d (%s): solution bits" step
             (Delta.class_name delta))
          (solution_sig cold.Design_strategy.rec_solution)
          (solution_sig warm.Design_strategy.rec_solution);
        reuse_sane (Printf.sprintf "chain step %d" step) reuse;
        (* Kmax_set leaves the instance untouched, so the chain keeps
           perturbing the same problem; every other class rebases. *)
        (match Delta.kmax_override delta with
        | Some _ -> ()
        | None -> current := perturbed);
        recorded := warm
  done

(* --- apply semantics --- *)

let deadline p = p.Problem.app.Application.deadline_ms
let period p = p.Problem.app.Application.period_ms
let gamma p = p.Problem.app.Application.gamma

let test_apply_globals () =
  let problem = Helpers.small_problem 3 in
  let d = deadline problem in
  let p' = ok_exn (Delta.apply problem (Delta.Deadline_scale 0.5)) in
  Alcotest.(check bool) "deadline scaled bit-exactly" true
    (Float.equal (deadline p') (d *. 0.5));
  Alcotest.(check bool) "period untouched by a deadline delta" true
    (Float.equal (period p') (period problem));
  let p'' = ok_exn (Delta.apply problem (Delta.Period_set (period problem *. 2.))) in
  Alcotest.(check bool) "period replaced" true
    (Float.equal (period p'') (period problem *. 2.));
  let g = gamma problem *. 0.9 in
  let p3 = ok_exn (Delta.apply problem (Delta.Gamma_set g)) in
  Alcotest.(check bool) "gamma replaced" true (Float.equal (gamma p3) g);
  (* Kmax_set does not touch the instance at all. *)
  let p4 = ok_exn (Delta.apply problem (Delta.Kmax_set 3)) in
  Alcotest.(check bool) "kmax-set leaves the problem untouched" true
    (p4 == problem);
  Alcotest.(check (option int)) "kmax override carried" (Some 3)
    (Delta.kmax_override (Delta.Kmax_set 3));
  Alcotest.(check (option int)) "no override for other classes" None
    (Delta.kmax_override (Delta.Deadline_scale 0.9))

let test_apply_tables () =
  let problem = Helpers.small_problem 4 in
  let p' = ok_exn (Delta.apply problem (Delta.Wcet_scale { node = 0; factor = 1.25 })) in
  let levels = Problem.levels problem 0 in
  for level = 1 to levels do
    for proc = 0 to Problem.n_processes problem - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "wcet(0,%d,%d) scaled" level proc)
        true
        (Float.equal
           (Problem.wcet p' ~node:0 ~level ~proc)
           (Problem.wcet problem ~node:0 ~level ~proc *. 1.25));
      Alcotest.(check bool)
        (Printf.sprintf "wcet(1,%d,%d) untouched" level proc)
        true
        (Float.equal
           (Problem.wcet p' ~node:1 ~level ~proc)
           (Problem.wcet problem ~node:1 ~level ~proc))
    done
  done;
  let cell = Problem.wcet problem ~node:1 ~level:1 ~proc:0 in
  let p'' =
    ok_exn
      (Delta.apply problem
         (Delta.Hversion_wcet_set
            { node = 1; level = 1; proc = 0; wcet_ms = cell *. 1.1 }))
  in
  Alcotest.(check bool) "single wcet cell replaced" true
    (Float.equal (Problem.wcet p'' ~node:1 ~level:1 ~proc:0) (cell *. 1.1));
  Alcotest.(check bool) "neighbouring cell untouched" true
    (Float.equal
       (Problem.wcet p'' ~node:1 ~level:1 ~proc:1)
       (Problem.wcet problem ~node:1 ~level:1 ~proc:1))

let test_apply_library_shape () =
  let problem = Helpers.small_problem 5 in
  let m = Problem.n_library problem in
  let src = Problem.node problem 0 in
  let clone =
    Ftes_model.Platform.node_type
      ~name:(src.Ftes_model.Platform.node_name ^ "-clone")
      ~versions:src.Ftes_model.Platform.versions
  in
  let p' = ok_exn (Delta.apply problem (Delta.Node_add clone)) in
  Alcotest.(check int) "node-add grows the library" (m + 1) (Problem.n_library p');
  Alcotest.(check string) "appended node carries its name"
    (src.Ftes_model.Platform.node_name ^ "-clone")
    (Problem.node p' m).Ftes_model.Platform.node_name;
  let p'' = ok_exn (Delta.apply problem (Delta.Node_remove 0)) in
  Alcotest.(check int) "node-remove shrinks the library" (m - 1)
    (Problem.n_library p'');
  Alcotest.(check string) "higher indices shift down"
    (Problem.node problem 1).Ftes_model.Platform.node_name
    (Problem.node p'' 0).Ftes_model.Platform.node_name

let is_error name = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: expected Error, got Ok" name

let test_apply_rejects () =
  let problem = Helpers.small_problem 6 in
  is_error "non-positive deadline" (Delta.apply problem (Delta.Deadline_set 0.));
  is_error "non-positive deadline scale"
    (Delta.apply problem (Delta.Deadline_scale (-1.)));
  is_error "gamma out of (0,1)" (Delta.apply problem (Delta.Gamma_set 1.0));
  is_error "node index out of range"
    (Delta.apply problem (Delta.Node_remove (Problem.n_library problem)));
  is_error "wcet-scale node out of range"
    (Delta.apply problem
       (Delta.Wcet_scale { node = Problem.n_library problem; factor = 1.1 }));
  is_error "pfail out of [0,1)"
    (Delta.apply problem
       (Delta.Hversion_pfail_set { node = 0; level = 1; proc = 0; pfail = 1.5 }));
  (* A cost edit that breaks the hardening monotonicity (cost must
     strictly increase with level) is caught by the checked constructor. *)
  let top = Problem.levels problem 0 in
  if top >= 2 then
    is_error "cost edit breaking level monotonicity"
      (Delta.apply problem
         (Delta.Hversion_cost_set
            { node = 0; level = 1;
              cost = Problem.cost problem ~node:0 ~level:top *. 2. }));
  (* Removing the last library node can never yield a valid instance. *)
  let solo = Helpers.small_problem ~lib:1 7 in
  is_error "removing the last node" (Delta.apply solo (Delta.Node_remove 0))

(* --- footprint classification --- *)

let test_footprint () =
  let problem = Helpers.small_problem 8 in
  let d = deadline problem in
  (* Deadline-only deltas keep evals with a slack remap to the new
     deadline; everything else stays clean. *)
  let fp = Delta.footprint problem (Delta.Deadline_scale 0.9) in
  (match fp.Delta.eval_policy with
  | `Remap_slack d' ->
      Alcotest.(check bool) "remap targets the perturbed deadline" true
        (Float.equal d' (d *. 0.9))
  | `Keep | `Drop -> Alcotest.fail "deadline delta must remap eval slack");
  Alcotest.(check bool) "deadline delta leaves tables clean" false
    (fp.Delta.tables_dirty ~node:0 ~level:1);
  Alcotest.(check (option int)) "identity node map" (Some 1) (fp.Delta.node_map 1);
  (* Globals baked into stored results drop the eval memo wholesale. *)
  let fp_kmax = Delta.footprint problem (Delta.Kmax_set 4) in
  (match fp_kmax.Delta.eval_policy with
  | `Drop -> ()
  | `Keep | `Remap_slack _ -> Alcotest.fail "kmax delta must drop evals");
  Alcotest.(check bool) "kmax delta drops probes" false fp_kmax.Delta.keep_probes;
  Alcotest.(check bool) "kmax delta keeps SFP tables clean" false
    (fp_kmax.Delta.pfail_dirty ~node:0 ~level:1);
  (* A WCET edit dirties exactly its node's table cells. *)
  let fp_w = Delta.footprint problem (Delta.Wcet_scale { node = 0; factor = 1.1 }) in
  Alcotest.(check bool) "edited node dirty" true
    (fp_w.Delta.tables_dirty ~node:0 ~level:1);
  Alcotest.(check bool) "other node clean" false
    (fp_w.Delta.tables_dirty ~node:1 ~level:1);
  Alcotest.(check bool) "wcet edit leaves pfail clean" false
    (fp_w.Delta.pfail_dirty ~node:0 ~level:1);
  (* A pfail edit dirties the reliability side only. *)
  let p = Problem.pfail problem ~node:1 ~level:1 ~proc:0 in
  let fp_p =
    Delta.footprint problem
      (Delta.Hversion_pfail_set { node = 1; level = 1; proc = 0; pfail = p })
  in
  Alcotest.(check bool) "pfail cell dirty" true
    (fp_p.Delta.pfail_dirty ~node:1 ~level:1);
  Alcotest.(check bool) "pfail edit leaves wcet/cost clean" false
    (fp_p.Delta.tables_dirty ~node:1 ~level:1);
  (* Library remaps. *)
  let fp_r = Delta.footprint problem (Delta.Node_remove 0) in
  Alcotest.(check (option int)) "removed node unmapped" None (fp_r.Delta.node_map 0);
  Alcotest.(check (option int)) "survivor shifts down" (Some 0)
    (fp_r.Delta.node_map 1)

let test_migration_stats () =
  let problem = Helpers.small_problem 9 in
  let config = Config.default in
  let base = Design_strategy.run_recorded ~config problem in
  let cache =
    match base.Design_strategy.rec_cache with
    | Some c -> c
    | None -> Alcotest.fail "memoizing config must record its cache"
  in
  (* Deadline-only: everything survives (evals via the slack remap). *)
  let fp = Delta.footprint problem (Delta.Deadline_scale 0.9) in
  let _, mig = Redundancy_opt.migrate_cache ~base:problem ~footprint:fp cache in
  Alcotest.(check int) "deadline delta drops no SFP table" 0
    mig.Redundancy_opt.mig_sfp_dropped;
  Alcotest.(check int) "deadline delta drops no eval" 0
    mig.Redundancy_opt.mig_evals_dropped;
  Alcotest.(check bool) "a real walk populated the eval memo" true
    (mig.Redundancy_opt.mig_evals_kept > 0);
  (* A kmax change keeps the SFP layer but drops every stored result. *)
  let fp_kmax = Delta.footprint problem (Delta.Kmax_set 4) in
  let _, mig_kmax =
    Redundancy_opt.migrate_cache ~base:problem ~footprint:fp_kmax cache
  in
  Alcotest.(check int) "kmax delta drops no SFP table" 0
    mig_kmax.Redundancy_opt.mig_sfp_dropped;
  Alcotest.(check int) "kmax delta keeps no eval" 0
    mig_kmax.Redundancy_opt.mig_evals_kept;
  Alcotest.(check int) "kmax delta keeps no probe" 0
    mig_kmax.Redundancy_opt.mig_probes_kept;
  (* A WCET edit on node 0 keeps only entries that avoid node 0. *)
  let fp_w = Delta.footprint problem (Delta.Wcet_scale { node = 0; factor = 1.1 }) in
  let _, mig_w = Redundancy_opt.migrate_cache ~base:problem ~footprint:fp_w cache in
  Alcotest.(check bool) "wcet edit invalidates the edited node's entries" true
    (mig_w.Redundancy_opt.mig_sfp_dropped > 0
    || mig_w.Redundancy_opt.mig_evals_dropped > 0)

(* --- pre-flight reuse (recheck / retarget) --- *)

let test_preflight_recheck () =
  let problem = Helpers.small_problem 10 in
  let kmax = Config.default.Config.kmax in
  (* Feasible report: no witnesses, recheck is vacuously true. *)
  let pf = Preflight.run ~kmax problem in
  Alcotest.(check bool) "small problem pre-flight feasible" true
    (Preflight.feasible pf);
  Alcotest.(check bool) "vacuous recheck" true (Preflight.recheck pf problem);
  (* Crush the deadline: the report must carry witnesses that hold on
     their own problem but fail against the original, loose one. *)
  let tight = ok_exn (Delta.apply problem (Delta.Deadline_scale 1e-4)) in
  let pf_tight = Preflight.run ~kmax tight in
  Alcotest.(check bool) "crushed deadline proven infeasible" false
    (Preflight.feasible pf_tight);
  Alcotest.(check bool) "witnesses hold on their own problem" true
    (Preflight.recheck pf_tight tight);
  Alcotest.(check bool) "witnesses fail against the loose problem" false
    (Preflight.recheck pf_tight problem);
  (* Retarget rebinds the report to the perturbed problem. *)
  let tighter = ok_exn (Delta.apply tight (Delta.Deadline_scale 0.5)) in
  let pf' = Preflight.retarget pf_tight tighter in
  Alcotest.(check bool) "retargeted report reads the new problem" true
    (pf'.Preflight.problem == tighter)

let test_preflight_reuse_bit_identity () =
  let problem = Helpers.small_problem 12 in
  let config = Config.default in
  let kmax = config.Config.kmax in
  let pf = Preflight.run ~kmax problem in
  let base = Design_strategy.run_recorded ~preflight:pf ~config problem in
  (* Tightening delta: the recorded pre-flight is retargeted, not
     re-derived, and the walk stays bit-identical to a cold run with a
     fresh pre-flight on the perturbed problem. *)
  let delta = Delta.Deadline_scale 0.9 in
  Alcotest.(check bool) "deadline tightening cannot weaken" true
    (Delta.cannot_weaken problem delta);
  (match Design_strategy.rerun ~from:base delta with
  | Error e -> Alcotest.failf "tightening rerun rejected: %s" e
  | Ok (warm, reuse) ->
      Alcotest.(check bool) "pre-flight reused" true reuse.Reuse.preflight_reused;
      let perturbed = ok_exn (Delta.apply problem delta) in
      let cold =
        Design_strategy.run_recorded
          ~preflight:(Preflight.run ~kmax perturbed)
          ~config perturbed
      in
      Alcotest.(check string) "pruned warm walk bit-identical"
        (solution_sig cold.Design_strategy.rec_solution)
        (solution_sig warm.Design_strategy.rec_solution);
      Alcotest.(check string) "pruned warm trail bit-identical"
        (trail_sig cold.Design_strategy.rec_trail)
        (trail_sig warm.Design_strategy.rec_trail));
  (* Widening delta: reuse would be unsound, so it must not happen. *)
  let widen = Delta.Deadline_scale 1.1 in
  Alcotest.(check bool) "deadline widening can weaken" false
    (Delta.cannot_weaken problem widen);
  match Design_strategy.rerun ~from:base widen with
  | Error e -> Alcotest.failf "widening rerun rejected: %s" e
  | Ok (_, reuse) ->
      Alcotest.(check bool) "pre-flight not reused on widening" false
        reuse.Reuse.preflight_reused;
      Alcotest.(check int) "no witnesses re-checked without reuse" 0
        reuse.Reuse.witnesses_rechecked

(* --- wire codec --- *)

let test_delta_json_roundtrip () =
  let prng = Prng.create 4242 in
  let problem = Helpers.small_problem 13 in
  List.iter
    (fun cls ->
      for _ = 1 to 5 do
        let delta = Helpers.delta_of_class prng problem cls in
        let bytes = Json.to_string ~minify:true (Delta.to_json delta) in
        let reparsed =
          ok_exn (Delta.of_json (ok_exn (Json.of_string bytes)))
        in
        Alcotest.(check string)
          (Printf.sprintf "%s: re-emitted bytes stable" cls)
          bytes
          (Json.to_string ~minify:true (Delta.to_json reparsed))
      done)
    Delta.class_names

let test_delta_json_rejects () =
  let parse s = Result.bind (Json.of_string s) Delta.of_json in
  is_error "unknown class" (parse {|{"class": "frobnicate", "factor": 2}|});
  is_error "missing class" (parse {|{"factor": 2}|});
  is_error "non-positive factor"
    (parse {|{"class": "deadline-scale", "factor": 0}|});
  is_error "negative node index"
    (parse {|{"class": "wcet-scale", "node": -1, "factor": 1.1}|});
  is_error "missing field" (parse {|{"class": "deadline-set"}|});
  is_error "pfail out of range"
    (parse
       {|{"class": "hversion-pfail-set", "node": 0, "level": 1, "proc": 0, "pfail": 1.5}|})

let test_reuse_json_roundtrip () =
  let r =
    { Reuse.delta_class = "wcet-scale";
      sfp_kept = 12; sfp_dropped = 3;
      evals_kept = 40; evals_dropped = 2;
      probes_kept = 0; probes_dropped = 7;
      steps_replayed = 2; steps_total = 3;
      preflight_reused = true; witnesses_rechecked = 1 }
  in
  let bytes = Json.to_string ~minify:true (Reuse.to_json r) in
  let r' = ok_exn (Reuse.of_json (ok_exn (Json.of_string bytes))) in
  Alcotest.(check string) "reuse codec round-trips" bytes
    (Json.to_string ~minify:true (Reuse.to_json r'))

(* --- generator sanity (Helpers.small_delta / perturbed_problem) --- *)

let test_generators_always_apply () =
  let prng = Prng.create 77 in
  let problem = Helpers.small_problem 14 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 200 do
    (* perturbed_problem raises if a generated delta fails to apply. *)
    let delta, perturbed = Helpers.perturbed_problem prng problem in
    Hashtbl.replace seen (Delta.class_name delta) ();
    match delta with
    | Delta.Kmax_set _ ->
        Alcotest.(check bool) "kmax delta leaves problem untouched" true
          (perturbed == problem)
    | _ -> ()
  done;
  (* 200 draws over 13 classes: every class must have come up. *)
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (Printf.sprintf "generator covers class %s" cls)
        true (Hashtbl.mem seen cls))
    Delta.class_names

(* --- the whatif/* rules fire on corrupted streams --- *)

let envelopes responses =
  List.map (fun r -> ok_exn (Json.of_string (Response.to_line r))) responses

let run_rules stream =
  Verify.run ~rules:Whatif_rules.all
    (Subject.with_responses
       (Subject.of_problem (Ftes_cc.Fig_examples.fig1_problem ()))
       stream)

let set key value = function
  | Json.Object fields ->
      Json.Object
        (List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) fields)
  | other -> other

let set_in_reuse key value json =
  match Json.member "telemetry" json with
  | Error _ -> json
  | Ok tel -> (
      match Json.member "whatif" tel with
      | Error _ -> json
      | Ok reuse -> set "telemetry" (set "whatif" (set key value reuse) tel) json)

let mutate_nth i f stream =
  List.mapi (fun j json -> if j = i then f json else json) stream

(* A one-shot warm request (no base_id): the daemon computes the base
   cold and replays the delta in the same request, so the single
   response carries a reuse block. *)
let whatif_stream =
  lazy
    (let caches = Daemon.create_caches () in
     envelopes
       (Daemon.run_lines ~caches
          (List.map Request.to_string
             [ ok_exn
                 (Request.make ~id:"w0"
                    ~whatif:
                      { Request.base_id = None;
                        delta = Delta.Deadline_scale 0.95 }
                    Request.Optimize (`Example "fig1")) ])))

let check_fires name rule stream =
  let report = run_rules stream in
  Alcotest.(check bool) (name ^ ": report rejects") false (Report.ok report);
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s fired" name rule)
    true
    (List.mem rule (Report.fired_rules report))

let test_rules_accept_clean_stream () =
  let stream = Lazy.force whatif_stream in
  (match Json.member "telemetry" (List.hd stream) with
  | Ok tel ->
      Alcotest.(check bool) "warm response carries a reuse block" true
        (Result.is_ok (Json.member "whatif" tel))
  | Error e -> Alcotest.failf "warm response without telemetry: %s" e);
  let report = run_rules stream in
  if not (Report.ok report) then
    Alcotest.failf "clean warm stream rejected:\n%s" (Report.to_text report)

let test_rule_mutations () =
  let stream = Lazy.force whatif_stream in
  check_fires "unknown delta class" "whatif/reuse"
    (mutate_nth 0 (set_in_reuse "class" (Json.String "frobnicate")) stream);
  check_fires "negative kept counter" "whatif/reuse"
    (mutate_nth 0
       (set_in_reuse "sfp"
          (Json.Object
             [ ("kept", Json.Number (-1.)); ("dropped", Json.Number 0.) ]))
       stream);
  check_fires "replayed prefix longer than trail" "whatif/reuse"
    (mutate_nth 0
       (set_in_reuse "steps"
          (Json.Object
             [ ("replayed", Json.Number 9.); ("total", Json.Number 1.) ]))
       stream);
  check_fires "witnesses re-checked without pre-flight reuse" "whatif/reuse"
    (mutate_nth 0
       (fun json ->
         json
         |> set_in_reuse "preflight_reused" (Json.Bool false)
         |> set_in_reuse "witnesses_rechecked" (Json.Number 2.))
       stream);
  check_fires "undecodable reuse block" "whatif/reuse"
    (mutate_nth 0
       (fun json ->
         match Json.member "telemetry" json with
         | Error _ -> json
         | Ok tel -> set "telemetry" (set "whatif" (Json.Object []) tel) json)
       stream);
  check_fires "warm response with a non-optimize verdict" "whatif/verdict"
    (mutate_nth 0 (set "verdict" (Json.String "report")) stream)

let () =
  let classes =
    List.map
      (fun cls ->
        Alcotest.test_case ("bit-identity " ^ cls) `Slow (test_class cls))
      Delta.class_names
  in
  Alcotest.run "whatif"
    [ ("bit-identity", classes);
      ( "composition",
        [ Alcotest.test_case "chained reruns" `Slow test_chained_rerun ] );
      ( "apply",
        [ Alcotest.test_case "globals" `Quick test_apply_globals;
          Alcotest.test_case "tables" `Quick test_apply_tables;
          Alcotest.test_case "library shape" `Quick test_apply_library_shape;
          Alcotest.test_case "rejects" `Quick test_apply_rejects ] );
      ( "footprint",
        [ Alcotest.test_case "classifier" `Quick test_footprint;
          Alcotest.test_case "migration stats" `Quick test_migration_stats ] );
      ( "preflight",
        [ Alcotest.test_case "recheck/retarget" `Quick test_preflight_recheck;
          Alcotest.test_case "reuse bit-identity" `Quick
            test_preflight_reuse_bit_identity ] );
      ( "wire",
        [ Alcotest.test_case "delta round-trip" `Quick test_delta_json_roundtrip;
          Alcotest.test_case "delta rejects" `Quick test_delta_json_rejects;
          Alcotest.test_case "reuse round-trip" `Quick test_reuse_json_roundtrip ]
      );
      ( "generators",
        [ Alcotest.test_case "always apply" `Quick test_generators_always_apply ]
      );
      ( "rules",
        [ Alcotest.test_case "accept clean warm stream" `Quick
            test_rules_accept_clean_stream;
          Alcotest.test_case "fire on corrupted streams" `Quick
            test_rule_mutations ] ) ]
