(* Tests for the exact branch-and-bound optimizer ([Ftes_bnb]): the
   differential harness against the reference enumeration, the
   optimality-gap golden table, the certificate JSON round-trip and
   mutation tests for every bnb/* verifier rule.

   The gap table is kept as a golden CSV under [golden/]; to
   regenerate after an intentional heuristic or bound change:

     FTES_REGEN_GOLDEN=$PWD/test/golden dune exec test/test_bnb.exe *)

module Bnb = Ftes_bnb.Bnb
module Cert = Ftes_analyze.Bnb_certificate
module Cert_io = Ftes_analyze.Bnb_certificate_io
module Preflight = Ftes_analyze.Preflight
module Config = Ftes_core.Config
module Exhaustive = Ftes_core.Exhaustive
module Redundancy_opt = Ftes_core.Redundancy_opt
module Design_strategy = Ftes_core.Design_strategy
module Subject = Ftes_verify.Subject
module Verify = Ftes_verify.Verify
module Report = Ftes_verify.Report
module Diagnostic = Ftes_verify.Diagnostic
module Pool = Ftes_par.Pool
module Csv = Ftes_util.Csv
module Json = Ftes_util.Json

let cost_of = function
  | Some r -> r.Redundancy_opt.cost
  | None -> infinity

let sl_of = function
  | Some r -> r.Redundancy_opt.schedule_length
  | None -> infinity

let audit_ok (outcome : Bnb.outcome) =
  match outcome.Bnb.audit with
  | Some report -> Report.ok report
  | None -> false

let audit_errors (outcome : Bnb.outcome) =
  match outcome.Bnb.audit with
  | Some report ->
      String.concat "; "
        (List.map
           (fun d -> d.Diagnostic.rule ^ ": " ^ d.Diagnostic.detail)
           (Report.errors report))
  | None -> "no audit attached"

(* A library with a bitwise twin of node 0, so the symmetry pruner has
   something to skip. *)
let duplicated_library seed =
  let base = Helpers.small_problem ~n:4 ~lib:2 ~levels:2 seed in
  let lib = base.Ftes_model.Problem.library in
  let twin = { lib.(0) with Ftes_model.Platform.node_name = "twin" } in
  Ftes_model.Problem.make ~app:base.Ftes_model.Problem.app
    ~library:(Array.append lib [| twin |])

(* The feasible workhorse fixture: non-trivial re-execution counts in
   the incumbent and cost-bound premises in the certificate. *)
let fixture =
  lazy
    (let problem = Helpers.small_problem ~n:4 ~lib:3 ~levels:2 42 in
     let config = Config.make ~certify:true () in
     (problem, config, Bnb.solve ~config problem))

(* --- golden optimality-gap table --- *)

let golden_name = "bnb_gap_cc.csv"

(* One row per instance: the greedy heuristic's cost against a
   certified lower bound — the proven optimum where the exact search
   is tractable (bnb-exact), the pre-flight analyzer's cost bound on
   the full cruise controller, whose 3^32-mapping space no enumeration
   closes (preflight-lb).  Both sides print round-trippable decimals,
   so the golden comparison is exact. *)
let gap_rows () =
  let heuristic config problem =
    match Design_strategy.run ~config problem with
    | Some s -> s.Design_strategy.result.Redundancy_opt.cost
    | None -> infinity
  in
  let fmt v = Printf.sprintf "%.17g" v in
  let config = Config.default in
  let cc = Ftes_cc.Cruise_control.problem () in
  let cc_lb =
    (Preflight.run ~kmax:config.Config.kmax ~slack:config.Config.slack cc)
      .Preflight.cost_lower_bound
  in
  let cc_heuristic = heuristic config cc in
  let cc_row =
    [ "cc"; "32"; "3"; fmt cc_heuristic; fmt cc_lb;
      fmt ((cc_heuristic -. cc_lb) /. cc_lb); "preflight-lb" ]
  in
  let synthetic seed =
    let problem =
      Helpers.small_problem ~n:6 ~lib:3 ~levels:3 ~ser:1e-11 ~hpd:0.25 seed
    in
    let outcome = Bnb.solve ~config problem in
    let cert = outcome.Bnb.certificate in
    [ Printf.sprintf "synthetic-%d" seed; "6"; "3";
      fmt cert.Cert.heuristic_cost; fmt cert.Cert.optimal_cost;
      (match Cert.gap cert with Some g -> fmt g | None -> "");
      "bnb-exact" ]
  in
  [ "instance"; "n"; "m"; "heuristic_cost"; "certified_lb"; "gap"; "method" ]
  :: cc_row
  :: List.map synthetic [ 1; 2; 3 ]

let () =
  match Sys.getenv_opt "FTES_REGEN_GOLDEN" with
  | Some dir ->
      let path = Filename.concat dir golden_name in
      Csv.write_file path (gap_rows ());
      Printf.printf "regenerated %s\n%!" path;
      exit 0
  | None -> ()

let golden_path name =
  let local = Filename.concat "golden" name in
  if Sys.file_exists local then local
  else Filename.concat (Filename.concat "test" "golden") name

let test_golden_gap () =
  let golden = Csv.read_file (golden_path golden_name) in
  Alcotest.(check (list (list string))) "optimality-gap table" golden
    (gap_rows ())

(* --- differential optimality (qcheck) --- *)

(* Instance shapes small enough that the reference enumeration closes
   every cell: the property then demands bit-identical optima (cost
   and tie-breaking schedule length), agreement on infeasibility, a
   clean in-process audit, a seed heuristic never below the optimum
   and a pre-flight cost bound never above it — across every slack and
   bus policy. *)
let instance_gen =
  QCheck.Gen.(
    map
      (fun (seed, n, lib, levels, paper_cell) ->
        (seed, 3 + n, 2 + lib, 1 + levels, paper_cell))
      (tup5 (0 -- 10_000) (int_bound 2) (int_bound 1) (int_bound 2) bool))

let instance =
  QCheck.make
    ~print:(fun (seed, n, lib, levels, paper_cell) ->
      Printf.sprintf "seed %d, n %d, lib %d, levels %d, %s cell" seed n lib
        levels
        (if paper_cell then "paper" else "high-ser"))
    instance_gen

let prop_differential =
  QCheck.Test.make ~count:12
    ~name:"bnb optimum = exhaustive optimum (all slack x bus policies)"
    instance
    (fun (seed, n, lib, levels, paper_cell) ->
      let ser, hpd = if paper_cell then (1e-11, 0.25) else (1e-10, 0.5) in
      let problem = Helpers.small_problem ~n ~lib ~levels ~ser ~hpd seed in
      let prng = Ftes_util.Prng.create (seed + 7) in
      List.for_all
        (fun slack ->
          List.for_all
            (fun bus ->
              let config = Config.make ~slack ~bus ~certify:true () in
              let ex = Exhaustive.run ~config problem in
              let outcome = Bnb.solve ~config problem in
              let cert = outcome.Bnb.certificate in
              let lb =
                (Preflight.run ~kmax:config.Config.kmax ~slack problem)
                  .Preflight.cost_lower_bound
              in
              if cost_of ex <> cost_of outcome.Bnb.best then
                QCheck.Test.fail_reportf "cost %g <> exhaustive %g"
                  (cost_of outcome.Bnb.best) (cost_of ex)
              else if sl_of ex <> sl_of outcome.Bnb.best then
                QCheck.Test.fail_reportf
                  "schedule length %g <> exhaustive %g"
                  (sl_of outcome.Bnb.best) (sl_of ex)
              else if not (audit_ok outcome) then
                QCheck.Test.fail_reportf "audit failed: %s"
                  (audit_errors outcome)
              else if
                cert.Cert.heuristic_cost < cert.Cert.optimal_cost -. 1e-9
              then
                QCheck.Test.fail_reportf
                  "greedy heuristic %g beat the proven optimum %g"
                  cert.Cert.heuristic_cost cert.Cert.optimal_cost
              else if
                Float.is_finite cert.Cert.optimal_cost
                && lb > cert.Cert.optimal_cost +. 1e-9
              then
                QCheck.Test.fail_reportf
                  "pre-flight cost bound %g above the optimum %g" lb
                  cert.Cert.optimal_cost
              else true)
            Helpers.bus_policies)
        (Helpers.slack_policies prng n))

(* --- symmetry, parallelism, budget, gaps --- *)

let test_symmetry_differential () =
  List.iter
    (fun seed ->
      let problem = duplicated_library seed in
      let config = Config.make ~certify:true () in
      let ex = Exhaustive.run ~config problem in
      let outcome = Bnb.solve ~config problem in
      let c = outcome.Bnb.certificate in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: symmetry pruning fired" seed)
        true
        (c.Cert.counters.Cert.pruned_symmetry > 0);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "seed %d: cost" seed)
        (cost_of ex)
        (cost_of outcome.Bnb.best);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: audit ok" seed)
        true (audit_ok outcome))
    [ 42; 7 ]

let test_parallel_matches_sequential () =
  let pool = Pool.create ~domains:2 () in
  List.iter
    (fun (name, problem) ->
      let config = Config.make ~certify:true () in
      let seq = Bnb.solve ~config problem in
      let par = Bnb.solve ~pool ~config problem in
      Alcotest.(check (float 0.0))
        (name ^ ": cost") (cost_of seq.Bnb.best) (cost_of par.Bnb.best);
      Alcotest.(check (float 0.0))
        (name ^ ": schedule length") (sl_of seq.Bnb.best)
        (sl_of par.Bnb.best);
      (match (seq.Bnb.best, par.Bnb.best) with
      | Some a, Some b ->
          Alcotest.(check bool)
            (name ^ ": same design") true
            (a.Redundancy_opt.design = b.Redundancy_opt.design)
      | None, None -> ()
      | _ -> Alcotest.fail (name ^ ": feasibility diverged"));
      Alcotest.(check bool) (name ^ ": parallel audit ok") true (audit_ok par))
    [ ("seed42", Helpers.small_problem ~n:4 ~lib:3 ~levels:2 42);
      ("seed3", Helpers.small_problem ~n:4 ~lib:3 ~levels:2 3);
      ("twin", duplicated_library 42) ]

let test_budget_exhausted () =
  let problem, config, _ = Lazy.force fixture in
  Alcotest.check_raises "limit 0 blows the budget" (Bnb.Budget_exhausted 1)
    (fun () -> ignore (Bnb.solve ~limit:0 ~config problem))

(* The exact search may strictly beat the greedy walk: on this
   instance the heuristic proves nothing (infinite seed cost) while
   the branch-and-bound still finds — and certifies — a cost-8
   design. *)
let test_bnb_beats_greedy () =
  let problem = Helpers.small_problem ~n:4 ~lib:3 ~levels:2 3 in
  let config = Config.make ~certify:true () in
  let outcome = Bnb.solve ~config problem in
  let cert = outcome.Bnb.certificate in
  Alcotest.(check bool) "greedy found nothing" false
    (Float.is_finite cert.Cert.heuristic_cost);
  Alcotest.(check bool) "bnb proved an optimum" true
    (Float.is_finite cert.Cert.optimal_cost);
  Alcotest.(check (option (float 0.0))) "gap undefined" None (Cert.gap cert);
  Alcotest.(check bool) "audit ok" true (audit_ok outcome)

let test_gap_zero_when_heuristic_optimal () =
  let _, _, outcome = Lazy.force fixture in
  Alcotest.(check (option (float 0.0)))
    "gap 0" (Some 0.0)
    (Cert.gap outcome.Bnb.certificate)

let test_infeasible_proof () =
  let problem = Helpers.small_problem ~n:4 ~lib:3 ~levels:2 1 in
  let config = Config.make ~certify:true () in
  let ex = Exhaustive.run ~config problem in
  let outcome = Bnb.solve ~config problem in
  Alcotest.(check bool) "exhaustive agrees" true (ex = None);
  Alcotest.(check bool) "no incumbent" true (outcome.Bnb.best = None);
  Alcotest.(check bool) "optimal cost unbounded" false
    (Float.is_finite outcome.Bnb.certificate.Cert.optimal_cost);
  Alcotest.(check bool) "audit ok" true (audit_ok outcome)

(* --- certificate JSON io --- *)

let test_certificate_roundtrip () =
  let _, _, outcome = Lazy.force fixture in
  let cert = outcome.Bnb.certificate in
  (match Cert_io.of_string (Cert_io.to_string cert) with
  | Ok back ->
      Alcotest.(check bool) "feasible certificate round-trips" true
        (back = cert)
  | Error e -> Alcotest.fail e);
  let infeasible =
    (Bnb.solve
       ~config:(Config.make ())
       (Helpers.small_problem ~n:4 ~lib:3 ~levels:2 1))
      .Bnb.certificate
  in
  match Cert_io.of_string (Cert_io.to_string infeasible) with
  | Ok back ->
      Alcotest.(check bool)
        "infeasible certificate round-trips (unbounded costs)" true
        (back = infeasible)
  | Error e -> Alcotest.fail e

let with_top_field json name value =
  match json with
  | Json.Object fields ->
      Json.Object
        (List.map (fun (k, v) -> if k = name then (k, value) else (k, v))
           fields)
  | other -> other

let without_top_field json name =
  match json with
  | Json.Object fields ->
      Json.Object (List.filter (fun (k, _) -> k <> name) fields)
  | other -> other

let test_certificate_versioning () =
  let _, _, outcome = Lazy.force fixture in
  let json = Cert_io.to_json outcome.Bnb.certificate in
  (match
     Cert_io.of_string
       (Json.to_string
          (with_top_field json "schema_version" (Json.Number 99.0)))
   with
  | Ok _ -> Alcotest.fail "future schema version must be rejected"
  | Error e -> Helpers.check_contains "version error" e "schema_version");
  let warnings = ref [] in
  match
    Cert_io.of_json
      ~on_warning:(fun w -> warnings := w :: !warnings)
      (without_top_field json "schema_version")
  with
  | Ok _ ->
      Alcotest.(check bool) "missing version warns" true (!warnings <> [])
  | Error e -> Alcotest.fail e

(* --- mutation tests: every bnb/* rule catches its own corruption --- *)

let bnb_subject problem config cert =
  Subject.with_bnb_certificate
    { (Subject.of_problem problem) with
      Subject.slack = config.Config.slack;
      bus = config.Config.bus }
    cert

let fired_bnb_rules problem config cert =
  let report = Verify.run (bnb_subject problem config cert) in
  List.filter
    (fun id -> String.length id >= 4 && String.sub id 0 4 = "bnb/")
    (Report.fired_rules report)

let check_mutation name expected mutate =
  let problem, config, outcome = Lazy.force fixture in
  let cert = outcome.Bnb.certificate in
  Alcotest.(check (list string))
    (name ^ ": pristine certificate passes")
    []
    (fired_bnb_rules problem config cert);
  Alcotest.(check (list string))
    (name ^ ": exactly " ^ expected ^ " fires")
    [ expected ]
    (fired_bnb_rules problem config (mutate cert))

let test_mutation_schema () =
  check_mutation "negative counter" "bnb/schema" (fun cert ->
      { cert with
        Cert.counters = { cert.Cert.counters with Cert.evaluated = -1 } })

let test_mutation_incumbent_cost () =
  check_mutation "corrupted incumbent cost" "bnb/incumbent" (fun cert ->
      match cert.Cert.incumbent with
      | Some i ->
          { cert with
            Cert.incumbent = Some { i with Cert.cost = i.Cert.cost +. 1.0 } }
      | None -> Alcotest.fail "fixture lost its incumbent")

let test_mutation_incumbent_infeasible () =
  check_mutation "reliability-violating incumbent" "bnb/incumbent"
    (fun cert ->
      match cert.Cert.incumbent with
      | Some i ->
          (* Zeroed re-executions keep the schedule valid but break the
             reliability goal, so only the feasibility re-check can
             object. *)
          { cert with
            Cert.incumbent =
              Some
                { i with
                  Cert.reexecs = Array.map (fun _ -> 0) i.Cert.reexecs } }
      | None -> Alcotest.fail "fixture lost its incumbent")

let first_cost_bound cert =
  match
    List.find_opt
      (function Cert.Cost_bound _ -> true | _ -> false)
      cert.Cert.prunes
  with
  | Some premise -> premise
  | None -> Alcotest.fail "fixture certificate carries no cost-bound premise"

let test_mutation_unsound_premise () =
  check_mutation "unsound prune premise" "bnb/prune-premise" (fun cert ->
      let target = first_cost_bound cert in
      { cert with
        Cert.prunes =
          List.map
            (fun premise ->
              if premise == target then
                match premise with
                | Cert.Cost_bound { prefix; lower_bound = _; incumbent_cost }
                  ->
                    Cert.Cost_bound
                      { prefix; lower_bound = incumbent_cost; incumbent_cost }
                | other -> other
              else premise)
            cert.Cert.prunes })

let test_mutation_dropped_premise () =
  check_mutation "silently dropped subtree" "bnb/coverage" (fun cert ->
      let target = first_cost_bound cert in
      { cert with
        Cert.prunes =
          List.filter (fun premise -> premise != target) cert.Cert.prunes;
        Cert.counters =
          { cert.Cert.counters with
            Cert.pruned_cost = cert.Cert.counters.Cert.pruned_cost - 1 } })

let test_mutation_optimal_above_heuristic () =
  check_mutation "optimum above the heuristic" "bnb/optimal" (fun cert ->
      { cert with Cert.heuristic_cost = cert.Cert.optimal_cost -. 1.0 })

let () =
  Alcotest.run "ftes_bnb"
    [ ( "differential",
        [ QCheck_alcotest.to_alcotest prop_differential;
          Alcotest.test_case "symmetry twins" `Quick
            test_symmetry_differential;
          Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "infeasibility proof" `Quick
            test_infeasible_proof ] );
      ( "gap",
        [ Alcotest.test_case "golden table" `Quick test_golden_gap;
          Alcotest.test_case "bnb beats greedy" `Quick test_bnb_beats_greedy;
          Alcotest.test_case "gap zero" `Quick
            test_gap_zero_when_heuristic_optimal ] );
      ( "engine",
        [ Alcotest.test_case "budget exhausted" `Quick test_budget_exhausted ]
      );
      ( "certificate-io",
        [ Alcotest.test_case "round-trip" `Quick test_certificate_roundtrip;
          Alcotest.test_case "versioning" `Quick test_certificate_versioning
        ] );
      ( "mutations",
        [ Alcotest.test_case "schema" `Quick test_mutation_schema;
          Alcotest.test_case "incumbent cost" `Quick
            test_mutation_incumbent_cost;
          Alcotest.test_case "incumbent feasibility" `Quick
            test_mutation_incumbent_infeasible;
          Alcotest.test_case "unsound premise" `Quick
            test_mutation_unsound_premise;
          Alcotest.test_case "dropped premise" `Quick
            test_mutation_dropped_premise;
          Alcotest.test_case "optimal bound" `Quick
            test_mutation_optimal_above_heuristic ] ) ]
