(* Unit and property tests for Ftes_util. *)

module Prng = Ftes_util.Prng
module Rounding = Ftes_util.Rounding
module Symmetric = Ftes_util.Symmetric
module Stats = Ftes_util.Stats
module Text_table = Ftes_util.Text_table
module Ascii_chart = Ftes_util.Ascii_chart
module Csv = Ftes_util.Csv

let check_float = Alcotest.(check (float 1e-12))
let check_close eps = Alcotest.(check (float eps))

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 1 and b = Prng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Prng.bits64 a <> Prng.bits64 b)

let test_prng_int_bounds () =
  let t = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int t 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_prng_int_in_bounds () =
  let t = Prng.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.int_in t (-3) 5 in
    Alcotest.(check bool) "in [-3,5]" true (v >= -3 && v <= 5)
  done

let test_prng_int_invalid () =
  let t = Prng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Prng.int_in: empty range") (fun () ->
      ignore (Prng.int_in t 2 1))

let test_prng_float_bounds () =
  let t = Prng.create 6 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_prng_float_in_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.float_in t 1.0 2.0 in
    Alcotest.(check bool) "in [1,2)" true (v >= 1.0 && v < 2.0)
  done

let test_prng_int_covers_range () =
  let t = Prng.create 8 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int t 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_bool_both () =
  let t = Prng.create 9 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bool t then incr trues
  done;
  Alcotest.(check bool) "roughly fair" true (!trues > 400 && !trues < 600)

let test_prng_chance_extremes () =
  let t = Prng.create 10 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.chance t 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Prng.chance t 1.0)
  done

let test_prng_shuffle_permutation () =
  let t = Prng.create 11 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_prng_choice () =
  let t = Prng.create 12 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Prng.choice t a in
    Alcotest.(check bool) "member" true (Array.mem v a)
  done;
  Alcotest.check_raises "empty array"
    (Invalid_argument "Prng.choice: empty array") (fun () ->
      ignore (Prng.choice t [||]))

let test_prng_exponential () =
  let t = Prng.create 13 in
  let r = Stats.running_create () in
  for _ = 1 to 20_000 do
    let v = Prng.exponential t 2.0 in
    Alcotest.(check bool) "positive" true (v >= 0.0);
    Stats.running_add r v
  done;
  (* mean of Exp(2) is 0.5 *)
  check_close 0.02 "mean ~ 1/lambda" 0.5 (Stats.running_mean r)

let test_prng_split_independent () =
  let t = Prng.create 14 in
  let s = Prng.split t in
  Alcotest.(check bool) "split differs from parent continuation" true
    (Prng.bits64 s <> Prng.bits64 t)

let test_prng_copy () =
  let t = Prng.create 15 in
  ignore (Prng.bits64 t);
  let c = Prng.copy t in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 t)
    (Prng.bits64 c)

(* --- Rounding --- *)

let test_rounding_down_basic () =
  check_float "floor to grain" 0.99997500015 (Rounding.down 0.999975000156)

let test_rounding_up_basic () =
  check_float "ceil to grain" 4.8e-10 (Rounding.up 4.800000038e-10)

let test_rounding_down_exact () =
  check_float "exact grain multiple unchanged" 0.5 (Rounding.down 0.5)

let test_rounding_up_exact () =
  check_float "exact grain multiple unchanged" 0.5 (Rounding.up 0.5)

let test_rounding_order () =
  List.iter
    (fun x ->
      Alcotest.(check bool) "down <= up" true (Rounding.down x <= Rounding.up x))
    [ 0.0; 1e-12; 3.14e-7; 0.123456789; 0.999999999999 ]

let test_rounding_clamp () =
  check_float "clamps negative" 0.0 (Rounding.clamp01 (-1e-9));
  check_float "clamps above one" 1.0 (Rounding.clamp01 1.5);
  check_float "identity inside" 0.25 (Rounding.clamp01 0.25)

let test_is_probability () =
  Alcotest.(check bool) "0 ok" true (Rounding.is_probability 0.0);
  Alcotest.(check bool) "1 ok" true (Rounding.is_probability 1.0);
  Alcotest.(check bool) "nan not" false (Rounding.is_probability Float.nan);
  Alcotest.(check bool) "negative not" false (Rounding.is_probability (-0.1));
  Alcotest.(check bool) "above one not" false (Rounding.is_probability 1.1)

(* --- Symmetric --- *)

let test_h_empty () =
  let h = Symmetric.complete_homogeneous [||] 3 in
  Alcotest.(check (array (float 0.0))) "h over no vars" [| 1.0; 0.0; 0.0; 0.0 |] h

let test_h_single () =
  let p = 0.25 in
  let h = Symmetric.complete_homogeneous [| p |] 3 in
  check_float "h0" 1.0 h.(0);
  check_float "h1 = p" p h.(1);
  check_float "h2 = p^2" (p *. p) h.(2);
  check_float "h3 = p^3" (p *. p *. p) h.(3)

let test_h_two_vars () =
  let a = 0.1 and b = 0.2 in
  let h = Symmetric.complete_homogeneous [| a; b |] 2 in
  check_float "h1 = a+b" (a +. b) h.(1);
  check_float "h2 = a2+ab+b2" ((a *. a) +. (a *. b) +. (b *. b)) h.(2)

let test_h_negative_degree () =
  Alcotest.check_raises "negative degree"
    (Invalid_argument "Symmetric.complete_homogeneous: negative degree")
    (fun () -> ignore (Symmetric.complete_homogeneous [| 0.1 |] (-1)))

let test_fold_multisets_count () =
  List.iter
    (fun (n, f) ->
      let counted =
        Symmetric.fold_multisets ~n ~f ~init:0 (fun acc _ -> acc + 1)
      in
      Alcotest.(check int)
        (Printf.sprintf "count n=%d f=%d" n f)
        (Symmetric.count_multisets ~n ~f)
        counted)
    [ (1, 0); (1, 4); (2, 3); (3, 3); (4, 2); (5, 1) ]

let test_fold_multisets_sum () =
  (* every multiset has total multiplicity f *)
  Symmetric.fold_multisets ~n:3 ~f:4 ~init:() (fun () m ->
      Alcotest.(check int) "multiplicities sum to f" 4
        (Array.fold_left ( + ) 0 m))

let test_fold_multisets_empty () =
  Alcotest.(check int) "n=0 f=0 has one (empty) multiset" 1
    (Symmetric.fold_multisets ~n:0 ~f:0 ~init:0 (fun acc _ -> acc + 1));
  Alcotest.(check int) "n=0 f>0 has none" 0
    (Symmetric.fold_multisets ~n:0 ~f:2 ~init:0 (fun acc _ -> acc + 1))

let test_binomial () =
  Alcotest.(check int) "C(5,2)" 10 (Symmetric.binomial 5 2);
  Alcotest.(check int) "C(10,0)" 1 (Symmetric.binomial 10 0);
  Alcotest.(check int) "C(10,10)" 1 (Symmetric.binomial 10 10);
  Alcotest.(check int) "C(4,7) out of range" 0 (Symmetric.binomial 4 7);
  Alcotest.(check int) "C(n,-1)" 0 (Symmetric.binomial 4 (-1));
  Alcotest.(check int) "C(52,5)" 2598960 (Symmetric.binomial 52 5)

let test_count_multisets () =
  Alcotest.(check int) "3 procs 3 faults" 10 (Symmetric.count_multisets ~n:3 ~f:3);
  Alcotest.(check int) "1 proc f faults" 1 (Symmetric.count_multisets ~n:1 ~f:9)

let test_log_factorial () =
  check_close 1e-8 "ln 0!" 0.0 (Symmetric.log_factorial 0);
  check_close 1e-8 "ln 1!" 0.0 (Symmetric.log_factorial 1);
  check_close 1e-8 "ln 5!" (log 120.0) (Symmetric.log_factorial 5);
  check_close 1e-6 "ln 20!" (log 2.43290200817664e18) (Symmetric.log_factorial 20)

(* DP vs explicit enumeration on random vectors. *)
let prop_h_matches_enumeration =
  QCheck.Test.make ~count:200 ~name:"complete_homogeneous = multiset sums"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 5) (float_bound_inclusive 0.5))
        (int_bound 4))
    (fun (ps, f) ->
      let p = Array.of_list ps in
      let dp = (Symmetric.complete_homogeneous p f).(f) in
      let brute =
        Symmetric.fold_multisets ~n:(Array.length p) ~f ~init:0.0 (fun acc m ->
            let prod = ref 1.0 in
            Array.iteri (fun i times -> prod := !prod *. (p.(i) ** float_of_int times)) m;
            acc +. !prod)
      in
      Float.abs (dp -. brute) <= 1e-12 +. (1e-9 *. Float.abs brute))

(* Same cross-check on SFP-shaped tables: per-process failure
   probabilities are tiny and spread over decades (log-uniform in
   [1e-9, 1e-2]), where naive summation is most exposed to cancellation
   and scaling bugs.  The whole DP prefix h_0 .. h_k is compared, not
   just the top coefficient. *)
let prop_h_matches_enumeration_sfp_tables =
  QCheck.Test.make ~count:100
    ~name:"complete_homogeneous = multiset sums (log-uniform SFP tables)"
    QCheck.(
      pair (list_of_size Gen.(1 -- 8) (float_bound_inclusive 1.0)) (int_bound 6))
    (fun (us, k) ->
      let p =
        us
        |> List.map (fun u -> 10.0 ** (-9.0 +. (7.0 *. u)))
        |> Array.of_list
      in
      let dp = Symmetric.complete_homogeneous p k in
      let ok = ref true in
      for f = 0 to k do
        let brute =
          Symmetric.fold_multisets ~n:(Array.length p) ~f ~init:0.0
            (fun acc m ->
              let prod = ref 1.0 in
              Array.iteri
                (fun i times -> prod := !prod *. (p.(i) ** float_of_int times))
                m;
              acc +. !prod)
        in
        if Float.abs (dp.(f) -. brute) > 1e-15 +. (1e-9 *. Float.abs brute)
        then ok := false
      done;
      !ok)

let prop_binomial_pascal =
  QCheck.Test.make ~count:200 ~name:"Pascal identity"
    QCheck.(pair (int_bound 30) (int_bound 30))
    (fun (n, k) ->
      let n = n + 1 in
      Symmetric.binomial n k
      = Symmetric.binomial (n - 1) k + Symmetric.binomial (n - 1) (k - 1))

(* --- Stats --- *)

let test_running_stats () =
  let r = Stats.running_create () in
  List.iter (Stats.running_add r) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.running_count r);
  check_float "mean" 2.5 (Stats.running_mean r);
  check_close 1e-9 "variance" (5.0 /. 3.0) (Stats.running_variance r);
  check_float "min" 1.0 (Stats.running_min r);
  check_float "max" 4.0 (Stats.running_max r)

let test_running_variance_small () =
  let r = Stats.running_create () in
  Stats.running_add r 42.0;
  check_float "variance of one sample" 0.0 (Stats.running_variance r)

let test_mean () =
  check_float "empty" 0.0 (Stats.mean []);
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "median" 3.0 (Stats.percentile xs 0.5);
  check_float "min" 1.0 (Stats.percentile xs 0.0);
  check_float "max" 5.0 (Stats.percentile xs 1.0);
  check_float "interpolated" 1.5 (Stats.percentile [ 1.0; 2.0 ] 0.5);
  Alcotest.check_raises "empty list"
    (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Stats.percentile [] 0.5))

let test_wilson () =
  let lo, hi = Stats.binomial_confidence ~successes:50 ~trials:100 in
  Alcotest.(check bool) "contains p-hat" true (lo < 0.5 && 0.5 < hi);
  Alcotest.(check bool) "bounded" true (lo >= 0.0 && hi <= 1.0);
  let lo0, hi0 = Stats.binomial_confidence ~successes:0 ~trials:100 in
  Alcotest.(check bool) "zero successes" true (lo0 <= 1e-9 && hi0 < 0.1);
  let lo1, hi1 = Stats.binomial_confidence ~successes:0 ~trials:0 in
  Alcotest.(check bool) "no trials -> vacuous" true (lo1 = 0.0 && hi1 = 1.0)

let prop_percentile_within_range =
  QCheck.Test.make ~count:200 ~name:"percentile stays within extrema"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 20) (float_bound_inclusive 100.0))
        (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let v = Stats.percentile xs q in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* --- Text_table --- *)

let test_table_render () =
  let t = Text_table.create ~headers:[ "a"; "b" ] in
  Text_table.add_row t [ "1"; "22" ];
  Text_table.add_row t [ "333" ];
  let s = Text_table.render t in
  Alcotest.(check bool) "contains header" true
    (Helpers.contains s "| a");
  Alcotest.(check bool) "contains padded row" true
    (Helpers.contains s "333")

let test_table_too_many_cells () =
  let t = Text_table.create ~headers:[ "a" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Text_table.add_row: too many cells") (fun () ->
      Text_table.add_row t [ "1"; "2" ])

let test_table_alignment () =
  let t = Text_table.create ~headers:[ "col" ] in
  Text_table.set_aligns t [ Text_table.Right ];
  Text_table.add_row t [ "x" ];
  let s = Text_table.render t in
  Alcotest.(check bool) "right aligned cell" true
    (Helpers.contains s "|   x |")

let test_cell_formatters () =
  Alcotest.(check string) "float" "3.14" (Text_table.cell_float 3.14159);
  Alcotest.(check string) "float decimals" "3.1416"
    (Text_table.cell_float ~decimals:4 3.14159);
  Alcotest.(check string) "pct" "84.0" (Text_table.cell_pct 0.84)

(* --- Ascii_chart --- *)

let test_bar_chart () =
  let s =
    Ascii_chart.bar_chart ~title:"t" ~x_labels:[ "x1"; "x2" ]
      [ { Ascii_chart.label = "A"; values = [ 50.0; 100.0 ] } ]
  in
  Alcotest.(check bool) "contains label" true (Helpers.contains s "A");
  Alcotest.(check bool) "contains value" true
    (Helpers.contains s "100.0")

let test_bar_chart_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Ascii_chart.bar_chart: series length mismatch")
    (fun () ->
      ignore
        (Ascii_chart.bar_chart ~title:"t" ~x_labels:[ "x" ]
           [ { Ascii_chart.label = "A"; values = [ 1.0; 2.0 ] } ]))

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Ascii_chart.sparkline []);
  let s = Ascii_chart.sparkline [ 0.0; 1.0; 2.0 ] in
  Alcotest.(check int) "one char per point" 3 (String.length s)

(* --- Json --- *)

module Json = Ftes_util.Json

let json_roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v' = v
  | Error _ -> false

let test_json_roundtrip () =
  List.iter
    (fun v -> Alcotest.(check bool) "roundtrip" true (json_roundtrip v))
    [ Json.Null;
      Json.Bool true;
      Json.Number 3.5;
      Json.Number (-1.25e-7);
      Json.String "hello \"world\"\nline";
      Json.List [ Json.Number 1.0; Json.Null; Json.String "x" ];
      Json.Object
        [ ("a", Json.Number 1.0);
          ("nested", Json.Object [ ("b", Json.List []) ]) ];
      Json.List [];
      Json.Object [] ]

let test_json_minify () =
  let v = Json.Object [ ("a", Json.List [ Json.Number 1.0; Json.Number 2.0 ]) ] in
  Alcotest.(check string) "compact form" "{\"a\":[1,2]}"
    (Json.to_string ~minify:true v)

let test_json_parse_basics () =
  let ok input expected =
    match Json.of_string input with
    | Ok v -> Alcotest.(check bool) input true (v = expected)
    | Error e -> Alcotest.failf "%s: %s" input e
  in
  ok "  null " Json.Null;
  ok "true" (Json.Bool true);
  ok "-2.5e3" (Json.Number (-2500.0));
  ok "\"a\\tb\"" (Json.String "a\tb");
  ok "[1, 2]" (Json.List [ Json.Number 1.0; Json.Number 2.0 ]);
  ok "{\"k\": 1}" (Json.Object [ ("k", Json.Number 1.0) ])

let test_json_parse_errors () =
  List.iter
    (fun input ->
      match Json.of_string input with
      | Ok _ -> Alcotest.failf "%S should not parse" input
      | Error msg ->
          Alcotest.(check bool) "message carries an offset" true
            (Helpers.contains msg "offset"))
    [ ""; "{"; "[1,"; "nul"; "\"unterminated"; "{\"a\" 1}"; "1 2"; "[1,]" ]

let test_json_accessors () =
  let v =
    Json.Object
      [ ("x", Json.Number 4.0);
        ("s", Json.String "txt");
        ("flag", Json.Bool false);
        ("items", Json.List [ Json.Number 1.5; Json.Number 2.5 ]) ]
  in
  Alcotest.(check bool) "member + int" true
    (Result.bind (Json.member "x" v) Json.to_int = Ok 4);
  Alcotest.(check bool) "string" true
    (Result.bind (Json.member "s" v) Json.to_string_value = Ok "txt");
  Alcotest.(check bool) "bool" true
    (Result.bind (Json.member "flag" v) Json.to_bool = Ok false);
  Alcotest.(check bool) "float array" true
    (Result.bind (Json.member "items" v) Json.float_array = Ok [| 1.5; 2.5 |]);
  Alcotest.(check bool) "missing member" true
    (Result.is_error (Json.member "nope" v));
  Alcotest.(check bool) "wrong type" true
    (Result.is_error (Json.to_int (Json.String "x")));
  Alcotest.(check bool) "non-integer" true
    (Result.is_error (Json.to_int (Json.Number 1.5)))

(* --- Csv --- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape_field "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape_field "a\nb")

let test_csv_document () =
  Alcotest.(check string) "rows" "a,b\n1,2\n"
    (Csv.to_string [ [ "a"; "b" ]; [ "1"; "2" ] ])

let test_csv_write_file () =
  let path = Filename.temp_file "ftes" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file path [ [ "x"; "y" ]; [ "1"; "a,b" ] ];
      let ic = open_in path in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "file contents" "x,y\n1,\"a,b\"\n" content)

let test_csv_parse () =
  Alcotest.(check (list (list string)))
    "quoted commas, escaped quotes, CRLF"
    [ [ "a"; "b,c" ]; [ "say \"hi\""; "" ]; [ "last" ] ]
    (Csv.of_string "a,\"b,c\"\r\n\"say \"\"hi\"\"\",\nlast");
  Alcotest.(check (list (list string)))
    "trailing comma keeps the empty field"
    [ [ "x"; "" ] ]
    (Csv.of_string "x,\n");
  Alcotest.(check (list (list string)))
    "no final newline" [ [ "x"; "y" ] ] (Csv.of_string "x,y");
  Alcotest.check_raises "unterminated quote"
    (Invalid_argument "Csv.of_string: unterminated quoted field") (fun () ->
      ignore (Csv.of_string "\"oops"))

let prop_csv_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Csv.of_string (Csv.to_string t) = t"
    QCheck.(
      small_list
        (small_list (string_gen_of_size Gen.(0 -- 6) Gen.printable)))
    (fun rows ->
      (* Normalize away the two representation edges: empty documents
         and all-empty rows do not round-trip structurally. *)
      let rows = List.map (fun row -> "x" :: row) rows in
      rows = [] || Csv.of_string (Csv.to_string rows) = rows)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_util"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in_bounds;
          Alcotest.test_case "invalid args" `Quick test_prng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "float_in bounds" `Quick test_prng_float_in_bounds;
          Alcotest.test_case "int covers range" `Quick test_prng_int_covers_range;
          Alcotest.test_case "bool fair" `Quick test_prng_bool_both;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "choice" `Quick test_prng_choice;
          Alcotest.test_case "exponential" `Quick test_prng_exponential;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "copy" `Quick test_prng_copy ] );
      ( "rounding",
        [ Alcotest.test_case "down basic" `Quick test_rounding_down_basic;
          Alcotest.test_case "up basic" `Quick test_rounding_up_basic;
          Alcotest.test_case "down exact" `Quick test_rounding_down_exact;
          Alcotest.test_case "up exact" `Quick test_rounding_up_exact;
          Alcotest.test_case "down <= up" `Quick test_rounding_order;
          Alcotest.test_case "clamp01" `Quick test_rounding_clamp;
          Alcotest.test_case "is_probability" `Quick test_is_probability ] );
      ( "symmetric",
        [ Alcotest.test_case "h over empty set" `Quick test_h_empty;
          Alcotest.test_case "h single var" `Quick test_h_single;
          Alcotest.test_case "h two vars" `Quick test_h_two_vars;
          Alcotest.test_case "negative degree" `Quick test_h_negative_degree;
          Alcotest.test_case "multiset counts" `Quick test_fold_multisets_count;
          Alcotest.test_case "multiset sums" `Quick test_fold_multisets_sum;
          Alcotest.test_case "empty multisets" `Quick test_fold_multisets_empty;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "count_multisets" `Quick test_count_multisets;
          Alcotest.test_case "log_factorial" `Quick test_log_factorial;
          q prop_h_matches_enumeration;
          q prop_h_matches_enumeration_sfp_tables;
          q prop_binomial_pascal ] );
      ( "stats",
        [ Alcotest.test_case "running" `Quick test_running_stats;
          Alcotest.test_case "variance one sample" `Quick test_running_variance_small;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "wilson interval" `Quick test_wilson;
          q prop_percentile_within_range ] );
      ( "text_table",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "cell formatters" `Quick test_cell_formatters ] );
      ( "ascii_chart",
        [ Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "length mismatch" `Quick test_bar_chart_mismatch;
          Alcotest.test_case "sparkline" `Quick test_sparkline ] );
      ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "minify" `Quick test_json_minify;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors ] );
      ( "csv",
        [ Alcotest.test_case "escaping" `Quick test_csv_escape;
          Alcotest.test_case "document" `Quick test_csv_document;
          Alcotest.test_case "write file" `Quick test_csv_write_file;
          Alcotest.test_case "parse" `Quick test_csv_parse;
          q prop_csv_roundtrip ] ) ]
