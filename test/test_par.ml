(* Determinism harness for the parallel / memoized exploration stack:
   the Pool combinators must be observationally List.map, the SFP and
   candidate-evaluation caches must never change a result, and the
   parallel Design_strategy walk must be bit-identical to the
   sequential one under every slack and bus policy. *)

module Pool = Ftes_par.Pool
module Sfp_cache = Ftes_par.Sfp_cache
module Sfp = Ftes_sfp.Sfp
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler
module Bus = Ftes_sched.Bus
module Prng = Ftes_util.Prng
module Workload = Ftes_gen.Workload

let pool2 = Pool.create ~domains:2 ()

let pool3 = Pool.create ~domains:3 ()

(* --- Pool combinators --- *)

let prop_map_is_list_map =
  QCheck.Test.make ~count:50 ~name:"Pool.map f = List.map f"
    QCheck.(pair (small_list int) (int_bound 2))
    (fun (xs, extra) ->
      let pool = Pool.create ~domains:(1 + extra) () in
      let f x = (x * x) - (3 * x) in
      Pool.map ~pool f xs = List.map f xs)

let prop_map_array =
  QCheck.Test.make ~count:50 ~name:"Pool.map_array f = Array.map f"
    QCheck.(array_of_size Gen.(int_bound 40) int)
    (fun xs ->
      let f x = x lxor 0x2a in
      Pool.map_array ~pool:pool3 f xs = Array.map f xs)

let prop_map_weighted =
  QCheck.Test.make ~count:50
    ~name:"Pool.map_weighted f = List.map f (weights only shape wall clock)"
    QCheck.(pair (small_list int) (int_bound 2))
    (fun (xs, extra) ->
      let pool = Pool.create ~domains:(1 + extra) () in
      let f x = (x * 7) - (x * x) in
      (* Adversarial weights: negative, tied and non-monotonic. *)
      let weight x = float_of_int ((x mod 5) - 2) in
      Pool.map_weighted ~pool ~weight f xs = List.map f xs)

let prop_map_reduce =
  QCheck.Test.make ~count:50
    ~name:"Pool.map_reduce folds mapped results in input order"
    QCheck.(small_list small_int)
    (fun xs ->
      (* Non-commutative combine: order-sensitive on purpose. *)
      let seq =
        List.fold_left (fun acc x -> (10 * acc) + (x mod 7)) 1 xs
      in
      let par =
        Pool.map_reduce ~pool:pool2 ~map:(fun x -> x mod 7)
          ~combine:(fun acc d -> (10 * acc) + d)
          ~init:1 xs
      in
      seq = par)

let test_map_exception () =
  let raises () =
    Pool.map ~pool:pool2
      (fun x -> if x = 17 then failwith "boom" else x)
      (List.init 64 Fun.id)
  in
  Alcotest.check_raises "worker exception reaches the caller"
    (Failure "boom") (fun () -> ignore (raises ()))

let test_map_seeded_domain_invariant () =
  let xs = List.init 32 Fun.id in
  let run pool =
    Pool.map_seeded ?pool ~prng:(Prng.create 99)
      (fun prng x -> (x, Prng.int prng 1_000_000, Prng.float prng 1.0))
      xs
  in
  let seq = run None in
  Alcotest.(check bool) "2 domains = sequential" true
    (run (Some pool2) = seq);
  Alcotest.(check bool) "3 domains = sequential" true
    (run (Some pool3) = seq)

let test_nested_map_flattens () =
  let outer =
    Pool.map ~pool:pool2
      (fun x ->
        Alcotest.(check bool) "inside worker" true (Pool.in_worker ());
        (* Nested map must degrade to the sequential path, not spawn. *)
        Pool.map ~pool:pool3 (fun y -> x + y) [ 1; 2; 3 ])
      [ 10; 20 ]
  in
  Alcotest.(check bool) "outside worker" false (Pool.in_worker ());
  Alcotest.(check (list (list int))) "nested results"
    [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ]
    outer

(* --- Sfp_cache --- *)

let test_sfp_cache_matches_fresh () =
  let problem = Helpers.synthetic_problem ~seed:7 ~n:14 () in
  let design = Helpers.design_on_all_nodes ~levels:1 ~k:2 problem in
  let cache = Sfp_cache.create () in
  for member = 0 to Design.n_members design - 1 do
    let kmax = Sfp.analysis_kmax design ~member in
    let cached = Sfp_cache.node_analysis cache problem design ~member ~kmax in
    let again = Sfp_cache.node_analysis cache problem design ~member ~kmax in
    let fresh =
      Sfp.node_analysis ~kmax (Design.pfail_vector problem design ~member)
    in
    Alcotest.(check (float Ftes_util.Tolerance.prob_eps))
      (Printf.sprintf "pr0 member %d" member)
      (Sfp.pr_zero fresh) (Sfp.pr_zero cached);
    for k = 0 to kmax do
      Alcotest.(check (float Ftes_util.Tolerance.prob_eps))
        (Printf.sprintf "pr_exceeds member %d k %d" member k)
        (Sfp.pr_exceeds fresh ~k) (Sfp.pr_exceeds cached ~k)
    done;
    Alcotest.(check bool) "second lookup is the same table" true
      (cached == again)
  done;
  Alcotest.(check int) "one miss per member"
    (Design.n_members design)
    (Sfp_cache.misses cache);
  Alcotest.(check int) "one hit per member"
    (Design.n_members design)
    (Sfp_cache.hits cache)

(* --- Design_strategy determinism --- *)

let slack_policies =
  [ ("shared", Scheduler.Shared);
    ("conservative", Scheduler.Conservative);
    ("dedicated", Scheduler.Dedicated) ]

let bus_policies =
  [ ("fcfs", Bus.Fcfs); ("tdma", Bus.Tdma { slot_ms = 2.0 }) ]

type fingerprint = {
  cost : float;
  schedule_length : float;
  members : int array;
  levels : int array;
  reexecs : int array;
  mapping : int array;
  explored : int;
}

let fingerprint = function
  | None -> None
  | Some (s : Design_strategy.solution) ->
      let r = s.Design_strategy.result in
      let d = r.Redundancy_opt.design in
      Some
        { cost = r.Redundancy_opt.cost;
          schedule_length = r.Redundancy_opt.schedule_length;
          members = d.Design.members;
          levels = d.Design.levels;
          reexecs = d.Design.reexecs;
          mapping = d.Design.mapping;
          explored = s.Design_strategy.explored }

let problem_of_seed seed =
  let spec =
    Workload.generate_spec ~seed ~index:0 ~n_processes:(8 + (seed mod 5)) ()
  in
  Workload.problem_of_spec { Workload.ser = 1e-11; hpd = 0.25 } spec

let prop_strategy_parallel_identical =
  QCheck.Test.make ~count:6
    ~name:
      "parallel memoized Design_strategy.run = sequential unmemoized (all \
       slack x bus policies)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let problem = problem_of_seed seed in
      List.for_all
        (fun (_, slack) ->
          List.for_all
            (fun (_, bus) ->
              let config = Config.(default |> with_slack slack |> with_bus bus) in
              let seq =
                Design_strategy.run
                  ~config:(Config.with_memoize false config)
                  problem
              in
              let par =
                Design_strategy.run ~pool:pool2 ~config problem
              in
              fingerprint seq = fingerprint par)
            bus_policies)
        slack_policies)

let prop_memoization_invisible =
  QCheck.Test.make ~count:10
    ~name:"Sfp_cache / eval cache on = off (sequential, exact)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let problem = problem_of_seed seed in
      let on = Design_strategy.run ~config:Config.default problem in
      let off =
        Design_strategy.run
          ~config:(Config.with_memoize false Config.default)
          problem
      in
      fingerprint on = fingerprint off)

let test_policy_sweep_shared_cache () =
  let problem = problem_of_seed 321 in
  let cache = Redundancy_opt.create_cache () in
  List.iter
    (fun policy ->
      let config = Config.with_hardening policy Config.default in
      let shared = Design_strategy.run ~cache ~config problem in
      let fresh =
        Design_strategy.run
          ~config:(Config.with_memoize false config)
          problem
      in
      Alcotest.(check bool)
        (Config.policy_name policy ^ " with shared cache")
        true
        (fingerprint shared = fingerprint fresh))
    [ Config.Fixed_min; Config.Fixed_max; Config.Optimize ]

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_par"
    [ ("pool",
       [ q prop_map_is_list_map;
         q prop_map_array;
         q prop_map_weighted;
         q prop_map_reduce;
         Alcotest.test_case "exception propagation" `Quick test_map_exception;
         Alcotest.test_case "map_seeded invariant across domain counts"
           `Quick test_map_seeded_domain_invariant;
         Alcotest.test_case "nested maps flatten" `Quick
           test_nested_map_flattens ]);
      ("sfp-cache",
       [ Alcotest.test_case "cached tables match fresh analysis" `Quick
           test_sfp_cache_matches_fresh ]);
      ("determinism",
       [ q prop_strategy_parallel_identical;
         q prop_memoization_invisible;
         Alcotest.test_case "policy sweep over one shared cache" `Quick
           test_policy_sweep_shared_cache ]) ]
