(* Campaign subsystem (sharded, checkpointed, resumable exploration):
   manifest round-trips, the sharded-merge = sequential bit-identity
   (across shard counts, including a kill/damage + resume cycle), the
   structured rejection of corrupted checkpoints, and the campaign/*
   and new obs/* verifier rule families. *)

module Manifest = Ftes_campaign.Manifest
module Checkpoint = Ftes_campaign.Checkpoint
module Runner = Ftes_campaign.Runner
module Merge = Ftes_campaign.Merge
module Config = Ftes_core.Config
module Workload = Ftes_gen.Workload
module Json = Ftes_util.Json
module Metrics = Ftes_obs.Metrics
module Verify = Ftes_verify.Verify
module Report = Ftes_verify.Report
module Subject = Ftes_verify.Subject

let mk_dir () =
  let path = Filename.temp_file "ftes-campaign" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let mini ?(policies = [ Config.Fixed_min ]) ?(hpds = [ 0.25 ]) ?(apps = 6)
    ~shards () =
  Manifest.make ~sers:[ 1e-11 ] ~hpds ~policies ~apps ~seed:99 ~shards ()

let fresh_campaign ?policies ?hpds ?apps ~shards () =
  let manifest = mini ?policies ?hpds ?apps ~shards () in
  let dir = mk_dir () in
  Manifest.save ~dir manifest;
  (manifest, dir)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label e

let checkpoints_of ~manifest ~dir =
  List.init manifest.Manifest.shards (fun shard ->
      ok_or_fail "checkpoint" (Checkpoint.load ~manifest ~dir shard))

let merged_of ~manifest ~dir =
  ok_or_fail "merge"
    (Merge.of_checkpoints ~manifest (checkpoints_of ~manifest ~dir))

let cells_json merged =
  match Merge.to_json merged with
  | Json.Object fields -> Json.to_string (List.assoc "cells" fields)
  | _ -> assert false

(* --- manifest --- *)

let test_manifest_roundtrip () =
  let manifest =
    mini ~policies:[ Config.Fixed_min; Config.Optimize ] ~hpds:[ 0.05; 0.5 ]
      ~apps:10 ~shards:3 ()
  in
  let back = ok_or_fail "of_json" (Manifest.of_json (Manifest.to_json manifest)) in
  Alcotest.(check bool) "round-trips" true (back = manifest);
  let dir = mk_dir () in
  Manifest.save ~dir manifest;
  let loaded = ok_or_fail "load" (Manifest.load ~dir) in
  Alcotest.(check string) "fingerprint survives save/load"
    (Manifest.fingerprint manifest)
    (Manifest.fingerprint loaded);
  Alcotest.(check int) "cell grid" 4 (Manifest.n_cells manifest)

let test_manifest_validation () =
  let raises label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted" label
  in
  raises "shards > apps" (fun () -> mini ~apps:2 ~shards:3 ());
  raises "empty policies" (fun () -> mini ~policies:[] ~shards:1 ());
  raises "zero apps" (fun () -> mini ~apps:0 ~shards:1 ())

let test_shard_partition () =
  let manifest = mini ~apps:10 ~shards:3 () in
  let ranges = List.init 3 (Manifest.shard_range manifest) in
  Alcotest.(check (list (pair int int)))
    "disjoint covering ranges"
    [ (0, 3); (3, 6); (6, 10) ]
    ranges;
  List.iteri
    (fun shard (lo, hi) ->
      let specs = Manifest.specs_for_shard manifest shard in
      Alcotest.(check int) "slice size" (hi - lo) (List.length specs);
      List.iteri
        (fun i spec ->
          Alcotest.(check int) "absolute index" (lo + i)
            spec.Workload.index)
        specs)
    ranges

(* --- merge = sequential, across shard counts --- *)

let test_merge_identity_across_shards () =
  let reference = ref None in
  List.iter
    (fun shards ->
      let manifest, dir = fresh_campaign ~apps:7 ~shards () in
      let summary = Runner.run_local ~manifest ~dir () in
      Alcotest.(check int) "no failed shards" 0 (List.length summary.Runner.failed);
      Alcotest.(check int) "every shard executed" shards summary.Runner.executed;
      let merged = merged_of ~manifest ~dir in
      let sequential = Merge.run_sequential ~manifest in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards: merge equals sequential" shards)
        true
        (Merge.equal merged sequential);
      Alcotest.(check string)
        (Printf.sprintf "%d shards: fingerprints agree" shards)
        (Merge.fingerprint sequential) (Merge.fingerprint merged);
      (* The cell payloads are also identical across shard counts (the
         documents differ only in the embedded manifest fingerprint,
         which covers the shard count). *)
      let cells = cells_json merged in
      match !reference with
      | None -> reference := Some cells
      | Some expected ->
          Alcotest.(check string)
            (Printf.sprintf "%d shards: cells match 1-shard run" shards)
            expected cells)
    [ 1; 2; 4; 7 ]

let test_merge_identity_opt_cells () =
  let policies = [ Config.Fixed_min; Config.Optimize ] in
  let manifest, dir = fresh_campaign ~policies ~apps:4 ~shards:2 () in
  let summary = Runner.run_local ~manifest ~dir () in
  Alcotest.(check int) "no failed shards" 0 (List.length summary.Runner.failed);
  let merged = merged_of ~manifest ~dir in
  Alcotest.(check bool) "merge equals sequential (MIN + OPT cells)" true
    (Merge.equal merged (Merge.run_sequential ~manifest))

(* --- resume --- *)

let truncate_file path =
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let oc = open_out_bin path in
  output_string oc (String.sub text 0 (String.length text / 2));
  close_out oc

let resume_prop (shards, victim, kind) =
  let manifest, dir = fresh_campaign ~shards () in
  let summary = Runner.run_local ~manifest ~dir () in
  let expected = Merge.fingerprint (merged_of ~manifest ~dir) in
  let victim = victim mod shards in
  let path = Checkpoint.path ~dir victim in
  (match kind with
  | `Delete -> Sys.remove path
  | `Truncate -> truncate_file path);
  let resumed = Runner.run_local ~manifest ~dir () in
  summary.Runner.failed = []
  && resumed.Runner.failed = []
  && resumed.Runner.skipped = shards - 1
  && resumed.Runner.executed = 1
  && Merge.fingerprint (merged_of ~manifest ~dir) = expected

let prop_resume_after_damage =
  QCheck.Test.make ~count:8
    ~name:
      "deleting or truncating a checkpoint, then resuming, re-runs only \
       that shard and reproduces the merged fingerprint"
    (QCheck.make
       ~print:(fun (shards, victim, kind) ->
         Printf.sprintf "shards %d, victim %d, %s" shards victim
           (match kind with `Delete -> "delete" | `Truncate -> "truncate"))
       QCheck.Gen.(
         triple (oneofl [ 2; 3; 6 ]) (0 -- 5) (oneofl [ `Delete; `Truncate ])))
    resume_prop

let test_partial_checkpoint_resume () =
  (* Two cells; a deliberate crash out of [on_cell] after the first cell
     leaves a valid partial checkpoint, which resume must salvage. *)
  let manifest, dir = fresh_campaign ~hpds:[ 0.05; 0.5 ] ~shards:2 () in
  let before = Metrics.snapshot () in
  let counter name snap =
    Option.value ~default:0 (Metrics.find_counter snap name)
  in
  (match
     Runner.run_shard
       ~on_cell:(fun ~cell_index ~n_cells:_ ->
         if cell_index = 0 then failwith "simulated kill")
       ~manifest ~dir 0
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "simulated kill did not propagate");
  (match Runner.scan ~manifest ~dir with
  | [| Runner.Partial c; Runner.Missing |] ->
      Alcotest.(check int) "one cell salvaged" 1
        (List.length c.Checkpoint.cells)
  | _ -> Alcotest.fail "expected a partial shard 0 and a missing shard 1");
  let summary = Runner.run_local ~manifest ~dir () in
  Alcotest.(check int) "no failures" 0 (List.length summary.Runner.failed);
  Alcotest.(check int) "both shards executed" 2 summary.Runner.executed;
  Alcotest.(check int) "one shard resumed" 1 summary.Runner.resumed;
  let after = Metrics.snapshot () in
  Alcotest.(check int) "campaign.shards_resumed counted" 1
    (counter "campaign.shards_resumed" after
    - counter "campaign.shards_resumed" before);
  (* 1 cell before the kill + 3 fresh on resume (1 salvaged of 4). *)
  Alcotest.(check int) "campaign.cells_done counts fresh cells only" 4
    (counter "campaign.cells_done" after - counter "campaign.cells_done" before);
  Alcotest.(check bool) "merge equals sequential after the crash cycle" true
    (Merge.equal (merged_of ~manifest ~dir) (Merge.run_sequential ~manifest))

(* --- corrupted checkpoints are rejected, not crashed on --- *)

let read_doc path =
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string text with
  | Ok json -> json
  | Error e -> Alcotest.failf "%s: %s" path e

let write_doc path json =
  let oc = open_out_bin path in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc

let map_field name f = function
  | Json.Object fields ->
      Json.Object
        (List.map (fun (k, v) -> if k = name then (k, f v) else (k, v)) fields)
  | json -> json

let set_field name v json = map_field name (fun _ -> v) json

let map_nth n f = function
  | Json.List items ->
      Json.List (List.mapi (fun i item -> if i = n then f item else item) items)
  | json -> json

let test_corrupt_checkpoint_rejected () =
  let manifest, dir = fresh_campaign ~shards:2 () in
  ignore (Runner.run_local ~manifest ~dir ());
  let path = Checkpoint.path ~dir 0 in
  let pristine = read_doc path in
  let expect_error label mutate =
    write_doc path (mutate pristine);
    (match Checkpoint.load ~manifest ~dir 0 with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupted checkpoint accepted" label);
    match Runner.scan ~manifest ~dir with
    | [| Runner.Corrupt _; Runner.Complete _ |] -> ()
    | _ -> Alcotest.failf "%s: scan did not classify the shard corrupt" label
  in
  expect_error "alien fingerprint"
    (set_field "manifest_fingerprint" (Json.String "0123456789abcdef"));
  expect_error "unknown schema version"
    (set_field "schema_version" (Json.Number 99.0));
  expect_error "wrong shard range" (set_field "hi" (Json.Number 5.0));
  expect_error "truncated cost row"
    (map_field "cells"
       (map_nth 0
          (map_field "costs" (function
            | Json.List (_ :: rest) -> Json.List rest
            | costs -> costs))));
  expect_error "complete flag without the cells"
    (fun doc -> set_field "cells" (Json.List []) doc);
  (* Not JSON at all. *)
  let oc = open_out_bin path in
  output_string oc "{ definitely not json";
  close_out oc;
  (match Checkpoint.load ~manifest ~dir 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (* And the structured rejection composes with resume: the shard is
     simply recomputed. *)
  let summary = Runner.run_local ~manifest ~dir () in
  Alcotest.(check int) "corrupt shard recomputed" 1 summary.Runner.executed;
  Alcotest.(check int) "intact shard skipped" 1 summary.Runner.skipped

let test_out_of_range_point_rejected () =
  let manifest, dir = fresh_campaign ~shards:2 () in
  ignore (Runner.run_local ~manifest ~dir ());
  let path = Checkpoint.path ~dir 0 in
  let doc = read_doc path in
  let points_of doc =
    match doc with
    | Json.Object fields -> (
        match List.assoc "cells" fields with
        | Json.List (Json.Object cell :: _) -> (
            match List.assoc "points" cell with
            | Json.List points -> points
            | _ -> [])
        | _ -> [])
    | _ -> []
  in
  if points_of doc = [] then () (* nothing feasible to tamper with *)
  else begin
    write_doc path
      (map_field "cells"
         (map_nth 0
            (map_field "points"
               (map_nth 0 (set_field "app" (Json.Number 999.0)))))
         doc);
    match Checkpoint.load ~manifest ~dir 0 with
    | Error e ->
        Alcotest.(check bool) "names the range violation" true
          (String.length e > 0)
    | Ok _ -> Alcotest.fail "out-of-range application index accepted"
  end

(* --- campaign/* verifier rules --- *)

let subject_problem =
  lazy
    (let spec = Workload.generate_spec ~seed:7 ~index:0 ~n_processes:8 () in
     Workload.problem_of_spec { Workload.ser = 1e-11; hpd = 0.25 } spec)

let campaign_docs () =
  let manifest, dir = fresh_campaign ~shards:2 () in
  ignore (Runner.run_local ~manifest ~dir ());
  Merge.save ~dir (merged_of ~manifest ~dir);
  let manifest_doc = read_doc (Manifest.path ~dir) in
  let checkpoints =
    List.init 2 (fun shard ->
        ( Printf.sprintf "shard-%03d.json" shard,
          read_doc (Checkpoint.path ~dir shard) ))
  in
  let merged = read_doc (Filename.concat dir Merge.filename) in
  (manifest_doc, checkpoints, merged)

let run_campaign_rules ?merged ~manifest ~checkpoints () =
  Verify.run ~rules:Ftes_verify.Campaign_rules.all
    (Subject.with_campaign ?merged
       (Subject.of_problem (Lazy.force subject_problem))
       ~manifest ~checkpoints)

let fires rule report =
  List.exists
    (fun (d : Ftes_verify.Diagnostic.t) ->
      d.Ftes_verify.Diagnostic.rule = rule
      && d.Ftes_verify.Diagnostic.severity = Ftes_verify.Diagnostic.Error)
    report.Report.diagnostics

let docs = lazy (campaign_docs ())

let test_campaign_rules_pass () =
  let manifest, checkpoints, merged = Lazy.force docs in
  let report = run_campaign_rules ~merged ~manifest ~checkpoints () in
  Alcotest.(check bool)
    ("pristine campaign certifies:\n" ^ Report.to_text report)
    true (Report.ok report);
  Alcotest.(check int) "all five rules ran" 5
    (List.length report.Report.rules_run)

let test_campaign_rules_skip_without_docs () =
  let report =
    Verify.run ~rules:Ftes_verify.Campaign_rules.all
      (Subject.of_problem (Lazy.force subject_problem))
  in
  Alcotest.(check int) "all campaign rules skipped" 5
    (List.length report.Report.rules_skipped)

let test_campaign_rule_mutations () =
  let manifest, checkpoints, merged = Lazy.force docs in
  let check label rule report =
    Alcotest.(check bool)
      (label ^ " fires " ^ rule ^ ":\n" ^ Report.to_text report)
      true (fires rule report)
  in
  check "future manifest version" "campaign/manifest-schema"
    (run_campaign_rules ~merged
       ~manifest:(set_field "schema_version" (Json.Number 9.0) manifest)
       ~checkpoints ());
  check "zero-shard plan" "campaign/manifest-schema"
    (run_campaign_rules ~merged
       ~manifest:(set_field "shards" (Json.Number 0.0) manifest)
       ~checkpoints ());
  let mutate_checkpoint n f =
    List.mapi (fun i (label, doc) -> if i = n then (label, f doc) else (label, doc)) checkpoints
  in
  check "range drift" "campaign/shard-partition"
    (run_campaign_rules ~merged ~manifest
       ~checkpoints:(mutate_checkpoint 0 (set_field "hi" (Json.Number 5.0)))
       ());
  check "duplicate shard" "campaign/shard-partition"
    (run_campaign_rules ~merged ~manifest
       ~checkpoints:(mutate_checkpoint 1 (set_field "shard" (Json.Number 0.0)))
       ());
  check "missing shard under a merge" "campaign/shard-partition"
    (run_campaign_rules ~merged ~manifest
       ~checkpoints:[ List.hd checkpoints ] ());
  check "foreign fingerprint" "campaign/checkpoint-fingerprint"
    (run_campaign_rules ~merged ~manifest
       ~checkpoints:
         (mutate_checkpoint 0
            (set_field "manifest_fingerprint" (Json.String "feedfacecafebeef")))
       ());
  check "tampered merged costs" "campaign/merge-costs"
    (run_campaign_rules
       ~merged:
         (map_field "cells"
            (map_nth 0
               (map_field "costs" (function
                 | Json.List (_ :: rest) ->
                     Json.List (Json.Number 0.5 :: rest)
                 | costs -> costs)))
            merged)
       ~manifest ~checkpoints ());
  check "fabricated frontier point" "campaign/merge-frontier"
    (run_campaign_rules
       ~merged:
         (map_field "cells"
            (map_nth 0
               (map_field "frontier"
                  (map_field "points"
                     (map_nth 0 (set_field "cost" (Json.Number 1e6))))))
            merged)
       ~manifest ~checkpoints ())

(* --- the new obs/* rules --- *)

let run_obs_rules snapshot =
  Verify.run ~rules:Ftes_verify.Obs_rules.all
    (Subject.with_metrics (Subject.of_problem (Lazy.force subject_problem))
       snapshot)

let empty_snapshot = { Metrics.counters = []; gauges = []; histograms = [] }

let test_obs_rule_extensions () =
  let check label rule snapshot =
    let report = run_obs_rules snapshot in
    Alcotest.(check bool) (label ^ " fires " ^ rule) true (fires rule report)
  in
  check "merge offers exceed classified inserts" "obs/pareto-merge"
    { empty_snapshot with
      Metrics.counters =
        [ ("pareto.dominated", 1); ("pareto.inserted", 2);
          ("pareto.merge_points", 5) ] };
  check "resumed shards exceed completed" "obs/campaign-progress"
    { empty_snapshot with
      Metrics.counters =
        [ ("campaign.cells_done", 3); ("campaign.shards_done", 1);
          ("campaign.shards_resumed", 2) ] };
  check "shards outpace cells" "obs/campaign-progress"
    { empty_snapshot with
      Metrics.counters =
        [ ("campaign.cells_done", 1); ("campaign.shards_done", 2);
          ("campaign.shards_resumed", 0) ] };
  let healthy =
    { empty_snapshot with
      Metrics.counters =
        [ ("campaign.cells_done", 6); ("campaign.shards_done", 3);
          ("campaign.shards_resumed", 1); ("pareto.dominated", 4);
          ("pareto.inserted", 9); ("pareto.merge_points", 10) ] }
  in
  Alcotest.(check bool) "healthy snapshot passes" true
    (Report.ok (run_obs_rules healthy))

let test_live_counters_certify () =
  (* A real campaign's registry satisfies the audited inequalities. *)
  let manifest, dir = fresh_campaign ~shards:3 () in
  ignore (Runner.run_local ~manifest ~dir ());
  ignore (merged_of ~manifest ~dir);
  let report = run_obs_rules (Metrics.snapshot ()) in
  Alcotest.(check bool)
    ("live campaign snapshot certifies:\n" ^ Report.to_text report)
    true (Report.ok report)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_campaign"
    [ ( "manifest",
        [ Alcotest.test_case "round-trip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "validation" `Quick test_manifest_validation;
          Alcotest.test_case "shard partition" `Quick test_shard_partition ] );
      ( "merge",
        [ Alcotest.test_case "bit-identical across shard counts" `Quick
            test_merge_identity_across_shards;
          Alcotest.test_case "bit-identical with OPT cells" `Quick
            test_merge_identity_opt_cells ] );
      ( "resume",
        [ q prop_resume_after_damage;
          Alcotest.test_case "partial checkpoint salvage" `Quick
            test_partial_checkpoint_resume ] );
      ( "corruption",
        [ Alcotest.test_case "structured rejection" `Quick
            test_corrupt_checkpoint_rejected;
          Alcotest.test_case "out-of-range point" `Quick
            test_out_of_range_point_rejected ] );
      ( "rules",
        [ Alcotest.test_case "pristine campaign passes" `Quick
            test_campaign_rules_pass;
          Alcotest.test_case "skip without docs" `Quick
            test_campaign_rules_skip_without_docs;
          Alcotest.test_case "mutations" `Quick test_campaign_rule_mutations;
          Alcotest.test_case "obs extensions" `Quick test_obs_rule_extensions;
          Alcotest.test_case "live counters" `Quick test_live_counters_certify ] ) ]
