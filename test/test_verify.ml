(* Tests for the independent static verifier: the registry, the
   reporters, acceptance of every scheduler-produced schedule, and
   mutation tests asserting that corrupted inputs trip the matching
   rule id. *)

module Verify = Ftes_verify.Verify
module Report = Ftes_verify.Report
module Rule = Ftes_verify.Rule
module Subject = Ftes_verify.Subject
module Diagnostic = Ftes_verify.Diagnostic
module Scheduler = Ftes_sched.Scheduler
module Schedule = Ftes_sched.Schedule
module Bus = Ftes_sched.Bus
module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Json = Ftes_util.Json

(* Schedule soundness is independent of whether the design is *good*:
   random designs legitimately miss deadlines and reliability goals, so
   the acceptance properties exclude exactly those two verdict rules. *)
let soundness_rules = Verify.except [ "sched/deadline"; "sfp/goal" ]

let base () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let schedule = Scheduler.schedule problem design in
  (problem, design, schedule)

(* --- registry --- *)

let test_registry_ids_unique () =
  let ids = List.map (fun r -> r.Rule.id) Verify.registry in
  Alcotest.(check int) "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_size () =
  Alcotest.(check bool) "at least 20 rules" true
    (List.length Verify.registry >= 20)

let test_find () =
  Alcotest.(check bool) "finds sched/slack" true
    (Verify.find "sched/slack" <> None);
  Alcotest.(check bool) "unknown id" true (Verify.find "no/such-rule" = None)

let test_skip_without_design () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let report = Verify.run (Subject.of_problem problem) in
  Alcotest.(check bool) "problem-only run is clean" true (Report.ok report);
  Alcotest.(check bool) "design rules skipped" true
    (List.mem "design/mapping" report.Report.rules_skipped);
  Alcotest.(check bool) "schedule rules skipped" true
    (List.mem "sched/slack" report.Report.rules_skipped);
  Alcotest.(check bool) "graph rules ran" true
    (List.mem "graph/acyclic" report.Report.rules_run)

(* --- reporters --- *)

let test_text_report () =
  let problem, design, schedule = base () in
  let report = Verify.certify problem design schedule in
  let text = Report.to_text report in
  Helpers.check_contains "text" text "20 rules run";
  Helpers.check_contains "text" text "all checks passed"

let test_json_report_roundtrip () =
  let problem, design, schedule = base () in
  let report = Verify.certify problem design schedule in
  let json_text = Json.to_string (Report.to_json report) in
  match Json.of_string json_text with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok json ->
      (match Result.bind (Json.member "ok" json) Json.to_bool with
      | Ok ok -> Alcotest.(check bool) "ok field" true ok
      | Error e -> Alcotest.failf "no ok field: %s" e);
      (match Result.bind (Json.member "errors" json) Json.to_int with
      | Ok errors -> Alcotest.(check int) "errors field" 0 errors
      | Error e -> Alcotest.failf "no errors field: %s" e)

let test_json_reports_diagnostics () =
  let problem, design, schedule = base () in
  let corrupted = { schedule with Schedule.length = 0.0 } in
  let report = Verify.certify problem design corrupted in
  Alcotest.(check bool) "not ok" false (Report.ok report);
  let json = Report.to_json report in
  match Result.bind (Json.member "diagnostics" json) Json.to_list with
  | Ok (_ :: _) -> ()
  | Ok [] -> Alcotest.fail "no diagnostics in the JSON report"
  | Error e -> Alcotest.failf "bad JSON report: %s" e

(* --- certification wiring --- *)

let test_design_strategy_certificate () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let config = Ftes_core.Config.with_certify true Ftes_core.Config.default in
  match Ftes_core.Design_strategy.run ~config problem with
  | None -> Alcotest.fail "fig1 should have a feasible design"
  | Some s -> (
      match s.Ftes_core.Design_strategy.certificate with
      | None -> Alcotest.fail "certify=true should attach a report"
      | Some report ->
          Alcotest.(check bool) "emitted design certifies" true
            (Report.ok report))

let test_design_strategy_no_certificate_by_default () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  match Ftes_core.Design_strategy.run ~config:Ftes_core.Config.default problem with
  | None -> Alcotest.fail "fig1 should have a feasible design"
  | Some s ->
      Alcotest.(check bool) "no report unless asked" true
        (s.Ftes_core.Design_strategy.certificate = None)

(* --- acceptance of scheduler output --- *)

let random_design problem seed =
  let prng = Ftes_util.Prng.create seed in
  let lib = Problem.n_library problem in
  let m = 1 + Ftes_util.Prng.int prng lib in
  let pool = Array.init lib Fun.id in
  Ftes_util.Prng.shuffle prng pool;
  let members = Array.sub pool 0 m in
  let levels =
    Array.map
      (fun j -> 1 + Ftes_util.Prng.int prng (Problem.levels problem j))
      members
  in
  let reexecs = Array.init m (fun _ -> Ftes_util.Prng.int prng 4) in
  let mapping =
    Array.init (Problem.n_processes problem) (fun _ ->
        Ftes_util.Prng.int prng m)
  in
  Design.make problem ~members ~levels ~reexecs ~mapping

let verify_clean ?bus ~slack problem design schedule =
  let report =
    Verify.run ~rules:soundness_rules
      (Subject.of_schedule ~slack ?bus problem design schedule)
  in
  if Report.ok report then true
  else begin
    List.iter
      (fun d -> Printf.eprintf "  %s: %s\n" d.Diagnostic.rule d.Diagnostic.detail)
      (Report.errors report);
    false
  end

let prop_scheduler_output_verifies =
  QCheck.Test.make ~count:60
    ~name:"verifier passes every scheduler output (all slack policies)"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed:(seed / 7) ~n:10 () in
      let design = random_design problem seed in
      List.for_all
        (fun slack ->
          let s = Scheduler.schedule ~slack problem design in
          verify_clean ~slack problem design s)
        [ Scheduler.Shared; Scheduler.Conservative; Scheduler.Dedicated ])

let prop_scheduler_output_verifies_tdma =
  QCheck.Test.make ~count:40
    ~name:"verifier passes scheduler output under a TDMA bus"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed:(seed / 7) ~n:10 () in
      let design = random_design problem seed in
      let bus = Bus.Tdma { slot_ms = 2.0 } in
      let s = Scheduler.schedule ~bus problem design in
      verify_clean ~bus ~slack:Scheduler.Shared problem design s)

let test_per_process_policy_verifies () =
  let problem, design, _ = base () in
  let budgets = [| 1; 0; 2; 1 |] in
  let slack = Scheduler.Per_process budgets in
  let s = Scheduler.schedule ~slack problem design in
  Alcotest.(check bool) "per-process schedule verifies" true
    (verify_clean ~slack problem design s)

let test_checkpointed_policy_verifies () =
  let problem, design, _ = base () in
  let slack =
    Scheduler.Checkpointed { kappa = [| 2; 1; 3; 2 |]; save_ms = 1.0 }
  in
  let s = Scheduler.schedule ~slack problem design in
  Alcotest.(check bool) "checkpointed schedule verifies" true
    (verify_clean ~slack problem design s)

(* --- mutation tests: each corruption trips the matching rule id --- *)

let with_entry schedule i f =
  let entries = Array.copy schedule.Schedule.entries in
  entries.(i) <- f entries.(i);
  { schedule with Schedule.entries }

(* Each mutation returns the corrupted (design, schedule) pair.  fig4a
   maps P1, P2 on slot 0 and P3, P4 on slot 1 with two bus messages
   (P1->P3 and P2->P4). *)
let mutations :
    (string * string
    * (Problem.t -> Design.t -> Schedule.t -> Design.t * Schedule.t))
    list =
  [ ( "shrunken execution",
      "sched/wcet",
      fun _ design schedule ->
        ( design,
          with_entry schedule 0 (fun e ->
              let mid = e.Schedule.start +. ((e.Schedule.finish -. e.Schedule.start) /. 2.0) in
              { e with Schedule.finish = mid; commit = mid }) ) );
    ( "dropped bus message",
      "sched/precedence",
      fun _ design schedule ->
        (design, { schedule with Schedule.messages = List.tl schedule.Schedule.messages }) );
    ( "perturbed start time",
      "sched/node-overlap",
      fun _ design schedule ->
        (* Pull P2's start back onto P1's execution window, keeping its
           duration. *)
        let p1 = schedule.Schedule.entries.(0) in
        ( design,
          with_entry schedule 1 (fun e ->
              let d = e.Schedule.finish -. e.Schedule.start in
              { e with
                Schedule.start = p1.Schedule.start;
                finish = p1.Schedule.start +. d;
                commit = p1.Schedule.start +. d }) ) );
    ( "overlapping bus messages",
      "sched/bus-overlap",
      fun _ design schedule ->
        match schedule.Schedule.messages with
        | first :: second :: rest ->
            let moved =
              { second with
                Schedule.bus_start = first.Schedule.bus_start;
                bus_finish =
                  first.Schedule.bus_start
                  +. (second.Schedule.bus_finish -. second.Schedule.bus_start) }
            in
            (design, { schedule with Schedule.messages = first :: moved :: rest })
        | _ -> Alcotest.fail "fig4a should have two bus messages" );
    ( "corrupted node worst end",
      "sched/slack",
      fun _ design schedule ->
        let node_worst = Array.copy schedule.Schedule.node_worst in
        node_worst.(0) <- node_worst.(0) +. 7.0;
        (design, { schedule with Schedule.node_worst }) );
    ( "corrupted schedule length",
      "sched/length",
      fun _ design schedule ->
        (design, { schedule with Schedule.length = schedule.Schedule.length -. 1.0 }) );
    ( "deadline overrun",
      "sched/deadline",
      fun problem design schedule ->
        let deadline =
          problem.Problem.app.Ftes_model.Application.deadline_ms
        in
        (design, { schedule with Schedule.length = deadline +. 50.0 }) );
    ( "swapped mapping slots",
      "sched/entries",
      fun _ design schedule ->
        let mapping = Array.copy design.Design.mapping in
        let tmp = mapping.(0) in
        mapping.(0) <- mapping.(2);
        mapping.(2) <- tmp;
        (Design.with_mapping design mapping, schedule) );
    ( "mapping out of range",
      "design/mapping",
      fun _ design schedule ->
        let mapping = Array.copy design.Design.mapping in
        mapping.(1) <- Design.n_members design + 3;
        (Design.with_mapping design mapping, schedule) );
    ( "hardening level out of range",
      "design/hardening",
      fun _ design schedule ->
        let levels = Array.copy design.Design.levels in
        levels.(0) <- 0;
        (Design.with_levels design levels, schedule) );
    ( "duplicate architecture member",
      "design/members",
      fun _ design schedule ->
        let members = Array.copy design.Design.members in
        members.(1) <- members.(0);
        ({ design with Design.members }, schedule) ) ]

let test_mutation (name, rule_id, mutate) () =
  let problem, design, schedule = base () in
  let design, schedule = mutate problem design schedule in
  let report = Verify.certify problem design schedule in
  Alcotest.(check bool) (name ^ " is caught") false (Report.ok report);
  if not (List.mem rule_id (Report.fired_rules report)) then
    Alcotest.failf "%s: expected %s to fire, got [%s]" name rule_id
      (String.concat "; " (Report.fired_rules report))

let test_mutation_diversity () =
  (* The acceptance bar of the issue: corrupted inputs demonstrate at
     least 8 distinct rule ids. *)
  let ids = List.sort_uniq compare (List.map (fun (_, id, _) -> id) mutations) in
  Alcotest.(check bool)
    (Printf.sprintf "%d distinct rule ids covered" (List.length ids))
    true
    (List.length ids >= 8)

let test_clean_base_verifies () =
  let problem, design, schedule = base () in
  let report = Verify.certify problem design schedule in
  Alcotest.(check bool) "uncorrupted fig4a certifies" true (Report.ok report)

(* --- sfp/cache mutations: a corrupted memoized SFP table must trip
   the cache-consistency rule, while faithful tables (and sub-tolerance
   noise) must not. *)

module Sfp = Ftes_sfp.Sfp

let certify_tables tables =
  let problem, design, schedule = base () in
  Verify.certify ~sfp_tables:tables problem design schedule

let base_tables () =
  let problem, design, _ = base () in
  Sfp.analyses_for problem design

(* node_analysis is immutable from outside the Sfp module; rebuild a
   perturbed table by re-analysing a perturbed probability vector or by
   patching the exposed record fields. *)
let sfp_cache_mutations : (string * (Sfp.node_analysis array -> Sfp.node_analysis array)) list =
  [ ( "perturbed process failure probability",
      fun tables ->
        let t = Array.copy tables in
        let probs = Array.copy t.(0).Sfp.probs in
        probs.(0) <- probs.(0) +. 1e-6;
        t.(0) <- { t.(0) with Sfp.probs };
        t );
    ( "perturbed Pr(0)",
      fun tables ->
        let t = Array.copy tables in
        t.(0) <- { t.(0) with Sfp.pr0 = t.(0).Sfp.pr0 -. 1e-6 };
        t );
    ( "perturbed fault-count coefficient",
      fun tables ->
        let t = Array.copy tables in
        let homogeneous = Array.copy t.(1).Sfp.homogeneous in
        homogeneous.(1) <- homogeneous.(1) *. (1.0 +. 1e-3);
        t.(1) <- { t.(1) with Sfp.homogeneous };
        t );
    ( "missing member table",
      fun tables -> Array.sub tables 0 (Array.length tables - 1) ) ]

let test_sfp_cache_mutation (name, mutate) () =
  let report = certify_tables (mutate (base_tables ())) in
  Alcotest.(check bool) (name ^ " is caught") false (Report.ok report);
  if not (List.mem "sfp/cache" (Report.fired_rules report)) then
    Alcotest.failf "%s: expected sfp/cache to fire, got [%s]" name
      (String.concat "; " (Report.fired_rules report))

let test_sfp_cache_clean_tables_pass () =
  let report = certify_tables (base_tables ()) in
  Alcotest.(check bool) "faithful tables certify" true (Report.ok report)

let test_sfp_cache_subgrain_noise_passes () =
  (* A perturbation below the probability tolerance (1e-16 << 1e-15,
     both far below the 1e-11 rounding grain) is indistinguishable from
     rounding and must not fire. *)
  let tables = base_tables () in
  let t = Array.copy tables in
  t.(0) <- { t.(0) with Sfp.pr0 = t.(0).Sfp.pr0 -. 1e-16 };
  let report = certify_tables t in
  Alcotest.(check bool) "sub-tolerance noise certifies" true (Report.ok report)

let test_sfp_cache_rule_skipped_without_tables () =
  let problem, design, schedule = base () in
  let report = Verify.certify problem design schedule in
  Alcotest.(check bool) "sfp/cache not run without tables" false
    (List.mem "sfp/cache" (Report.fired_rules report))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_verify"
    [ ( "registry",
        [ Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "size" `Quick test_registry_size;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "skips without design" `Quick
            test_skip_without_design ] );
      ( "reporters",
        [ Alcotest.test_case "text" `Quick test_text_report;
          Alcotest.test_case "json round-trip" `Quick test_json_report_roundtrip;
          Alcotest.test_case "json carries diagnostics" `Quick
            test_json_reports_diagnostics ] );
      ( "certification",
        [ Alcotest.test_case "design strategy attaches a report" `Quick
            test_design_strategy_certificate;
          Alcotest.test_case "off by default" `Quick
            test_design_strategy_no_certificate_by_default ] );
      ( "acceptance",
        [ Alcotest.test_case "clean base" `Quick test_clean_base_verifies;
          Alcotest.test_case "per-process policy" `Quick
            test_per_process_policy_verifies;
          Alcotest.test_case "checkpointed policy" `Quick
            test_checkpointed_policy_verifies;
          q prop_scheduler_output_verifies;
          q prop_scheduler_output_verifies_tdma ] );
      ( "mutations",
        Alcotest.test_case "rule id diversity" `Quick test_mutation_diversity
        :: List.map
             (fun ((name, _, _) as m) ->
               Alcotest.test_case name `Quick (test_mutation m))
             mutations );
      ( "sfp-cache mutations",
        Alcotest.test_case "clean tables pass" `Quick
          test_sfp_cache_clean_tables_pass
        :: Alcotest.test_case "sub-tolerance noise passes" `Quick
             test_sfp_cache_subgrain_noise_passes
        :: Alcotest.test_case "rule skipped without tables" `Quick
             test_sfp_cache_rule_skipped_without_tables
        :: List.map
             (fun ((name, _) as m) ->
               Alcotest.test_case name `Quick (test_sfp_cache_mutation m))
             sfp_cache_mutations ) ]
