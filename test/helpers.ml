(* Shared helpers for the test-suite. *)

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec scan i = i + m <= n && (String.sub s i m = affix || scan (i + 1)) in
  m = 0 || scan 0

let check_contains name s affix =
  Alcotest.(check bool)
    (Printf.sprintf "%s: output contains %S" name affix)
    true (contains s affix)

(* A tiny deterministic problem factory used across suites: [n] processes
   in a random DAG over a library of [lib] nodes with [levels]
   h-versions. *)
let synthetic_problem ?(seed = 1234) ?(n = 12) ?(ser = 1e-11) ?(hpd = 0.25) ()
    =
  let spec =
    Ftes_gen.Workload.generate_spec ~seed ~index:0 ~n_processes:n ()
  in
  Ftes_gen.Workload.problem_of_spec { Ftes_gen.Workload.ser; hpd } spec

(* Toy instances small enough for [Ftes_core.Exhaustive.run] (and the
   exact branch-and-bound): [n] processes over a [lib]-node library
   with [levels] h-versions each, at a SER high enough that hardening
   and re-execution decisions actually matter. *)
let small_problem ?(n = 6) ?(lib = 2) ?(levels = 3) ?(ser = 1e-10)
    ?(hpd = 0.5) seed =
  let params =
    { Ftes_gen.Workload.default_params with
      Ftes_gen.Workload.n_library = lib;
      levels }
  in
  let spec =
    Ftes_gen.Workload.generate_spec ~params ~seed ~index:0 ~n_processes:n ()
  in
  Ftes_gen.Workload.problem_of_spec ~params
    { Ftes_gen.Workload.ser; hpd }
    spec

(* A random (all-members) design over the full library: random
   hardening levels, re-execution counts and mapping. *)
let random_design prng problem =
  let m = Ftes_model.Problem.n_library problem in
  let members = Array.init m Fun.id in
  let levels =
    Array.map
      (fun j -> 1 + Ftes_util.Prng.int prng (Ftes_model.Problem.levels problem j))
      members
  in
  let reexecs = Array.init m (fun _ -> Ftes_util.Prng.int prng 4) in
  let n = Ftes_model.Task_graph.n (Ftes_model.Problem.graph problem) in
  let mapping = Array.init n (fun _ -> Ftes_util.Prng.int prng m) in
  Ftes_model.Design.make problem ~members ~levels ~reexecs ~mapping

(* Policy sweeps shared by the equivalence / differential suites. *)
let named_bus_policies =
  [ ("fcfs", Ftes_sched.Bus.Fcfs);
    ("tdma", Ftes_sched.Bus.Tdma { slot_ms = 2.0 }) ]

let bus_policies = List.map snd named_bus_policies

let named_slack_policies =
  [ ("shared", Ftes_sched.Scheduler.Shared);
    ("conservative", Ftes_sched.Scheduler.Conservative);
    ("dedicated", Ftes_sched.Scheduler.Dedicated) ]

(* All five slack modes, the last two randomized per instance. *)
let slack_policies prng n =
  List.map snd named_slack_policies
  @ [ Ftes_sched.Scheduler.Per_process
        (Array.init n (fun _ -> Ftes_util.Prng.int prng 3));
      Ftes_sched.Scheduler.Checkpointed
        { kappa = Array.init n (fun _ -> 1 + Ftes_util.Prng.int prng 3);
          save_ms = 0.2 } ]

let design_on_all_nodes ?(levels = 1) ?(k = 0) problem =
  let m = Ftes_model.Problem.n_library problem in
  let members = Array.init m Fun.id in
  let mapping =
    Ftes_core.Mapping_opt.initial_mapping ~config:Ftes_core.Config.default
      problem ~members
  in
  Ftes_model.Design.make problem ~members
    ~levels:(Array.make m levels)
    ~reexecs:(Array.make m k) ~mapping
