(* Shared helpers for the test-suite. *)

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec scan i = i + m <= n && (String.sub s i m = affix || scan (i + 1)) in
  m = 0 || scan 0

let check_contains name s affix =
  Alcotest.(check bool)
    (Printf.sprintf "%s: output contains %S" name affix)
    true (contains s affix)

(* A tiny deterministic problem factory used across suites: [n] processes
   in a random DAG over a library of [lib] nodes with [levels]
   h-versions. *)
let synthetic_problem ?(seed = 1234) ?(n = 12) ?(ser = 1e-11) ?(hpd = 0.25) ()
    =
  let spec =
    Ftes_gen.Workload.generate_spec ~seed ~index:0 ~n_processes:n ()
  in
  Ftes_gen.Workload.problem_of_spec { Ftes_gen.Workload.ser; hpd } spec

(* Toy instances small enough for [Ftes_core.Exhaustive.run] (and the
   exact branch-and-bound): [n] processes over a [lib]-node library
   with [levels] h-versions each, at a SER high enough that hardening
   and re-execution decisions actually matter. *)
let small_problem ?(n = 6) ?(lib = 2) ?(levels = 3) ?(ser = 1e-10)
    ?(hpd = 0.5) seed =
  let params =
    { Ftes_gen.Workload.default_params with
      Ftes_gen.Workload.n_library = lib;
      levels }
  in
  let spec =
    Ftes_gen.Workload.generate_spec ~params ~seed ~index:0 ~n_processes:n ()
  in
  Ftes_gen.Workload.problem_of_spec ~params
    { Ftes_gen.Workload.ser; hpd }
    spec

(* A random (all-members) design over the full library: random
   hardening levels, re-execution counts and mapping. *)
let random_design prng problem =
  let m = Ftes_model.Problem.n_library problem in
  let members = Array.init m Fun.id in
  let levels =
    Array.map
      (fun j -> 1 + Ftes_util.Prng.int prng (Ftes_model.Problem.levels problem j))
      members
  in
  let reexecs = Array.init m (fun _ -> Ftes_util.Prng.int prng 4) in
  let n = Ftes_model.Task_graph.n (Ftes_model.Problem.graph problem) in
  let mapping = Array.init n (fun _ -> Ftes_util.Prng.int prng m) in
  Ftes_model.Design.make problem ~members ~levels ~reexecs ~mapping

(* Policy sweeps shared by the equivalence / differential suites. *)
let named_bus_policies =
  [ ("fcfs", Ftes_sched.Bus.Fcfs);
    ("tdma", Ftes_sched.Bus.Tdma { slot_ms = 2.0 }) ]

let bus_policies = List.map snd named_bus_policies

let named_slack_policies =
  [ ("shared", Ftes_sched.Scheduler.Shared);
    ("conservative", Ftes_sched.Scheduler.Conservative);
    ("dedicated", Ftes_sched.Scheduler.Dedicated) ]

(* All five slack modes, the last two randomized per instance. *)
let slack_policies prng n =
  List.map snd named_slack_policies
  @ [ Ftes_sched.Scheduler.Per_process
        (Array.init n (fun _ -> Ftes_util.Prng.int prng 3));
      Ftes_sched.Scheduler.Checkpointed
        { kappa = Array.init n (fun _ -> 1 + Ftes_util.Prng.int prng 3);
          save_ms = 0.2 } ]

(* --- what-if delta generators (shared by test_whatif and the bench) --- *)

(* A valid-by-construction random delta of the given class: every
   generated delta applies cleanly to [problem] (edited costs stay
   strictly between their level neighbours, edited pfails respect the
   hardening monotonicity and stay in [0,1), factors are positive), so
   property tests exercise the warm path rather than the error path. *)
let delta_of_class prng problem cls =
  let module P = Ftes_model.Problem in
  let module Delta = Ftes_whatif.Delta in
  let app = problem.P.app in
  let float01 () = Ftes_util.Prng.float prng 1.0 in
  let jitter lo hi = lo +. ((hi -. lo) *. float01 ()) in
  let lib = P.n_library problem in
  let node = Ftes_util.Prng.int prng lib in
  let level = 1 + Ftes_util.Prng.int prng (P.levels problem node) in
  let proc = Ftes_util.Prng.int prng (P.n_processes problem) in
  match cls with
  | "deadline-set" ->
      Delta.Deadline_set
        (app.Ftes_model.Application.deadline_ms *. jitter 0.85 1.15)
  | "deadline-scale" -> Delta.Deadline_scale (jitter 0.85 1.15)
  | "period-set" ->
      Delta.Period_set (app.Ftes_model.Application.period_ms *. jitter 0.9 1.5)
  | "period-scale" -> Delta.Period_scale (jitter 0.9 1.5)
  | "gamma-set" ->
      (* gamma must stay in (0, 1); scaling down is always safe. *)
      Delta.Gamma_set (app.Ftes_model.Application.gamma *. jitter 0.5 1.0)
  | "wcet-scale" -> Delta.Wcet_scale { node; factor = jitter 0.9 1.2 }
  | "ser-scale" ->
      (* Same factor on every cell preserves the level monotonicity;
         keep the largest cell below 1. *)
      let worst = ref 0.0 in
      for l = 1 to P.levels problem node do
        for i = 0 to P.n_processes problem - 1 do
          worst := Float.max !worst (P.pfail problem ~node ~level:l ~proc:i)
        done
      done;
      let cap = if !worst > 0.0 then Float.min 2.0 (0.9 /. !worst) else 2.0 in
      Delta.Ser_scale { node; factor = jitter 0.5 (Float.max 0.6 cap) }
  | "hversion-cost-set" ->
      (* Stay strictly between the neighbouring levels' costs. *)
      let c = P.cost problem ~node ~level in
      let lo =
        if level > 1 then P.cost problem ~node ~level:(level - 1) else 0.0
      in
      let hi =
        if level < P.levels problem node then
          P.cost problem ~node ~level:(level + 1)
        else c *. 1.5
      in
      Delta.Hversion_cost_set
        { node; level; cost = lo +. ((hi -. lo) *. jitter 0.25 0.75) }
  | "hversion-wcet-set" ->
      let w = P.wcet problem ~node ~level ~proc in
      Delta.Hversion_wcet_set
        { node; level; proc; wcet_ms = w *. jitter 0.8 1.2 }
  | "hversion-pfail-set" ->
      (* Stay within [pfail(level+1), pfail(level-1)] for this process
         so the non-increasing-in-level invariant survives the edit. *)
      let p = P.pfail problem ~node ~level ~proc in
      let lo =
        if level < P.levels problem node then
          P.pfail problem ~node ~level:(level + 1) ~proc
        else p *. 0.5
      in
      let hi =
        if level > 1 then P.pfail problem ~node ~level:(level - 1) ~proc
        else Float.min 0.99 ((p *. 1.5) +. 1e-15)
      in
      Delta.Hversion_pfail_set
        { node; level; proc; pfail = lo +. ((hi -. lo) *. jitter 0.0 1.0) }
  | "node-add" ->
      (* Clone a library node under a fresh name; the checked
         constructor re-validates the copied tables. *)
      let src = P.node problem node in
      Delta.Node_add
        (Ftes_model.Platform.node_type
           ~name:(src.Ftes_model.Platform.node_name ^ "'")
           ~versions:src.Ftes_model.Platform.versions)
  | "node-remove" ->
      if lib < 2 then Delta.Deadline_scale (jitter 0.85 1.15)
      else Delta.Node_remove node
  | "kmax-set" -> Delta.Kmax_set (Ftes_util.Prng.int prng 15)
  | other -> invalid_arg ("Helpers.delta_of_class: unknown class " ^ other)

(* A random valid delta of a random class. *)
let small_delta prng problem =
  let classes = Ftes_whatif.Delta.class_names in
  delta_of_class prng problem
    (List.nth classes (Ftes_util.Prng.int prng (List.length classes)))

(* A (delta, perturbed problem) pair; the generators above are
   valid-by-construction, so [apply] cannot fail. *)
let perturbed_problem prng problem =
  let delta = small_delta prng problem in
  match Ftes_whatif.Delta.apply problem delta with
  | Ok perturbed -> (delta, perturbed)
  | Error e ->
      invalid_arg
        (Printf.sprintf "Helpers.perturbed_problem: generator emitted an \
                         inapplicable delta (%s)" e)

let design_on_all_nodes ?(levels = 1) ?(k = 0) problem =
  let m = Ftes_model.Problem.n_library problem in
  let members = Array.init m Fun.id in
  let mapping =
    Ftes_core.Mapping_opt.initial_mapping ~config:Ftes_core.Config.default
      problem ~members
  in
  Ftes_model.Design.make problem ~members
    ~levels:(Array.make m levels)
    ~reexecs:(Array.make m k) ~mapping
