(* The design-service request lifecycle: daemon responses must be
   bit-identical to one-shot execution of the same request, 1:1 with
   the request stream and in request order under a concurrent pool,
   and garbage on the wire must come back as a structured error
   without killing the daemon.  The serve/* verifier rules are
   mutation-tested here: each rule must fire on a stream corrupted in
   exactly the way it audits.

   The golden JSONL pair under [golden/] pins the cruise-controller
   wire bytes.  To regenerate after an intentional change:

     FTES_REGEN_GOLDEN=$PWD/test/golden dune exec test/test_serve.exe *)

module Json = Ftes_util.Json
module Config = Ftes_core.Config
module Scheduler = Ftes_sched.Scheduler
module Bus = Ftes_sched.Bus
module Pool = Ftes_par.Pool
module Problem_io = Ftes_model.Problem_io
module Objective = Ftes_pareto.Objective
module Lifecycle = Ftes_driver.Lifecycle
module Request = Ftes_driver.Request
module Response = Ftes_driver.Response
module Exec = Ftes_driver.Exec
module Daemon = Ftes_driver.Daemon
module Subject = Ftes_verify.Subject
module Verify = Ftes_verify.Verify
module Serve_rules = Ftes_verify.Serve_rules
module Report = Ftes_verify.Report

let ok_exn = function Ok v -> v | Error e -> failwith e

let pareto_all =
  Request.Pareto { eps = 0.0; objectives = Objective.all; ref_cost = None }

(* The one-shot half of the differential: execute the request on the
   shared Exec path exactly as a CLI subcommand would, with no daemon
   envelope and no cache. *)
let one_shot (req : Request.t) =
  let outcome = Exec.run req in
  { Response.id = req.Request.id;
    seq = 0;
    verdict = Exec.verdict outcome;
    payload = Exec.payload req outcome;
    error = None;
    telemetry = None }

let daemon_once ?pool ?caches req =
  match Daemon.run_lines ?pool ?caches [ Request.to_string req ] with
  | [ r ] -> r
  | rs -> failwith (Printf.sprintf "expected 1 response, got %d" (List.length rs))

(* --- golden cruise-controller stream --- *)

let golden_requests () =
  let mk ?strategy ?slack ?bus id command =
    ok_exn (Request.make ~id ?strategy ?slack ?bus command (`Example "cc"))
  in
  [ mk "cc-analyze" Request.Analyze;
    mk "cc-opt" Request.Optimize;
    mk "cc-min" ~strategy:"min" Request.Optimize;
    mk "cc-max" ~strategy:"max" ~slack:Scheduler.Conservative
      ~bus:(Bus.Tdma { slot_ms = 2.0 })
      Request.Optimize;
    mk "cc-pareto" pareto_all ]

let read_lines path = In_channel.with_open_text path In_channel.input_lines

let write_lines path lines =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        lines)

let () =
  match Sys.getenv_opt "FTES_REGEN_GOLDEN" with
  | Some dir ->
      let requests = golden_requests () in
      let lines = List.map Request.to_string requests in
      (* Telemetry carries wall-clock times; the golden stream pins
         only the deterministic bytes. *)
      let responses = Daemon.run_lines ~telemetry:false lines in
      write_lines (Filename.concat dir "serve_cc_requests.jsonl") lines;
      write_lines
        (Filename.concat dir "serve_cc_responses.jsonl")
        (List.map Response.to_line responses);
      Printf.printf "regenerated serve_cc_{requests,responses}.jsonl in %s\n%!"
        dir;
      exit 0
  | None -> ()

let golden_path name =
  let local = Filename.concat "golden" name in
  if Sys.file_exists local then local
  else Filename.concat (Filename.concat "test" "golden") name

let test_golden_cc () =
  let requests = read_lines (golden_path "serve_cc_requests.jsonl") in
  let golden = read_lines (golden_path "serve_cc_responses.jsonl") in
  let fresh =
    List.map Response.to_line (Daemon.run_lines ~telemetry:false requests)
  in
  Alcotest.(check int)
    "response count" (List.length golden) (List.length fresh);
  List.iteri
    (fun i (want, got) ->
      Alcotest.(check string) (Printf.sprintf "response %d bytes" i) want got)
    (List.combine golden fresh)

(* The checked-in requests are the wire spelling of [golden_requests]:
   a drift in the request encoder fails here, not only in regen. *)
let test_golden_requests_current () =
  let golden = read_lines (golden_path "serve_cc_requests.jsonl") in
  let fresh = List.map Request.to_string (golden_requests ()) in
  Alcotest.(check (list string)) "request bytes" golden fresh

(* --- daemon == one-shot, across the wire policy grid --- *)

let test_differential_policy_grid () =
  List.iter
    (fun (sname, slack) ->
      List.iter
        (fun (bname, bus) ->
          let req =
            ok_exn
              (Request.make
                 ~id:(Printf.sprintf "fig1-%s-%s" sname bname)
                 ~slack ~bus Request.Optimize (`Example "fig1"))
          in
          Alcotest.(check string)
            (Printf.sprintf "fig1 optimize %s/%s" sname bname)
            (Response.fingerprint (one_shot req))
            (Response.fingerprint (daemon_once req)))
        Helpers.named_bus_policies)
    Helpers.named_slack_policies

let test_differential_commands () =
  let caches = Daemon.create_caches () in
  List.iter
    (fun (label, req) ->
      Alcotest.(check string) label
        (Response.fingerprint (one_shot req))
        (Response.fingerprint (daemon_once ~caches req)))
    [ ( "cc analyze",
        ok_exn (Request.make ~id:"cc-a" Request.Analyze (`Example "cc")) );
      ( "cc optimize",
        ok_exn (Request.make ~id:"cc-o" Request.Optimize (`Example "cc")) );
      ( "fig1 exact",
        ok_exn
          (Request.make ~id:"fig1-x"
             (Request.Exact { limit = None })
             (`Example "fig1")) );
      ( "fig1 pareto",
        ok_exn (Request.make ~id:"fig1-p" pareto_all (`Example "fig1")) ) ]

let prop_differential_inline =
  QCheck.Test.make ~count:6
    ~name:"daemon == one-shot on inline problems (seed x slack x bus)"
    QCheck.(triple small_nat (int_bound 2) bool)
    (fun (seed, slack_i, tdma) ->
      let problem = Helpers.small_problem seed in
      let slack = snd (List.nth Helpers.named_slack_policies slack_i) in
      let bus = if tdma then Bus.Tdma { slot_ms = 2.0 } else Bus.Fcfs in
      let req =
        ok_exn
          (Request.make ~id:"inline" ~slack ~bus Request.Optimize
             (`Problem problem))
      in
      Response.fingerprint (one_shot req)
      = Response.fingerprint (daemon_once req))

(* --- 1:1, ordered, concurrent --- *)

let test_order_under_pool () =
  let pool = Pool.create ~domains:4 () in
  let caches = Daemon.create_caches () in
  let requests =
    List.concat_map
      (fun strategy ->
        List.map
          (fun (sname, slack) ->
            ok_exn
              (Request.make
                 ~id:(Printf.sprintf "fig1-%s-%s" strategy sname)
                 ~strategy ~slack Request.Optimize (`Example "fig1")))
          Helpers.named_slack_policies)
      [ "opt"; "min"; "max" ]
    @ [ ok_exn (Request.make ~id:"cc-tail" Request.Analyze (`Example "cc")) ]
  in
  let lines = List.map Request.to_string requests in
  let responses = Daemon.run_lines ~pool ~caches ~first_seq:7 lines in
  Alcotest.(check int) "1:1" (List.length requests) (List.length responses);
  List.iteri
    (fun i (req, resp) ->
      Alcotest.(check int)
        (Printf.sprintf "seq of response %d" i)
        (7 + i) resp.Response.seq;
      Alcotest.(check string)
        (Printf.sprintf "id of response %d" i)
        req.Request.id resp.Response.id;
      Alcotest.(check string)
        (Printf.sprintf "fingerprint of response %d" i)
        (Response.fingerprint (one_shot req))
        (Response.fingerprint resp))
    (List.combine requests responses)

(* --- garbage in, structured error out --- *)

let test_malformed_lines_survive () =
  let lines =
    [ "this is not JSON";
      "{\"schema_version\": 99, \"id\": \"too-new\", \"command\": \
       \"analyze\", \"example\": \"fig1\"}";
      "{\"schema_version\": 1, \"id\": \"bad-cmd\", \"command\": \
       \"frobnicate\", \"example\": \"fig1\"}";
      "{\"schema_version\": 1, \"id\": \"bad-ex\", \"command\": \"analyze\", \
       \"example\": \"fig9\"}";
      "{\"schema_version\": 1, \"command\": \"analyze\", \"example\": \
       \"fig1\"}";
      Request.to_string
        (ok_exn (Request.make ~id:"good" Request.Analyze (`Example "fig1"))) ]
  in
  let responses = Daemon.run_lines lines in
  Alcotest.(check int) "1:1" (List.length lines) (List.length responses);
  let failed, good =
    match List.rev responses with
    | good :: rev_failed -> (List.rev rev_failed, good)
    | [] -> assert false
  in
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "line %d: verdict error" i)
        true
        (r.Response.verdict = Response.Failed);
      Alcotest.(check bool)
        (Printf.sprintf "line %d: non-empty error message" i)
        true
        (match r.Response.error with Some msg -> msg <> "" | None -> false);
      Alcotest.(check bool)
        (Printf.sprintf "line %d: empty payload" i)
        true
        (r.Response.payload = Json.Object []))
    failed;
  (* The daemon survived the garbage: the trailing valid request still
     executes normally. *)
  Alcotest.(check string) "survivor id" "good" good.Response.id;
  Alcotest.(check bool) "survivor verdict" true
    (good.Response.verdict = Response.Feasible);
  (* Echoed ids are best-effort even on parse failures. *)
  Alcotest.(check string) "id echoed from bad command"
    "bad-cmd" (List.nth responses 2).Response.id

(* --- verdict and exit semantics --- *)

let test_infeasible_verdict () =
  let problem = Problem_io.load (golden_path "infeasible-fig1.json") in
  let problem = ok_exn problem in
  let req =
    ok_exn (Request.make ~id:"inf" Request.Analyze (`Problem problem))
  in
  let resp = daemon_once req in
  Alcotest.(check bool) "daemon verdict infeasible" true
    (resp.Response.verdict = Response.Infeasible);
  Alcotest.(check string) "one-shot agrees"
    (Response.fingerprint (one_shot req))
    (Response.fingerprint resp)

let test_exit_of_verdict () =
  List.iter
    (fun (verdict, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "exit of %S" (Response.verdict_name verdict))
        expected
        (Lifecycle.int_of_exit_code (Response.exit_of_verdict verdict)))
    [ (Response.Feasible, 0);
      (Response.No_solution, 0);
      (Response.Failed, 0);
      (Response.Infeasible, 3);
      (Response.Lint_failure, 3) ]

(* --- wire round-trips --- *)

let prop_request_roundtrip =
  QCheck.Test.make ~count:40
    ~name:"Request.of_string (Request.to_string r) re-emits the same bytes"
    QCheck.(quad (int_bound 3) (int_bound 2) bool small_nat)
    (fun (cmd_i, slack_i, tdma, kmax) ->
      let command =
        match cmd_i with
        | 0 -> Request.Analyze
        | 1 -> Request.Optimize
        | 2 -> Request.Exact { limit = Some (1 + kmax) }
        | _ ->
            Request.Pareto
              { eps = 0.1;
                objectives = Objective.all;
                ref_cost = Some 42.0 }
      in
      let slack = snd (List.nth Helpers.named_slack_policies slack_i) in
      let bus = if tdma then Bus.Tdma { slot_ms = 2.0 } else Bus.Fcfs in
      let req =
        ok_exn
          (Request.make ~id:"rt" ~slack ~bus ~kmax:(kmax mod 3) command
             (`Example "fig1"))
      in
      let line = Request.to_string req in
      Request.to_string (ok_exn (Request.of_string line)) = line)

let test_response_roundtrip () =
  let resp =
    { Response.id = "rt";
      seq = 3;
      verdict = Response.Lint_failure;
      payload = Json.Object [ ("feasible", Json.Bool false) ];
      error = None;
      telemetry =
        Some
          { Response.queue_wait_ns = 12;
            wall_ns = 3456;
            sfp_hits = 7;
            sfp_misses = 8;
            eval_hits = 9;
            eval_misses = 10;
            cache_problems = 2;
            registry_hits = 1;
            registry_misses = 4;
            reuse = None } }
  in
  let line = Response.to_line resp in
  Alcotest.(check string) "re-emitted bytes" line
    (Response.to_line (ok_exn (Response.of_string line)))

(* --- warm cache: invisible to results, visible to counters --- *)

let test_warm_cache_fingerprints () =
  let caches = Daemon.create_caches () in
  let req strategy =
    ok_exn
      (Request.make ~id:("cc-" ^ strategy) ~strategy Request.Optimize
         (`Example "cc"))
  in
  let cold = daemon_once ~caches (req "opt") in
  let warm = daemon_once ~caches (req "opt") in
  Alcotest.(check string) "warm == cold payload bytes"
    (Json.to_string ~minify:true cold.Response.payload)
    (Json.to_string ~minify:true warm.Response.payload);
  (* Strategies differing only in hardening policy share one bucket. *)
  let _ = daemon_once ~caches (req "min") in
  Alcotest.(check int) "one problem bucket" 1 (Daemon.cache_problems caches);
  Alcotest.(check bool) "registry hits observed" true
    (Daemon.cache_hits caches >= 2)

(* --- the serve/* rules fire on corrupted streams --- *)

let envelopes responses =
  List.map
    (fun r -> ok_exn (Json.of_string (Response.to_line r)))
    responses

let subject_of stream =
  Subject.with_responses
    (Subject.of_problem (Ftes_cc.Fig_examples.fig1_problem ()))
    stream

let run_rules stream = Verify.run ~rules:Serve_rules.all (subject_of stream)

let set key value = function
  | Json.Object fields ->
      Json.Object
        (List.map
           (fun (k, v) -> if k = key then (k, value) else (k, v))
           fields)
  | other -> other

let mutate_nth i f stream =
  List.mapi (fun j json -> if j = i then f json else json) stream

let clean_stream =
  lazy
    (let caches = Daemon.create_caches () in
     envelopes
       (Daemon.run_lines ~caches
          (List.map Request.to_string
             [ ok_exn (Request.make ~id:"s0" Request.Analyze (`Example "fig1"));
               ok_exn
                 (Request.make ~id:"s1" Request.Optimize (`Example "fig1"));
               ok_exn
                 (Request.make ~id:"s2" ~strategy:"min" Request.Optimize
                    (`Example "fig1")) ])))

let check_fires name rule stream =
  let report = run_rules stream in
  Alcotest.(check bool) (name ^ ": report rejects") false (Report.ok report);
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s fired" name rule)
    true
    (List.mem rule (Report.fired_rules report))

let test_rules_accept_clean_stream () =
  let report = run_rules (Lazy.force clean_stream) in
  if not (Report.ok report) then
    Alcotest.failf "clean stream rejected:\n%s" (Report.to_text report)

let test_rule_mutations () =
  let stream = Lazy.force clean_stream in
  check_fires "unknown verdict" "serve/envelope"
    (mutate_nth 0 (set "verdict" (Json.String "maybe")) stream);
  check_fires "error message on success" "serve/envelope"
    (mutate_nth 1
       (fun json ->
         match json with
         | Json.Object fields ->
             Json.Object (fields @ [ ("error", Json.String "boom") ])
         | other -> other)
       stream);
  check_fires "payload stripped of its report header" "serve/envelope"
    (mutate_nth 1 (set "payload" (Json.Object [])) stream);
  check_fires "seq reordered" "serve/order"
    (mutate_nth 2 (set "seq" (Json.Number 0.)) stream);
  check_fires "verdict contradicts payload" "serve/verdict"
    (mutate_nth 1 (set "verdict" (Json.String "infeasible")) stream);
  check_fires "negative wall time" "serve/telemetry"
    (mutate_nth 0
       (fun json ->
         match Json.member "telemetry" json with
         | Ok tel -> set "telemetry" (set "wall_ns" (Json.Number (-1.)) tel) json
         | Error _ -> json)
       stream);
  check_fires "cache counter falls along the stream" "serve/telemetry"
    (mutate_nth 2
       (fun json ->
         match Json.member "telemetry" json with
         | Ok tel ->
             set "telemetry"
               (set "sfp_cache"
                  (Json.Object
                     [ ("hits", Json.Number 0.); ("misses", Json.Number 0.) ])
                  tel)
               json
         | Error _ -> json)
       stream)

(* --- forward compatibility: unknown optional request fields --- *)

(* A v1 envelope may grow optional fields (as base_id/delta did); an
   older server must serve such a request, warning about — not
   rejecting — what it does not understand. *)
let test_unknown_field_forward_compat () =
  let line =
    {|{"schema_version": 1, "id": "fc", "command": "analyze", "example": "fig1", "x_future_hint": {"nested": true}}|}
  in
  let warnings = ref [] in
  let req =
    ok_exn
      (Request.of_string ~on_warning:(fun w -> warnings := w :: !warnings) line)
  in
  Alcotest.(check string) "request parsed" "fc" req.Request.id;
  Alcotest.(check bool) "warning names the ignored field" true
    (List.exists (fun w -> Helpers.contains w "x_future_hint") !warnings);
  (* Parsing must also succeed with no warning sink installed. *)
  let _ = ok_exn (Request.of_string line) in
  (* And the daemon serves the request rather than failing it. *)
  match Daemon.run_lines [ line ] with
  | [ r ] ->
      Alcotest.(check bool) "served, not rejected" true
        (r.Response.verdict <> Response.Failed)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)

(* --- warm what-if requests through the daemon --- *)

module Delta = Ftes_whatif.Delta

(* Payloads embed their subject spelling ("example:fig1" vs "base:b0"),
   which is presentation, not result; normalize it before comparing
   across origins. *)
let payload_sans_subject (r : Response.t) =
  Json.to_string ~minify:true (set "subject" (Json.String "-") r.Response.payload)

let whatif_wire_line = String.concat ""
    [ {|{"schema_version": 1, "id": "w1", "command": "optimize", |};
      {|"base_id": "b0", "delta": {"class": "deadline-scale", "factor": 0.95}}|} ]

let test_whatif_daemon_warm () =
  let caches = Daemon.create_caches () in
  let base_line =
    Request.to_string
      (ok_exn (Request.make ~id:"b0" Request.Optimize (`Example "fig1")))
  in
  (* Same-batch reference: registration is post-batch, so the warm
     request deterministically fails whatever the pool schedule. *)
  (match Daemon.run_lines ~caches [ base_line; whatif_wire_line ] with
  | [ b; w ] ->
      Alcotest.(check bool) "base feasible" true
        (b.Response.verdict = Response.Feasible);
      Alcotest.(check bool) "same-batch base_id rejected" true
        (w.Response.verdict = Response.Failed);
      Alcotest.(check bool) "error names the unknown base" true
        (match w.Response.error with
        | Some e -> Helpers.contains e "b0"
        | None -> false)
  | rs -> Alcotest.failf "expected 2 responses, got %d" (List.length rs));
  (* Next batch: the registered walk answers warm. *)
  let warm =
    match Daemon.run_lines ~caches [ whatif_wire_line ] with
    | [ w ] -> w
    | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs)
  in
  Alcotest.(check bool) "warm verdict feasible" true
    (warm.Response.verdict = Response.Feasible);
  Alcotest.(check bool) "registry hit recorded" true
    (Daemon.registry_hits caches >= 1);
  (match warm.Response.telemetry with
  | Some { Response.reuse = Some r; _ } ->
      Alcotest.(check string) "reuse block tagged with the delta class"
        "deadline-scale" r.Ftes_whatif.Reuse.delta_class
  | Some { Response.reuse = None; _ } ->
      Alcotest.fail "warm response without a reuse block"
  | None -> Alcotest.fail "daemon response without telemetry");
  (* The warm payload is byte-identical (modulo subject spelling) to a
     cold optimize of the perturbed problem. *)
  let perturbed =
    ok_exn
      (Delta.apply
         (ok_exn (Request.problem_of_example "fig1"))
         (Delta.Deadline_scale 0.95))
  in
  let cold =
    one_shot
      (ok_exn (Request.make ~id:"w1" Request.Optimize (`Problem perturbed)))
  in
  Alcotest.(check string) "warm == cold perturbed payload"
    (payload_sans_subject cold) (payload_sans_subject warm);
  (* And to a one-shot what-if (no base_id: base computed in-request). *)
  let oneshot_warm =
    one_shot
      (ok_exn
         (Request.make ~id:"w1"
            ~whatif:{ Request.base_id = None; delta = Delta.Deadline_scale 0.95 }
            Request.Optimize (`Example "fig1")))
  in
  Alcotest.(check string) "base_id warm == one-shot warm payload"
    (payload_sans_subject oneshot_warm)
    (payload_sans_subject warm)

let test_whatif_daemon_rejects () =
  (* Unknown base in a fresh resident session: a structured error
     naming the id, counted as a registry miss. *)
  let caches = Daemon.create_caches () in
  (match Daemon.run_lines ~caches [ whatif_wire_line ] with
  | [ w ] ->
      Alcotest.(check bool) "unknown base fails" true
        (w.Response.verdict = Response.Failed);
      Alcotest.(check bool) "error mentions the base id" true
        (match w.Response.error with
        | Some e -> Helpers.contains e "b0"
        | None -> false)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  Alcotest.(check bool) "lookup counted as a registry miss" true
    (Daemon.registry_misses caches >= 1);
  (* A cache-less batch has no registry at all: still structured. *)
  (match Daemon.run_lines [ whatif_wire_line ] with
  | [ w ] ->
      Alcotest.(check bool) "no-registry batch fails" true
        (w.Response.verdict = Response.Failed);
      Alcotest.(check bool) "error explains the missing registry" true
        (match w.Response.error with
        | Some e -> Helpers.contains e "resident"
        | None -> false)
  | rs -> Alcotest.failf "expected 1 response, got %d" (List.length rs));
  (* Without a resident session there is no base resolver at all. *)
  match Request.of_string whatif_wire_line with
  | Ok _ -> Alcotest.fail "base_id parsed without a resolver"
  | Error e ->
      Alcotest.(check bool) "error explains the missing resolver" true
        (Helpers.contains e "resident")

(* The daemon's own self-test must agree with the rules it audits. *)
let test_daemon_audit () =
  let responses, report = Daemon.audit () in
  Alcotest.(check int) "audit stream size" 5 (List.length responses);
  if not (Report.ok report) then
    Alcotest.failf "audit rejected:\n%s" (Report.to_text report)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_serve"
    [ ( "differential",
        [ Alcotest.test_case "fig1 optimize across slack x bus" `Quick
            test_differential_policy_grid;
          Alcotest.test_case "analyze/optimize/exact/pareto" `Quick
            test_differential_commands;
          q prop_differential_inline ] );
      ( "stream",
        [ Alcotest.test_case "1:1, ordered, concurrent pool" `Quick
            test_order_under_pool;
          Alcotest.test_case "malformed lines get structured errors" `Quick
            test_malformed_lines_survive ] );
      ( "verdicts",
        [ Alcotest.test_case "proven-infeasible surfaces as a verdict" `Quick
            test_infeasible_verdict;
          Alcotest.test_case "exit codes of verdicts" `Quick
            test_exit_of_verdict ] );
      ( "wire",
        [ q prop_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "golden cc requests are current" `Quick
            test_golden_requests_current;
          Alcotest.test_case "golden cc stream" `Quick test_golden_cc;
          Alcotest.test_case "unknown optional fields are served" `Quick
            test_unknown_field_forward_compat ] );
      ( "caches",
        [ Alcotest.test_case "warm cache is invisible to payload bytes" `Quick
            test_warm_cache_fingerprints;
          Alcotest.test_case "base_id warm start through the registry" `Quick
            test_whatif_daemon_warm;
          Alcotest.test_case "what-if rejections are structured" `Quick
            test_whatif_daemon_rejects ] );
      ( "rules",
        [ Alcotest.test_case "clean stream accepted" `Quick
            test_rules_accept_clean_stream;
          Alcotest.test_case "each serve rule fires on its corruption" `Quick
            test_rule_mutations;
          Alcotest.test_case "ftes serve --audit machinery" `Quick
            test_daemon_audit ] ) ]
