(* Tests for the pre-flight analyzer: soundness of every bound against
   exhaustive and heuristic optima, bit-identity of the pruned design
   walk, the certificate round-trip, and mutation tests asserting that
   corrupted certificates trip the matching analyze/* audit rule. *)

module Preflight = Ftes_analyze.Preflight
module Certificate = Ftes_analyze.Certificate
module Certificate_io = Ftes_analyze.Certificate_io
module Bound = Ftes_sfp.Bound
module Problem = Ftes_model.Problem
module Application = Ftes_model.Application
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Exhaustive = Ftes_core.Exhaustive
module Archive = Ftes_pareto.Archive
module Verify = Ftes_verify.Verify
module Report = Ftes_verify.Report
module Subject = Ftes_verify.Subject

(* Rebuild a problem with its deadline (and period) scaled, keeping
   everything else; the lever all infeasibility tests pull. *)
let with_deadline_factor problem factor =
  let app = problem.Problem.app in
  let scaled =
    Application.make ~name:app.Application.name
      ~process_names:app.Application.process_names
      ~period_ms:(app.Application.period_ms *. factor)
      ~graph:app.Application.graph
      ~deadline_ms:(app.Application.deadline_ms *. factor)
      ~gamma:app.Application.gamma
      ~recovery_overhead_ms:app.Application.recovery_overhead_ms ()
  in
  Problem.make ~app:scaled ~library:problem.Problem.library

(* Toy instances small enough for [Exhaustive.run]. *)
let small_problem ?(n = 5) seed = Helpers.small_problem ~n seed

(* --- analyzer verdicts --- *)

let test_feasible_examples () =
  List.iter
    (fun (name, problem) ->
      let pf = Preflight.run problem in
      Alcotest.(check bool)
        (name ^ ": no witness on a solvable instance")
        true (Preflight.feasible pf);
      Alcotest.(check bool)
        (name ^ ": finite cost lower bound")
        true
        (Float.is_finite pf.Preflight.cost_lower_bound))
    [ ("fig1", Ftes_cc.Fig_examples.fig1_problem ());
      ("cc", Ftes_cc.Cruise_control.problem ()) ]

let test_infeasible_by_deadline () =
  let problem =
    with_deadline_factor (Ftes_cc.Fig_examples.fig1_problem ()) 0.05
  in
  let pf = Preflight.run problem in
  Alcotest.(check bool) "witnesses found" true (pf.Preflight.witnesses <> []);
  Alcotest.(check bool) "not feasible" false (Preflight.feasible pf);
  (* The proof must be real: no design can exist. *)
  Alcotest.(check bool) "strategy agrees" true
    (Design_strategy.run ~config:Config.default problem = None);
  (* Witness strings render without raising. *)
  List.iter
    (fun w -> ignore (Preflight.witness_to_string problem w))
    pf.Preflight.witnesses

let test_counters_move () =
  let c = Ftes_obs.Metrics.counter "analyze.bounds_derived" in
  let before = Ftes_obs.Metrics.counter_value c in
  ignore (Preflight.run (Ftes_cc.Fig_examples.fig1_problem ()));
  Alcotest.(check bool) "bounds_derived bumped" true
    (Ftes_obs.Metrics.counter_value c > before)

(* --- lower-bound soundness (satellite: unit checks vs Exhaustive) --- *)

let test_cost_lb_vs_exhaustive () =
  List.iter
    (fun seed ->
      let problem = small_problem seed in
      let sfp_lb = Bound.cost_lower_bound problem in
      let pf = Preflight.run problem in
      match Exhaustive.run ~config:Config.default problem with
      | None -> ()
      | Some e ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: Bound lb %g <= optimum %g" seed sfp_lb
               e.Redundancy_opt.cost)
            true
            (sfp_lb <= e.Redundancy_opt.cost +. 1e-9);
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: preflight lb %g <= optimum %g" seed
               pf.Preflight.cost_lower_bound e.Redundancy_opt.cost)
            true
            (pf.Preflight.cost_lower_bound <= e.Redundancy_opt.cost +. 1e-9);
          Alcotest.(check bool) "deadline-aware lb dominates sfp lb" true
            (pf.Preflight.cost_lower_bound >= sfp_lb -. 1e-9))
    [ 1; 2; 3 ]

let test_cost_lb_on_cc () =
  (* cc is far beyond Exhaustive; the heuristic cost still upper-bounds
     the true optimum, so the bound must stay below it. *)
  let problem = Ftes_cc.Cruise_control.problem () in
  let lb = Bound.cost_lower_bound problem in
  let pf = Preflight.run problem in
  match Design_strategy.run ~config:Config.default problem with
  | None -> Alcotest.fail "cc has a feasible design"
  | Some s ->
      let cost = s.Design_strategy.result.Redundancy_opt.cost in
      Alcotest.(check bool)
        (Printf.sprintf "Bound lb %g <= heuristic %g" lb cost)
        true (lb <= cost +. 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "preflight lb %g <= heuristic %g"
           pf.Preflight.cost_lower_bound cost)
        true
        (pf.Preflight.cost_lower_bound <= cost +. 1e-9)

(* --- qcheck soundness properties (satellite) --- *)

let qcheck_infeasible_sound =
  QCheck.Test.make ~count:25
    ~name:"analyzer-infeasible implies no exhaustive design"
    QCheck.(pair (int_bound 1000) (int_bound 12))
    (fun (seed, tenths) ->
      let factor = 0.3 +. (0.1 *. float_of_int tenths) in
      let problem = with_deadline_factor (small_problem ~n:4 seed) factor in
      let pf = Preflight.run problem in
      Preflight.feasible pf
      || Exhaustive.run ~config:Config.default problem = None)

let qcheck_lb_below_frontier =
  QCheck.Test.make ~count:15
    ~name:"lower bound never exceeds a feasible frontier cost"
    QCheck.(int_bound 1000)
    (fun seed ->
      let problem = small_problem seed in
      let pf = Preflight.run problem in
      let frontier =
        Design_strategy.run_frontier ~config:Config.default problem
      in
      List.for_all
        (fun (p : Archive.point) ->
          pf.Preflight.cost_lower_bound <= p.Archive.cost +. 1e-9)
        (Archive.points frontier.Design_strategy.archive))

(* --- pruning: bit-identical walks --- *)

let solution_fields (s : Design_strategy.solution option) =
  Option.map
    (fun (s : Design_strategy.solution) ->
      let r = s.Design_strategy.result in
      ( r.Redundancy_opt.design,
        r.Redundancy_opt.schedule_length,
        r.Redundancy_opt.cost,
        s.Design_strategy.explored ))
    s

let test_pruned_walk_identical () =
  let c_assign = Ftes_obs.Metrics.counter "analyze.pruned_assignments" in
  let c_arch = Ftes_obs.Metrics.counter "analyze.pruned_architectures" in
  let skipped = ref 0 in
  List.iter
    (fun (problem, label) ->
      let pf = Preflight.run problem in
      let plain = Design_strategy.run ~config:Config.default problem in
      let before =
        Ftes_obs.Metrics.counter_value c_assign
        + Ftes_obs.Metrics.counter_value c_arch
      in
      let pruned =
        Design_strategy.run ~preflight:pf ~config:Config.default problem
      in
      skipped :=
        !skipped
        + Ftes_obs.Metrics.counter_value c_assign
        + Ftes_obs.Metrics.counter_value c_arch
        - before;
      Alcotest.(check bool)
        (label ^ ": pruned walk returns the identical solution")
        true
        (solution_fields plain = solution_fields pruned))
    [ (Ftes_cc.Fig_examples.fig1_problem (), "fig1");
      (small_problem 7, "seed 7");
      (with_deadline_factor (small_problem 8) 0.6, "seed 8 tight");
      (with_deadline_factor (Helpers.synthetic_problem ~seed:9 ~n:10 ()) 0.8,
       "seed 9 tight");
      (Helpers.synthetic_problem ~seed:11 ~n:10 ~ser:3e-8 (), "seed 11 high-ser")
    ];
  Alcotest.(check bool)
    (Printf.sprintf "pre-flight pruning fired at least once (%d skips)"
       !skipped)
    true (!skipped > 0)

let test_frontier_pruned_identical () =
  let problem = with_deadline_factor (small_problem 12) 0.8 in
  let pf = Preflight.run problem in
  let points frontier =
    List.map
      (fun (p : Archive.point) ->
        (p.Archive.design, p.Archive.cost, p.Archive.slack, p.Archive.margin))
      (Archive.points frontier.Design_strategy.archive)
  in
  let plain = Design_strategy.run_frontier ~config:Config.default problem in
  let pruned =
    Design_strategy.run_frontier ~preflight:pf ~config:Config.default problem
  in
  Alcotest.(check bool) "identical frontier" true (points plain = points pruned)

let test_preflight_validation () =
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  let other = Ftes_cc.Fig_examples.fig3_problem () in
  let pf = Preflight.run problem in
  let raises f =
    try
      ignore (f ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "other problem rejected" true
    (raises (fun () ->
         Design_strategy.run ~preflight:pf ~config:Config.default other));
  Alcotest.(check bool) "kmax mismatch rejected" true
    (raises (fun () ->
         Design_strategy.run ~preflight:pf
           ~config:(Config.with_kmax 3 Config.default)
           problem));
  Alcotest.(check bool) "slack bucket mismatch rejected" true
    (raises (fun () ->
         Design_strategy.run ~preflight:pf
           ~config:
             (Config.with_slack
                (Ftes_sched.Scheduler.Per_process
                   (Array.make (Problem.n_processes problem) 0))
                Config.default)
           problem))

(* --- certificate round-trip --- *)

let test_certificate_roundtrip () =
  List.iter
    (fun problem ->
      let cert = Certificate.of_preflight (Preflight.run problem) in
      let s = Certificate_io.to_string cert in
      match Certificate_io.of_string s with
      | Error e -> Alcotest.failf "round-trip failed: %s" e
      | Ok cert' ->
          Alcotest.(check string) "identical rendering" s
            (Certificate_io.to_string cert'))
    [ Ftes_cc.Fig_examples.fig1_problem ();
      with_deadline_factor (Ftes_cc.Fig_examples.fig1_problem ()) 0.05;
      Ftes_cc.Cruise_control.problem () ]

let test_certificate_versioning () =
  let cert =
    Certificate.of_preflight
      (Preflight.run (Ftes_cc.Fig_examples.fig1_problem ()))
  in
  let json = Certificate_io.to_json cert in
  let strip = function
    | Ftes_util.Json.Object fields ->
        Ftes_util.Json.Object
          (List.filter (fun (k, _) -> k <> "schema_version") fields)
    | j -> j
  in
  let warned = ref false in
  (match
     Certificate_io.of_json ~on_warning:(fun _ -> warned := true) (strip json)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "v0 document rejected: %s" e);
  Alcotest.(check bool) "v0 deprecation warning" true !warned;
  let bump = function
    | Ftes_util.Json.Object fields ->
        Ftes_util.Json.Object
          (List.map
             (fun (k, v) ->
               if k = "schema_version" then (k, Ftes_util.Json.Number 99.0)
               else (k, v))
             fields)
    | j -> j
  in
  match Certificate_io.of_json (bump json) with
  | Ok _ -> Alcotest.fail "unknown version accepted"
  | Error e -> Helpers.check_contains "version error" e "schema_version 99"

(* --- offline audit: acceptance and mutation tests --- *)

let audit ?design problem cert =
  let subject =
    match design with
    | None -> Subject.of_problem problem
    | Some d -> Subject.of_design problem d
  in
  Verify.run (Subject.with_certificate subject cert)

let fired report = Report.fired_rules report

let test_audit_accepts () =
  List.iter
    (fun problem ->
      let cert = Certificate.of_preflight (Preflight.run problem) in
      let report = audit problem cert in
      Alcotest.(check bool) "clean audit" true (Report.ok report);
      Alcotest.(check bool) "analyze rules ran" true
        (List.mem "analyze/bounds" report.Report.rules_run))
    [ Ftes_cc.Fig_examples.fig1_problem ();
      with_deadline_factor (Ftes_cc.Fig_examples.fig1_problem ()) 0.05 ]

let test_audit_skipped_without_certificate () =
  let report =
    Verify.run (Subject.of_problem (Ftes_cc.Fig_examples.fig1_problem ()))
  in
  Alcotest.(check bool) "analyze rules skipped" true
    (List.mem "analyze/bounds" report.Report.rules_skipped)

(* Mutation harness: corrupt one certificate field, expect exactly the
   matching rule family to fire. *)
let expect_rule problem mutate rule_id label =
  let cert = Certificate.of_preflight (Preflight.run problem) in
  let report = audit problem (mutate cert) in
  Alcotest.(check bool) (label ^ ": audit fails") false (Report.ok report);
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s fired (got: %s)" label rule_id
       (String.concat ", " (fired report)))
    true
    (List.mem rule_id (fired report))

let test_mutation_lower_bound () =
  expect_rule
    (Ftes_cc.Fig_examples.fig1_problem ())
    (fun cert ->
      { cert with
        Certificate.cost_lower_bound =
          cert.Certificate.cost_lower_bound +. 7.0 })
    "analyze/bounds" "inflated cost lower bound"

let test_mutation_verdict () =
  expect_rule
    (with_deadline_factor (Ftes_cc.Fig_examples.fig1_problem ()) 0.05)
    (fun cert -> { cert with Certificate.feasible = true })
    "analyze/verdict" "flipped verdict"

let test_mutation_critical_path () =
  expect_rule
    (Ftes_cc.Fig_examples.fig1_problem ())
    (fun cert ->
      { cert with
        Certificate.critical_path_ms =
          cert.Certificate.critical_path_ms /. 2.0 })
    "analyze/bounds" "halved critical path"

let test_mutation_threshold () =
  expect_rule
    (Ftes_cc.Fig_examples.fig1_problem ())
    (fun cert ->
      { cert with Certificate.threshold = cert.Certificate.threshold *. 10.0 })
    "analyze/schema" "inflated threshold premise"

let test_mutation_kneed () =
  expect_rule
    (Ftes_cc.Fig_examples.fig1_problem ())
    (fun cert ->
      let kneed = Array.map (Array.map Array.copy) cert.Certificate.kneed in
      kneed.(0).(0).(0) <- kneed.(0).(0).(0) + 1;
      { cert with Certificate.kneed })
    "analyze/bounds" "tampered kneed table"

let test_mutation_witness_evidence () =
  expect_rule
    (with_deadline_factor (Ftes_cc.Fig_examples.fig1_problem ()) 0.05)
    (fun cert ->
      { cert with
        Certificate.witnesses =
          List.map
            (function
              | Preflight.Critical_path { length_ms; path } ->
                  Preflight.Critical_path
                    { length_ms = length_ms /. 2.0; path }
              | w -> w)
            cert.Certificate.witnesses })
    "analyze/verdict" "tampered witness evidence"

let test_lower_bound_vs_design () =
  (* A certificate claiming a bound above an achieved design cost must
     trip the cross-check even when the claim is internally plausible:
     the design anchors it. *)
  let problem = Ftes_cc.Fig_examples.fig1_problem () in
  match Design_strategy.run ~config:Config.default problem with
  | None -> Alcotest.fail "fig1 has a feasible design"
  | Some s ->
      let design = s.Design_strategy.result.Redundancy_opt.design in
      let cost = s.Design_strategy.result.Redundancy_opt.cost in
      let cert = Certificate.of_preflight (Preflight.run problem) in
      let lying = { cert with Certificate.cost_lower_bound = cost +. 5.0 } in
      let report = audit ~design problem lying in
      Alcotest.(check bool) "audit fails" false (Report.ok report);
      Alcotest.(check bool) "analyze/lower-bound fired" true
        (List.mem "analyze/lower-bound" (fired report))

let () =
  Alcotest.run "ftes_analyze"
    [ ( "preflight",
        [ Alcotest.test_case "solvable examples pass" `Quick
            test_feasible_examples;
          Alcotest.test_case "impossible deadline is proven" `Quick
            test_infeasible_by_deadline;
          Alcotest.test_case "counters move" `Quick test_counters_move ] );
      ( "lower_bounds",
        [ Alcotest.test_case "vs exhaustive optima" `Slow
            test_cost_lb_vs_exhaustive;
          Alcotest.test_case "vs cc heuristic" `Slow test_cost_lb_on_cc;
          QCheck_alcotest.to_alcotest qcheck_infeasible_sound;
          QCheck_alcotest.to_alcotest qcheck_lb_below_frontier ] );
      ( "pruning",
        [ Alcotest.test_case "bit-identical optimize walk" `Slow
            test_pruned_walk_identical;
          Alcotest.test_case "bit-identical frontier" `Quick
            test_frontier_pruned_identical;
          Alcotest.test_case "premise validation" `Quick
            test_preflight_validation ] );
      ( "certificate",
        [ Alcotest.test_case "round-trip" `Quick test_certificate_roundtrip;
          Alcotest.test_case "versioning" `Quick test_certificate_versioning ]
      );
      ( "audit",
        [ Alcotest.test_case "accepts honest certificates" `Quick
            test_audit_accepts;
          Alcotest.test_case "skipped without certificate" `Quick
            test_audit_skipped_without_certificate;
          Alcotest.test_case "mutation: lower bound" `Quick
            test_mutation_lower_bound;
          Alcotest.test_case "mutation: verdict" `Quick test_mutation_verdict;
          Alcotest.test_case "mutation: critical path" `Quick
            test_mutation_critical_path;
          Alcotest.test_case "mutation: threshold" `Quick
            test_mutation_threshold;
          Alcotest.test_case "mutation: kneed table" `Quick
            test_mutation_kneed;
          Alcotest.test_case "mutation: witness evidence" `Quick
            test_mutation_witness_evidence;
          Alcotest.test_case "lower bound vs design" `Quick
            test_lower_bound_vs_design ] ) ]
