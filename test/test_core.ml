(* Tests for the optimization heuristics of Section 6: ReExecutionOpt,
   RedundancyOpt, the tabu MappingAlgorithm and DesignStrategy. *)

module Config = Ftes_core.Config
module Re_execution_opt = Ftes_core.Re_execution_opt
module Redundancy_opt = Ftes_core.Redundancy_opt
module Mapping_opt = Ftes_core.Mapping_opt
module Design_strategy = Ftes_core.Design_strategy
module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp

let fig1 = Ftes_cc.Fig_examples.fig1_problem
let fig3 = Ftes_cc.Fig_examples.fig3_problem

(* --- ReExecutionOpt --- *)

let test_reexec_fig4a () =
  let problem = fig1 () in
  let base = Design.with_reexecs (Ftes_cc.Fig_examples.fig4a problem) [| 0; 0 |] in
  match Re_execution_opt.for_mapping problem base with
  | None -> Alcotest.fail "goal should be reachable"
  | Some k -> Alcotest.(check (array int)) "one re-execution per node" [| 1; 1 |] k

let test_reexec_greedy_picks_largest_gain () =
  (* Two nodes; the second is an order of magnitude less reliable, so
     the first re-execution must go there (the paper's guiding
     example). *)
  let graph = Ftes_model.Task_graph.make ~n:2 [] in
  let app =
    Ftes_model.Application.make ~graph ~deadline_ms:1000.0 ~gamma:1e-5
      ~recovery_overhead_ms:1.0 ()
  in
  let node name p =
    Ftes_model.Platform.node_type ~name
      ~versions:
        [| Ftes_model.Platform.hversion ~level:1 ~cost:1.0
             ~wcet_ms:[| 10.0; 10.0 |] ~pfail:[| p; p |] |]
  in
  let problem =
    Problem.make ~app ~library:[| node "A" 1e-6; node "B" 1e-4 |]
  in
  let design =
    Design.make problem ~members:[| 0; 1 |] ~levels:[| 1; 1 |]
      ~reexecs:[| 0; 0 |] ~mapping:[| 0; 1 |]
  in
  match Re_execution_opt.for_mapping problem design with
  | None -> Alcotest.fail "reachable"
  | Some k ->
      Alcotest.(check bool) "unreliable node gets at least as many" true
        (k.(1) >= k.(0));
      Alcotest.(check bool) "some re-execution on B" true (k.(1) >= 1)

let test_reexec_zero_when_reliable () =
  let problem = fig1 () in
  (* Most hardened mono-node (fig4e): goal met with k = 0. *)
  let base = Ftes_cc.Fig_examples.fig4e problem in
  match Re_execution_opt.for_mapping problem base with
  | None -> Alcotest.fail "reachable"
  | Some k -> Alcotest.(check (array int)) "no re-executions needed" [| 0 |] k

let test_reexec_unreachable_with_tiny_kmax () =
  let problem = fig3 () in
  let design =
    Design.make problem ~members:[| 0 |] ~levels:[| 1 |] ~reexecs:[| 0 |]
      ~mapping:[| 0 |]
  in
  (* h=1 needs k=6; capping at 2 must fail. *)
  Alcotest.(check bool) "kmax too small" true
    (Re_execution_opt.for_mapping ~kmax:2 problem design = None)

let test_reexec_optimize_sets_design () =
  let problem = fig1 () in
  let base = Design.with_reexecs (Ftes_cc.Fig_examples.fig4a problem) [| 9; 9 |] in
  match Re_execution_opt.optimize problem base with
  | None -> Alcotest.fail "reachable"
  | Some d ->
      Alcotest.(check (array int)) "recomputed from scratch" [| 1; 1 |]
        d.Design.reexecs;
      Alcotest.(check bool) "meets the goal" true (Sfp.meets_goal problem d)

(* --- RedundancyOpt --- *)

let test_redundancy_fig3_opt () =
  let problem = fig3 () in
  let design =
    Design.make problem ~members:[| 0 |] ~levels:[| 1 |] ~reexecs:[| 0 |]
      ~mapping:[| 0 |]
  in
  match Redundancy_opt.run ~config:Config.default problem design with
  | None -> Alcotest.fail "fig3 should be solvable"
  | Some r ->
      Alcotest.(check int) "chooses h=2" 2 r.Redundancy_opt.design.Design.levels.(0);
      Alcotest.(check (float 1e-9)) "cost 20" 20.0 r.Redundancy_opt.cost;
      Alcotest.(check (float 1e-9)) "SL 340" 340.0 r.Redundancy_opt.schedule_length

let test_redundancy_fixed_min () =
  let problem = fig3 () in
  let design =
    Design.make problem ~members:[| 0 |] ~levels:[| 1 |] ~reexecs:[| 0 |]
      ~mapping:[| 0 |]
  in
  (* At minimum hardening the single process needs k=6 -> SL 680 > 360. *)
  Alcotest.(check bool) "MIN infeasible on fig3" true
    (Redundancy_opt.run ~config:Config.min_strategy problem design = None)

let test_redundancy_fixed_max () =
  let problem = fig3 () in
  let design =
    Design.make problem ~members:[| 0 |] ~levels:[| 1 |] ~reexecs:[| 0 |]
      ~mapping:[| 0 |]
  in
  match Redundancy_opt.run ~config:Config.max_strategy problem design with
  | None -> Alcotest.fail "MAX feasible on fig3"
  | Some r ->
      Alcotest.(check int) "level 3" 3 r.Redundancy_opt.design.Design.levels.(0);
      Alcotest.(check (float 1e-9)) "cost 40" 40.0 r.Redundancy_opt.cost

let test_redundancy_result_is_feasible () =
  let problem = fig1 () in
  let base = Design.with_reexecs (Ftes_cc.Fig_examples.fig4a problem) [| 0; 0 |] in
  match Redundancy_opt.run ~config:Config.default problem base with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      let d = r.Redundancy_opt.design in
      Alcotest.(check bool) "schedulable" true (Scheduler.is_schedulable problem d);
      Alcotest.(check bool) "reliable" true (Sfp.meets_goal problem d);
      Alcotest.(check bool) "cost at most both-h2" true (r.Redundancy_opt.cost <= 72.0)

let test_probe_matches_run () =
  let problem = fig1 () in
  let base = Design.with_reexecs (Ftes_cc.Fig_examples.fig4a problem) [| 0; 0 |] in
  let run = Redundancy_opt.run ~config:Config.default problem base in
  let probe, best_len = Redundancy_opt.probe ~config:Config.default problem base in
  (match (run, probe) with
  | Some a, Some b ->
      Alcotest.(check (float 1e-9)) "same cost" a.Redundancy_opt.cost b.Redundancy_opt.cost
  | None, None -> ()
  | _ -> Alcotest.fail "probe and run disagree on feasibility");
  Alcotest.(check bool) "best-effort length is finite" true (Float.is_finite best_len)

let test_best_effort_length () =
  let problem = fig3 () in
  let design =
    Design.make problem ~members:[| 0 |] ~levels:[| 1 |] ~reexecs:[| 0 |]
      ~mapping:[| 0 |]
  in
  let len = Redundancy_opt.best_effort_length ~config:Config.default problem design in
  Alcotest.(check (float 1e-9)) "shortest reachable worst case" 340.0 len;
  let len_min =
    Redundancy_opt.best_effort_length ~config:Config.min_strategy problem design
  in
  Alcotest.(check (float 1e-9)) "MIN best effort is 680" 680.0 len_min

(* --- MappingAlgorithm --- *)

let test_initial_mapping_total () =
  let problem = Helpers.synthetic_problem ~n:15 () in
  let members = [| 0; 1; 2 |] in
  let mapping = Mapping_opt.initial_mapping ~config:Config.default problem ~members in
  Alcotest.(check int) "covers all processes" 15 (Array.length mapping);
  Array.iter
    (fun slot -> Alcotest.(check bool) "valid slot" true (slot >= 0 && slot < 3))
    mapping

let test_mapping_single_node () =
  let problem = fig1 () in
  match
    Mapping_opt.run ~config:Config.default ~objective:Mapping_opt.Schedule_length
      problem ~members:[| 1 |]
  with
  | None -> Alcotest.fail "mono N2 is feasible (fig4e)"
  | Some r ->
      Alcotest.(check (float 1e-9)) "SL 330 at h3 k0" 330.0
        r.Redundancy_opt.schedule_length

let test_mapping_two_nodes_beats_paper () =
  let problem = fig1 () in
  match
    Mapping_opt.run ~config:Config.default ~objective:Mapping_opt.Architecture_cost
      problem ~members:[| 0; 1 |]
  with
  | None -> Alcotest.fail "two-node architecture is feasible (fig4a)"
  | Some r ->
      Alcotest.(check bool) "cost at most the paper's 72" true
        (r.Redundancy_opt.cost <= 72.0 +. 1e-9);
      let d = r.Redundancy_opt.design in
      Alcotest.(check bool) "feasible" true
        (Scheduler.is_schedulable problem d && Sfp.meets_goal problem d)

let test_mapping_respects_initial () =
  let problem = fig1 () in
  let initial = [| 0; 0; 1; 1 |] in
  match
    Mapping_opt.run ~config:(Config.with_max_iterations 0 Config.default)
      ~objective:Mapping_opt.Schedule_length ~initial problem ~members:[| 0; 1 |]
  with
  | None -> Alcotest.fail "fig4a mapping is feasible"
  | Some r ->
      Alcotest.(check (array int)) "mapping unchanged with zero iterations"
        initial r.Redundancy_opt.design.Design.mapping

let test_tabu_no_worse_than_greedy () =
  let problem = Helpers.synthetic_problem ~seed:77 ~n:16 ~ser:1e-10 () in
  let members = [| 0; 1 |] in
  let run config =
    Mapping_opt.run ~config ~objective:Mapping_opt.Schedule_length problem ~members
  in
  let greedy = run (Config.with_max_iterations 0 Config.default) in
  let tabu = run Config.default in
  match (greedy, tabu) with
  | Some g, Some t ->
      Alcotest.(check bool) "tabu SL <= greedy SL" true
        (t.Redundancy_opt.schedule_length
         <= g.Redundancy_opt.schedule_length +. 1e-9)
  | None, Some _ -> () (* tabu rescued an infeasible greedy mapping *)
  | None, None -> () (* instance infeasible for this architecture *)
  | Some _, None -> Alcotest.fail "tabu lost a feasible solution"

(* --- DesignStrategy --- *)

let test_architectures_by_speed () =
  let problem = fig1 () in
  let singles = Design_strategy.architectures_by_speed problem ~n:1 in
  Alcotest.(check int) "two singletons" 2 (List.length singles);
  (* N2 is faster on average (mean WCET 57.5 vs 67.5 at level 1). *)
  Alcotest.(check (array int)) "fastest first" [| 1 |] (List.hd singles);
  let pairs = Design_strategy.architectures_by_speed problem ~n:2 in
  Alcotest.(check int) "one pair" 1 (List.length pairs);
  Alcotest.(check (list (array int))) "out of range" []
    (Design_strategy.architectures_by_speed problem ~n:3)

let test_strategy_fig1 () =
  let problem = fig1 () in
  match Design_strategy.run ~config:Config.default problem with
  | None -> Alcotest.fail "fig1 feasible"
  | Some s ->
      Alcotest.(check bool) "cost at most the paper's 72" true
        (s.Design_strategy.result.Redundancy_opt.cost <= 72.0 +. 1e-9);
      Alcotest.(check bool) "verdict meets goal" true
        s.Design_strategy.verdict.Sfp.meets_goal;
      Alcotest.(check bool) "explored several architectures" true
        (s.Design_strategy.explored >= 1)

let test_strategy_fig3_choice () =
  let problem = fig3 () in
  match Design_strategy.run ~config:Config.default problem with
  | None -> Alcotest.fail "fig3 feasible"
  | Some s ->
      Alcotest.(check (float 1e-9)) "the paper's choice: N1^2 at cost 20" 20.0
        s.Design_strategy.result.Redundancy_opt.cost

let test_strategy_policies_order () =
  (* OPT subsumes both baselines, so its cost is never worse. *)
  let problem = Ftes_cc.Cruise_control.problem () in
  let cost config =
    Design_strategy.run ~config problem
    |> Option.map (fun (s : Design_strategy.solution) ->
           s.Design_strategy.result.Redundancy_opt.cost)
  in
  let opt = cost Config.default and max_ = cost Config.max_strategy in
  match (opt, max_) with
  | Some o, Some m -> Alcotest.(check bool) "OPT <= MAX" true (o <= m +. 1e-9)
  | None, _ -> Alcotest.fail "OPT feasible on the CC"
  | _, None -> Alcotest.fail "MAX feasible on the CC"

let test_accepted () =
  let problem = fig3 () in
  let sol = Design_strategy.run ~config:Config.default problem in
  Alcotest.(check bool) "no bound" true (Design_strategy.accepted sol);
  Alcotest.(check bool) "bound 20 accepts" true
    (Design_strategy.accepted ~max_cost:20.0 sol);
  Alcotest.(check bool) "bound 10 rejects" false
    (Design_strategy.accepted ~max_cost:10.0 sol);
  Alcotest.(check bool) "none rejected" false
    (Design_strategy.accepted ~max_cost:10.0 None)

let test_strategy_solution_consistency () =
  let problem = Helpers.synthetic_problem ~seed:5 ~n:12 () in
  match Design_strategy.run ~config:Config.default problem with
  | None -> () (* tight instances may be infeasible; nothing to check *)
  | Some s ->
      let d = s.Design_strategy.result.Redundancy_opt.design in
      Alcotest.(check bool) "design validates" true (Design.validate problem d = Ok ());
      Alcotest.(check (float 1e-6)) "cost consistent"
        (Design.cost problem d) s.Design_strategy.result.Redundancy_opt.cost;
      Alcotest.(check (float 1e-6)) "schedule length consistent"
        (Ftes_sched.Schedule.length s.Design_strategy.schedule)
        s.Design_strategy.result.Redundancy_opt.schedule_length;
      Alcotest.(check bool) "meets goal" true s.Design_strategy.verdict.Sfp.meets_goal

(* OPT never loses to MIN or MAX on feasibility/cost over a small fixed
   population (its search space is a superset of both baselines'). *)
let test_opt_dominates () =
  List.iter
    (fun seed ->
      let problem = Helpers.synthetic_problem ~seed ~n:10 () in
      let cost config =
        Design_strategy.run ~config problem
        |> Option.map (fun (s : Design_strategy.solution) ->
               s.Design_strategy.result.Redundancy_opt.cost)
      in
      match
        (cost Config.default, cost Config.min_strategy, cost Config.max_strategy)
      with
      | Some o, Some mn, _ when o > mn +. 1e-6 ->
          Alcotest.failf "seed %d: OPT %.1f worse than MIN %.1f" seed o mn
      | Some o, _, Some mx when o > mx +. 1e-6 ->
          Alcotest.failf "seed %d: OPT %.1f worse than MAX %.1f" seed o mx
      | None, Some _, _ | None, _, Some _ ->
          Alcotest.failf "seed %d: OPT infeasible but a baseline succeeded" seed
      | _ -> ())
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* --- Per-process retry assignment --- *)

module Retry_opt = Ftes_core.Retry_opt

let test_retry_fig4a () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  match Retry_opt.for_mapping problem design with
  | None -> Alcotest.fail "goal reachable with per-process retries"
  | Some k ->
      Alcotest.(check int) "budget per process" 4 (Array.length k);
      Alcotest.(check bool) "meets the goal" true
        (Ftes_sfp.Per_process.meets_goal problem design ~k);
      Alcotest.(check bool) "no budget wasted: at most 1 retry each" true
        (Array.for_all (fun b -> b <= 1) k)

let test_retry_schedule_length () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  match Retry_opt.optimize problem design with
  | None -> Alcotest.fail "reachable"
  | Some (k, sl) ->
      (* Per-process dedicated slack is at least the shared slack of the
         design with the same mapping. *)
      Alcotest.(check bool) "SL grows vs shared" true
        (sl >= Ftes_sched.Scheduler.schedule_length problem design -. 1e-9);
      Alcotest.(check (float 1e-9)) "consistent with the scheduler" sl
        (Retry_opt.schedule_length problem design ~k)

let test_retry_unreachable () =
  let problem = fig3 () in
  let design =
    Ftes_model.Design.make problem ~members:[| 0 |] ~levels:[| 1 |]
      ~reexecs:[| 0 |] ~mapping:[| 0 |]
  in
  (* p = 4e-2 needs 6 retries; a cap of 2 is not enough. *)
  Alcotest.(check bool) "kmax too small" true
    (Retry_opt.for_mapping ~kmax:2 problem design = None);
  match Retry_opt.for_mapping problem design with
  | None -> Alcotest.fail "default kmax suffices"
  | Some k -> Alcotest.(check int) "six retries on the single process" 6 k.(0)

let test_per_process_slack_mode () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4b problem in
  (* Budgets only on P2 (the largest process on the mono node). *)
  let k = [| 0; 2; 0; 0 |] in
  let sl =
    Ftes_sched.Scheduler.schedule_length
      ~slack:(Ftes_sched.Scheduler.Per_process k) problem design
  in
  (* Nominal 330 + 2 * (90 + 15) = 540 — same as the uniform dedicated
     worst case concentrated on P2. *)
  Alcotest.(check (float 1e-9)) "slack charged on P2 only" 540.0 sl;
  Alcotest.check_raises "budget vector must cover all processes"
    (Invalid_argument "Scheduler.schedule: per-process budget length mismatch")
    (fun () ->
      ignore
        (Ftes_sched.Scheduler.schedule_length
           ~slack:(Ftes_sched.Scheduler.Per_process [| 0 |]) problem design))

(* --- Checkpointing --- *)

module Checkpoint_opt = Ftes_core.Checkpoint_opt

let test_checkpoint_formula () =
  (* t=80, save=4, mu=20, kappa=11, k=6: 80 + 40 + 6*(80/11 + 20). *)
  Alcotest.(check (float 1e-9)) "W(11)"
    (120.0 +. (6.0 *. ((80.0 /. 11.0) +. 20.0)))
    (Checkpoint_opt.lone_worst_case ~t:80.0 ~save:4.0 ~mu:20.0 ~kappa:11 ~k:6);
  Alcotest.(check (float 1e-9)) "kappa=1 is plain re-execution"
    (80.0 +. (6.0 *. 100.0))
    (Checkpoint_opt.lone_worst_case ~t:80.0 ~save:4.0 ~mu:20.0 ~kappa:1 ~k:6);
  Alcotest.check_raises "kappa must be positive"
    (Invalid_argument "Checkpoint_opt: kappa must be >= 1") (fun () ->
      ignore (Checkpoint_opt.lone_worst_case ~t:1.0 ~save:0.1 ~mu:0.1 ~kappa:0 ~k:1))

let test_optimal_checkpoints () =
  Alcotest.(check int) "no faults, no checkpoints" 1
    (Checkpoint_opt.optimal_checkpoints ~t:80.0 ~save:4.0 ~k:0 ());
  Alcotest.(check int) "free saves saturate" 20
    (Checkpoint_opt.optimal_checkpoints ~t:80.0 ~save:0.0 ~k:3 ());
  (* Exact scan agrees with brute force. *)
  List.iter
    (fun (t, save, k) ->
      let brute = ref 1 in
      for kappa = 2 to 20 do
        if
          Checkpoint_opt.lone_worst_case ~t ~save ~mu:0.0 ~kappa ~k
          < Checkpoint_opt.lone_worst_case ~t ~save ~mu:0.0 ~kappa:!brute ~k
        then brute := kappa
      done;
      Alcotest.(check int)
        (Printf.sprintf "t=%g save=%g k=%d" t save k)
        !brute
        (Checkpoint_opt.optimal_checkpoints ~t ~save ~k ()))
    [ (80.0, 4.0, 6); (80.0, 4.0, 2); (10.0, 1.0, 3); (40.0, 8.0, 1) ]

let test_checkpointing_rescues_fig3 () =
  (* Fig. 3's unhardened node misses the deadline with plain
     re-execution (SL 680); with 11 checkpoints at a 4 ms save the same
     node fits easily — the [15] technique in action. *)
  let problem = fig3 () in
  let design =
    Ftes_model.Design.make problem ~members:[| 0 |] ~levels:[| 1 |]
      ~reexecs:[| 6 |] ~mapping:[| 0 |]
  in
  let sl =
    Scheduler.schedule_length
      ~slack:(Scheduler.Checkpointed { kappa = [| 11 |]; save_ms = 4.0 })
      problem design
  in
  Alcotest.(check (float 1e-6)) "SL with checkpointing"
    (120.0 +. (6.0 *. ((80.0 /. 11.0) +. 20.0)))
    sl;
  Alcotest.(check bool) "now schedulable" true (sl <= 360.0)

let test_checkpoint_kappa_one_is_shared () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  let shared = Scheduler.schedule_length problem design in
  let ckpt =
    Scheduler.schedule_length
      ~slack:(Scheduler.Checkpointed { kappa = Array.make 4 1; save_ms = 3.0 })
      problem design
  in
  Alcotest.(check (float 1e-9)) "kappa = 1 everywhere = shared" shared ckpt

let test_checkpoint_optimize () =
  let problem = fig3 () in
  let design =
    Ftes_model.Design.make problem ~members:[| 0 |] ~levels:[| 1 |]
      ~reexecs:[| 6 |] ~mapping:[| 0 |]
  in
  let kappa, sl = Checkpoint_opt.optimize ~save_ms:4.0 problem design in
  Alcotest.(check bool) "splits the process" true (kappa.(0) > 1);
  Alcotest.(check bool) "beats plain re-execution" true (sl < 680.0);
  Alcotest.(check bool) "meets the deadline" true (sl <= 360.0)

let test_checkpoint_validation () =
  let problem = fig1 () in
  let design = Ftes_cc.Fig_examples.fig4a problem in
  Alcotest.check_raises "kappa length"
    (Invalid_argument "Scheduler.schedule: checkpoint vector length mismatch")
    (fun () ->
      ignore
        (Scheduler.schedule_length
           ~slack:(Scheduler.Checkpointed { kappa = [| 1 |]; save_ms = 1.0 })
           problem design));
  Alcotest.check_raises "kappa >= 1"
    (Invalid_argument "Scheduler.schedule: checkpoint counts must be >= 1")
    (fun () ->
      ignore
        (Scheduler.schedule_length
           ~slack:(Scheduler.Checkpointed { kappa = [| 1; 0; 1; 1 |]; save_ms = 1.0 })
           problem design))

(* --- Exhaustive reference --- *)

module Exhaustive = Ftes_core.Exhaustive

let small_problem seed = Helpers.small_problem ~n:6 seed

let test_exhaustive_search_space () =
  let problem = small_problem 1 in
  (* Two singletons (3 levels x 1 mapping... mappings = 1^6) plus the
     pair (9 level pairs x 2^6 mappings): 3 + 3 + 9*64 = 582. *)
  Alcotest.(check (float 1e-6)) "candidate count" 582.0
    (Exhaustive.search_space problem)

let test_exhaustive_limit () =
  let problem = Helpers.synthetic_problem ~n:20 () in
  Alcotest.(check bool) "large space rejected" true
    (try
       ignore (Exhaustive.run ~limit:1000 ~config:Config.default problem);
       false
     with Invalid_argument _ -> true)

let test_exhaustive_fig3 () =
  (* One process, one node, three levels: the optimum is the paper's
     h=2 at cost 20. *)
  let problem = fig3 () in
  match Exhaustive.run ~config:Config.default problem with
  | None -> Alcotest.fail "fig3 has a feasible design"
  | Some r ->
      Alcotest.(check (float 1e-9)) "optimal cost 20" 20.0 r.Redundancy_opt.cost

let test_exhaustive_result_feasible () =
  let problem = small_problem 2 in
  match Exhaustive.run ~config:Config.default problem with
  | None -> ()
  | Some r ->
      let d = r.Redundancy_opt.design in
      Alcotest.(check bool) "schedulable" true (Scheduler.is_schedulable problem d);
      Alcotest.(check bool) "reliable" true (Sfp.meets_goal problem d)

let test_heuristic_vs_exhaustive () =
  (* The heuristic never beats the exhaustive optimum, and on these tiny
     instances it should usually match it. *)
  List.iter
    (fun seed ->
      let problem = small_problem seed in
      let heuristic = Design_strategy.run ~config:Config.default problem in
      let exact = Exhaustive.run ~config:Config.default problem in
      match (heuristic, exact) with
      | Some h, Some e ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: heuristic %g >= optimum %g" seed
               h.Design_strategy.result.Redundancy_opt.cost
               e.Redundancy_opt.cost)
            true
            (h.Design_strategy.result.Redundancy_opt.cost
             >= e.Redundancy_opt.cost -. 1e-9)
      | Some _, None ->
          Alcotest.failf "seed %d: heuristic feasible but optimum missing" seed
      | None, _ -> ())
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "ftes_core"
    [ ( "re_execution_opt",
        [ Alcotest.test_case "fig4a k=(1,1)" `Quick test_reexec_fig4a;
          Alcotest.test_case "greedy largest gain" `Quick
            test_reexec_greedy_picks_largest_gain;
          Alcotest.test_case "k=0 when hardened" `Quick test_reexec_zero_when_reliable;
          Alcotest.test_case "unreachable with small kmax" `Quick
            test_reexec_unreachable_with_tiny_kmax;
          Alcotest.test_case "optimize updates design" `Quick
            test_reexec_optimize_sets_design ] );
      ( "redundancy_opt",
        [ Alcotest.test_case "fig3 picks h2" `Quick test_redundancy_fig3_opt;
          Alcotest.test_case "fixed MIN" `Quick test_redundancy_fixed_min;
          Alcotest.test_case "fixed MAX" `Quick test_redundancy_fixed_max;
          Alcotest.test_case "result feasible" `Quick test_redundancy_result_is_feasible;
          Alcotest.test_case "probe matches run" `Quick test_probe_matches_run;
          Alcotest.test_case "best-effort length" `Quick test_best_effort_length ] );
      ( "mapping_opt",
        [ Alcotest.test_case "initial mapping total" `Quick test_initial_mapping_total;
          Alcotest.test_case "single node" `Quick test_mapping_single_node;
          Alcotest.test_case "two nodes beat the paper" `Quick
            test_mapping_two_nodes_beats_paper;
          Alcotest.test_case "zero iterations keep initial" `Quick
            test_mapping_respects_initial;
          Alcotest.test_case "tabu no worse than greedy" `Quick
            test_tabu_no_worse_than_greedy ] );
      ( "design_strategy",
        [ Alcotest.test_case "architecture enumeration" `Quick
            test_architectures_by_speed;
          Alcotest.test_case "fig1 strategy" `Quick test_strategy_fig1;
          Alcotest.test_case "fig3 strategy picks cost 20" `Quick
            test_strategy_fig3_choice;
          Alcotest.test_case "OPT <= MAX on the CC" `Quick test_strategy_policies_order;
          Alcotest.test_case "acceptance" `Quick test_accepted;
          Alcotest.test_case "solution consistency" `Quick
            test_strategy_solution_consistency;
          Alcotest.test_case "OPT dominates the baselines" `Slow
            test_opt_dominates ] );
      ( "retry_opt",
        [ Alcotest.test_case "fig4a budgets" `Quick test_retry_fig4a;
          Alcotest.test_case "schedule length" `Quick test_retry_schedule_length;
          Alcotest.test_case "unreachable / fig3" `Quick test_retry_unreachable;
          Alcotest.test_case "per-process slack mode" `Quick
            test_per_process_slack_mode ] );
      ( "checkpointing",
        [ Alcotest.test_case "worst-case formula" `Quick test_checkpoint_formula;
          Alcotest.test_case "optimal counts" `Quick test_optimal_checkpoints;
          Alcotest.test_case "rescues fig3 h1" `Quick
            test_checkpointing_rescues_fig3;
          Alcotest.test_case "kappa=1 is shared" `Quick
            test_checkpoint_kappa_one_is_shared;
          Alcotest.test_case "optimize" `Quick test_checkpoint_optimize;
          Alcotest.test_case "validation" `Quick test_checkpoint_validation ] );
      ( "exhaustive",
        [ Alcotest.test_case "search space" `Quick test_exhaustive_search_space;
          Alcotest.test_case "limit guard" `Quick test_exhaustive_limit;
          Alcotest.test_case "fig3 optimum" `Quick test_exhaustive_fig3;
          Alcotest.test_case "result feasible" `Quick test_exhaustive_result_feasible;
          Alcotest.test_case "heuristic vs optimum" `Slow
            test_heuristic_vs_exhaustive ] ) ]
