(* Unit and property tests for Ftes_model. *)

module Task_graph = Ftes_model.Task_graph
module Application = Ftes_model.Application
module Platform = Ftes_model.Platform
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Hardening = Ftes_model.Hardening

let check_float = Alcotest.(check (float 1e-9))

let edge ?(t = 1.0) src dst = { Task_graph.src; dst; transmission_ms = t }

let diamond () =
  Task_graph.make ~n:4 [ edge 0 1; edge 0 2; edge 1 3; edge 2 3 ]

let invalid msg f =
  Alcotest.check_raises msg (Invalid_argument msg) (fun () -> ignore (f ()))

(* --- Task_graph --- *)

let test_graph_basic () =
  let g = diamond () in
  Alcotest.(check int) "n" 4 (Task_graph.n g);
  Alcotest.(check int) "edges" 4 (Task_graph.n_edges g);
  Alcotest.(check int) "in_degree sink" 2 (Task_graph.in_degree g 3);
  Alcotest.(check int) "out_degree source" 2 (Task_graph.out_degree g 0);
  Alcotest.(check (list int)) "sources" [ 0 ] (Task_graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Task_graph.sinks g)

let test_graph_validation () =
  invalid "Task_graph.make: edge endpoint out of range" (fun () ->
      Task_graph.make ~n:2 [ edge 0 2 ]);
  invalid "Task_graph.make: self-loop" (fun () ->
      Task_graph.make ~n:2 [ edge 1 1 ]);
  invalid "Task_graph.make: duplicate edge" (fun () ->
      Task_graph.make ~n:2 [ edge 0 1; edge 0 1 ]);
  invalid "Task_graph.make: graph has a cycle" (fun () ->
      Task_graph.make ~n:3 [ edge 0 1; edge 1 2; edge 2 0 ]);
  invalid "Task_graph.make: invalid transmission time" (fun () ->
      Task_graph.make ~n:2 [ edge ~t:(-1.0) 0 1 ]);
  invalid "Task_graph.make: negative process count" (fun () ->
      Task_graph.make ~n:(-1) [])

let test_graph_empty () =
  let g = Task_graph.make ~n:0 [] in
  Alcotest.(check int) "empty graph" 0 (Task_graph.n g);
  Alcotest.(check (list int)) "no sources" [] (Task_graph.sources g)

let test_topological_order () =
  let g = diamond () in
  let order = Task_graph.topological_order g in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  List.iter
    (fun (e : Task_graph.edge) ->
      Alcotest.(check bool) "edge respects order" true (pos.(e.src) < pos.(e.dst)))
    (Task_graph.edges g)

let test_bottom_levels () =
  let g = diamond () in
  let bl = Task_graph.bottom_levels g ~exec:(fun _ -> 10.0) ~comm:(fun _ -> 1.0) in
  check_float "sink" 10.0 bl.(3);
  check_float "middle" 21.0 bl.(1);
  check_float "source" 32.0 bl.(0)

let test_longest_path () =
  let g = diamond () in
  check_float "critical path length" 32.0
    (Task_graph.longest_path g ~exec:(fun _ -> 10.0) ~comm:(fun _ -> 1.0))

let test_critical_path () =
  let g = Task_graph.make ~n:3 [ edge 0 1; edge 0 2 ] in
  let exec = function 1 -> 5.0 | _ -> 1.0 in
  let path = Task_graph.critical_path g ~exec ~comm:(fun _ -> 0.0) in
  Alcotest.(check (list int)) "heavy branch chosen" [ 0; 1 ] path

let test_critical_path_empty () =
  let g = Task_graph.make ~n:0 [] in
  Alcotest.(check (list int)) "empty graph" []
    (Task_graph.critical_path g ~exec:(fun _ -> 1.0) ~comm:(fun _ -> 0.0))

let test_components () =
  let g = Task_graph.make ~n:5 [ edge 0 1; edge 2 3 ] in
  let comps = Task_graph.components g in
  Alcotest.(check int) "three components" 3 (List.length comps);
  Alcotest.(check (list (list int))) "membership" [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ]
    (List.map (List.sort compare) comps)

let test_to_dot () =
  let s = Task_graph.to_dot (diamond ()) in
  Helpers.check_contains "dot" s "digraph";
  Helpers.check_contains "dot" s "p0 -> p1"

let prop_bottom_levels_dominate_exec =
  QCheck.Test.make ~count:100 ~name:"bottom level >= own execution time"
    QCheck.(int_bound 1000)
    (fun seed ->
      let prng = Ftes_util.Prng.create seed in
      let g = Ftes_gen.Dag_gen.generate prng (Ftes_gen.Dag_gen.default_params ~n:12) in
      let exec i = 1.0 +. float_of_int (i mod 5) in
      let bl = Task_graph.bottom_levels g ~exec ~comm:(fun _ -> 0.5) in
      let ok = ref true in
      Array.iteri (fun i v -> if v < exec i -. 1e-9 then ok := false) bl;
      (* and the longest path is the largest bottom level *)
      !ok
      && Float.abs
           (Task_graph.longest_path g ~exec ~comm:(fun _ -> 0.5)
           -. Array.fold_left Float.max 0.0 bl)
         < 1e-9)

let prop_topo_valid =
  QCheck.Test.make ~count:100 ~name:"generated DAGs have valid topo order"
    QCheck.(int_bound 1000)
    (fun seed ->
      let prng = Ftes_util.Prng.create seed in
      let g = Ftes_gen.Dag_gen.generate prng (Ftes_gen.Dag_gen.default_params ~n:15) in
      let order = Task_graph.topological_order g in
      let pos = Array.make (Task_graph.n g) 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      List.for_all
        (fun (e : Task_graph.edge) -> pos.(e.src) < pos.(e.dst))
        (Task_graph.edges g))

(* --- Application --- *)

let make_app ?deadline_ms ?gamma ?mu () =
  Application.make ~graph:(diamond ())
    ~deadline_ms:(Option.value ~default:100.0 deadline_ms)
    ~gamma:(Option.value ~default:1e-5 gamma)
    ~recovery_overhead_ms:(Option.value ~default:5.0 mu)
    ()

let test_application_ok () =
  let app = make_app () in
  Alcotest.(check int) "n" 4 (Application.n_processes app);
  Alcotest.(check string) "default names" "P1" (Application.process_name app 0);
  check_float "period defaults to deadline" 100.0 app.Application.period_ms;
  check_float "iterations per hour" 36_000.0 (Application.iterations_per_hour app);
  check_float "goal" (1.0 -. 1e-5) (Application.reliability_goal app)

let test_application_validation () =
  invalid "Application.make: deadline must be positive" (fun () ->
      make_app ~deadline_ms:0.0 ());
  invalid "Application.make: gamma must lie in (0, 1)" (fun () ->
      make_app ~gamma:0.0 ());
  invalid "Application.make: gamma must lie in (0, 1)" (fun () ->
      make_app ~gamma:1.0 ());
  invalid "Application.make: recovery overhead must be non-negative" (fun () ->
      make_app ~mu:(-1.0) ());
  invalid "Application.make: process_names length mismatch" (fun () ->
      Application.make ~graph:(diamond ()) ~process_names:[| "a" |]
        ~deadline_ms:10.0 ~gamma:1e-5 ~recovery_overhead_ms:0.0 ())

let test_application_pp () =
  let s = Format.asprintf "%a" Application.pp (make_app ()) in
  Helpers.check_contains "pp" s "4 processes"

(* --- Hardening --- *)

let test_degradation_schedule () =
  check_float "level 1" 0.01 (Hardening.degradation ~hpd:1.0 ~level:1 ~levels:5);
  check_float "level 2" 0.25 (Hardening.degradation ~hpd:1.0 ~level:2 ~levels:5);
  check_float "level 3" 0.50 (Hardening.degradation ~hpd:1.0 ~level:3 ~levels:5);
  check_float "level 4" 0.75 (Hardening.degradation ~hpd:1.0 ~level:4 ~levels:5);
  check_float "level 5" 1.00 (Hardening.degradation ~hpd:1.0 ~level:5 ~levels:5);
  check_float "HPD 5% top level" 0.05
    (Hardening.degradation ~hpd:0.05 ~level:5 ~levels:5)

let test_degradation_validation () =
  invalid "Hardening.degradation: level out of range" (fun () ->
      Hardening.degradation ~hpd:0.1 ~level:0 ~levels:5);
  invalid "Hardening.degradation: level out of range" (fun () ->
      Hardening.degradation ~hpd:0.1 ~level:6 ~levels:5);
  invalid "Hardening.degradation: invalid HPD" (fun () ->
      Hardening.degradation ~hpd:(-0.1) ~level:1 ~levels:5)

let test_sfp_reduction () =
  check_float "level 1 no reduction" 1.0 (Hardening.sfp_reduction ~factor:100.0 ~level:1);
  check_float "level 3" 1e-4 (Hardening.sfp_reduction ~factor:100.0 ~level:3)

let test_cost_models () =
  check_float "linear" 15.0 (Hardening.linear_cost ~base:5.0 ~level:3);
  check_float "doubling" 64.0 (Hardening.doubling_cost ~base:16.0 ~level:3)

(* --- Platform --- *)

let hv level cost p =
  Platform.hversion ~level ~cost ~wcet_ms:[| 10.0; 20.0 |] ~pfail:[| p; p |]

let test_platform_node () =
  let nt =
    Platform.node_type ~name:"N" ~versions:[| hv 1 10.0 1e-3; hv 2 20.0 1e-5 |]
  in
  Alcotest.(check int) "levels" 2 (Platform.levels nt);
  Alcotest.(check int) "procs" 2 (Platform.n_processes nt);
  check_float "mean wcet" 15.0 (Platform.mean_wcet nt ~level:1);
  check_float "version lookup" 20.0 (Platform.version nt ~level:2).Platform.cost

let test_platform_validation () =
  invalid "Platform.hversion: cost must be positive" (fun () -> hv 1 0.0 1e-3);
  invalid "Platform.hversion: failure probability must be in [0,1)" (fun () ->
      hv 1 1.0 1.0);
  invalid "Platform.hversion: wcet/pfail table size mismatch" (fun () ->
      Platform.hversion ~level:1 ~cost:1.0 ~wcet_ms:[| 1.0 |] ~pfail:[||]);
  invalid "Platform.hversion: WCET must be positive" (fun () ->
      Platform.hversion ~level:1 ~cost:1.0 ~wcet_ms:[| 0.0 |] ~pfail:[| 0.1 |]);
  invalid "Platform.node_type: node needs at least one h-version" (fun () ->
      Platform.node_type ~name:"N" ~versions:[||]);
  invalid "Platform.node_type: levels must be consecutive from 1" (fun () ->
      Platform.node_type ~name:"N" ~versions:[| hv 2 10.0 1e-3 |]);
  invalid "Platform.node_type: cost must increase with hardening" (fun () ->
      Platform.node_type ~name:"N" ~versions:[| hv 1 10.0 1e-3; hv 2 10.0 1e-5 |]);
  invalid
    "Platform.node_type: failure probability must not increase with hardening"
    (fun () ->
      Platform.node_type ~name:"N" ~versions:[| hv 1 10.0 1e-5; hv 2 20.0 1e-3 |]);
  invalid "Platform.version: level out of range" (fun () ->
      Platform.version
        (Platform.node_type ~name:"N" ~versions:[| hv 1 10.0 1e-3 |])
        ~level:2)

(* --- Problem --- *)

let fig1 () = Ftes_cc.Fig_examples.fig1_problem ()

let test_problem_accessors () =
  let p = fig1 () in
  Alcotest.(check int) "library" 2 (Problem.n_library p);
  Alcotest.(check int) "processes" 4 (Problem.n_processes p);
  Alcotest.(check int) "levels" 3 (Problem.levels p 0);
  check_float "wcet table" 75.0 (Problem.wcet p ~node:0 ~level:2 ~proc:0);
  check_float "pfail table" 1.3e-5 (Problem.pfail p ~node:1 ~level:2 ~proc:3);
  check_float "cost" 40.0 (Problem.cost p ~node:1 ~level:2);
  check_float "min cost" 16.0 (Problem.min_cost p ~node:0)

let test_problem_validation () =
  let app = make_app () in
  invalid "Problem.make: empty node library" (fun () ->
      Problem.make ~app ~library:[||]);
  let wrong = Platform.node_type ~name:"N" ~versions:[| hv 1 10.0 1e-3 |] in
  invalid "Problem.make: node tables do not match the application" (fun () ->
      Problem.make ~app ~library:[| wrong |])

let test_problem_node_bounds () =
  invalid "Problem.node: library index out of range" (fun () ->
      Problem.node (fig1 ()) 5)

(* --- Design --- *)

let test_design_ok () =
  let p = fig1 () in
  let d = Ftes_cc.Fig_examples.fig4a p in
  Alcotest.(check int) "members" 2 (Design.n_members d);
  check_float "cost 72" 72.0 (Design.cost p d);
  Alcotest.(check (list int)) "procs on N1" [ 0; 1 ] (Design.procs_on d ~member:0);
  Alcotest.(check (list int)) "procs on N2" [ 2; 3 ] (Design.procs_on d ~member:1);
  check_float "wcet via design" 75.0 (Design.wcet p d ~proc:0);
  check_float "pfail via design" 1.2e-5 (Design.pfail p d ~proc:0);
  Alcotest.(check (array (float 0.0))) "pfail vector N2" [| 1.2e-5; 1.3e-5 |]
    (Design.pfail_vector p d ~member:1)

let test_design_validation () =
  let p = fig1 () in
  let mk ~members ~levels ~reexecs ~mapping () =
    Design.make p ~members ~levels ~reexecs ~mapping
  in
  invalid "Design.make: empty architecture" (fun () ->
      mk ~members:[||] ~levels:[||] ~reexecs:[||] ~mapping:[| 0; 0; 0; 0 |] ());
  invalid "Design.make: member index out of library range" (fun () ->
      mk ~members:[| 7 |] ~levels:[| 1 |] ~reexecs:[| 0 |]
        ~mapping:[| 0; 0; 0; 0 |] ());
  invalid "Design.make: node selected twice" (fun () ->
      mk ~members:[| 0; 0 |] ~levels:[| 1; 1 |] ~reexecs:[| 0; 0 |]
        ~mapping:[| 0; 0; 0; 0 |] ());
  invalid "Design.make: hardening level out of range" (fun () ->
      mk ~members:[| 0 |] ~levels:[| 4 |] ~reexecs:[| 0 |]
        ~mapping:[| 0; 0; 0; 0 |] ());
  invalid "Design.make: negative re-execution count" (fun () ->
      mk ~members:[| 0 |] ~levels:[| 1 |] ~reexecs:[| -1 |]
        ~mapping:[| 0; 0; 0; 0 |] ());
  invalid "Design.make: mapping target out of architecture range" (fun () ->
      mk ~members:[| 0 |] ~levels:[| 1 |] ~reexecs:[| 0 |]
        ~mapping:[| 0; 0; 1; 0 |] ());
  invalid "Design.make: mapping length mismatch" (fun () ->
      mk ~members:[| 0 |] ~levels:[| 1 |] ~reexecs:[| 0 |] ~mapping:[| 0 |] ())

let test_design_updates () =
  let p = fig1 () in
  let d = Ftes_cc.Fig_examples.fig4a p in
  let d2 = Design.with_levels d [| 3; 3 |] in
  check_float "updated cost" 144.0 (Design.cost p d2);
  let d3 = Design.with_reexecs d [| 5; 5 |] in
  Alcotest.(check int) "updated k" 5 d3.Design.reexecs.(0);
  let d4 = Design.with_mapping d [| 1; 1; 1; 1 |] in
  Alcotest.(check (list int)) "remapped" [ 0; 1; 2; 3 ]
    (Design.procs_on d4 ~member:1);
  Alcotest.(check int) "original k unchanged" 1 d.Design.reexecs.(0)

let test_design_validate_result () =
  let p = fig1 () in
  let d = Ftes_cc.Fig_examples.fig4a p in
  Alcotest.(check bool) "valid design" true (Design.validate p d = Ok ())

(* --- Problem_io --- *)

module Problem_io = Ftes_model.Problem_io

let test_io_roundtrip_fig1 () =
  let p = fig1 () in
  match Problem_io.of_string (Problem_io.to_string p) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" e
  | Ok p' ->
      Alcotest.(check int) "library size" (Problem.n_library p)
        (Problem.n_library p');
      Alcotest.(check int) "processes" (Problem.n_processes p)
        (Problem.n_processes p');
      check_float "deadline" p.Problem.app.Application.deadline_ms
        p'.Problem.app.Application.deadline_ms;
      check_float "gamma" p.Problem.app.Application.gamma
        p'.Problem.app.Application.gamma;
      check_float "a WCET entry"
        (Problem.wcet p ~node:1 ~level:2 ~proc:3)
        (Problem.wcet p' ~node:1 ~level:2 ~proc:3);
      check_float "a pfail entry"
        (Problem.pfail p ~node:0 ~level:3 ~proc:0)
        (Problem.pfail p' ~node:0 ~level:3 ~proc:0);
      Alcotest.(check int) "edges"
        (Task_graph.n_edges (Problem.graph p))
        (Task_graph.n_edges (Problem.graph p'))

let test_io_roundtrip_cc () =
  let p = Ftes_cc.Cruise_control.problem () in
  match Problem_io.of_string (Problem_io.to_string p) with
  | Error e -> Alcotest.failf "CC roundtrip failed: %s" e
  | Ok p' ->
      Alcotest.(check int) "processes" 32 (Problem.n_processes p');
      Alcotest.(check string) "process names preserved" "vehicle_speed"
        (Application.process_name p'.Problem.app 12)

let test_io_roundtrip_generated () =
  let p = Helpers.synthetic_problem ~n:15 () in
  match Problem_io.of_string (Problem_io.to_string p) with
  | Error e -> Alcotest.failf "generated roundtrip failed: %s" e
  | Ok p' ->
      (* probabilities survive exactly (printed with 17 digits) *)
      check_float "tiny probability preserved"
        (Problem.pfail p ~node:2 ~level:4 ~proc:7)
        (Problem.pfail p' ~node:2 ~level:4 ~proc:7)

let test_io_save_load () =
  let path = Filename.temp_file "ftes" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Problem_io.save path (fig1 ());
      match Problem_io.load path with
      | Ok p -> Alcotest.(check int) "loaded" 4 (Problem.n_processes p)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_io_missing_file () =
  Alcotest.(check bool) "missing file is an Error" true
    (Result.is_error (Problem_io.load "/nonexistent/ftes.json"))

let test_io_rejects_invalid () =
  let reject label text =
    match Problem_io.of_string text with
    | Ok _ -> Alcotest.failf "%s should be rejected" label
    | Error _ -> ()
  in
  reject "not json" "not json at all";
  reject "missing fields" "{}";
  reject "wrong types" {|{"application": 5, "library": []}|};
  (* Structurally valid JSON but semantically broken: cost does not
     increase with hardening. *)
  let p = fig1 () in
  let text = Problem_io.to_string p in
  let replace_once ~affix ~by s =
    let n = String.length s and m = String.length affix in
    let rec find i =
      if i + m > n then None
      else if String.sub s i m = affix then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> Alcotest.failf "fixture does not contain %S" affix
    | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
  in
  let broken = replace_once ~affix:"\"cost\": 32" ~by:"\"cost\": 1" text in
  reject "non-monotone costs" broken

(* --- schema versioning --- *)

module Json = Ftes_util.Json

let strip_version json =
  match json with
  | Json.Object fields ->
      Json.Object (List.filter (fun (k, _) -> k <> "schema_version") fields)
  | other -> other

let with_version v json =
  match strip_version json with
  | Json.Object fields ->
      Json.Object (("schema_version", Json.Number (float_of_int v)) :: fields)
  | other -> other

let test_io_writes_version () =
  match Json.member "schema_version" (Problem_io.to_json (fig1 ())) with
  | Ok (Json.Number v) ->
      Alcotest.(check int) "written version" Problem_io.schema_version
        (int_of_float v)
  | _ -> Alcotest.fail "exported document has no schema_version"

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_io_versionless_warns () =
  let doc = strip_version (Problem_io.to_json (fig1 ())) in
  let warnings = ref [] in
  match Problem_io.of_json ~on_warning:(fun w -> warnings := w :: !warnings) doc with
  | Error e -> Alcotest.failf "versionless v0 document rejected: %s" e
  | Ok p ->
      Alcotest.(check int) "payload read" 4 (Problem.n_processes p);
      Alcotest.(check int) "exactly one warning" 1 (List.length !warnings);
      Alcotest.(check bool) "warning names schema_version" true
        (List.exists (contains ~needle:"schema_version") !warnings)

let test_io_v1_silent () =
  let doc = Problem_io.to_json (fig1 ()) in
  let warnings = ref [] in
  match Problem_io.of_json ~on_warning:(fun w -> warnings := w :: !warnings) doc with
  | Error e -> Alcotest.failf "v1 rejected: %s" e
  | Ok _ -> Alcotest.(check int) "no warnings for v1" 0 (List.length !warnings)

let test_io_rejects_future_version () =
  let doc = with_version 99 (Problem_io.to_json (fig1 ())) in
  match Problem_io.of_json ~on_warning:ignore doc with
  | Ok _ -> Alcotest.fail "schema_version 99 should be rejected"
  | Error e ->
      Alcotest.(check bool) "diagnostic names the version" true
        (contains ~needle:"99" e)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_model"
    [ ( "task_graph",
        [ Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "validation" `Quick test_graph_validation;
          Alcotest.test_case "empty" `Quick test_graph_empty;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "bottom levels" `Quick test_bottom_levels;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "critical path empty" `Quick test_critical_path_empty;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "dot export" `Quick test_to_dot;
          q prop_topo_valid;
          q prop_bottom_levels_dominate_exec ] );
      ( "application",
        [ Alcotest.test_case "construction" `Quick test_application_ok;
          Alcotest.test_case "validation" `Quick test_application_validation;
          Alcotest.test_case "pp" `Quick test_application_pp ] );
      ( "hardening",
        [ Alcotest.test_case "degradation schedule" `Quick test_degradation_schedule;
          Alcotest.test_case "degradation validation" `Quick test_degradation_validation;
          Alcotest.test_case "sfp reduction" `Quick test_sfp_reduction;
          Alcotest.test_case "cost models" `Quick test_cost_models ] );
      ( "platform",
        [ Alcotest.test_case "node type" `Quick test_platform_node;
          Alcotest.test_case "validation" `Quick test_platform_validation ] );
      ( "problem",
        [ Alcotest.test_case "accessors" `Quick test_problem_accessors;
          Alcotest.test_case "validation" `Quick test_problem_validation;
          Alcotest.test_case "node bounds" `Quick test_problem_node_bounds ] );
      ( "design",
        [ Alcotest.test_case "construction" `Quick test_design_ok;
          Alcotest.test_case "validation" `Quick test_design_validation;
          Alcotest.test_case "functional updates" `Quick test_design_updates;
          Alcotest.test_case "validate result" `Quick test_design_validate_result ] );
      ( "problem_io",
        [ Alcotest.test_case "roundtrip fig1" `Quick test_io_roundtrip_fig1;
          Alcotest.test_case "roundtrip cruise controller" `Quick
            test_io_roundtrip_cc;
          Alcotest.test_case "roundtrip generated" `Quick
            test_io_roundtrip_generated;
          Alcotest.test_case "save and load" `Quick test_io_save_load;
          Alcotest.test_case "missing file" `Quick test_io_missing_file;
          Alcotest.test_case "rejects invalid input" `Quick
            test_io_rejects_invalid;
          Alcotest.test_case "writes schema_version" `Quick
            test_io_writes_version;
          Alcotest.test_case "versionless v0 warns" `Quick
            test_io_versionless_warns;
          Alcotest.test_case "v1 reads silently" `Quick test_io_v1_silent;
          Alcotest.test_case "future version rejected" `Quick
            test_io_rejects_future_version ] ) ]
