(* Equivalence suite for the incremental evaluation kernels (the heap
   scheduler, the incremental SFP ascent and the bound-guided k-search):
   each must be bit-identical to its retained reference implementation,
   and the delta paths must demonstrably fire. *)

module Kernel = Ftes_util.Kernel
module Prng = Ftes_util.Prng
module Task_graph = Ftes_model.Task_graph
module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Application = Ftes_model.Application
module Platform = Ftes_model.Platform
module Sfp = Ftes_sfp.Sfp
module Incremental = Ftes_sfp.Incremental
module Bound = Ftes_sfp.Bound
module Scheduler = Ftes_sched.Scheduler
module Schedule = Ftes_sched.Schedule
module Bus = Ftes_sched.Bus
module Config = Ftes_core.Config
module Re_execution_opt = Ftes_core.Re_execution_opt
module Redundancy_opt = Ftes_core.Redundancy_opt
module Metrics = Ftes_obs.Metrics

let counter_value name = Metrics.counter_value (Metrics.counter name)

(* Bit-level float equality: the kernels promise the identical float,
   not a nearby one. *)
let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

(* --- Scheduler: heap pick = reference rescan --- *)

let entry_eq (a : Schedule.entry) (b : Schedule.entry) =
  a.proc = b.proc && a.slot = b.slot && feq a.start b.start
  && feq a.finish b.finish && feq a.commit b.commit

let message_eq (a : Schedule.message) (b : Schedule.message) =
  a.edge = b.edge && feq a.bus_start b.bus_start
  && feq a.bus_finish b.bus_finish

let farray_eq a b =
  Array.length a = Array.length b && Array.for_all2 feq a b

let schedule_eq (a : Schedule.t) (b : Schedule.t) =
  Array.length a.entries = Array.length b.entries
  && Array.for_all2 entry_eq a.entries b.entries
  && List.length a.messages = List.length b.messages
  && List.for_all2 message_eq a.messages b.messages
  && farray_eq a.node_finish b.node_finish
  && farray_eq a.node_worst b.node_worst
  && feq a.length b.length

let random_design = Helpers.random_design

let bus_policies = Helpers.bus_policies

let slack_policies = Helpers.slack_policies

let prop_heap_schedule_matches_reference =
  QCheck.Test.make ~count:30
    ~name:"heap schedule = reference rescan (all slack x bus policies)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prng = Prng.create (seed + 17) in
      let problem =
        Helpers.synthetic_problem ~seed:(seed mod 997)
          ~n:(8 + (seed mod 13))
          ()
      in
      let design = random_design prng problem in
      let n = Task_graph.n (Problem.graph problem) in
      List.for_all
        (fun slack ->
          List.for_all
            (fun bus ->
              let fast =
                Kernel.with_mode Kernel.Incremental (fun () ->
                    Scheduler.schedule ~slack ~bus problem design)
              in
              let reference =
                Scheduler.schedule_reference ~slack ~bus problem design
              in
              schedule_eq fast reference)
            bus_policies)
        (slack_policies prng n))

(* [schedule_length] takes a separate length-only path under the
   incremental kernel (no entry/message records are built), so it gets
   its own equivalence property: the duplicated placement code must
   keep producing the reference's makespan bit for bit. *)
let prop_schedule_length_matches_reference =
  QCheck.Test.make ~count:30
    ~name:"length-only schedule = reference length (all slack x bus policies)"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prng = Prng.create (seed + 71) in
      let problem =
        Helpers.synthetic_problem ~seed:(seed mod 911)
          ~n:(8 + (seed mod 13))
          ()
      in
      let design = random_design prng problem in
      let n = Task_graph.n (Problem.graph problem) in
      List.for_all
        (fun slack ->
          List.for_all
            (fun bus ->
              let fast =
                Kernel.with_mode Kernel.Incremental (fun () ->
                    Scheduler.schedule_length ~slack ~bus problem design)
              in
              let reference =
                Schedule.length
                  (Scheduler.schedule_reference ~slack ~bus problem design)
              in
              feq fast reference)
            bus_policies)
        (slack_policies prng n))

(* --- SFP: exceedance tables and folds are bit-identical --- *)

let random_probs prng =
  let n = 1 + Prng.int prng 6 in
  (* Mix magnitudes so some vectors saturate early and some never do. *)
  Array.init n (fun _ ->
      let scale = 10.0 ** float_of_int (- Prng.int prng 9) in
      Prng.float prng 0.4 *. scale)

let prop_exceed_vector_bit_identical =
  QCheck.Test.make ~count:200
    ~name:"Incremental.exceed_vector.(k) = Sfp.pr_exceeds ~k (bitwise)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prng = Prng.create (seed + 3) in
      let a = Sfp.node_analysis ~kmax:12 (random_probs prng) in
      let v = Incremental.exceed_vector a in
      let ok = ref true in
      for k = 0 to 12 do
        if not (feq v.(k) (Sfp.pr_exceeds a ~k)) then ok := false
      done;
      !ok)

let prop_system_failure_bit_identical =
  QCheck.Test.make ~count:200
    ~name:"Incremental.system_failure = Sfp.system_failure_per_iteration"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prng = Prng.create (seed + 11) in
      let members = 1 + Prng.int prng 5 in
      let analyses =
        Array.init members (fun _ -> Sfp.node_analysis ~kmax:8 (random_probs prng))
      in
      let inc = Incremental.make (Array.map Incremental.node_vectors analyses) in
      let k = Array.init members (fun _ -> Prng.int prng 9) in
      let fast = Incremental.system_failure inc ~k in
      let reference = Sfp.system_failure_per_iteration analyses ~k in
      feq fast reference)

let prop_candidate_failure_bit_identical =
  QCheck.Test.make ~count:200
    ~name:"Incremental.candidate_failure = full fold on the bumped vector"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prng = Prng.create (seed + 23) in
      let members = 1 + Prng.int prng 5 in
      let analyses =
        Array.init members (fun _ -> Sfp.node_analysis ~kmax:8 (random_probs prng))
      in
      let inc = Incremental.make (Array.map Incremental.node_vectors analyses) in
      let k = Array.init members (fun _ -> Prng.int prng 8) in
      let prefix = Array.make (members + 1) 0.0 in
      Incremental.prefix_into inc ~k prefix;
      let ok = ref true in
      for j = 0 to members - 1 do
        let bumped = Array.copy k in
        bumped.(j) <- bumped.(j) + 1;
        let fast = Incremental.candidate_failure inc ~k ~prefix ~j in
        let reference = Sfp.system_failure_per_iteration analyses ~k:bumped in
        if not (feq fast reference) then ok := false
      done;
      !ok)

(* --- Re-execution ascent: incremental = reference --- *)

let prop_for_mapping_matches_reference =
  QCheck.Test.make ~count:25
    ~name:"for_mapping (incremental, cached and uncached) = reference"
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prng = Prng.create (seed + 41) in
      let problem =
        Helpers.synthetic_problem ~seed:(seed mod 991) ~ser:1e-10
          ~n:(6 + (seed mod 9))
          ()
      in
      let design = random_design prng problem in
      let reference = Re_execution_opt.for_mapping_reference problem design in
      let fast =
        Kernel.with_mode Kernel.Incremental (fun () ->
            Re_execution_opt.for_mapping problem design)
      in
      let cached =
        Kernel.with_mode Kernel.Incremental (fun () ->
            Re_execution_opt.for_mapping
              ~cache:(Ftes_par.Sfp_cache.create ())
              problem design)
      in
      fast = reference && cached = reference)

(* --- Bound: binary search = linear scan --- *)

let prop_required_k_matches_scan =
  QCheck.Test.make ~count:300
    ~name:"Bound.required_k (bisection) = required_k_scan"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let prng = Prng.create (seed + 7) in
      let p = random_probs prng in
      let budget = 10.0 ** float_of_int (- Prng.int prng 14) in
      let ok = ref true in
      for kmax = 0 to 14 do
        if
          Bound.required_k p ~budget ~kmax
          <> Bound.required_k_scan p ~budget ~kmax
        then ok := false
      done;
      !ok)

(* --- Delta paths demonstrably fire --- *)

(* Two members, every process mapped on the second: the empty member's
   exceedance clamps to zero at k = 0, so each greedy sweep must skip
   it. *)
let two_node_problem ~deadline_ms ~pfail =
  let graph =
    Task_graph.make ~n:2 [ { Task_graph.src = 0; dst = 1; transmission_ms = 1.0 } ]
  in
  let app =
    Application.make ~graph ~deadline_ms ~gamma:1e-7 ~recovery_overhead_ms:1.0
      ()
  in
  let node name p =
    Platform.node_type ~name
      ~versions:
        [| Platform.hversion ~level:1 ~cost:1.0 ~wcet_ms:[| 10.0; 10.0 |]
             ~pfail:[| p; p |] |]
  in
  Problem.make ~app ~library:[| node "A" 1e-9; node "B" pfail |]

let test_grow_skips_saturated_member () =
  let problem = two_node_problem ~deadline_ms:1000.0 ~pfail:1e-3 in
  let design =
    Design.make problem ~members:[| 0; 1 |] ~levels:[| 1; 1 |]
      ~reexecs:[| 0; 0 |] ~mapping:[| 1; 1 |]
  in
  Kernel.with_mode Kernel.Incremental (fun () ->
      let before = counter_value "kernel.grow_skips" in
      let k = Re_execution_opt.for_mapping problem design in
      let after = counter_value "kernel.grow_skips" in
      Alcotest.(check bool) "goal reachable" true (k <> None);
      Alcotest.(check bool) "empty member needs no re-executions" true
        ((Option.get k).(0) = 0);
      Alcotest.(check bool) "saturated candidates were skipped" true
        (after > before);
      Alcotest.(check (option (array int)))
        "skipping preserves the selected vector"
        (Re_execution_opt.for_mapping_reference problem design)
        k)

let test_priorities_memo_hits_on_unchanged_wcet_vector () =
  let problem = Helpers.synthetic_problem ~seed:21 ~n:14 () in
  let design = Helpers.design_on_all_nodes ~levels:1 ~k:1 problem in
  Kernel.with_mode Kernel.Incremental (fun () ->
      let reference = Scheduler.schedule_reference problem design in
      ignore (Scheduler.schedule problem design);
      let before = counter_value "kernel.prio_hits" in
      let again = Scheduler.schedule problem design in
      let after = counter_value "kernel.prio_hits" in
      Alcotest.(check bool) "re-schedule hits the priorities memo" true
        (after > before);
      Alcotest.(check bool) "memoized priorities leave the schedule intact"
        true
        (schedule_eq again reference))

(* A single fully-hardened unschedulable mapping: the first Optimize
   probe memoizes the (None, best_len) outcome, and the next escalation
   over the same mapping must short-circuit without any fresh
   evaluation. *)
let test_escalate_short_circuits_on_memoized_unschedulable_probe () =
  (* 10 ms WCETs against a 5 ms deadline: never schedulable. *)
  let problem = two_node_problem ~deadline_ms:5.0 ~pfail:1e-6 in
  let design =
    Design.make problem ~members:[| 0; 1 |] ~levels:[| 1; 1 |]
      ~reexecs:[| 0; 0 |] ~mapping:[| 0; 1 |]
  in
  let config = Config.default in
  Kernel.with_mode Kernel.Incremental (fun () ->
      let cache = Redundancy_opt.create_cache () in
      let outcome, best_len =
        Redundancy_opt.probe ~cache ~config problem design
      in
      Alcotest.(check bool) "mapping is unschedulable" true (outcome = None);
      let shortcuts_before = counter_value "kernel.probe_shortcuts" in
      let fresh_before = (Redundancy_opt.eval_stats ()).Redundancy_opt.fresh in
      let len2 = Redundancy_opt.best_effort_length ~cache ~config problem design in
      let shortcuts_after = counter_value "kernel.probe_shortcuts" in
      let fresh_after = (Redundancy_opt.eval_stats ()).Redundancy_opt.fresh in
      Alcotest.(check bool) "escalation short-circuited" true
        (shortcuts_after > shortcuts_before);
      Alcotest.(check int) "no fresh evaluation" fresh_before fresh_after;
      Alcotest.(check bool) "memoized best-effort length served" true
        (feq len2 best_len);
      (* The reference kernel, given the same cache, must agree. *)
      let len_ref =
        Kernel.with_mode Kernel.Reference (fun () ->
            Redundancy_opt.best_effort_length ~cache ~config problem design)
      in
      Alcotest.(check bool) "reference agrees" true (feq len_ref best_len))

let () =
  Alcotest.run "kernels"
    [ ( "scheduler",
        [ QCheck_alcotest.to_alcotest prop_heap_schedule_matches_reference;
          QCheck_alcotest.to_alcotest prop_schedule_length_matches_reference;
          Alcotest.test_case "priorities memo fires and preserves output"
            `Quick test_priorities_memo_hits_on_unchanged_wcet_vector ] );
      ( "sfp",
        [ QCheck_alcotest.to_alcotest prop_exceed_vector_bit_identical;
          QCheck_alcotest.to_alcotest prop_system_failure_bit_identical;
          QCheck_alcotest.to_alcotest prop_candidate_failure_bit_identical ] );
      ( "re-execution",
        [ QCheck_alcotest.to_alcotest prop_for_mapping_matches_reference;
          Alcotest.test_case "saturation skips fire and preserve the vector"
            `Quick test_grow_skips_saturated_member ] );
      ( "bound",
        [ QCheck_alcotest.to_alcotest prop_required_k_matches_scan ] );
      ( "redundancy",
        [ Alcotest.test_case "memoized unschedulable probe short-circuits"
            `Quick test_escalate_short_circuits_on_memoized_unschedulable_probe
        ] ) ]
