(* Tests of the observability layer: span nesting, metrics merging
   across domains, trace round-trips, the obs/* verifier rules, and the
   layer's headline contract — tracing never changes an optimizer
   result. *)

module Clock = Ftes_obs.Clock
module Metrics = Ftes_obs.Metrics
module Sink = Ftes_obs.Sink
module Span = Ftes_obs.Span
module Obs_report = Ftes_obs.Report
module Pool = Ftes_par.Pool
module Config = Ftes_core.Config
module Design = Ftes_model.Design
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Scheduler = Ftes_sched.Scheduler
module Bus = Ftes_sched.Bus
module Workload = Ftes_gen.Workload
module Json = Ftes_util.Json

(* Span configuration is global; never leak one test's sink into the
   next. *)
let with_spans ?sink ?aggregate f =
  Span.configure ?sink ?aggregate ();
  Fun.protect ~finally:Span.disable f

(* --- clock --- *)

let test_clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "time does not go backwards" true (b >= a);
  Alcotest.(check (float 1e-9)) "ns_to_ms" 1.5 (Clock.ns_to_ms 1_500_000)

(* --- metrics --- *)

let test_counter_basics () =
  let c = Metrics.counter "test.basics" in
  Metrics.reset_counter c;
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.counter_value c);
  Alcotest.(check bool) "same name, same counter" true
    (Metrics.counter_value (Metrics.counter "test.basics") = 42);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Ftes_obs.Metrics.add: counters are monotone")
    (fun () -> Metrics.add c (-1))

let test_kind_mismatch () =
  ignore (Metrics.counter "test.kinded");
  Alcotest.(check bool) "re-registering as a gauge raises" true
    (match Metrics.gauge "test.kinded" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_histogram_buckets () =
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 1000; 1_000_000 ];
  let snap = Metrics.snapshot () in
  match Metrics.find_histogram snap "test.hist" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hs ->
      Alcotest.(check int) "count" 5 (Metrics.hist_count hs);
      Alcotest.(check int) "sum" 1_001_006 (Metrics.hist_sum hs);
      Alcotest.(check int) "bucket of 1" 0 (Metrics.bucket_of_value 1);
      Alcotest.(check int) "bucket of 1000" 9 (Metrics.bucket_of_value 1000);
      Alcotest.(check bool) "p99 >= p50" true
        (Metrics.hist_quantile hs 0.99 >= Metrics.hist_quantile hs 0.5)

let test_snapshot_sorted () =
  ignore (Metrics.counter "test.zz");
  ignore (Metrics.counter "test.aa");
  let snap = Metrics.snapshot () in
  let names = List.map fst snap.Metrics.counters in
  Alcotest.(check bool) "counters sorted by name" true
    (names = List.sort compare names)

(* --- span nesting --- *)

(* Random span trees: execute one, then check the completion-order
   event stream is well formed. *)
type tree = T of int * tree list

let tree_gen =
  QCheck.Gen.(
    sized_size (int_bound 5) @@ fix (fun self n ->
        if n <= 0 then return []
        else
          list_size (int_bound 3)
            (map2 (fun k sub -> T (k, sub)) (int_bound 2) (self (n / 2)))))

let rec run_tree path forest =
  List.iter
    (fun (T (k, sub)) ->
      let name = Printf.sprintf "%s.%d" path k in
      Span.with_ ~name (fun () -> run_tree name sub))
    forest

let well_formed events =
  (* Children complete before their parents, so a parent's event comes
     later in the stream and must enclose the child's interval. *)
  let ok = ref true in
  List.iteri
    (fun i (e : Sink.event) ->
      if e.Sink.depth < 0 then ok := false;
      if e.Sink.depth > 0 && e.Sink.parent = None then ok := false;
      match e.Sink.parent with
      | None -> ()
      | Some parent_name ->
          let enclosing =
            List.exists
              (fun (p : Sink.event) ->
                p.Sink.name = parent_name
                && p.Sink.depth = e.Sink.depth - 1
                && p.Sink.start_ns <= e.Sink.start_ns
                && p.Sink.start_ns + p.Sink.dur_ns
                   >= e.Sink.start_ns + e.Sink.dur_ns)
              (List.filteri (fun j _ -> j > i) events)
          in
          if not enclosing then ok := false)
    events;
  !ok

let prop_span_nesting =
  QCheck.Test.make ~count:50 ~name:"span event stream is well formed"
    (QCheck.make tree_gen) (fun tree ->
      let sink = Sink.memory () in
      with_spans ~sink (fun () -> run_tree "t" tree);
      Span.stack_depth () = 0 && well_formed (Sink.memory_events sink))

let test_span_disabled_is_transparent () =
  Alcotest.(check bool) "disabled by default" false (Span.enabled ());
  Alcotest.(check int) "result passes through" 7
    (Span.with_ ~name:"x" (fun () -> 7));
  Alcotest.(check int) "no stack entries" 0 (Span.stack_depth ())

let test_span_exception_safe () =
  let sink = Sink.memory () in
  with_spans ~sink (fun () ->
      (try Span.with_ ~name:"boom" (fun () -> failwith "no") with _ -> ());
      Alcotest.(check int) "stack popped on raise" 0 (Span.stack_depth ()));
  match Sink.memory_events sink with
  | [ e ] -> Alcotest.(check string) "span still emitted" "boom" e.Sink.name
  | events -> Alcotest.failf "expected 1 event, got %d" (List.length events)

let test_span_aggregates () =
  Metrics.reset ();
  with_spans ~aggregate:true (fun () ->
      for _ = 1 to 5 do
        Span.with_ ~name:"agg" (fun () -> ignore (Sys.opaque_identity 1))
      done);
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int)) "completion counter" (Some 5)
    (Metrics.find_counter snap "span.agg.count");
  (match Metrics.find_histogram snap "span.agg.ns.hist" with
  | Some hs -> Alcotest.(check int) "histogram count" 5 (Metrics.hist_count hs)
  | None -> Alcotest.fail "no latency histogram");
  match Obs_report.phases_of_snapshot snap with
  | [ p ] ->
      Alcotest.(check string) "phase name" "agg" p.Obs_report.phase;
      Alcotest.(check int) "phase calls" 5 p.Obs_report.count
  | phases -> Alcotest.failf "expected 1 phase, got %d" (List.length phases)

(* --- cross-domain merging --- *)

let test_cross_domain_merge () =
  let c = Metrics.counter "test.par.count" in
  let h = Metrics.histogram "test.par.hist" in
  Metrics.reset_counter c;
  let pool = Pool.create ~domains:2 () in
  let n = 200 in
  let input = Array.init n (fun i -> i) in
  let _ =
    Pool.map_array ~pool
      (fun i ->
        Metrics.incr c;
        Metrics.observe h (1 + (i mod 7));
        i)
      input
  in
  Alcotest.(check int) "increments from every domain land" n
    (Metrics.counter_value c);
  let snap = Metrics.snapshot () in
  match Metrics.find_histogram snap "test.par.hist" with
  | Some hs ->
      Alcotest.(check bool) "histogram merged" true (Metrics.hist_count hs >= n)
  | None -> Alcotest.fail "histogram missing"

(* --- trace round-trips --- *)

let event_gen =
  QCheck.Gen.(
    map (fun (name, domain, depth, parent, start_ns, dur_ns, alloc) ->
        { Sink.name; domain; depth; parent; start_ns; dur_ns;
          alloc_b = float_of_int alloc })
      (tup7 (string_size ~gen:printable (int_range 1 12)) (int_bound 8)
         (int_bound 5)
         (option (string_size ~gen:printable (int_range 1 12)))
         (int_bound 1_000_000_000) (int_bound 1_000_000) (int_bound 100_000)))

let prop_event_json_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Sink.event_of_json (event_to_json e) = e"
    (QCheck.make event_gen) (fun e ->
      match Sink.event_of_json (Sink.event_to_json e) with
      | Ok e' -> e = e'
      | Error _ -> false)

let test_jsonl_trace_parses () =
  let path = Filename.temp_file "ftes_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      with_spans ~sink:(Sink.jsonl oc) (fun () ->
          Span.with_ ~name:"outer" (fun () ->
              Span.with_ ~name:"inner" (fun () -> ())));
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let events =
        List.rev_map
          (fun line ->
            match Result.bind (Json.of_string line) Sink.event_of_json with
            | Ok e -> e
            | Error e -> Alcotest.failf "unparseable trace line: %s" e)
          !lines
      in
      Alcotest.(check (list string)) "completion order" [ "inner"; "outer" ]
        (List.map (fun (e : Sink.event) -> e.Sink.name) events))

(* --- obs/* verifier rules --- *)

module Verify = Ftes_verify.Verify
module Subject = Ftes_verify.Subject
module Report = Ftes_verify.Report

let problem_of_seed seed =
  let spec =
    Workload.generate_spec ~seed ~index:0 ~n_processes:(8 + (seed mod 5)) ()
  in
  Workload.problem_of_spec { Workload.ser = 1e-11; hpd = 0.25 } spec

let run_obs_rules snapshot =
  Verify.run ~rules:Ftes_verify.Obs_rules.all
    (Subject.with_metrics (Subject.of_problem (problem_of_seed 7)) snapshot)

let empty_snapshot = { Metrics.counters = []; gauges = []; histograms = [] }

let test_obs_rules_pass_live_snapshot () =
  Metrics.reset ();
  with_spans ~aggregate:true (fun () ->
      ignore (Design_strategy.run ~config:Config.default (problem_of_seed 3)));
  let report = run_obs_rules (Metrics.snapshot ()) in
  Alcotest.(check bool)
    ("live snapshot certifies:\n" ^ Report.to_text report)
    true (Report.ok report)

let test_obs_rules_skip_without_metrics () =
  let report =
    Verify.run ~rules:Ftes_verify.Obs_rules.all
      (Subject.of_problem (problem_of_seed 7))
  in
  Alcotest.(check int) "all obs rules skipped" 7
    (List.length report.Report.rules_skipped)

(* Mutation tests: each hand-broken snapshot must trip exactly the rule
   that covers the broken invariant. *)
let fires rule report =
  List.exists
    (fun (d : Ftes_verify.Diagnostic.t) ->
      d.Ftes_verify.Diagnostic.rule = rule
      && d.Ftes_verify.Diagnostic.severity = Ftes_verify.Diagnostic.Error)
    report.Report.diagnostics

let test_obs_rule_mutations () =
  let check label rule snapshot =
    let report = run_obs_rules snapshot in
    Alcotest.(check bool) (label ^ " fires " ^ rule) true (fires rule report)
  in
  check "negative counter" "obs/counters-monotone"
    { empty_snapshot with Metrics.counters = [ ("bad.count", -3) ] };
  check "hits + misses <> lookups" "obs/cache-consistency"
    { empty_snapshot with
      Metrics.counters =
        [ ("c.hits", 5); ("c.lookups", 10); ("c.misses", 4) ] };
  check "bucket / count mismatch" "obs/histogram-consistency"
    { empty_snapshot with
      Metrics.histograms =
        [ ("h", { Metrics.buckets = [| 1; 2 |]; count = 4; sum = 9 }) ] };
  check "empty histogram with sum" "obs/histogram-consistency"
    { empty_snapshot with
      Metrics.histograms =
        [ ("h", { Metrics.buckets = [| 0 |]; count = 0; sum = 5 }) ] };
  check "capacity drops exceed misses" "obs/cache-capacity"
    { empty_snapshot with
      Metrics.counters =
        [ ("c.capacity_drops", 7); ("c.hits", 6); ("c.lookups", 10);
          ("c.misses", 4) ] };
  check "span count / histogram drift" "obs/span-aggregates"
    { empty_snapshot with
      Metrics.counters = [ ("span.x.count", 3) ];
      Metrics.histograms =
        [ ( "span.x.ns.hist",
            { Metrics.buckets = [| 2 |]; count = 2; sum = 2 } ) ] };
  (* And the matching healthy snapshots stay clean. *)
  let healthy =
    { Metrics.counters =
        [ ("c.capacity_drops", 3); ("c.hits", 6); ("c.lookups", 10);
          ("c.misses", 4); ("span.x.count", 2) ];
      gauges = [];
      histograms =
        [ ( "span.x.ns.hist",
            { Metrics.buckets = [| 1; 1 |]; count = 2; sum = 3 } ) ] }
  in
  Alcotest.(check bool) "healthy snapshot passes" true
    (Report.ok (run_obs_rules healthy))

(* --- determinism: tracing cannot change results --- *)

type fingerprint = {
  cost : float;
  schedule_length : float;
  members : int array;
  levels : int array;
  reexecs : int array;
  mapping : int array;
  explored : int;
}

let fingerprint = function
  | None -> None
  | Some (s : Design_strategy.solution) ->
      let r = s.Design_strategy.result in
      let d = r.Redundancy_opt.design in
      Some
        { cost = r.Redundancy_opt.cost;
          schedule_length = r.Redundancy_opt.schedule_length;
          members = d.Design.members;
          levels = d.Design.levels;
          reexecs = d.Design.reexecs;
          mapping = d.Design.mapping;
          explored = s.Design_strategy.explored }

let slack_policies =
  [ Scheduler.Shared; Scheduler.Conservative; Scheduler.Dedicated ]

let bus_policies = [ Bus.Fcfs; Bus.Tdma { slot_ms = 2.0 } ]

let test_tracing_is_invisible () =
  let problem = problem_of_seed 11 in
  List.iter
    (fun slack ->
      List.iter
        (fun bus ->
          let config = Config.(default |> with_slack slack |> with_bus bus) in
          let untraced = fingerprint (Design_strategy.run ~config problem) in
          let sink = Sink.memory () in
          let traced =
            with_spans ~sink ~aggregate:true (fun () ->
                fingerprint (Design_strategy.run ~config problem))
          in
          Alcotest.(check bool) "traced = untraced" true (traced = untraced);
          Alcotest.(check bool) "and the trace is not empty" true
            (Sink.memory_events sink <> []))
        bus_policies)
    slack_policies

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ftes_obs"
    [ ("clock", [ Alcotest.test_case "monotone" `Quick test_clock_monotone ]);
      ( "metrics",
        [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted;
          Alcotest.test_case "cross-domain merge" `Quick
            test_cross_domain_merge ] );
      ( "spans",
        [ q prop_span_nesting;
          Alcotest.test_case "disabled is transparent" `Quick
            test_span_disabled_is_transparent;
          Alcotest.test_case "exception safe" `Quick test_span_exception_safe;
          Alcotest.test_case "aggregates" `Quick test_span_aggregates ] );
      ( "trace",
        [ q prop_event_json_roundtrip;
          Alcotest.test_case "jsonl parses back" `Quick
            test_jsonl_trace_parses ] );
      ( "verify",
        [ Alcotest.test_case "live snapshot certifies" `Quick
            test_obs_rules_pass_live_snapshot;
          Alcotest.test_case "skipped without metrics" `Quick
            test_obs_rules_skip_without_metrics;
          Alcotest.test_case "mutations caught" `Quick
            test_obs_rule_mutations ] );
      ( "determinism",
        [ Alcotest.test_case "tracing is invisible" `Quick
            test_tracing_is_invisible ] ) ]
