(* Pareto archive (PR 5): dominance laws, archive invariants, parallel
   merge determinism, the run_frontier anytime-optimality anchor, the
   exchange formats and the verifier's pareto/* rule family.

   The frontier of the cruise-control OPT walk is additionally pinned
   as a golden CSV under [golden/]; to regenerate after an intentional
   change of the explored frontier:

     FTES_REGEN_GOLDEN=$PWD/test/golden dune exec test/test_pareto.exe *)

module Archive = Ftes_pareto.Archive
module Objective = Ftes_pareto.Objective
module Frontier_io = Ftes_pareto.Frontier_io
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Application = Ftes_model.Application
module Scheduler = Ftes_sched.Scheduler
module Bus = Ftes_sched.Bus
module Sfp = Ftes_sfp.Sfp
module Pool = Ftes_par.Pool
module Verify = Ftes_verify.Verify
module Report = Ftes_verify.Report
module Subject = Ftes_verify.Subject
module Rule = Ftes_verify.Rule
module Pareto_rules = Ftes_verify.Pareto_rules
module Csv = Ftes_util.Csv
module Json = Ftes_util.Json
module Tolerance = Ftes_util.Tolerance

(* --- shared fixtures --- *)

let cc = lazy (Ftes_cc.Cruise_control.problem ())

let cc_frontier =
  lazy (Design_strategy.run_frontier ~config:Config.default (Lazy.force cc))

(* A design to hang synthetic points on; the archive never inspects
   it beyond the canonical tie-break. *)
let stub_design =
  lazy
    (Helpers.design_on_all_nodes ~levels:1 ~k:0
       (Helpers.synthetic_problem ()))

let point ?(cost = 0.0) ?(slack = 0.0) ?(margin = 0.0) () =
  { Archive.design = Lazy.force stub_design; cost; slack; margin }

(* --- golden frontier CSV --- *)

let golden_name = "frontier_cc.csv"

let () =
  match Sys.getenv_opt "FTES_REGEN_GOLDEN" with
  | Some dir ->
      let path = Filename.concat dir golden_name in
      Csv.write_file path
        (Frontier_io.to_csv (Lazy.force cc_frontier).Design_strategy.archive);
      Printf.printf "regenerated %s\n%!" path;
      exit 0
  | None -> ()

let golden_path name =
  let local = Filename.concat "golden" name in
  if Sys.file_exists local then local
  else Filename.concat (Filename.concat "test" "golden") name

(* The frontier is a pure function of the deterministic walk, and the
   CSV prints round-trippable decimals, so the comparison is exact. *)
let test_golden_frontier () =
  let golden = Csv.read_file (golden_path golden_name) in
  let fresh =
    Frontier_io.to_csv (Lazy.force cc_frontier).Design_strategy.archive
  in
  Alcotest.(check (list (list string))) "cc frontier CSV" golden fresh

(* --- dominance laws (qcheck) --- *)

let vector_gen =
  QCheck.Gen.(
    2 -- 3 >>= fun dim ->
    array_repeat dim (float_of_int <$> -3 -- 3))

let vector_triple =
  QCheck.make
    ~print:(fun (a, b, c) ->
      let p v =
        "[" ^ String.concat ";" (Array.to_list (Array.map string_of_float v))
        ^ "]"
      in
      p a ^ " " ^ p b ^ " " ^ p c)
    QCheck.Gen.(
      vector_gen >>= fun a ->
      map (fun (b, c) -> (a, b, c))
        (pair (array_repeat (Array.length a) (float_of_int <$> -3 -- 3))
           (array_repeat (Array.length a) (float_of_int <$> -3 -- 3))))

let prop_dominance_strict_partial_order =
  QCheck.Test.make ~count:500
    ~name:"dominance is a strict partial order (2-D and 3-D)" vector_triple
    (fun (a, b, c) ->
      let dom = Archive.dominates in
      (not (dom a a))
      && ((not (dom a b)) || not (dom b a))
      && ((not (dom a b && dom b c)) || dom a c))

(* --- archive invariants (qcheck) --- *)

let spec_gen =
  QCheck.Gen.(
    oneofl
      [ Archive.default_spec;
        Archive.spec ~eps:0.5 ();
        Archive.spec ~objectives:[ Objective.Cost; Objective.Slack ] ();
        Archive.spec ~objectives:[ Objective.Cost; Objective.Margin ]
          ~eps:1.0 () ])

let points_gen =
  QCheck.Gen.(
    list_size (1 -- 40)
      (map
         (fun (c, (s, m)) ->
           point ~cost:(float_of_int c) ~slack:(float_of_int s)
             ~margin:(float_of_int m) ())
         (pair (0 -- 6) (pair (0 -- 6) (0 -- 6)))))

let archive_input =
  QCheck.make
    ~print:(fun (spec, pts) ->
      Printf.sprintf "{%s eps %g} %s"
        (Objective.names spec.Archive.objectives)
        spec.Archive.eps
        (String.concat " "
           (List.map
              (fun (p : Archive.point) ->
                Printf.sprintf "(%g,%g,%g)" p.Archive.cost p.Archive.slack
                  p.Archive.margin)
              pts)))
    QCheck.Gen.(pair spec_gen points_gen)

let prop_points_never_dominated =
  QCheck.Test.make ~count:300
    ~name:"insertion never stores a dominated point" archive_input
    (fun (spec, pts) ->
      let archive = Archive.of_points ~spec pts in
      let vs =
        Array.of_list
          (List.map (Archive.vector spec) (Archive.points archive))
      in
      Array.for_all
        (fun a -> Array.for_all (fun b -> not (Archive.dominates a b)) vs)
        vs)

let prop_min_cost_retained =
  QCheck.Test.make ~count:300
    ~name:"grid coarsening never loses the cheapest point when cost is an \
           objective"
    archive_input
    (fun (spec, pts) ->
      QCheck.assume (List.mem Objective.Cost spec.Archive.objectives);
      let archive = Archive.of_points ~spec pts in
      let true_min =
        List.fold_left
          (fun acc (p : Archive.point) -> Float.min acc p.Archive.cost)
          infinity pts
      in
      match Archive.min_cost_point archive with
      | Some p -> p.Archive.cost = true_min
      | None -> pts = [])

let prop_insertion_order_independent =
  QCheck.Test.make ~count:300
    ~name:"archive is a pure function of the inserted set"
    (QCheck.pair archive_input QCheck.(int_bound 1_000_000))
    (fun ((spec, pts), seed) ->
      let shuffled =
        let state = Random.State.make [| seed |] in
        let tagged =
          List.map (fun p -> (Random.State.bits state, p)) pts
        in
        List.map snd (List.sort compare tagged)
      in
      Archive.equal (Archive.of_points ~spec pts)
        (Archive.of_points ~spec shuffled))

let prop_merge_equals_sequential =
  QCheck.Test.make ~count:200
    ~name:"parallel chunked merge = sequential insertion" archive_input
    (fun (spec, pts) ->
      let chunks =
        (* split into 4 round-robin chunks, preserving per-chunk order *)
        let buckets = Array.make 4 [] in
        List.iteri
          (fun i p -> buckets.(i mod 4) <- p :: buckets.(i mod 4))
          pts;
        Array.to_list (Array.map List.rev buckets)
      in
      let pool = Pool.create ~domains:3 () in
      let merged =
        Pool.map_reduce ~pool
          ~map:(fun chunk -> Archive.of_points ~spec chunk)
          ~combine:Archive.merge
          ~init:(Archive.create ~spec ())
          chunks
      in
      Archive.equal merged (Archive.of_points ~spec pts))

let prop_points_roundtrip =
  QCheck.Test.make ~count:300
    ~name:"re-inserting points reproduces an equal archive" archive_input
    (fun (spec, pts) ->
      let archive = Archive.of_points ~spec pts in
      Archive.equal archive
        (Archive.of_points ~spec (Archive.points archive)))

(* --- ε-grid capping --- *)

let test_eps_grid_cap () =
  (* 100 costs in [0, 10) on a 1-D cost grid of eps 1: box 0 dominates
     every other box, so exactly one representative survives — and the
     separately tracked best point is still the exact minimum. *)
  let spec = Archive.spec ~objectives:[ Objective.Cost ] ~eps:1.0 () in
  let archive = Archive.create ~spec () in
  for i = 99 downto 0 do
    Archive.insert archive (point ~cost:(0.1 *. float_of_int i) ())
  done;
  Alcotest.(check int) "one box" 1 (Archive.size archive);
  (match Archive.min_cost_point archive with
  | Some p -> Alcotest.(check (float 0.0)) "exact min" 0.0 p.Archive.cost
  | None -> Alcotest.fail "archive empty");
  (* Two objectives, eps 1: only the minimal boxes survive.  Along the
     trade-off diagonal slack = cost the boxes are an anti-chain (7
     survivors); every point strictly below the diagonal is dominated
     by the diagonal point at its slack. *)
  let spec =
    Archive.spec ~objectives:[ Objective.Cost; Objective.Slack ] ~eps:1.0 ()
  in
  let archive = Archive.create ~spec () in
  for c = 0 to 6 do
    for s = 0 to c do
      Archive.insert archive
        (point ~cost:(float_of_int c) ~slack:(float_of_int s) ())
    done
  done;
  Alcotest.(check int) "diagonal anti-chain" 7 (Archive.size archive)

let test_stats () =
  let archive = Archive.create () in
  Archive.insert archive (point ~cost:2.0 ());
  Archive.insert archive (point ~cost:3.0 ());
  (* dominated *)
  Archive.insert archive (point ~cost:1.0 ());
  (* evicts cost 2 *)
  let stats = Archive.stats archive in
  Alcotest.(check int) "boxes" 1 stats.Archive.boxes;
  Alcotest.(check int) "inserted" 2 stats.Archive.inserted;
  Alcotest.(check int) "dominated" 1 stats.Archive.dominated;
  Alcotest.(check int) "evicted" 1 stats.Archive.evicted

(* --- hypervolume, hand-checked --- *)

let test_hypervolume () =
  (* 2-D: min-oriented vectors (1,3) and (2,1) against corner (4,4)
     dominate 3*1 + 2*3 - 2*1 = 7 (staircase union).  Slack is
     maximized, so slack -3 maps to +3 in min space. *)
  let spec =
    Archive.spec ~objectives:[ Objective.Cost; Objective.Slack ] ()
  in
  let archive =
    Archive.of_points ~spec
      [ point ~cost:1.0 ~slack:(-3.0) (); point ~cost:2.0 ~slack:(-1.0) () ]
  in
  let reference =
    { Archive.ref_cost = 4.0; ref_slack = -4.0; ref_margin = 0.0 }
  in
  Alcotest.(check (float 1e-12))
    "2-D staircase" 7.0
    (Archive.hypervolume archive ~reference);
  (* 3-D: a single point one unit inside the corner dominates a unit
     cube. *)
  let archive =
    Archive.of_points [ point ~cost:1.0 ~slack:(-1.0) ~margin:(-1.0) () ]
  in
  let reference =
    { Archive.ref_cost = 2.0; ref_slack = -2.0; ref_margin = -2.0 }
  in
  Alcotest.(check (float 1e-12))
    "3-D unit cube" 1.0
    (Archive.hypervolume archive ~reference);
  (* Points outside the corner contribute nothing. *)
  let archive = Archive.of_points [ point ~cost:5.0 ~slack:1.0 () ] in
  let reference =
    { Archive.ref_cost = 4.0; ref_slack = 0.0; ref_margin = 0.0 }
  in
  Alcotest.(check (float 0.0))
    "outside the corner" 0.0
    (Archive.hypervolume archive ~reference)

(* --- objective parsing --- *)

let test_parse_objectives () =
  (match Objective.parse_list "cost, slack ,margin" with
  | Ok l ->
      Alcotest.(check string) "all three" "cost,slack,margin"
        (Objective.names l)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  let rejects name input =
    match Objective.parse_list input with
    | Ok _ -> Alcotest.failf "%s: %S accepted" name input
    | Error _ -> ()
  in
  rejects "empty" "";
  rejects "unknown" "cost,latency";
  rejects "duplicate" "cost,cost"

(* --- run_frontier: anytime-optimality anchor --- *)

let check_anchor name problem =
  let config = Config.default in
  let opt = Design_strategy.run ~config problem in
  let frontier = Design_strategy.run_frontier ~config problem in
  match (opt, frontier.Design_strategy.best) with
  | None, None ->
      Alcotest.(check int)
        (name ^ ": empty archive when infeasible")
        0
        (Archive.size frontier.Design_strategy.archive)
  | Some o, Some b ->
      let fp (s : Design_strategy.solution) =
        let d = s.Design_strategy.result.Redundancy_opt.design in
        ( s.Design_strategy.result.Redundancy_opt.cost,
          d.Design.members, d.Design.levels, d.Design.reexecs,
          d.Design.mapping )
      in
      Alcotest.(check bool) (name ^ ": best = run, bit for bit") true
        (fp o = fp b);
      (match Archive.min_cost_point frontier.Design_strategy.archive with
      | Some p ->
          let opt_cost, _, _, _, _ = fp o in
          Alcotest.(check bool)
            (name ^ ": archive min cost = OPT cost")
            true
            (p.Archive.cost = opt_cost)
      | None -> Alcotest.fail (name ^ ": archive empty with a solution"))
  | Some _, None | None, Some _ ->
      Alcotest.fail (name ^ ": run and run_frontier disagree on feasibility")

let test_anchor_cc () = check_anchor "cc" (Lazy.force cc)

let test_anchor_synthetic () =
  List.iter
    (fun seed ->
      check_anchor
        (Printf.sprintf "synthetic seed %d" seed)
        (Helpers.synthetic_problem ~seed ~n:8 ()))
    [ 7; 21; 99 ]

(* --- run_frontier: parallel = sequential across policies --- *)

let test_frontier_parallel_identical () =
  let problem = Lazy.force cc in
  let pool = Pool.create ~domains:4 () in
  List.iter
    (fun (slack_name, slack) ->
      List.iter
        (fun (bus_name, bus) ->
          let config =
            Config.(default |> with_slack slack |> with_bus bus)
          in
          let seq = Design_strategy.run_frontier ~config problem in
          let par = Design_strategy.run_frontier ~pool ~config problem in
          let name = Printf.sprintf "%s/%s" slack_name bus_name in
          Alcotest.(check bool)
            (name ^ ": parallel archive = sequential")
            true
            (Archive.equal seq.Design_strategy.archive
               par.Design_strategy.archive);
          Alcotest.(check int)
            (name ^ ": explored")
            seq.Design_strategy.explored par.Design_strategy.explored)
        Helpers.named_bus_policies)
    Helpers.named_slack_policies

(* --- Redundancy_opt result: slack and margin fields --- *)

let test_result_slack_margin () =
  let problem = Lazy.force cc in
  match Design_strategy.run ~config:Config.default problem with
  | None -> Alcotest.fail "cc has no OPT solution"
  | Some s ->
      let r = s.Design_strategy.result in
      Alcotest.(check (float 0.0))
        "slack = deadline - schedule_length"
        (problem.Problem.app.Application.deadline_ms
        -. r.Redundancy_opt.schedule_length)
        r.Redundancy_opt.slack;
      (* The solution's verdict is computed at [Sfp.analysis_kmax],
         the recorded margin at the search kmax; formula (4)'s directed
         rounding may differ by a grain. *)
      let expected =
        Sfp.log10_margin problem.Problem.app
          ~per_iteration_failure:
            s.Design_strategy.verdict.Sfp.per_iteration_failure
      in
      Alcotest.(check bool) "margin matches the verdict" true
        (Tolerance.approx ~eps:1e-6 expected r.Redundancy_opt.margin);
      Alcotest.(check bool) "feasible solution has margin >= 0" true
        (r.Redundancy_opt.margin >= 0.0)

(* --- exchange formats --- *)

let cc_archive () = (Lazy.force cc_frontier).Design_strategy.archive

let test_csv_roundtrip () =
  let archive = cc_archive () in
  match
    Frontier_io.of_csv ~problem:(Lazy.force cc) (Frontier_io.to_csv archive)
  with
  | Ok back ->
      Alcotest.(check bool) "CSV round-trip" true (Archive.equal archive back)
  | Error e -> Alcotest.failf "of_csv: %s" e

let test_json_roundtrip () =
  let archive = cc_archive () in
  let reference =
    { Archive.ref_cost = 81.0; ref_slack = 0.0; ref_margin = 0.0 }
  in
  match
    Frontier_io.of_string ~problem:(Lazy.force cc)
      (Frontier_io.to_string ~reference archive)
  with
  | Ok back ->
      Alcotest.(check bool) "JSON round-trip" true
        (Archive.equal archive back)
  | Error e -> Alcotest.failf "of_string: %s" e

let test_json_versions () =
  let archive = cc_archive () in
  let fields =
    match Frontier_io.to_json archive with
    | Json.Object fields -> fields
    | _ -> Alcotest.fail "to_json is not an object"
  in
  (* Versionless documents read as the deprecated v0, with a warning. *)
  let warnings = ref [] in
  (match
     Frontier_io.of_json
       ~on_warning:(fun w -> warnings := w :: !warnings)
       ~problem:(Lazy.force cc)
       (Json.Object (List.remove_assoc "schema_version" fields))
   with
  | Ok back ->
      Alcotest.(check bool) "v0 content" true (Archive.equal archive back)
  | Error e -> Alcotest.failf "v0 read failed: %s" e);
  Alcotest.(check int) "v0 warns once" 1 (List.length !warnings);
  (* Unknown versions are rejected outright. *)
  match
    Frontier_io.of_json ~problem:(Lazy.force cc)
      (Json.Object
         (("schema_version", Json.Number 99.0)
         :: List.remove_assoc "schema_version" fields))
  with
  | Ok _ -> Alcotest.fail "schema_version 99 accepted"
  | Error e -> Helpers.check_contains "unknown version" e "99"

(* --- verifier: pareto/* rules --- *)

let cc_subject archive ~opt_cost =
  Subject.with_archive ?opt_cost
    { (Subject.of_problem (Lazy.force cc)) with
      Subject.slack = Config.default.Config.slack;
      bus = Config.default.Config.bus }
    archive

let rule id = List.find (fun r -> r.Rule.id = id) Pareto_rules.all

let test_rules_pass_on_clean_archive () =
  let frontier = Lazy.force cc_frontier in
  let opt_cost =
    Option.map
      (fun (s : Design_strategy.solution) ->
        s.Design_strategy.result.Redundancy_opt.cost)
      frontier.Design_strategy.best
  in
  let report =
    Verify.run ~rules:Pareto_rules.all
      (cc_subject frontier.Design_strategy.archive ~opt_cost)
  in
  if not (Report.ok report) then
    Alcotest.failf "clean archive rejected:\n%s" (Report.to_text report)

(* Rules requiring an archive are skipped, not run, on plain subjects —
   the profile/lint paths stay at their 20-rule certificate. *)
let test_rules_skip_without_archive () =
  let report =
    Verify.run ~rules:Pareto_rules.all
      (Subject.of_problem (Lazy.force cc))
  in
  Alcotest.(check bool) "no archive: report ok" true (Report.ok report);
  Helpers.check_contains "all four skipped" (Report.to_text report) "0 rules run"

(* Mutation tests: corrupt one aspect of a genuine frontier and check
   the matching rule catches exactly that corruption. *)

let test_mutation_objectives () =
  let pts = Archive.points (cc_archive ()) in
  let corrupted =
    match pts with
    | p :: rest -> { p with Archive.cost = p.Archive.cost +. 5.0 } :: rest
    | [] -> Alcotest.fail "empty cc frontier"
  in
  let report =
    Verify.run
      ~rules:[ rule "pareto/objectives" ]
      (cc_subject (Archive.unsafe_of_points corrupted) ~opt_cost:None)
  in
  Alcotest.(check bool) "corrupted cost caught" false (Report.ok report);
  Helpers.check_contains "names the rule" (Report.to_text report)
    "pareto/objectives"

let test_mutation_non_dominated () =
  let pts = Archive.points (cc_archive ()) in
  let corrupted =
    match pts with
    | p :: _ -> { p with Archive.slack = p.Archive.slack -. 1.0 } :: pts
    | [] -> Alcotest.fail "empty cc frontier"
  in
  let report =
    Verify.run
      ~rules:[ rule "pareto/non-dominated" ]
      (cc_subject (Archive.unsafe_of_points corrupted) ~opt_cost:None)
  in
  Alcotest.(check bool) "dominated point caught" false (Report.ok report);
  Helpers.check_contains "names the rule" (Report.to_text report)
    "pareto/non-dominated"

let test_mutation_min_cost () =
  let frontier = Lazy.force cc_frontier in
  let opt_cost =
    match frontier.Design_strategy.best with
    | Some s -> Some (s.Design_strategy.result.Redundancy_opt.cost -. 1.0)
    | None -> Alcotest.fail "cc has no OPT solution"
  in
  let report =
    Verify.run
      ~rules:[ rule "pareto/min-cost" ]
      (cc_subject frontier.Design_strategy.archive ~opt_cost)
  in
  Alcotest.(check bool) "wrong anchor caught" false (Report.ok report);
  Helpers.check_contains "names the rule" (Report.to_text report)
    "pareto/min-cost"

let test_mutation_infeasible () =
  (* An honest point (recorded objectives match re-derivation) whose
     design carries no fault tolerance at all: it cannot meet ρ, so
     only pareto/feasible complains. *)
  let problem = Lazy.force cc in
  let frontier_pts = Archive.points (cc_archive ()) in
  let feasible =
    match frontier_pts with p :: _ -> p | [] -> Alcotest.fail "empty"
  in
  let bare =
    let d = feasible.Archive.design in
    Design.make problem ~members:d.Design.members
      ~levels:(Array.map (fun _ -> 1) d.Design.levels)
      ~reexecs:(Array.map (fun _ -> 0) d.Design.reexecs)
      ~mapping:d.Design.mapping
  in
  let verdict = Sfp.evaluate problem bare in
  Alcotest.(check bool) "bare design misses the goal" false
    verdict.Sfp.meets_goal;
  let p =
    { Archive.design = bare;
      cost = Design.cost problem bare;
      slack =
        problem.Problem.app.Application.deadline_ms
        -. Scheduler.schedule_length problem bare;
      margin =
        Sfp.log10_margin problem.Problem.app
          ~per_iteration_failure:verdict.Sfp.per_iteration_failure }
  in
  let report =
    Verify.run
      ~rules:[ rule "pareto/feasible" ]
      (cc_subject (Archive.unsafe_of_points [ p ]) ~opt_cost:None)
  in
  Alcotest.(check bool) "infeasible point caught" false (Report.ok report);
  Helpers.check_contains "names the rule" (Report.to_text report)
    "pareto/feasible"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "pareto"
    [ ("dominance", [ q prop_dominance_strict_partial_order ]);
      ("archive",
       [ q prop_points_never_dominated;
         q prop_min_cost_retained;
         q prop_insertion_order_independent;
         q prop_merge_equals_sequential;
         q prop_points_roundtrip;
         Alcotest.test_case "eps grid cap" `Quick test_eps_grid_cap;
         Alcotest.test_case "stats" `Quick test_stats;
         Alcotest.test_case "hypervolume" `Quick test_hypervolume;
         Alcotest.test_case "objective parsing" `Quick test_parse_objectives ]);
      ("frontier",
       [ Alcotest.test_case "anchor: cruise control" `Quick test_anchor_cc;
         Alcotest.test_case "anchor: synthetic seeds" `Slow
           test_anchor_synthetic;
         Alcotest.test_case "parallel = sequential (slack x bus)" `Slow
           test_frontier_parallel_identical;
         Alcotest.test_case "result slack and margin" `Quick
           test_result_slack_margin;
         Alcotest.test_case "golden cc frontier" `Quick test_golden_frontier ]);
      ("io",
       [ Alcotest.test_case "CSV round-trip" `Quick test_csv_roundtrip;
         Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
         Alcotest.test_case "schema versions" `Quick test_json_versions ]);
      ("rules",
       [ Alcotest.test_case "clean archive passes" `Quick
           test_rules_pass_on_clean_archive;
         Alcotest.test_case "skipped without an archive" `Quick
           test_rules_skip_without_archive;
         Alcotest.test_case "mutation: corrupted cost" `Quick
           test_mutation_objectives;
         Alcotest.test_case "mutation: dominated point" `Quick
           test_mutation_non_dominated;
         Alcotest.test_case "mutation: wrong OPT anchor" `Quick
           test_mutation_min_cost;
         Alcotest.test_case "mutation: infeasible design" `Quick
           test_mutation_infeasible ]) ]
