(* Golden regression tests: recompute the FTES_QUICK-sized Fig. 6a and
   Fig. 6c artifacts (8 applications, seed 42 — the bench-smoke
   population) and diff every measured acceptance percentage against
   the CSVs checked in under [golden/].  A perf refactor that silently
   changes a paper number fails here, not in a downstream figure.

   To regenerate after an intentional change of the numbers:

     FTES_REGEN_GOLDEN=$PWD/test/golden dune exec test/test_golden.exe *)

module Synthetic = Ftes_exp.Synthetic
module Figures = Ftes_exp.Figures
module Csv = Ftes_util.Csv
module Tolerance = Ftes_util.Tolerance

let suite = lazy (Synthetic.create_suite ~count:8 ~seed:42 ())

let artifacts =
  [ ("fig6a_quick.csv", fun () -> Figures.fig6a (Lazy.force suite));
    ("fig6c_quick.csv", fun () -> Figures.fig6c (Lazy.force suite)) ]

let () =
  match Sys.getenv_opt "FTES_REGEN_GOLDEN" with
  | Some dir ->
      List.iter
        (fun (name, artifact) ->
          let path = Filename.concat dir name in
          Csv.write_file path (Figures.to_csv (artifact ()));
          Printf.printf "regenerated %s\n%!" path)
        artifacts;
      exit 0
  | None -> ()

(* Under `dune runtest` the goldens are staged next to the executable's
   cwd as [golden/]; under `dune exec` from the repo root they live at
   [test/golden/].  Accept either. *)
let golden_path name =
  let local = Filename.concat "golden" name in
  if Sys.file_exists local then local
  else Filename.concat (Filename.concat "test" "golden") name

(* Acceptance percentages are ratios of small integer counts scaled by
   100, so they are exact in principle; compare at cost_eps to stay
   robust against a float-printing change. *)
let check_artifact (name, artifact) () =
  let golden = Csv.read_file (golden_path name) in
  let fresh = Figures.to_csv (artifact ()) in
  Alcotest.(check int)
    (name ^ ": row count")
    (List.length golden) (List.length fresh);
  List.iteri
    (fun i (golden_row, fresh_row) ->
      if i = 0 then
        Alcotest.(check (list string)) (name ^ ": header") golden_row fresh_row
      else begin
        match (golden_row, fresh_row) with
        | ( strategy :: kind :: golden_values,
            strategy' :: kind' :: fresh_values ) ->
            Alcotest.(check string)
              (Printf.sprintf "%s row %d: strategy" name i)
              strategy strategy';
            Alcotest.(check string)
              (Printf.sprintf "%s row %d: kind" name i)
              kind kind';
            List.iteri
              (fun j (g, f) ->
                let g = float_of_string g and f = float_of_string f in
                Alcotest.(check bool)
                  (Printf.sprintf "%s row %d col %d: %g within %g of %g" name
                     i j f Tolerance.cost_eps g)
                  true
                  (Tolerance.approx ~eps:Tolerance.cost_eps g f))
              (List.combine golden_values fresh_values)
        | _ ->
            Alcotest.failf "%s row %d: malformed row" name i
      end)
    (List.combine golden fresh)

let () =
  Alcotest.run "golden"
    [ ("figures",
       List.map
         (fun ((name, _) as artifact) ->
           Alcotest.test_case name `Slow (check_artifact artifact))
         artifacts) ]
