(* Shared plumbing for the ftes subcommands.

   The request lifecycle itself — typed exit codes, the observability
   finalizer, problem/strategy resolution, the report envelope — lives
   in Ftes_driver (shared with the resident daemon); this module only
   keeps the cmdliner terms and the thin glue that is genuinely
   CLI-shaped. *)

open Cmdliner

module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Problem_io = Ftes_model.Problem_io
module Lifecycle = Ftes_driver.Lifecycle
module Request = Ftes_driver.Request
module Exec = Ftes_driver.Exec

(* --- typed exit codes (re-exported from the lifecycle) --- *)

(* cmdliner owns 1/124/125 for CLI and internal errors; the driver's
   own outcomes are typed in Ftes_driver.Lifecycle and mapped in one
   place.  [Lint_failure] and [Infeasible] are requested (not [exit]ed)
   so that the observability teardown — flushing --trace / --metrics
   files — still runs.  Both map to status 3: "a check failed with a
   report", as opposed to cmdliner's own 1/124/125. *)
type exit_code = Lifecycle.exit_code = Success | Lint_failure | Infeasible

let request_exit = Lifecycle.request_exit

let finish = Lifecycle.finish

let fail fmt = Printf.ksprintf (fun s -> Error (`Msg s)) fmt

(* --- JSON report envelope (now shared with the daemon) --- *)

let report_json = Exec.report_json

(* --- problem & strategy resolution --- *)

let problem_of_example = Request.problem_of_example

let config_of_strategy = Request.config_of_strategy

type target = { file : string option; example : string; strategy : string }

let target_source target =
  match target.file with
  | Some path -> path
  | None -> "example:" ^ target.example

(* A problem comes either from a JSON file (--file) or from a built-in
   example (--example). *)
let resolve_problem target =
  match target.file with
  | Some path -> Problem_io.load path
  | None -> problem_of_example target.example

(* The request the subcommand is about to execute on the shared
   Ftes_driver.Exec path, carrying the CLI's own subject spelling
   (file path or example:NAME). *)
let request_of ?whatif target command problem config =
  { Request.id = "cli";
    command;
    strategy = target.strategy;
    config;
    problem;
    origin =
      (match target.file with
      | Some _ -> `Inline
      | None -> `Example target.example);
    source = target_source target;
    whatif }

(* --- terms --- *)

type obs = Lifecycle.obs = {
  seed : int;
  trace : string option;
  metrics : string option;
}

let obs_term =
  let seed =
    let doc = "Root random seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let trace =
    let doc =
      "Write a JSONL span trace of the run to $(docv) (one JSON object \
       per completed span).  Tracing only observes: results are \
       bit-identical with and without it."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)
  in
  let metrics =
    let doc =
      "Write a CSV snapshot of the metrics registry (counters, gauges, \
       latency histograms) to $(docv) when the command finishes."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"PATH" ~doc)
  in
  Term.(
    const (fun seed trace metrics -> { seed; trace; metrics })
    $ seed $ trace $ metrics)

let target_term =
  let file =
    let doc =
      "Load the problem from a JSON file instead of a built-in example."
    in
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"PATH" ~doc)
  in
  let example =
    let doc = "Built-in problem: $(b,fig1), $(b,fig3) or $(b,cc)." in
    Arg.(value & opt string "fig1" & info [ "example"; "e" ] ~docv:"NAME" ~doc)
  in
  let strategy =
    let doc = "Design strategy: $(b,opt), $(b,min) or $(b,max)." in
    Arg.(value & opt string "opt" & info [ "strategy"; "s" ] ~docv:"NAME" ~doc)
  in
  Term.(
    const (fun file example strategy -> { file; example; strategy })
    $ file $ example $ strategy)

(* --- observability session --- *)

(* Install the requested sinks for the duration of [f], then restore
   the defaults and flush the files — also on exceptions and on
   [request_exit]ed failures, which is why commands must never call
   [Stdlib.exit] themselves.  Owned by the lifecycle finalizer so the
   daemon and the CLI flush identically. *)
let with_observability ?aggregate_spans obs f =
  Lifecycle.with_observability ?aggregate_spans obs f

(* --- command skeletons --- *)

let with_problem ?aggregate_spans obs target f =
  with_observability ?aggregate_spans obs (fun () ->
      match (resolve_problem target, config_of_strategy target.strategy) with
      | Error e, _ | _, Error e -> fail "%s" e
      | Ok problem, Ok config -> f problem config)

let default_on_none _problem _config =
  fail "no schedulable & reliable design found"

let with_solution ?aggregate_spans ?(certify = false)
    ?(on_none = default_on_none) obs target f =
  with_problem ?aggregate_spans obs target (fun problem config ->
      let config = if certify then Config.with_certify true config else config in
      match Design_strategy.run ~config problem with
      | None -> on_none problem config
      | Some solution -> f problem config solution)

let solution_design (s : Design_strategy.solution) =
  s.Design_strategy.result.Redundancy_opt.design
