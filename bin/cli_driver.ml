(* Shared plumbing for the ftes subcommands.

   Every command used to open with its own copy of the same match
   pyramid (resolve the problem, resolve the strategy, run the design
   strategy, handle infeasibility); those live here once, along with
   the observability options (--trace / --metrics / --seed) that every
   subcommand accepts and the typed exit codes the driver maps to
   process statuses. *)

open Cmdliner

module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Problem_io = Ftes_model.Problem_io
module Span = Ftes_obs.Span
module Sink = Ftes_obs.Sink
module Metrics = Ftes_obs.Metrics
module Obs_report = Ftes_obs.Report

(* --- typed exit codes --- *)

(* cmdliner owns 1/124/125 for CLI and internal errors; the driver's
   own outcomes are typed here and mapped in one place.  [Lint_failure]
   and [Infeasible] are requested (not [exit]ed) so that the
   observability teardown — flushing --trace / --metrics files — still
   runs.  Both map to status 3: "a check failed with a report", as
   opposed to cmdliner's own 1/124/125. *)
type exit_code = Success | Lint_failure | Infeasible

let int_of_exit_code = function
  | Success -> 0
  | Lint_failure | Infeasible -> 3

let pending = ref Success

let request_exit code = pending := code

let finish eval_code =
  if eval_code <> 0 then eval_code else int_of_exit_code !pending

let fail fmt = Printf.ksprintf (fun s -> Error (`Msg s)) fmt

(* --- JSON report envelope --- *)

(* Shared by every subcommand that prints a machine-readable report
   (lint, analyze): a versioned envelope naming the subject and the
   strategy, with command-specific fields appended. *)
let report_schema_version = 1

let report_json ~source ~strategy fields =
  Ftes_util.Json.Object
    (( "schema_version",
       Ftes_util.Json.Number (float_of_int report_schema_version) )
     :: ("subject", Ftes_util.Json.String source)
     :: ("strategy", Ftes_util.Json.String strategy)
     :: fields)

(* --- problem & strategy resolution --- *)

let problem_of_example = function
  | "fig1" -> Ok (Ftes_cc.Fig_examples.fig1_problem ())
  | "fig3" -> Ok (Ftes_cc.Fig_examples.fig3_problem ())
  | "cc" | "cruise-control" -> Ok (Ftes_cc.Cruise_control.problem ())
  | other ->
      Error
        (Printf.sprintf "unknown example %S (try fig1, fig3, cc)" other)

type target = { file : string option; example : string; strategy : string }

let target_source target =
  match target.file with
  | Some path -> path
  | None -> "example:" ^ target.example

(* A problem comes either from a JSON file (--file) or from a built-in
   example (--example). *)
let resolve_problem target =
  match target.file with
  | Some path -> Problem_io.load path
  | None -> problem_of_example target.example

let config_of_strategy = function
  | "opt" -> Ok Config.default
  | "min" -> Ok Config.min_strategy
  | "max" -> Ok Config.max_strategy
  | other ->
      Error (Printf.sprintf "unknown strategy %S (try opt, min, max)" other)

(* --- terms --- *)

type obs = { seed : int; trace : string option; metrics : string option }

let obs_term =
  let seed =
    let doc = "Root random seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let trace =
    let doc =
      "Write a JSONL span trace of the run to $(docv) (one JSON object \
       per completed span).  Tracing only observes: results are \
       bit-identical with and without it."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)
  in
  let metrics =
    let doc =
      "Write a CSV snapshot of the metrics registry (counters, gauges, \
       latency histograms) to $(docv) when the command finishes."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"PATH" ~doc)
  in
  Term.(
    const (fun seed trace metrics -> { seed; trace; metrics })
    $ seed $ trace $ metrics)

let target_term =
  let file =
    let doc =
      "Load the problem from a JSON file instead of a built-in example."
    in
    Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"PATH" ~doc)
  in
  let example =
    let doc = "Built-in problem: $(b,fig1), $(b,fig3) or $(b,cc)." in
    Arg.(value & opt string "fig1" & info [ "example"; "e" ] ~docv:"NAME" ~doc)
  in
  let strategy =
    let doc = "Design strategy: $(b,opt), $(b,min) or $(b,max)." in
    Arg.(value & opt string "opt" & info [ "strategy"; "s" ] ~docv:"NAME" ~doc)
  in
  Term.(
    const (fun file example strategy -> { file; example; strategy })
    $ file $ example $ strategy)

(* --- observability session --- *)

(* Install the requested sinks for the duration of [f], then restore
   the defaults and flush the files — also on exceptions and on
   [request_exit]ed failures, which is why commands must never call
   [Stdlib.exit] themselves. *)
let with_observability ?(aggregate_spans = false) obs f =
  let trace_oc = Option.map open_out obs.trace in
  let sink =
    match trace_oc with Some oc -> Sink.jsonl oc | None -> Sink.null
  in
  Span.configure ~sink ~aggregate:(aggregate_spans || obs.metrics <> None) ();
  Fun.protect
    ~finally:(fun () ->
      Span.disable ();
      (match obs.metrics with
      | Some path -> Obs_report.write_metrics_csv path (Metrics.snapshot ())
      | None -> ());
      Option.iter close_out trace_oc)
    f

(* --- command skeletons --- *)

let with_problem ?aggregate_spans obs target f =
  with_observability ?aggregate_spans obs (fun () ->
      match (resolve_problem target, config_of_strategy target.strategy) with
      | Error e, _ | _, Error e -> fail "%s" e
      | Ok problem, Ok config -> f problem config)

let default_on_none _problem _config =
  fail "no schedulable & reliable design found"

let with_solution ?aggregate_spans ?(certify = false)
    ?(on_none = default_on_none) obs target f =
  with_problem ?aggregate_spans obs target (fun problem config ->
      let config = if certify then Config.with_certify true config else config in
      match Design_strategy.run ~config problem with
      | None -> on_none problem config
      | Some solution -> f problem config solution)

let solution_design (s : Design_strategy.solution) =
  s.Design_strategy.result.Redundancy_opt.design
