(* ftes — command-line driver for the fault-tolerant embedded-system
   design optimizer.

     ftes optimize   run MIN/MAX/OPT on a built-in problem
     ftes pareto     cost/slack/margin Pareto frontier of feasible designs
     ftes whatif     warm re-optimization of a perturbed problem
     ftes serve      resident design-service daemon over JSONL
     ftes generate   generate a synthetic application
     ftes simulate   fault-injection campaign on an optimized design
     ftes experiment reproduce a figure/table of the paper
     ftes profile    per-phase time/allocation breakdown of a run
     ftes lint       static verification of a problem and its optimized
                     design/schedule

   Every subcommand accepts --trace FILE (JSONL span trace),
   --metrics FILE (CSV metrics snapshot) and --seed; the shared
   plumbing lives in Cli_driver, and the execute/certify/report path
   itself in Ftes_driver (shared with the daemon). *)

open Cmdliner

module Config = Ftes_core.Config
module Design = Ftes_model.Design
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Workload = Ftes_gen.Workload
module Driver = Cli_driver
module Request = Ftes_driver.Request
module Response = Ftes_driver.Response
module Exec = Ftes_driver.Exec
module Daemon = Ftes_driver.Daemon

let fail = Driver.fail

let format_term =
  Arg.(value
       & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
       & info [ "format" ] ~docv:"FMT"
       ~doc:"Report format: $(b,text) or $(b,json).")

(* Finish one shared-path execution: surface the outcome's verdict as
   the CLI's typed exit status (status 3 for proven-infeasible and
   lint failures — requested, not exited, so --trace/--metrics still
   flush). *)
let request_outcome_exit outcome =
  match Response.exit_of_verdict (Exec.verdict outcome) with
  | Driver.Success -> ()
  | code -> Driver.request_exit code

(* optimize *)

let run_optimize obs target format gantt =
  match format with
  | `Json ->
      (* The shared Ftes_driver.Exec path: the payload printed here is
         byte-identical to the daemon's for the same request. *)
      Driver.with_problem obs target (fun problem config ->
          let req = Driver.request_of target Request.Optimize problem config in
          let outcome = Exec.run req in
          print_endline (Ftes_util.Json.to_string (Exec.payload req outcome));
          request_outcome_exit outcome;
          Ok ())
  | `Text ->
      Driver.with_solution obs target
        ~on_none:(fun _problem config ->
          Printf.printf "%s: no schedulable & reliable design found\n"
            (Config.policy_name config.Config.hardening);
          Ok ())
        (fun problem config s ->
          Format.printf "%a@." Ftes_model.Problem.pp problem;
          let design = Driver.solution_design s in
          Printf.printf "%s solution (explored %d architectures):\n"
            (Config.policy_name config.Config.hardening)
            s.Design_strategy.explored;
          Format.printf "%a@." (fun ppf () -> Design.pp ppf problem design) ();
          Printf.printf
            "schedule length %.2f ms; reliability %.11f (goal %.6f)\n"
            s.Design_strategy.result.Redundancy_opt.schedule_length
            s.Design_strategy.verdict.Ftes_sfp.Sfp.reliability_per_hour
            s.Design_strategy.verdict.Ftes_sfp.Sfp.goal;
          if gantt then
            print_string
              (Ftes_sched.Schedule.to_gantt problem design
                 s.Design_strategy.schedule);
          Ok ())

let optimize_cmd =
  let gantt =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print the static schedule.")
  in
  let term =
    Term.(
      const run_optimize $ Driver.obs_term $ Driver.target_term $ format_term
      $ gantt)
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize a built-in problem with MIN/MAX/OPT")
    Term.(term_result term)

(* whatif *)

module Delta = Ftes_whatif.Delta
module Reuse = Ftes_whatif.Reuse

let delta_of_flags delta_json delta_file =
  let parse what s =
    match Ftes_util.Json.of_string s with
    | Error e -> Error (Printf.sprintf "%s: %s" what e)
    | Ok json -> (
        match Delta.of_json json with
        | Error e -> Error (Printf.sprintf "%s: %s" what e)
        | Ok delta -> Ok delta)
  in
  match (delta_json, delta_file) with
  | None, None -> Error "give a delta: --delta JSON or --delta-file PATH"
  | Some _, Some _ -> Error "give either --delta or --delta-file, not both"
  | Some s, None -> parse "--delta" s
  | None, Some path -> (
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error e -> Error e
      | contents -> parse ("--delta-file " ^ path) contents)

let reuse_text (r : Reuse.t) =
  Printf.sprintf
    "warm start (%s): replayed %d/%d steps; kept %d/%d SFP tables, %d/%d \
     evaluations, %d/%d probes%s\n"
    r.Reuse.delta_class r.Reuse.steps_replayed r.Reuse.steps_total
    r.Reuse.sfp_kept
    (r.Reuse.sfp_kept + r.Reuse.sfp_dropped)
    r.Reuse.evals_kept
    (r.Reuse.evals_kept + r.Reuse.evals_dropped)
    r.Reuse.probes_kept
    (r.Reuse.probes_kept + r.Reuse.probes_dropped)
    (if r.Reuse.preflight_reused then
       Printf.sprintf "; pre-flight reused (%d witnesses re-checked)"
         r.Reuse.witnesses_rechecked
     else "")

let run_whatif obs target format delta_json delta_file =
  Driver.with_problem obs target (fun problem config ->
      match delta_of_flags delta_json delta_file with
      | Error e -> fail "%s" e
      | Ok delta -> (
          (* One-shot what-if on the shared Exec path: cold base walk
             plus warm rerun in a single request — the same flow the
             daemon serves for a base_id-less delta request, and the
             payload printed here is byte-identical to an optimize of
             the perturbed problem. *)
          let whatif = { Request.base_id = None; delta } in
          let req =
            Driver.request_of ~whatif target Request.Optimize problem config
          in
          match Exec.run req with
          | exception Exec.Rejected msg -> fail "%s" msg
          | outcome ->
              let solution, reuse =
                match outcome with
                | Exec.Optimized { solution; reuse; _ } -> (solution, reuse)
                | _ -> assert false
              in
              (match format with
              | `Json ->
                  print_endline
                    (Ftes_util.Json.to_string (Exec.payload req outcome))
              | `Text ->
                  Printf.printf "whatif %s (strategy %s, delta %s)\n"
                    (Driver.target_source target) target.Driver.strategy
                    (Ftes_util.Json.to_string ~minify:true
                       (Delta.to_json delta));
                  Option.iter (fun r -> print_string (reuse_text r)) reuse;
                  (match solution with
                  | None ->
                      print_string
                        "no schedulable & reliable design under the delta\n"
                  | Some s ->
                      Printf.printf
                        "perturbed optimum (explored %d architectures): cost \
                         %.2f, schedule length %.2f ms, slack %.2f ms, \
                         margin %.2f decades\n"
                        s.Design_strategy.explored
                        s.Design_strategy.result.Redundancy_opt.cost
                        s.Design_strategy.result.Redundancy_opt.schedule_length
                        s.Design_strategy.result.Redundancy_opt.slack
                        s.Design_strategy.result.Redundancy_opt.margin));
              request_outcome_exit outcome;
              Ok ()))

let whatif_cmd =
  let delta_json =
    Arg.(value & opt (some string) None & info [ "delta" ] ~docv:"JSON"
         ~doc:"The perturbation as an inline JSON document, e.g. \
               $(b,{\"class\": \"deadline-scale\", \"factor\": 0.95}).")
  in
  let delta_file =
    Arg.(value & opt (some string) None & info [ "delta-file" ] ~docv:"PATH"
         ~doc:"Read the perturbation document from $(docv) instead.")
  in
  let term =
    Term.(
      const run_whatif $ Driver.obs_term $ Driver.target_term $ format_term
      $ delta_json $ delta_file)
  in
  Cmd.v
    (Cmd.info "whatif"
       ~doc:"Warm re-optimization of a perturbed problem (what-if query)"
       ~man:
         [ `S Manpage.s_description;
           `P "Optimizes the base problem while recording the walk, applies \
               a typed single-field delta (deadline, period, reliability \
               goal, per-node WCET/SER scaling, h-version table edits, \
               library add/remove, kmax), and re-optimizes the perturbed \
               problem warm: SFP node tables, candidate evaluations and \
               hardening probes that the delta's invalidation footprint \
               provably cannot touch are migrated instead of recomputed, \
               and the pre-flight report is re-checked rather than \
               re-derived when the delta can only tighten the instance.";
           `P "The reported solution is bit-identical to a cold $(b,ftes \
               optimize) of the perturbed problem — warm starting is a \
               pure speedup, never an approximation (the test-suite pins \
               this per delta class across every slack and bus policy).  \
               In $(b,--format json), the payload is byte-identical to \
               the cold optimize payload.  A resident daemon ($(b,ftes \
               serve)) answers the same queries incrementally via the \
               $(b,base_id)/$(b,delta) request fields, reusing the \
               recorded walk of an earlier request." ])
    Term.(term_result term)

(* serve *)

let run_serve obs batch max_problems audit =
  Driver.with_observability obs (fun () ->
      if batch < 1 then fail "--batch must be positive"
      else if max_problems < 1 then fail "--max-problems must be positive"
      else begin
        let pool = Ftes_par.Pool.create () in
        let caches = Daemon.create_caches ~max_problems () in
        if audit then begin
          let responses, report = Daemon.audit ~pool ~caches () in
          Printf.printf "serve audit: %d responses\n" (List.length responses);
          print_string (Ftes_verify.Report.to_text report);
          if not (Ftes_verify.Report.ok report) then
            Driver.request_exit Driver.Lint_failure;
          Ok ()
        end
        else begin
          let stats =
            Daemon.serve ~pool ~caches ~max_batch:batch stdin stdout
          in
          Printf.eprintf
            "serve: %d requests (%d failed) in %d batches; %d warm problem \
             buckets (%d reuses)\n\
             %!"
            stats.Daemon.requests stats.Daemon.failed stats.Daemon.batches
            (Daemon.cache_problems caches)
            (Daemon.cache_hits caches);
          Ok ()
        end
      end)

let serve_cmd =
  let batch =
    Arg.(value & opt int 16 & info [ "batch" ] ~docv:"N"
         ~doc:"Answer requests in pool batches of up to $(docv) lines \
               ($(b,1) = strict request-by-request streaming).")
  in
  let max_problems =
    Arg.(value & opt int 64 & info [ "max-problems" ] ~docv:"N"
         ~doc:"Retain warm evaluation caches for at most $(docv) distinct \
               problem/policy buckets.")
  in
  let audit =
    Arg.(value & flag
         & info [ "audit" ]
         ~doc:"Self-test instead of serving: drive a built-in mixed batch \
               (including a malformed line) through the daemon path and \
               certify the emitted response stream with the verifier's \
               $(b,serve/*) rules; exits 3 on any failure.")
  in
  let term =
    Term.(const run_serve $ Driver.obs_term $ batch $ max_problems $ audit)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Resident design service: JSONL requests in, certified JSONL \
             responses out"
       ~man:
         [ `S Manpage.s_description;
           `P "Reads one JSON request per line from standard input — a \
               problem (inline document or built-in example) plus a \
               command ($(b,analyze), $(b,optimize), $(b,exact), \
               $(b,pareto)) and its strategy/policy options — executes \
               them with bounded concurrency on the domain pool, and \
               writes one JSON response envelope per request to standard \
               output, in request order, each carrying the same certified \
               payload the one-shot subcommand would print plus \
               per-request telemetry (queue wait, wall time, cache \
               counters).";
           `P "Requests over the same problem and slack/bus/kmax policies \
               share one evaluation cache, so a warm daemon answers \
               repeated design questions far faster than one-shot runs — \
               with bit-identical payloads (the bench enforces this).  \
               Malformed or unknown-version lines produce a structured \
               $(b,error) response; the daemon never dies on bad input.  \
               Proven infeasibility is a per-response verdict here, not \
               an exit status: the process exits 0 after EOF."; ])
    Term.(term_result term)

(* generate *)

let run_generate obs index procs ser hpd dot output =
  Driver.with_observability obs (fun () ->
      if procs <= 0 then fail "process count must be positive"
      else begin
        let spec =
          Workload.generate_spec ~seed:obs.Driver.seed ~index ~n_processes:procs
            ()
        in
        let problem = Workload.problem_of_spec { Workload.ser; hpd } spec in
        Format.printf "%a@." Ftes_model.Problem.pp problem;
        Printf.printf "deadline %.2f ms, gamma %g, mu %.3f ms, %d edges\n"
          spec.Workload.deadline_ms spec.Workload.gamma spec.Workload.mu_ms
          (Ftes_model.Task_graph.n_edges spec.Workload.graph);
        if dot then
          print_string (Ftes_model.Task_graph.to_dot spec.Workload.graph);
        Option.iter
          (fun path ->
            Ftes_model.Problem_io.save path problem;
            Printf.eprintf "wrote %s\n%!" path)
          output;
        Ok ()
      end)

let generate_cmd =
  let index =
    Arg.(value & opt int 0 & info [ "index" ] ~docv:"N" ~doc:"Application index.")
  in
  let procs =
    Arg.(value & opt int 20 & info [ "procs" ] ~docv:"N" ~doc:"Process count.")
  in
  let ser =
    Arg.(value & opt float 1e-11 & info [ "ser" ] ~docv:"RATE"
         ~doc:"Soft error rate per cycle at minimum hardening.")
  in
  let hpd =
    Arg.(value & opt float 0.25 & info [ "hpd" ] ~docv:"FRAC"
         ~doc:"Hardening performance degradation (fraction, e.g. 0.25).")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Print the task graph in DOT form.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"PATH"
          ~doc:"Also write the generated problem instance as JSON to $(docv).")
  in
  let term =
    Term.(
      const run_generate $ Driver.obs_term $ index $ procs $ ser $ hpd $ dot
      $ output)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic application")
    Term.(term_result term)

(* simulate *)

let run_simulate obs target trials boost =
  Driver.with_solution obs target
    ~on_none:(fun _ _ -> fail "no feasible design to simulate")
    (fun problem _config s ->
      let design = Driver.solution_design s in
      let prng = Ftes_util.Prng.create obs.Driver.seed in
      let campaign =
        Ftes_faultsim.Executor.run_campaign ~boost prng problem design ~trials
      in
      Printf.printf
        "trials %d (boost %.0fx)\n\
         observed system-failure rate  %.4e\n\
         SFP-predicted rate            %.4e\n\
         within-budget deadline misses %d\n\
         max within-budget makespan    %.2f ms\n"
        campaign.Ftes_faultsim.Executor.trials boost
        campaign.Ftes_faultsim.Executor.observed_failure_rate
        campaign.Ftes_faultsim.Executor.predicted_failure_rate
        campaign.Ftes_faultsim.Executor.deadline_misses
        campaign.Ftes_faultsim.Executor.max_makespan;
      Ok ())

let simulate_cmd =
  let trials =
    Arg.(value & opt int 50_000 & info [ "trials" ] ~docv:"N"
         ~doc:"Monte-Carlo iterations.")
  in
  let boost =
    Arg.(value & opt float 1000.0 & info [ "boost" ] ~docv:"X"
         ~doc:"Failure-probability boost for rare-event sampling.")
  in
  let term =
    Term.(
      const run_simulate $ Driver.obs_term $ Driver.target_term $ trials
      $ boost)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Fault-injection campaign on an optimized design")
    Term.(term_result term)

(* experiment *)

let run_experiment obs figure apps =
  Driver.with_observability obs (fun () ->
      let suite =
        lazy (Ftes_exp.Synthetic.create_suite ~count:apps ~seed:obs.Driver.seed ())
      in
      let render_one artifact =
        print_string (Ftes_exp.Figures.render artifact);
        print_newline ()
      in
      match figure with
      | "6a" -> render_one (Ftes_exp.Figures.fig6a (Lazy.force suite)); Ok ()
      | "6b" ->
          List.iter render_one (Ftes_exp.Figures.fig6b (Lazy.force suite));
          Ok ()
      | "6c" -> render_one (Ftes_exp.Figures.fig6c (Lazy.force suite)); Ok ()
      | "6d" -> render_one (Ftes_exp.Figures.fig6d (Lazy.force suite)); Ok ()
      | "cc" ->
          print_string
            (Ftes_exp.Figures.render_cc (Ftes_exp.Figures.cc_study ()));
          Ok ()
      | other -> fail "unknown figure %S (try 6a, 6b, 6c, 6d, cc)" other)

let experiment_cmd =
  let figure =
    Arg.(value & opt string "6a" & info [ "figure" ] ~docv:"ID"
         ~doc:"Paper artifact: $(b,6a), $(b,6b), $(b,6c), $(b,6d) or $(b,cc).")
  in
  let apps =
    Arg.(value & opt int 150 & info [ "apps" ] ~docv:"N"
         ~doc:"Synthetic population size.")
  in
  let term = Term.(const run_experiment $ Driver.obs_term $ figure $ apps) in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce a figure or table of the paper")
    Term.(term_result term)

(* profile *)

module Metrics = Ftes_obs.Metrics
module Obs_report = Ftes_obs.Report
module Clock = Ftes_obs.Clock

let run_profile obs target csv =
  (* Span aggregation on regardless of --metrics: the breakdown is the
     point of the command. *)
  Driver.with_problem ~aggregate_spans:true obs target (fun problem config ->
      (* Zero the registry after problem loading so the snapshot
         describes the optimization run alone. *)
      Metrics.reset ();
      let t0 = Clock.now_ns () in
      let solution = Design_strategy.run ~config problem in
      let wall_ns = Clock.now_ns () - t0 in
      let snapshot = Metrics.snapshot () in
      Printf.printf "profile %s (strategy %s)\n"
        (Driver.target_source target) target.Driver.strategy;
      (match solution with
      | Some s ->
          Printf.printf
            "feasible: cost %.2f, schedule length %.2f ms, %d architectures \
             explored\n\n"
            s.Design_strategy.result.Redundancy_opt.cost
            s.Design_strategy.result.Redundancy_opt.schedule_length
            s.Design_strategy.explored
      | None -> print_string "no feasible design found\n\n");
      if csv then
        List.iter
          (fun row -> print_endline (String.concat "," row))
          (Obs_report.profile_to_csv ~wall_ns snapshot)
      else print_string (Obs_report.profile_to_text ~wall_ns snapshot);
      (* Certify the snapshot with the obs rules of the verifier; an
         inconsistent registry means the numbers above are not
         trustworthy. *)
      let report =
        Ftes_verify.Verify.run ~rules:Ftes_verify.Obs_rules.all
          (Ftes_verify.Subject.with_metrics
             (Ftes_verify.Subject.of_problem problem)
             snapshot)
      in
      if not (Ftes_verify.Report.ok report) then begin
        print_string (Ftes_verify.Report.to_text report);
        Driver.request_exit Driver.Lint_failure
      end;
      Ok ())

let profile_cmd =
  let csv =
    Arg.(value & flag
         & info [ "csv" ] ~doc:"Emit the breakdown as CSV instead of a table.")
  in
  let term =
    Term.(const run_profile $ Driver.obs_term $ Driver.target_term $ csv)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-phase time and allocation breakdown of an optimization run"
       ~man:
         [ `S Manpage.s_description;
           `P "Runs the selected design strategy with span aggregation \
               enabled and prints a per-phase breakdown (calls, total time, \
               share of wall-clock, allocation) recovered from the \
               $(b,span.*) metrics.  The snapshot is then certified by the \
               verifier's $(b,obs/*) rules; an inconsistent registry exits \
               with status 3." ])
    Term.(term_result term)

(* worst-case *)

let run_worst_case obs target limit =
  Driver.with_solution obs target
    ~on_none:(fun _ _ -> fail "no feasible design to analyze")
    (fun problem _config s ->
      let design = Driver.solution_design s in
      let space = Ftes_faultsim.Scenarios.count_scenarios design in
      if space > float_of_int limit then
        fail "%.3g fault scenarios exceed --limit %d" space limit
      else begin
        let r = Ftes_faultsim.Scenarios.worst_case ~limit problem design in
        Printf.printf
          "scenarios replayed          %d\n\
           shared bound (paper's SL)   %.2f ms\n\
           exact worst case            %.2f ms\n\
           conservative bound          %.2f ms\n\
           shared bound optimistic?    %s\n"
          r.Ftes_faultsim.Scenarios.scenarios
          r.Ftes_faultsim.Scenarios.shared_bound_ms
          r.Ftes_faultsim.Scenarios.exact_worst_ms
          r.Ftes_faultsim.Scenarios.conservative_bound_ms
          (if Ftes_faultsim.Scenarios.optimism_certificate r then "yes"
           else "no");
        Ok ()
      end)

let worst_case_cmd =
  let limit =
    Arg.(value & opt int 200_000 & info [ "limit" ] ~docv:"N"
         ~doc:"Maximum number of fault scenarios to replay.")
  in
  let term =
    Term.(const run_worst_case $ Driver.obs_term $ Driver.target_term $ limit)
  in
  Cmd.v
    (Cmd.info "worst-case"
       ~doc:"Exact worst-case analysis by exhaustive fault-scenario replay")
    Term.(term_result term)

(* checkpoint *)

let run_checkpoint obs target save_ms =
  Driver.with_solution obs target
    ~on_none:(fun _ _ -> fail "no feasible design to checkpoint")
    (fun problem _config s ->
      let design = Driver.solution_design s in
      let plain = s.Design_strategy.result.Redundancy_opt.schedule_length in
      let kappa, ckpt =
        Ftes_core.Checkpoint_opt.optimize ?save_ms problem design
      in
      Printf.printf
        "plain re-execution SL      %.2f ms\n\
         checkpointed SL            %.2f ms (%.1f%% shorter)\n\
         checkpoints per process    [%s]\n"
        plain ckpt
        (100.0 *. (plain -. ckpt) /. plain)
        (String.concat ";" (Array.to_list (Array.map string_of_int kappa)));
      Ok ())

let checkpoint_cmd =
  let save_ms =
    Arg.(value & opt (some float) None & info [ "save" ] ~docv:"MS"
         ~doc:"Checkpoint save cost in ms (default: half the recovery \
               overhead).")
  in
  let term =
    Term.(
      const run_checkpoint $ Driver.obs_term $ Driver.target_term $ save_ms)
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Optimize checkpoint counts on top of an optimized design")
    Term.(term_result term)

(* lint *)

module Verify = Ftes_verify.Verify
module Report = Ftes_verify.Report
module Subject = Ftes_verify.Subject
module Json = Ftes_util.Json

let lint_json ~source ~strategy ~feasible report =
  Driver.report_json ~source ~strategy
    [ ("feasible", Json.Bool feasible); ("report", Report.to_json report) ]

let run_lint obs target format =
  Driver.with_solution obs target ~certify:true
    ~on_none:(fun problem _config ->
      let report = Verify.run (Subject.of_problem problem) in
      Printf.printf "lint %s (strategy %s) — no feasible design, problem \
                     rules only\n"
        (Driver.target_source target) target.Driver.strategy;
      print_string (Report.to_text report);
      if not (Report.ok report) then
        Driver.request_exit Driver.Lint_failure;
      Ok ())
    (fun problem config s ->
      let source = Driver.target_source target in
      let report =
        match s.Design_strategy.certificate with
        | Some report -> report
        | None ->
            (* Unreachable with certify on, but never drop the report. *)
            Verify.certify ~slack:config.Config.slack problem
              (Driver.solution_design s) s.Design_strategy.schedule
      in
      (match format with
      | `Json ->
          print_endline
            (Json.to_string
               (lint_json ~source ~strategy:target.Driver.strategy
                  ~feasible:true report))
      | `Text ->
          Printf.printf "lint %s (strategy %s)\n" source target.Driver.strategy;
          print_string (Report.to_text report));
      (* Exit code 3 distinguishes "the verifier found an error" from
         cmdliner's own 1/124/125 conventions; requested, not exited,
         so --trace/--metrics still flush. *)
      if not (Report.ok report) then
        Driver.request_exit Driver.Lint_failure;
      Ok ())

let lint_cmd =
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
         ~doc:"Report format: $(b,text) or $(b,json).")
  in
  let term =
    Term.(const run_lint $ Driver.obs_term $ Driver.target_term $ format)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically verify a problem and its optimized design/schedule"
       ~man:
         [ `S Manpage.s_description;
           `P "Runs the $(b,Ftes_verify) rule registry over the problem and \
               the design/schedule emitted by the selected strategy: \
               structural sanity, independently re-derived schedule \
               soundness (precedence, overlap, recovery slack, deadline) \
               and the numerical contracts of the SFP analysis.  Exits \
               with status 3 when any error-severity diagnostic fires." ])
    Term.(term_result term)

(* analyze *)

module Preflight = Ftes_analyze.Preflight
module Certificate = Ftes_analyze.Certificate
module Certificate_io = Ftes_analyze.Certificate_io

let bound_string v = if Float.is_finite v then Printf.sprintf "%.2f" v else "unbounded (no admissible assignment)"

let analysis_text source strategy problem (pf : Preflight.t) =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let name p =
    Ftes_model.Application.process_name problem.Ftes_model.Problem.app p
  in
  add "analyze %s (strategy %s)\n" source strategy;
  add "premises: deadline %.2f ms, kmax %d, %s slack accounting\n"
    pf.Preflight.deadline_ms pf.Preflight.kmax
    (if pf.Preflight.reexec then "re-execution" else "non-re-execution");
  add "critical path   %.2f ms (%s)\n" pf.Preflight.critical_path_ms
    (String.concat " -> " (List.map name pf.Preflight.critical_path));
  add "total work      %.2f ms of %.2f ms library capacity\n"
    pf.Preflight.total_work_ms pf.Preflight.capacity_ms;
  add "cost lower bound %s (reliability-only: %s)\n"
    (bound_string pf.Preflight.cost_lower_bound)
    (bound_string pf.Preflight.sfp_cost_lower_bound);
  (match pf.Preflight.witnesses with
  | [] ->
      add "verdict: feasible — no necessary condition is violated\n"
  | ws ->
      add "verdict: provably infeasible (%d witness%s)\n" (List.length ws)
        (if List.length ws = 1 then "" else "es");
      List.iter
        (fun w -> add "  - %s\n" (Preflight.witness_to_string problem w))
        ws);
  Buffer.contents b

let load_frontier problem path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> Ftes_pareto.Frontier_io.of_string ~problem contents

let run_audit problem config format ~source ~strategy ~cert_path
    ~frontier_path =
  match Certificate_io.load cert_path with
  | Error e -> fail "--audit %s: %s" cert_path e
  | Ok cert -> (
      let subject =
        Subject.with_certificate
          { (Subject.of_problem problem) with
            Subject.slack = config.Config.slack;
            bus = config.Config.bus }
          cert
      in
      let subject =
        match frontier_path with
        | None -> Ok subject
        | Some path -> (
            match load_frontier problem path with
            | Error e -> Error (Printf.sprintf "--frontier %s: %s" path e)
            | Ok archive -> Ok (Subject.with_archive subject archive))
      in
      match subject with
      | Error e -> fail "%s" e
      | Ok subject ->
          let report = Verify.run subject in
          (match format with
          | `Json ->
              print_endline
                (Json.to_string
                   (Driver.report_json ~source ~strategy
                      [ ("certificate", Json.String cert_path);
                        ("report", Report.to_json report) ]))
          | `Text ->
              Printf.printf "audit %s against %s (strategy %s)\n" cert_path
                source strategy;
              print_string (Report.to_text report));
          if not (Report.ok report) then
            Driver.request_exit Driver.Lint_failure;
          Ok ())

let run_analyze obs target format cert_path audit_path frontier_path =
  Driver.with_problem obs target (fun problem config ->
      let source = Driver.target_source target in
      let strategy = target.Driver.strategy in
      match audit_path with
      | Some cert_path ->
          run_audit problem config format ~source ~strategy ~cert_path
            ~frontier_path
      | None ->
          (* The shared Ftes_driver.Exec path (same payload bytes as
             the daemon). *)
          let req = Driver.request_of target Request.Analyze problem config in
          let outcome = Exec.run req in
          let pf, cert =
            match outcome with
            | Exec.Analyzed { preflight; certificate } ->
                (preflight, certificate)
            | _ -> assert false
          in
          (match cert_path with
          | Some path ->
              Certificate_io.save path cert;
              Printf.eprintf "wrote %s\n%!" path
          | None -> ());
          (match format with
          | `Json -> print_endline (Json.to_string (Exec.payload req outcome))
          | `Text -> print_string (analysis_text source strategy problem pf));
          (* Status 3 = proven infeasible, with the witnesses printed;
             requested, not exited, so --trace/--metrics still flush. *)
          request_outcome_exit outcome;
          Ok ())

let analyze_cmd =
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
         ~doc:"Report format: $(b,text) or $(b,json).")
  in
  let cert_path =
    Arg.(value & opt (some string) None & info [ "cert" ] ~docv:"PATH"
         ~doc:"Write the analysis as a versioned certificate to $(docv).")
  in
  let audit_path =
    Arg.(value & opt (some string) None & info [ "audit" ] ~docv:"PATH"
         ~doc:"Audit an existing certificate against the problem instead \
               of analyzing: every bound is re-derived offline (no \
               optimizer runs) and cross-checked by the verifier's \
               $(b,analyze/*) rules.")
  in
  let frontier_path =
    Arg.(value & opt (some string) None & info [ "frontier" ] ~docv:"PATH"
         ~doc:"With $(b,--audit), also load an exported frontier and \
               cross-check the certified cost lower bound against every \
               point (and the frontier itself via the $(b,pareto/*) \
               rules).")
  in
  let term =
    Term.(
      const run_analyze $ Driver.obs_term $ Driver.target_term $ format
      $ cert_path $ audit_path $ frontier_path)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Pre-flight feasibility analysis with certified lower bounds"
       ~man:
         [ `S Manpage.s_description;
           `P "Derives necessary conditions every feasible design must \
               satisfy — per-task WCET and re-execution-slack bounds \
               against the deadline, the critical path and total work \
               under per-process minimum WCETs, per-assignment \
               reliability admissibility within the re-execution bound, \
               and a cost lower bound — without running any optimizer.  \
               Every violated condition is reported with a concrete \
               witness and the command exits with status 3 (a proof of \
               infeasibility); otherwise the derived bounds are printed \
               and the design strategy may consume them as pruning \
               oracles.";
           `P "$(b,--cert) exports the analysis as a versioned JSON \
               certificate; $(b,--audit) re-derives and cross-checks a \
               previously exported certificate offline, exiting 3 when \
               any claim fails to verify." ])
    Term.(term_result term)

(* exact *)

module Bnb = Ftes_bnb.Bnb
module Bnb_certificate = Ftes_analyze.Bnb_certificate
module Bnb_certificate_io = Ftes_analyze.Bnb_certificate_io

let exact_text source strategy (cert : Bnb_certificate.t) =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let cost v =
    if Float.is_finite v then Printf.sprintf "%.2f" v else "unbounded"
  in
  add "exact %s (strategy %s)\n" source strategy;
  let c = cert.Bnb_certificate.counters in
  add "search space    %.0f candidates, %d fully evaluated\n"
    cert.Bnb_certificate.search_space c.Bnb_certificate.evaluated;
  add
    "pruned          %d cost / %d infeasible / %d symmetry subtrees, %d \
     level vectors, %d mappings\n"
    c.Bnb_certificate.pruned_cost c.Bnb_certificate.pruned_arch
    c.Bnb_certificate.pruned_symmetry c.Bnb_certificate.pruned_levels
    c.Bnb_certificate.pruned_mappings;
  add "heuristic cost  %s\n" (cost cert.Bnb_certificate.heuristic_cost);
  add "optimal cost    %s (proven)\n" (cost cert.Bnb_certificate.optimal_cost);
  (match Bnb_certificate.gap cert with
  | Some gap -> add "optimality gap  %.2f%% of the optimum\n" (100.0 *. gap)
  | None -> ());
  (match cert.Bnb_certificate.incumbent with
  | Some i ->
      add "schedule        %.2f ms worst case\n"
        i.Bnb_certificate.schedule_length_ms;
      add "verdict: optimal design proven (certificate carries %d prune \
           premises)\n"
        (List.length cert.Bnb_certificate.prunes)
  | None ->
      add "verdict: provably infeasible — the certified search closed the \
           whole design space without a feasible candidate\n");
  Buffer.contents b

let run_exact_audit problem config format ~source ~strategy ~cert_path =
  match Bnb_certificate_io.load cert_path with
  | Error e -> fail "--audit %s: %s" cert_path e
  | Ok cert ->
      let subject =
        Subject.with_bnb_certificate
          { (Subject.of_problem problem) with
            Subject.slack = config.Config.slack;
            bus = config.Config.bus }
          cert
      in
      let report = Verify.run subject in
      (match format with
      | `Json ->
          print_endline
            (Json.to_string
               (Driver.report_json ~source ~strategy
                  [ ("certificate", Json.String cert_path);
                    ("report", Report.to_json report) ]))
      | `Text ->
          Printf.printf "audit %s against %s (strategy %s)\n" cert_path
            source strategy;
          print_string (Report.to_text report));
      if not (Report.ok report) then
        Driver.request_exit Driver.Lint_failure;
      Ok ()

let run_exact obs target format limit cert_path audit_path =
  Driver.with_problem ~aggregate_spans:true obs target (fun problem config ->
      let source = Driver.target_source target in
      let strategy = target.Driver.strategy in
      match audit_path with
      | Some cert_path ->
          run_exact_audit problem config format ~source ~strategy ~cert_path
      | None -> (
          (* The shared Ftes_driver.Exec path: certify is always on
             there — the proof is the point — and the JSON payload is
             byte-identical to the daemon's. *)
          let req =
            Driver.request_of target (Request.Exact { limit }) problem config
          in
          match Exec.run req with
          | exception Bnb.Budget_exhausted n ->
              fail
                "candidate budget exhausted after %d full evaluations \
                 (raise --limit); no optimality claim is made"
                n
          | outcome ->
              let bnb, report =
                match outcome with
                | Exec.Proved { outcome; report } -> (outcome, report)
                | _ -> assert false
              in
              let cert = bnb.Bnb.certificate in
              (match cert_path with
              | Some path ->
                  Bnb_certificate_io.save path cert;
                  Printf.eprintf "wrote %s\n%!" path
              | None -> ());
              (match format with
              | `Json ->
                  print_endline (Json.to_string (Exec.payload req outcome))
              | `Text ->
                  print_string (exact_text source strategy cert);
                  if not (Report.ok report) then
                    print_string (Report.to_text report));
              request_outcome_exit outcome;
              Ok ()))

let exact_cmd =
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
         ~doc:"Report format: $(b,text) or $(b,json).")
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N"
         ~doc:"Abort (with an error, not a weaker claim) after $(docv) \
               full candidate evaluations.")
  in
  let cert_path =
    Arg.(value & opt (some string) None & info [ "cert" ] ~docv:"PATH"
         ~doc:"Write the optimality certificate to $(docv).")
  in
  let audit_path =
    Arg.(value & opt (some string) None & info [ "audit" ] ~docv:"PATH"
         ~doc:"Audit an existing optimality certificate against the \
               problem instead of searching: the incumbent is re-costed, \
               re-scheduled and re-checked against the reliability goal, \
               every prune premise is re-derived, and the premises must \
               tile the architecture lattice ($(b,bnb/*) rules).")
  in
  let term =
    Term.(
      const run_exact $ Driver.obs_term $ Driver.target_term $ format
      $ limit $ cert_path $ audit_path)
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:"Prove the optimal hardening design by branch-and-bound"
       ~man:
         [ `S Manpage.s_description;
           `P "Runs the exact best-first branch-and-bound over \
               architectures, hardening levels and mappings, seeded with \
               the greedy walk of the selected strategy, and reports the \
               proven optimum together with the heuristic's optimality \
               gap.  Every pruned subtree leaves a re-derivable premise \
               in a machine-checkable certificate, which is audited \
               in-process by the verifier's $(b,bnb/*) rules before \
               anything is printed.";
           `P "Exits with status 3 when the problem is proven infeasible \
               (the certificate then covers the whole design space) or \
               when any audit fails.  $(b,--cert) exports the \
               certificate; $(b,--audit) re-checks a previously exported \
               one offline without running the search." ])
    Term.(term_result term)

(* pareto *)

module Archive = Ftes_pareto.Archive
module Objective = Ftes_pareto.Objective
module Frontier_io = Ftes_pareto.Frontier_io

let write_text_file path text =
  Ftes_util.Atomic_file.write_string path (text ^ "\n")

let run_pareto obs target format eps objectives csv_path json_path ref_cost =
  Driver.with_problem obs target (fun problem config ->
      match Objective.parse_list objectives with
      | Error e -> fail "--objectives: %s" e
      | Ok objectives ->
          if not (Float.is_finite eps) || eps < 0.0 then
            fail "--eps must be finite and non-negative"
          else begin
            (* The shared Ftes_driver.Exec path runs the frontier and
               self-certifies it with the pareto/* rules; the JSON
               payload is byte-identical to the daemon's. *)
            let req =
              Driver.request_of target
                (Request.Pareto { eps; objectives; ref_cost })
                problem config
            in
            let outcome = Exec.run req in
            let frontier, reference, report =
              match outcome with
              | Exec.Frontiered { frontier; reference; report } ->
                  (frontier, reference, report)
              | _ -> assert false
            in
            let archive = frontier.Design_strategy.archive in
            let wrote path =
              match format with
              | `Json -> Printf.eprintf "wrote %s\n%!" path
              | `Text -> Printf.printf "wrote %s\n" path
            in
            (match format with
            | `Json ->
                print_endline (Json.to_string (Exec.payload req outcome))
            | `Text ->
                let pts = Archive.points archive in
                let stats = Archive.stats archive in
                Printf.printf "pareto %s (strategy %s)\n"
                  (Driver.target_source target) target.Driver.strategy;
                Printf.printf
                  "frontier: %d points over {%s} at eps %g (%d architectures \
                   explored)\n"
                  (List.length pts)
                  (Objective.names objectives)
                  eps frontier.Design_strategy.explored;
                (match frontier.Design_strategy.best with
                | Some s ->
                    Printf.printf
                      "cheapest: cost %.2f, schedule length %.2f ms, slack \
                       %.2f ms, margin %.2f decades\n"
                      s.Design_strategy.result.Redundancy_opt.cost
                      s.Design_strategy.result.Redundancy_opt.schedule_length
                      s.Design_strategy.result.Redundancy_opt.slack
                      s.Design_strategy.result.Redundancy_opt.margin
                | None -> print_string "no feasible design found\n");
                Printf.printf
                  "archive: %d boxes (%d inserted, %d dominated, %d evicted)\n"
                  stats.Archive.boxes stats.Archive.inserted
                  stats.Archive.dominated stats.Archive.evicted;
                let hv = Archive.hypervolume archive ~reference in
                Printf.printf
                  "hypervolume vs (cost %.2f, slack %.2f ms, margin %.2f): \
                   %.6g\n"
                  reference.Archive.ref_cost reference.Archive.ref_slack
                  reference.Archive.ref_margin hv;
                if pts <> [] then
                  print_string
                    (Ftes_util.Ascii_chart.scatter
                       ~title:"frontier: architecture cost vs worst-case slack"
                       ~x_label:"cost" ~y_label:"slack_ms"
                       (List.map
                          (fun (p : Archive.point) ->
                            (p.Archive.cost, p.Archive.slack))
                          pts));
                if not (Report.ok report) then
                  print_string (Report.to_text report));
            (match csv_path with
            | Some path ->
                Ftes_util.Csv.write_file path (Frontier_io.to_csv archive);
                wrote path
            | None -> ());
            (match json_path with
            | Some path ->
                write_text_file path (Frontier_io.to_string ~reference archive);
                wrote path
            | None -> ());
            request_outcome_exit outcome;
            Ok ()
          end)

let pareto_cmd =
  let eps =
    Arg.(value & opt float 0.0 & info [ "eps" ] ~docv:"EPS"
         ~doc:"ε-dominance grid resolution; 0 keeps the exact frontier.")
  in
  let objectives =
    Arg.(value & opt string "cost,slack,margin"
         & info [ "objectives" ] ~docv:"LIST"
         ~doc:"Comma-separated objectives among $(b,cost) (minimized), \
               $(b,slack) and $(b,margin) (maximized).")
  in
  let csv_path =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PATH"
         ~doc:"Export the frontier as CSV to $(docv).")
  in
  let json_path =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH"
         ~doc:"Export the frontier (with the hypervolume and its reference \
               point) as JSON to $(docv).")
  in
  let ref_cost =
    Arg.(value & opt (some float) None & info [ "ref-cost" ] ~docv:"COST"
         ~doc:"Cost coordinate of the hypervolume reference corner \
               (default: the full library at its priciest levels, plus \
               one).")
  in
  let term =
    Term.(
      const run_pareto $ Driver.obs_term $ Driver.target_term $ format_term
      $ eps $ objectives $ csv_path $ json_path $ ref_cost)
  in
  Cmd.v
    (Cmd.info "pareto"
       ~doc:"Explore the cost / slack / reliability-margin Pareto frontier"
       ~man:
         [ `S Manpage.s_description;
           `P "Runs the selected design strategy while recording every \
               deadline- and reliability-feasible candidate into an \
               ε-dominance archive over up to three objectives: \
               architecture cost (minimized), worst-case schedule slack \
               and SFP margin in -log10 decades (both maximized).  The \
               archive's cheapest point is bit-identical to the \
               single-objective $(b,ftes optimize) solution.";
           `P "Prints a frontier summary with the hypervolume indicator \
               (against a fixed worst-corner reference point) and an ASCII \
               cost-vs-slack scatter chart; $(b,--csv) and $(b,--json) \
               export the frontier with a versioned schema that \
               round-trips through the reader.  The emitted archive is \
               then certified by the verifier's $(b,pareto/*) rules \
               (every point feasible, recorded objectives re-derived, \
               mutual non-domination, cheapest point equal to the OPT \
               cost); any failure exits with status 3." ])
    Term.(term_result term)

(* export *)

let run_export obs example output =
  Driver.with_observability obs (fun () ->
      match Driver.problem_of_example example with
      | Error e -> fail "%s" e
      | Ok problem ->
          Ftes_model.Problem_io.save output problem;
          Printf.printf "wrote %s\n" output;
          Ok ())

let export_cmd =
  let example =
    let doc = "Built-in problem: $(b,fig1), $(b,fig3) or $(b,cc)." in
    Arg.(value & opt string "fig1" & info [ "example"; "e" ] ~docv:"NAME" ~doc)
  in
  let output =
    Arg.(value & opt string "problem.json" & info [ "output"; "o" ] ~docv:"PATH"
         ~doc:"Destination file.")
  in
  let term = Term.(const run_export $ Driver.obs_term $ example $ output) in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a built-in problem instance as JSON")
    Term.(term_result term)

(* campaign *)

module Manifest = Ftes_campaign.Manifest
module Campaign_checkpoint = Ftes_campaign.Checkpoint
module Runner = Ftes_campaign.Runner
module Merge = Ftes_campaign.Merge

let ( let* ) = Result.bind

let dir_term =
  Arg.(required
       & opt (some string) None
       & info [ "dir"; "d" ] ~docv:"DIR" ~doc:"Campaign directory.")

let read_json_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string text with
  | Ok json -> Ok json
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let policy_of_cli = function
  | "opt" | "OPT" -> Ok Config.Optimize
  | "min" | "MIN" -> Ok Config.Fixed_min
  | "max" | "MAX" -> Ok Config.Fixed_max
  | name -> fail "unknown hardening policy %S (use min, max or opt)" name

let split_list text = String.split_on_char ',' (String.trim text)

let floats_of_cli label text =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match float_of_string_opt (String.trim part) with
        | Some v -> build (v :: acc) rest
        | None -> fail "bad %s value %S" label part)
  in
  build [] (split_list text)

let policies_of_cli text =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match policy_of_cli (String.trim part) with
        | Ok p -> build (p :: acc) rest
        | Error e -> Error e)
  in
  build [] (split_list text)

let shard_progress (c : Campaign_checkpoint.t) n_cells =
  Printf.sprintf "%d/%d cells" (List.length c.Campaign_checkpoint.cells) n_cells

let print_campaign_summary (s : Runner.summary) =
  Printf.printf
    "campaign: %d shards — %d already complete, %d executed (%d resumed), \
     %d failed\n"
    s.Runner.shards s.Runner.skipped s.Runner.executed s.Runner.resumed
    (List.length s.Runner.failed)

let drive_campaign ~manifest ~dir ~jobs =
  let on_progress ~completed ~total ~eta_s =
    match eta_s with
    | Some eta ->
        Printf.printf "campaign: %d/%d shards complete (ETA %.0f s)\n%!"
          completed total eta
    | None -> Printf.printf "campaign: %d/%d shards complete\n%!" completed total
  in
  let summary =
    Runner.run_processes ~jobs ~on_progress ~exe:Sys.executable_name ~manifest
      ~dir ()
  in
  print_campaign_summary summary;
  match summary.Runner.failed with
  | [] -> Ok ()
  | failed ->
      fail "%s"
        (String.concat "; "
           (List.map
              (fun (shard, reason) ->
                Printf.sprintf "shard %d: %s" shard reason)
              failed))

let run_campaign_run obs dir apps shards jobs sers hpds policies eps =
  Driver.with_observability obs (fun () ->
      match
        let* sers = floats_of_cli "SER" sers in
        let* hpds = floats_of_cli "HPD" hpds in
        let* policies = policies_of_cli policies in
        Ok (sers, hpds, policies)
      with
      | Error e -> Error e
      | Ok (sers, hpds, policies) ->
          if Sys.file_exists (Manifest.path ~dir) then
            fail "%s already holds a campaign; use resume" dir
          else begin
            (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
            match
              Manifest.make ~sers ~hpds ~policies ~eps ~apps
                ~seed:obs.Driver.seed ~shards ()
            with
            | exception Invalid_argument msg -> fail "%s" msg
            | manifest ->
                Manifest.save ~dir manifest;
                Printf.printf "campaign %s: %d apps, %d shards, %d cells \
                               (manifest %s)\n%!"
                  dir apps shards (Manifest.n_cells manifest)
                  (Manifest.fingerprint manifest);
                drive_campaign ~manifest ~dir ~jobs
          end)

let run_campaign_resume obs dir jobs =
  Driver.with_observability obs (fun () ->
      match Manifest.load ~dir with
      | Error e -> fail "%s" e
      | Ok manifest -> drive_campaign ~manifest ~dir ~jobs)

let run_campaign_status obs dir =
  Driver.with_observability obs (fun () ->
      match Manifest.load ~dir with
      | Error e -> fail "%s" e
      | Ok manifest ->
          let n_cells = Manifest.n_cells manifest in
          let states = Runner.scan ~manifest ~dir in
          let complete = ref 0 in
          Printf.printf "campaign %s: %d apps, %d shards, %d cells, \
                         manifest %s\n"
            dir manifest.Manifest.apps manifest.Manifest.shards n_cells
            (Manifest.fingerprint manifest);
          Array.iteri
            (fun shard state ->
              let lo, hi = Manifest.shard_range manifest shard in
              let status =
                match state with
                | Runner.Complete c ->
                    incr complete;
                    "complete (" ^ shard_progress c n_cells ^ ")"
                | Runner.Partial c -> "partial (" ^ shard_progress c n_cells ^ ")"
                | Runner.Missing -> "missing"
                | Runner.Corrupt e -> "corrupt: " ^ e
              in
              Printf.printf "  shard %d [%d, %d): %s\n" shard lo hi status)
            states;
          Printf.printf "%d/%d shards complete; merged.json %s\n" !complete
            (Array.length states)
            (if Sys.file_exists (Filename.concat dir Merge.filename) then
               "present"
             else "absent");
          Ok ())

(* Self-certification of a merge: re-read every document from disk and
   run the campaign/* rules over the raw JSON, so what is certified is
   what a later consumer will actually parse. *)
let certify_merge ~dir ~manifest =
  let* manifest_doc = read_json_file (Manifest.path ~dir) in
  let* checkpoints =
    List.fold_left
      (fun acc shard ->
        let* acc = acc in
        let path = Campaign_checkpoint.path ~dir shard in
        let* doc = read_json_file path in
        Ok ((Filename.basename path, doc) :: acc))
      (Ok [])
      (List.init manifest.Manifest.shards Fun.id)
  in
  let* merged_doc = read_json_file (Filename.concat dir Merge.filename) in
  let* problem = Driver.problem_of_example "fig1" in
  let subject =
    Subject.with_campaign ~merged:merged_doc
      (Subject.of_problem problem)
      ~manifest:manifest_doc
      ~checkpoints:(List.rev checkpoints)
  in
  let rules =
    List.filter
      (fun r -> String.length r.Ftes_verify.Rule.id >= 9
                && String.sub r.Ftes_verify.Rule.id 0 9 = "campaign/")
      Verify.registry
  in
  Ok (Verify.run ~rules subject)

let run_campaign_merge obs dir =
  Driver.with_observability obs (fun () ->
      match Manifest.load ~dir with
      | Error e -> fail "%s" e
      | Ok manifest -> (
          let checkpoints =
            List.fold_left
              (fun acc shard ->
                let* acc = acc in
                let* c = Campaign_checkpoint.load ~manifest ~dir shard in
                Ok (c :: acc))
              (Ok [])
              (List.init manifest.Manifest.shards Fun.id)
          in
          match
            Result.bind checkpoints (fun cs ->
                Merge.of_checkpoints ~manifest (List.rev cs))
          with
          | Error e -> fail "%s" e
          | Ok merged -> (
              Merge.save ~dir merged;
              Printf.printf "merged %d cells over %d applications — \
                             fingerprint %s\n"
                (List.length merged.Merge.cells) manifest.Manifest.apps
                (Merge.fingerprint merged);
              Printf.printf "wrote %s\n" (Filename.concat dir Merge.filename);
              match certify_merge ~dir ~manifest with
              | Error e -> fail "%s" e
              | Ok report ->
                  print_string (Report.to_text report);
                  if not (Report.ok report) then
                    Driver.request_exit Driver.Lint_failure;
                  Ok ())))

(* The deliberate mid-run kill of the resume tests: exit abruptly,
   bypassing every finalizer, exactly like a real kill — the checkpoint
   written before [on_cell] fired is what resume finds. *)
let kill_plan () =
  match Sys.getenv_opt "FTES_CAMPAIGN_KILL_AFTER" with
  | None -> None
  | Some n -> (
      match int_of_string_opt n with
      | None -> None
      | Some after ->
          let shard =
            Option.bind
              (Sys.getenv_opt "FTES_CAMPAIGN_KILL_SHARD")
              int_of_string_opt
          in
          Some (after, shard))

let run_campaign_worker obs dir shard =
  Driver.with_observability obs (fun () ->
      match Manifest.load ~dir with
      | Error e -> fail "%s" e
      | Ok manifest ->
          let fresh = ref 0 in
          let on_cell ~cell_index:_ ~n_cells:_ =
            incr fresh;
            match kill_plan () with
            | Some (after, target)
              when !fresh >= after
                   && (target = None || target = Some shard) ->
                Stdlib.exit 130
            | _ -> ()
          in
          (match Runner.run_shard ~on_cell ~manifest ~dir shard with
          | Error e -> fail "%s" e
          | Ok outcome ->
              Printf.printf "shard %d: %d fresh cells%s\n" shard
                outcome.Runner.fresh_cells
                (if outcome.Runner.resumed then " (resumed)" else "");
              Ok ()))

let campaign_cmd =
  let jobs_term =
    Arg.(value & opt int 2
         & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Maximum concurrent worker processes.")
  in
  let run_cmd =
    let apps =
      Arg.(value & opt int 24 & info [ "apps" ] ~docv:"N"
           ~doc:"Population size (first half 20-process, second half \
                 40-process applications).")
    in
    let shards =
      Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
           ~doc:"Number of disjoint application-range shards.")
    in
    let sers =
      Arg.(value & opt string "1e-11" & info [ "sers" ] ~docv:"LIST"
           ~doc:"Comma-separated SER grid axis.")
    in
    let hpds =
      Arg.(value & opt string "0.25" & info [ "hpds" ] ~docv:"LIST"
           ~doc:"Comma-separated HPD grid axis.")
    in
    let policies =
      Arg.(value & opt string "min,opt" & info [ "policies" ] ~docv:"LIST"
           ~doc:"Comma-separated hardening policies among $(b,min), \
                 $(b,max), $(b,opt).")
    in
    let eps =
      Arg.(value & opt float 0.0 & info [ "eps" ] ~docv:"EPS"
           ~doc:"Frontier archive resolution; 0 keeps the exact frontier.")
    in
    let term =
      Term.(
        const run_campaign_run $ Driver.obs_term $ dir_term $ apps $ shards
        $ jobs_term $ sers $ hpds $ policies $ eps)
    in
    Cmd.v
      (Cmd.info "run" ~doc:"Create a campaign and run every shard")
      Term.(term_result term)
  in
  let resume_cmd =
    let term =
      Term.(const run_campaign_resume $ Driver.obs_term $ dir_term $ jobs_term)
    in
    Cmd.v
      (Cmd.info "resume"
         ~doc:"Re-run only the incomplete shards of an existing campaign")
      Term.(term_result term)
  in
  let status_cmd =
    let term = Term.(const run_campaign_status $ Driver.obs_term $ dir_term) in
    Cmd.v
      (Cmd.info "status" ~doc:"Show per-shard checkpoint state")
      Term.(term_result term)
  in
  let merge_cmd =
    let term = Term.(const run_campaign_merge $ Driver.obs_term $ dir_term) in
    Cmd.v
      (Cmd.info "merge"
         ~doc:"Merge completed shards and certify with the campaign/* rules")
      Term.(term_result term)
  in
  Cmd.group
    (Cmd.info "campaign"
       ~doc:"Sharded, checkpointed, resumable exploration campaigns"
       ~man:
         [ `S Manpage.s_description;
           `P "A campaign partitions the Section 7 synthetic population \
               into disjoint application-range shards, fans them out to \
               worker processes ($(b,ftes campaign-worker)), and streams \
               per-cell results into atomically-written per-shard \
               checkpoint files.  A killed campaign is resumed with \
               $(b,ftes campaign resume), which re-runs only the \
               incomplete shards; $(b,merge) then combines the \
               checkpoints into $(b,merged.json) — bit-identical to a \
               sequential run of the same manifest — and certifies the \
               result with the verifier's $(b,campaign/*) rules." ])
    [ run_cmd; resume_cmd; status_cmd; merge_cmd ]

let campaign_worker_cmd =
  let shard =
    Arg.(required & opt (some int) None
         & info [ "shard" ] ~docv:"N" ~doc:"Shard index to compute.")
  in
  let term =
    Term.(const run_campaign_worker $ Driver.obs_term $ dir_term $ shard)
  in
  Cmd.v
    (Cmd.info "campaign-worker"
       ~doc:"(internal) compute one campaign shard in this process")
    Term.(term_result term)

let () =
  let doc =
    "design optimization of fault-tolerant embedded systems with hardened \
     processors (DATE 2009 reproduction)"
  in
  let info = Cmd.info "ftes" ~version:"1.0.0" ~doc in
  exit
    (Driver.finish
       (Cmd.eval
          (Cmd.group info
             [ optimize_cmd; analyze_cmd; pareto_cmd; whatif_cmd; serve_cmd;
               generate_cmd; simulate_cmd; experiment_cmd; profile_cmd;
               export_cmd; worst_case_cmd; checkpoint_cmd; lint_cmd;
               exact_cmd; campaign_cmd; campaign_worker_cmd ])))
