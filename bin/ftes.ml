(* ftes — command-line driver for the fault-tolerant embedded-system
   design optimizer.

     ftes optimize   run MIN/MAX/OPT on a built-in problem
     ftes generate   generate a synthetic application
     ftes simulate   fault-injection campaign on an optimized design
     ftes experiment reproduce a figure/table of the paper
     ftes lint       static verification of a problem and its optimized
                     design/schedule *)

open Cmdliner

module Config = Ftes_core.Config
module Design = Ftes_model.Design
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Scheduler = Ftes_sched.Scheduler
module Workload = Ftes_gen.Workload

let problem_of_example = function
  | "fig1" -> Ok (Ftes_cc.Fig_examples.fig1_problem ())
  | "fig3" -> Ok (Ftes_cc.Fig_examples.fig3_problem ())
  | "cc" -> Ok (Ftes_cc.Cruise_control.problem ())
  | other -> Error (Printf.sprintf "unknown example %S (try fig1, fig3, cc)" other)

(* A problem comes either from a JSON file (--file) or from a built-in
   example (--example). *)
let resolve_problem ~file ~example =
  match file with
  | Some path -> Ftes_model.Problem_io.load path
  | None -> problem_of_example example

let config_of_strategy = function
  | "opt" -> Ok Config.default
  | "min" -> Ok Config.min_strategy
  | "max" -> Ok Config.max_strategy
  | other ->
      Error (Printf.sprintf "unknown strategy %S (try opt, min, max)" other)

let example_arg =
  let doc = "Built-in problem: $(b,fig1), $(b,fig3) or $(b,cc)." in
  Arg.(value & opt string "fig1" & info [ "example"; "e" ] ~docv:"NAME" ~doc)

let strategy_arg =
  let doc = "Design strategy: $(b,opt), $(b,min) or $(b,max)." in
  Arg.(value & opt string "opt" & info [ "strategy"; "s" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "Root random seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let fail fmt = Printf.ksprintf (fun s -> Error (`Msg s)) fmt

(* optimize *)

let run_optimize file example strategy gantt =
  match (resolve_problem ~file ~example, config_of_strategy strategy) with
  | Error e, _ | _, Error e -> fail "%s" e
  | Ok problem, Ok config -> (
      Format.printf "%a@." Ftes_model.Problem.pp problem;
      match Design_strategy.run ~config problem with
      | None ->
          Printf.printf "%s: no schedulable & reliable design found\n"
            (Config.policy_name config.Config.hardening);
          Ok ()
      | Some s ->
          let design = s.Design_strategy.result.Redundancy_opt.design in
          Printf.printf "%s solution (explored %d architectures):\n"
            (Config.policy_name config.Config.hardening)
            s.Design_strategy.explored;
          Format.printf "%a@." (fun ppf () -> Design.pp ppf problem design) ();
          Printf.printf "schedule length %.2f ms; reliability %.11f (goal %.6f)\n"
            s.Design_strategy.result.Redundancy_opt.schedule_length
            s.Design_strategy.verdict.Ftes_sfp.Sfp.reliability_per_hour
            s.Design_strategy.verdict.Ftes_sfp.Sfp.goal;
          if gantt then
            print_string
              (Ftes_sched.Schedule.to_gantt problem design
                 s.Design_strategy.schedule);
          Ok ())

let file_arg =
  let doc = "Load the problem from a JSON file instead of a built-in example." in
  Arg.(value & opt (some string) None & info [ "file"; "f" ] ~docv:"PATH" ~doc)

let optimize_cmd =
  let gantt =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print the static schedule.")
  in
  let term =
    Term.(const run_optimize $ file_arg $ example_arg $ strategy_arg $ gantt)
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Optimize a built-in problem with MIN/MAX/OPT")
    Term.(term_result term)

(* generate *)

let run_generate seed index procs ser hpd dot =
  if procs <= 0 then fail "process count must be positive"
  else begin
    let spec = Workload.generate_spec ~seed ~index ~n_processes:procs () in
    let problem = Workload.problem_of_spec { Workload.ser; hpd } spec in
    Format.printf "%a@." Ftes_model.Problem.pp problem;
    Printf.printf "deadline %.2f ms, gamma %g, mu %.3f ms, %d edges\n"
      spec.Workload.deadline_ms spec.Workload.gamma spec.Workload.mu_ms
      (Ftes_model.Task_graph.n_edges spec.Workload.graph);
    if dot then print_string (Ftes_model.Task_graph.to_dot spec.Workload.graph);
    Ok ()
  end

let generate_cmd =
  let index =
    Arg.(value & opt int 0 & info [ "index" ] ~docv:"N" ~doc:"Application index.")
  in
  let procs =
    Arg.(value & opt int 20 & info [ "procs" ] ~docv:"N" ~doc:"Process count.")
  in
  let ser =
    Arg.(value & opt float 1e-11 & info [ "ser" ] ~docv:"RATE"
         ~doc:"Soft error rate per cycle at minimum hardening.")
  in
  let hpd =
    Arg.(value & opt float 0.25 & info [ "hpd" ] ~docv:"FRAC"
         ~doc:"Hardening performance degradation (fraction, e.g. 0.25).")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Print the task graph in DOT form.")
  in
  let term =
    Term.(const run_generate $ seed_arg $ index $ procs $ ser $ hpd $ dot)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic application")
    Term.(term_result term)

(* simulate *)

let run_simulate file example strategy trials boost seed =
  match (resolve_problem ~file ~example, config_of_strategy strategy) with
  | Error e, _ | _, Error e -> fail "%s" e
  | Ok problem, Ok config -> (
      match Design_strategy.run ~config problem with
      | None -> fail "no feasible design to simulate"
      | Some s ->
          let design = s.Design_strategy.result.Redundancy_opt.design in
          let prng = Ftes_util.Prng.create seed in
          let campaign =
            Ftes_faultsim.Executor.run_campaign ~boost prng problem design
              ~trials
          in
          Printf.printf
            "trials %d (boost %.0fx)\n\
             observed system-failure rate  %.4e\n\
             SFP-predicted rate            %.4e\n\
             within-budget deadline misses %d\n\
             max within-budget makespan    %.2f ms\n"
            campaign.Ftes_faultsim.Executor.trials boost
            campaign.Ftes_faultsim.Executor.observed_failure_rate
            campaign.Ftes_faultsim.Executor.predicted_failure_rate
            campaign.Ftes_faultsim.Executor.deadline_misses
            campaign.Ftes_faultsim.Executor.max_makespan;
          Ok ())

let simulate_cmd =
  let trials =
    Arg.(value & opt int 50_000 & info [ "trials" ] ~docv:"N"
         ~doc:"Monte-Carlo iterations.")
  in
  let boost =
    Arg.(value & opt float 1000.0 & info [ "boost" ] ~docv:"X"
         ~doc:"Failure-probability boost for rare-event sampling.")
  in
  let term =
    Term.(
      const run_simulate $ file_arg $ example_arg $ strategy_arg $ trials
      $ boost $ seed_arg)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Fault-injection campaign on an optimized design")
    Term.(term_result term)

(* experiment *)

let run_experiment figure apps seed =
  let suite = lazy (Ftes_exp.Synthetic.create_suite ~count:apps ~seed ()) in
  let render_one artifact =
    print_string (Ftes_exp.Figures.render artifact);
    print_newline ()
  in
  match figure with
  | "6a" -> render_one (Ftes_exp.Figures.fig6a (Lazy.force suite)); Ok ()
  | "6b" ->
      List.iter render_one (Ftes_exp.Figures.fig6b (Lazy.force suite));
      Ok ()
  | "6c" -> render_one (Ftes_exp.Figures.fig6c (Lazy.force suite)); Ok ()
  | "6d" -> render_one (Ftes_exp.Figures.fig6d (Lazy.force suite)); Ok ()
  | "cc" ->
      print_string (Ftes_exp.Figures.render_cc (Ftes_exp.Figures.cc_study ()));
      Ok ()
  | other -> fail "unknown figure %S (try 6a, 6b, 6c, 6d, cc)" other

let experiment_cmd =
  let figure =
    Arg.(value & opt string "6a" & info [ "figure" ] ~docv:"ID"
         ~doc:"Paper artifact: $(b,6a), $(b,6b), $(b,6c), $(b,6d) or $(b,cc).")
  in
  let apps =
    Arg.(value & opt int 150 & info [ "apps" ] ~docv:"N"
         ~doc:"Synthetic population size.")
  in
  let term = Term.(const run_experiment $ figure $ apps $ seed_arg) in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce a figure or table of the paper")
    Term.(term_result term)

(* worst-case *)

let run_worst_case file example strategy limit =
  match (resolve_problem ~file ~example, config_of_strategy strategy) with
  | Error e, _ | _, Error e -> fail "%s" e
  | Ok problem, Ok config -> (
      match Design_strategy.run ~config problem with
      | None -> fail "no feasible design to analyze"
      | Some s -> (
          let design = s.Design_strategy.result.Redundancy_opt.design in
          let space = Ftes_faultsim.Scenarios.count_scenarios design in
          if space > float_of_int limit then
            fail "%.3g fault scenarios exceed --limit %d" space limit
          else begin
            let r = Ftes_faultsim.Scenarios.worst_case ~limit problem design in
            Printf.printf
              "scenarios replayed          %d\n\
               shared bound (paper's SL)   %.2f ms\n\
               exact worst case            %.2f ms\n\
               conservative bound          %.2f ms\n\
               shared bound optimistic?    %s\n"
              r.Ftes_faultsim.Scenarios.scenarios
              r.Ftes_faultsim.Scenarios.shared_bound_ms
              r.Ftes_faultsim.Scenarios.exact_worst_ms
              r.Ftes_faultsim.Scenarios.conservative_bound_ms
              (if Ftes_faultsim.Scenarios.optimism_certificate r then "yes"
               else "no");
            Ok ()
          end))

let worst_case_cmd =
  let limit =
    Arg.(value & opt int 200_000 & info [ "limit" ] ~docv:"N"
         ~doc:"Maximum number of fault scenarios to replay.")
  in
  let term =
    Term.(const run_worst_case $ file_arg $ example_arg $ strategy_arg $ limit)
  in
  Cmd.v
    (Cmd.info "worst-case"
       ~doc:"Exact worst-case analysis by exhaustive fault-scenario replay")
    Term.(term_result term)

(* checkpoint *)

let run_checkpoint file example strategy save_ms =
  match (resolve_problem ~file ~example, config_of_strategy strategy) with
  | Error e, _ | _, Error e -> fail "%s" e
  | Ok problem, Ok config -> (
      match Design_strategy.run ~config problem with
      | None -> fail "no feasible design to checkpoint"
      | Some s ->
          let design = s.Design_strategy.result.Redundancy_opt.design in
          let plain = s.Design_strategy.result.Redundancy_opt.schedule_length in
          let kappa, ckpt =
            Ftes_core.Checkpoint_opt.optimize ?save_ms problem design
          in
          Printf.printf
            "plain re-execution SL      %.2f ms\n\
             checkpointed SL            %.2f ms (%.1f%% shorter)\n\
             checkpoints per process    [%s]\n"
            plain ckpt
            (100.0 *. (plain -. ckpt) /. plain)
            (String.concat ";" (Array.to_list (Array.map string_of_int kappa)));
          Ok ())

let checkpoint_cmd =
  let save_ms =
    Arg.(value & opt (some float) None & info [ "save" ] ~docv:"MS"
         ~doc:"Checkpoint save cost in ms (default: half the recovery \
               overhead).")
  in
  let term =
    Term.(const run_checkpoint $ file_arg $ example_arg $ strategy_arg $ save_ms)
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Optimize checkpoint counts on top of an optimized design")
    Term.(term_result term)

(* lint *)

module Verify = Ftes_verify.Verify
module Report = Ftes_verify.Report
module Subject = Ftes_verify.Subject
module Json = Ftes_util.Json

let lint_json ~source ~strategy ~feasible report =
  Json.Object
    [ ("subject", Json.String source);
      ("strategy", Json.String strategy);
      ("feasible", Json.Bool feasible);
      ("report", Report.to_json report) ]

(* Exit code 3 distinguishes "the verifier found an error" from
   cmdliner's own 1/124/125 conventions. *)
let lint_exit report =
  if Report.ok report then Ok () else exit 3

let run_lint file example strategy format =
  match (resolve_problem ~file ~example, config_of_strategy strategy) with
  | Error e, _ | _, Error e -> fail "%s" e
  | Ok problem, Ok config ->
      let source =
        match file with Some path -> path | None -> "example:" ^ example
      in
      let config = { config with Config.certify = true } in
      let feasible, report =
        match Design_strategy.run ~config problem with
        | Some { Design_strategy.certificate = Some report; _ } ->
            (true, report)
        | Some ({ Design_strategy.certificate = None; _ } as s) ->
            (* Unreachable with certify on, but never drop the report. *)
            ( true,
              Verify.certify ~slack:config.Config.slack problem
                s.Design_strategy.result.Redundancy_opt.design
                s.Design_strategy.schedule )
        | None -> (false, Verify.run (Subject.of_problem problem))
      in
      (match format with
      | `Json ->
          print_endline
            (Json.to_string (lint_json ~source ~strategy ~feasible report))
      | `Text ->
          Printf.printf "lint %s (strategy %s)%s\n" source strategy
            (if feasible then "" else " — no feasible design, problem rules only");
          print_string (Report.to_text report));
      lint_exit report

let lint_cmd =
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
         ~doc:"Report format: $(b,text) or $(b,json).")
  in
  let term =
    Term.(const run_lint $ file_arg $ example_arg $ strategy_arg $ format)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically verify a problem and its optimized design/schedule"
       ~man:
         [ `S Manpage.s_description;
           `P "Runs the $(b,Ftes_verify) rule registry over the problem and \
               the design/schedule emitted by the selected strategy: \
               structural sanity, independently re-derived schedule \
               soundness (precedence, overlap, recovery slack, deadline) \
               and the numerical contracts of the SFP analysis.  Exits \
               with status 3 when any error-severity diagnostic fires." ])
    Term.(term_result term)

(* export *)

let run_export example output =
  match problem_of_example example with
  | Error e -> fail "%s" e
  | Ok problem ->
      Ftes_model.Problem_io.save output problem;
      Printf.printf "wrote %s\n" output;
      Ok ()

let export_cmd =
  let output =
    Arg.(value & opt string "problem.json" & info [ "output"; "o" ] ~docv:"PATH"
         ~doc:"Destination file.")
  in
  let term = Term.(const run_export $ example_arg $ output) in
  Cmd.v
    (Cmd.info "export" ~doc:"Write a built-in problem instance as JSON")
    Term.(term_result term)

let () =
  let doc =
    "design optimization of fault-tolerant embedded systems with hardened \
     processors (DATE 2009 reproduction)"
  in
  let info = Cmd.info "ftes" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ optimize_cmd; generate_cmd; simulate_cmd; experiment_cmd; export_cmd;
         worst_case_cmd; checkpoint_cmd; lint_cmd ]))
