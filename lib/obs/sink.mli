(** Trace sinks: where completed spans go.

    A sink only consumes {!event} records; it never returns data to
    the instrumented code, so installing one cannot change any
    computed result. *)

type event = {
  name : string;
  domain : int;  (** [Domain.self] of the emitting domain. *)
  depth : int;  (** 0 for a root span of its domain. *)
  parent : string option;  (** enclosing span name, if any. *)
  start_ns : int;  (** {!Clock.now_ns} at span entry. *)
  dur_ns : int;
  alloc_b : float;  (** bytes allocated by this domain during the span. *)
}

type t

val null : t
(** Drops every event.  The default; {!Span.with_} short-circuits
    before building an event at all when only the null sink is
    installed. *)

val jsonl : out_channel -> t
(** One minified JSON object per line per completed span; writes are
    serialized with a mutex so domains never interleave bytes.  The
    caller owns (flushes/closes) the channel. *)

val memory : unit -> t
(** Accumulates events in memory; for tests and the profiler. *)

val is_null : t -> bool

val memory_events : t -> event list
(** Events of a {!memory} sink in completion order; [[]] for others. *)

val emit : t -> event -> unit

val flush : t -> unit

val event_to_json : event -> Ftes_util.Json.t

val event_of_json : Ftes_util.Json.t -> (event, string) result
(** Inverse of {!event_to_json}; used by the trace round-trip tests. *)
