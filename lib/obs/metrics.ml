(* Process-wide registry of named counters, gauges and log-scale
   histograms.  Instruments are created once (typically at module
   initialization of the instrumented library) and updated lock-free
   with atomics; the registry mutex only guards creation and
   snapshotting, never the hot-path updates. *)

type counter = { c_name : string; c_value : int Atomic.t }

type gauge = { g_name : string; g_value : float Atomic.t }

(* Bucket [i] counts observations v with [floor (log2 (max v 1)) = i],
   i.e. v in [2^i, 2^(i+1)); non-positive observations land in bucket
   0.  63 buckets cover the whole positive [int] range. *)
let n_buckets = 63

type histogram = {
  h_name : string;
  h_counts : int Atomic.t array;
  h_sum : int Atomic.t;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register name make match_existing =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> (
          match match_existing existing with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Ftes_obs.Metrics: %S already registered as a %s"
                   name (kind_name existing)))
      | None ->
          let v, instrument = make () in
          Hashtbl.replace registry name instrument;
          v)

let counter name =
  register name
    (fun () ->
      let c = { c_name = name; c_value = Atomic.make 0 } in
      (c, Counter c))
    (function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { g_name = name; g_value = Atomic.make 0.0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let histogram name =
  register name
    (fun () ->
      let h =
        { h_name = name;
          h_counts = Array.init n_buckets (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0 }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | Counter _ | Gauge _ -> None)

(* --- updates --- *)

let incr c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg "Ftes_obs.Metrics.add: counters are monotone";
  ignore (Atomic.fetch_and_add c.c_value n)

let counter_value c = Atomic.get c.c_value

let counter_name c = c.c_name

(* Benchmarks measure one section at a time; zeroing a counter between
   sections is the one sanctioned break in monotonicity. *)
let reset_counter c = Atomic.set c.c_value 0

let set g v = Atomic.set g.g_value v

let gauge_value g = Atomic.get g.g_value

let bucket_of_value v =
  let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
  if v <= 1 then 0 else min (n_buckets - 1) (log2 0 v)

let observe h v =
  let v = max v 0 in
  Atomic.incr h.h_counts.(bucket_of_value v);
  ignore (Atomic.fetch_and_add h.h_sum v)

let histogram_name h = h.h_name

(* --- snapshots --- *)

type hist_snapshot = { buckets : int array; count : int; sum : int }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let hist_count h = h.count

let hist_sum h = h.sum

let hist_mean h =
  if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count

(* Upper bound of the bucket that contains the q-quantile observation:
   coarse (a factor of 2) but honest for log-scale latencies. *)
let hist_quantile h q =
  if h.count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = int_of_float (Float.round (q *. float_of_int (h.count - 1))) in
    let rec scan i seen =
      if i >= Array.length h.buckets then Float.of_int max_int
      else begin
        let seen = seen + h.buckets.(i) in
        if seen > rank then Float.of_int (1 lsl (min 62 (i + 1)))
        else scan (i + 1) seen
      end
    in
    scan 0 0
  end

let snapshot_histogram h =
  (* Read counts before the sum: a concurrent [observe] bumps the
     bucket first, so [sum] can only run ahead of [count], never
     report observations the buckets have not seen. *)
  let buckets = Array.map Atomic.get h.h_counts in
  let count = Array.fold_left ( + ) 0 buckets in
  { buckets; count; sum = Atomic.get h.h_sum }

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  let instruments = locked (fun () -> Hashtbl.fold (fun _ i acc -> i :: acc) registry []) in
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) -> function
        | Counter c -> ((c.c_name, Atomic.get c.c_value) :: cs, gs, hs)
        | Gauge g -> (cs, (g.g_name, Atomic.get g.g_value) :: gs, hs)
        | Histogram h -> (cs, gs, (h.h_name, snapshot_histogram h) :: hs))
      ([], [], []) instruments
  in
  { counters = List.sort by_name counters;
    gauges = List.sort by_name gauges;
    histograms = List.sort by_name histograms }

let find_counter snapshot name = List.assoc_opt name snapshot.counters

let find_histogram snapshot name = List.assoc_opt name snapshot.histograms

(* Zero every instrument, keeping registrations: benchmarks and tests
   reset between measured sections. *)
let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.0
          | Histogram h ->
              Array.iter (fun b -> Atomic.set b 0) h.h_counts;
              Atomic.set h.h_sum 0)
        registry)
