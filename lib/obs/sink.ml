module Json = Ftes_util.Json

(* One record per *completed* span.  Emitting at completion (rather
   than begin/end event pairs) keeps the JSONL trace trivially
   well-formed: nesting is recoverable from (domain, depth, start,
   duration) alone, and a crash loses at most the spans still open. *)
type event = {
  name : string;
  domain : int;
  depth : int;
  parent : string option;
  start_ns : int;
  dur_ns : int;
  alloc_b : float;
}

type t =
  | Null
  | Jsonl of { oc : out_channel; mutex : Mutex.t }
  | Memory of { events : event list ref; mutex : Mutex.t }

let null = Null

let jsonl oc = Jsonl { oc; mutex = Mutex.create () }

let memory () = Memory { events = ref []; mutex = Mutex.create () }

let is_null = function Null -> true | Jsonl _ | Memory _ -> false

let event_to_json e =
  Json.Object
    [ ("name", Json.String e.name);
      ("domain", Json.Number (float_of_int e.domain));
      ("depth", Json.Number (float_of_int e.depth));
      ( "parent",
        match e.parent with Some p -> Json.String p | None -> Json.Null );
      ("start_ns", Json.Number (float_of_int e.start_ns));
      ("dur_ns", Json.Number (float_of_int e.dur_ns));
      ("alloc_b", Json.Number e.alloc_b) ]

let event_of_json json =
  let ( let* ) = Result.bind in
  let* name = Result.bind (Json.member "name" json) Json.to_string_value in
  let* domain = Result.bind (Json.member "domain" json) Json.to_int in
  let* depth = Result.bind (Json.member "depth" json) Json.to_int in
  let* parent =
    match Json.member "parent" json with
    | Ok Json.Null -> Ok None
    | Ok j -> Result.map Option.some (Json.to_string_value j)
    | Error e -> Error e
  in
  let* start_ns = Result.bind (Json.member "start_ns" json) Json.to_int in
  let* dur_ns = Result.bind (Json.member "dur_ns" json) Json.to_int in
  let* alloc_b = Result.bind (Json.member "alloc_b" json) Json.to_float in
  Ok { name; domain; depth; parent; start_ns; dur_ns; alloc_b }

let locked mutex f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let emit t event =
  match t with
  | Null -> ()
  | Jsonl { oc; mutex } ->
      let line = Json.to_string ~minify:true (event_to_json event) in
      locked mutex (fun () ->
          output_string oc line;
          output_char oc '\n')
  | Memory { events; mutex } ->
      locked mutex (fun () -> events := event :: !events)

let memory_events t =
  match t with
  | Memory { events; mutex } -> locked mutex (fun () -> List.rev !events)
  | Null | Jsonl _ -> []

let flush t =
  match t with
  | Jsonl { oc; mutex } -> locked mutex (fun () -> flush oc)
  | Null | Memory _ -> ()
