(* Hierarchical wall-clock spans with per-domain stacks.

   The disabled fast path is one atomic load and a branch: [state]
   folds both switches (trace sink installed / aggregation on) into a
   single word so every instrumentation site pays the same negligible
   cost when observability is off. *)

type config = { sink : Sink.t; aggregate : bool }

let off = { sink = Sink.null; aggregate = false }

let state = Atomic.make off

let enabled_of { sink; aggregate } = aggregate || not (Sink.is_null sink)

(* [enabled] mirrors [state] so the fast path reads one word instead
   of inspecting the configuration. *)
let enabled_flag = Atomic.make false

let set config =
  Atomic.set state config;
  Atomic.set enabled_flag (enabled_of config)

let configure ?(sink = Sink.null) ?(aggregate = false) () =
  set { sink; aggregate }

let disable () = set off

let current () = Atomic.get state

let enabled () = Atomic.get enabled_flag

type frame = { name : string; depth : int; start_ns : int; alloc0 : float }

(* One stack per domain: workers spawned by Ftes_par.Pool get fresh
   stacks, so their spans nest under their own roots and never race
   with the spawning domain's stack. *)
let stacks : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack_depth () = List.length !(Domain.DLS.get stacks)

let current_name () =
  match !(Domain.DLS.get stacks) with
  | [] -> None
  | frame :: _ -> Some frame.name

(* Aggregated per-name totals feed the profiler: a counter pair
   (count, total ns), an allocation counter (bytes, rounded), and a
   log-scale latency histogram.  Instrument creation is memoized per
   span name to keep the enabled path off the registry mutex. *)
type aggregate = {
  a_count : Metrics.counter;
  a_ns : Metrics.counter;
  a_alloc : Metrics.counter;
  a_hist : Metrics.histogram;
}

(* Copy-on-write association so the hot path (every span finish in
   aggregate mode) is a lock-free scan of a short immutable list; the
   mutex only serializes first-use registration.  [Metrics.reset] zeros
   instruments in place, so cached handles never go stale. *)
let aggregates : (string * aggregate) list Atomic.t = Atomic.make []

let aggregates_mutex = Mutex.create ()

let span_prefix = "span."

let rec assoc_find name = function
  | [] -> None
  | (n, a) :: tl -> if String.equal n name then Some a else assoc_find name tl

let aggregate_for name =
  match assoc_find name (Atomic.get aggregates) with
  | Some a -> a
  | None ->
      Mutex.lock aggregates_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock aggregates_mutex)
        (fun () ->
          match assoc_find name (Atomic.get aggregates) with
          | Some a -> a
          | None ->
              let a =
                { a_count = Metrics.counter (span_prefix ^ name ^ ".count");
                  a_ns = Metrics.counter (span_prefix ^ name ^ ".ns");
                  a_alloc = Metrics.counter (span_prefix ^ name ^ ".alloc_b");
                  a_hist = Metrics.histogram (span_prefix ^ name ^ ".ns.hist") }
              in
              Atomic.set aggregates ((name, a) :: Atomic.get aggregates);
              a)

let finish config frame =
  let stack = Domain.DLS.get stacks in
  (match !stack with
  | top :: rest when top == frame -> stack := rest
  | _ ->
      (* Unbalanced pops cannot happen: with_ finishes the frame on
         both its return and its exception paths. *)
      assert false);
  let dur_ns = max 0 (Clock.now_ns () - frame.start_ns) in
  let alloc_b = Float.max 0.0 (Gc.allocated_bytes () -. frame.alloc0) in
  if config.aggregate then begin
    let a = aggregate_for frame.name in
    Metrics.incr a.a_count;
    Metrics.add a.a_ns dur_ns;
    Metrics.add a.a_alloc (int_of_float alloc_b);
    Metrics.observe a.a_hist dur_ns
  end;
  if not (Sink.is_null config.sink) then begin
    let parent =
      match !(Domain.DLS.get stacks) with
      | [] -> None
      | p :: _ -> Some p.name
    in
    Sink.emit config.sink
      { Sink.name = frame.name;
        domain = (Domain.self () :> int);
        depth = frame.depth;
        parent;
        start_ns = frame.start_ns;
        dur_ns;
        alloc_b }
  end

let with_ ~name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let config = Atomic.get state in
    let stack = Domain.DLS.get stacks in
    let frame =
      { name;
        depth = List.length !stack;
        start_ns = Clock.now_ns ();
        alloc0 = Gc.allocated_bytes () }
    in
    stack := frame :: !stack;
    (* Hand-rolled [Fun.protect]: the enabled path runs on every
       instrumented kernel call, and the match form spares the two
       closure allocations of [~finally]. *)
    match f () with
    | v ->
        finish config frame;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish config frame;
        Printexc.raise_with_backtrace e bt
  end
