/* Monotonic clock for the observability layer.
 *
 * CLOCK_MONOTONIC nanoseconds fit a 62-bit OCaml int for ~146 years of
 * uptime, so the reading is returned untagged (no allocation), which
 * keeps an enabled span at two clock calls and one minor-heap record. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value ftes_obs_clock_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
