external now_ns : unit -> int = "ftes_obs_clock_ns" [@@noalloc]

let ns_to_ms ns = float_of_int ns /. 1e6

let ns_to_s ns = float_of_int ns /. 1e9
