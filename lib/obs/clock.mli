(** Monotonic clock, via a [clock_gettime(CLOCK_MONOTONIC)] stub.

    Readings are nanoseconds since an arbitrary epoch (boot on Linux),
    returned as an untagged [int]: no allocation per call, and 62 bits
    hold ~146 years of uptime.  Only differences are meaningful. *)

external now_ns : unit -> int = "ftes_obs_clock_ns" [@@noalloc]

val ns_to_ms : int -> float

val ns_to_s : int -> float
