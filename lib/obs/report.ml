module Text_table = Ftes_util.Text_table
module Csv = Ftes_util.Csv
module Json = Ftes_util.Json

(* --- metrics snapshot rendering --- *)

let metrics_to_csv (s : Metrics.snapshot) =
  let header = [ "kind"; "name"; "value"; "count"; "sum"; "mean"; "p50"; "p99" ] in
  let counters =
    List.map
      (fun (name, v) -> [ "counter"; name; string_of_int v; ""; ""; ""; ""; "" ])
      s.Metrics.counters
  in
  let gauges =
    List.map
      (fun (name, v) -> [ "gauge"; name; Printf.sprintf "%.17g" v; ""; ""; ""; ""; "" ])
      s.Metrics.gauges
  in
  let histograms =
    List.map
      (fun (name, h) ->
        [ "histogram"; name; "";
          string_of_int (Metrics.hist_count h);
          string_of_int (Metrics.hist_sum h);
          Printf.sprintf "%.1f" (Metrics.hist_mean h);
          Printf.sprintf "%.0f" (Metrics.hist_quantile h 0.5);
          Printf.sprintf "%.0f" (Metrics.hist_quantile h 0.99) ])
      s.Metrics.histograms
  in
  header :: (counters @ gauges @ histograms)

let metrics_to_text (s : Metrics.snapshot) =
  let table = Text_table.create ~headers:[ "kind"; "name"; "value" ] in
  Text_table.set_aligns table [ Text_table.Left; Text_table.Left; Text_table.Right ];
  List.iter
    (fun (name, v) -> Text_table.add_row table [ "counter"; name; string_of_int v ])
    s.Metrics.counters;
  List.iter
    (fun (name, v) ->
      Text_table.add_row table [ "gauge"; name; Printf.sprintf "%g" v ])
    s.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      Text_table.add_row table
        [ "histogram"; name;
          Printf.sprintf "n=%d mean=%.0f p99<=%.0f" (Metrics.hist_count h)
            (Metrics.hist_mean h)
            (Metrics.hist_quantile h 0.99) ])
    s.Metrics.histograms;
  Text_table.render table

let metrics_to_json (s : Metrics.snapshot) =
  let counters =
    List.map (fun (n, v) -> (n, Json.Number (float_of_int v))) s.Metrics.counters
  in
  let gauges = List.map (fun (n, v) -> (n, Json.Number v)) s.Metrics.gauges in
  let histograms =
    List.map
      (fun (n, h) ->
        ( n,
          Json.Object
            [ ("count", Json.Number (float_of_int (Metrics.hist_count h)));
              ("sum", Json.Number (float_of_int (Metrics.hist_sum h)));
              ( "buckets",
                Json.List
                  (Array.to_list
                     (Array.map
                        (fun c -> Json.Number (float_of_int c))
                        h.Metrics.buckets)) ) ] ))
      s.Metrics.histograms
  in
  Json.Object
    [ ("counters", Json.Object counters);
      ("gauges", Json.Object gauges);
      ("histograms", Json.Object histograms) ]

let write_metrics_csv path snapshot =
  Csv.write_file path (metrics_to_csv snapshot)

(* --- profile breakdown --- *)

type phase = {
  phase : string;
  count : int;
  total_ns : int;
  alloc_b : int;
}

(* Recover per-span-name aggregates from the snapshot's
   [span.<name>.{count,ns,alloc_b}] counter triples. *)
let phases_of_snapshot (s : Metrics.snapshot) =
  let prefix = Span.span_prefix in
  let plen = String.length prefix in
  let strip_suffix name suffix =
    let slen = String.length suffix in
    let n = String.length name in
    if n > plen + slen && String.sub name (n - slen) slen = suffix then
      Some (String.sub name plen (n - plen - slen))
    else None
  in
  let counter name = Option.value ~default:0 (Metrics.find_counter s name) in
  s.Metrics.counters
  |> List.filter_map (fun (name, count) ->
         if String.length name <= plen || String.sub name 0 plen <> prefix then
           None
         else
           match strip_suffix name ".count" with
           | None -> None
           | Some phase ->
               Some
                 { phase;
                   count;
                   total_ns = counter (prefix ^ phase ^ ".ns");
                   alloc_b = counter (prefix ^ phase ^ ".alloc_b") })
  |> List.sort (fun a b -> compare (b.total_ns, a.phase) (a.total_ns, b.phase))

let profile_to_text ~wall_ns (s : Metrics.snapshot) =
  let phases = phases_of_snapshot s in
  let table =
    Text_table.create
      ~headers:[ "phase"; "calls"; "total ms"; "% wall"; "alloc MB" ]
  in
  Text_table.set_aligns table
    [ Text_table.Left; Text_table.Right; Text_table.Right; Text_table.Right;
      Text_table.Right ];
  let pct ns =
    if wall_ns <= 0 then 0.0 else 100.0 *. float_of_int ns /. float_of_int wall_ns
  in
  List.iter
    (fun p ->
      Text_table.add_row table
        [ p.phase;
          string_of_int p.count;
          Text_table.cell_float (Clock.ns_to_ms p.total_ns);
          Text_table.cell_float ~decimals:1 (pct p.total_ns);
          Text_table.cell_float (float_of_int p.alloc_b /. 1048576.0) ])
    phases;
  Text_table.add_separator table;
  Text_table.add_row table
    [ "(wall clock)"; "1"; Text_table.cell_float (Clock.ns_to_ms wall_ns);
      "100.0"; "" ];
  Text_table.render table

let profile_to_csv ~wall_ns (s : Metrics.snapshot) =
  [ "phase"; "calls"; "total_ns"; "pct_wall"; "alloc_b" ]
  :: (phases_of_snapshot s
     |> List.map (fun p ->
            [ p.phase;
              string_of_int p.count;
              string_of_int p.total_ns;
              (if wall_ns <= 0 then "0"
               else
                 Printf.sprintf "%.2f"
                   (100.0 *. float_of_int p.total_ns /. float_of_int wall_ns));
              string_of_int p.alloc_b ]))

(* The root span (deepest-nesting outermost phase, i.e. the largest
   total) should account for ~all of the wall time; `ftes profile`
   prints this coverage so drift is visible. *)
let root_coverage ~wall_ns (s : Metrics.snapshot) =
  match phases_of_snapshot s with
  | [] -> 0.0
  | root :: _ ->
      if wall_ns <= 0 then 0.0
      else float_of_int root.total_ns /. float_of_int wall_ns
