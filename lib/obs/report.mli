(** Reporters over {!Metrics} snapshots: plain-text tables
    ({!Ftes_util.Text_table}), CSV ({!Ftes_util.Csv}) and JSON, plus
    the per-phase profile breakdown printed by [ftes profile]. *)

val metrics_to_text : Metrics.snapshot -> string

val metrics_to_csv : Metrics.snapshot -> string list list
(** Rows [kind; name; value; count; sum; mean; p50; p99]; counters and
    gauges leave the histogram columns empty and vice versa. *)

val metrics_to_json : Metrics.snapshot -> Ftes_util.Json.t

val write_metrics_csv : string -> Metrics.snapshot -> unit

(** {1 Profile breakdown} *)

type phase = {
  phase : string;  (** span name. *)
  count : int;
  total_ns : int;
  alloc_b : int;
}

val phases_of_snapshot : Metrics.snapshot -> phase list
(** Per-span-name aggregates recovered from the snapshot's
    [span.<name>.*] counters, sorted by descending total time.  Nested
    spans each report their full (inclusive) time. *)

val profile_to_text : wall_ns:int -> Metrics.snapshot -> string

val profile_to_csv : wall_ns:int -> Metrics.snapshot -> string list list

val root_coverage : wall_ns:int -> Metrics.snapshot -> float
(** Fraction of the wall time covered by the largest phase (the root
    span); `ftes profile` checks this stays near 1. *)
