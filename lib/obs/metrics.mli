(** Process-wide metrics registry: named counters, gauges and log-scale
    histograms.

    Instruments are registered once by name ({!counter}, {!gauge},
    {!histogram} are idempotent find-or-create) and updated with
    atomics, so hot paths pay one atomic read-modify-write per update
    and no lock.  Updates from {!Ftes_par.Pool} workers land in the
    same instruments — "merging" across domains is the atomic
    accumulation itself, and {!snapshot} observes a consistent
    monotone view.

    The registry only {e observes} the optimizer: no instrument ever
    feeds a value back into a computation, which is the determinism
    argument for the whole observability layer (DESIGN.md §9). *)

type counter

type gauge

type histogram

val counter : string -> counter
(** Find or create.  Raises [Invalid_argument] if the name is already
    registered as a different kind. *)

val gauge : string -> gauge

val histogram : string -> histogram

val incr : counter -> unit

val add : counter -> int -> unit
(** Raises [Invalid_argument] on negative increments: counters are
    monotone by contract. *)

val counter_value : counter -> int

val counter_name : counter -> string

val reset_counter : counter -> unit
(** Zero one counter (benchmark sections); see also {!reset}. *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> int -> unit
(** Record one observation (clamped to [>= 0]) into the bucket
    [floor (log2 v)] — log-scale, sized for nanosecond latencies. *)

val histogram_name : histogram -> string

val n_buckets : int

val bucket_of_value : int -> int
(** Bucket index an observation lands in (exposed for tests). *)

(** {1 Snapshots} *)

type hist_snapshot = { buckets : int array; count : int; sum : int }

type snapshot = {
  counters : (string * int) list;  (** sorted by name. *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : unit -> snapshot
(** Consistent-enough view for reporting: each instrument is read
    atomically; a histogram's [count] never exceeds the bucket sum it
    is derived from. *)

val find_counter : snapshot -> string -> int option

val find_histogram : snapshot -> string -> hist_snapshot option

val hist_count : hist_snapshot -> int

val hist_sum : hist_snapshot -> int

val hist_mean : hist_snapshot -> float

val hist_quantile : hist_snapshot -> float -> float
(** Upper bound of the bucket holding the q-quantile (factor-of-2
    resolution). *)

val reset : unit -> unit
(** Zero every instrument, keeping registrations.  For benchmarks and
    tests that measure one section at a time. *)
