(** Hierarchical, monotonic-clock-timed spans.

    [Span.with_ ~name f] runs [f] and, when observability is enabled,
    records how long it took and how much the current domain allocated
    meanwhile.  Spans nest; each domain keeps its own stack (via
    [Domain.DLS]), so spans opened inside {!Ftes_par.Pool} workers
    attribute to the worker's own hierarchy and never race with the
    spawning domain.

    Two independent consumers can be enabled:

    - a trace {!Sink.t}, receiving one {!Sink.event} per completed
      span (JSONL file, or in-memory for tests);
    - the aggregator, folding per-name totals into the {!Metrics}
      registry under [span.<name>.count] / [.ns] / [.alloc_b] and a
      latency histogram [span.<name>.ns.hist] — what `ftes profile`
      reads.

    With both off (the default) [with_ ~name f] is [f ()] after one
    atomic load and a branch — the near-zero "null sink" path whose
    cost `bench_obs` measures.  Sinks and aggregates only observe, so
    enabling them cannot change any optimizer result. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** Exception-safe: the span is closed (and emitted) on raise too. *)

val configure : ?sink:Sink.t -> ?aggregate:bool -> unit -> unit
(** Install the given sink (default {!Sink.null}) and aggregation
    switch, replacing the previous configuration.  Global: affects
    every domain. *)

val disable : unit -> unit
(** Back to the defaults: null sink, no aggregation. *)

val enabled : unit -> bool

type config = { sink : Sink.t; aggregate : bool }

val current : unit -> config

val span_prefix : string
(** Prefix of the aggregated metric names, ["span."]. *)

val stack_depth : unit -> int
(** Open spans on the calling domain's stack (tests). *)

val current_name : unit -> string option
(** Innermost open span of the calling domain, if any. *)
