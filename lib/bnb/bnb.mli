(** Exact branch-and-bound over the joint hardening / re-execution /
    mapping space, with a machine-checkable optimality certificate.

    Where {!Ftes_core.Exhaustive} enumerates every candidate — and is
    therefore capped at a few million candidates — this search proves
    the same optimum while visiting only a fraction of the space.  It
    walks the architecture lattice as a prefix tree (members in
    increasing library order), best-first by a completion-cost lower
    bound, and discharges whole subtrees through three sound pruners:

    - {e cost}: {!Ftes_analyze.Preflight.completion_cost_lower_bound}
      of the subtree exceeds the incumbent's cost;
    - {e infeasibility}:
      {!Ftes_analyze.Preflight.architecture_check} rejects the union of
      the prefix and every still-addable node (necessary conditions are
      monotone in the member set, so the verdict covers the subtree);
    - {e symmetry}: extending by a node that has a bitwise-identical,
      unchosen, smaller twin ({!Ftes_analyze.Preflight.canonical_nodes})
      only produces architectures equivalent to canonical ones searched
      elsewhere.

    Inside each surviving architecture the hardening vectors are cut by
    the incumbent's cost and by reliability-dead level choices, and the
    mapping space is searched one process digit at a time — in
    {!Ftes_core.Exhaustive.iter_mappings} order — with dead digits
    (inadmissible singleton assignments) and per-slot load lower bounds
    pruned before completion.  Every prune is one-sided, so the optimum
    (cost, then schedule length, with {!Ftes_core.Exhaustive.better}'s
    tie-breaking) is the one the reference enumeration returns whenever
    the latter terminates; the differential suite certifies this.

    Each prune is recorded as a premise in a
    {!Ftes_analyze.Bnb_certificate}, audited offline by the [bnb/*]
    rules of [Ftes_verify]: premises are re-derived from the problem
    and, together with the closed architectures, must tile the whole
    architecture lattice exactly once. *)

exception Budget_exhausted of int
(** Raised by {!solve} when more than [limit] candidates would need a
    full evaluation; carries the count reached. *)

val search_space : Ftes_model.Problem.t -> float
(** {!Ftes_core.Exhaustive.search_space}: the candidate count the
    certificate reports against. *)

type outcome = {
  best : Ftes_core.Redundancy_opt.result option;
      (** the proven-optimal design; [None] = proven infeasible. *)
  certificate : Ftes_analyze.Bnb_certificate.t;
  heuristic : Ftes_core.Design_strategy.solution option;
      (** the greedy walk used to seed the incumbent, for gap
          reporting. *)
  audit : Ftes_verify.Report.t option;
      (** offline audit of the certificate (and of the optimal design,
          when one exists), present when {!Ftes_core.Config.t.certify}
          is set. *)
}

val solve :
  ?pool:Ftes_par.Pool.t ->
  ?limit:int ->
  config:Ftes_core.Config.t ->
  Ftes_model.Problem.t ->
  outcome
(** Prove the cost-minimal feasible design under the config's policies
    and [kmax], or prove that none exists.

    The greedy {!Ftes_core.Design_strategy.run} seeds the incumbent
    cost, so the gap between the two is part of every certificate.
    Sequentially the incumbent tightens as architectures close
    (best-first order makes that fast); with a multi-domain [pool] the
    tree walk keeps the static greedy incumbent — premises and counters
    stay deterministic — and the surviving architectures are evaluated
    concurrently, heaviest first
    ({!Ftes_par.Pool.map_weighted}), with winners merged in canonical
    subset order.  The returned design's cost and schedule length are
    identical in both modes; the certificate's counters and premises
    reflect whichever walk ran.

    [limit] (default unlimited) caps the fully evaluated candidates;
    past it {!Budget_exhausted} is raised.  No candidate-space limit
    applies — pruning, not enumeration, is the point. *)
