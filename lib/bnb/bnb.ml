module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Application = Ftes_model.Application
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp
module Pool = Ftes_par.Pool
module Exhaustive = Ftes_core.Exhaustive
module Redundancy_opt = Ftes_core.Redundancy_opt
module Re_execution_opt = Ftes_core.Re_execution_opt
module Design_strategy = Ftes_core.Design_strategy
module Config = Ftes_core.Config
module Preflight = Ftes_analyze.Preflight
module Cert = Ftes_analyze.Bnb_certificate
module Symmetric = Ftes_util.Symmetric

exception Budget_exhausted of int

let search_space = Exhaustive.search_space

type outcome = {
  best : Redundancy_opt.result option;
  certificate : Cert.t;
  heuristic : Design_strategy.solution option;
  audit : Ftes_verify.Report.t option;
}

let deadline problem = problem.Problem.app.Application.deadline_ms

(* Min-heap on (lower bound, push order): the frontier of the
   best-first walk.  The push order breaks lower-bound ties, so the pop
   sequence — and with it every premise the certificate records — is
   deterministic. *)
module Frontier = struct
  type entry = { lb : float; seq : int; prefix : int array; first_open : int }

  type t = { mutable data : entry array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let lt a b = a.lb < b.lb || (a.lb = b.lb && a.seq < b.seq)

  let swap t i j =
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- tmp

  let push t e =
    if t.len = Array.length t.data then begin
      let data = Array.make (max 16 (2 * t.len)) e in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    t.data.(t.len) <- e;
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while !i > 0 && lt t.data.(!i) t.data.((!i - 1) / 2) do
      swap t !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.data.(0) in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.data.(0) <- t.data.(t.len);
        let i = ref 0 in
        let sinking = ref true in
        while !sinking do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < t.len && lt t.data.(l) t.data.(!s) then s := l;
          if r < t.len && lt t.data.(r) t.data.(!s) then s := r;
          if !s = !i then sinking := false
          else begin
            swap t !i !s;
            i := !s
          end
        done
      end;
      Some top
    end
end

type arch_stats = {
  winner : Redundancy_opt.result option;
  arch_evaluated : int;
  arch_pruned_levels : int;
  arch_pruned_mappings : int;
}

let pow_int base e =
  let r = ref 1 in
  for _ = 1 to e do
    r := !r * base
  done;
  !r

(* The level x mapping search of one closed architecture.  The
   candidate stream, the local incumbent and the acceptance test are
   exactly [Exhaustive.run]'s per-subset search; on top of it, three
   one-sided cuts skip only candidates that search would reject anyway:
   hardening vectors costlier than the global incumbent (soundness
   needs candidate costs to be either equal or separated by more than
   the 1e-9 crumb budget, which every modeled instance satisfies and
   the differential suite checks), hardening vectors under which some
   process is admissible on no slot, and — digit by digit, in
   [Exhaustive.iter_mappings] order — mapping prefixes whose slot is
   already reliability-dead for the process or whose accumulated raw
   WCET load provably overruns what acceptance would need. *)
let search_arch ?cache ~config ~(preflight : Preflight.t) ~prune_cost ~tick
    problem members =
  let n = Problem.n_processes problem in
  let m = Array.length members in
  let d = deadline problem in
  let kneed = preflight.Preflight.kneed in
  let best = ref None in
  let evaluated = ref 0 and pruned_levels = ref 0 and pruned_mappings = ref 0 in
  let mapping = Array.make n 0 in
  let load = Array.make m 0.0 in
  let wcets = Array.make_matrix n m 0.0 in
  let admissible = Array.make_matrix n m false in
  let zero_reexecs = Array.make m 0 in
  Exhaustive.iter_levels problem members (fun levels ->
      let cost = ref 0.0 in
      Array.iteri
        (fun slot j ->
          cost := !cost +. Problem.cost problem ~node:j ~level:levels.(slot))
        members;
      let cost = !cost in
      if
        (not (Exhaustive.better ~best:!best (cost, 0.0)))
        || cost > prune_cost () +. 1e-9
      then incr pruned_levels
      else begin
        let dead = ref false in
        for p = 0 to n - 1 do
          let any = ref false in
          for s = 0 to m - 1 do
            wcets.(p).(s) <-
              Problem.wcet problem ~node:members.(s) ~level:levels.(s) ~proc:p;
            let a = kneed.(p).(members.(s)).(levels.(s) - 1) >= 0 in
            admissible.(p).(s) <- a;
            if a then any := true
          done;
          if not !any then dead := true
        done;
        if !dead then incr pruned_levels
        else begin
          (* What a completion's schedule length must stay under to be
             accepted: the deadline, tightened to the incumbent's length
             when this vector can only tie its cost. *)
          let length_threshold () =
            match !best with
            | Some (r : Redundancy_opt.result)
              when Float.abs (cost -. r.Redundancy_opt.cost) <= 1e-9 ->
                Float.min (d +. 1e-9)
                  (r.Redundancy_opt.schedule_length -. 1e-9)
            | _ -> d +. 1e-9
          in
          let rec assign p =
            if p = n then begin
              tick ();
              incr evaluated;
              let design =
                Design.make problem ~members ~levels ~reexecs:zero_reexecs
                  ~mapping
              in
              match
                Re_execution_opt.optimize ?cache ~kmax:config.Config.kmax
                  problem design
              with
              | None -> ()
              | Some design ->
                  let sl =
                    Scheduler.schedule_length ~slack:config.Config.slack
                      ~bus:config.Config.bus problem design
                  in
                  if sl <= d +. 1e-9 && Exhaustive.better ~best:!best (cost, sl)
                  then begin
                    let verdict = Sfp.evaluate problem design in
                    best :=
                      Some
                        { Redundancy_opt.design;
                          schedule_length = sl;
                          cost;
                          slack = d -. sl;
                          margin =
                            Sfp.log10_margin problem.Problem.app
                              ~per_iteration_failure:
                                verdict.Sfp.per_iteration_failure }
                  end
            end
            else
              for s = 0 to m - 1 do
                if not admissible.(p).(s) then
                  (* Any completion re-executes [p] on a node that
                     cannot meet the goal even hosting [p] alone. *)
                  pruned_mappings := !pruned_mappings + pow_int m (n - 1 - p)
                else begin
                  let w = wcets.(p).(s) in
                  load.(s) <- load.(s) +. w;
                  if load.(s) -. Preflight.prove_eps_ms > length_threshold ()
                  then
                    (* The slot's processes run serially, so any
                       completion is at least this long. *)
                    pruned_mappings := !pruned_mappings + pow_int m (n - 1 - p)
                  else begin
                    mapping.(p) <- s;
                    assign (p + 1)
                  end;
                  load.(s) <- load.(s) -. w
                end
              done
          in
          assign 0
        end
      end);
  { winner = !best;
    arch_evaluated = !evaluated;
    arch_pruned_levels = !pruned_levels;
    arch_pruned_mappings = !pruned_mappings }

let solve ?pool ?(limit = max_int) ~config problem =
  Ftes_obs.Span.with_ ~name:"bnb/solve" (fun () ->
      let lib = Problem.n_library problem in
      let preflight =
        Preflight.run ~kmax:config.Config.kmax ~slack:config.Config.slack
          problem
      in
      let cache =
        if config.Config.memoize then Some (Ftes_par.Sfp_cache.create ())
        else None
      in
      let heuristic = Design_strategy.run ?pool ~preflight ~config problem in
      let heuristic_cost =
        match heuristic with
        | Some s -> s.Design_strategy.result.Redundancy_opt.cost
        | None -> infinity
      in
      let parallel =
        match pool with
        | Some p -> Pool.domains p > 1 && not (Pool.in_worker ())
        | None -> false
      in
      (* In parallel mode both the walk and the leaf evaluations prune
         against the static greedy cost, so the premises, the counters
         and the per-leaf work are independent of the leaf schedule;
         sequentially the incumbent tightens as architectures close. *)
      let prune_cost = ref heuristic_cost in
      let current_prune =
        if parallel then fun () -> heuristic_cost else fun () -> !prune_cost
      in
      let canonical = Preflight.canonical_nodes problem in
      let class_total = Array.make lib 0 in
      Array.iter (fun c -> class_total.(c) <- class_total.(c) + 1) canonical;
      let represented members =
        let chosen = Array.make lib 0 in
        Array.iter
          (fun j -> chosen.(canonical.(j)) <- chosen.(canonical.(j)) + 1)
          members;
        let r = ref 1.0 in
        Array.iteri
          (fun c total ->
            if chosen.(c) > 0 then
              r := !r *. float_of_int (Symmetric.binomial total chosen.(c)))
          class_total;
        !r
      in
      let evaluated_total = Atomic.make 0 in
      let tick () =
        let v = Atomic.fetch_and_add evaluated_total 1 + 1 in
        if v > limit then raise (Budget_exhausted v)
      in
      let prunes = ref [] in
      let frontier = Frontier.create () in
      let seq = ref 0 in
      let push prefix first_open =
        incr seq;
        let lb =
          Preflight.completion_cost_lower_bound preflight ~prefix ~first_open
        in
        Frontier.push frontier { Frontier.lb; seq = !seq; prefix; first_open }
      in
      push [||] 0;
      let expanded = ref 0 and closed = ref 0 in
      let pruned_cost_n = ref 0
      and pruned_arch = ref 0
      and pruned_symmetry = ref 0 in
      let represented_total = ref 0.0 in
      let closed_order = ref [] in
      let winners : (int list, Redundancy_opt.result option) Hashtbl.t =
        Hashtbl.create 64
      in
      let evaluated = ref 0
      and pruned_levels = ref 0
      and pruned_mappings = ref 0 in
      let record members (s : arch_stats) =
        evaluated := !evaluated + s.arch_evaluated;
        pruned_levels := !pruned_levels + s.arch_pruned_levels;
        pruned_mappings := !pruned_mappings + s.arch_pruned_mappings;
        Hashtbl.replace winners (Array.to_list members) s.winner
      in
      let close members =
        incr closed;
        represented_total := !represented_total +. represented members;
        if parallel then closed_order := members :: !closed_order
        else begin
          let s =
            search_arch ?cache ~config ~preflight ~prune_cost:current_prune
              ~tick problem members
          in
          (match s.winner with
          | Some r when r.Redundancy_opt.cost < !prune_cost ->
              prune_cost := r.Redundancy_opt.cost
          | Some _ | None -> ());
          record members s
        end
      in
      let rec walk () =
        match Frontier.pop frontier with
        | None -> ()
        | Some { Frontier.lb; prefix; first_open; _ } ->
            (if lb > current_prune () +. 1e-9 then begin
               incr pruned_cost_n;
               prunes :=
                 Cert.Cost_bound
                   { prefix; lower_bound = lb; incumbent_cost = current_prune () }
                 :: !prunes
             end
             else begin
               let full =
                 Array.append prefix
                   (Array.init (lib - first_open) (fun i -> first_open + i))
               in
               let record_arch subtree verdict =
                 incr pruned_arch;
                 prunes :=
                   Cert.Arch_infeasible { prefix; subtree; verdict } :: !prunes
               in
               match Preflight.architecture_check preflight ~members:full with
               | `Unreliable p -> record_arch true (Cert.Unreliable p)
               | `Deadline lb_ms -> record_arch true (Cert.Deadline lb_ms)
               | `Feasible ->
                   incr expanded;
                   if Array.length prefix > 0 then
                     if first_open >= lib then close prefix
                     else begin
                       match
                         Preflight.architecture_check preflight
                           ~members:prefix
                       with
                       | `Feasible -> close prefix
                       | `Unreliable p -> record_arch false (Cert.Unreliable p)
                       | `Deadline lb_ms ->
                           record_arch false (Cert.Deadline lb_ms)
                     end;
                   for j = first_open to lib - 1 do
                     (* Extending by [j] while an identical smaller node
                        is unchosen only yields architectures equivalent
                        to canonical ones reached elsewhere. *)
                     let c = canonical.(j) in
                     let twin = ref (-1) in
                     let j' = ref c in
                     while !twin < 0 && !j' < j do
                       if
                         canonical.(!j') = c
                         && not (Array.exists (fun x -> x = !j') prefix)
                       then twin := !j';
                       incr j'
                     done;
                     if !twin >= 0 then begin
                       incr pruned_symmetry;
                       prunes :=
                         Cert.Symmetry
                           { prefix; skipped = j; canonical = !twin }
                         :: !prunes
                     end
                     else push (Array.append prefix [| j |]) (j + 1)
                   done
             end);
            walk ()
      in
      walk ();
      if parallel then
        Pool.map_weighted ?pool
          ~weight:(fun members ->
            let m = Array.length members in
            Array.fold_left
              (fun acc j -> acc *. float_of_int (Problem.levels problem j))
              1.0 members
            *. (float_of_int m ** float_of_int (Problem.n_processes problem)))
          (fun members ->
            ( members,
              search_arch ?cache ~config ~preflight ~prune_cost:current_prune
                ~tick problem members ))
          (List.rev !closed_order)
        |> List.iter (fun (members, s) -> record members s);
      let best =
        List.fold_left
          (fun best members ->
            match Hashtbl.find_opt winners (Array.to_list members) with
            | Some (Some (r : Redundancy_opt.result))
              when Exhaustive.better ~best
                     (r.Redundancy_opt.cost, r.Redundancy_opt.schedule_length)
              ->
                Some r
            | Some _ | None -> best)
          None
          (Exhaustive.subsets lib)
      in
      let incumbent =
        match best with
        | None -> None
        | Some r ->
            let dsg = r.Redundancy_opt.design in
            Some
              { Cert.members = Array.copy dsg.Design.members;
                levels = Array.copy dsg.Design.levels;
                reexecs = Array.copy dsg.Design.reexecs;
                mapping = Array.copy dsg.Design.mapping;
                cost = r.Redundancy_opt.cost;
                schedule_length_ms = r.Redundancy_opt.schedule_length }
      in
      let counters =
        { Cert.expanded = !expanded;
          closed = !closed;
          evaluated = !evaluated;
          pruned_cost = !pruned_cost_n;
          pruned_arch = !pruned_arch;
          pruned_symmetry = !pruned_symmetry;
          pruned_levels = !pruned_levels;
          pruned_mappings = !pruned_mappings }
      in
      let certificate =
        Cert.of_run ~problem ~kmax:config.Config.kmax
          ~search_space:(search_space problem)
          ~represented_subsets:!represented_total ~heuristic_cost ~incumbent
          ~counters ~prunes:(List.rev !prunes)
      in
      let audit =
        if config.Config.certify then begin
          let base =
            match best with
            | Some r ->
                Ftes_verify.Subject.of_design problem r.Redundancy_opt.design
            | None -> Ftes_verify.Subject.of_problem problem
          in
          let subject =
            Ftes_verify.Subject.with_bnb_certificate
              { base with
                Ftes_verify.Subject.slack = config.Config.slack;
                bus = config.Config.bus }
              certificate
          in
          Some (Ftes_verify.Verify.run subject)
        end
        else None
      in
      { best; certificate; heuristic; audit })
