(** Crash-safe file writes: temp file + atomic rename.

    Every persistent artifact of the toolchain (problem instances,
    certificates, frontier exports, campaign checkpoints, benchmark
    CSVs) is written through {!write}: the content goes to a temporary
    file in the destination directory, is flushed and [fsync]ed, and
    only then renamed over the target.  A reader — or a process
    resuming a killed campaign — therefore sees either the previous
    complete file or the new complete file, never a torn prefix. *)

val write : ?fsync:bool -> string -> (out_channel -> unit) -> unit
(** [write path f] creates [path ^ ".tmp.<pid>"] in the same
    directory, applies [f] to its channel, flushes, [fsync]s (unless
    [~fsync:false] — benchmarks that rewrite results in a tight loop
    may opt out), renames it over [path] and finally syncs the
    directory so the rename itself survives a crash.  The temporary
    file is removed when [f] raises; the exception is re-raised. *)

val write_string : ?fsync:bool -> string -> string -> unit
(** [write_string path s] is [write path (fun oc -> output_string oc s)]. *)
