type mode = Incremental | Reference

let mode = Atomic.make Incremental

let set m = Atomic.set mode m

let current () = Atomic.get mode

let incremental () = Atomic.get mode = Incremental

let with_mode m f =
  let previous = Atomic.get mode in
  Atomic.set mode m;
  Fun.protect ~finally:(fun () -> Atomic.set mode previous) f
