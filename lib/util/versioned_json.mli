(** Shared [schema_version] conventions of every versioned JSON
    document the system writes (problems, certificates, frontiers,
    request/response envelopes).

    Convention, mirrored from [Problem_io]:

    - writers stamp an explicit integer ["schema_version"] field;
    - readers accept the current version;
    - a {e missing} field means the pre-versioning v0 format: accepted
      with a deprecation warning ([on_warning]) because v0 and v1
      payloads are identical;
    - an explicit [0] is accepted exactly when the reader opts in
      ([accept_v0]) — document families that never shipped an explicit
      v0 reject it like any other unknown version;
    - any other version is rejected with an error naming both the found
      and the supported versions, so a newer writer surfaces as a clear
      message instead of a confusing constructor error downstream.

    The module also owns the infinity↔null float convention: bounds
    that are [infinity] in memory ("no admissible assignment") have no
    JSON spelling, so they travel as [null]. *)

val field : int -> string * Json.t
(** [field v] is the [("schema_version", v)] pair writers prepend. *)

val check :
  ?what:string ->
  ?accept_v0:bool ->
  ?on_warning:(string -> unit) ->
  current:int ->
  Json.t ->
  (unit, string) result
(** [check ~what ~current json] validates the document's
    ["schema_version"] against [current] under the convention above.
    [what] names the document family in messages (default
    ["document"]); [accept_v0] (default [true]) admits an explicit
    [0]; [on_warning] (default: print to stderr prefixed with [what])
    receives the v0 deprecation warning. *)

val opt_number : float -> Json.t
(** [Number x] for finite [x], [Null] for [infinity] (and any other
    non-finite value). *)

val opt_float : Json.t -> (float, string) result
(** Inverse of {!opt_number}: [Null] reads back as [infinity]. *)
