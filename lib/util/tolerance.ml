(* The single home of the floating-point comparison slop used across the
   scheduler, the schedule validator and the static verifier.  Times are
   milliseconds of order 1..1e3, so absolute 1e-9 sits comfortably above
   accumulated binary rounding noise while staying far below any real
   slack; costs are small integers scaled the same way. *)

let time_eps_ms = 1e-9

let cost_eps = 1e-9

(* Probabilities are compared after the 1e-11 grain rounding of
   {!Rounding}; 1e-15 distinguishes genuine violations from the last-bit
   noise of the unrounded reference values. *)
let prob_eps = 1e-15

let leq ?(eps = time_eps_ms) a b = a <= b +. eps

let geq ?(eps = time_eps_ms) a b = b <= a +. eps

let lt ?(eps = time_eps_ms) a b = a < b -. eps

let gt ?(eps = time_eps_ms) a b = b < a -. eps

let approx ?(eps = time_eps_ms) a b = Float.abs (a -. b) <= eps
