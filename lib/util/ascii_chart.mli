(** Tiny ASCII charts used to render the paper's figures in text form.

    Every figure of the evaluation section (Fig. 6a, 6c, 6d) is a small
    grouped series of percentages over 3-4 x positions, so grouped bar
    charts are the natural text rendering. *)

type series = { label : string; values : float list }

val bar_chart :
  ?width:int -> title:string -> x_labels:string list -> series list -> string
(** [bar_chart ~title ~x_labels series] renders one horizontal bar per
    (x, series) pair, scaled to [width] characters (default 50) for the
    value 100.  All series must have [List.length x_labels] values;
    raises [Invalid_argument] otherwise. *)

val sparkline : float list -> string
(** One-line sketch of a numeric series using block characters
    (["_.-~^"] levels in pure ASCII). *)

val scatter :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  (float * float) list ->
  string
(** [scatter ~title ~x_label ~y_label points] renders an [*]-per-point
    scatter plot on a [width] x [height] character grid (default
    60 x 12), axes annotated with the data extremes — the [ftes pareto]
    cost-vs-slack view.  Coincident grid cells collapse into one mark;
    an empty point list renders a ["(no points)"] placeholder. *)
