(** Shared floating-point comparison tolerances.

    Every schedulability verdict, slack contract and verifier rule
    compares times through these helpers instead of scattering [1e-9]
    literals, so the producer (scheduler), its validator and the
    independent static verifier all agree on what "equal" means. *)

val time_eps_ms : float
(** Absolute slop for times in milliseconds. *)

val cost_eps : float
(** Absolute slop for architecture costs. *)

val prob_eps : float
(** Absolute slop for unrounded probability comparisons (below the
    {!Rounding} grain). *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b] is [a <= b] up to [eps] (default {!time_eps_ms}). *)

val geq : ?eps:float -> float -> float -> bool
(** [geq a b] is [a >= b] up to [eps]. *)

val lt : ?eps:float -> float -> float -> bool
(** [lt a b] is [a < b] by more than [eps]. *)

val gt : ?eps:float -> float -> float -> bool
(** [gt a b] is [a > b] by more than [eps]. *)

val approx : ?eps:float -> float -> float -> bool
(** [approx a b] is [|a - b| <= eps]. *)
