(** Stable content fingerprints.

    64-bit FNV-1a over the raw bytes, rendered as 16 lowercase hex
    digits.  Used wherever two processes must agree on "is this the
    same document?" without sharing memory — campaign checkpoints
    record the fingerprint of the manifest they were computed under,
    and the verifier recomputes it from the manifest bytes alone.  Not
    cryptographic; it guards against mixups and torn state, not
    adversaries. *)

val of_string : string -> string
(** Fingerprint of the exact byte sequence. *)

val of_json : Json.t -> string
(** [of_string] of the canonical (minified) rendering — the same value
    whether the document was just built or parsed back from disk,
    because the JSON printer round-trips numbers exactly. *)
