let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string row = String.concat "," (List.map escape_field row)

let to_string rows =
  String.concat "" (List.map (fun r -> row_to_string r ^ "\n") rows)

let write_file path rows =
  Atomic_file.write_string path (to_string rows)

let of_string s =
  let n = String.length s in
  let rows = ref [] and row = ref [] and buf = Buffer.create 32 in
  let field_pending = ref false in
  let flush_field () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf;
    field_pending := false
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let rec plain i =
    if i >= n then ()
    else begin
      match s.[i] with
      | ',' ->
          flush_field ();
          field_pending := true;
          plain (i + 1)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '\r' ->
          flush_row ();
          plain (if i + 1 < n && s.[i + 1] = '\n' then i + 2 else i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
    end
  and quoted i =
    if i >= n then invalid_arg "Csv.of_string: unterminated quoted field"
    else begin
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' ->
          (* Mark so a quoted empty field still counts as content. *)
          field_pending := true;
          plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
    end
  in
  plain 0;
  if Buffer.length buf > 0 || !row <> [] || !field_pending then flush_row ();
  List.rev !rows

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
