let field v = ("schema_version", Json.Number (float_of_int v))

let default_warn what msg = Printf.eprintf "%s: warning: %s\n%!" what msg

let check ?(what = "document") ?(accept_v0 = true) ?on_warning ~current json =
  let on_warning =
    match on_warning with Some f -> f | None -> default_warn what
  in
  match Json.member "schema_version" json with
  | Error _ ->
      on_warning
        (Printf.sprintf
           "%s has no \"schema_version\" field; reading it as the \
            deprecated v0 format (re-export to upgrade to v%d)"
           what current);
      Ok ()
  | Ok v -> (
      match Json.to_int v with
      | Error e -> Error ("schema_version: " ^ e)
      | Ok v when v = current || (accept_v0 && v = 0) -> Ok ()
      | Ok v ->
          Error
            (if accept_v0 then
               Printf.sprintf
                 "unsupported %s schema_version %d (this build reads \
                  versions 0 and %d; a newer ftes probably wrote this file)"
                 what v current
             else
               Printf.sprintf
                 "unsupported %s schema_version %d (this build reads v%d; \
                  a newer ftes probably wrote this file)"
                 what v current))

let opt_number x = if Float.is_finite x then Json.Number x else Json.Null

let opt_float = function
  | Json.Null -> Ok infinity
  | json -> Json.to_float json
