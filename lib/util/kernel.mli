(** Process-wide selector between the incremental hot-path kernels and
    the retained reference implementations.

    The greedy re-execution ascent, the list scheduler and the
    hardening walk each keep their original implementation alongside
    the incremental rewrite.  Both produce bit-identical results; the
    reference exists so the equivalence suite can compare them and so
    `bench_kernels` can measure the speedup on the same binary.

    The switch is read at kernel entry through one atomic load, so
    flipping it mid-run affects subsequent kernel invocations only —
    never a computation in flight. *)

type mode = Incremental | Reference

val set : mode -> unit

val current : unit -> mode

val incremental : unit -> bool
(** [current () = Incremental] — the hot-path check. *)

val with_mode : mode -> (unit -> 'a) -> 'a
(** Run [f] under [mode], restoring the previous mode on return or
    raise.  For tests and benchmarks; not atomic across domains. *)
