(** Minimal CSV reader/writer for experiment data series.

    The harness dumps every reproduced table and figure as CSV next to
    the textual report so that plots can be drawn offline; the golden
    regression tests read those files back.  Fields containing commas,
    quotes or newlines are quoted per RFC 4180, and the reader inverts
    exactly the writer's dialect (["\n"] or ["\r\n"] row ends, ["\"\""]
    escapes inside quoted fields). *)

val escape_field : string -> string
(** Quote a single field if needed. *)

val row_to_string : string list -> string
(** One CSV line, without the trailing newline. *)

val to_string : string list list -> string
(** Full document with ["\n"] line termination. *)

val write_file : string -> string list list -> unit
(** [write_file path rows] writes (or overwrites) [path]. *)

val of_string : string -> string list list
(** Parse a document; the left inverse of {!to_string} ([of_string
    (to_string rows) = rows] for rows without a trailing empty line).
    Raises [Invalid_argument] on an unterminated quoted field. *)

val read_file : string -> string list list
(** [read_file path] parses the whole file. *)
