type series = { label : string; values : float list }

let bar_chart ?(width = 50) ~title ~x_labels series =
  List.iter
    (fun s ->
      if List.length s.values <> List.length x_labels then
        invalid_arg "Ascii_chart.bar_chart: series length mismatch")
    series;
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let label_width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 0 series
  in
  let x_width =
    List.fold_left (fun acc x -> max acc (String.length x)) 0 x_labels
  in
  let bar v =
    let v = Float.max 0.0 (Float.min 100.0 v) in
    let n = int_of_float (Float.round (v /. 100.0 *. float_of_int width)) in
    String.make n '#'
  in
  List.iteri
    (fun i x ->
      List.iter
        (fun s ->
          let v = List.nth s.values i in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %-*s |%-*s| %5.1f\n" x_width
               (if s == List.hd series then x else "")
               label_width s.label width (bar v) v))
        series;
      if i < List.length x_labels - 1 then Buffer.add_char buf '\n')
    x_labels;
  Buffer.contents buf

let scatter ?(width = 60) ?(height = 12) ~title ~x_label ~y_label points =
  if width < 2 || height < 2 then
    invalid_arg "Ascii_chart.scatter: grid must be at least 2 x 2";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  (match points with
  | [] -> Buffer.add_string buf "  (no points)\n"
  | points ->
      let fold f init sel =
        List.fold_left (fun acc p -> f acc (sel p)) init points
      in
      let x_lo = fold Float.min infinity fst
      and x_hi = fold Float.max neg_infinity fst
      and y_lo = fold Float.min infinity snd
      and y_hi = fold Float.max neg_infinity snd in
      let span lo hi = if hi -. lo < 1e-12 then 1.0 else hi -. lo in
      let x_span = span x_lo x_hi and y_span = span y_lo y_hi in
      let grid = Array.make_matrix height width ' ' in
      let clamp hi v = max 0 (min hi v) in
      List.iter
        (fun (x, y) ->
          let col =
            clamp (width - 1)
              (int_of_float
                 (((x -. x_lo) /. x_span *. float_of_int (width - 1)) +. 0.5))
          in
          let row =
            height - 1
            - clamp (height - 1)
                (int_of_float
                   (((y -. y_lo) /. y_span *. float_of_int (height - 1))
                   +. 0.5))
          in
          grid.(row).(col) <- '*')
        points;
      Buffer.add_string buf (Printf.sprintf "  %10s\n" y_label);
      for row = 0 to height - 1 do
        let label =
          if row = 0 then Printf.sprintf "%.4g" y_hi
          else if row = height - 1 then Printf.sprintf "%.4g" y_lo
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  %10s |%s\n" label
             (String.init width (fun col -> grid.(row).(col))))
      done;
      Buffer.add_string buf
        (Printf.sprintf "  %10s +%s\n" "" (String.make width '-'));
      let left = Printf.sprintf "%.4g" x_lo
      and right = Printf.sprintf "%.4g" x_hi in
      let gap =
        max 1
          (width
          - String.length left
          - String.length right
          - String.length x_label)
      in
      let pad = gap / 2 in
      Buffer.add_string buf
        (Printf.sprintf "  %10s %s%s%s%s%s\n" "" left (String.make pad ' ')
           x_label
           (String.make (max 1 (gap - pad)) ' ')
           right));
  Buffer.contents buf

let sparkline values =
  match values with
  | [] -> ""
  | values ->
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let levels = [| '_'; '.'; '-'; '~'; '^' |] in
      let pick v =
        if hi -. lo < 1e-12 then levels.(2)
        else begin
          let idx =
            int_of_float ((v -. lo) /. (hi -. lo) *. 4.0 +. 0.5)
          in
          levels.(max 0 (min 4 idx))
        end
      in
      String.init (List.length values) (fun i -> pick (List.nth values i))
