(* Temp-file-plus-rename writes.  The temporary lives in the target's
   own directory (rename is only atomic within one filesystem), carries
   the writer's pid so concurrent writers of different shards never
   collide, and is fsynced before the rename so the rename can never
   publish unwritten data. *)

let fsync_dir dir =
  (* Persist the rename itself.  Directory fsync is best-effort: some
     filesystems refuse it, and the data file is already safe. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write ?(fsync = true) path f =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  (match f oc with
  | () ->
      flush oc;
      if fsync then Unix.fsync fd;
      close_out oc
  | exception e ->
      (try close_out oc with _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Unix.rename tmp path;
  if fsync then fsync_dir (Filename.dirname path)

let write_string ?fsync path s =
  write ?fsync path (fun oc -> output_string oc s)
