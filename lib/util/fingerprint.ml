let of_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

let of_json json = of_string (Json.to_string ~minify:true json)
