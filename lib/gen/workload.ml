module Prng = Ftes_util.Prng
module Task_graph = Ftes_model.Task_graph
module Application = Ftes_model.Application
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler

type params = {
  n_library : int;
  levels : int;
  base_wcet_range : float * float;
  cost_range : float * float;
  speed_range : float * float;
  mu_fraction_range : float * float;
  gamma_range : float * float;
  deadline_factor_range : float * float;
  reduction_factor : float;
  clock_hz : float;
}

let default_params =
  { n_library = 4;
    levels = 5;
    base_wcet_range = (1.0, 20.0);
    cost_range = (1.0, 6.0);
    speed_range = (1.0, 1.75);
    mu_fraction_range = (0.01, 0.10);
    gamma_range = (7.5e-6, 2.5e-5);
    deadline_factor_range = (1.1, 2.7);
    reduction_factor = 100.0;
    clock_hz = 1e9 }

type app_spec = {
  index : int;
  n_processes : int;
  graph : Task_graph.t;
  base_wcets_ms : float array;
  node_specs : Platform_gen.node_spec array;
  gamma : float;
  mu_ms : float;
  deadline_ms : float;
}

type cell = { ser : float; hpd : float }

let library_of ?(params = default_params) cell spec =
  let tech =
    Platform_gen.tech ~reduction_factor:params.reduction_factor
      ~clock_hz:params.clock_hz ~ser_per_cycle:cell.ser ()
  in
  Array.map
    (fun node_spec ->
      Platform_gen.node_type ~tech ~hpd:cell.hpd
        ~base_wcets_ms:spec.base_wcets_ms node_spec)
    spec.node_specs

let problem_of_spec ?(params = default_params) cell spec =
  let app =
    Application.make
      ~name:(Printf.sprintf "synthetic-%03d" spec.index)
      ~graph:spec.graph ~deadline_ms:spec.deadline_ms ~gamma:spec.gamma
      ~recovery_overhead_ms:spec.mu_ms ()
  in
  Problem.make ~app ~library:(library_of ~params cell spec)

(* The deadline anchor: fault-free schedule length of a greedy mapping
   on the full architecture at minimum hardening.  Level-1 tables are
   identical in every cell (the minimum level always degrades by 1% and
   carries the whole SER scale in pfail only), so this anchor — and the
   deadline derived from it — is independent of both SER and HPD. *)
let no_fault_length ~params spec =
  let anchor_cell = { ser = 1e-12; hpd = 0.05 } in
  let provisional = { spec with deadline_ms = 1e12; gamma = 1e-9 } in
  let problem = problem_of_spec ~params anchor_cell provisional in
  let members = Array.init params.n_library Fun.id in
  let config = Ftes_core.Config.default in
  let mapping = Ftes_core.Mapping_opt.initial_mapping ~config problem ~members in
  let m = Array.length members in
  let design =
    Design.make problem ~members ~levels:(Array.make m 1)
      ~reexecs:(Array.make m 0) ~mapping
  in
  Scheduler.schedule_length problem design

let generate_spec ?(params = default_params) ~seed ~index ~n_processes () =
  let prng = Prng.create (seed + (7919 * index) + (104729 * n_processes)) in
  let graph_prng = Prng.split prng in
  let graph = Dag_gen.generate graph_prng (Dag_gen.default_params ~n:n_processes) in
  let lo_w, hi_w = params.base_wcet_range in
  let base_wcets_ms =
    Array.init n_processes (fun _ -> Prng.float_in prng lo_w hi_w)
  in
  let lo_c, hi_c = params.cost_range in
  let lo_s, hi_s = params.speed_range in
  let node_specs =
    Array.init params.n_library (fun j ->
        { Platform_gen.name = Printf.sprintf "N%d" (j + 1);
          base_cost = Float.round (Prng.float_in prng lo_c hi_c);
          speed = (if j = 0 then 1.0 else Prng.float_in prng lo_s hi_s);
          levels = params.levels })
  in
  let lo_g, hi_g = params.gamma_range in
  let gamma = Prng.float_in prng lo_g hi_g in
  let mean_wcet =
    Array.fold_left ( +. ) 0.0 base_wcets_ms /. float_of_int n_processes
  in
  let lo_m, hi_m = params.mu_fraction_range in
  let mu_ms = Prng.float_in prng lo_m hi_m *. mean_wcet in
  let spec =
    { index; n_processes; graph; base_wcets_ms; node_specs; gamma; mu_ms;
      deadline_ms = 1.0 (* placeholder until anchored below *) }
  in
  let anchor = no_fault_length ~params spec in
  let lo_d, hi_d = params.deadline_factor_range in
  let deadline_ms = anchor *. Prng.float_in prng lo_d hi_d in
  { spec with deadline_ms }

(* The population rule: the first half of the suite gets 20 processes,
   the second half 40.  It depends only on (index, count), and
   generate_spec depends only on (seed, index, n_processes), so any
   slice of the suite is generated exactly as it would be inside the
   full population — the property campaign sharding relies on. *)
let suite_processes ~count index = if index < count / 2 then 20 else 40

let suite_slice ?(params = default_params) ~count ~seed ~lo ~hi () =
  if lo < 0 || hi < lo || hi > count then
    invalid_arg
      (Printf.sprintf "Workload.suite_slice: bad range [%d, %d) of %d" lo hi
         count);
  List.init (hi - lo) (fun i ->
      let index = lo + i in
      generate_spec ~params ~seed ~index
        ~n_processes:(suite_processes ~count index) ())

let paper_suite ?(params = default_params) ?(count = 150) ~seed () =
  suite_slice ~params ~count ~seed ~lo:0 ~hi:count ()
