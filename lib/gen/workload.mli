(** The synthetic benchmark of Section 7.

    150 applications of 20 or 40 processes; WCETs of 1-20 ms on the
    fastest node without hardening; recovery overhead of 1-10% of the
    WCETs; five hardening levels; SER per cycle in
    {1e-10, 1e-11, 1e-12}; hardening performance degradation (HPD) in
    {5, 25, 50, 100}%; initial node costs of 1-6 units growing linearly
    with the hardening level; reliability goals with gamma between
    7.5e-6 and 2.5e-5 per hour.

    Deadlines are assigned {e independently of SER and HPD} (as the
    paper requires): each application's deadline is a random multiple of
    the no-fault schedule length of a greedy mapping on the full
    architecture at minimum hardening. *)

type params = {
  n_library : int;  (** node types available to the architecture search. *)
  levels : int;  (** h-versions per node. *)
  base_wcet_range : float * float;
  cost_range : float * float;
  speed_range : float * float;
  mu_fraction_range : float * float;
  gamma_range : float * float;
  deadline_factor_range : float * float;
  reduction_factor : float;
  clock_hz : float;
}

val default_params : params
(** The Section 7 values: 4 node types, 5 levels, WCET 1-20 ms, cost
    1-6, speed 1-1.75, mu 1-10%%, gamma 7.5e-6-2.5e-5, deadline factor
    calibrated once for the whole evaluation, reduction 100, 100 MHz. *)

(** One synthetic application, before the SER / HPD cell is chosen.
    Everything here — including the deadline — is cell-independent. *)
type app_spec = {
  index : int;
  n_processes : int;
  graph : Ftes_model.Task_graph.t;
  base_wcets_ms : float array;
  node_specs : Platform_gen.node_spec array;
  gamma : float;
  mu_ms : float;
  deadline_ms : float;
}

(** An experiment cell of Fig. 6: a fabrication technology (SER) and a
    hardening performance degradation. *)
type cell = { ser : float; hpd : float }

val generate_spec :
  ?params:params -> seed:int -> index:int -> n_processes:int -> unit -> app_spec
(** Deterministic in [(seed, index, n_processes)]. *)

val problem_of_spec :
  ?params:params -> cell -> app_spec -> Ftes_model.Problem.t
(** Expand a spec into the full problem tables for one cell. *)

val suite_processes : count:int -> int -> int
(** Process count of application [index] in a [count]-app suite (the
    first half gets 20, the second 40). *)

val suite_slice :
  ?params:params -> count:int -> seed:int -> lo:int -> hi:int -> unit ->
  app_spec list
(** Applications [lo..hi-1] of the [count]-app suite, bit-identical to
    the corresponding slice of {!paper_suite} — each spec depends only
    on [(seed, index, count)], never on its neighbours, so a sharded
    campaign can generate exactly its own applications.  Raises
    [Invalid_argument] on a range outside [\[0, count\]]. *)

val paper_suite : ?params:params -> ?count:int -> seed:int -> unit -> app_spec list
(** The experiment population: [count] applications (default 150), the
    first half with 20 processes and the second half with 40.
    Equals [suite_slice ~lo:0 ~hi:count]. *)
