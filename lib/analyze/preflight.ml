module Problem = Ftes_model.Problem
module Application = Ftes_model.Application
module Task_graph = Ftes_model.Task_graph
module Sfp = Ftes_sfp.Sfp
module Bound = Ftes_sfp.Bound
module Scheduler = Ftes_sched.Scheduler
module Tolerance = Ftes_util.Tolerance

type witness =
  | Task_wcet of { proc : int; min_wcet_ms : float }
  | Task_slack of { proc : int; min_length_ms : float }
  | Task_unreliable of { proc : int }
  | Critical_path of { length_ms : float; path : int list }
  | Total_work of { work_ms : float; capacity_ms : float }

type t = {
  problem : Problem.t;
  kmax : int;
  reexec : bool;
  deadline_ms : float;
  mu_ms : float;
  threshold : float;
  budget : float;
  min_wcets : float array;
  kneed : int array array array;
  task_min_length : float array;
  task_cheapest : float array;
  critical_path_ms : float;
  critical_path : int list;
  total_work_ms : float;
  capacity_ms : float;
  cost_lower_bound : float;
  sfp_cost_lower_bound : float;
  witnesses : witness list;
}

(* Every length bound below under-approximates a real schedule length
   up to the accumulation order of a handful of float additions; the
   margin keeps a bound that ties with the deadline from ever becoming
   a false infeasibility proof. *)
let prove_eps_ms = 1e-6

let c_runs = Ftes_obs.Metrics.counter "analyze.runs"

let c_bounds = Ftes_obs.Metrics.counter "analyze.bounds_derived"

let c_infeasible = Ftes_obs.Metrics.counter "analyze.infeasible"

(* A derived length lower bound proves infeasibility only when it
   clears both the verdict tolerance and the float-accumulation
   margin. *)
let overruns t ~deadline = t -. prove_eps_ms > deadline +. Tolerance.time_eps_ms

let run_with ?(kmax = Sfp.default_kmax) ~reexec problem =
  Ftes_obs.Span.with_ ~name:"analyze/preflight" @@ fun () ->
  Ftes_obs.Metrics.incr c_runs;
  let app = problem.Problem.app in
  let deadline = app.Application.deadline_ms in
  let mu = app.Application.recovery_overhead_ms in
  let n = Problem.n_processes problem in
  let lib = Problem.n_library problem in
  let threshold = Sfp.max_admissible_failure app in
  let budget = Bound.admissible_budget ~kmax app in
  let kneed =
    Array.init n (fun proc ->
        Array.init lib (fun node ->
            Array.init (Problem.levels problem node) (fun l ->
                let pf =
                  Problem.pfail problem ~node ~level:(l + 1) ~proc
                in
                match Bound.required_k_exact [| pf |] ~budget ~kmax with
                | Some k -> k
                | None -> -1)))
  in
  let min_wcets = Array.make n infinity in
  let task_min_length = Array.make n infinity in
  let task_cheapest = Array.make n infinity in
  for proc = 0 to n - 1 do
    for node = 0 to lib - 1 do
      for level = 1 to Problem.levels problem node do
        let t = Problem.wcet problem ~node ~level ~proc in
        if t < min_wcets.(proc) then min_wcets.(proc) <- t;
        let k = kneed.(proc).(node).(level - 1) in
        if k >= 0 then begin
          let len =
            if reexec then t +. (float_of_int k *. (t +. mu)) else t
          in
          if len < task_min_length.(proc) then task_min_length.(proc) <- len;
          (* Deadline-admissible on top of reliability-admissible;
             inclusion is generous (the same slop the witness test
             proves against), so a workable assignment is never
             dropped from the cost bound. *)
          if not (overruns len ~deadline) then begin
            let c = Problem.cost problem ~node ~level in
            if c < task_cheapest.(proc) then task_cheapest.(proc) <- c
          end
        end
      done
    done
  done;
  let graph = Problem.graph problem in
  let exec p = min_wcets.(p) in
  let comm _ = 0.0 in
  let critical_path_ms = Task_graph.longest_path graph ~exec ~comm in
  let critical_path = Task_graph.critical_path graph ~exec ~comm in
  let total_work_ms = Array.fold_left ( +. ) 0.0 min_wcets in
  let capacity_ms = float_of_int lib *. deadline in
  let task_witness proc =
    if
      Array.for_all
        (fun row -> Array.for_all (fun k -> k < 0) row)
        kneed.(proc)
    then Some (Task_unreliable { proc })
    else if overruns min_wcets.(proc) ~deadline then
      Some (Task_wcet { proc; min_wcet_ms = min_wcets.(proc) })
    else if overruns task_min_length.(proc) ~deadline then
      Some (Task_slack { proc; min_length_ms = task_min_length.(proc) })
    else None
  in
  let witnesses =
    List.filter_map task_witness (List.init n Fun.id)
    @ (if overruns critical_path_ms ~deadline then
         [ Critical_path { length_ms = critical_path_ms; path = critical_path } ]
       else [])
    @
    if overruns (total_work_ms /. float_of_int lib) ~deadline then
      [ Total_work { work_ms = total_work_ms; capacity_ms } ]
    else []
  in
  let cost_lower_bound =
    Array.fold_left (fun acc c -> Float.max acc c) 0.0 task_cheapest
  in
  let sfp_cost_lower_bound = Bound.cost_lower_bound ~kmax problem in
  let derived =
    Array.fold_left
      (fun acc rows ->
        Array.fold_left (fun acc row -> acc + Array.length row) acc rows)
      0 kneed
    + (3 * n) + 4
  in
  Ftes_obs.Metrics.add c_bounds derived;
  if witnesses <> [] then Ftes_obs.Metrics.incr c_infeasible;
  { problem;
    kmax;
    reexec;
    deadline_ms = deadline;
    mu_ms = mu;
    threshold;
    budget;
    min_wcets;
    kneed;
    task_min_length;
    task_cheapest;
    critical_path_ms;
    critical_path;
    total_work_ms;
    capacity_ms;
    cost_lower_bound;
    sfp_cost_lower_bound;
    witnesses }

let reexec_of_slack = function
  | Scheduler.Shared | Scheduler.Conservative | Scheduler.Dedicated -> true
  | Scheduler.Per_process _ | Scheduler.Checkpointed _ -> false

let run ?kmax ?(slack = Scheduler.Shared) problem =
  run_with ?kmax ~reexec:(reexec_of_slack slack) problem

let feasible t = t.witnesses = []

let witness_to_string problem w =
  let app = problem.Problem.app in
  let name p = Application.process_name app p in
  let deadline = app.Application.deadline_ms in
  match w with
  | Task_wcet { proc; min_wcet_ms } ->
      Printf.sprintf
        "process %s: fastest WCET %.2f ms alone overruns the %.2f ms deadline"
        (name proc) min_wcet_ms deadline
  | Task_slack { proc; min_length_ms } ->
      Printf.sprintf
        "process %s: every reliability-admissible assignment needs >= %.2f \
         ms with its re-execution slack, beyond the %.2f ms deadline"
        (name proc) min_length_ms deadline
  | Task_unreliable { proc } ->
      Printf.sprintf
        "process %s: no (node, level) pair reaches the reliability goal \
         within the re-execution bound"
        (name proc)
  | Critical_path { length_ms; path } ->
      Printf.sprintf
        "critical path %s needs %.2f ms even at per-process minimum WCETs, \
         beyond the %.2f ms deadline"
        (String.concat " -> " (List.map name path))
        length_ms deadline
  | Total_work { work_ms; capacity_ms } ->
      Printf.sprintf
        "total minimum work %.2f ms exceeds the full library's %.2f ms \
         capacity within the deadline"
        work_ms capacity_ms

(* --- warm-start reuse -----------------------------------------------

   A report derived for a base problem can serve a perturbed problem
   when the perturbation only tightens: the per-cell [kneed] values were
   computed against a budget at least as loose as the perturbed one, so
   they under-approximate the required re-executions, and every length
   lower bound built from them stays a lower bound (the WCETs the
   oracles read come from [t.problem], which [retarget] swaps to the
   perturbed instance).  {!Ftes_whatif.Delta.cannot_weaken} is the
   caller-side gate; [recheck] then re-verifies the stored infeasibility
   witnesses arithmetically — re-checked, not re-derived — against the
   perturbed tables. *)

let recheck t problem =
  let app = problem.Problem.app in
  let deadline = app.Application.deadline_ms in
  let mu = app.Application.recovery_overhead_ms in
  let n = Problem.n_processes problem in
  let lib = Problem.n_library problem in
  let budget = Bound.admissible_budget ~kmax:t.kmax app in
  let min_wcet proc =
    let best = ref infinity in
    for node = 0 to lib - 1 do
      for level = 1 to Problem.levels problem node do
        let w = Problem.wcet problem ~node ~level ~proc in
        if w < !best then best := w
      done
    done;
    !best
  in
  let min_length proc =
    (* Shortest reliability-admissible single-task length, re-execution
       slack included — the [Task_slack] derivation replayed on the
       perturbed tables. *)
    let best = ref infinity in
    for node = 0 to lib - 1 do
      for level = 1 to Problem.levels problem node do
        let pf = Problem.pfail problem ~node ~level ~proc in
        match Bound.required_k_exact [| pf |] ~budget ~kmax:t.kmax with
        | Some k ->
            let w = Problem.wcet problem ~node ~level ~proc in
            let len =
              if t.reexec then w +. (float_of_int k *. (w +. mu)) else w
            in
            if len < !best then best := len
        | None -> ()
      done
    done;
    !best
  in
  let holds = function
    | Task_unreliable { proc } ->
        proc >= 0 && proc < n
        &&
        let reachable = ref false in
        for node = 0 to lib - 1 do
          for level = 1 to Problem.levels problem node do
            let pf = Problem.pfail problem ~node ~level ~proc in
            if Bound.required_k_exact [| pf |] ~budget ~kmax:t.kmax <> None
            then reachable := true
          done
        done;
        not !reachable
    | Task_wcet { proc; _ } ->
        proc >= 0 && proc < n && overruns (min_wcet proc) ~deadline
    | Task_slack { proc; _ } ->
        proc >= 0 && proc < n && overruns (min_length proc) ~deadline
    | Critical_path { path; _ } ->
        (* The stored path is a dependency chain, so the sum of its
           per-process minimum WCETs lower-bounds any schedule whatever
           the true critical path now is. *)
        List.for_all (fun p -> p >= 0 && p < n) path
        &&
        let len = List.fold_left (fun acc p -> acc +. min_wcet p) 0.0 path in
        overruns len ~deadline
    | Total_work _ ->
        let work = ref 0.0 in
        for proc = 0 to n - 1 do
          work := !work +. min_wcet proc
        done;
        overruns (!work /. float_of_int lib) ~deadline
  in
  List.for_all holds t.witnesses

let retarget t problem = { t with problem }

(* --- pruning oracles --- *)

let node_required_reexecs t ~probs =
  Bound.required_k_exact probs ~budget:t.budget ~kmax:t.kmax

let node_goal_unreachable t ~probs = node_required_reexecs t ~probs = None

let architecture_check t ~members =
  let problem = t.problem in
  let n = Problem.n_processes problem in
  let m = Array.length members in
  let min_t = Array.make n infinity in
  let unreliable = ref None in
  let worst_len = ref 0.0 in
  (try
     for p = 0 to n - 1 do
       let best_len = ref infinity in
       Array.iter
         (fun node ->
           for level = 1 to Problem.levels problem node do
             let tq = Problem.wcet problem ~node ~level ~proc:p in
             if tq < min_t.(p) then min_t.(p) <- tq;
             let k = t.kneed.(p).(node).(level - 1) in
             if k >= 0 then begin
               let len =
                 if t.reexec then tq +. (float_of_int k *. (tq +. t.mu_ms))
                 else tq
               in
               if len < !best_len then best_len := len
             end
           done)
         members;
       if !best_len = infinity then begin
         unreliable := Some p;
         raise Exit
       end;
       if !best_len > !worst_len then worst_len := !best_len
     done
   with Exit -> ());
  match !unreliable with
  | Some p -> `Unreliable p
  | None ->
      let cp =
        Task_graph.longest_path (Problem.graph problem)
          ~exec:(fun p -> min_t.(p))
          ~comm:(fun _ -> 0.0)
      in
      let work = Array.fold_left ( +. ) 0.0 min_t in
      let lb = Float.max !worst_len (Float.max cp (work /. float_of_int m)) in
      if overruns lb ~deadline:t.deadline_ms then `Deadline lb else `Feasible

(* Two library nodes are interchangeable exactly when every table the
   rest of the stack ever reads agrees: same number of h-versions and,
   per version, the same cost and the same WCET / failure-probability
   column over the processes.  Equality is on the float values (never
   NaN in a validated problem), so interchangeable nodes produce
   bit-identical schedules, SFP verdicts and costs. *)
let node_key problem j =
  let n = Problem.n_processes problem in
  List.init (Problem.levels problem j) (fun l ->
      let level = l + 1 in
      ( Problem.cost problem ~node:j ~level,
        List.init n (fun proc ->
            ( Problem.wcet problem ~node:j ~level ~proc,
              Problem.pfail problem ~node:j ~level ~proc )) ))

let canonical_nodes problem =
  let keys = Array.init (Problem.n_library problem) (node_key problem) in
  Array.init (Array.length keys) (fun j ->
      let rec find j' = if keys.(j') = keys.(j) then j' else find (j' + 1) in
      find 0)

let completion_cost_lower_bound t ~prefix ~first_open =
  let problem = t.problem in
  let lib = Problem.n_library problem in
  if first_open < 0 || first_open > lib then
    invalid_arg "Preflight.completion_cost_lower_bound: first_open out of range";
  Array.iteri
    (fun i j ->
      if j < 0 || j >= first_open || (i > 0 && j <= prefix.(i - 1)) then
        invalid_arg
          "Preflight.completion_cost_lower_bound: prefix must be strictly \
           increasing below first_open")
    prefix;
  let n = Problem.n_processes problem in
  let admissible p j h = t.kneed.(p).(j).(h - 1) >= 0 in
  let node_admits p j =
    let levels = Problem.levels problem j in
    let rec go h = h <= levels && (admissible p j h || go (h + 1)) in
    go 1
  in
  (* Every chosen member contributes at least its cheapest h-version;
     a process no chosen member can host within the reliability budget
     forces at least one more node, admissible for it, from the still
     addable suffix — its cost is bounded by the cheapest admissible
     h-version there, and one node may serve every such process, hence
     the max. *)
  let base =
    Array.fold_left
      (fun acc j -> acc +. Problem.min_cost problem ~node:j)
      0.0 prefix
  in
  let extra = ref 0.0 in
  for p = 0 to n - 1 do
    if not (Array.exists (node_admits p) prefix) then begin
      let cheapest = ref infinity in
      for j = first_open to lib - 1 do
        for h = 1 to Problem.levels problem j do
          if admissible p j h then
            cheapest :=
              Float.min !cheapest (Problem.cost problem ~node:j ~level:h)
        done
      done;
      extra := Float.max !extra !cheapest
    end
  done;
  base +. !extra
