(** Pre-flight static analysis of a problem instance.

    Derives, in milliseconds and without running any optimizer, a set
    of {e necessary} conditions every feasible design must satisfy:

    - per-task schedulability: the fastest WCET of each process over
      the whole library must fit the deadline, and — under the
      re-execution slack policies — so must the shortest
      [t + k * (t + mu)] over its reliability-admissible assignments;
    - aggregate schedulability: the critical path under per-process
      minimum WCETs, and the total minimum work against the capacity
      of the full library;
    - reliability: for every process some [(node, level)] pair must
      reach the goal within [kmax] re-executions
      ({!Ftes_sfp.Bound.required_k_exact} at the pessimistic
      {!Ftes_sfp.Bound.admissible_budget}, which never excludes a
      workable assignment);
    - a cost lower bound: the cheapest deadline- and
      reliability-admissible h-version of the most demanding process.

    Every violated condition carries a concrete {!witness}.  The same
    tables double as sound pruning oracles for the design-space walk
    ({!node_required_reexecs}, {!architecture_check}): each test is
    one-sided, so consuming the report skips only assignments the
    unpruned search would have rejected anyway — results are
    bit-identical (certified by the test-suite and the analyze bench).

    A report is emitted as a machine-checkable {!Certificate} and
    re-derived offline by the [analyze/*] rules of [Ftes_verify]. *)

type witness =
  | Task_wcet of { proc : int; min_wcet_ms : float }
      (** even the fastest h-version of [proc] overruns the deadline. *)
  | Task_slack of { proc : int; min_length_ms : float }
      (** every reliability-admissible assignment of [proc] needs [t]
          (plus [k * (t + mu)] recovery slack under a re-execution
          policy) beyond the deadline. *)
  | Task_unreliable of { proc : int }
      (** no [(node, level)] pair reaches the reliability goal for
          [proc] within [kmax] re-executions. *)
  | Critical_path of { length_ms : float; path : int list }
      (** the task-graph critical path under per-process minimum WCETs
          (and zero transmission, the single-node optimum) exceeds the
          deadline. *)
  | Total_work of { work_ms : float; capacity_ms : float }
      (** the summed minimum WCETs exceed what the full library can
          execute within the deadline. *)

type t = {
  problem : Ftes_model.Problem.t;
  kmax : int;
  reexec : bool;
      (** whether the slack policy re-runs whole processes
          ([Shared] / [Conservative] / [Dedicated]), enabling the
          [t + k * (t + mu)] task bounds. *)
  deadline_ms : float;
  mu_ms : float;
  threshold : float;  (** {!Ftes_sfp.Sfp.max_admissible_failure}. *)
  budget : float;  (** {!Ftes_sfp.Bound.admissible_budget} at [kmax]. *)
  min_wcets : float array;
      (** per process: fastest WCET over every [(node, level)]. *)
  kneed : int array array array;
      (** [kneed.(proc).(node).(level - 1)]: least re-execution count
          within the budget for the singleton assignment, [-1] when
          even [kmax] is not enough.  A sound lower bound on the
          re-executions of any feasible node hosting the process. *)
  task_min_length : float array;
      (** per process: min over admissible [(node, level)] of
          [t + kneed * (t + mu)] under a re-execution policy ([t]
          alone otherwise); [infinity] when nothing is admissible. *)
  task_cheapest : float array;
      (** per process: cheapest [Cjh] among assignments that are
          reliability-admissible and fit the deadline; [infinity] when
          none is. *)
  critical_path_ms : float;
  critical_path : int list;
  total_work_ms : float;
  capacity_ms : float;  (** [n_library * deadline]. *)
  cost_lower_bound : float;
      (** max over processes of {!t.task_cheapest} — deadline-aware,
        hence at least {!t.sfp_cost_lower_bound}; [infinity] when the
        problem is proven infeasible through a task witness. *)
  sfp_cost_lower_bound : float;
      (** {!Ftes_sfp.Bound.cost_lower_bound}: the reliability-only
          bound, recorded for the certificate. *)
  witnesses : witness list;  (** empty iff no condition is violated. *)
}

val prove_eps_ms : float
(** Absolute margin (1e-6 ms) subtracted from every derived length
    bound before comparing against the deadline: the bound and the
    scheduler accumulate the same WCETs in different orders, so a few
    float crumbs must never turn a tight instance into a false
    infeasibility proof. *)

val run :
  ?kmax:int -> ?slack:Ftes_sched.Scheduler.slack_mode ->
  Ftes_model.Problem.t -> t
(** Analyze a problem under the config's [kmax] (default
    {!Ftes_sfp.Sfp.default_kmax}) and slack policy (default [Shared]).
    Emits the [analyze/preflight] span and bumps
    [analyze.bounds_derived] / [analyze.infeasible]. *)

val run_with : ?kmax:int -> reexec:bool -> Ftes_model.Problem.t -> t
(** Policy-bucket entry used by the offline audit: {!run} forwards
    here with [reexec] set for the whole-process re-execution slack
    modes. *)

val reexec_of_slack : Ftes_sched.Scheduler.slack_mode -> bool
(** The policy bucket {!run} analyzes a slack mode under: [true] for
    the whole-process re-execution policies ([Shared] / [Conservative]
    / [Dedicated]).  Consumers validate a report against their config
    through this before pruning with it. *)

val feasible : t -> bool
(** [witnesses = []] — no necessary condition is violated.  (The
    problem may still be infeasible; the analysis is one-sided.) *)

val witness_to_string : Ftes_model.Problem.t -> witness -> string

(** {2 Warm-start reuse}

    A report can outlive its problem across a {e tightening}
    perturbation (deadline or period decreased, gamma decreased, WCETs
    or failure probabilities raised — the caller proves this via
    {!Ftes_whatif.Delta.cannot_weaken}): the [kneed] table was derived
    under a budget at least as loose as the perturbed one, so its
    entries under-approximate the required re-executions and every
    length bound built from them remains a valid lower bound.  The
    pruning oracles stay one-sided under such reuse, so warm walks
    remain bit-identical to cold ones. *)

val recheck : t -> Ftes_model.Problem.t -> bool
(** [recheck t perturbed] arithmetically re-verifies each stored
    infeasibility witness against the perturbed problem's tables —
    re-checked, not re-derived.  [true] when every witness still
    proves infeasibility there (vacuously for a feasible report).
    Only meaningful when the library shape and process count are
    unchanged; the caller's tightening gate guarantees that. *)

val retarget : t -> Ftes_model.Problem.t -> t
(** [retarget t perturbed] rebinds the report to the perturbed problem
    (the oracles read WCETs through it) while keeping every derived
    bound.  Sound only under the tightening premise above; the
    unchanged [kmax] and policy bucket still must match the consuming
    config, as {!Ftes_core.Redundancy_opt.validate_preflight}
    enforces. *)

(** {2 Pruning oracles}

    Sound one-sided tests the optimizer consults mid-walk; every
    "dead" answer means the full evaluation provably fails. *)

val node_required_reexecs : t -> probs:float array -> int option
(** Least [k <= kmax] bringing a node with these process failure
    probabilities within the admissible budget — a lower bound on the
    re-execution count of any design in which such a node meets the
    goal.  [None] proves the node can never meet it. *)

val node_goal_unreachable : t -> probs:float array -> bool
(** [node_required_reexecs = None]: {!Ftes_core.Re_execution_opt}
    would return [None] for any design containing this node vector. *)

val architecture_check :
  t -> members:int array -> [ `Feasible | `Unreliable of int | `Deadline of float ]
(** Necessary conditions specialized to one architecture (library
    subset): [`Unreliable p] when process [p] has no admissible
    [(member, level)] pair, [`Deadline lb] when a schedule-length
    lower bound (critical path and total work over member-minimal
    WCETs, plus the per-task re-execution bound under a re-execution
    policy) provably exceeds the deadline.  Either verdict implies the
    mapping/hardening search over this architecture cannot produce a
    schedulable and reliable design. *)

val canonical_nodes : Ftes_model.Problem.t -> int array
(** [canonical_nodes problem] maps every library node to the smallest
    node with exactly the same tables — same number of h-versions and,
    per version, equal cost, WCET column and failure-probability column
    (float equality; interchangeable nodes therefore yield bit-identical
    schedules and SFP verdicts).  [canonical.(j) = j] when [j] is the
    first of its identity class.  The exact search ({!Ftes_bnb}) keeps
    only architectures whose chosen members form a prefix of each class;
    the [bnb/*] audit re-derives the classes through this function. *)

val completion_cost_lower_bound :
  t -> prefix:int array -> first_open:int -> float
(** Lower bound on the architecture cost of any reliability-feasible
    design whose members include all of [prefix] plus, optionally, nodes
    [>= first_open]: each chosen member costs at least its cheapest
    h-version, and a process that no member of [prefix] can host within
    the re-execution budget ({!t.kneed}) forces one more node admissible
    for it from the open suffix.  [infinity] when some process is
    admissible nowhere in [prefix] or the suffix — no completion can
    meet the reliability goal.  Raises [Invalid_argument] unless
    [prefix] is strictly increasing with entries below [first_open]
    and [0 <= first_open <= n_library]. *)
