module Json = Ftes_util.Json
open Json

let schema_version = 1

(* "no admissible assignment" bounds are [infinity] in memory; JSON has
   no infinities, so they travel as null. *)
let opt_number = Ftes_util.Versioned_json.opt_number

let witness_to_json (w : Preflight.witness) =
  match w with
  | Preflight.Task_wcet { proc; min_wcet_ms } ->
      Object
        [ ("kind", String "task-wcet");
          ("proc", Number (float_of_int proc));
          ("min_wcet_ms", Number min_wcet_ms) ]
  | Preflight.Task_slack { proc; min_length_ms } ->
      Object
        [ ("kind", String "task-slack");
          ("proc", Number (float_of_int proc));
          ("min_length_ms", Number min_length_ms) ]
  | Preflight.Task_unreliable { proc } ->
      Object
        [ ("kind", String "task-unreliable");
          ("proc", Number (float_of_int proc)) ]
  | Preflight.Critical_path { length_ms; path } ->
      Object
        [ ("kind", String "critical-path");
          ("length_ms", Number length_ms);
          ("path", List (List.map (fun p -> Number (float_of_int p)) path)) ]
  | Preflight.Total_work { work_ms; capacity_ms } ->
      Object
        [ ("kind", String "total-work");
          ("work_ms", Number work_ms);
          ("capacity_ms", Number capacity_ms) ]

let to_json (c : Certificate.t) =
  let s = c.Certificate.summary in
  let task proc =
    Object
      [ ("min_wcet_ms", Number c.Certificate.min_wcets.(proc));
        ("min_length_ms", opt_number c.Certificate.task_min_length.(proc));
        ("cheapest_cost", opt_number c.Certificate.task_cheapest.(proc));
        ( "kneed",
          List
            (Array.to_list
               (Array.map
                  (fun row ->
                    List
                      (Array.to_list
                         (Array.map
                            (fun k -> Number (float_of_int k))
                            row)))
                  c.Certificate.kneed.(proc))) ) ]
  in
  Object
    [ Ftes_util.Versioned_json.field schema_version;
      ( "problem",
        Object
          [ ("name", String s.Certificate.name);
            ("n_processes", Number (float_of_int s.Certificate.n_processes));
            ("n_library", Number (float_of_int s.Certificate.n_library));
            ("deadline_ms", Number s.Certificate.deadline_ms);
            ("period_ms", Number s.Certificate.period_ms);
            ("gamma", Number s.Certificate.gamma);
            ("mu_ms", Number s.Certificate.mu_ms) ] );
      ( "premises",
        Object
          [ ("kmax", Number (float_of_int c.Certificate.kmax));
            ("reexec", Bool c.Certificate.reexec);
            ("threshold", Number c.Certificate.threshold);
            ("budget", Number c.Certificate.budget) ] );
      ( "bounds",
        Object
          [ ("critical_path_ms", Number c.Certificate.critical_path_ms);
            ( "critical_path",
              List
                (List.map
                   (fun p -> Number (float_of_int p))
                   c.Certificate.critical_path) );
            ("total_work_ms", Number c.Certificate.total_work_ms);
            ("capacity_ms", Number c.Certificate.capacity_ms);
            ("cost_lower_bound", opt_number c.Certificate.cost_lower_bound);
            ( "sfp_cost_lower_bound",
              opt_number c.Certificate.sfp_cost_lower_bound ) ] );
      ( "tasks",
        List (List.init (Array.length c.Certificate.min_wcets) task) );
      ("feasible", Bool c.Certificate.feasible);
      ( "witnesses",
        List (List.map witness_to_json c.Certificate.witnesses) ) ]

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let opt_float = Ftes_util.Versioned_json.opt_float

let int_list json =
  let* items = to_list json in
  map_result to_int items

let witness_of_json json =
  let* kind = Result.bind (member "kind" json) to_string_value in
  let proc () = Result.bind (member "proc" json) to_int in
  match kind with
  | "task-wcet" ->
      let* proc = proc () in
      let* min_wcet_ms = Result.bind (member "min_wcet_ms" json) to_float in
      Ok (Preflight.Task_wcet { proc; min_wcet_ms })
  | "task-slack" ->
      let* proc = proc () in
      let* min_length_ms =
        Result.bind (member "min_length_ms" json) to_float
      in
      Ok (Preflight.Task_slack { proc; min_length_ms })
  | "task-unreliable" ->
      let* proc = proc () in
      Ok (Preflight.Task_unreliable { proc })
  | "critical-path" ->
      let* length_ms = Result.bind (member "length_ms" json) to_float in
      let* path = Result.bind (member "path" json) int_list in
      Ok (Preflight.Critical_path { length_ms; path })
  | "total-work" ->
      let* work_ms = Result.bind (member "work_ms" json) to_float in
      let* capacity_ms = Result.bind (member "capacity_ms" json) to_float in
      Ok (Preflight.Total_work { work_ms; capacity_ms })
  | other -> Error (Printf.sprintf "witness: unknown kind %S" other)

let summary_of_json json =
  let* name = Result.bind (member "name" json) to_string_value in
  let* n_processes = Result.bind (member "n_processes" json) to_int in
  let* n_library = Result.bind (member "n_library" json) to_int in
  let* deadline_ms = Result.bind (member "deadline_ms" json) to_float in
  let* period_ms = Result.bind (member "period_ms" json) to_float in
  let* gamma = Result.bind (member "gamma" json) to_float in
  let* mu_ms = Result.bind (member "mu_ms" json) to_float in
  Ok
    { Certificate.name;
      n_processes;
      n_library;
      deadline_ms;
      period_ms;
      gamma;
      mu_ms }

let task_of_json json =
  let* min_wcet_ms = Result.bind (member "min_wcet_ms" json) to_float in
  let* min_length_ms = Result.bind (member "min_length_ms" json) opt_float in
  let* cheapest = Result.bind (member "cheapest_cost" json) opt_float in
  let* kneed_rows = Result.bind (member "kneed" json) to_list in
  let* kneed = map_result int_list kneed_rows in
  let kneed = Array.of_list (List.map Array.of_list kneed) in
  Ok (min_wcet_ms, min_length_ms, cheapest, kneed)

let default_warn msg = Printf.eprintf "certificate_io: warning: %s\n%!" msg

let of_json ?(on_warning = default_warn) json =
  let* () =
    Ftes_util.Versioned_json.check ~what:"certificate" ~accept_v0:false
      ~on_warning ~current:schema_version json
  in
  let* summary = Result.bind (member "problem" json) summary_of_json in
  let* premises = member "premises" json in
  let* kmax = Result.bind (member "kmax" premises) to_int in
  let* reexec = Result.bind (member "reexec" premises) to_bool in
  let* threshold = Result.bind (member "threshold" premises) to_float in
  let* budget = Result.bind (member "budget" premises) to_float in
  let* bounds = member "bounds" json in
  let* critical_path_ms =
    Result.bind (member "critical_path_ms" bounds) to_float
  in
  let* critical_path =
    Result.bind (member "critical_path" bounds) int_list
  in
  let* total_work_ms = Result.bind (member "total_work_ms" bounds) to_float in
  let* capacity_ms = Result.bind (member "capacity_ms" bounds) to_float in
  let* cost_lower_bound =
    Result.bind (member "cost_lower_bound" bounds) opt_float
  in
  let* sfp_cost_lower_bound =
    Result.bind (member "sfp_cost_lower_bound" bounds) opt_float
  in
  let* task_items = Result.bind (member "tasks" json) to_list in
  let* tasks = map_result task_of_json task_items in
  let tasks = Array.of_list tasks in
  let* feasible = Result.bind (member "feasible" json) to_bool in
  let* witness_items = Result.bind (member "witnesses" json) to_list in
  let* witnesses = map_result witness_of_json witness_items in
  if Array.length tasks <> summary.Certificate.n_processes then
    Error
      (Printf.sprintf "tasks: %d entries for %d processes"
         (Array.length tasks) summary.Certificate.n_processes)
  else
    Ok
      { Certificate.summary;
        kmax;
        reexec;
        threshold;
        budget;
        min_wcets = Array.map (fun (w, _, _, _) -> w) tasks;
        kneed = Array.map (fun (_, _, _, k) -> k) tasks;
        task_min_length = Array.map (fun (_, l, _, _) -> l) tasks;
        task_cheapest = Array.map (fun (_, _, c, _) -> c) tasks;
        critical_path_ms;
        critical_path;
        total_work_ms;
        capacity_ms;
        cost_lower_bound;
        sfp_cost_lower_bound;
        feasible;
        witnesses }

let to_string c = Json.to_string (to_json c)

let of_string ?on_warning s =
  Result.bind (Json.of_string s) (of_json ?on_warning)

let save path c =
  Ftes_util.Atomic_file.write_string path (to_string c ^ "\n")

let load ?on_warning path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string ?on_warning contents
  | exception Sys_error e -> Error e
