(** JSON (de)serialization of branch-and-bound optimality certificates.

    {v
    {
      "schema_version": 1,
      "problem": { "name": "cc", "n_processes": 6, ... },
      "premises": { "kmax": 12, "search_space": 582.0,
                    "represented_subsets": 3.0 },
      "costs": { "heuristic": 34.0, "optimal": 30.0 },
      "incumbent": { "members": [...], "levels": [...],
                     "reexecs": [...], "mapping": [...],
                     "cost": 30.0, "schedule_length_ms": ... },
      "counters": { "expanded": ..., "closed": ..., ... },
      "prunes": [ { "kind": "cost-bound", ... }, ... ]
    }
    v}

    Unbounded costs ([infinity], meaning "no solution on that side")
    are encoded as JSON [null]; an infeasible run has a [null]
    incumbent.

    {2 Versioning}

    Mirrors {!Certificate_io} / [Ftes_model.Problem_io]: writers stamp
    {!schema_version} (currently 1); readers accept version 1, treat a
    document without the field as the deprecated v0 format (reported
    through [on_warning]) and reject any other version. *)

val schema_version : int

val to_json : Bnb_certificate.t -> Ftes_util.Json.t

val of_json :
  ?on_warning:(string -> unit) ->
  Ftes_util.Json.t ->
  (Bnb_certificate.t, string) result

val to_string : Bnb_certificate.t -> string

val of_string :
  ?on_warning:(string -> unit) ->
  string ->
  (Bnb_certificate.t, string) result

val save : string -> Bnb_certificate.t -> unit
(** Write to a file (overwrites). *)

val load :
  ?on_warning:(string -> unit) ->
  string ->
  (Bnb_certificate.t, string) result
(** Read and parse a file; I/O errors are reported as [Error]. *)
