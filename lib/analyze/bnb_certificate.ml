type incumbent = {
  members : int array;
  levels : int array;
  reexecs : int array;
  mapping : int array;
  cost : float;
  schedule_length_ms : float;
}

type arch_verdict = Unreliable of int | Deadline of float

type prune =
  | Cost_bound of {
      prefix : int array;
      lower_bound : float;
      incumbent_cost : float;
    }
  | Arch_infeasible of {
      prefix : int array;
      subtree : bool;
      verdict : arch_verdict;
    }
  | Symmetry of { prefix : int array; skipped : int; canonical : int }

type counters = {
  expanded : int;
  closed : int;
  evaluated : int;
  pruned_cost : int;
  pruned_arch : int;
  pruned_symmetry : int;
  pruned_levels : int;
  pruned_mappings : int;
}

type t = {
  summary : Certificate.summary;
  kmax : int;
  search_space : float;
  represented_subsets : float;
  heuristic_cost : float;
  optimal_cost : float;
  incumbent : incumbent option;
  counters : counters;
  prunes : prune list;
}

let of_run ~problem ~kmax ~search_space ~represented_subsets ~heuristic_cost
    ~incumbent ~counters ~prunes =
  { summary = Certificate.summary_of_problem problem;
    kmax;
    search_space;
    represented_subsets;
    heuristic_cost;
    optimal_cost =
      (match incumbent with Some i -> i.cost | None -> infinity);
    incumbent;
    counters;
    prunes }

let gap t =
  if Float.is_finite t.heuristic_cost && Float.is_finite t.optimal_cost
     && t.optimal_cost > 0.0
  then Some ((t.heuristic_cost -. t.optimal_cost) /. t.optimal_cost)
  else None

let members_to_string prefix =
  "{"
  ^ String.concat "," (List.map string_of_int (Array.to_list prefix))
  ^ "}"

let prune_to_string = function
  | Cost_bound { prefix; lower_bound; incumbent_cost } ->
      Printf.sprintf "cost-bound below %s: completions cost >= %g > incumbent %g"
        (members_to_string prefix) lower_bound incumbent_cost
  | Arch_infeasible { prefix; subtree; verdict = Unreliable proc } ->
      Printf.sprintf "%s %s: process %d has no admissible assignment"
        (if subtree then "subtree below" else "architecture")
        (members_to_string prefix) proc
  | Arch_infeasible { prefix; subtree; verdict = Deadline lb } ->
      Printf.sprintf "%s %s: schedule length >= %g ms exceeds the deadline"
        (if subtree then "subtree below" else "architecture")
        (members_to_string prefix) lb
  | Symmetry { prefix; skipped; canonical } ->
      Printf.sprintf
        "subtree %s+{%d} dominated: node %d is identical to unchosen node %d"
        (members_to_string prefix) skipped skipped canonical
