(** Machine-checkable optimality certificate of one exact
    branch-and-bound run ([Ftes_bnb]).

    The certificate freezes the incumbent the search converged to, the
    search counters, and one premise per pruned subtree — everything an
    offline checker needs to confirm, from the problem alone, that the
    un-enumerated part of the design space cannot contain a better
    design.  The [bnb/*] rules of [Ftes_verify] audit it: the incumbent
    is re-costed, re-scheduled and re-checked against the reliability
    goal; every prune premise is re-derived; and the premises together
    with the evaluated architectures must cover the whole architecture
    lattice exactly once (the coverage law).

    The payload is pure data: loading a certificate never recomputes
    anything.  It lives below [Ftes_verify] so the verifier can audit
    it without depending on the search engine. *)

type incumbent = {
  members : int array;
  levels : int array;
  reexecs : int array;
  mapping : int array;
  cost : float;  (** architecture cost of the design. *)
  schedule_length_ms : float;
}
(** The proven-optimal design, flattened (re-validated through
    [Design.make] when audited). *)

type arch_verdict =
  | Unreliable of int
      (** process with no admissible [(member, level)] pair. *)
  | Deadline of float  (** schedule-length lower bound, in ms. *)

type prune =
  | Cost_bound of {
      prefix : int array;
          (** chosen members (strictly increasing); [[||]] = the root. *)
      lower_bound : float;
          (** completion-cost lower bound over the subtree. *)
      incumbent_cost : float;
          (** prune reference at prune time (never below the final
              optimum). *)
    }
      (** the whole subtree below [prefix] (architectures extending it
          with higher-indexed nodes) costs more than the incumbent. *)
  | Arch_infeasible of {
      prefix : int array;
      subtree : bool;
          (** [true]: the verdict holds for the union of [prefix] and
              every still-addable node, hence for each architecture of
              the subtree; [false]: it holds for [prefix] as one exact
              architecture (its own mapping search was skipped). *)
      verdict : arch_verdict;
    }
  | Symmetry of {
      prefix : int array;
      skipped : int;  (** the extension node not branched on. *)
      canonical : int;
          (** smaller library node with bitwise-identical WCET / cost /
              failure-probability columns, absent from [prefix] — so
              every architecture of the skipped subtree has an
              equivalent canonical representative elsewhere. *)
    }

type counters = {
  expanded : int;  (** prefixes popped from the frontier and branched. *)
  closed : int;  (** complete architectures whose mapping space ran. *)
  evaluated : int;  (** (levels, mapping) candidates fully evaluated. *)
  pruned_cost : int;  (** [Cost_bound] subtree prunes. *)
  pruned_arch : int;  (** [Arch_infeasible] prunes (both scopes). *)
  pruned_symmetry : int;  (** [Symmetry] edge skips. *)
  pruned_levels : int;
      (** hardening vectors cut inside closed architectures (by the
          architecture-cost test or a reliability-dead level choice). *)
  pruned_mappings : int;
      (** mapping candidates cut inside closed architectures (by the
          per-slot load lower bound or a reliability-dead digit),
          counted in skipped candidates. *)
}

type t = {
  summary : Certificate.summary;  (** the analyzed problem's shape. *)
  kmax : int;  (** re-execution cap the search ran under. *)
  search_space : float;
      (** total (architecture, levels, mapping) candidates. *)
  represented_subsets : float;
      (** architectures the closed ones stand for once symmetric
          images are counted back in
          ({!Ftes_util.Symmetric.binomial} per identity class). *)
  heuristic_cost : float;
      (** the greedy walk's cost (the seed incumbent); [infinity] when
          the heuristic found nothing. *)
  optimal_cost : float;
      (** the proven optimum; [infinity] = proven infeasible. *)
  incumbent : incumbent option;  (** present iff [optimal_cost] finite. *)
  counters : counters;
  prunes : prune list;  (** in the order the prunes fired. *)
}

val of_run :
  problem:Ftes_model.Problem.t ->
  kmax:int ->
  search_space:float ->
  represented_subsets:float ->
  heuristic_cost:float ->
  incumbent:incumbent option ->
  counters:counters ->
  prunes:prune list ->
  t
(** Freeze a finished run ([optimal_cost] is derived from
    [incumbent]). *)

val gap : t -> float option
(** Relative optimality gap of the heuristic,
    [(heuristic - optimal) / optimal] — [None] when either side is
    unbounded (no heuristic solution / proven infeasible), [Some 0.]
    when the heuristic was optimal. *)

val prune_to_string : prune -> string
(** One-line rendering for reports. *)
