(** JSON (de)serialization of pre-flight certificates.

    {v
    {
      "schema_version": 1,
      "problem": { "name": "cc", "n_processes": 32, ... },
      "premises": { "kmax": 12, "reexec": true,
                    "threshold": ..., "budget": ... },
      "bounds": { "critical_path_ms": ..., "critical_path": [...],
                  "total_work_ms": ..., "capacity_ms": ...,
                  "cost_lower_bound": ...,
                  "sfp_cost_lower_bound": ... },
      "tasks": [ { "min_wcet_ms": ..., "min_length_ms": ...,
                   "cheapest_cost": ..., "kneed": [[...], ...] }, ... ],
      "feasible": true,
      "witnesses": [ { "kind": "critical-path", ... }, ... ]
    }
    v}

    Unbounded values ([infinity], meaning "no admissible assignment")
    are encoded as JSON [null].

    {2 Versioning}

    Mirrors {!Ftes_model.Problem_io}: writers stamp {!schema_version}
    (currently 1); readers accept version 1, treat a document without
    the field as the deprecated v0 format (same payload, deprecation
    reported through [on_warning]) and reject any other version. *)

val schema_version : int

val to_json : Certificate.t -> Ftes_util.Json.t

val of_json :
  ?on_warning:(string -> unit) ->
  Ftes_util.Json.t ->
  (Certificate.t, string) result

val to_string : Certificate.t -> string

val of_string :
  ?on_warning:(string -> unit) -> string -> (Certificate.t, string) result

val save : string -> Certificate.t -> unit
(** Write to a file (overwrites). *)

val load :
  ?on_warning:(string -> unit) -> string -> (Certificate.t, string) result
(** Read and parse a file; I/O errors are reported as [Error]. *)
