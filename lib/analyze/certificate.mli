(** Machine-checkable record of one pre-flight analysis.

    A certificate freezes every bound {!Preflight.run} derived together
    with the premises it derived them under (the problem summary, the
    re-execution cap, the slack-policy bucket, the admissibility
    budget), so an offline checker can re-derive the analysis from the
    problem alone and compare field by field — the [analyze/*] rules of
    [Ftes_verify] do exactly that.  The payload is pure data: loading a
    certificate never recomputes anything. *)

type summary = {
  name : string;
  n_processes : int;
  n_library : int;
  deadline_ms : float;
  period_ms : float;
  gamma : float;
  mu_ms : float;
}
(** Identifying premises of the analyzed problem; the audit refuses to
    check a certificate against a problem with a different shape. *)

type t = {
  summary : summary;
  kmax : int;
  reexec : bool;
  threshold : float;
  budget : float;
  min_wcets : float array;
  kneed : int array array array;
  task_min_length : float array;  (** [infinity] encoded as JSON null. *)
  task_cheapest : float array;  (** [infinity] encoded as JSON null. *)
  critical_path_ms : float;
  critical_path : int list;
  total_work_ms : float;
  capacity_ms : float;
  cost_lower_bound : float;  (** [infinity] when a task witness fired. *)
  sfp_cost_lower_bound : float;
  feasible : bool;
  witnesses : Preflight.witness list;
}

val of_preflight : Preflight.t -> t

val summary_of_problem : Ftes_model.Problem.t -> summary
(** The summary {!of_preflight} records — also what the audit expects
    to find when checking a certificate against a problem. *)
