module Json = Ftes_util.Json
open Json

let schema_version = 1

(* "no solution on that side" costs are [infinity] in memory; JSON has
   no infinities, so they travel as null. *)
let opt_number = Ftes_util.Versioned_json.opt_number

let int_array a =
  List (Array.to_list (Array.map (fun i -> Number (float_of_int i)) a))

let prefix_json prefix = ("prefix", int_array prefix)

let prune_to_json (p : Bnb_certificate.prune) =
  match p with
  | Bnb_certificate.Cost_bound { prefix; lower_bound; incumbent_cost } ->
      Object
        [ ("kind", String "cost-bound");
          prefix_json prefix;
          ("lower_bound", Number lower_bound);
          ("incumbent_cost", Number incumbent_cost) ]
  | Bnb_certificate.Arch_infeasible
      { prefix; subtree; verdict = Bnb_certificate.Unreliable proc } ->
      Object
        [ ("kind", String "arch-unreliable");
          prefix_json prefix;
          ("subtree", Bool subtree);
          ("proc", Number (float_of_int proc)) ]
  | Bnb_certificate.Arch_infeasible
      { prefix; subtree; verdict = Bnb_certificate.Deadline lb } ->
      Object
        [ ("kind", String "arch-deadline");
          prefix_json prefix;
          ("subtree", Bool subtree);
          ("length_lower_bound_ms", Number lb) ]
  | Bnb_certificate.Symmetry { prefix; skipped; canonical } ->
      Object
        [ ("kind", String "symmetry");
          prefix_json prefix;
          ("skipped", Number (float_of_int skipped));
          ("canonical", Number (float_of_int canonical)) ]

let incumbent_to_json (i : Bnb_certificate.incumbent) =
  Object
    [ ("members", int_array i.Bnb_certificate.members);
      ("levels", int_array i.Bnb_certificate.levels);
      ("reexecs", int_array i.Bnb_certificate.reexecs);
      ("mapping", int_array i.Bnb_certificate.mapping);
      ("cost", Number i.Bnb_certificate.cost);
      ("schedule_length_ms", Number i.Bnb_certificate.schedule_length_ms) ]

let to_json (c : Bnb_certificate.t) =
  let s = c.Bnb_certificate.summary in
  let k = c.Bnb_certificate.counters in
  Object
    [ Ftes_util.Versioned_json.field schema_version;
      ( "problem",
        Object
          [ ("name", String s.Certificate.name);
            ("n_processes", Number (float_of_int s.Certificate.n_processes));
            ("n_library", Number (float_of_int s.Certificate.n_library));
            ("deadline_ms", Number s.Certificate.deadline_ms);
            ("period_ms", Number s.Certificate.period_ms);
            ("gamma", Number s.Certificate.gamma);
            ("mu_ms", Number s.Certificate.mu_ms) ] );
      ( "premises",
        Object
          [ ("kmax", Number (float_of_int c.Bnb_certificate.kmax));
            ("search_space", Number c.Bnb_certificate.search_space);
            ( "represented_subsets",
              Number c.Bnb_certificate.represented_subsets ) ] );
      ( "costs",
        Object
          [ ("heuristic", opt_number c.Bnb_certificate.heuristic_cost);
            ("optimal", opt_number c.Bnb_certificate.optimal_cost) ] );
      ( "incumbent",
        match c.Bnb_certificate.incumbent with
        | Some i -> incumbent_to_json i
        | None -> Null );
      ( "counters",
        Object
          [ ("expanded", Number (float_of_int k.Bnb_certificate.expanded));
            ("closed", Number (float_of_int k.Bnb_certificate.closed));
            ("evaluated", Number (float_of_int k.Bnb_certificate.evaluated));
            ( "pruned_cost",
              Number (float_of_int k.Bnb_certificate.pruned_cost) );
            ( "pruned_arch",
              Number (float_of_int k.Bnb_certificate.pruned_arch) );
            ( "pruned_symmetry",
              Number (float_of_int k.Bnb_certificate.pruned_symmetry) );
            ( "pruned_levels",
              Number (float_of_int k.Bnb_certificate.pruned_levels) );
            ( "pruned_mappings",
              Number (float_of_int k.Bnb_certificate.pruned_mappings) ) ] );
      ( "prunes",
        List (List.map prune_to_json c.Bnb_certificate.prunes) ) ]

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let opt_float = Ftes_util.Versioned_json.opt_float

let int_array_of json =
  let* items = to_list json in
  let* ints = map_result to_int items in
  Ok (Array.of_list ints)

let summary_of_json json =
  let* name = Result.bind (member "name" json) to_string_value in
  let* n_processes = Result.bind (member "n_processes" json) to_int in
  let* n_library = Result.bind (member "n_library" json) to_int in
  let* deadline_ms = Result.bind (member "deadline_ms" json) to_float in
  let* period_ms = Result.bind (member "period_ms" json) to_float in
  let* gamma = Result.bind (member "gamma" json) to_float in
  let* mu_ms = Result.bind (member "mu_ms" json) to_float in
  Ok
    { Certificate.name;
      n_processes;
      n_library;
      deadline_ms;
      period_ms;
      gamma;
      mu_ms }

let prune_of_json json =
  let* kind = Result.bind (member "kind" json) to_string_value in
  let* prefix = Result.bind (member "prefix" json) int_array_of in
  match kind with
  | "cost-bound" ->
      let* lower_bound = Result.bind (member "lower_bound" json) to_float in
      let* incumbent_cost =
        Result.bind (member "incumbent_cost" json) to_float
      in
      Ok (Bnb_certificate.Cost_bound { prefix; lower_bound; incumbent_cost })
  | "arch-unreliable" ->
      let* subtree = Result.bind (member "subtree" json) to_bool in
      let* proc = Result.bind (member "proc" json) to_int in
      Ok
        (Bnb_certificate.Arch_infeasible
           { prefix; subtree; verdict = Bnb_certificate.Unreliable proc })
  | "arch-deadline" ->
      let* subtree = Result.bind (member "subtree" json) to_bool in
      let* lb =
        Result.bind (member "length_lower_bound_ms" json) to_float
      in
      Ok
        (Bnb_certificate.Arch_infeasible
           { prefix; subtree; verdict = Bnb_certificate.Deadline lb })
  | "symmetry" ->
      let* skipped = Result.bind (member "skipped" json) to_int in
      let* canonical = Result.bind (member "canonical" json) to_int in
      Ok (Bnb_certificate.Symmetry { prefix; skipped; canonical })
  | other -> Error (Printf.sprintf "prune: unknown kind %S" other)

let incumbent_of_json json =
  let* members = Result.bind (member "members" json) int_array_of in
  let* levels = Result.bind (member "levels" json) int_array_of in
  let* reexecs = Result.bind (member "reexecs" json) int_array_of in
  let* mapping = Result.bind (member "mapping" json) int_array_of in
  let* cost = Result.bind (member "cost" json) to_float in
  let* schedule_length_ms =
    Result.bind (member "schedule_length_ms" json) to_float
  in
  Ok
    { Bnb_certificate.members;
      levels;
      reexecs;
      mapping;
      cost;
      schedule_length_ms }

let default_warn msg = Printf.eprintf "bnb_certificate_io: warning: %s\n%!" msg

let of_json ?(on_warning = default_warn) json =
  let* () =
    Ftes_util.Versioned_json.check ~what:"optimality certificate"
      ~accept_v0:false ~on_warning ~current:schema_version json
  in
  let* summary = Result.bind (member "problem" json) summary_of_json in
  let* premises = member "premises" json in
  let* kmax = Result.bind (member "kmax" premises) to_int in
  let* search_space = Result.bind (member "search_space" premises) to_float in
  let* represented_subsets =
    Result.bind (member "represented_subsets" premises) to_float
  in
  let* costs = member "costs" json in
  let* heuristic_cost = Result.bind (member "heuristic" costs) opt_float in
  let* optimal_cost = Result.bind (member "optimal" costs) opt_float in
  let* incumbent =
    match member "incumbent" json with
    | Ok Null -> Ok None
    | Ok j ->
        let* i = incumbent_of_json j in
        Ok (Some i)
    | Error e -> Error e
  in
  let* counters = member "counters" json in
  let field name = Result.bind (member name counters) to_int in
  let* expanded = field "expanded" in
  let* closed = field "closed" in
  let* evaluated = field "evaluated" in
  let* pruned_cost = field "pruned_cost" in
  let* pruned_arch = field "pruned_arch" in
  let* pruned_symmetry = field "pruned_symmetry" in
  let* pruned_levels = field "pruned_levels" in
  let* pruned_mappings = field "pruned_mappings" in
  let* prune_items = Result.bind (member "prunes" json) to_list in
  let* prunes = map_result prune_of_json prune_items in
  Ok
    { Bnb_certificate.summary;
      kmax;
      search_space;
      represented_subsets;
      heuristic_cost;
      optimal_cost;
      incumbent;
      counters =
        { Bnb_certificate.expanded;
          closed;
          evaluated;
          pruned_cost;
          pruned_arch;
          pruned_symmetry;
          pruned_levels;
          pruned_mappings };
      prunes }

let to_string c = Json.to_string (to_json c)

let of_string ?on_warning s =
  Result.bind (Json.of_string s) (of_json ?on_warning)

let save path c =
  Ftes_util.Atomic_file.write_string path (to_string c ^ "\n")

let load ?on_warning path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string ?on_warning contents
  | exception Sys_error e -> Error e
