module Problem = Ftes_model.Problem
module Application = Ftes_model.Application

type summary = {
  name : string;
  n_processes : int;
  n_library : int;
  deadline_ms : float;
  period_ms : float;
  gamma : float;
  mu_ms : float;
}

type t = {
  summary : summary;
  kmax : int;
  reexec : bool;
  threshold : float;
  budget : float;
  min_wcets : float array;
  kneed : int array array array;
  task_min_length : float array;
  task_cheapest : float array;
  critical_path_ms : float;
  critical_path : int list;
  total_work_ms : float;
  capacity_ms : float;
  cost_lower_bound : float;
  sfp_cost_lower_bound : float;
  feasible : bool;
  witnesses : Preflight.witness list;
}

let summary_of_problem problem =
  let app = problem.Problem.app in
  { name = app.Application.name;
    n_processes = Problem.n_processes problem;
    n_library = Problem.n_library problem;
    deadline_ms = app.Application.deadline_ms;
    period_ms = app.Application.period_ms;
    gamma = app.Application.gamma;
    mu_ms = app.Application.recovery_overhead_ms }

let of_preflight (pf : Preflight.t) =
  { summary = summary_of_problem pf.Preflight.problem;
    kmax = pf.Preflight.kmax;
    reexec = pf.Preflight.reexec;
    threshold = pf.Preflight.threshold;
    budget = pf.Preflight.budget;
    min_wcets = pf.Preflight.min_wcets;
    kneed = pf.Preflight.kneed;
    task_min_length = pf.Preflight.task_min_length;
    task_cheapest = pf.Preflight.task_cheapest;
    critical_path_ms = pf.Preflight.critical_path_ms;
    critical_path = pf.Preflight.critical_path;
    total_work_ms = pf.Preflight.total_work_ms;
    capacity_ms = pf.Preflight.capacity_ms;
    cost_lower_bound = pf.Preflight.cost_lower_bound;
    sfp_cost_lower_bound = pf.Preflight.sfp_cost_lower_bound;
    feasible = Preflight.feasible pf;
    witnesses = pf.Preflight.witnesses }
