(** Bus arbitration models.

    The paper assumes fault-tolerant communication over a shared bus
    with a protocol "such as TTP" [10] and only consumes worst-case
    transmission times.  Two arbitration models are provided:

    - {!Fcfs}: a work-conserving serialized bus — messages transmit
      back-to-back in request order.  This is the default used by all
      experiments (it matches the Gantt charts of the paper's figures).
    - {!Tdma}: a TTP-style time-division bus — time is divided into
      rounds of one fixed-length slot per computation node, and a node
      may transmit only inside its own slots; a long message spans
      several of its slots across consecutive rounds.

    A [t] value is the mutable arbitration state used while building one
    schedule (or simulating one iteration). *)

type policy = Fcfs | Tdma of { slot_ms : float }

type t

val create : policy -> members:int -> t
(** Fresh bus state for an architecture of [members] nodes.  Raises
    [Invalid_argument] for a non-positive TDMA slot or member count. *)

val policy : t -> policy

val transmit_finish : t -> member:int -> ready:float -> duration:float -> float
(** Like {!transmit} but returns only the finish instant, without
    building the pair — the allocation-lean form the length-only
    scheduler kernel uses.  Books the bus exactly like {!transmit}. *)

val transmit : t -> member:int -> ready:float -> duration:float -> float * float
(** [transmit bus ~member ~ready ~duration] books the earliest
    transmission of a [duration]-long message that node [member] can
    start at or after time [ready], updates the bus state, and returns
    [(start, finish)].  Under TDMA, [start] is the first instant of the
    first slot fragment used and [finish] the end of the last one.
    Raises [Invalid_argument] for a member out of range or a negative
    [ready] / [duration]. *)

val round_length_ms : t -> float option
(** TDMA round length ([slot * members]); [None] for FCFS. *)
