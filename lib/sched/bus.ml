type policy = Fcfs | Tdma of { slot_ms : float }

type t = {
  policy : policy;
  members : int;
  mutable free : float; (* FCFS: bus free time *)
  member_free : float array; (* TDMA: per-node next usable instant *)
}

let create policy ~members =
  if members <= 0 then invalid_arg "Bus.create: member count must be positive";
  (match policy with
  | Tdma { slot_ms } when not (Float.is_finite slot_ms) || slot_ms <= 0.0 ->
      invalid_arg "Bus.create: TDMA slot must be positive"
  | Tdma _ | Fcfs -> ());
  { policy; members; free = 0.0; member_free = Array.make members 0.0 }

let policy t = t.policy

let round_length_ms t =
  match t.policy with
  | Fcfs -> None
  | Tdma { slot_ms } -> Some (slot_ms *. float_of_int t.members)

(* First instant >= [time] lying inside one of [member]'s slots. *)
let next_own_instant ~slot_ms ~members ~member time =
  let round = slot_ms *. float_of_int members in
  let own_offset = slot_ms *. float_of_int member in
  let base = Float.floor (time /. round) *. round in
  let in_round = time -. base in
  if in_round < own_offset then base +. own_offset
  else if in_round < own_offset +. slot_ms then time
  else base +. round +. own_offset

let transmit t ~member ~ready ~duration =
  if member < 0 || member >= t.members then
    invalid_arg "Bus.transmit: member out of range";
  if ready < 0.0 || not (Float.is_finite ready) then
    invalid_arg "Bus.transmit: invalid ready time";
  if duration < 0.0 || not (Float.is_finite duration) then
    invalid_arg "Bus.transmit: invalid duration";
  match t.policy with
  | Fcfs ->
      let start = Float.max t.free ready in
      let finish = start +. duration in
      t.free <- finish;
      (start, finish)
  | Tdma { slot_ms } ->
      let begin_at = Float.max ready t.member_free.(member) in
      if duration = 0.0 then begin
        let start =
          next_own_instant ~slot_ms ~members:t.members ~member begin_at
        in
        t.member_free.(member) <- start;
        (start, start)
      end
      else begin
        (* Walk the node's slots, consuming fragments until the whole
           message has been transmitted. *)
        let rec walk at remaining start =
          let at = next_own_instant ~slot_ms ~members:t.members ~member at in
          let start = match start with Some s -> s | None -> at in
          let round = slot_ms *. float_of_int t.members in
          let own_offset = slot_ms *. float_of_int member in
          let slot_end =
            (Float.floor (at /. round) *. round) +. own_offset +. slot_ms
          in
          let available = slot_end -. at in
          if remaining <= available +. 1e-12 then begin
            let finish = at +. remaining in
            (Some start, finish)
          end
          else walk slot_end (remaining -. available) (Some start)
        in
        match walk begin_at duration None with
        | Some start, finish ->
            t.member_free.(member) <- finish;
            (start, finish)
        | None, _ -> assert false (* walk always sets the start *)
      end

(* Allocation-lean FCFS variant for the length-only scheduler: same
   checks and float operations as [transmit], but no start/finish pair
   is built.  TDMA keeps the shared slot walk. *)
let[@inline] transmit_finish t ~member ~ready ~duration =
  if member < 0 || member >= t.members then
    invalid_arg "Bus.transmit: member out of range";
  if ready < 0.0 || not (Float.is_finite ready) then
    invalid_arg "Bus.transmit: invalid ready time";
  if duration < 0.0 || not (Float.is_finite duration) then
    invalid_arg "Bus.transmit: invalid duration";
  match t.policy with
  | Fcfs ->
      let start = Float.max t.free ready in
      let finish = start +. duration in
      t.free <- finish;
      finish
  | Tdma _ -> snd (transmit t ~member ~ready ~duration)
