module Task_graph = Ftes_model.Task_graph
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design

type slack_mode =
  | Shared
  | Conservative
  | Dedicated
  | Per_process of int array
  | Checkpointed of { kappa : int array; save_ms : float }

let c_schedules = Ftes_obs.Metrics.counter "sched.schedules"

let c_priority_passes = Ftes_obs.Metrics.counter "sched.priority_passes"

let c_slack_recomputations = Ftes_obs.Metrics.counter "sched.slack_recomputations"

let priorities problem design =
  Ftes_obs.Metrics.incr c_priority_passes;
  let graph = Problem.graph problem in
  let exec proc = Design.wcet problem design ~proc in
  let comm (e : Task_graph.edge) =
    if design.Design.mapping.(e.src) = design.Design.mapping.(e.dst) then 0.0
    else e.transmission_ms
  in
  Task_graph.bottom_levels graph ~exec ~comm

let schedule_impl ~slack ~bus problem design =
  let graph = Problem.graph problem in
  let n = Task_graph.n graph in
  (match slack with
  | Per_process budgets ->
      if Array.length budgets <> n then
        invalid_arg "Scheduler.schedule: per-process budget length mismatch";
      Array.iter
        (fun b ->
          if b < 0 then
            invalid_arg "Scheduler.schedule: negative per-process budget")
        budgets
  | Checkpointed { kappa; save_ms } ->
      if Array.length kappa <> n then
        invalid_arg "Scheduler.schedule: checkpoint vector length mismatch";
      Array.iter
        (fun c ->
          if c < 1 then
            invalid_arg "Scheduler.schedule: checkpoint counts must be >= 1")
        kappa;
      if save_ms < 0.0 || not (Float.is_finite save_ms) then
        invalid_arg "Scheduler.schedule: invalid checkpoint overhead"
  | Shared | Conservative | Dedicated -> ());
  let members = Design.n_members design in
  let mu = problem.Problem.app.Ftes_model.Application.recovery_overhead_ms in
  let prio = priorities problem design in
  let mapping = design.Design.mapping in
  let k slot = design.Design.reexecs.(slot) in
  (* Per-node state. *)
  let node_avail = Array.make members 0.0 in
  let node_finish = Array.make members 0.0 in
  let max_exec = Array.make members 0.0 in
  (* Under checkpointing a fault re-executes only one segment, so the
     per-node slack is sized by the largest segment, not process. *)
  let max_recovery = Array.make members 0.0 in
  let last_commit = Array.make members 0.0 in
  let bus_state = Bus.create bus ~members in
  let entries = Array.make n None in
  let messages = ref [] in
  (* arrival.(p): earliest time all of p's inputs are on p's node. *)
  let arrival = Array.make n 0.0 in
  let remaining_preds = Array.init n (fun i -> Task_graph.in_degree graph i) in
  let scheduled = Array.make n false in
  let ready p = (not scheduled.(p)) && remaining_preds.(p) = 0 in
  let pick () =
    let best = ref (-1) in
    for p = n - 1 downto 0 do
      if ready p && (!best = -1 || prio.(p) >= prio.(!best)) then best := p
    done;
    !best
  in
  let place p =
    let slot = mapping.(p) in
    let raw_t = Design.wcet problem design ~proc:p in
    (* Checkpointing inflates the fault-free execution by the saves and
       shrinks the recovery unit to one segment. *)
    let t, recovery =
      match slack with
      | Checkpointed { kappa; save_ms } ->
          let segments = float_of_int kappa.(p) in
          ( raw_t +. ((segments -. 1.0) *. save_ms),
            raw_t /. segments )
      | Shared | Conservative | Dedicated | Per_process _ -> (raw_t, raw_t)
    in
    let start = Float.max node_avail.(slot) arrival.(p) in
    let finish = start +. t in
    if t > max_exec.(slot) then max_exec.(slot) <- t;
    if recovery > max_recovery.(slot) then max_recovery.(slot) <- recovery;
    (* The commit time is when the process's outputs may leave the node:
       nominally right away under the paper's model, after the shared
       worst-case slack under the sound variant, after the process's own
       slack without sharing. *)
    let commit =
      match slack with
      | Shared -> finish
      | Conservative ->
          finish +. (float_of_int (k slot) *. (max_exec.(slot) +. mu))
      | Dedicated -> finish +. (float_of_int (k slot) *. (t +. mu))
      | Per_process budgets ->
          finish +. (float_of_int budgets.(p) *. (t +. mu))
      | Checkpointed _ -> finish
    in
    entries.(p) <- Some { Schedule.proc = p; slot; start; finish; commit };
    node_finish.(slot) <- finish;
    last_commit.(slot) <- Float.max last_commit.(slot) commit;
    (node_avail.(slot) <-
       (match slack with
       | Shared | Conservative | Checkpointed _ -> finish
       | Dedicated | Per_process _ -> commit));
    (* Release successors; put cross-node outputs on the bus now
       (first-come-first-served). *)
    List.iter
      (fun (e : Task_graph.edge) ->
        let d = e.dst in
        let arrive =
          if mapping.(d) = slot then finish
          else begin
            let bus_start, bus_finish =
              Bus.transmit bus_state ~member:slot ~ready:commit
                ~duration:e.transmission_ms
            in
            messages := { Schedule.edge = e; bus_start; bus_finish } :: !messages;
            bus_finish
          end
        in
        if arrive > arrival.(d) then arrival.(d) <- arrive;
        remaining_preds.(d) <- remaining_preds.(d) - 1)
      (Task_graph.succs graph p);
    scheduled.(p) <- true
  in
  let rec run placed =
    if placed < n then begin
      let p = pick () in
      assert (p >= 0);
      place p;
      run (placed + 1)
    end
  in
  run 0;
  (* In Shared mode the re-executions of a node spill into one shared
     slack region after its nominal finish, sized by its largest
     process; in Dedicated mode each process already carries its own
     slack, so the node ends at the last commit. *)
  Ftes_obs.Metrics.incr c_slack_recomputations;
  let node_worst =
    Array.init members (fun slot ->
        match slack with
        | Shared | Conservative ->
            if max_exec.(slot) = 0.0 then node_finish.(slot)
            else
              node_finish.(slot)
              +. (float_of_int (k slot) *. (max_exec.(slot) +. mu))
        | Checkpointed _ ->
            if max_recovery.(slot) = 0.0 then node_finish.(slot)
            else
              node_finish.(slot)
              +. (float_of_int (k slot) *. (max_recovery.(slot) +. mu))
        | Dedicated | Per_process _ -> last_commit.(slot))
  in
  let entries =
    Array.map
      (function
        | Some e -> e
        | None -> assert false (* every process was placed by [run] *))
      entries
  in
  let length = Array.fold_left Float.max 0.0 node_worst in
  { Schedule.entries; messages = List.rev !messages; node_finish; node_worst;
    length }

let schedule ?(slack = Shared) ?(bus = Bus.Fcfs) problem design =
  Ftes_obs.Metrics.incr c_schedules;
  Ftes_obs.Span.with_ ~name:"sched/schedule" (fun () ->
      schedule_impl ~slack ~bus problem design)

let schedule_length ?slack ?bus problem design =
  Schedule.length (schedule ?slack ?bus problem design)

let is_schedulable ?slack ?bus problem design =
  let sl = schedule_length ?slack ?bus problem design in
  Ftes_util.Tolerance.leq sl
    problem.Problem.app.Ftes_model.Application.deadline_ms
