module Task_graph = Ftes_model.Task_graph
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design

type slack_mode =
  | Shared
  | Conservative
  | Dedicated
  | Per_process of int array
  | Checkpointed of { kappa : int array; save_ms : float }

let c_schedules = Ftes_obs.Metrics.counter "sched.schedules"

let c_priority_passes = Ftes_obs.Metrics.counter "sched.priority_passes"

let c_slack_recomputations = Ftes_obs.Metrics.counter "sched.slack_recomputations"

let c_prio_hits = Ftes_obs.Metrics.counter "kernel.prio_hits"

let c_prio_misses = Ftes_obs.Metrics.counter "kernel.prio_misses"

let priorities problem design =
  Ftes_obs.Metrics.incr c_priority_passes;
  let graph = Problem.graph problem in
  let exec proc = Design.wcet problem design ~proc in
  let comm (e : Task_graph.edge) =
    if design.Design.mapping.(e.src) = design.Design.mapping.(e.dst) then 0.0
    else e.transmission_ms
  in
  Task_graph.bottom_levels graph ~exec ~comm

(* --- Priorities memo (incremental kernel only) ---

   The bottom-level pass is a function of the graph (owned by the
   problem), the WCET vector and the mapping (which decides edge
   zeroing).  The escalation and tabu loops re-schedule designs that
   differ in one hardening level — often leaving the WCET vector of
   every mapped process unchanged — so a small per-domain ring of
   recently computed priority vectors removes most passes.  A hit
   serves the stored vector (the scheduler only reads it); a memoized
   vector is bit-identical to a fresh pass because [exec]/[comm]
   evaluate to the same floats, so memoization only affects speed. *)

type prio_entry = {
  hash : int;
  problem : Problem.t;
  mapping : int array;
  wcet : float array;
  prio : float array;
}

let prio_ring_capacity = 32

type prio_ring = { slots : prio_entry option array; mutable next : int }

let prio_ring_key =
  Domain.DLS.new_key (fun () ->
      { slots = Array.make prio_ring_capacity None; next = 0 })

let prio_hash mapping wcet n =
  let h = ref 0x811c9dc5 in
  let mix x = h := (!h lxor x) * 0x01000193 in
  for p = 0 to n - 1 do
    mix mapping.(p);
    mix (Int64.to_int (Int64.bits_of_float wcet.(p)))
  done;
  !h

let array_prefix_eq_int (a : int array) (b : int array) n =
  Array.length b = n
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    if a.(i) <> b.(i) then ok := false
  done;
  !ok

let array_prefix_eq_float (a : float array) (b : float array) n =
  Array.length b = n
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    (* Bit compare: the key must distinguish -0. from 0. like a fresh
       pass would not, but must never unify distinct NaN payloads with
       anything. *)
    if Int64.bits_of_float a.(i) <> Int64.bits_of_float b.(i) then ok := false
  done;
  !ok

let priorities_memo problem design ~wcet =
  let graph = Problem.graph problem in
  let n = Task_graph.n graph in
  let mapping = design.Design.mapping in
  let hash = prio_hash mapping wcet n in
  let ring = Domain.DLS.get prio_ring_key in
  let found = ref None in
  let i = ref 0 in
  (* [==] against the immediate [None]: a structural [=] here would be
     a generic-compare call per probed slot. *)
  while !found == None && !i < prio_ring_capacity do
    (match ring.slots.(!i) with
    | Some e
      when e.hash = hash && e.problem == problem
           && array_prefix_eq_int mapping e.mapping n
           && array_prefix_eq_float wcet e.wcet n ->
        found := Some e.prio
    | _ -> ());
    incr i
  done;
  match !found with
  | Some prio ->
      Ftes_obs.Metrics.incr c_prio_hits;
      prio
  | None ->
      Ftes_obs.Metrics.incr c_prio_misses;
      Ftes_obs.Metrics.incr c_priority_passes;
      let prio = Task_graph.bottom_levels_wcet graph ~wcet ~mapping in
      ring.slots.(ring.next) <-
        Some
          { hash;
            problem;
            mapping = Array.copy mapping;
            wcet = Array.sub wcet 0 n;
            prio };
      ring.next <- (ring.next + 1) mod prio_ring_capacity;
      prio

let validate_slack ~slack n =
  match slack with
  | Per_process budgets ->
      if Array.length budgets <> n then
        invalid_arg "Scheduler.schedule: per-process budget length mismatch";
      Array.iter
        (fun b ->
          if b < 0 then
            invalid_arg "Scheduler.schedule: negative per-process budget")
        budgets
  | Checkpointed { kappa; save_ms } ->
      if Array.length kappa <> n then
        invalid_arg "Scheduler.schedule: checkpoint vector length mismatch";
      Array.iter
        (fun c ->
          if c < 1 then
            invalid_arg "Scheduler.schedule: checkpoint counts must be >= 1")
        kappa;
      if save_ms < 0.0 || not (Float.is_finite save_ms) then
        invalid_arg "Scheduler.schedule: invalid checkpoint overhead"
  | Shared | Conservative | Dedicated -> ()

let schedule_impl ~slack ~bus problem design =
  let graph = Problem.graph problem in
  let n = Task_graph.n graph in
  validate_slack ~slack n;
  let members = Design.n_members design in
  let mu = problem.Problem.app.Ftes_model.Application.recovery_overhead_ms in
  let prio = priorities problem design in
  let mapping = design.Design.mapping in
  let k slot = design.Design.reexecs.(slot) in
  (* Per-node state. *)
  let node_avail = Array.make members 0.0 in
  let node_finish = Array.make members 0.0 in
  let max_exec = Array.make members 0.0 in
  (* Under checkpointing a fault re-executes only one segment, so the
     per-node slack is sized by the largest segment, not process. *)
  let max_recovery = Array.make members 0.0 in
  let last_commit = Array.make members 0.0 in
  let bus_state = Bus.create bus ~members in
  let entries = Array.make n None in
  let messages = ref [] in
  (* arrival.(p): earliest time all of p's inputs are on p's node. *)
  let arrival = Array.make n 0.0 in
  let remaining_preds = Array.init n (fun i -> Task_graph.in_degree graph i) in
  let scheduled = Array.make n false in
  let ready p = (not scheduled.(p)) && remaining_preds.(p) = 0 in
  let pick () =
    let best = ref (-1) in
    for p = n - 1 downto 0 do
      if ready p && (!best = -1 || prio.(p) >= prio.(!best)) then best := p
    done;
    !best
  in
  let place p =
    let slot = mapping.(p) in
    let raw_t = Design.wcet problem design ~proc:p in
    (* Checkpointing inflates the fault-free execution by the saves and
       shrinks the recovery unit to one segment. *)
    let t, recovery =
      match slack with
      | Checkpointed { kappa; save_ms } ->
          let segments = float_of_int kappa.(p) in
          ( raw_t +. ((segments -. 1.0) *. save_ms),
            raw_t /. segments )
      | Shared | Conservative | Dedicated | Per_process _ -> (raw_t, raw_t)
    in
    let start = Float.max node_avail.(slot) arrival.(p) in
    let finish = start +. t in
    if t > max_exec.(slot) then max_exec.(slot) <- t;
    if recovery > max_recovery.(slot) then max_recovery.(slot) <- recovery;
    (* The commit time is when the process's outputs may leave the node:
       nominally right away under the paper's model, after the shared
       worst-case slack under the sound variant, after the process's own
       slack without sharing. *)
    let commit =
      match slack with
      | Shared -> finish
      | Conservative ->
          finish +. (float_of_int (k slot) *. (max_exec.(slot) +. mu))
      | Dedicated -> finish +. (float_of_int (k slot) *. (t +. mu))
      | Per_process budgets ->
          finish +. (float_of_int budgets.(p) *. (t +. mu))
      | Checkpointed _ -> finish
    in
    entries.(p) <- Some { Schedule.proc = p; slot; start; finish; commit };
    node_finish.(slot) <- finish;
    last_commit.(slot) <- Float.max last_commit.(slot) commit;
    (node_avail.(slot) <-
       (match slack with
       | Shared | Conservative | Checkpointed _ -> finish
       | Dedicated | Per_process _ -> commit));
    (* Release successors; put cross-node outputs on the bus now
       (first-come-first-served). *)
    List.iter
      (fun (e : Task_graph.edge) ->
        let d = e.dst in
        let arrive =
          if mapping.(d) = slot then finish
          else begin
            let bus_start, bus_finish =
              Bus.transmit bus_state ~member:slot ~ready:commit
                ~duration:e.transmission_ms
            in
            messages := { Schedule.edge = e; bus_start; bus_finish } :: !messages;
            bus_finish
          end
        in
        if arrive > arrival.(d) then arrival.(d) <- arrive;
        remaining_preds.(d) <- remaining_preds.(d) - 1)
      (Task_graph.succs graph p);
    scheduled.(p) <- true
  in
  let rec run placed =
    if placed < n then begin
      let p = pick () in
      assert (p >= 0);
      place p;
      run (placed + 1)
    end
  in
  run 0;
  (* In Shared mode the re-executions of a node spill into one shared
     slack region after its nominal finish, sized by its largest
     process; in Dedicated mode each process already carries its own
     slack, so the node ends at the last commit. *)
  Ftes_obs.Metrics.incr c_slack_recomputations;
  let node_worst =
    Array.init members (fun slot ->
        match slack with
        | Shared | Conservative ->
            if max_exec.(slot) = 0.0 then node_finish.(slot)
            else
              node_finish.(slot)
              +. (float_of_int (k slot) *. (max_exec.(slot) +. mu))
        | Checkpointed _ ->
            if max_recovery.(slot) = 0.0 then node_finish.(slot)
            else
              node_finish.(slot)
              +. (float_of_int (k slot) *. (max_recovery.(slot) +. mu))
        | Dedicated | Per_process _ -> last_commit.(slot))
  in
  let entries =
    Array.map
      (function
        | Some e -> e
        | None -> assert false (* every process was placed by [run] *))
      entries
  in
  let length = Array.fold_left Float.max 0.0 node_worst in
  { Schedule.entries; messages = List.rev !messages; node_finish; node_worst;
    length }

(* --- Incremental kernel ---

   Same placement algorithm and float operations as [schedule_impl];
   only the machinery around them changes:

   - the ready set lives in a binary heap ordered (priority desc, index
     asc) — exactly the (max priority, lowest index) argmax the
     reference [pick] scan computes, so identical pop sequences;
   - WCETs are fetched once into a scratch vector (the same
     [Design.wcet] calls the reference makes per placement);
   - priority vectors come from the per-domain memo ring;
   - short-lived working arrays come from the domain's scratch arena.
     Arrays escaping into the returned {!Schedule.t} (entries,
     node_finish, node_worst) stay freshly allocated. *)

let dummy_entry =
  { Schedule.proc = -1; slot = -1; start = 0.0; finish = 0.0; commit = 0.0 }

let schedule_fast ~slack ~bus problem design =
  Scratch.with_arena @@ fun arena ->
  let graph = Problem.graph problem in
  let n = Task_graph.n graph in
  validate_slack ~slack n;
  let members = Design.n_members design in
  let mu = problem.Problem.app.Ftes_model.Application.recovery_overhead_ms in
  let mapping = design.Design.mapping in
  let k slot = design.Design.reexecs.(slot) in
  let wcet = Scratch.floats arena ~slot:0 ~n in
  Design.wcet_into problem design ~out:wcet;
  let prio = priorities_memo problem design ~wcet in
  let node_avail = Scratch.floats arena ~slot:1 ~n:members in
  let max_exec = Scratch.floats arena ~slot:2 ~n:members in
  let max_recovery = Scratch.floats arena ~slot:3 ~n:members in
  let last_commit = Scratch.floats arena ~slot:4 ~n:members in
  let arrival = Scratch.floats arena ~slot:5 ~n in
  Array.fill node_avail 0 members 0.0;
  Array.fill max_exec 0 members 0.0;
  Array.fill max_recovery 0 members 0.0;
  Array.fill last_commit 0 members 0.0;
  Array.fill arrival 0 n 0.0;
  let node_finish = Array.make members 0.0 in
  let bus_state = Bus.create bus ~members in
  let entries = Array.make n dummy_entry in
  let messages = ref [] in
  let remaining_preds = Scratch.ints arena ~slot:0 ~n in
  Task_graph.in_degrees_into graph remaining_preds;
  let heap = Scratch.ints arena ~slot:1 ~n in
  let heap_len = ref 0 in
  (* Pop order: highest priority first, ties to the lower index — the
     same argmax the reference scan computes.  The comparator is
     written out at each use so the sift loops run without closure
     calls on their hottest comparisons. *)
  let push p =
    heap.(!heap_len) <- p;
    let i = ref !heap_len in
    incr heap_len;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      let a = heap.(!i) and b = heap.(parent) in
      if prio.(a) > prio.(b) || (prio.(a) = prio.(b) && a < b) then begin
        heap.(parent) <- a;
        heap.(!i) <- b;
        i := parent
      end
      else continue := false
    done
  in
  let pop () =
    let top = heap.(0) in
    decr heap_len;
    heap.(0) <- heap.(!heap_len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let best = ref !i in
      if l < !heap_len then begin
        let a = heap.(l) and b = heap.(!best) in
        if prio.(a) > prio.(b) || (prio.(a) = prio.(b) && a < b) then
          best := l
      end;
      if r < !heap_len then begin
        let a = heap.(r) and b = heap.(!best) in
        if prio.(a) > prio.(b) || (prio.(a) = prio.(b) && a < b) then
          best := r
      end;
      if !best = !i then continue := false
      else begin
        let tmp = heap.(!best) in
        heap.(!best) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !best
      end
    done;
    top
  in
  for p = 0 to n - 1 do
    if remaining_preds.(p) = 0 then push p
  done;
  let place p =
    let slot = mapping.(p) in
    let raw_t = wcet.(p) in
    let t, recovery =
      match slack with
      | Checkpointed { kappa; save_ms } ->
          let segments = float_of_int kappa.(p) in
          ( raw_t +. ((segments -. 1.0) *. save_ms),
            raw_t /. segments )
      | Shared | Conservative | Dedicated | Per_process _ -> (raw_t, raw_t)
    in
    let start = Float.max node_avail.(slot) arrival.(p) in
    let finish = start +. t in
    if t > max_exec.(slot) then max_exec.(slot) <- t;
    if recovery > max_recovery.(slot) then max_recovery.(slot) <- recovery;
    let commit =
      match slack with
      | Shared -> finish
      | Conservative ->
          finish +. (float_of_int (k slot) *. (max_exec.(slot) +. mu))
      | Dedicated -> finish +. (float_of_int (k slot) *. (t +. mu))
      | Per_process budgets ->
          finish +. (float_of_int budgets.(p) *. (t +. mu))
      | Checkpointed _ -> finish
    in
    entries.(p) <- { Schedule.proc = p; slot; start; finish; commit };
    node_finish.(slot) <- finish;
    last_commit.(slot) <- Float.max last_commit.(slot) commit;
    (node_avail.(slot) <-
       (match slack with
       | Shared | Conservative | Checkpointed _ -> finish
       | Dedicated | Per_process _ -> commit));
    List.iter
      (fun (e : Task_graph.edge) ->
        let d = e.dst in
        let arrive =
          if mapping.(d) = slot then finish
          else begin
            let bus_start, bus_finish =
              Bus.transmit bus_state ~member:slot ~ready:commit
                ~duration:e.transmission_ms
            in
            messages := { Schedule.edge = e; bus_start; bus_finish } :: !messages;
            bus_finish
          end
        in
        if arrive > arrival.(d) then arrival.(d) <- arrive;
        remaining_preds.(d) <- remaining_preds.(d) - 1;
        if remaining_preds.(d) = 0 then push d)
      (Task_graph.succs graph p)
  in
  for _ = 1 to n do
    place (pop ())
  done;
  Ftes_obs.Metrics.incr c_slack_recomputations;
  let node_worst =
    Array.init members (fun slot ->
        match slack with
        | Shared | Conservative ->
            if max_exec.(slot) = 0.0 then node_finish.(slot)
            else
              node_finish.(slot)
              +. (float_of_int (k slot) *. (max_exec.(slot) +. mu))
        | Checkpointed _ ->
            if max_recovery.(slot) = 0.0 then node_finish.(slot)
            else
              node_finish.(slot)
              +. (float_of_int (k slot) *. (max_recovery.(slot) +. mu))
        | Dedicated | Per_process _ -> last_commit.(slot))
  in
  let length = Array.fold_left Float.max 0.0 node_worst in
  { Schedule.entries; messages = List.rev !messages; node_finish; node_worst;
    length }

(* Length-only variant of [schedule_fast] for the optimizer's inner
   loop, which discards everything but [Schedule.length].  Same
   placement order and float operations (the placement floats do not
   depend on the entry/message records, and the final fold over
   [node_worst] runs in the same slot order starting from [0.0]), but
   no entry or message records are built and every array comes from the
   arena, so a call allocates almost nothing. *)
let schedule_length_fast ~slack ~bus problem design =
  Scratch.with_arena @@ fun arena ->
  let graph = Problem.graph problem in
  let n = Task_graph.n graph in
  validate_slack ~slack n;
  let members = Design.n_members design in
  let mu = problem.Problem.app.Ftes_model.Application.recovery_overhead_ms in
  let mapping = design.Design.mapping in
  let k slot = design.Design.reexecs.(slot) in
  let wcet = Scratch.floats arena ~slot:0 ~n in
  Design.wcet_into problem design ~out:wcet;
  let prio = priorities_memo problem design ~wcet in
  let node_avail = Scratch.floats arena ~slot:1 ~n:members in
  let max_exec = Scratch.floats arena ~slot:2 ~n:members in
  let max_recovery = Scratch.floats arena ~slot:3 ~n:members in
  let last_commit = Scratch.floats arena ~slot:4 ~n:members in
  let arrival = Scratch.floats arena ~slot:5 ~n in
  let node_finish = Scratch.floats arena ~slot:6 ~n:members in
  Array.fill node_avail 0 members 0.0;
  Array.fill max_exec 0 members 0.0;
  Array.fill max_recovery 0 members 0.0;
  Array.fill last_commit 0 members 0.0;
  Array.fill arrival 0 n 0.0;
  Array.fill node_finish 0 members 0.0;
  let bus_state = Bus.create bus ~members in
  let remaining_preds = Scratch.ints arena ~slot:0 ~n in
  Task_graph.in_degrees_into graph remaining_preds;
  let heap = Scratch.ints arena ~slot:1 ~n in
  let heap_len = ref 0 in
  (* Pop order: highest priority first, ties to the lower index — the
     same argmax the reference scan computes.  The comparator is
     written out at each use so the sift loops run without closure
     calls on their hottest comparisons. *)
  let push p =
    heap.(!heap_len) <- p;
    let i = ref !heap_len in
    incr heap_len;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      let a = heap.(!i) and b = heap.(parent) in
      if prio.(a) > prio.(b) || (prio.(a) = prio.(b) && a < b) then begin
        heap.(parent) <- a;
        heap.(!i) <- b;
        i := parent
      end
      else continue := false
    done
  in
  let pop () =
    let top = heap.(0) in
    decr heap_len;
    heap.(0) <- heap.(!heap_len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let best = ref !i in
      if l < !heap_len then begin
        let a = heap.(l) and b = heap.(!best) in
        if prio.(a) > prio.(b) || (prio.(a) = prio.(b) && a < b) then
          best := l
      end;
      if r < !heap_len then begin
        let a = heap.(r) and b = heap.(!best) in
        if prio.(a) > prio.(b) || (prio.(a) = prio.(b) && a < b) then
          best := r
      end;
      if !best = !i then continue := false
      else begin
        let tmp = heap.(!best) in
        heap.(!best) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !best
      end
    done;
    top
  in
  for p = 0 to n - 1 do
    if remaining_preds.(p) = 0 then push p
  done;
  (* The successor-release walk runs over the graph's CSR adjacency —
     same edges in the same order as the reference's [List.iter] over
     [succs], on contiguous arrays.  An FCFS bus is one float of state
     (its next free instant); it lives in an arena cell so the booking
     runs inline without boxing — same [max]/[+.] sequence as
     [Bus.transmit], whose validation is unreachable here (commit
     times are finite and non-negative by construction, transmission
     times are validated at graph build).  TDMA keeps the shared slot
     walk in [Bus]. *)
  let succ_off = Task_graph.succ_offsets graph in
  let succ_dst = Task_graph.succ_dsts graph in
  let succ_tx = Task_graph.succ_txs graph in
  let bus_free = Scratch.floats arena ~slot:7 ~n:1 in
  bus_free.(0) <- 0.0;
  let place p =
    let slot = mapping.(p) in
    let raw_t = wcet.(p) in
    (* Split the reference's (t, recovery) pair to avoid the tuple; the
       recomputed [segments] is the same float, so both components stay
       bit-identical. *)
    let t =
      match slack with
      | Checkpointed { kappa; save_ms } ->
          raw_t +. ((float_of_int kappa.(p) -. 1.0) *. save_ms)
      | Shared | Conservative | Dedicated | Per_process _ -> raw_t
    in
    let recovery =
      match slack with
      | Checkpointed { kappa; _ } -> raw_t /. float_of_int kappa.(p)
      | Shared | Conservative | Dedicated | Per_process _ -> raw_t
    in
    let start = Float.max node_avail.(slot) arrival.(p) in
    let finish = start +. t in
    if t > max_exec.(slot) then max_exec.(slot) <- t;
    if recovery > max_recovery.(slot) then max_recovery.(slot) <- recovery;
    let commit =
      match slack with
      | Shared -> finish
      | Conservative ->
          finish +. (float_of_int (k slot) *. (max_exec.(slot) +. mu))
      | Dedicated -> finish +. (float_of_int (k slot) *. (t +. mu))
      | Per_process budgets ->
          finish +. (float_of_int budgets.(p) *. (t +. mu))
      | Checkpointed _ -> finish
    in
    node_finish.(slot) <- finish;
    last_commit.(slot) <- Float.max last_commit.(slot) commit;
    (node_avail.(slot) <-
       (match slack with
       | Shared | Conservative | Checkpointed _ -> finish
       | Dedicated | Per_process _ -> commit));
    for ei = succ_off.(p) to succ_off.(p + 1) - 1 do
      let d = succ_dst.(ei) in
      let arrive =
        if mapping.(d) = slot then finish
        else begin
          match bus with
          | Bus.Fcfs ->
              let bus_start = Float.max bus_free.(0) commit in
              let bus_finish = bus_start +. succ_tx.(ei) in
              bus_free.(0) <- bus_finish;
              bus_finish
          | Bus.Tdma _ ->
              Bus.transmit_finish bus_state ~member:slot ~ready:commit
                ~duration:succ_tx.(ei)
        end
      in
      if arrive > arrival.(d) then arrival.(d) <- arrive;
      remaining_preds.(d) <- remaining_preds.(d) - 1;
      if remaining_preds.(d) = 0 then push d
    done
  in
  for _ = 1 to n do
    place (pop ())
  done;
  Ftes_obs.Metrics.incr c_slack_recomputations;
  let length = ref 0.0 in
  for slot = 0 to members - 1 do
    let worst =
      match slack with
      | Shared | Conservative ->
          if max_exec.(slot) = 0.0 then node_finish.(slot)
          else
            node_finish.(slot)
            +. (float_of_int (k slot) *. (max_exec.(slot) +. mu))
      | Checkpointed _ ->
          if max_recovery.(slot) = 0.0 then node_finish.(slot)
          else
            node_finish.(slot)
            +. (float_of_int (k slot) *. (max_recovery.(slot) +. mu))
      | Dedicated | Per_process _ -> last_commit.(slot)
    in
    length := Float.max !length worst
  done;
  !length

let schedule ?(slack = Shared) ?(bus = Bus.Fcfs) problem design =
  Ftes_obs.Metrics.incr c_schedules;
  Ftes_obs.Span.with_ ~name:"sched/schedule" (fun () ->
      if Ftes_util.Kernel.incremental () then
        schedule_fast ~slack ~bus problem design
      else schedule_impl ~slack ~bus problem design)

let schedule_reference ?(slack = Shared) ?(bus = Bus.Fcfs) problem design =
  Ftes_obs.Metrics.incr c_schedules;
  Ftes_obs.Span.with_ ~name:"sched/schedule" (fun () ->
      schedule_impl ~slack ~bus problem design)

let schedule_length ?(slack = Shared) ?(bus = Bus.Fcfs) problem design =
  if Ftes_util.Kernel.incremental () then begin
    Ftes_obs.Metrics.incr c_schedules;
    Ftes_obs.Span.with_ ~name:"sched/schedule" (fun () ->
        schedule_length_fast ~slack ~bus problem design)
  end
  else Schedule.length (schedule ~slack ~bus problem design)

let is_schedulable ?slack ?bus problem design =
  let sl = schedule_length ?slack ?bus problem design in
  Ftes_util.Tolerance.leq sl
    problem.Problem.app.Ftes_model.Application.deadline_ms
