(* Per-domain scratch arrays for the scheduler hot path.  One arena per
   domain (no locking), grown geometrically and never shrunk; a nested
   acquisition on the same domain falls back to a throwaway arena so
   re-entrancy can never alias live scratch. *)

let n_float_slots = 8

let n_int_slots = 4

let n_bool_slots = 2

type t = {
  mutable busy : bool;
  floats : float array array;
  ints : int array array;
  bools : bool array array;
}

let create () =
  { busy = false;
    floats = Array.make n_float_slots [||];
    ints = Array.make n_int_slots [||];
    bools = Array.make n_bool_slots [||] }

let key = Domain.DLS.new_key create

let with_arena f =
  let arena = Domain.DLS.get key in
  if arena.busy then f (create ())
  else begin
    arena.busy <- true;
    Fun.protect ~finally:(fun () -> arena.busy <- false) (fun () -> f arena)
  end

let rounded n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

(* Returned arrays are at least [n] long and carry stale contents —
   callers fill the prefix they use. *)

let floats t ~slot ~n =
  if Array.length t.floats.(slot) < n then
    t.floats.(slot) <- Array.make (rounded n) 0.0;
  t.floats.(slot)

let ints t ~slot ~n =
  if Array.length t.ints.(slot) < n then
    t.ints.(slot) <- Array.make (rounded n) 0;
  t.ints.(slot)

let bools t ~slot ~n =
  if Array.length t.bools.(slot) < n then
    t.bools.(slot) <- Array.make (rounded n) false;
  t.bools.(slot)
