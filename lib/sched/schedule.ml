module Task_graph = Ftes_model.Task_graph
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design

type entry = {
  proc : int;
  slot : int;
  start : float;
  finish : float;
  commit : float;
}

type message = {
  edge : Task_graph.edge;
  bus_start : float;
  bus_finish : float;
}

type t = {
  entries : entry array;
  messages : message list;
  node_finish : float array;
  node_worst : float array;
  length : float;
}

let length t = t.length

let entry t ~proc = t.entries.(proc)

let schedulable t ~deadline_ms = Ftes_util.Tolerance.leq t.length deadline_ms

let utilization t ~slot =
  let busy =
    Array.fold_left
      (fun acc e -> if e.slot = slot then acc +. (e.finish -. e.start) else acc)
      0.0 t.entries
  in
  if t.node_finish.(slot) <= 0.0 then 0.0 else busy /. t.node_finish.(slot)

let eps = Ftes_util.Tolerance.time_eps_ms

let validate problem design t =
  let graph = Problem.graph problem in
  let n = Task_graph.n graph in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if Array.length t.entries <> n then fail "entry count mismatch"
  else begin
    let check_entry acc e =
      match acc with
      | Error _ -> acc
      | Ok () ->
          if e.slot <> design.Design.mapping.(e.proc) then
            fail "process %d scheduled on a slot it is not mapped to" e.proc
          else begin
            let expected = Design.wcet problem design ~proc:e.proc in
            (* Checkpoint saves may inflate the execution; it can never
               be shorter than the WCET table says. *)
            if e.finish -. e.start < expected -. eps then
              fail "process %d shorter than its WCET" e.proc
            else if e.start < -.eps then fail "process %d starts before 0" e.proc
            else if e.commit < e.finish -. eps then
              fail "process %d commits before it finishes" e.proc
            else Ok ()
          end
    in
    let structural = Array.fold_left check_entry (Ok ()) t.entries in
    match structural with
    | Error _ as err -> err
    | Ok () ->
        (* Precedence: same-node successors wait for the nominal finish,
           cross-node successors for the message that leaves after the
           worst-case commit. *)
        let find_message e =
          List.find_opt
            (fun m ->
              m.edge.Task_graph.src = e.Task_graph.src
              && m.edge.Task_graph.dst = e.Task_graph.dst)
            t.messages
        in
        let check_edge acc (e : Task_graph.edge) =
          match acc with
          | Error _ -> acc
          | Ok () ->
              let src = t.entries.(e.src) and dst = t.entries.(e.dst) in
              if src.slot = dst.slot then begin
                if dst.start < src.finish -. eps then
                  fail "edge %d->%d violated on the same node" e.src e.dst
                else Ok ()
              end
              else begin
                match find_message e with
                | None -> fail "edge %d->%d has no bus message" e.src e.dst
                | Some m ->
                    if m.bus_start < src.commit -. eps then
                      fail "message %d->%d leaves before the worst-case commit"
                        e.src e.dst
                    else if
                      (* TDMA fragments may stretch the occupancy over
                         slot gaps, but can never compress it. *)
                      m.bus_finish -. m.bus_start < e.transmission_ms -. eps
                    then fail "message %d->%d shorter than its WCTT" e.src e.dst
                    else if dst.start < m.bus_finish -. eps then
                      fail "edge %d->%d violated across nodes" e.src e.dst
                    else Ok ()
              end
        in
        let precedence =
          List.fold_left check_edge (Ok ()) (Task_graph.edges graph)
        in
        let overlaps intervals =
          let sorted = List.sort compare intervals in
          let rec scan = function
            | (s1, f1, a) :: ((s2, _, b) :: _ as rest) ->
                if s2 < f1 -. eps then Some (a, b, s1, s2) else scan rest
            | [ _ ] | [] -> None
          in
          scan sorted
        in
        let check_node acc slot =
          match acc with
          | Error _ -> acc
          | Ok () ->
              let intervals =
                Array.to_list t.entries
                |> List.filter_map (fun e ->
                       if e.slot = slot then Some (e.start, e.finish, e.proc)
                       else None)
              in
              (match overlaps intervals with
              | Some (a, b, _, _) ->
                  fail "processes %d and %d overlap on slot %d" a b slot
              | None -> Ok ())
        in
        let node_overlap =
          List.fold_left check_node precedence
            (List.init (Design.n_members design) Fun.id)
        in
        (match node_overlap with
        | Error _ as err -> err
        | Ok () -> (
            let bus_intervals =
              List.map
                (fun m -> (m.bus_start, m.bus_finish, m.edge.Task_graph.src))
                t.messages
            in
            match overlaps bus_intervals with
            | Some (a, b, _, _) ->
                fail "messages from %d and %d overlap on the bus" a b
            | None ->
                (* Worst-case node completions must dominate the nominal
                   ones and determine the schedule length. *)
                let rec check_nodes slot =
                  if slot = Design.n_members design then Ok ()
                  else if t.node_worst.(slot) < t.node_finish.(slot) -. eps
                  then fail "node %d worst end precedes its nominal end" slot
                  else check_nodes (slot + 1)
                in
                (match check_nodes 0 with
                | Error _ as err -> err
                | Ok () ->
                    let max_worst =
                      Array.fold_left Float.max 0.0 t.node_worst
                    in
                    if Float.abs (t.length -. max_worst) > eps then
                      fail "schedule length is not the worst node completion"
                    else Ok ())))
  end

let to_gantt problem design t =
  let app = problem.Problem.app in
  let name i = Ftes_model.Application.process_name app i in
  let buf = Buffer.create 512 in
  let width = 68 in
  let horizon = Float.max t.length 1e-9 in
  let col time =
    int_of_float (time /. horizon *. float_of_int (width - 1) +. 0.5)
  in
  let render_row label cells =
    let row = Bytes.make width '.' in
    List.iter
      (fun (s, f, text) ->
        let c0 = col s and c1 = max (col s) (col f - 1) in
        for c = c0 to min c1 (width - 1) do
          Bytes.set row c '='
        done;
        String.iteri
          (fun i ch ->
            let c = c0 + i in
            if c <= c1 && c < width then Bytes.set row c ch)
          text)
      cells;
    Buffer.add_string buf (Printf.sprintf "  %-8s |%s|\n" label (Bytes.to_string row))
  in
  Buffer.add_string buf
    (Printf.sprintf "  worst-case schedule length SL = %.2f ms (deadline %.2f ms)\n"
       t.length app.Ftes_model.Application.deadline_ms);
  Array.iteri
    (fun slot j ->
      let nt = Problem.node problem j in
      let cells =
        Array.to_list t.entries
        |> List.filter_map (fun e ->
               if e.slot = slot then Some (e.start, e.finish, name e.proc)
               else None)
      in
      let label =
        Printf.sprintf "%s h=%d" nt.Ftes_model.Platform.node_name
          design.Design.levels.(slot)
      in
      render_row label cells;
      let slack_cells =
        if t.node_worst.(slot) > t.node_finish.(slot) +. eps then
          [ (t.node_finish.(slot), t.node_worst.(slot), "slack") ]
        else []
      in
      if slack_cells <> [] then render_row "" slack_cells)
    design.Design.members;
  if t.messages <> [] then begin
    let cells =
      List.map
        (fun m ->
          ( m.bus_start,
            m.bus_finish,
            Printf.sprintf "m%d-%d" (m.edge.Task_graph.src + 1)
              (m.edge.Task_graph.dst + 1) ))
        t.messages
    in
    render_row "bus" cells
  end;
  Buffer.contents buf
