(** List scheduler with recovery slack (Section 6.4).

    Produces the static root schedule for a design: processes are
    placed on their mapped nodes in decreasing bottom-level priority and
    inter-node messages are serialized on the shared bus in
    first-come-first-served order.

    Three recovery-slack policies are provided:

    - {!Shared} — the paper's model, validated against every verdict of
      Fig. 3 and Fig. 4: processes and messages are packed at their
      fault-free times and each node reserves one shared slack region
      sized [kj * (max tijh + mu)] after its last process; the
      worst-case schedule length is the maximum over nodes of
      [nominal finish + slack].  Fault-induced delays are absorbed
      locally on each node; cross-node cascades (a re-execution on one
      node delaying a consumer on another) are {e not} added — see
      DESIGN.md and the {!Ftes_faultsim} optimism experiment.
    - {!Conservative} — a sound variant: a message leaves its node only
      at the producer's worst-case commit time
      [finish + kj * (max t of the processes scheduled so far + mu)], so
      the schedule length upper-bounds every <= kj-faults scenario.
    - {!Dedicated} — no sharing: every process carries its own slack
      [kj * (tijh + mu)] and its node successor starts after it; the
      ablation baseline quantifying the value of slack sharing.
    - {!Per_process} — like [Dedicated], but with an individually chosen
      retry budget per process (see {!Ftes_sfp.Per_process} for the
      matching reliability analysis and {!Ftes_core.Retry_opt} for the
      budget assignment); the design's per-node [kj] values are ignored
      by this policy.
    - {!Checkpointed} — shared slack with checkpointing (the companion
      technique of the paper's reference [15]): process [p] saves its
      state [kappa.(p) - 1] times during execution (each save costs
      [save_ms], inflating the fault-free WCET), and a fault re-executes
      only the failed segment, so the node slack shrinks to
      [kj * (max segment + mu)].  {!Ftes_core.Checkpoint_opt} chooses the
      checkpoint counts. *)

type slack_mode =
  | Shared
  | Conservative
  | Dedicated
  | Per_process of int array
      (** retry budget per process; must cover every process. *)
  | Checkpointed of { kappa : int array; save_ms : float }
      (** checkpoints per process (>= 1 each) and the cost of one
          state save. *)

val priorities : Ftes_model.Problem.t -> Ftes_model.Design.t -> float array
(** Bottom-level (longest remaining path) priority per process, using
    the design's WCETs and counting transmission times only on edges
    that cross nodes under the design's mapping. *)

val schedule :
  ?slack:slack_mode ->
  ?bus:Bus.policy ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  Schedule.t
(** Build the root schedule (defaults: [Shared] slack, [Fcfs] bus).

    Under {!Ftes_util.Kernel.Incremental} (the default) the ready set
    lives in a binary heap ordered (priority desc, index asc) — the
    exact argmax of the reference rescan — priority vectors are served
    from a per-domain memo ring, and short-lived working arrays come
    from the domain's {!Scratch} arena.  The resulting schedule is
    bit-identical to {!schedule_reference} for every slack and bus
    policy. *)

val schedule_reference :
  ?slack:slack_mode ->
  ?bus:Bus.policy ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  Schedule.t
(** The original O(n) rescan implementation, retained as the
    equivalence and benchmark baseline for {!schedule}. *)

val schedule_length :
  ?slack:slack_mode ->
  ?bus:Bus.policy ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  float
(** Worst-case schedule length [SL] of {!schedule}. *)

val is_schedulable :
  ?slack:slack_mode ->
  ?bus:Bus.policy ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  bool
(** [SL <= D]. *)
