(** Per-domain scratch arrays for the scheduler hot path.

    The list scheduler runs once per candidate design inside the tabu
    and escalation loops — allocating a dozen short working arrays per
    call dominated its minor-heap traffic.  Each domain owns one arena
    of reusable slots, so repeated schedules on the same domain reuse
    the same backing stores with no locking and no cross-domain
    sharing.

    Contract: an array obtained from a slot is valid only inside the
    enclosing {!with_arena}; it is at least the requested length and
    carries stale contents (callers initialize the prefix they use);
    distinct slots never alias.  Arrays that outlive the call — the
    entries, finish and worst vectors of {!Schedule.t} — must be
    allocated fresh, never from the arena. *)

type t

val with_arena : (t -> 'a) -> 'a
(** Run with the current domain's arena.  A nested acquisition on the
    same domain gets a fresh throwaway arena, so re-entrant schedulers
    cannot alias live scratch. *)

val floats : t -> slot:int -> n:int -> float array
(** Slot indices [0..7]. *)

val ints : t -> slot:int -> n:int -> int array
(** Slot indices [0..3]. *)

val bools : t -> slot:int -> n:int -> bool array
(** Slot indices [0..1]. *)
