module Design = Ftes_model.Design

type point = {
  design : Design.t;
  cost : float;
  slack : float;
  margin : float;
}

type spec = { objectives : Objective.t list; eps : float }

let c_inserted = Ftes_obs.Metrics.counter "pareto.inserted"

let c_dominated = Ftes_obs.Metrics.counter "pareto.dominated"

let c_evicted = Ftes_obs.Metrics.counter "pareto.evicted"

let c_merge_points = Ftes_obs.Metrics.counter "pareto.merge_points"

let g_hypervolume = Ftes_obs.Metrics.gauge "pareto.hypervolume"

let validate_spec { objectives; eps } =
  if objectives = [] then invalid_arg "Archive.spec: empty objective list";
  let rec dup = function
    | [] -> false
    | o :: rest -> List.mem o rest || dup rest
  in
  if dup objectives then invalid_arg "Archive.spec: duplicate objective";
  if not (Float.is_finite eps) || eps < 0.0 then
    invalid_arg "Archive.spec: eps must be finite and non-negative"

let default_spec = { objectives = Objective.all; eps = 0.0 }

let spec ?(objectives = Objective.all) ?(eps = 0.0) () =
  let spec = { objectives; eps } in
  validate_spec spec;
  spec

let objective_value p = function
  | Objective.Cost -> p.cost
  | Objective.Slack -> -.p.slack
  | Objective.Margin -> -.p.margin

let vector spec p =
  (* [+. 0.] normalizes a negated zero so equal objective values always
     produce bit-equal (hence equally hashed) vectors. *)
  Array.of_list
    (List.map (fun o -> objective_value p o +. 0.0) spec.objectives)

let dominates a b =
  let n = Array.length a in
  if Array.length b <> n then
    invalid_arg "Archive.dominates: length mismatch";
  let le = ref true and lt = ref false in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then le := false;
    if a.(i) < b.(i) then lt := true
  done;
  !le && !lt

let design_key (d : Design.t) = (d.members, d.levels, d.reexecs, d.mapping)

let compare_points spec a b =
  let c = compare (vector spec a) (vector spec b) in
  if c <> 0 then c
  else begin
    let c =
      compare
        (a.cost, -.a.slack, -.a.margin)
        (b.cost, -.b.slack, -.b.margin)
    in
    if c <> 0 then c else compare (design_key a.design) (design_key b.design)
  end

type t = {
  spec : spec;
  boxes : (float array, point) Hashtbl.t;  (* quantized key -> representative *)
  mutable best : point option;  (* least inserted point, grid-independent *)
  mutable inserted : int;
  mutable dominated : int;
  mutable evicted : int;
}

let create ?(spec = default_spec) () =
  validate_spec spec;
  {
    spec;
    boxes = Hashtbl.create 64;
    best = None;
    inserted = 0;
    dominated = 0;
    evicted = 0;
  }

let spec_of t = t.spec

let size t = Hashtbl.length t.boxes

let quantize spec v =
  if spec.eps = 0.0 then v
  else Array.map (fun x -> Float.floor (x /. spec.eps) +. 0.0) v

let check_point p =
  if
    not
      (Float.is_finite p.cost && Float.is_finite p.slack
     && Float.is_finite p.margin)
  then invalid_arg "Archive.insert: objective values must be finite"

let insert t p =
  check_point p;
  Ftes_obs.Span.with_ ~name:"pareto/insert" (fun () ->
      (match t.best with
      | Some b when compare_points t.spec b p <= 0 -> ()
      | _ -> t.best <- Some p);
      let key = quantize t.spec (vector t.spec p) in
      match Hashtbl.find_opt t.boxes key with
      | Some rep ->
          if compare_points t.spec p rep < 0 then begin
            Hashtbl.replace t.boxes key p;
            t.inserted <- t.inserted + 1;
            Ftes_obs.Metrics.incr c_inserted
          end
          else begin
            t.dominated <- t.dominated + 1;
            Ftes_obs.Metrics.incr c_dominated
          end
      | None ->
          let beaten =
            Hashtbl.fold
              (fun key' _ acc -> acc || dominates key' key)
              t.boxes false
          in
          if beaten then begin
            t.dominated <- t.dominated + 1;
            Ftes_obs.Metrics.incr c_dominated
          end
          else begin
            (* Kept boxes are mutually non-dominated, so a box dominated
               by [key] cannot itself dominate [key]; eviction and
               acceptance never conflict. *)
            let victims =
              Hashtbl.fold
                (fun key' _ acc ->
                  if dominates key key' then key' :: acc else acc)
                t.boxes []
            in
            List.iter (Hashtbl.remove t.boxes) victims;
            let n_victims = List.length victims in
            if n_victims > 0 then begin
              t.evicted <- t.evicted + n_victims;
              Ftes_obs.Metrics.add c_evicted n_victims
            end;
            Hashtbl.replace t.boxes key p;
            t.inserted <- t.inserted + 1;
            Ftes_obs.Metrics.incr c_inserted
          end)

let points t =
  let reps = Hashtbl.fold (fun _ p acc -> p :: acc) t.boxes [] in
  let all =
    match t.best with
    | Some b when not (List.exists (fun p -> p = b) reps) -> b :: reps
    | _ -> reps
  in
  List.sort (compare_points t.spec) all

let min_cost_point t =
  match points t with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun acc p -> if p.cost < acc.cost then p else acc)
           first rest)

let merge a b =
  if a.spec <> b.spec then invalid_arg "Archive.merge: spec mismatch";
  Ftes_obs.Span.with_ ~name:"pareto/merge" (fun () ->
      let pa = points a and pb = points b in
      Ftes_obs.Metrics.add c_merge_points (List.length pa + List.length pb);
      let t = create ~spec:a.spec () in
      List.iter (insert t) pa;
      List.iter (insert t) pb;
      t)

let equal a b = a.spec = b.spec && points a = points b

type reference = { ref_cost : float; ref_slack : float; ref_margin : float }

let reference_vector spec r =
  let value = function
    | Objective.Cost -> r.ref_cost
    | Objective.Slack -> -.r.ref_slack
    | Objective.Margin -> -.r.ref_margin
  in
  Array.of_list (List.map (fun o -> value o +. 0.0) spec.objectives)

(* Exclusive-hypervolume sweep in 2-D: points sorted by x ascending;
   each point contributes the rectangle between its x, the reference x,
   its y and the best (lowest) y seen so far. *)
let hv2 pts ~rx ~ry =
  let sorted = List.sort compare pts in
  let rec sweep min_y acc = function
    | [] -> acc
    | (x, y) :: rest ->
        if y < min_y then
          sweep y (acc +. ((rx -. x) *. (min_y -. y))) rest
        else sweep min_y acc rest
  in
  sweep ry 0.0 sorted

(* 3-D by slicing along the third coordinate: between two consecutive
   distinct z values the dominated region's cross-section is the 2-D
   staircase of every point at or below the slice. *)
let hv3 vs ~r =
  let zs = List.sort_uniq compare (List.map (fun v -> v.(2)) vs) in
  let rec slices acc = function
    | [] -> acc
    | z :: rest ->
        let z_next = match rest with z' :: _ -> z' | [] -> r.(2) in
        let slab =
          List.filter_map
            (fun v -> if v.(2) <= z then Some (v.(0), v.(1)) else None)
            vs
        in
        slices (acc +. ((z_next -. z) *. hv2 slab ~rx:r.(0) ~ry:r.(1))) rest
  in
  slices 0.0 zs

let hypervolume t ~reference =
  let r = reference_vector t.spec reference in
  Array.iter
    (fun x ->
      if not (Float.is_finite x) then
        invalid_arg "Archive.hypervolume: reference must be finite")
    r;
  let inside v =
    let ok = ref true in
    Array.iteri (fun i x -> if not (x < r.(i)) then ok := false) v;
    !ok
  in
  let vs =
    List.filter inside (List.map (vector t.spec) (points t))
  in
  let hv =
    match Array.length r with
    | 1 -> (
        match vs with
        | [] -> 0.0
        | _ ->
            r.(0)
            -. List.fold_left (fun m v -> Float.min m v.(0)) Float.infinity vs)
    | 2 -> hv2 (List.map (fun v -> (v.(0), v.(1))) vs) ~rx:r.(0) ~ry:r.(1)
    | 3 -> hv3 vs ~r
    | _ -> assert false (* specs carry at most the three objectives *)
  in
  Ftes_obs.Metrics.set g_hypervolume hv;
  hv

type stats = { boxes : int; inserted : int; dominated : int; evicted : int }

let stats (t : t) =
  {
    boxes = Hashtbl.length t.boxes;
    inserted = t.inserted;
    dominated = t.dominated;
    evicted = t.evicted;
  }

let of_points ?spec pts =
  let t = create ?spec () in
  List.iter (insert t) pts;
  t

let unsafe_of_points ?(spec = default_spec) pts =
  validate_spec spec;
  let t = create ~spec () in
  (* Unique synthetic keys keep every point, however dominated; the
     result exists only to be read back by the verifier. *)
  List.iteri
    (fun i p ->
      Hashtbl.replace t.boxes
        (Array.append (vector spec p) [| float_of_int i |])
        p)
    pts;
  (match List.sort (compare_points spec) pts with
  | [] -> ()
  | least :: _ -> t.best <- Some least);
  t
