(** Anytime ε-dominance archive over feasible designs.

    The archive ingests every feasible candidate the optimizer
    evaluates and keeps a bounded, deterministic approximation of the
    Pareto frontier over the selected {!Objective}s.  Its content is a
    {e pure function of the set of inserted points} — independent of
    insertion order — which is what makes parallel exploration
    reproducible: merging per-domain archives in any grouping yields
    the same archive as sequential insertion (DESIGN.md §11).

    Mechanics: each point's min-oriented objective vector is quantized
    onto an ε-grid ([floor (v/ε)]; the identity when [ε = 0]).  A grid
    box survives iff no other inserted box dominates it componentwise —
    box dominance is transitive, so evictions are permanent and the
    kept boxes are exactly the minimal elements of the inserted box
    set.  Each kept box stores one canonical representative: the least
    inserted point under {!compare_points}.  The least point overall is
    additionally retained outside the grid, so the exact optimum is
    never lost to ε-coarsening. *)

type point = {
  design : Ftes_model.Design.t;
  cost : float;  (** architecture cost (minimized). *)
  slack : float;  (** worst-case schedule slack in ms (maximized). *)
  margin : float;
      (** SFP margin in -log10 decades (maximized); see
          {!Ftes_sfp.Sfp.log10_margin}. *)
}

type spec = {
  objectives : Objective.t list;  (** non-empty, duplicate-free. *)
  eps : float;  (** grid resolution; [0.] keeps the exact frontier. *)
}

val default_spec : spec
(** All three objectives, [eps = 0.]. *)

val spec : ?objectives:Objective.t list -> ?eps:float -> unit -> spec
(** Checked constructor.  Raises [Invalid_argument] on an empty or
    duplicated objective list, or an [eps] that is negative or not
    finite. *)

type t

val create : ?spec:spec -> unit -> t
(** Fresh empty archive ({!default_spec} unless given).  The spec is
    re-validated as by {!spec}. *)

val spec_of : t -> spec

val size : t -> int
(** Number of kept grid boxes (one representative each). *)

val insert : t -> point -> unit
(** Offer one feasible point.  O(size) per call.  Raises
    [Invalid_argument] if an objective value is not finite. *)

val points : t -> point list
(** The frontier: the kept representatives plus the retained least
    point, deduplicated and sorted by {!compare_points}.  The result is
    mutually non-dominated under exact (ε-free) dominance on the
    archive's objectives. *)

val min_cost_point : t -> point option
(** The cheapest frontier point (ties broken by {!compare_points}).
    When [Cost] is among the objectives this is the exact minimum over
    {e all} inserted points — grid coarsening never loses it. *)

val merge : t -> t -> t
(** Combine two archives over the same spec into a fresh one; equals
    inserting both point sets into an empty archive, in any order.
    Raises [Invalid_argument] on a spec mismatch.  Every point offered
    during a merge is counted on the [pareto.merge_points] counter
    (and then classified as [pareto.inserted] or [pareto.dominated]
    like any insert, so [merge_points <= inserted + dominated] — an
    [obs/*] verifier rule audits this). *)

val equal : t -> t -> bool
(** Same spec and bit-identical frontier (costs, slacks, margins and
    design arrays); insertion statistics are not compared. *)

(** {1 Dominance primitives} (exposed for property tests and the
    [pareto/*] verifier rules) *)

val vector : spec -> point -> float array
(** The point's min-oriented objective vector, one entry per selected
    objective in spec order ([Slack] and [Margin] negated). *)

val dominates : float array -> float array -> bool
(** [dominates a b]: [a] is componentwise [<=] and somewhere [<].
    Irreflexive and transitive — a strict partial order.  Raises
    [Invalid_argument] on a length mismatch. *)

val compare_points : spec -> point -> point -> int
(** Canonical total order: lexicographic on {!vector}, then on the full
    (cost, -slack, -margin) triple, then on the design arrays.  Its
    least element over any point set is never dominated. *)

(** {1 Progress indicator} *)

type reference = {
  ref_cost : float;
  ref_slack : float;
  ref_margin : float;
}
(** Fixed worst-corner reference point (dominated by every interesting
    frontier point): hypervolume is measured between the frontier and
    this corner. *)

val hypervolume : t -> reference:reference -> float
(** Volume of objective space dominated by the frontier and bounded by
    [reference] (points not strictly better than the reference in every
    selected objective contribute nothing).  Exact sweep in 1-D/2-D/3-D,
    O(n² log n).  Also published on the [pareto.hypervolume] gauge. *)

(** {1 Statistics} *)

type stats = {
  boxes : int;  (** current archive size = kept boxes. *)
  inserted : int;  (** offers accepted (new box or better representative). *)
  dominated : int;  (** offers rejected by a kept box or representative. *)
  evicted : int;  (** boxes displaced by newly inserted dominating boxes. *)
}

val stats : t -> stats
(** Per-archive tallies; the process-wide [pareto.*] counters aggregate
    the same events across every archive. *)

(** {1 Reconstruction} *)

val of_points : ?spec:spec -> point list -> t
(** {!create} followed by {!insert} of each point — used by the
    frontier readers. *)

val unsafe_of_points : ?spec:spec -> point list -> t
(** Archive that reports exactly [points] from {!points}, {e bypassing}
    dominance filtering — deliberately able to represent invalid
    archives so the verifier's mutation tests can corrupt one.  Do not
    {!insert} into or {!merge} the result. *)
