type t = Cost | Slack | Margin

let all = [ Cost; Slack; Margin ]

let name = function Cost -> "cost" | Slack -> "slack" | Margin -> "margin"

let of_name = function
  | "cost" -> Ok Cost
  | "slack" -> Ok Slack
  | "margin" -> Ok Margin
  | other ->
      Error
        (Printf.sprintf
           "unknown objective %S (expected cost, slack or margin)" other)

let parse_list text =
  let parts =
    String.split_on_char ',' text |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "empty objective list"
  else begin
    let rec build seen = function
      | [] -> Ok (List.rev seen)
      | part :: rest -> (
          match of_name part with
          | Error _ as e -> e
          | Ok o ->
              if List.mem o seen then
                Error (Printf.sprintf "duplicate objective %S" part)
              else build (o :: seen) rest)
    in
    build [] parts
  end

let names objectives = String.concat "," (List.map name objectives)
