(** Frontier exchange formats (CSV and JSON), following the
    {!Ftes_model.Problem_io} conventions: JSON documents carry an
    explicit ["schema_version"] (currently 1); a versionless document
    is read as the deprecated v0 with a warning; an unknown version is
    rejected.

    Both readers take the {!Ftes_model.Problem.t} the frontier was
    computed for and re-validate every design against it through the
    checked {!Ftes_model.Design.make}, so a frontier file can never
    smuggle an out-of-library design back into the toolchain. *)

val schema_version : int

val csv_header : string list
(** [cost; slack_ms; margin_log10; members; levels; reexecs; mapping] —
    objective values as round-trippable decimal floats, design arrays
    as [';']-joined integers. *)

val to_csv : Archive.t -> string list list
(** Header row followed by one row per frontier point, in
    {!Archive.points} order. *)

val of_csv :
  ?spec:Archive.spec ->
  problem:Ftes_model.Problem.t ->
  string list list ->
  (Archive.t, string) result
(** Rebuild an archive ({!Archive.default_spec} unless [spec] is given
    — the CSV carries data only) by re-inserting every row.  Rejects a
    bad header, malformed fields and designs that do not validate. *)

val point_to_json : Archive.point -> Ftes_util.Json.t
(** One frontier point as a JSON object (the element format of
    {!to_json}'s ["points"] list) — exported so campaign checkpoints
    serialize points in the same spelling. *)

val point_of_json :
  problem:Ftes_model.Problem.t ->
  row:int ->
  Ftes_util.Json.t ->
  (Archive.point, string) result
(** Inverse of {!point_to_json}; the design is re-validated against
    [problem] through {!Ftes_model.Design.make}.  Extra fields (a
    campaign checkpoint adds the application index) are ignored.
    [row] only labels error messages. *)

val to_json : ?reference:Archive.reference -> Archive.t -> Ftes_util.Json.t
(** Self-describing document: schema version, objective names, [eps],
    frontier size and points; when [reference] is given, also the
    reference corner and the archive's hypervolume against it. *)

val of_json :
  ?on_warning:(string -> unit) ->
  problem:Ftes_model.Problem.t ->
  Ftes_util.Json.t ->
  (Archive.t, string) result
(** Inverse of {!to_json}; the spec ([objectives] and [eps]) is read
    from the document itself.  [on_warning] receives the v0
    deprecation notice (default: print to [stderr]). *)

val to_string : ?reference:Archive.reference -> Archive.t -> string
(** Rendered {!to_json}. *)

val of_string :
  ?on_warning:(string -> unit) ->
  problem:Ftes_model.Problem.t ->
  string ->
  (Archive.t, string) result
