(** The three archive objectives of the frontier subsystem.

    Every objective is normalized to {e minimization} internally (the
    archive compares min-oriented vectors), but the external reading is
    the natural one: cost is minimized while slack and reliability
    margin are maximized. *)

type t =
  | Cost  (** architecture cost (minimize). *)
  | Slack  (** worst-case schedule slack in ms (maximize). *)
  | Margin
      (** SFP margin in -log10 space, decades below the admissible
          per-iteration failure probability (maximize);
          see {!Ftes_sfp.Sfp.log10_margin}. *)

val all : t list
(** [[Cost; Slack; Margin]] — the default objective set, in canonical
    order. *)

val name : t -> string
(** ["cost"], ["slack"], ["margin"] — the spelling used by
    [--objectives], CSV headers and JSON documents. *)

val of_name : string -> (t, string) result

val parse_list : string -> (t list, string) result
(** Parse a comma-separated objective list (e.g. ["cost,slack"]).
    Rejects empty lists, unknown names and duplicates. *)

val names : t list -> string
(** Comma-joined {!name}s, the inverse of {!parse_list}. *)
