module Json = Ftes_util.Json
module Design = Ftes_model.Design
open Json

let schema_version = 1

let csv_header =
  [ "cost"; "slack_ms"; "margin_log10"; "members"; "levels"; "reexecs";
    "mapping" ]

(* %.17g round-trips every finite double through float_of_string. *)
let float_field = Printf.sprintf "%.17g"

let ints_field arr =
  String.concat ";" (List.map string_of_int (Array.to_list arr))

let ints_of_field label text =
  let parts = if text = "" then [] else String.split_on_char ';' text in
  let rec build acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | part :: rest -> (
        match int_of_string_opt part with
        | Some v -> build (v :: acc) rest
        | None -> Error (Printf.sprintf "%s: bad integer %S" label part))
  in
  build [] parts

let float_of_field label text =
  match float_of_string_opt text with
  | Some v when Float.is_finite v -> Ok v
  | _ -> Error (Printf.sprintf "%s: bad number %S" label text)

let guard label f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (label ^ ": " ^ msg)

let point_row (p : Archive.point) =
  [ float_field p.Archive.cost;
    float_field p.Archive.slack;
    float_field p.Archive.margin;
    ints_field p.Archive.design.Design.members;
    ints_field p.Archive.design.Design.levels;
    ints_field p.Archive.design.Design.reexecs;
    ints_field p.Archive.design.Design.mapping ]

let to_csv archive =
  csv_header :: List.map point_row (Archive.points archive)

let point_of_fields ~problem ~row cost slack margin members levels reexecs
    mapping =
  let label field = Printf.sprintf "row %d, %s" row field in
  let* cost = float_of_field (label "cost") cost in
  let* slack = float_of_field (label "slack_ms") slack in
  let* margin = float_of_field (label "margin_log10") margin in
  let* members = ints_of_field (label "members") members in
  let* levels = ints_of_field (label "levels") levels in
  let* reexecs = ints_of_field (label "reexecs") reexecs in
  let* mapping = ints_of_field (label "mapping") mapping in
  let* design =
    guard
      (Printf.sprintf "row %d, design" row)
      (fun () -> Design.make problem ~members ~levels ~reexecs ~mapping)
  in
  Ok { Archive.design; cost; slack; margin }

let of_csv ?spec ~problem rows =
  match rows with
  | [] -> Error "empty frontier CSV"
  | header :: body ->
      if header <> csv_header then
        Error
          (Printf.sprintf "unexpected frontier CSV header [%s]"
             (String.concat "; " header))
      else begin
        let rec build acc row = function
          | [] -> Ok (List.rev acc)
          | [ cost; slack; margin; members; levels; reexecs; mapping ]
            :: rest ->
              let* p =
                point_of_fields ~problem ~row cost slack margin members levels
                  reexecs mapping
              in
              build (p :: acc) (row + 1) rest
          | bad :: _ ->
              Error
                (Printf.sprintf "row %d: expected %d fields, found %d" row
                   (List.length csv_header) (List.length bad))
        in
        let* pts = build [] 1 body in
        guard "frontier" (fun () -> Archive.of_points ?spec pts)
      end

let ints_json arr =
  List (Array.to_list (Array.map (fun v -> Number (float_of_int v)) arr))

let point_to_json (p : Archive.point) =
  Object
    [ ("cost", Number p.Archive.cost);
      ("slack_ms", Number p.Archive.slack);
      ("margin_log10", Number p.Archive.margin);
      ("members", ints_json p.Archive.design.Design.members);
      ("levels", ints_json p.Archive.design.Design.levels);
      ("reexecs", ints_json p.Archive.design.Design.reexecs);
      ("mapping", ints_json p.Archive.design.Design.mapping) ]

let to_json ?reference archive =
  let spec = Archive.spec_of archive in
  let pts = Archive.points archive in
  let progress =
    match reference with
    | None -> []
    | Some r ->
        [ ( "reference",
            Object
              [ ("cost", Number r.Archive.ref_cost);
                ("slack_ms", Number r.Archive.ref_slack);
                ("margin_log10", Number r.Archive.ref_margin) ] );
          ("hypervolume", Number (Archive.hypervolume archive ~reference:r))
        ]
  in
  Object
    ([ Ftes_util.Versioned_json.field schema_version;
       ( "objectives",
         List
           (List.map
              (fun o -> String (Objective.name o))
              spec.Archive.objectives) );
       ("eps", Number spec.Archive.eps);
       ("size", Number (float_of_int (List.length pts))) ]
    @ progress
    @ [ ("points", List (List.map point_to_json pts)) ])

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let int_array_of_json json =
  let* items = to_list json in
  let* ints = map_result to_int items in
  Ok (Array.of_list ints)

let point_of_json ~problem ~row json =
  let* cost = Result.bind (member "cost" json) to_float in
  let* slack = Result.bind (member "slack_ms" json) to_float in
  let* margin = Result.bind (member "margin_log10" json) to_float in
  let* members = Result.bind (member "members" json) int_array_of_json in
  let* levels = Result.bind (member "levels" json) int_array_of_json in
  let* reexecs = Result.bind (member "reexecs" json) int_array_of_json in
  let* mapping = Result.bind (member "mapping" json) int_array_of_json in
  let* design =
    guard
      (Printf.sprintf "point %d, design" row)
      (fun () -> Design.make problem ~members ~levels ~reexecs ~mapping)
  in
  Ok { Archive.design; cost; slack; margin }

let default_warn msg = Printf.eprintf "frontier_io: warning: %s\n%!" msg

let of_json ?(on_warning = default_warn) ~problem json =
  let* () =
    Ftes_util.Versioned_json.check ~what:"document" ~accept_v0:true
      ~on_warning ~current:schema_version json
  in
  let* names = Result.bind (member "objectives" json) to_list in
  let* names = map_result to_string_value names in
  let* objectives = map_result Objective.of_name names in
  let* eps = Result.bind (member "eps" json) to_float in
  let* spec = guard "spec" (fun () -> Archive.spec ~objectives ~eps ()) in
  let* items = Result.bind (member "points" json) to_list in
  let rec build acc row = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
        let* p = point_of_json ~problem ~row item in
        build (p :: acc) (row + 1) rest
  in
  let* pts = build [] 1 items in
  guard "frontier" (fun () -> Archive.of_points ~spec pts)

let to_string ?reference archive = Json.to_string (to_json ?reference archive)

let of_string ?on_warning ~problem text =
  let* json = Json.of_string text in
  of_json ?on_warning ~problem json
