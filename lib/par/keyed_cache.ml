type ('k, 'v) t = {
  lock : Mutex.t;
  table : ('k, 'v) Hashtbl.t;
  max_entries : int;
  on_event : [ `Hit | `Miss | `Drop ] -> unit;
  mutable hits : int;
  mutable misses : int;
  mutable drops : int;
}

let create ?(max_entries = 256) ?(on_event = fun _ -> ()) () =
  if max_entries < 1 then
    invalid_arg "Keyed_cache.create: max_entries must be positive";
  { lock = Mutex.create ();
    table = Hashtbl.create 16;
    max_entries;
    on_event;
    hits = 0;
    misses = 0;
    drops = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_or_add t key build =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.hits <- t.hits + 1;
          t.on_event `Hit;
          v
      | None ->
          t.misses <- t.misses + 1;
          t.on_event `Miss;
          let v = build () in
          if Hashtbl.length t.table < t.max_entries then
            Hashtbl.replace t.table key v
          else begin
            t.drops <- t.drops + 1;
            t.on_event `Drop
          end;
          v)

let find_opt t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.hits <- t.hits + 1;
          t.on_event `Hit;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          t.on_event `Miss;
          None)

let length t = with_lock t (fun () -> Hashtbl.length t.table)

let hits t = with_lock t (fun () -> t.hits)

let misses t = with_lock t (fun () -> t.misses)

let drops t = with_lock t (fun () -> t.drops)
