(** Memoized SFP node analyses for the design-space exploration.

    The SFP kernel (formulae (1)-(4)) is evaluated per architecture
    member, and its input — the vector of failure probabilities of the
    processes mapped onto the member — is fully determined by the
    member's node type, its hardening version and the set of mapped
    processes.  Candidate designs explored by the tabu mapping search
    and the hardening escalation share most of these
    [(node, h-version, processes)] triples, so the [Pr(f; Njh)] /
    [Pr(f > kj; Njh)] tables are cached under that key instead of being
    rebuilt per candidate.

    A cache instance is bound to one {!Ftes_model.Problem.t}: the key
    does not include the probability tables themselves, only the
    indices that select them.  Create one cache per optimization run
    (as {!Ftes_core.Design_strategy.run} does) and never share it
    across problems.

    All operations are domain-safe; concurrent lookups of the same key
    may both compute the value, which is harmless because the analysis
    is a pure function of the key.  Cached tables are bit-identical to
    fresh computations, so memoization never changes any result. *)

type key = {
  node : int;  (** library index of the member's node type. *)
  level : int;  (** hardening version in use. *)
  kmax : int;  (** re-execution bound of the table. *)
  procs : int array;  (** mapped processes, ascending. *)
}

type t

val create : ?max_entries:int -> unit -> t
(** Fresh empty cache.  Once [max_entries] (default [1 lsl 18]) keys
    are stored, further misses compute without inserting, bounding the
    footprint of exhaustive enumerations.  Each skipped insert bumps
    the process-wide [sfp_cache.capacity_drops] counter so saturation
    is observable (see the [obs/cache-capacity] verifier rule). *)

val node_analysis :
  t ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  member:int ->
  kmax:int ->
  Ftes_sfp.Sfp.node_analysis
(** [node_analysis t problem design ~member ~kmax] is
    [Sfp.node_analysis ~kmax] of the member's failure-probability
    vector, served from the cache when the [(node, h-version, procs,
    kmax)] key has been seen before. *)

val node_vectors :
  t ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  member:int ->
  kmax:int ->
  Ftes_sfp.Incremental.node_vectors
(** Like {!node_analysis}, serving the memoized
    {!Ftes_sfp.Incremental.node_vectors} derived from the same table —
    the incremental re-execution kernel's one-lookup read.  Both views
    share one cache entry, so a hit on either serves the other. *)

val migrate :
  ?same_keys:bool -> keep:(key -> key option) -> t -> t * (int * int)
(** [migrate ~keep t] builds a fresh cache (same capacity, zeroed
    per-instance counters) holding every entry of [t] whose key [keep]
    maps to [Some key'], stored under [key'].  [t] is left untouched.
    Returns the new cache with [(kept, dropped)] counts.

    [same_keys] promises that [keep] only ever answers [None] or the
    entry's own key (no renumbering) — true for every delta whose
    [node_map] is the identity — and lets the migration reuse the
    source table's bucket layout instead of rehashing each key.

    This is the warm-start survival pass: the caller proves — via
    {!Ftes_whatif.Delta.footprint} — that the surviving keys' analyses
    are bit-identical on the perturbed problem (the key's probability
    cells are untouched and [kmax] is part of the key), and remaps
    library indices when the delta reshaped the library.  [keep] must
    be injective on the kept keys. *)

val hits : t -> int

val misses : t -> int

val length : t -> int
(** Number of distinct keys stored. *)

val entries : t -> (key * Ftes_sfp.Sfp.node_analysis) list
(** Snapshot of the stored tables (key order unspecified); consumed by
    the static verifier's SFP-cache contract rule and by tests. *)

(** Process-wide counters, aggregated over every cache instance, so the
    benchmark can report one hit rate across the per-application
    caches of a whole experiment cell. *)
type totals = { total_hits : int; total_misses : int }

val totals : unit -> totals

val reset_totals : unit -> unit

val hit_rate : totals -> float
(** Hits over lookups, [0.] when no lookup happened. *)
