module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Sfp = Ftes_sfp.Sfp

type key = { node : int; level : int; kmax : int; procs : int array }

(* The generic polymorphic hash samples only a prefix of the structure,
   so keys differing late in [procs] would chain; hash every element. *)
module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal a b =
    a.node = b.node && a.level = b.level && a.kmax = b.kmax
    && a.procs = b.procs

  let hash k =
    let h = 0x811c9dc5 + k.node + (31 * k.level) + (961 * k.kmax) in
    Array.fold_left (fun h x -> (h * 0x01000193) lxor (x + 1)) h k.procs
end)

module Incremental = Ftes_sfp.Incremental

type entry = {
  analysis : Sfp.node_analysis;
  vectors : Incremental.node_vectors;
}

type t = {
  table : entry Key_tbl.t;
  mutex : Mutex.t;
  max_entries : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

(* Process-wide totals live on the Ftes_obs registry (PR 3 migrated
   them off ad-hoc atomics), so metrics snapshots and the `ftes
   profile` breakdown see them without extra plumbing; the per-instance
   counters below stay plain atomics, as tests inspect them per run. *)
let c_lookups = Ftes_obs.Metrics.counter "sfp_cache.lookups"

let c_hits = Ftes_obs.Metrics.counter "sfp_cache.hits"

let c_misses = Ftes_obs.Metrics.counter "sfp_cache.misses"

let c_capacity_drops = Ftes_obs.Metrics.counter "sfp_cache.capacity_drops"

let create ?(max_entries = 1 lsl 18) () =
  if max_entries < 1 then invalid_arg "Sfp_cache.create: empty capacity";
  { table = Key_tbl.create 1024;
    mutex = Mutex.create ();
    max_entries;
    hits = Atomic.make 0;
    misses = Atomic.make 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Ascending processes on [member], built without the intermediate
   list [Design.procs_on] returns — key construction runs on every
   kernel evaluation.  Neighbor designs explored by one
   escalation/reduction sweep share the mapping array physically
   ([Design.with_levels] keeps it, and every design constructor copies
   its input array), so a mapping array's contents are frozen for its
   lifetime and its identity keys a one-slot per-domain cache of the
   full member partition, computed once per sweep instead of twice per
   lookup. *)
type partition = {
  mutable p_mapping : int array;
  mutable p_procs : int array array;
}

let partition_key =
  Domain.DLS.new_key (fun () -> { p_mapping = [||]; p_procs = [||] })

let procs_of design ~member =
  let mapping = design.Design.mapping in
  let cache = Domain.DLS.get partition_key in
  if cache.p_mapping != mapping || Array.length cache.p_procs <= member
  then begin
    (* The length guard also covers empty mappings: all zero-length
       int arrays share one atom, so identity alone could not tell two
       empty-process designs apart. *)
    let members = Array.length design.Design.members in
    let n = Array.length mapping in
    let fill = Array.make members 0 in
    for p = 0 to n - 1 do
      fill.(mapping.(p)) <- fill.(mapping.(p)) + 1
    done;
    let procs = Array.init members (fun m -> Array.make fill.(m) 0) in
    Array.fill fill 0 members 0;
    for p = 0 to n - 1 do
      let m = mapping.(p) in
      procs.(m).(fill.(m)) <- p;
      fill.(m) <- fill.(m) + 1
    done;
    cache.p_mapping <- mapping;
    cache.p_procs <- procs
  end;
  cache.p_procs.(member)

let node_entry t problem design ~member ~kmax =
  let key =
    { node = design.Design.members.(member);
      level = design.Design.levels.(member);
      kmax;
      procs = procs_of design ~member }
  in
  Ftes_obs.Metrics.incr c_lookups;
  match locked t (fun () -> Key_tbl.find_opt t.table key) with
  | Some entry ->
      Atomic.incr t.hits;
      Ftes_obs.Metrics.incr c_hits;
      entry
  | None ->
      Atomic.incr t.misses;
      Ftes_obs.Metrics.incr c_misses;
      (* Compute outside the lock: a concurrent duplicate computation
         of a pure function is cheaper than serializing the kernel. *)
      let analysis =
        Sfp.node_analysis ~kmax (Design.pfail_vector problem design ~member)
      in
      let entry = { analysis; vectors = Incremental.node_vectors analysis } in
      locked t (fun () ->
          if Key_tbl.length t.table < t.max_entries then
            Key_tbl.replace t.table key entry
          else Ftes_obs.Metrics.incr c_capacity_drops);
      entry

let node_analysis t problem design ~member ~kmax =
  (node_entry t problem design ~member ~kmax).analysis

let node_vectors t problem design ~member ~kmax =
  (node_entry t problem design ~member ~kmax).vectors

let migrate ?(same_keys = false) ~keep t =
  let kept = ref 0 and dropped = ref 0 in
  let fresh =
    if same_keys then begin
      (* Keys survive verbatim, so a bucket-preserving copy plus an
         in-place filter skips rehashing every (node, level, kmax,
         procs) key — migration is the floor of a warm what-if rerun,
         and the rehash dominated it. *)
      let table = locked t (fun () -> Key_tbl.copy t.table) in
      Key_tbl.filter_map_inplace
        (fun key entry ->
          if Option.is_some (keep key) then begin
            incr kept;
            Some entry
          end
          else begin
            incr dropped;
            None
          end)
        table;
      { table;
        mutex = Mutex.create ();
        max_entries = t.max_entries;
        hits = Atomic.make 0;
        misses = Atomic.make 0 }
    end
    else begin
      let fresh = create ~max_entries:t.max_entries () in
      locked t (fun () ->
          Key_tbl.iter
            (fun key entry ->
              match keep key with
              | Some key' ->
                  incr kept;
                  Key_tbl.replace fresh.table key' entry
              | None -> incr dropped)
            t.table);
      fresh
    end
  in
  (fresh, (!kept, !dropped))

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let length t = locked t (fun () -> Key_tbl.length t.table)

let entries t =
  locked t (fun () ->
      Key_tbl.fold
        (fun key entry acc -> (key, entry.analysis) :: acc)
        t.table [])

type totals = { total_hits : int; total_misses : int }

let totals () =
  { total_hits = Ftes_obs.Metrics.counter_value c_hits;
    total_misses = Ftes_obs.Metrics.counter_value c_misses }

let reset_totals () =
  Ftes_obs.Metrics.reset_counter c_lookups;
  Ftes_obs.Metrics.reset_counter c_hits;
  Ftes_obs.Metrics.reset_counter c_misses;
  Ftes_obs.Metrics.reset_counter c_capacity_drops

let hit_rate { total_hits; total_misses } =
  let lookups = total_hits + total_misses in
  if lookups = 0 then 0.0
  else float_of_int total_hits /. float_of_int lookups
