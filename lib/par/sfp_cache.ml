module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Sfp = Ftes_sfp.Sfp

type key = { node : int; level : int; kmax : int; procs : int array }

(* The generic polymorphic hash samples only a prefix of the structure,
   so keys differing late in [procs] would chain; hash every element. *)
module Key_tbl = Hashtbl.Make (struct
  type t = key

  let equal a b =
    a.node = b.node && a.level = b.level && a.kmax = b.kmax
    && a.procs = b.procs

  let hash k =
    let h = 0x811c9dc5 + k.node + (31 * k.level) + (961 * k.kmax) in
    Array.fold_left (fun h x -> (h * 0x01000193) lxor (x + 1)) h k.procs
end)

type t = {
  table : Sfp.node_analysis Key_tbl.t;
  mutex : Mutex.t;
  max_entries : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

(* Process-wide totals live on the Ftes_obs registry (PR 3 migrated
   them off ad-hoc atomics), so metrics snapshots and the `ftes
   profile` breakdown see them without extra plumbing; the per-instance
   counters below stay plain atomics, as tests inspect them per run. *)
let c_lookups = Ftes_obs.Metrics.counter "sfp_cache.lookups"

let c_hits = Ftes_obs.Metrics.counter "sfp_cache.hits"

let c_misses = Ftes_obs.Metrics.counter "sfp_cache.misses"

let create ?(max_entries = 1 lsl 18) () =
  if max_entries < 1 then invalid_arg "Sfp_cache.create: empty capacity";
  { table = Key_tbl.create 1024;
    mutex = Mutex.create ();
    max_entries;
    hits = Atomic.make 0;
    misses = Atomic.make 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let node_analysis t problem design ~member ~kmax =
  let key =
    { node = design.Design.members.(member);
      level = design.Design.levels.(member);
      kmax;
      procs = Array.of_list (Design.procs_on design ~member) }
  in
  Ftes_obs.Metrics.incr c_lookups;
  match locked t (fun () -> Key_tbl.find_opt t.table key) with
  | Some analysis ->
      Atomic.incr t.hits;
      Ftes_obs.Metrics.incr c_hits;
      analysis
  | None ->
      Atomic.incr t.misses;
      Ftes_obs.Metrics.incr c_misses;
      (* Compute outside the lock: a concurrent duplicate computation
         of a pure function is cheaper than serializing the kernel. *)
      let analysis =
        Sfp.node_analysis ~kmax (Design.pfail_vector problem design ~member)
      in
      locked t (fun () ->
          if Key_tbl.length t.table < t.max_entries then
            Key_tbl.replace t.table key analysis);
      analysis

let hits t = Atomic.get t.hits

let misses t = Atomic.get t.misses

let length t = locked t (fun () -> Key_tbl.length t.table)

let entries t =
  locked t (fun () ->
      Key_tbl.fold (fun key analysis acc -> (key, analysis) :: acc) t.table [])

type totals = { total_hits : int; total_misses : int }

let totals () =
  { total_hits = Ftes_obs.Metrics.counter_value c_hits;
    total_misses = Ftes_obs.Metrics.counter_value c_misses }

let reset_totals () =
  Ftes_obs.Metrics.reset_counter c_lookups;
  Ftes_obs.Metrics.reset_counter c_hits;
  Ftes_obs.Metrics.reset_counter c_misses

let hit_rate { total_hits; total_misses } =
  let lookups = total_hits + total_misses in
  if lookups = 0 then 0.0
  else float_of_int total_hits /. float_of_int lookups
