type t = { domains : int }

let default_domains () =
  match Sys.getenv_opt "FTES_DOMAINS" with
  | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?domains () =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  { domains }

let sequential = { domains = 1 }

let domains t = t.domains

(* A map issued from inside a worker runs sequentially: nested spawns
   would oversubscribe the machine without adding any parallelism the
   outer map is not already exploiting. *)
let inside_worker = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get inside_worker

(* Fixed-capacity Chase-Lev-style deque over task indices.  All tasks
   are pushed before the workers start, so only [pop] (owner, bottom
   end) and [steal] (thieves, top end) run concurrently. *)
module Deque = struct
  type t = { tasks : int array; top : int Atomic.t; bottom : int Atomic.t }

  let of_tasks tasks =
    { tasks; top = Atomic.make 0; bottom = Atomic.make (Array.length tasks) }

  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b > t then Some d.tasks.(b)
    else if b = t then begin
      (* Last element: race against thieves for it. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then Some d.tasks.(b) else None
    end
    else begin
      Atomic.set d.bottom t;
      None
    end

  type steal = Stolen of int | Empty | Retry

  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then Empty
    else begin
      let x = d.tasks.(t) in
      if Atomic.compare_and_set d.top t (t + 1) then Stolen x else Retry
    end
end

let c_tasks = Ftes_obs.Metrics.counter "pool.tasks"

let c_steals = Ftes_obs.Metrics.counter "pool.steals"

let c_busy_ns = Ftes_obs.Metrics.counter "pool.busy_ns"

let c_maps = Ftes_obs.Metrics.counter "pool.parallel_maps"

let run_deques ~workers deques exec =
  let failure = Atomic.make None in
  let record_failure e bt =
    ignore (Atomic.compare_and_set failure None (Some (e, bt)))
  in
  let guarded_exec i =
    if Atomic.get failure = None then
      try exec i
      with e -> record_failure e (Printexc.get_raw_backtrace ())
  in
  let worker w () =
    Domain.DLS.set inside_worker true;
    let t0 = Ftes_obs.Clock.now_ns () in
    let stolen = ref 0 in
    let own = deques.(w) in
    let rec drain_own () =
      match Deque.pop own with
      | Some i ->
          guarded_exec i;
          drain_own ()
      | None -> ()
    in
    (* After the own deque is dry, sweep the other deques; stop only
       when a full sweep finds every deque empty (no task is ever added
       back, so emptiness is stable except for in-flight steals). *)
    let rec scavenge () =
      let progress = ref false and retry = ref false in
      for off = 1 to workers - 1 do
        match Deque.steal deques.((w + off) mod workers) with
        | Deque.Stolen i ->
            guarded_exec i;
            incr stolen;
            progress := true
        | Deque.Retry -> retry := true
        | Deque.Empty -> ()
      done;
      if !progress || !retry then begin
        if not !progress then Domain.cpu_relax ();
        scavenge ()
      end
    in
    Ftes_obs.Span.with_ ~name:"pool/worker" (fun () ->
        drain_own ();
        scavenge ());
    Ftes_obs.Metrics.add c_steals !stolen;
    Ftes_obs.Metrics.add c_busy_ns (max 0 (Ftes_obs.Clock.now_ns () - t0));
    Domain.DLS.set inside_worker false
  in
  let spawned =
    List.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  List.iter Domain.join spawned;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run_tasks ~workers ~n exec =
  (* Block-distribute the indices: worker [w] owns the contiguous slice
     [w*n/workers, (w+1)*n/workers), which keeps owner pops cache-local
     and makes steals grab from the far end of another block. *)
  let deques =
    Array.init workers (fun w ->
        let lo = w * n / workers and hi = (w + 1) * n / workers in
        Deque.of_tasks (Array.init (hi - lo) (fun i -> lo + i)))
  in
  run_deques ~workers deques exec

(* Deal the indices round-robin by descending weight so every worker
   starts on one of the heaviest tasks; within a worker's deque the
   heavier tasks sit at the bottom end (popped first), so the tail of
   the run is made of cheap tasks — the stragglers that decide the
   wall-clock are the short ones. *)
let weighted_deques ~workers weights =
  let n = Array.length weights in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match compare weights.(b) weights.(a) with
      | 0 -> compare a b
      | c -> c)
    order;
  let lists = Array.make workers [] in
  Array.iteri (fun i task -> lists.(i mod workers) <- task :: lists.(i mod workers)) order;
  Array.map (fun tasks -> Deque.of_tasks (Array.of_list tasks)) lists

let map_array ?(pool = sequential) f xs =
  let n = Array.length xs in
  let workers = min pool.domains n in
  if workers <= 1 || Domain.DLS.get inside_worker then Array.map f xs
  else begin
    Ftes_obs.Metrics.incr c_maps;
    Ftes_obs.Metrics.add c_tasks n;
    let results = Array.make n None in
    run_tasks ~workers ~n (fun i -> results.(i) <- Some (f xs.(i)));
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* run_tasks re-raises before we get here *))
      results
  end

let map ?pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs -> Array.to_list (map_array ?pool f (Array.of_list xs))

let map_weighted ?(pool = sequential) ~weight f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let workers = min pool.domains n in
  if workers <= 1 || Domain.DLS.get inside_worker then List.map f xs
  else begin
    Ftes_obs.Metrics.incr c_maps;
    Ftes_obs.Metrics.add c_tasks n;
    (* Weights are taken before any parallelism starts, in input order,
       so the schedule hint can never feed back into the results. *)
    let weights = Array.map weight arr in
    let results = Array.make n None in
    run_deques ~workers
      (weighted_deques ~workers weights)
      (fun i -> results.(i) <- Some (f arr.(i)));
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> assert false (* run_deques re-raises before we get here *))
  end

let map_reduce ?pool ~map:f ~combine ~init xs =
  List.fold_left combine init (map ?pool f xs)

let map_seeded ?pool ~prng f xs =
  let seeded = List.map (fun x -> (Ftes_util.Prng.split prng, x)) xs in
  map ?pool (fun (stream, x) -> f stream x) seeded
