(** Domain-safe keyed store of shared caches.

    The design-service daemon ({!Ftes_driver.Daemon}) shares one
    evaluation cache ({!Ftes_core.Redundancy_opt.cache}) across every
    request that targets the same problem — but a cache instance is
    bound to one problem, so the daemon needs a registry keyed on a
    problem fingerprint.  This module is that registry, kept generic
    ([('k, 'v) t]) because [lib/par] sits below [lib/core].

    All operations take one mutex; [find_or_add] calls the producer
    under the lock, so two concurrent requests for a new key never
    build the value twice.  Producers must therefore be cheap
    (cache {e construction}, not cache {e population}).  Hit/miss
    counters make the sharing observable. *)

type ('k, 'v) t

val create :
  ?max_entries:int ->
  ?on_event:([ `Hit | `Miss | `Drop ] -> unit) ->
  unit ->
  ('k, 'v) t
(** Fresh empty store.  Once [max_entries] (default 256) keys are
    stored, further misses build the value without retaining it, so a
    stream of one-off problems cannot grow the daemon's footprint
    without bound (each drop counts under {!drops}).  [on_event] fires
    under the store's lock on every lookup outcome — the daemon hooks
    it to the [serve.registry_hits] / [serve.registry_misses] obs
    counters — so it must be cheap and must not re-enter the store. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t key build] returns the stored value for [key],
    building and storing it with [build] on first sight. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Pure lookup; counts as a hit or miss like {!find_or_add}. *)

val length : ('k, 'v) t -> int

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val drops : ('k, 'v) t -> int
(** Values built but not retained because the store was full. *)
