(** Domain-based work pool for the design-space exploration.

    A pool describes how many domains a parallel map may use.  The
    implementation distributes the task indices over per-worker
    work-stealing deques: each worker drains its own deque from the
    bottom and steals from the top of a victim's deque once it runs
    dry, so uneven per-candidate costs (some architectures take far
    longer to evaluate than others) still load-balance.

    Determinism contract: [map pool f xs] applies [f] to every element
    exactly once and returns the results in input order, so it is
    observationally [List.map f xs] whenever [f] is pure — regardless
    of the number of domains or of the stealing schedule.  Every
    caller in the exploration stack relies on this to keep parallel
    runs bit-identical to sequential ones.

    Nested parallelism is flattened: a [map] issued from inside a pool
    worker runs sequentially instead of spawning further domains, so
    parallelizing an outer loop (apps) never multiplies with an inner
    loop (candidate architectures). *)

type t
(** A pool descriptor.  Pools are cheap values; domains are spawned
    per [map] call and joined before it returns, so no explicit
    shutdown is needed. *)

val default_domains : unit -> int
(** Domain count from the [FTES_DOMAINS] environment variable when set
    to a positive integer, otherwise [Domain.recommended_domain_count
    ()]. *)

val create : ?domains:int -> unit -> t
(** [create ()] uses {!default_domains}.  [domains] below 1 raises
    [Invalid_argument]. *)

val sequential : t
(** A one-domain pool: every map degrades to [List.map]. *)

val domains : t -> int

val in_worker : unit -> bool
(** True while the calling domain is executing inside a pool worker.
    A [map] issued here runs sequentially; callers that choose between
    a lazy sequential walk and a speculative parallel one (such as
    {!Ftes_core.Design_strategy.run}) use this to avoid speculating
    where no parallelism is available. *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered parallel map.  Without [?pool] (or with {!sequential}) it
    is exactly [List.map].  Exceptions raised by [f] are re-raised in
    the calling domain after all workers have stopped. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** Array variant of {!map}, same ordering and exception contract. *)

val map_weighted :
  ?pool:t -> weight:('a -> float) -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} with a scheduling hint: elements with larger [weight] are
    started first, dealt round-robin over the workers, so one huge task
    discovered last can no longer serialize the tail of the run.
    [weight] is called once per element, in input order, before any
    parallelism starts.  Results are returned in input order; for a
    pure [f] the output is [List.map f xs] regardless of the weights —
    they only shape the wall clock. *)

val map_reduce :
  ?pool:t -> map:('a -> 'b) -> combine:('c -> 'b -> 'c) -> init:'c ->
  'a list -> 'c
(** [map_reduce ~map ~combine ~init xs] maps in parallel and folds the
    results in input order, so a non-commutative [combine] still gives
    the sequential answer. *)

val map_seeded :
  ?pool:t -> prng:Ftes_util.Prng.t -> (Ftes_util.Prng.t -> 'a -> 'b) ->
  'a list -> 'b list
(** [map_seeded ~prng f xs] gives every element its own PRNG stream,
    derived by [Ftes_util.Prng.split] in input order {e before} any
    parallelism starts.  The stream assignment therefore depends only
    on [prng] and the list order, never on the execution schedule:
    stochastic work (fault-injection campaigns) stays bit-identical
    across domain counts. *)
