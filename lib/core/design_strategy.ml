module Problem = Ftes_model.Problem
module Platform = Ftes_model.Platform
module Design = Ftes_model.Design
module Sfp = Ftes_sfp.Sfp
module Scheduler = Ftes_sched.Scheduler
module Archive = Ftes_pareto.Archive

type solution = {
  result : Redundancy_opt.result;
  verdict : Sfp.verdict;
  schedule : Ftes_sched.Schedule.t;
  explored : int;
  certificate : Ftes_verify.Report.t option;
}

let subset_speed problem members =
  Array.fold_left
    (fun acc j -> acc +. Platform.mean_wcet (Problem.node problem j) ~level:1)
    0.0 members

let architectures_by_speed problem ~n =
  let lib = Problem.n_library problem in
  if n < 1 || n > lib then []
  else begin
    (* Enumerate size-n subsets as sorted index arrays. *)
    let rec subsets start need =
      if need = 0 then [ [] ]
      else if start >= lib then []
      else begin
        let with_start =
          List.map (fun rest -> start :: rest) (subsets (start + 1) (need - 1))
        in
        with_start @ subsets (start + 1) need
      end
    in
    subsets 0 n
    |> List.map Array.of_list
    |> List.sort (fun a b ->
           compare (subset_speed problem a, a) (subset_speed problem b, b))
  end

let min_hardening_cost problem members =
  Array.fold_left
    (fun acc j -> acc +. Problem.min_cost problem ~node:j)
    0.0 members

let c_explored = Ftes_obs.Metrics.counter "strategy.explored"

let c_pruned = Ftes_obs.Metrics.counter "strategy.pruned"

let c_runs = Ftes_obs.Metrics.counter "strategy.runs"

let c_pruned_architectures =
  Ftes_obs.Metrics.counter "analyze.pruned_architectures"

(* One entry of the recorded walk: an evaluated architecture and its
   verdict.  Steps correspond 1:1 with [explored] increments, which are
   bit-identical across pool modes, so the trail is too. *)
type step = {
  step_members : int array;
  step_verdict : [ `Schedulable of float | `Unschedulable ];
}

(* The Fig. 5 walk, parameterized over a feasible-candidate hook.  The
   hook fires once per feasible result surfaced by an evaluated
   architecture (the schedule-length winner first, then the cost-refined
   mapping when one exists), always from the deterministic bookkeeping
   path: the sequential walk calls it in evaluation order, and the
   parallel walk only during the ordered batch merge — never from a
   speculative worker — so the hook sees the exact same sequence whatever
   the domain count.  [on_step] fires from the same path, once per
   evaluated architecture. *)
let search ?pool ?cache ?preflight ~config ~on_feasible
    ?(on_step = fun _ -> ()) problem =
  Option.iter (Redundancy_opt.validate_preflight ~config problem) preflight;
  let lib = Problem.n_library problem in
  (* An externally supplied cache lets several runs over the same
     problem (e.g. a hardening-policy sweep) share evaluations; it must
     come from the same problem and a config differing at most in the
     hardening policy. *)
  let cache =
    match cache with
    | Some _ -> cache
    | None ->
        if config.Config.memoize then Some (Redundancy_opt.create_cache ())
        else None
  in
  let explored = ref 0 in
  let best = ref None in
  let best_cost = ref infinity in
  (* Pure candidate score: no counter update, so the parallel walk can
     evaluate speculatively and replay the bookkeeping during the
     ordered merge. *)
  let evaluate_architecture members =
    (* Pre-flight short-circuit: when the report proves every mapping
       onto this architecture unreliable or over-deadline, the whole
       tabu search would only ever see futile probes — [`Unschedulable]
       without running it, so the Fig. 5 line-15 size jump fires
       identically. *)
    let provably_dead =
      match preflight with
      | None -> false
      | Some pf -> (
          match Ftes_analyze.Preflight.architecture_check pf ~members with
          | `Feasible -> false
          | `Unreliable _ | `Deadline _ ->
              Ftes_obs.Metrics.incr c_pruned_architectures;
              true)
    in
    if provably_dead then `Unschedulable
    else
    match
      Mapping_opt.run ?cache ?pool ?preflight ~config
        ~objective:Mapping_opt.Schedule_length problem ~members
    with
    | None -> `Unschedulable
    | Some sl_result ->
        let refined =
          Mapping_opt.run ?cache ?pool ?preflight ~config
            ~objective:Mapping_opt.Architecture_cost
            ~initial:sl_result.Redundancy_opt.design.Design.mapping problem
            ~members
        in
        let result, candidates =
          match refined with
          | Some r when r.Redundancy_opt.cost <= sl_result.Redundancy_opt.cost
            ->
              (r, [ sl_result; r ])
          | Some r -> (sl_result, [ sl_result; r ])
          | None -> (sl_result, [ sl_result ])
        in
        `Schedulable (result, candidates)
  in
  let record (result, candidates) =
    List.iter on_feasible candidates;
    if result.Redundancy_opt.cost < !best_cost then begin
      best_cost := result.Redundancy_opt.cost;
      best := Some result
    end
  in
  (* One size level, sequentially: fastest-first until the queue is
     exhausted or an evaluated architecture is unschedulable (Fig. 5,
     line 15: jump to the next size). *)
  let rec size_level_seq = function
    | [] -> ()
    | members :: rest ->
        if min_hardening_cost problem members >= !best_cost then begin
          Ftes_obs.Metrics.incr c_pruned;
          size_level_seq rest (* line 6: cannot beat the best-so-far *)
        end
        else begin
          incr explored;
          Ftes_obs.Metrics.incr c_explored;
          match evaluate_architecture members with
          | `Unschedulable ->
              on_step { step_members = members; step_verdict = `Unschedulable }
          | `Schedulable ((result, _) as outcome) ->
              on_step
                { step_members = members;
                  step_verdict = `Schedulable result.Redundancy_opt.cost };
              record outcome;
              size_level_seq rest
        end
  in
  (* Same level on a pool: score a batch of candidates speculatively in
     parallel, then merge in speed order replaying exactly the
     sequential prune / record / jump decisions.  Pre-pruning against
     the best cost at batch entry is sound because the best cost only
     decreases: a candidate pruned now would be pruned by the sequential
     walk too, and one kept now is re-checked during the merge.
     Batching bounds the speculative work evaluated beyond the
     sequential walk's stopping point to one batch. *)
  let size_level_par pool queue =
    let batch_size = 2 * Ftes_par.Pool.domains pool in
    (* Merge one scored batch; returns false when the walk must stop
       (an evaluated architecture was unschedulable: Fig. 5 line 15). *)
    let rec merge candidates results =
      match (candidates, results) with
      | [], [] -> true
      | members :: candidates, result :: results ->
          if min_hardening_cost problem members >= !best_cost then begin
            Ftes_obs.Metrics.incr c_pruned;
            merge candidates results
          end
          else begin
            incr explored;
            Ftes_obs.Metrics.incr c_explored;
            match result with
            | `Unschedulable ->
                on_step
                  { step_members = members; step_verdict = `Unschedulable };
                false
            | `Schedulable ((result, _) as outcome) ->
                on_step
                  { step_members = members;
                    step_verdict = `Schedulable result.Redundancy_opt.cost };
                record outcome;
                merge candidates results
          end
      | _ -> assert false
    in
    let rec batches queue =
      match queue with
      | [] -> ()
      | _ ->
          let rec take n = function
            | rest when n = 0 -> ([], rest)
            | [] -> ([], [])
            | x :: rest ->
                let taken, rest = take (n - 1) rest in
                (x :: taken, rest)
          in
          let batch, rest = take batch_size queue in
          let candidates =
            List.filter
              (fun members -> min_hardening_cost problem members < !best_cost)
              batch
          in
          let results =
            Ftes_par.Pool.map ~pool evaluate_architecture candidates
          in
          if merge candidates results then batches rest
    in
    batches queue
  in
  let size_level =
    match pool with
    | Some pool
      when Ftes_par.Pool.domains pool > 1 && not (Ftes_par.Pool.in_worker ())
      ->
        size_level_par pool
    | Some _ | None -> size_level_seq
  in
  for n = 1 to lib do
    size_level (architectures_by_speed problem ~n)
  done;
  (!best, !explored, cache)

let finalize ~config ~cache ~explored problem (result : Redundancy_opt.result)
    =
  Ftes_obs.Span.with_ ~name:"strategy/finalize" @@ fun () ->
  let design = result.Redundancy_opt.design in
  let schedule =
    Scheduler.schedule ~slack:config.Config.slack ~bus:config.Config.bus
      problem design
  in
  let analyses =
    match cache with
    | Some cache ->
        let sfp = Redundancy_opt.sfp_cache cache in
        Array.init (Design.n_members design) (fun member ->
            Ftes_par.Sfp_cache.node_analysis sfp problem design ~member
              ~kmax:(Sfp.analysis_kmax design ~member))
    | None -> Sfp.analyses_for problem design
  in
  let certificate =
    if config.Config.certify then
      Some
        (Ftes_verify.Verify.certify ~slack:config.Config.slack
           ~bus:config.Config.bus ~sfp_tables:analyses problem design schedule)
    else None
  in
  { result;
    verdict = Sfp.evaluate_analyses problem design ~analyses;
    schedule;
    explored;
    certificate }

type recorded = {
  rec_problem : Problem.t;
  rec_config : Config.t;
  rec_cache : Redundancy_opt.cache option;
  rec_preflight : Ftes_analyze.Preflight.t option;
  rec_trail : step list;
  rec_solution : solution option;
  rec_explored : int;
}

let run_recorded ?pool ?cache ?preflight ~config problem =
  Ftes_obs.Metrics.incr c_runs;
  Ftes_obs.Span.with_ ~name:"strategy/run" @@ fun () ->
  let steps = ref [] in
  let on_step step = steps := step :: !steps in
  let best, explored, cache =
    search ?pool ?cache ?preflight ~config ~on_feasible:(fun _ -> ()) ~on_step
      problem
  in
  { rec_problem = problem;
    rec_config = config;
    rec_cache = cache;
    rec_preflight = preflight;
    rec_trail = List.rev !steps;
    rec_solution = Option.map (finalize ~config ~cache ~explored problem) best;
    rec_explored = explored }

let run ?pool ?cache ?preflight ?record ~config problem =
  match record with
  | Some cell ->
      let recorded = run_recorded ?pool ?cache ?preflight ~config problem in
      cell := Some recorded;
      recorded.rec_solution
  | None ->
      Ftes_obs.Metrics.incr c_runs;
      Ftes_obs.Span.with_ ~name:"strategy/run" @@ fun () ->
      let best, explored, cache =
        search ?pool ?cache ?preflight ~config ~on_feasible:(fun _ -> ())
          problem
      in
      Option.map (finalize ~config ~cache ~explored problem) best

let step_equal a b =
  a.step_members = b.step_members
  &&
  match (a.step_verdict, b.step_verdict) with
  | `Unschedulable, `Unschedulable -> true
  | `Schedulable x, `Schedulable y -> Float.equal x y
  | _ -> false

let replayed_prefix base warm =
  let rec go n = function
    | a :: at, b :: bt when step_equal a b -> go (n + 1) (at, bt)
    | _ -> n
  in
  go 0 (base, warm)

let rerun ?pool ~from delta =
  match Ftes_whatif.Delta.apply from.rec_problem delta with
  | Error _ as e -> e
  | Ok perturbed ->
      let config =
        match Ftes_whatif.Delta.kmax_override delta with
        | Some kmax -> Config.with_kmax kmax from.rec_config
        | None -> from.rec_config
      in
      let footprint = Ftes_whatif.Delta.footprint from.rec_problem delta in
      let cache, migration =
        match from.rec_cache with
        | Some cache ->
            let cache, migration =
              Redundancy_opt.migrate_cache ~base:from.rec_problem ~footprint
                cache
            in
            (Some cache, Some migration)
        | None -> (None, None)
      in
      (* Pre-flight reuse: only when the delta provably cannot weaken
         the report (tightening-only), and then the stored witnesses are
         re-checked — not re-derived — against the perturbed tables.
         Pruning is bit-invisible either way, so dropping the report on
         a weakening delta costs speed, never correctness. *)
      let preflight, preflight_reused, witnesses_rechecked =
        match from.rec_preflight with
        | Some pf
          when Ftes_whatif.Delta.cannot_weaken from.rec_problem delta
               && Ftes_analyze.Preflight.recheck pf perturbed ->
            ( Some (Ftes_analyze.Preflight.retarget pf perturbed),
              true,
              List.length pf.Ftes_analyze.Preflight.witnesses )
        | _ -> (None, false, 0)
      in
      let warm = run_recorded ?pool ?cache ?preflight ~config perturbed in
      let zero = Option.is_none migration in
      let stat f = if zero then 0 else f (Option.get migration) in
      let reuse =
        { Ftes_whatif.Reuse.delta_class = Ftes_whatif.Delta.class_name delta;
          sfp_kept = stat (fun m -> m.Redundancy_opt.mig_sfp_kept);
          sfp_dropped = stat (fun m -> m.Redundancy_opt.mig_sfp_dropped);
          evals_kept = stat (fun m -> m.Redundancy_opt.mig_evals_kept);
          evals_dropped = stat (fun m -> m.Redundancy_opt.mig_evals_dropped);
          probes_kept = stat (fun m -> m.Redundancy_opt.mig_probes_kept);
          probes_dropped = stat (fun m -> m.Redundancy_opt.mig_probes_dropped);
          steps_replayed = replayed_prefix from.rec_trail warm.rec_trail;
          steps_total = List.length warm.rec_trail;
          preflight_reused;
          witnesses_rechecked }
      in
      Ok (warm, reuse)

type frontier = {
  archive : Archive.t;
  best : solution option;
  explored : int;
}

let run_frontier ?pool ?cache ?preflight ?spec ~config problem =
  Ftes_obs.Metrics.incr c_runs;
  Ftes_obs.Span.with_ ~name:"strategy/run" @@ fun () ->
  let archive = Archive.create ?spec () in
  let on_feasible (r : Redundancy_opt.result) =
    Archive.insert archive
      { Archive.design = r.Redundancy_opt.design;
        cost = r.Redundancy_opt.cost;
        slack = r.Redundancy_opt.slack;
        margin = r.Redundancy_opt.margin }
  in
  let best, explored, cache =
    search ?pool ?cache ?preflight ~config ~on_feasible problem
  in
  { archive;
    best = Option.map (finalize ~config ~cache ~explored problem) best;
    explored }

let accepted ?max_cost = function
  | None -> false
  | Some solution -> (
      match max_cost with
      | None -> true
      | Some bound ->
          Ftes_util.Tolerance.leq ~eps:Ftes_util.Tolerance.cost_eps
            solution.result.Redundancy_opt.cost bound)
