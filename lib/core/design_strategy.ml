module Problem = Ftes_model.Problem
module Platform = Ftes_model.Platform
module Design = Ftes_model.Design
module Sfp = Ftes_sfp.Sfp
module Scheduler = Ftes_sched.Scheduler

type solution = {
  result : Redundancy_opt.result;
  verdict : Sfp.verdict;
  schedule : Ftes_sched.Schedule.t;
  explored : int;
  certificate : Ftes_verify.Report.t option;
}

let subset_speed problem members =
  Array.fold_left
    (fun acc j -> acc +. Platform.mean_wcet (Problem.node problem j) ~level:1)
    0.0 members

let architectures_by_speed problem ~n =
  let lib = Problem.n_library problem in
  if n < 1 || n > lib then []
  else begin
    (* Enumerate size-n subsets as sorted index arrays. *)
    let rec subsets start need =
      if need = 0 then [ [] ]
      else if start >= lib then []
      else begin
        let with_start =
          List.map (fun rest -> start :: rest) (subsets (start + 1) (need - 1))
        in
        with_start @ subsets (start + 1) need
      end
    in
    subsets 0 n
    |> List.map Array.of_list
    |> List.sort (fun a b ->
           compare (subset_speed problem a, a) (subset_speed problem b, b))
  end

let min_hardening_cost problem members =
  Array.fold_left
    (fun acc j -> acc +. Problem.min_cost problem ~node:j)
    0.0 members

let run ~config problem =
  let lib = Problem.n_library problem in
  let explored = ref 0 in
  let best = ref None in
  let best_cost = ref infinity in
  let evaluate_architecture members =
    incr explored;
    match
      Mapping_opt.run ~config ~objective:Mapping_opt.Schedule_length problem
        ~members
    with
    | None -> `Unschedulable
    | Some sl_result ->
        let refined =
          Mapping_opt.run ~config ~objective:Mapping_opt.Architecture_cost
            ~initial:sl_result.Redundancy_opt.design.Design.mapping problem
            ~members
        in
        let result =
          match refined with
          | Some r when r.Redundancy_opt.cost <= sl_result.Redundancy_opt.cost ->
              r
          | Some _ | None -> sl_result
        in
        `Schedulable result
  in
  (* Walk architectures: same size fastest-first; an unschedulable
     architecture jumps the walk to the next size (Fig. 5, line 15). *)
  let rec walk n queue =
    if n > lib then ()
    else begin
      match queue with
      | [] -> walk (n + 1) (architectures_by_speed problem ~n:(n + 1))
      | members :: rest ->
          if min_hardening_cost problem members >= !best_cost then
            walk n rest (* line 6: cannot beat the best-so-far cost *)
          else begin
            match evaluate_architecture members with
            | `Unschedulable ->
                walk (n + 1) (architectures_by_speed problem ~n:(n + 1))
            | `Schedulable result ->
                if result.Redundancy_opt.cost < !best_cost then begin
                  best_cost := result.Redundancy_opt.cost;
                  best := Some result
                end;
                walk n rest
          end
    end
  in
  walk 1 (architectures_by_speed problem ~n:1);
  Option.map
    (fun (result : Redundancy_opt.result) ->
      let design = result.Redundancy_opt.design in
      let schedule =
        Scheduler.schedule ~slack:config.Config.slack problem design
      in
      let certificate =
        if config.Config.certify then
          Some
            (Ftes_verify.Verify.certify ~slack:config.Config.slack problem
               design schedule)
        else None
      in
      { result;
        verdict = Sfp.evaluate problem design;
        schedule;
        explored = !explored;
        certificate })
    !best

let accepted ?max_cost = function
  | None -> false
  | Some solution -> (
      match max_cost with
      | None -> true
      | Some bound ->
          Ftes_util.Tolerance.leq ~eps:Ftes_util.Tolerance.cost_eps
            solution.result.Redundancy_opt.cost bound)
