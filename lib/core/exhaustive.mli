(** Exact reference search, for measuring the heuristics' optimality gap.

    Enumerates {e every} candidate design of small instances: all
    architectures (non-empty subsets of the node library), all hardening
    vectors, and all mappings of the processes onto the selected nodes.
    Re-execution counts follow the same policy as the heuristics (the
    greedy SFP assignment of {!Re_execution_opt}), so the comparison
    isolates the architecture / hardening / mapping decisions that the
    paper's heuristics approximate.

    The search is exponential (sum over subsets of levels^n * n^procs);
    callers must stay within the candidate [limit].  The ablation
    harness uses 6-8 process instances on 2-node libraries. *)

val search_space : Ftes_model.Problem.t -> float
(** Approximate number of (architecture, levels, mapping) candidates. *)

(** {2 Enumeration building blocks}

    The exact branch-and-bound ({!Ftes_bnb}) reuses these so its
    candidate space — and the order ties are broken in — is the same
    as the reference enumeration's, by construction. *)

val subsets : int -> int array list
(** All non-empty subsets of [0 .. lib-1], each as a strictly
    increasing array, in the enumeration order of {!run}. *)

val iter_levels :
  Ftes_model.Problem.t -> int array -> (int array -> unit) -> unit
(** Odometer over the hardening-level vectors (1-based, bounded by
    each member's available h-versions) of one architecture.  The
    callback receives the same mutable array every time. *)

val iter_mappings : n:int -> m:int -> (int array -> unit) -> unit
(** Odometer over every function [0..n) -> [0..m).  The callback
    receives the same mutable array every time. *)

val better :
  best:Redundancy_opt.result option -> float * float -> bool
(** [better ~best (cost, sl)] — the incumbent comparison of {!run}:
    strictly cheaper (beyond the 1e-9 crumb budget) wins, a cost tie
    breaks towards a strictly shorter schedule. *)

val run :
  ?pool:Ftes_par.Pool.t ->
  ?limit:int ->
  config:Config.t ->
  Ftes_model.Problem.t ->
  Redundancy_opt.result option
(** The cost-minimal feasible design, or [None] when no candidate is
    both schedulable and reliable.  Ties on cost are broken towards the
    shorter schedule.  Raises [Invalid_argument] when {!search_space}
    exceeds [limit] (default 2_000_000).

    With a multi-domain [pool] the architecture subsets are searched
    concurrently and their winners merged in subset order; with
    {!Config.t.memoize} the SFP node tables are shared across
    candidates.  Either way the enumeration order inside a subset and
    the tie-breaking across subsets match the sequential search. *)
