(** Exact reference search, for measuring the heuristics' optimality gap.

    Enumerates {e every} candidate design of small instances: all
    architectures (non-empty subsets of the node library), all hardening
    vectors, and all mappings of the processes onto the selected nodes.
    Re-execution counts follow the same policy as the heuristics (the
    greedy SFP assignment of {!Re_execution_opt}), so the comparison
    isolates the architecture / hardening / mapping decisions that the
    paper's heuristics approximate.

    The search is exponential (sum over subsets of levels^n * n^procs);
    callers must stay within the candidate [limit].  The ablation
    harness uses 6-8 process instances on 2-node libraries. *)

val search_space : Ftes_model.Problem.t -> float
(** Approximate number of (architecture, levels, mapping) candidates. *)

val run :
  ?pool:Ftes_par.Pool.t ->
  ?limit:int ->
  config:Config.t ->
  Ftes_model.Problem.t ->
  Redundancy_opt.result option
(** The cost-minimal feasible design, or [None] when no candidate is
    both schedulable and reliable.  Ties on cost are broken towards the
    shorter schedule.  Raises [Invalid_argument] when {!search_space}
    exceeds [limit] (default 2_000_000).

    With a multi-domain [pool] the architecture subsets are searched
    concurrently and their winners merged in subset order; with
    {!Config.t.memoize} the SFP node tables are shared across
    candidates.  Either way the enumeration order inside a subset and
    the tie-breaking across subsets match the sequential search. *)
