module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler

let subsets lib =
  let rec go i =
    if i = lib then [ [] ]
    else begin
      let rest = go (i + 1) in
      List.map (fun s -> i :: s) rest @ rest
    end
  in
  List.filter (fun s -> s <> []) (go 0) |> List.map Array.of_list

let search_space problem =
  let n = float_of_int (Problem.n_processes problem) in
  List.fold_left
    (fun acc members ->
      let m = Array.length members in
      let levels =
        Array.fold_left
          (fun acc j -> acc *. float_of_int (Problem.levels problem j))
          1.0 members
      in
      acc +. (levels *. (float_of_int m ** n)))
    0.0
    (subsets (Problem.n_library problem))

let deadline problem =
  problem.Problem.app.Ftes_model.Application.deadline_ms

(* Enumerate every function [0..n) -> [0..m) through an odometer. *)
let iter_mappings ~n ~m f =
  let mapping = Array.make n 0 in
  let rec bump i =
    if i < 0 then false
    else if mapping.(i) + 1 < m then begin
      mapping.(i) <- mapping.(i) + 1;
      true
    end
    else begin
      mapping.(i) <- 0;
      bump (i - 1)
    end
  in
  let rec loop () =
    f mapping;
    if bump (n - 1) then loop ()
  in
  if n = 0 then f mapping else loop ()

let iter_levels problem members f =
  let m = Array.length members in
  let levels = Array.make m 1 in
  let rec bump i =
    if i < 0 then false
    else if levels.(i) < Problem.levels problem members.(i) then begin
      levels.(i) <- levels.(i) + 1;
      true
    end
    else begin
      levels.(i) <- 1;
      bump (i - 1)
    end
  in
  let rec loop () =
    f levels;
    if bump (m - 1) then loop ()
  in
  loop ()

(* The incumbent comparison shared with the exact branch-and-bound:
   strictly cheaper wins, a cost tie (within the float crumb budget)
   breaks towards the strictly shorter schedule. *)
let better ~best (cost, sl) =
  match best with
  | None -> true
  | Some (r : Redundancy_opt.result) ->
      cost < r.Redundancy_opt.cost -. 1e-9
      || (Float.abs (cost -. r.Redundancy_opt.cost) <= 1e-9
          && sl < r.Redundancy_opt.schedule_length -. 1e-9)

let run ?pool ?(limit = 2_000_000) ~config problem =
  let space = search_space problem in
  if space > float_of_int limit then
    invalid_arg
      (Printf.sprintf "Exhaustive.run: %.3g candidates exceed the limit %d"
         space limit);
  let cache =
    if config.Config.memoize then Some (Ftes_par.Sfp_cache.create ()) else None
  in
  let n = Problem.n_processes problem in
  let d = deadline problem in
  (* Fold one architecture subset, starting from [init].  Pruning a
     level vector whose cost cannot beat the incumbent is sound because
     [better (cost, sl)] implies [better (cost, 0.0)] (schedule lengths
     are non-negative). *)
  let search_subset init members =
    let best = ref init in
    let m = Array.length members in
    iter_levels problem members (fun levels ->
        (* Architecture cost is mapping-independent: prune early. *)
        let cost =
          Array.to_list members
          |> List.mapi (fun slot j ->
                 Problem.cost problem ~node:j ~level:levels.(slot))
          |> List.fold_left ( +. ) 0.0
        in
        if better ~best:!best (cost, 0.0) then
          iter_mappings ~n ~m (fun mapping ->
              let design =
                Design.make problem ~members ~levels
                  ~reexecs:(Array.make m 0) ~mapping
              in
              match
                Re_execution_opt.optimize ?cache ~kmax:config.Config.kmax
                  problem design
              with
              | None -> ()
              | Some design ->
                  let sl =
                    Scheduler.schedule_length ~slack:config.Config.slack
                      ~bus:config.Config.bus problem design
                  in
                  if sl <= d +. 1e-9 && better ~best:!best (cost, sl) then begin
                    let verdict = Ftes_sfp.Sfp.evaluate problem design in
                    best :=
                      Some
                        { Redundancy_opt.design;
                          schedule_length = sl;
                          cost;
                          slack = d -. sl;
                          margin =
                            Ftes_sfp.Sfp.log10_margin problem.Problem.app
                              ~per_iteration_failure:
                                verdict.Ftes_sfp.Sfp.per_iteration_failure }
                  end));
    !best
  in
  let all_subsets = subsets (Problem.n_library problem) in
  match pool with
  | Some p
    when Ftes_par.Pool.domains p > 1 && not (Ftes_par.Pool.in_worker ()) ->
      (* Each subset is searched independently (without the cross-subset
         incumbent, so some pruning is lost) and the per-subset winners
         are merged in subset order, reproducing the sequential
         first-wins tie-breaking. *)
      Ftes_par.Pool.map ~pool:p (search_subset None) all_subsets
      |> List.fold_left
           (fun best -> function
             | Some (r : Redundancy_opt.result)
               when better ~best
                      (r.Redundancy_opt.cost, r.Redundancy_opt.schedule_length)
               ->
                 Some r
             | Some _ | None -> best)
           None
  | Some _ | None -> List.fold_left search_subset None all_subsets
