(** MappingAlgorithm (Section 6.2): tabu-search process mapping.

    Explores re-mappings of the processes on the current critical path.
    A re-mapped process becomes tabu for a few iterations; processes
    that have waited long are considered first; a move is taken when it
    (1) beats the best-so-far solution (aspiration, tabu ignored) or
    (2) is the best of the currently allowed moves, even if worse than
    the best-so-far (diversification).  The search stops after a number
    of non-improving iterations.

    Each evaluated mapping is completed into a full solution by
    {!Redundancy_opt} (hardening levels + re-executions), exactly as in
    the paper where every mapping move triggers the redundancy
    optimization.

    The two cost functions of the paper are provided: minimize the
    worst-case schedule length (to decide schedulability of an
    architecture) and minimize the architecture cost among schedulable
    mappings. *)

type objective = Schedule_length | Architecture_cost

val initial_mapping :
  config:Config.t -> Ftes_model.Problem.t -> members:int array -> int array
(** Greedy earliest-finish-time mapping at minimum hardening, used as
    the tabu starting point. *)

val run :
  ?cache:Redundancy_opt.cache ->
  ?pool:Ftes_par.Pool.t ->
  ?preflight:Ftes_analyze.Preflight.t ->
  config:Config.t ->
  objective:objective ->
  ?initial:int array ->
  Ftes_model.Problem.t ->
  members:int array ->
  Redundancy_opt.result option
(** [run ~config ~objective problem ~members] searches mappings of all
    processes onto the architecture [members] (library indices).
    Returns the best complete solution found, or [None] when no visited
    mapping admits a schedulable, reliable redundancy assignment.

    With [Architecture_cost], the returned solution is the cheapest
    schedulable one; with [Schedule_length] it is the schedulable
    solution of minimum worst-case schedule length.

    [cache] memoizes candidate evaluations across tabu iterations;
    [pool] scores the moves of one iteration concurrently.  Both leave
    the returned solution bit-identical to the sequential, uncached
    search: moves are evaluated on private copies of the mapping and
    merged back in move order.  [preflight] forwards to every
    {!Redundancy_opt.probe}, skipping hardening vectors the report
    proves futile — likewise without changing any result. *)
