type hardening_policy = Optimize | Fixed_min | Fixed_max

type t = {
  tabu_tenure : int;
  waiting_boost : int;
  max_stall : int;
  max_iterations : int;
  move_candidates : int;
  kmax : int;
  slack : Ftes_sched.Scheduler.slack_mode;
  bus : Ftes_sched.Bus.policy;
  hardening : hardening_policy;
  certify : bool;
  memoize : bool;
}

let make ?(tabu_tenure = 3) ?(waiting_boost = 12) ?(max_stall = 10)
    ?(max_iterations = 120) ?(move_candidates = 5) ?(kmax = 12)
    ?(slack = Ftes_sched.Scheduler.Shared) ?(bus = Ftes_sched.Bus.Fcfs)
    ?(hardening = Optimize) ?(certify = false) ?(memoize = true) () =
  if tabu_tenure < 0 then invalid_arg "Config.make: negative tabu_tenure";
  if max_stall < 0 then invalid_arg "Config.make: negative max_stall";
  if max_iterations < 0 then invalid_arg "Config.make: negative max_iterations";
  if move_candidates < 1 then
    invalid_arg "Config.make: move_candidates must be >= 1";
  if kmax < 0 then invalid_arg "Config.make: negative kmax";
  { tabu_tenure; waiting_boost; max_stall; max_iterations; move_candidates;
    kmax; slack; bus; hardening; certify; memoize }

let default = make ()

(* Builders, not record updates, are the supported way to derive
   configurations: construction sites survive new knobs unchanged. *)
let with_tabu_tenure tabu_tenure t = { t with tabu_tenure }

let with_waiting_boost waiting_boost t = { t with waiting_boost }

let with_max_stall max_stall t = { t with max_stall }

let with_max_iterations max_iterations t = { t with max_iterations }

let with_move_candidates move_candidates t = { t with move_candidates }

let with_kmax kmax t = { t with kmax }

let with_slack slack t = { t with slack }

let with_bus bus t = { t with bus }

let with_hardening hardening t = { t with hardening }

let with_certify certify t = { t with certify }

let with_memoize memoize t = { t with memoize }

let min_strategy = with_hardening Fixed_min default

let max_strategy = with_hardening Fixed_max default

let policy_name = function
  | Optimize -> "OPT"
  | Fixed_min -> "MIN"
  | Fixed_max -> "MAX"
