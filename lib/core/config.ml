type hardening_policy = Optimize | Fixed_min | Fixed_max

type t = {
  tabu_tenure : int;
  waiting_boost : int;
  max_stall : int;
  max_iterations : int;
  move_candidates : int;
  kmax : int;
  slack : Ftes_sched.Scheduler.slack_mode;
  bus : Ftes_sched.Bus.policy;
  hardening : hardening_policy;
  certify : bool;
  memoize : bool;
}

let default =
  { tabu_tenure = 3;
    waiting_boost = 12;
    max_stall = 10;
    max_iterations = 120;
    move_candidates = 5;
    kmax = 12;
    slack = Ftes_sched.Scheduler.Shared;
    bus = Ftes_sched.Bus.Fcfs;
    hardening = Optimize;
    certify = false;
    memoize = true }

let min_strategy = { default with hardening = Fixed_min }
let max_strategy = { default with hardening = Fixed_max }

let policy_name = function
  | Optimize -> "OPT"
  | Fixed_min -> "MIN"
  | Fixed_max -> "MAX"
