module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp

type result = {
  design : Design.t;
  schedule_length : float;
  cost : float;
  slack : float;
  margin : float;
}

(* A candidate evaluation is a pure function of (members, levels,
   mapping): [evaluate] overwrites the levels and the reexecs, and the
   config is fixed for one optimization run.  The tabu mapping search
   and the hardening escalation/reduction revisit the same triples many
   times, so whole results are memoized alongside the SFP node
   tables. *)
type eval_key = { members : int array; levels : int array; mapping : int array }

(* [probe] and [run] ignore the input levels on top of that (the level
   search overwrites them), so whole probe outcomes are additionally
   memoized on just (policy, members, mapping) — the tabu search
   re-probes the same mapping whenever a move is revisited, and the
   architecture-cost refinement pass re-probes every mapping the
   schedule-length pass already solved.  The hardening policy is part of
   the key (unlike [evaluate], a probe's outcome depends on it), which
   lets one cache serve the MIN / MAX / OPT cells of a policy sweep. *)
type probe_key = {
  pr_policy : Config.hardening_policy;
  pr_members : int array;
  pr_mapping : int array;
}

(* The generic polymorphic hash samples only a prefix of the structure;
   cache keys share their [members] / [levels] prefixes across thousands
   of entries, which would collapse the tables into linear chains.  Hash
   every element (FNV-style) instead. *)
let hash_ints h arr =
  Array.fold_left (fun h x -> (h * 0x01000193) lxor (x + 1)) h arr

let policy_tag = function
  | Config.Fixed_min -> 1
  | Config.Fixed_max -> 2
  | Config.Optimize -> 3

module Eval_tbl = Hashtbl.Make (struct
  type t = eval_key

  let equal a b =
    a.mapping = b.mapping && a.levels = b.levels && a.members = b.members

  let hash k = hash_ints (hash_ints (hash_ints 0x811c9dc5 k.members) k.levels) k.mapping
end)

module Probe_tbl = Hashtbl.Make (struct
  type t = probe_key

  let equal a b =
    a.pr_policy = b.pr_policy
    && a.pr_mapping = b.pr_mapping
    && a.pr_members = b.pr_members

  let hash k =
    hash_ints
      (hash_ints (0x811c9dc5 + policy_tag k.pr_policy) k.pr_members)
      k.pr_mapping
end)

type cache = {
  sfp : Ftes_par.Sfp_cache.t;
  evals : result option Eval_tbl.t;
  probes : (result option * float) Probe_tbl.t;
  mutex : Mutex.t;
  max_evals : int;
}

let create_cache ?(max_evals = 200_000) () =
  { sfp = Ftes_par.Sfp_cache.create ();
    evals = Eval_tbl.create 1024;
    probes = Probe_tbl.create 1024;
    mutex = Mutex.create ();
    max_evals }

let sfp_cache cache = cache.sfp

let locked cache f =
  Mutex.lock cache.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache.mutex) f

(* --- warm-start cache migration -------------------------------------

   [migrate_cache] carries a populated cache across a single-field
   perturbation of its problem: every entry the delta's invalidation
   footprint calls clean is provably the same value a cold run on the
   perturbed problem would compute (the entry's table cells are
   untouched bits, and caching never changes any result), so keeping it
   preserves bit-identity while skipping the recomputation.  Entries
   whose keys mention a removed library node drop; surviving keys (and
   the member arrays inside stored designs) are renumbered through the
   footprint's [node_map]. *)

type migration = {
  mig_sfp_kept : int;
  mig_sfp_dropped : int;
  mig_evals_kept : int;
  mig_evals_dropped : int;
  mig_probes_kept : int;
  mig_probes_dropped : int;
}

let migrate_cache ~base ~(footprint : Ftes_whatif.Delta.footprint) cache =
  let fp = footprint in
  let slot_clean node level =
    (not (fp.Ftes_whatif.Delta.tables_dirty ~node ~level))
    && not (fp.Ftes_whatif.Delta.pfail_dirty ~node ~level)
  in
  (* Probe outcomes range over every level of their members (the
     escalation climbs the whole ladder), so a member is probe-clean
     only when all its levels are. *)
  let node_clean node =
    let levels = Problem.levels base node in
    let rec go level = level > levels || (slot_clean node level && go (level + 1)) in
    go 1
  in
  (* Renumber a member array; [None] when a member is gone, the input
     array itself when the map is the identity on it (preserving
     physical sharing between key and stored design). *)
  let remap_members arr =
    let n = Array.length arr in
    let out = Array.make n 0 in
    let rec go i changed =
      if i = n then Some (if changed then out else arr)
      else
        match fp.Ftes_whatif.Delta.node_map arr.(i) with
        | None -> None
        | Some j ->
            out.(i) <- j;
            go (i + 1) (changed || j <> arr.(i))
    in
    go 0 false
  in
  (* Most deltas leave the library numbering alone; when they do, every
     surviving key is its own remap, so both memo tables can reuse the
     source bucket layout (copy + in-place filter) instead of rehashing
     thousands of array keys — migration is the floor of a warm rerun. *)
  let identity_map =
    let lib = Problem.n_library base in
    let rec go j =
      j >= lib || (fp.Ftes_whatif.Delta.node_map j = Some j && go (j + 1))
    in
    go 0
  in
  let keep_sfp (k : Ftes_par.Sfp_cache.key) =
    if fp.Ftes_whatif.Delta.pfail_dirty ~node:k.Ftes_par.Sfp_cache.node
         ~level:k.Ftes_par.Sfp_cache.level
    then None
    else
      Option.map
        (fun node -> { k with Ftes_par.Sfp_cache.node })
        (fp.Ftes_whatif.Delta.node_map k.Ftes_par.Sfp_cache.node)
  in
  let sfp, (sfp_kept, sfp_dropped) =
    Ftes_par.Sfp_cache.migrate ~same_keys:identity_map ~keep:keep_sfp cache.sfp
  in
  let remap_design members (r : result) =
    if members == r.design.Design.members then r
    else { r with design = { r.design with Design.members = members } }
  in
  let eval_clean (key : eval_key) =
    let n = Array.length key.members in
    let rec clean i =
      i = n || (slot_clean key.members.(i) key.levels.(i) && clean (i + 1))
    in
    clean 0
  in
  let probe_clean (key : probe_key) =
    let n = Array.length key.pr_members in
    let rec clean i = i = n || (node_clean key.pr_members.(i) && clean (i + 1)) in
    clean 0
  in
  let fix_result policy r =
    match policy with
    | `Remap_slack d ->
        (* Bit-identical to a fresh evaluation: [evaluate_fresh]
           computes slack as exactly [deadline -. schedule_length], and
           the schedule never reads the deadline. *)
        { r with slack = d -. r.schedule_length }
    | `Keep -> r
  in
  let evals_kept = ref 0 and evals_dropped = ref 0 in
  let probes_kept = ref 0 and probes_dropped = ref 0 in
  let fresh =
    locked cache (fun () ->
        let evals =
          match fp.Ftes_whatif.Delta.eval_policy with
          | `Drop ->
              evals_dropped := Eval_tbl.length cache.evals;
              Eval_tbl.create 1024
          | (`Keep | `Remap_slack _) as policy when identity_map ->
              let t = Eval_tbl.copy cache.evals in
              Eval_tbl.filter_map_inplace
                (fun key result ->
                  if eval_clean key then begin
                    incr evals_kept;
                    Some (Option.map (fix_result policy) result)
                  end
                  else begin
                    incr evals_dropped;
                    None
                  end)
                t;
              t
          | (`Keep | `Remap_slack _) as policy ->
              let t = Eval_tbl.create 1024 in
              Eval_tbl.iter
                (fun key result ->
                  let surviving =
                    if not (eval_clean key) then None
                    else
                      match remap_members key.members with
                      | None -> None
                      | Some members ->
                          let key =
                            if members == key.members then key
                            else { key with members }
                          in
                          let fix r =
                            remap_design members (fix_result policy r)
                          in
                          Some (key, Option.map fix result)
                  in
                  match surviving with
                  | Some (key, result) ->
                      incr evals_kept;
                      Eval_tbl.replace t key result
                  | None -> incr evals_dropped)
                cache.evals;
              t
        in
        let probes =
          if not fp.Ftes_whatif.Delta.keep_probes then begin
            probes_dropped := Probe_tbl.length cache.probes;
            Probe_tbl.create 1024
          end
          else if identity_map then begin
            let t = Probe_tbl.copy cache.probes in
            Probe_tbl.filter_map_inplace
              (fun key outcome ->
                if probe_clean key then begin
                  incr probes_kept;
                  Some outcome
                end
                else begin
                  incr probes_dropped;
                  None
                end)
              t;
            t
          end
          else begin
            let t = Probe_tbl.create 1024 in
            Probe_tbl.iter
              (fun key (result, best_len) ->
                let surviving =
                  if not (probe_clean key) then None
                  else
                    match remap_members key.pr_members with
                    | None -> None
                    | Some pr_members ->
                        let key =
                          if pr_members == key.pr_members then key
                          else { key with pr_members }
                        in
                        Some
                          ( key,
                            (Option.map (remap_design pr_members) result, best_len)
                          )
                in
                match surviving with
                | Some (key, outcome) ->
                    incr probes_kept;
                    Probe_tbl.replace t key outcome
                | None -> incr probes_dropped)
              cache.probes;
            t
          end
        in
        { sfp;
          evals;
          probes;
          mutex = Mutex.create ();
          max_evals = cache.max_evals })
  in
  ( fresh,
    { mig_sfp_kept = sfp_kept;
      mig_sfp_dropped = sfp_dropped;
      mig_evals_kept = !evals_kept;
      mig_evals_dropped = !evals_dropped;
      mig_probes_kept = !probes_kept;
      mig_probes_dropped = !probes_dropped } )

(* Cache statistics live on the Ftes_obs registry: one source of truth
   for the bench harness (via [eval_stats]), metrics snapshots and the
   `obs/cache-consistency` verifier rule.  [evals.*] counts both the
   whole-evaluation and the probe memo tables, as before. *)
let c_eval_lookups = Ftes_obs.Metrics.counter "evals.lookups"

let c_eval_hits = Ftes_obs.Metrics.counter "evals.hits"

let c_eval_misses = Ftes_obs.Metrics.counter "evals.misses"

let c_eval_fresh = Ftes_obs.Metrics.counter "evals.fresh"

(* Inserts skipped because the table reached [max_evals]; the
   obs/cache-capacity rule checks drops never exceed misses. *)
let c_capacity_drops = Ftes_obs.Metrics.counter "evals.capacity_drops"

let c_probe_shortcuts = Ftes_obs.Metrics.counter "kernel.probe_shortcuts"

type eval_stats = { hits : int; misses : int; fresh : int }

let eval_stats () =
  { hits = Ftes_obs.Metrics.counter_value c_eval_hits;
    misses = Ftes_obs.Metrics.counter_value c_eval_misses;
    fresh = Ftes_obs.Metrics.counter_value c_eval_fresh }

let reset_eval_stats () =
  List.iter Ftes_obs.Metrics.reset_counter
    [ c_eval_lookups; c_eval_hits; c_eval_misses; c_eval_fresh ]

let deadline problem =
  problem.Problem.app.Ftes_model.Application.deadline_ms

(* --- pre-flight pruning ---------------------------------------------

   A {!Ftes_analyze.Preflight} report turns into per-slot oracles over
   one (members, mapping): whether a slot's node can ever reach the
   reliability goal at a given hardening level (if not, [evaluate] is
   known to return [None] without running), and a lower bound on any
   schedule containing the slot at that level (usable only where the
   caller discards deadline-missing candidates anyway).  Both tests are
   one-sided, so pruning skips exactly evaluations whose outcome is
   already decided — results stay bit-identical. *)

module Preflight = Ftes_analyze.Preflight

let c_pruned_assignments = Ftes_obs.Metrics.counter "analyze.pruned_assignments"

type slot_info = {
  si_dead : bool;
      (* the goal is unreachable on this slot's node vector at this
         level: [Re_execution_opt.optimize] provably returns [None]. *)
  si_lb_ms : float;
      (* lower bound on the schedule length of any goal-meeting design
         with this slot at this level ([neg_infinity] when no bound
         applies — non-re-execution policy or an empty slot). *)
}

type prune_ctx = {
  pf : Preflight.t;
  pc_problem : Problem.t;
  pc_design : Design.t;  (* fixes members and mapping for this run. *)
  pc_info : (int * int, slot_info) Hashtbl.t;  (* (slot, level) memo. *)
}

let prune_ctx preflight problem design =
  Option.map
    (fun pf ->
      { pf; pc_problem = problem; pc_design = design;
        pc_info = Hashtbl.create 64 })
    preflight

let slot_info ctx slot level =
  match Hashtbl.find_opt ctx.pc_info (slot, level) with
  | Some info -> info
  | None ->
      let design = ctx.pc_design in
      (* The failure vector of member [slot] depends only on its own
         level, so overriding just that entry reproduces bit-for-bit
         the vector [Re_execution_opt] would analyse. *)
      let levels = Array.copy design.Design.levels in
      levels.(slot) <- level;
      let probs =
        Design.pfail_vector ctx.pc_problem
          (Design.with_levels design levels)
          ~member:slot
      in
      let info =
        match Preflight.node_required_reexecs ctx.pf ~probs with
        | None -> { si_dead = true; si_lb_ms = infinity }
        | Some kneed ->
            let lb =
              if not ctx.pf.Preflight.reexec then neg_infinity
              else begin
                let sum = ref 0.0 and max_t = ref neg_infinity in
                Array.iteri
                  (fun proc slot' ->
                    if slot' = slot then begin
                      let t =
                        Problem.wcet ctx.pc_problem
                          ~node:design.Design.members.(slot) ~level ~proc
                      in
                      sum := !sum +. t;
                      if t > !max_t then max_t := t
                    end)
                  design.Design.mapping;
                if !max_t = neg_infinity then neg_infinity
                else
                  !sum
                  +. (float_of_int kneed
                      *. (!max_t +. ctx.pf.Preflight.mu_ms))
              end
            in
            { si_dead = false; si_lb_ms = lb }
      in
      Hashtbl.add ctx.pc_info (slot, level) info;
      info

(* The goal is provably unreachable at these levels: [evaluate] would
   return [None].  Safe at every call site. *)
let prune_dead prune levels =
  match prune with
  | None -> false
  | Some ctx ->
      let n = Array.length levels in
      let rec scan slot =
        slot < n
        && ((slot_info ctx slot levels.(slot)).si_dead || scan (slot + 1))
      in
      let dead = scan 0 in
      if dead then Ftes_obs.Metrics.incr c_pruned_assignments;
      dead

(* The candidate is provably dead OR provably misses the deadline
   (some slot's length lower bound overruns it).  Safe only where the
   caller rejects deadline-missing candidates without using their
   length — the reduction pass and the fixed-level policies. *)
let prune_rejected prune problem levels =
  match prune with
  | None -> false
  | Some ctx ->
      let d = deadline problem in
      let n = Array.length levels in
      let over lb =
        lb -. Preflight.prove_eps_ms > d +. Ftes_util.Tolerance.time_eps_ms
      in
      let rec scan slot =
        slot < n
        &&
        let info = slot_info ctx slot levels.(slot) in
        info.si_dead || over info.si_lb_ms || scan (slot + 1)
      in
      let rejected = scan 0 in
      if rejected then Ftes_obs.Metrics.incr c_pruned_assignments;
      rejected

let evaluate_fresh ?sfp config problem design levels =
  Ftes_obs.Metrics.incr c_eval_fresh;
  Ftes_obs.Span.with_ ~name:"opt/evaluate" (fun () ->
      let d = Design.with_levels design levels in
      match
        Re_execution_opt.optimize ?cache:sfp ~kmax:config.Config.kmax problem d
      with
      | None -> None
      | Some d ->
          let schedule_length =
            Scheduler.schedule_length ~slack:config.Config.slack
              ~bus:config.Config.bus problem d
          in
          (* The optimizer proper only compares lengths and costs; slack
             and margin ride along so frontier recording (and callers
             such as the ablations) need not re-derive them.  The SFP
             tables are the ones [Re_execution_opt] just built — shared
             via [sfp] when memoized. *)
          let kmax = config.Config.kmax in
          let analyse member =
            match sfp with
            | Some cache ->
                Ftes_par.Sfp_cache.node_analysis cache problem d ~member ~kmax
            | None ->
                Sfp.node_analysis ~kmax (Design.pfail_vector problem d ~member)
          in
          let analyses = Array.init (Design.n_members d) analyse in
          let per_iteration_failure =
            Sfp.system_failure_per_iteration analyses ~k:d.Design.reexecs
          in
          Some
            { design = d;
              schedule_length;
              cost = Design.cost problem d;
              slack = deadline problem -. schedule_length;
              margin =
                Sfp.log10_margin problem.Problem.app ~per_iteration_failure })

let evaluate ?cache config problem design levels =
  match cache with
  | None -> evaluate_fresh config problem design levels
  | Some cache -> (
      (* Lookups borrow the live arrays; only an insert snapshots them
         (the caller may mutate its levels array after we return). *)
      let key =
        { members = design.Design.members;
          levels;
          mapping = design.Design.mapping }
      in
      Ftes_obs.Metrics.incr c_eval_lookups;
      match locked cache (fun () -> Eval_tbl.find_opt cache.evals key) with
      | Some result ->
          Ftes_obs.Metrics.incr c_eval_hits;
          result
      | None ->
          Ftes_obs.Metrics.incr c_eval_misses;
          (* Compute outside the lock; a duplicated concurrent
             evaluation of the same pure key is harmless. *)
          let result =
            evaluate_fresh ~sfp:cache.sfp config problem design levels
          in
          let key =
            { members = Array.copy design.Design.members;
              levels = Array.copy levels;
              mapping = Array.copy design.Design.mapping }
          in
          locked cache (fun () ->
              if Eval_tbl.length cache.evals < cache.max_evals then
                Eval_tbl.replace cache.evals key result
              else Ftes_obs.Metrics.incr c_capacity_drops);
          result)

let min_levels design = Array.map (fun _ -> 1) design.Design.members

let max_levels problem design =
  Array.map (fun j -> Problem.levels problem j) design.Design.members

(* Escalation: raise one level at a time, always the increment that
   shortens the schedule the most, until schedulable or saturated.
   Returns the first schedulable result (if any) and the best schedule
   length seen anywhere along the way. *)
(* The climb is a deterministic function of (members, mapping, config
   minus hardening policy, problem), and an Optimize probe that came
   back unschedulable recorded exactly this climb's [(None, best_len)]
   outcome (reduction only runs on a schedulable result).  So a
   memoized unschedulable probe proves the whole escalation futile, and
   the incremental kernel returns the recorded outcome without
   re-climbing.  The probe-table peek deliberately bypasses the
   [evals.*] lookup counters: it is not one of the lookups whose
   hits/misses they reconcile. *)
let escalate_shortcut cache design =
  if not (Ftes_util.Kernel.incremental ()) then None
  else begin
    let key =
      { pr_policy = Config.Optimize;
        pr_members = design.Design.members;
        pr_mapping = design.Design.mapping }
    in
    match locked cache (fun () -> Probe_tbl.find_opt cache.probes key) with
    | Some ((None, _) as outcome) ->
        Ftes_obs.Metrics.incr c_probe_shortcuts;
        Some outcome
    | Some (Some _, _) | None -> None
  end

let escalate ?cache ?prune config problem design =
  Ftes_obs.Span.with_ ~name:"opt/escalate" @@ fun () ->
  match Option.bind cache (fun c -> escalate_shortcut c design) with
  | Some outcome -> outcome
  | None ->
  let d = deadline problem in
  (* Only deadness may be pruned here: an unschedulable candidate's
     length still feeds the greedy climb's scoring. *)
  let evaluate_live levels =
    if prune_dead prune levels then None
    else evaluate ?cache config problem design levels
  in
  let rec climb levels best_len =
    let here = evaluate_live levels in
    let best_len =
      match here with
      | Some r -> Float.min best_len r.schedule_length
      | None -> best_len
    in
    match here with
    | Some r when Ftes_util.Tolerance.leq r.schedule_length d -> (Some r, best_len)
    | Some _ | None ->
        let members = Array.length levels in
        let best = ref None in
        for j = 0 to members - 1 do
          if levels.(j) < Problem.levels problem design.Design.members.(j)
          then begin
            let candidate = Array.copy levels in
            candidate.(j) <- candidate.(j) + 1;
            let len =
              match evaluate_live candidate with
              | Some r -> r.schedule_length
              | None -> infinity
            in
            match !best with
            | Some (_, bl) when bl <= len -> ()
            | Some _ | None -> best := Some (candidate, len)
          end
        done;
        (match !best with
        | None -> (None, best_len) (* every node already fully hardened *)
        | Some (candidate, _) -> climb candidate best_len)
  in
  climb (min_levels design) infinity

(* Reduction: keep taking the cheapest schedulable single-level
   decrease. *)
let reduce ?cache ?prune config problem design (current : result) =
  Ftes_obs.Span.with_ ~name:"opt/reduce" @@ fun () ->
  let d = deadline problem in
  let rec descend (current : result) =
    let levels = current.design.Design.levels in
    let members = Array.length levels in
    let best = ref None in
    for j = 0 to members - 1 do
      if levels.(j) > 1 then begin
        let candidate = Array.copy levels in
        candidate.(j) <- candidate.(j) - 1;
        (* A candidate is kept only when schedulable and reliable, so a
           proof of either failure skips the evaluation outright. *)
        if not (prune_rejected prune problem candidate) then
          match evaluate ?cache config problem design candidate with
          | Some r when Ftes_util.Tolerance.leq r.schedule_length d -> (
              match !best with
              | Some (br : result) when br.cost <= r.cost -> ()
              | Some _ | None -> best := Some r)
          | Some _ | None -> ()
      end
    done;
    match !best with
    | Some r when r.cost < current.cost -> descend r
    | Some _ | None -> current
  in
  descend current

let fixed_levels ?cache ?prune config problem design levels =
  let d = deadline problem in
  if prune_rejected prune problem levels then None
  else
    match evaluate ?cache config problem design levels with
    | Some r when Ftes_util.Tolerance.leq r.schedule_length d -> Some r
    | Some _ | None -> None

(* A report only proves what it analysed: reject one derived for a
   different problem, bound or policy bucket before trusting its
   oracles. *)
let validate_preflight ~config problem (pf : Preflight.t) =
  if pf.Preflight.problem != problem then
    invalid_arg "Redundancy_opt: pre-flight report is for another problem";
  if pf.Preflight.kmax <> config.Config.kmax then
    invalid_arg
      (Printf.sprintf
         "Redundancy_opt: pre-flight kmax %d differs from the config's %d"
         pf.Preflight.kmax config.Config.kmax);
  if pf.Preflight.reexec <> Preflight.reexec_of_slack config.Config.slack
  then
    invalid_arg
      "Redundancy_opt: pre-flight slack bucket differs from the config's"

let prune_of ?preflight ~config problem design =
  Option.iter (validate_preflight ~config problem) preflight;
  prune_ctx preflight problem design

let run ?cache ?preflight ~config problem design =
  let prune = prune_of ?preflight ~config problem design in
  match config.Config.hardening with
  | Config.Fixed_min ->
      fixed_levels ?cache ?prune config problem design (min_levels design)
  | Config.Fixed_max ->
      fixed_levels ?cache ?prune config problem design
        (max_levels problem design)
  | Config.Optimize -> (
      match escalate ?cache ?prune config problem design with
      | Some r, _ -> Some (reduce ?cache ?prune config problem design r)
      | None, _ -> None)

let probe_fixed ?cache ?prune config problem design levels =
  (* Deadness only: an over-deadline result's length is still
     returned, so the deadline bound must not shortcut it. *)
  if prune_dead prune levels then (None, infinity)
  else
    match evaluate ?cache config problem design levels with
    | Some r ->
        let ok =
          Ftes_util.Tolerance.leq r.schedule_length (deadline problem)
        in
        ((if ok then Some r else None), r.schedule_length)
    | None -> (None, infinity)

let probe_uncached ?cache ?prune ~config problem design =
  match config.Config.hardening with
  | Config.Fixed_min ->
      probe_fixed ?cache ?prune config problem design (min_levels design)
  | Config.Fixed_max ->
      probe_fixed ?cache ?prune config problem design
        (max_levels problem design)
  | Config.Optimize -> (
      match escalate ?cache ?prune config problem design with
      | Some r, best_len ->
          (Some (reduce ?cache ?prune config problem design r), best_len)
      | None, best_len -> (None, best_len))

let probe ?cache ?preflight ~config problem design =
  let prune = prune_of ?preflight ~config problem design in
  match cache with
  | None -> probe_uncached ?prune ~config problem design
  | Some cache -> (
      let key =
        { pr_policy = config.Config.hardening;
          pr_members = design.Design.members;
          pr_mapping = design.Design.mapping }
      in
      Ftes_obs.Metrics.incr c_eval_lookups;
      match locked cache (fun () -> Probe_tbl.find_opt cache.probes key) with
      | Some outcome ->
          Ftes_obs.Metrics.incr c_eval_hits;
          outcome
      | None ->
          Ftes_obs.Metrics.incr c_eval_misses;
          let outcome = probe_uncached ~cache ?prune ~config problem design in
          let key =
            { key with
              pr_members = Array.copy design.Design.members;
              pr_mapping = Array.copy design.Design.mapping }
          in
          locked cache (fun () ->
              if Probe_tbl.length cache.probes < cache.max_evals then
                Probe_tbl.replace cache.probes key outcome
              else Ftes_obs.Metrics.incr c_capacity_drops);
          outcome)

let best_effort_length ?cache ?preflight ~config problem design =
  let prune = prune_of ?preflight ~config problem design in
  let fixed levels =
    if prune_dead prune levels then infinity
    else
      match evaluate ?cache config problem design levels with
      | Some r -> r.schedule_length
      | None -> infinity
  in
  match config.Config.hardening with
  | Config.Fixed_min -> fixed (min_levels design)
  | Config.Fixed_max -> fixed (max_levels problem design)
  | Config.Optimize ->
      let _, best_len = escalate ?cache ?prune config problem design in
      best_len
