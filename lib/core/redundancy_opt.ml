module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp

type result = {
  design : Design.t;
  schedule_length : float;
  cost : float;
  slack : float;
  margin : float;
}

(* A candidate evaluation is a pure function of (members, levels,
   mapping): [evaluate] overwrites the levels and the reexecs, and the
   config is fixed for one optimization run.  The tabu mapping search
   and the hardening escalation/reduction revisit the same triples many
   times, so whole results are memoized alongside the SFP node
   tables. *)
type eval_key = { members : int array; levels : int array; mapping : int array }

(* [probe] and [run] ignore the input levels on top of that (the level
   search overwrites them), so whole probe outcomes are additionally
   memoized on just (policy, members, mapping) — the tabu search
   re-probes the same mapping whenever a move is revisited, and the
   architecture-cost refinement pass re-probes every mapping the
   schedule-length pass already solved.  The hardening policy is part of
   the key (unlike [evaluate], a probe's outcome depends on it), which
   lets one cache serve the MIN / MAX / OPT cells of a policy sweep. *)
type probe_key = {
  pr_policy : Config.hardening_policy;
  pr_members : int array;
  pr_mapping : int array;
}

(* The generic polymorphic hash samples only a prefix of the structure;
   cache keys share their [members] / [levels] prefixes across thousands
   of entries, which would collapse the tables into linear chains.  Hash
   every element (FNV-style) instead. *)
let hash_ints h arr =
  Array.fold_left (fun h x -> (h * 0x01000193) lxor (x + 1)) h arr

let policy_tag = function
  | Config.Fixed_min -> 1
  | Config.Fixed_max -> 2
  | Config.Optimize -> 3

module Eval_tbl = Hashtbl.Make (struct
  type t = eval_key

  let equal a b =
    a.mapping = b.mapping && a.levels = b.levels && a.members = b.members

  let hash k = hash_ints (hash_ints (hash_ints 0x811c9dc5 k.members) k.levels) k.mapping
end)

module Probe_tbl = Hashtbl.Make (struct
  type t = probe_key

  let equal a b =
    a.pr_policy = b.pr_policy
    && a.pr_mapping = b.pr_mapping
    && a.pr_members = b.pr_members

  let hash k =
    hash_ints
      (hash_ints (0x811c9dc5 + policy_tag k.pr_policy) k.pr_members)
      k.pr_mapping
end)

type cache = {
  sfp : Ftes_par.Sfp_cache.t;
  evals : result option Eval_tbl.t;
  probes : (result option * float) Probe_tbl.t;
  mutex : Mutex.t;
  max_evals : int;
}

let create_cache ?(max_evals = 200_000) () =
  { sfp = Ftes_par.Sfp_cache.create ();
    evals = Eval_tbl.create 1024;
    probes = Probe_tbl.create 1024;
    mutex = Mutex.create ();
    max_evals }

let sfp_cache cache = cache.sfp

(* Cache statistics live on the Ftes_obs registry: one source of truth
   for the bench harness (via [eval_stats]), metrics snapshots and the
   `obs/cache-consistency` verifier rule.  [evals.*] counts both the
   whole-evaluation and the probe memo tables, as before. *)
let c_eval_lookups = Ftes_obs.Metrics.counter "evals.lookups"

let c_eval_hits = Ftes_obs.Metrics.counter "evals.hits"

let c_eval_misses = Ftes_obs.Metrics.counter "evals.misses"

let c_eval_fresh = Ftes_obs.Metrics.counter "evals.fresh"

(* Inserts skipped because the table reached [max_evals]; the
   obs/cache-capacity rule checks drops never exceed misses. *)
let c_capacity_drops = Ftes_obs.Metrics.counter "evals.capacity_drops"

let c_probe_shortcuts = Ftes_obs.Metrics.counter "kernel.probe_shortcuts"

type eval_stats = { hits : int; misses : int; fresh : int }

let eval_stats () =
  { hits = Ftes_obs.Metrics.counter_value c_eval_hits;
    misses = Ftes_obs.Metrics.counter_value c_eval_misses;
    fresh = Ftes_obs.Metrics.counter_value c_eval_fresh }

let reset_eval_stats () =
  List.iter Ftes_obs.Metrics.reset_counter
    [ c_eval_lookups; c_eval_hits; c_eval_misses; c_eval_fresh ]

let deadline problem =
  problem.Problem.app.Ftes_model.Application.deadline_ms

let evaluate_fresh ?sfp config problem design levels =
  Ftes_obs.Metrics.incr c_eval_fresh;
  Ftes_obs.Span.with_ ~name:"opt/evaluate" (fun () ->
      let d = Design.with_levels design levels in
      match
        Re_execution_opt.optimize ?cache:sfp ~kmax:config.Config.kmax problem d
      with
      | None -> None
      | Some d ->
          let schedule_length =
            Scheduler.schedule_length ~slack:config.Config.slack
              ~bus:config.Config.bus problem d
          in
          (* The optimizer proper only compares lengths and costs; slack
             and margin ride along so frontier recording (and callers
             such as the ablations) need not re-derive them.  The SFP
             tables are the ones [Re_execution_opt] just built — shared
             via [sfp] when memoized. *)
          let kmax = config.Config.kmax in
          let analyse member =
            match sfp with
            | Some cache ->
                Ftes_par.Sfp_cache.node_analysis cache problem d ~member ~kmax
            | None ->
                Sfp.node_analysis ~kmax (Design.pfail_vector problem d ~member)
          in
          let analyses = Array.init (Design.n_members d) analyse in
          let per_iteration_failure =
            Sfp.system_failure_per_iteration analyses ~k:d.Design.reexecs
          in
          Some
            { design = d;
              schedule_length;
              cost = Design.cost problem d;
              slack = deadline problem -. schedule_length;
              margin =
                Sfp.log10_margin problem.Problem.app ~per_iteration_failure })

let locked cache f =
  Mutex.lock cache.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache.mutex) f

let evaluate ?cache config problem design levels =
  match cache with
  | None -> evaluate_fresh config problem design levels
  | Some cache -> (
      (* Lookups borrow the live arrays; only an insert snapshots them
         (the caller may mutate its levels array after we return). *)
      let key =
        { members = design.Design.members;
          levels;
          mapping = design.Design.mapping }
      in
      Ftes_obs.Metrics.incr c_eval_lookups;
      match locked cache (fun () -> Eval_tbl.find_opt cache.evals key) with
      | Some result ->
          Ftes_obs.Metrics.incr c_eval_hits;
          result
      | None ->
          Ftes_obs.Metrics.incr c_eval_misses;
          (* Compute outside the lock; a duplicated concurrent
             evaluation of the same pure key is harmless. *)
          let result =
            evaluate_fresh ~sfp:cache.sfp config problem design levels
          in
          let key =
            { members = Array.copy design.Design.members;
              levels = Array.copy levels;
              mapping = Array.copy design.Design.mapping }
          in
          locked cache (fun () ->
              if Eval_tbl.length cache.evals < cache.max_evals then
                Eval_tbl.replace cache.evals key result
              else Ftes_obs.Metrics.incr c_capacity_drops);
          result)

let min_levels design = Array.map (fun _ -> 1) design.Design.members

let max_levels problem design =
  Array.map (fun j -> Problem.levels problem j) design.Design.members

(* Escalation: raise one level at a time, always the increment that
   shortens the schedule the most, until schedulable or saturated.
   Returns the first schedulable result (if any) and the best schedule
   length seen anywhere along the way. *)
(* The climb is a deterministic function of (members, mapping, config
   minus hardening policy, problem), and an Optimize probe that came
   back unschedulable recorded exactly this climb's [(None, best_len)]
   outcome (reduction only runs on a schedulable result).  So a
   memoized unschedulable probe proves the whole escalation futile, and
   the incremental kernel returns the recorded outcome without
   re-climbing.  The probe-table peek deliberately bypasses the
   [evals.*] lookup counters: it is not one of the lookups whose
   hits/misses they reconcile. *)
let escalate_shortcut cache design =
  if not (Ftes_util.Kernel.incremental ()) then None
  else begin
    let key =
      { pr_policy = Config.Optimize;
        pr_members = design.Design.members;
        pr_mapping = design.Design.mapping }
    in
    match locked cache (fun () -> Probe_tbl.find_opt cache.probes key) with
    | Some ((None, _) as outcome) ->
        Ftes_obs.Metrics.incr c_probe_shortcuts;
        Some outcome
    | Some (Some _, _) | None -> None
  end

let escalate ?cache config problem design =
  Ftes_obs.Span.with_ ~name:"opt/escalate" @@ fun () ->
  match Option.bind cache (fun c -> escalate_shortcut c design) with
  | Some outcome -> outcome
  | None ->
  let d = deadline problem in
  let rec climb levels best_len =
    let here = evaluate ?cache config problem design levels in
    let best_len =
      match here with
      | Some r -> Float.min best_len r.schedule_length
      | None -> best_len
    in
    match here with
    | Some r when Ftes_util.Tolerance.leq r.schedule_length d -> (Some r, best_len)
    | Some _ | None ->
        let members = Array.length levels in
        let best = ref None in
        for j = 0 to members - 1 do
          if levels.(j) < Problem.levels problem design.Design.members.(j)
          then begin
            let candidate = Array.copy levels in
            candidate.(j) <- candidate.(j) + 1;
            let len =
              match evaluate ?cache config problem design candidate with
              | Some r -> r.schedule_length
              | None -> infinity
            in
            match !best with
            | Some (_, bl) when bl <= len -> ()
            | Some _ | None -> best := Some (candidate, len)
          end
        done;
        (match !best with
        | None -> (None, best_len) (* every node already fully hardened *)
        | Some (candidate, _) -> climb candidate best_len)
  in
  climb (min_levels design) infinity

(* Reduction: keep taking the cheapest schedulable single-level
   decrease. *)
let reduce ?cache config problem design (current : result) =
  Ftes_obs.Span.with_ ~name:"opt/reduce" @@ fun () ->
  let d = deadline problem in
  let rec descend (current : result) =
    let levels = current.design.Design.levels in
    let members = Array.length levels in
    let best = ref None in
    for j = 0 to members - 1 do
      if levels.(j) > 1 then begin
        let candidate = Array.copy levels in
        candidate.(j) <- candidate.(j) - 1;
        match evaluate ?cache config problem design candidate with
        | Some r when Ftes_util.Tolerance.leq r.schedule_length d -> (
            match !best with
            | Some (br : result) when br.cost <= r.cost -> ()
            | Some _ | None -> best := Some r)
        | Some _ | None -> ()
      end
    done;
    match !best with
    | Some r when r.cost < current.cost -> descend r
    | Some _ | None -> current
  in
  descend current

let fixed_levels ?cache config problem design levels =
  let d = deadline problem in
  match evaluate ?cache config problem design levels with
  | Some r when Ftes_util.Tolerance.leq r.schedule_length d -> Some r
  | Some _ | None -> None

let run ?cache ~config problem design =
  match config.Config.hardening with
  | Config.Fixed_min ->
      fixed_levels ?cache config problem design (min_levels design)
  | Config.Fixed_max ->
      fixed_levels ?cache config problem design (max_levels problem design)
  | Config.Optimize -> (
      match escalate ?cache config problem design with
      | Some r, _ -> Some (reduce ?cache config problem design r)
      | None, _ -> None)

let probe_fixed ?cache config problem design levels =
  match evaluate ?cache config problem design levels with
  | Some r ->
      let ok = Ftes_util.Tolerance.leq r.schedule_length (deadline problem) in
      ((if ok then Some r else None), r.schedule_length)
  | None -> (None, infinity)

let probe_uncached ?cache ~config problem design =
  match config.Config.hardening with
  | Config.Fixed_min ->
      probe_fixed ?cache config problem design (min_levels design)
  | Config.Fixed_max ->
      probe_fixed ?cache config problem design (max_levels problem design)
  | Config.Optimize -> (
      match escalate ?cache config problem design with
      | Some r, best_len ->
          (Some (reduce ?cache config problem design r), best_len)
      | None, best_len -> (None, best_len))

let probe ?cache ~config problem design =
  match cache with
  | None -> probe_uncached ~config problem design
  | Some cache -> (
      let key =
        { pr_policy = config.Config.hardening;
          pr_members = design.Design.members;
          pr_mapping = design.Design.mapping }
      in
      Ftes_obs.Metrics.incr c_eval_lookups;
      match locked cache (fun () -> Probe_tbl.find_opt cache.probes key) with
      | Some outcome ->
          Ftes_obs.Metrics.incr c_eval_hits;
          outcome
      | None ->
          Ftes_obs.Metrics.incr c_eval_misses;
          let outcome = probe_uncached ~cache ~config problem design in
          let key =
            { key with
              pr_members = Array.copy design.Design.members;
              pr_mapping = Array.copy design.Design.mapping }
          in
          locked cache (fun () ->
              if Probe_tbl.length cache.probes < cache.max_evals then
                Probe_tbl.replace cache.probes key outcome
              else Ftes_obs.Metrics.incr c_capacity_drops);
          outcome)

let best_effort_length ?cache ~config problem design =
  match config.Config.hardening with
  | Config.Fixed_min -> (
      match evaluate ?cache config problem design (min_levels design) with
      | Some r -> r.schedule_length
      | None -> infinity)
  | Config.Fixed_max -> (
      match evaluate ?cache config problem design (max_levels problem design)
      with
      | Some r -> r.schedule_length
      | None -> infinity)
  | Config.Optimize ->
      let _, best_len = escalate ?cache config problem design in
      best_len
