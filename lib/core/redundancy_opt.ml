module Design = Ftes_model.Design
module Problem = Ftes_model.Problem
module Scheduler = Ftes_sched.Scheduler

type result = {
  design : Design.t;
  schedule_length : float;
  cost : float;
}

let deadline problem =
  problem.Problem.app.Ftes_model.Application.deadline_ms

let evaluate config problem design levels =
  let d = Design.with_levels design levels in
  match Re_execution_opt.optimize ~kmax:config.Config.kmax problem d with
  | None -> None
  | Some d ->
      let schedule_length =
        Scheduler.schedule_length ~slack:config.Config.slack problem d
      in
      Some { design = d; schedule_length; cost = Design.cost problem d }

let min_levels design = Array.map (fun _ -> 1) design.Design.members

let max_levels problem design =
  Array.map (fun j -> Problem.levels problem j) design.Design.members

(* Escalation: raise one level at a time, always the increment that
   shortens the schedule the most, until schedulable or saturated.
   Returns the first schedulable result (if any) and the best schedule
   length seen anywhere along the way. *)
let escalate config problem design =
  let d = deadline problem in
  let rec climb levels best_len =
    let here = evaluate config problem design levels in
    let best_len =
      match here with
      | Some r -> Float.min best_len r.schedule_length
      | None -> best_len
    in
    match here with
    | Some r when Ftes_util.Tolerance.leq r.schedule_length d -> (Some r, best_len)
    | Some _ | None ->
        let members = Array.length levels in
        let best = ref None in
        for j = 0 to members - 1 do
          if levels.(j) < Problem.levels problem design.Design.members.(j)
          then begin
            let candidate = Array.copy levels in
            candidate.(j) <- candidate.(j) + 1;
            let len =
              match evaluate config problem design candidate with
              | Some r -> r.schedule_length
              | None -> infinity
            in
            match !best with
            | Some (_, bl) when bl <= len -> ()
            | Some _ | None -> best := Some (candidate, len)
          end
        done;
        (match !best with
        | None -> (None, best_len) (* every node already fully hardened *)
        | Some (candidate, _) -> climb candidate best_len)
  in
  climb (min_levels design) infinity

(* Reduction: keep taking the cheapest schedulable single-level
   decrease. *)
let reduce config problem design (current : result) =
  let d = deadline problem in
  let rec descend (current : result) =
    let levels = current.design.Design.levels in
    let members = Array.length levels in
    let best = ref None in
    for j = 0 to members - 1 do
      if levels.(j) > 1 then begin
        let candidate = Array.copy levels in
        candidate.(j) <- candidate.(j) - 1;
        match evaluate config problem design candidate with
        | Some r when Ftes_util.Tolerance.leq r.schedule_length d -> (
            match !best with
            | Some (br : result) when br.cost <= r.cost -> ()
            | Some _ | None -> best := Some r)
        | Some _ | None -> ()
      end
    done;
    match !best with
    | Some r when r.cost < current.cost -> descend r
    | Some _ | None -> current
  in
  descend current

let fixed_levels config problem design levels =
  let d = deadline problem in
  match evaluate config problem design levels with
  | Some r when Ftes_util.Tolerance.leq r.schedule_length d -> Some r
  | Some _ | None -> None

let run ~config problem design =
  match config.Config.hardening with
  | Config.Fixed_min -> fixed_levels config problem design (min_levels design)
  | Config.Fixed_max ->
      fixed_levels config problem design (max_levels problem design)
  | Config.Optimize -> (
      match escalate config problem design with
      | Some r, _ -> Some (reduce config problem design r)
      | None, _ -> None)

let probe_fixed config problem design levels =
  match evaluate config problem design levels with
  | Some r ->
      let ok = Ftes_util.Tolerance.leq r.schedule_length (deadline problem) in
      ((if ok then Some r else None), r.schedule_length)
  | None -> (None, infinity)

let probe ~config problem design =
  match config.Config.hardening with
  | Config.Fixed_min -> probe_fixed config problem design (min_levels design)
  | Config.Fixed_max ->
      probe_fixed config problem design (max_levels problem design)
  | Config.Optimize -> (
      match escalate config problem design with
      | Some r, best_len -> (Some (reduce config problem design r), best_len)
      | None, best_len -> (None, best_len))

let best_effort_length ~config problem design =
  match config.Config.hardening with
  | Config.Fixed_min -> (
      match evaluate config problem design (min_levels design) with
      | Some r -> r.schedule_length
      | None -> infinity)
  | Config.Fixed_max -> (
      match evaluate config problem design (max_levels problem design) with
      | Some r -> r.schedule_length
      | None -> infinity)
  | Config.Optimize ->
      let _, best_len = escalate config problem design in
      best_len
