(** RedundancyOpt (Section 6.3): hardening / re-execution trade-off.

    For a fixed architecture and mapping, decide the hardening level of
    every node together with the re-execution counts returned by
    {!Re_execution_opt}:

    + start from the minimum hardening levels;
    + {e escalation}: while the application is unschedulable (or the
      reliability goal is unreachable), greedily raise by one the
      hardening level whose increase shortens the worst-case schedule
      the most;
    + {e reduction}: once schedulable, repeatedly try lowering each
      node by one level; among the still-schedulable alternatives keep
      the cheapest, and stop when no reduction is schedulable.

    Under the [Fixed_min] / [Fixed_max] baseline policies the level
    search is skipped and only the re-execution assignment and the
    schedulability test are performed. *)

type result = {
  design : Ftes_model.Design.t;  (** levels and reexecs filled in. *)
  schedule_length : float;
  cost : float;
  slack : float;
      (** deadline minus [schedule_length] — worst-case slack in ms,
          negative when the candidate misses the deadline.  Computed
          under the config's slack and bus policies, so callers (the
          ablations, the frontier recorder) need not re-schedule. *)
  margin : float;
      (** {!Ftes_sfp.Sfp.log10_margin} of the candidate's per-iteration
          failure at the config's [kmax]: decades of reliability
          headroom below the admissible maximum, non-negative exactly
          when the reliability goal is met. *)
}

type cache
(** Memoization shared by one optimization run: the SFP node-table
    cache, a table of whole candidate evaluations keyed on
    [(members, levels, mapping)] — a pure key because {!run} overwrites
    levels and reexecs and the config is fixed per run — and a table of
    whole {!probe} outcomes keyed on [(policy, members, mapping)].
    Domain-safe; caching never changes any result.

    One cache may also be shared by several runs over the same problem
    whose configs differ only in the hardening policy (probe outcomes
    carry the policy in their key; candidate evaluations are
    policy-independent). *)

val create_cache : ?max_evals:int -> unit -> cache
(** Fresh cache; at most [max_evals] (default 200_000) candidate
    evaluations are retained.  Each insert skipped at capacity bumps
    the process-wide [evals.capacity_drops] counter (checked by the
    [obs/cache-capacity] verifier rule), so a saturated cache is
    observable instead of silently degrading into recomputation.

    Under {!Ftes_util.Kernel.Incremental}, a memoized [Optimize] probe
    that came back unschedulable also short-circuits later escalations
    of the same (members, mapping) — the recorded [(None, best_len)]
    outcome is returned without re-climbing (bit-identical: the climb
    is deterministic), counted by [kernel.probe_shortcuts]. *)

val sfp_cache : cache -> Ftes_par.Sfp_cache.t
(** The SFP node-table layer of [cache], for hit-rate reporting and for
    attaching tables to verifier subjects. *)

type migration = {
  mig_sfp_kept : int;
  mig_sfp_dropped : int;
  mig_evals_kept : int;
  mig_evals_dropped : int;
  mig_probes_kept : int;
  mig_probes_dropped : int;
}
(** What {!migrate_cache} kept versus invalidated, per table. *)

val migrate_cache :
  base:Ftes_model.Problem.t ->
  footprint:Ftes_whatif.Delta.footprint ->
  cache ->
  cache * migration
(** [migrate_cache ~base ~footprint cache] builds a fresh cache for the
    perturbed problem the footprint's delta produces when applied to
    [base] (the problem [cache] was populated for; [cache] itself is
    left untouched).  Kept entries are exactly those whose keys the
    footprint proves untouched — every table cell they read is clean and
    every member survives the library remap — so each one is bit-equal
    to what a cold run on the perturbed problem would compute, and
    warm-starting from the migrated cache cannot change any result.
    Eval results under a deadline-only delta survive with their [slack]
    rewritten to the same [deadline -. schedule_length] expression a
    fresh evaluation uses. *)

type eval_stats = { hits : int; misses : int; fresh : int }
(** [hits] / [misses] count candidate-evaluation and probe cache
    lookups; [fresh] counts evaluations actually computed (re-execution
    optimization plus one schedule), with or without a cache — the
    ratio of [fresh] counts between two runs is a hardware-independent
    measure of the work a cache saves. *)

val eval_stats : unit -> eval_stats
(** Process-wide counters, aggregated over every {!cache} instance. *)

val validate_preflight :
  config:Config.t ->
  Ftes_model.Problem.t ->
  Ftes_analyze.Preflight.t ->
  unit
(** Raises [Invalid_argument] unless the report was derived for exactly
    this problem (physical equality) under the config's [kmax] and
    slack-policy bucket — the premises its pruning oracles are sound
    under.  {!run} / {!probe} apply it to their [preflight] argument;
    {!Design_strategy} applies it once up front. *)

val reset_eval_stats : unit -> unit

val run :
  ?cache:cache ->
  ?preflight:Ftes_analyze.Preflight.t ->
  config:Config.t ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  result option
(** [run ~config problem design] uses [design]'s members and mapping;
    its levels and reexecs fields are ignored (replaced by the search).
    Returns [None] when no hardening vector allowed by the policy makes
    the application both schedulable and reliable.

    [preflight] enables pre-flight pruning: hardening vectors whose
    outcome the report already decides — the reliability goal provably
    unreachable on some member, or (during reduction and under the
    fixed policies) a member's schedule-length lower bound provably
    beyond the deadline — are skipped without evaluation, counted by
    [analyze.pruned_assignments].  Both tests are one-sided, so the
    result is bit-identical with or without the report.  Raises
    [Invalid_argument] when the report was derived for a different
    problem, or under a [kmax] or slack-policy bucket other than the
    config's. *)

val probe :
  ?cache:cache ->
  ?preflight:Ftes_analyze.Preflight.t ->
  config:Config.t ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  result option * float
(** [probe ~config problem design] is [(run ..., best-effort length)]
    computed in a single escalation pass; the tabu mapping search uses
    the length to rank unschedulable mappings and the result to track
    schedulable ones.  [preflight] prunes as in {!run} (deadness only
    where a candidate's length still matters). *)

val best_effort_length :
  ?cache:cache ->
  ?preflight:Ftes_analyze.Preflight.t ->
  config:Config.t ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  float
(** The shortest worst-case schedule length reachable by the policy for
    this mapping, even if it misses the deadline ([infinity] when the
    reliability goal is unreachable at every hardening vector).  Used as
    the tabu-search objective while no schedulable mapping is known. *)
