(** ReExecutionOpt (Section 6.3): software redundancy assignment.

    Given an architecture with fixed hardening levels and a fixed
    mapping, find the number of re-executions [kj] per node so that the
    reliability goal of formula (6) is satisfied.  Starting from zero
    re-executions everywhere, the heuristic greedily adds one
    re-execution at a time on the node whose increment yields the
    largest increase of the system reliability, exactly as in the
    paper's example (N2's 1-10^-3 -> 1-5*10^-5 beats N1's
    1-10^-3 -> 1-10^-4). *)

val for_mapping :
  ?cache:Ftes_par.Sfp_cache.t ->
  ?kmax:int ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  int array option
(** [for_mapping problem design] ignores [design.reexecs] and returns
    the computed re-execution vector, or [None] when the goal cannot be
    reached with at most [kmax] (default {!Ftes_sfp.Sfp.default_kmax})
    re-executions per node at the design's hardening levels.  When
    [cache] is given, the per-node SFP tables are served from it
    (bit-identical to fresh computation).

    Under {!Ftes_util.Kernel.Incremental} (the default) the ascent runs
    over cached exceedance tables ({!Ftes_sfp.Incremental}) with shared
    fold prefixes, saturation skips and elided exponentiations; the
    returned vector — and every float compared along the way — is
    bit-identical to {!for_mapping_reference}. *)

val for_mapping_reference :
  ?cache:Ftes_par.Sfp_cache.t ->
  ?kmax:int ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  int array option
(** The original from-scratch ascent, retained as the equivalence and
    benchmark baseline for {!for_mapping}. *)

val optimize :
  ?cache:Ftes_par.Sfp_cache.t ->
  ?kmax:int ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  Ftes_model.Design.t option
(** Like {!for_mapping} but returns the design updated with the
    computed vector. *)
