(** DesignStrategy (Fig. 5): architecture selection loop.

    Explores architectures from one node upwards, fastest first.  For
    each candidate architecture whose minimum-hardening cost can still
    beat the best-so-far cost, the mapping is optimized for schedule
    length; if the application fits its deadline, the mapping is then
    re-optimized for architecture cost and the solution is recorded.
    Whenever an architecture is unschedulable, the search moves directly
    to architectures with one more node, as in the paper's pseudocode.

    The same driver implements the paper's baselines: with
    [config.hardening = Fixed_min] it is the MIN strategy (software
    fault tolerance only) and with [Fixed_max] the MAX strategy. *)

type solution = {
  result : Redundancy_opt.result;
  verdict : Ftes_sfp.Sfp.verdict;
  schedule : Ftes_sched.Schedule.t;
  explored : int;  (** number of architectures evaluated. *)
  certificate : Ftes_verify.Report.t option;
      (** static-verifier report on the emitted triple, present when
          {!Config.t.certify} is set. *)
}

val architectures_by_speed : Ftes_model.Problem.t -> n:int -> int array list
(** All size-[n] subsets of the node library, ordered fastest first
    (ascending sum of the nodes' mean minimum-hardening WCETs) —
    [SelectArch] / [SelectNextArch] of Fig. 5. *)

type step = {
  step_members : int array;  (** the evaluated architecture. *)
  step_verdict : [ `Schedulable of float | `Unschedulable ];
      (** accept (with the winning cost) or reject. *)
}
(** One entry of a recorded walk.  Steps correspond 1:1 with the
    [explored] counter's increments and fire only from the walk's
    deterministic bookkeeping path, so a trail is bit-identical across
    pool modes and across memoization. *)

type recorded = {
  rec_problem : Ftes_model.Problem.t;
  rec_config : Config.t;
  rec_cache : Redundancy_opt.cache option;
      (** the populated per-run cache (present when the config memoizes
          or a cache was supplied) — the warm-start capital. *)
  rec_preflight : Ftes_analyze.Preflight.t option;
  rec_trail : step list;  (** evaluated architectures, in walk order. *)
  rec_solution : solution option;
  rec_explored : int;
}
(** Everything {!rerun} needs to answer a perturbed query warm. *)

val run :
  ?pool:Ftes_par.Pool.t ->
  ?cache:Redundancy_opt.cache ->
  ?preflight:Ftes_analyze.Preflight.t ->
  ?record:recorded option ref ->
  config:Config.t ->
  Ftes_model.Problem.t ->
  solution option
(** The full strategy.  Returns the cheapest solution that meets both
    the deadline and the reliability goal, or [None] when no explored
    architecture admits one.

    When [pool] spans more than one domain, the candidate architectures
    of each size level are scored concurrently (speculatively) and the
    results merged back in speed order, replaying the sequential prune
    and size-jump decisions — the returned solution, its schedule and
    the [explored] counter are bit-identical to a sequential run.  When
    {!Config.t.memoize} is set, SFP node tables and whole candidate
    evaluations are shared across the walk through a per-run
    {!Redundancy_opt.cache}, which likewise never changes any result.

    [cache] overrides the per-run cache, letting several runs over the
    {e same problem} share evaluations — e.g. a MIN / MAX / OPT
    hardening-policy sweep, for which candidate evaluations coincide
    (probe outcomes are segregated by policy inside the cache).  The
    configs of all sharing runs must agree except in
    {!Config.t.hardening}.

    [preflight] enables pre-flight pruning throughout the walk:
    architectures the report proves unreliable or over-deadline
    short-circuit to unschedulable without a mapping search (counted by
    [analyze.pruned_architectures], with the size jump of Fig. 5
    line 15 firing as it would have), and the report forwards to every
    hardening probe (see {!Redundancy_opt.run}).  All tests are
    one-sided proofs, so the solution, schedule, [explored] count and —
    under {!run_frontier} — the archive are bit-identical to an
    unpruned walk.  Raises [Invalid_argument] when the report was
    derived for a different problem, [kmax] or slack-policy bucket
    than the config's.

    [record], when given, is filled with the {!recorded} state of this
    run (trail, populated cache, pre-flight, solution) for later
    {!rerun} calls.  Recording does not change the walk. *)

val run_recorded :
  ?pool:Ftes_par.Pool.t ->
  ?cache:Redundancy_opt.cache ->
  ?preflight:Ftes_analyze.Preflight.t ->
  config:Config.t ->
  Ftes_model.Problem.t ->
  recorded
(** {!run} returning the full recorded state; [rec_solution] is exactly
    what {!run} would return. *)

val rerun :
  ?pool:Ftes_par.Pool.t ->
  from:recorded ->
  Ftes_whatif.Delta.t ->
  (recorded * Ftes_whatif.Reuse.t, string) result
(** Warm re-optimization: apply the delta to the recorded problem
    (checked — [Error] on an inapplicable delta), migrate the recorded
    cache keeping exactly the entries the delta's invalidation
    footprint proves untouched ({!Redundancy_opt.migrate_cache}), reuse
    the recorded pre-flight when the delta cannot weaken it (witnesses
    re-checked, not re-derived), and re-walk the space warm.

    Because every surviving cache entry is bit-equal to what a cold run
    on the perturbed problem would compute, and caching, pruning and
    recording never change any result, the returned solution, schedule,
    trail and [explored] count are {e bit-identical} to a cold
    {!run_recorded} on the perturbed problem under the same config —
    the qcheck property [test_whatif.ml] enforces per delta class
    across every slack × bus policy.  The returned {!recorded} is
    rebased on the perturbed problem, so deltas chain.  The
    {!Ftes_whatif.Reuse.t} reports what was kept; it is observational
    only. *)

type frontier = {
  archive : Ftes_pareto.Archive.t;
      (** every deadline- and ρ-feasible candidate the walk surfaced,
          ε-filtered over (cost, slack, margin). *)
  best : solution option;
      (** the exact {!run} solution — same cost, hardening vector,
          k-vector, mapping and schedule ([None] iff {!run} returns
          [None]). *)
  explored : int;  (** number of architectures evaluated. *)
}

val run_frontier :
  ?pool:Ftes_par.Pool.t ->
  ?cache:Redundancy_opt.cache ->
  ?preflight:Ftes_analyze.Preflight.t ->
  ?spec:Ftes_pareto.Archive.spec ->
  config:Config.t ->
  Ftes_model.Problem.t ->
  frontier
(** {!run}, additionally recording every feasible candidate the walk
    evaluates (the schedule-length winner and the cost-refined mapping
    of each schedulable architecture) into a fresh archive over [spec]
    (default {!Ftes_pareto.Archive.default_spec}).

    Candidates enter the archive only from the walk's deterministic
    bookkeeping path — under a multi-domain [pool] that is the ordered
    batch merge, never a speculative worker — so the insertion sequence,
    and with it the archive, is bit-identical to a sequential run's
    (the archive is additionally insertion-order independent, see
    {!Ftes_pareto.Archive}).  The walk itself records exactly the same
    best solution as {!run}: the [best] field is that solution,
    finalized identically. *)

val accepted : ?max_cost:float -> solution option -> bool
(** The acceptance criterion of the experimental evaluation: a solution
    exists and its architecture cost does not exceed the bound (default:
    no bound). *)
