module Design = Ftes_model.Design
module Application = Ftes_model.Application
module Problem = Ftes_model.Problem
module Sfp = Ftes_sfp.Sfp

let for_mapping ?cache ?(kmax = Sfp.default_kmax) problem design =
  let members = Design.n_members design in
  let analyse member =
    match cache with
    | Some cache ->
        Ftes_par.Sfp_cache.node_analysis cache problem design ~member ~kmax
    | None ->
        Sfp.node_analysis ~kmax (Design.pfail_vector problem design ~member)
  in
  let analyses = Array.init members analyse in
  let app = problem.Problem.app in
  let iterations = Application.iterations_per_hour app in
  let goal = Application.reliability_goal app in
  let k = Array.make members 0 in
  let reliability_of k =
    let per_iteration_failure = Sfp.system_failure_per_iteration analyses ~k in
    Sfp.reliability ~per_iteration_failure ~iterations_per_hour:iterations
  in
  (* Greedy ascent: always spend the next re-execution where it buys the
     most system reliability. *)
  let rec grow current =
    if current >= goal then Some (Array.copy k)
    else begin
      let best = ref None in
      for j = 0 to members - 1 do
        if k.(j) < kmax then begin
          k.(j) <- k.(j) + 1;
          let r = reliability_of k in
          k.(j) <- k.(j) - 1;
          match !best with
          | Some (_, br) when br >= r -> ()
          | Some _ | None -> best := Some (j, r)
        end
      done;
      match !best with
      | None -> None
      | Some (j, r) when r > current ->
          k.(j) <- k.(j) + 1;
          grow r
      | Some _ ->
          (* No increment improves reliability any further: the goal is
             unreachable at these hardening levels. *)
          None
    end
  in
  grow (reliability_of k)

let optimize ?cache ?kmax problem design =
  Option.map (Design.with_reexecs design)
    (for_mapping ?cache ?kmax problem design)
