module Design = Ftes_model.Design
module Application = Ftes_model.Application
module Problem = Ftes_model.Problem
module Sfp = Ftes_sfp.Sfp
module Incremental = Ftes_sfp.Incremental

let c_grow_skips = Ftes_obs.Metrics.counter "kernel.grow_skips"

let c_grow_exp_elided = Ftes_obs.Metrics.counter "kernel.grow_exp_elided"

let for_mapping_reference ?cache ?(kmax = Sfp.default_kmax) problem design =
  let members = Design.n_members design in
  let analyse member =
    match cache with
    | Some cache ->
        Ftes_par.Sfp_cache.node_analysis cache problem design ~member ~kmax
    | None ->
        Sfp.node_analysis ~kmax (Design.pfail_vector problem design ~member)
  in
  let analyses = Array.init members analyse in
  let app = problem.Problem.app in
  let iterations = Application.iterations_per_hour app in
  let goal = Application.reliability_goal app in
  let k = Array.make members 0 in
  let reliability_of k =
    let per_iteration_failure = Sfp.system_failure_per_iteration analyses ~k in
    Sfp.reliability ~per_iteration_failure ~iterations_per_hour:iterations
  in
  (* Greedy ascent: always spend the next re-execution where it buys the
     most system reliability. *)
  let rec grow current =
    if current >= goal then Some (Array.copy k)
    else begin
      let best = ref None in
      for j = 0 to members - 1 do
        if k.(j) < kmax then begin
          k.(j) <- k.(j) + 1;
          let r = reliability_of k in
          k.(j) <- k.(j) - 1;
          match !best with
          | Some (_, br) when br >= r -> ()
          | Some _ | None -> best := Some (j, r)
        end
      done;
      match !best with
      | None -> None
      | Some (j, r) when r > current ->
          k.(j) <- k.(j) + 1;
          grow r
      | Some _ ->
          (* No increment improves reliability any further: the goal is
             unreachable at these hardening levels. *)
          None
    end
  in
  grow (reliability_of k)

(* Incremental variant of the same ascent.  Three accelerations, each
   preserving every float the reference produces (see DESIGN.md §10):

   - candidates are evaluated over the cached per-node exceedance
     tables with the shared fold prefix of formula (5) reused across
     the member sweep, instead of rebuilding formula (4) per candidate;
   - a candidate whose node is saturated ([Incremental.saturated]) is
     skipped: its bumped failure equals the current one bit-for-bit, so
     it can never win the strict acceptance test, and when every
     candidate ties the reference returns [None] just the same;
   - formula (6)'s exponentiation runs only when a candidate's
     per-iteration failure is strictly below the best one seen this
     sweep.  Reliability is monotone non-increasing in the failure
     probability (each composed operation is monotone under rounding),
     so a candidate at or above the running minimum evaluates to at
     most the best reliability and the reference's [br >= r] arm would
     keep the incumbent anyway. *)
let for_mapping_incremental ?cache ?(kmax = Sfp.default_kmax) problem design =
  let members = Design.n_members design in
  let vectors_of member =
    match cache with
    | Some cache ->
        Ftes_par.Sfp_cache.node_vectors cache problem design ~member ~kmax
    | None ->
        Incremental.node_vectors
          (Sfp.node_analysis ~kmax (Design.pfail_vector problem design ~member))
  in
  let inc = Incremental.make (Array.init members vectors_of) in
  let app = problem.Problem.app in
  let iterations = Application.iterations_per_hour app in
  let goal = Application.reliability_goal app in
  let k = Array.make members 0 in
  let prefix = Array.make (members + 1) 1.0 in
  (* [Sfp.reliability] inlined with the iteration ceiling hoisted (the
     ceiling of a constant is the same float every call), keeping the
     per-candidate exp free of cross-module boxing. *)
  let iterations_ceil = Float.ceil iterations in
  let reliability_of_failure pf =
    if pf >= 1.0 then 0.0 else exp (iterations_ceil *. Float.log1p (-.pf))
  in
  let rec grow current =
    if current >= goal then Some (Array.copy k)
    else begin
      Incremental.prefix_into inc ~k prefix;
      (* Sweep state as plain refs (unboxed locals): [best_j < 0] plays
         the reference's [None]; acceptance [r > best_r] is exactly the
         negation of its [br >= r] keep-incumbent arm.  [best_pf] is
         the smallest candidate failure whose reliability is already
         folded in; candidates at or above it cannot displace it. *)
      let best_j = ref (-1) in
      let best_r = ref neg_infinity in
      let best_pf = ref infinity in
      for j = 0 to members - 1 do
        if k.(j) < kmax then
          if Incremental.saturated inc ~member:j ~k:k.(j) then
            Ftes_obs.Metrics.incr c_grow_skips
          else begin
            let pf = Incremental.candidate_failure inc ~k ~prefix ~j in
            if pf >= !best_pf && !best_j >= 0 then
              Ftes_obs.Metrics.incr c_grow_exp_elided
            else begin
              let r =
                if pf >= 1.0 then 0.0
                else exp (iterations_ceil *. Float.log1p (-.pf))
              in
              if !best_j < 0 || r > !best_r then begin
                best_j := j;
                best_r := r
              end;
              if pf < !best_pf then best_pf := pf
            end
          end
      done;
      if !best_j < 0 then None
      else if !best_r > current then begin
        k.(!best_j) <- k.(!best_j) + 1;
        grow !best_r
      end
      else None
    end
  in
  grow (reliability_of_failure (Incremental.system_failure inc ~k))

let for_mapping ?cache ?kmax problem design =
  if Ftes_util.Kernel.incremental () then
    for_mapping_incremental ?cache ?kmax problem design
  else for_mapping_reference ?cache ?kmax problem design

let optimize ?cache ?kmax problem design =
  Option.map (Design.with_reexecs design)
    (for_mapping ?cache ?kmax problem design)
