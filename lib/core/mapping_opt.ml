module Task_graph = Ftes_model.Task_graph
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design

type objective = Schedule_length | Architecture_cost

let c_iterations = Ftes_obs.Metrics.counter "tabu.iterations"

let c_moves = Ftes_obs.Metrics.counter "tabu.moves"

let c_accepts = Ftes_obs.Metrics.counter "tabu.accepts"

let c_aspirations = Ftes_obs.Metrics.counter "tabu.aspirations"

(* Lexicographic score: the first component is the objective, the second
   breaks ties (and guides the walk through infeasible regions). *)
type score = float * float

let score_lt ((a1, a2) : score) ((b1, b2) : score) =
  a1 < b1 -. 1e-9 || (Float.abs (a1 -. b1) <= 1e-9 && a2 < b2 -. 1e-9)

let design_of problem ~members ~mapping =
  let m = Array.length members in
  Design.make problem ~members ~levels:(Array.make m 1)
    ~reexecs:(Array.make m 0) ~mapping

let evaluate ?cache ?preflight config objective problem ~members mapping =
  let design = design_of problem ~members ~mapping in
  let solution, best_len =
    Redundancy_opt.probe ?cache ?preflight ~config problem design
  in
  let score : score =
    match objective with
    | Schedule_length ->
        ( best_len,
          (match solution with Some r -> r.Redundancy_opt.cost | None -> infinity) )
    | Architecture_cost ->
        ( (match solution with Some r -> r.Redundancy_opt.cost | None -> infinity),
          best_len )
  in
  (solution, score)

let initial_mapping ~config problem ~members =
  ignore config;
  let graph = Problem.graph problem in
  let n = Task_graph.n graph in
  let m = Array.length members in
  let exec slot proc =
    Problem.wcet problem ~node:members.(slot) ~level:1 ~proc
  in
  (* Rank by bottom level on the average node so heavy chains go first. *)
  let avg_exec proc =
    let total = ref 0.0 in
    for slot = 0 to m - 1 do
      total := !total +. exec slot proc
    done;
    !total /. float_of_int m
  in
  let bl =
    Task_graph.bottom_levels graph ~exec:avg_exec
      ~comm:(fun e -> e.Task_graph.transmission_ms)
  in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare (bl.(b), a) (bl.(a), b)) order;
  let mapping = Array.make n 0 in
  let node_avail = Array.make m 0.0 in
  let finish = Array.make n 0.0 in
  let placed = Array.make n false in
  Array.iter
    (fun p ->
      (* Earliest-finish-time placement; unplaced predecessors (possible
         since bottom-level order is not topological) contribute their
         optimistic zero finish, which is fine for a seed mapping. *)
      let best = ref (-1) and best_finish = ref infinity in
      for slot = 0 to m - 1 do
        let arrival =
          List.fold_left
            (fun acc (e : Task_graph.edge) ->
              if not placed.(e.src) then acc
              else begin
                let comm =
                  if mapping.(e.src) = slot then 0.0 else e.transmission_ms
                in
                Float.max acc (finish.(e.src) +. comm)
              end)
            0.0 (Task_graph.preds graph p)
        in
        let f = Float.max node_avail.(slot) arrival +. exec slot p in
        if f < !best_finish then begin
          best_finish := f;
          best := slot
        end
      done;
      mapping.(p) <- !best;
      node_avail.(!best) <- !best_finish;
      finish.(p) <- !best_finish;
      placed.(p) <- true)
    order;
  mapping

let critical_processes problem ~members mapping =
  let graph = Problem.graph problem in
  let exec proc =
    Problem.wcet problem ~node:members.(mapping.(proc)) ~level:1 ~proc
  in
  let comm (e : Task_graph.edge) =
    if mapping.(e.src) = mapping.(e.dst) then 0.0 else e.transmission_ms
  in
  Task_graph.critical_path graph ~exec ~comm

let better objective (a : Redundancy_opt.result) (b : Redundancy_opt.result) =
  match objective with
  | Schedule_length ->
      a.Redundancy_opt.schedule_length < b.Redundancy_opt.schedule_length
  | Architecture_cost -> a.Redundancy_opt.cost < b.Redundancy_opt.cost

let run ?cache ?pool ?preflight ~config ~objective ?initial problem ~members =
  Ftes_obs.Span.with_ ~name:"mapping/run" @@ fun () ->
  let n = Problem.n_processes problem in
  let m = Array.length members in
  let mapping =
    match initial with
    | Some mp -> Array.copy mp
    | None -> initial_mapping ~config problem ~members
  in
  let best_solution = ref None in
  let consider = function
    | None -> ()
    | Some r -> (
        match !best_solution with
        | Some b when not (better objective r b) -> ()
        | Some _ | None -> best_solution := Some r)
  in
  let solution, initial_score =
    evaluate ?cache ?preflight config objective problem ~members mapping
  in
  consider solution;
  if m <= 1 || n = 0 then !best_solution
  else begin
    let tabu = Array.make n 0 in
    let wait = Array.make n 0 in
    let best_score = ref initial_score in
    let rec iterate iter stall =
      if iter >= config.Config.max_iterations || stall >= config.Config.max_stall
      then ()
      else begin
        Ftes_obs.Metrics.incr c_iterations;
        let critical = critical_processes problem ~members mapping in
        let candidates =
          List.sort
            (fun a b -> compare (wait.(b), a) (wait.(a), b))
            critical
          |> List.filteri (fun i _ -> i < config.Config.move_candidates)
        in
        (* Evaluate every re-mapping of every candidate.  Moves are
           independent (each is scored on its own copy of the mapping),
           so they can run on the pool; [consider] then folds the
           solutions back sequentially in move order, which keeps the
           first-wins tie-breaking identical to a sequential scan. *)
        let move_specs =
          List.concat_map
            (fun p ->
              List.filter_map
                (fun slot ->
                  if slot = mapping.(p) then None else Some (p, slot))
                (List.init m Fun.id))
            candidates
        in
        Ftes_obs.Metrics.add c_moves (List.length move_specs);
        let evaluated =
          Ftes_par.Pool.map ?pool
            (fun (p, slot) ->
              let candidate = Array.copy mapping in
              candidate.(p) <- slot;
              let solution, score =
                evaluate ?cache ?preflight config objective problem ~members
                  candidate
              in
              (p, slot, solution, score))
            move_specs
        in
        List.iter (fun (_, _, solution, _) -> consider solution) evaluated;
        let moves =
          List.map (fun (p, slot, _, score) -> (p, slot, score)) evaluated
        in
        match moves with
        | [] -> ()
        | moves ->
            let best_of =
              List.fold_left
                (fun acc ((_, _, score) as mv) ->
                  match acc with
                  | Some (_, _, bs) when not (score_lt score bs) -> acc
                  | Some _ | None -> Some mv)
                None
            in
            let overall = best_of moves in
            let non_tabu =
              best_of (List.filter (fun (p, _, _) -> tabu.(p) = 0) moves)
            in
            let chosen =
              match overall with
              (* Aspiration: a move beating the best-so-far is taken even
                 if its process is tabu. *)
              | Some (_, _, score) when score_lt score !best_score ->
                  Ftes_obs.Metrics.incr c_aspirations;
                  overall
              | Some _ | None -> (
                  match non_tabu with Some _ -> non_tabu | None -> overall)
            in
            (match chosen with
            | None -> ()
            | Some (p, slot, score) ->
                Ftes_obs.Metrics.incr c_accepts;
                mapping.(p) <- slot;
                tabu.(p) <- config.Config.tabu_tenure;
                wait.(p) <- 0;
                Array.iteri
                  (fun q t ->
                    if q <> p then begin
                      if t > 0 then tabu.(q) <- t - 1;
                      wait.(q) <- wait.(q) + 1
                    end)
                  tabu;
                if score_lt score !best_score then begin
                  best_score := score;
                  iterate (iter + 1) 0
                end
                else iterate (iter + 1) (stall + 1))
      end
    in
    iterate 0 0;
    !best_solution
  end
