(** Tuning knobs of the design-optimization heuristics (Section 6).

    The paper reports runtimes of 3-60 minutes on a 2004-era Pentium 4;
    the defaults here are sized so that a full 150-application
    experiment cell finishes in seconds while preserving the search
    structure (tabu mapping moves on the critical path, greedy hardening
    escalation, greedy re-execution assignment). *)

type hardening_policy =
  | Optimize  (** the paper's OPT: trade hardening against re-execution. *)
  | Fixed_min  (** the MIN baseline: minimum hardening everywhere. *)
  | Fixed_max  (** the MAX baseline: maximum hardening everywhere. *)

type t = {
  tabu_tenure : int;
      (** iterations a re-mapped process stays tabu (Section 6.2). *)
  waiting_boost : int;
      (** iterations after which a never-moved process gets priority. *)
  max_stall : int;
      (** stop the tabu search after this many non-improving moves. *)
  max_iterations : int;  (** hard cap on tabu iterations. *)
  move_candidates : int;
      (** how many critical-path processes are considered for re-mapping
          at each tabu iteration. *)
  kmax : int;  (** per-node re-execution bound explored by the SFP search. *)
  slack : Ftes_sched.Scheduler.slack_mode;
  bus : Ftes_sched.Bus.policy;
      (** bus arbitration assumed by every schedulability test of the
          search ([Fcfs] by default, matching the paper's setup). *)
  hardening : hardening_policy;
  certify : bool;
      (** when set, {!Design_strategy.run} passes every emitted design
          through the {!Ftes_verify} static verifier and attaches the
          report to the solution. *)
  memoize : bool;
      (** when set (the default), {!Design_strategy.run} memoizes the
          SFP node tables ({!Ftes_par.Sfp_cache}) and whole candidate
          evaluations across the search.  Results are bit-identical
          either way; the flag exists so benchmarks and the determinism
          test-suite can compare both paths. *)
}

val make :
  ?tabu_tenure:int ->
  ?waiting_boost:int ->
  ?max_stall:int ->
  ?max_iterations:int ->
  ?move_candidates:int ->
  ?kmax:int ->
  ?slack:Ftes_sched.Scheduler.slack_mode ->
  ?bus:Ftes_sched.Bus.policy ->
  ?hardening:hardening_policy ->
  ?certify:bool ->
  ?memoize:bool ->
  unit ->
  t
(** The supported constructor: every omitted knob takes the {!default}
    value, and bounds are validated ([Invalid_argument] on a negative
    tenure/stall/iteration budget, [move_candidates < 1] or a negative
    [kmax]).  Prefer [make] + the [with_*] builders below over record
    literals/updates — construction sites written this way survive new
    knobs unchanged (the record stays exposed as the representation,
    for pattern matching). *)

val default : t
(** [make ()]: [Optimize] policy, shared slack, FCFS bus, tenure 3,
    stall 10, kmax 12, memoization on. *)

(** {2 Builders}

    [with_field v t] is [t] with [field] replaced; composable by
    piping: [Config.(default |> with_slack Dedicated |> with_certify
    true)]. *)

val with_tabu_tenure : int -> t -> t

val with_waiting_boost : int -> t -> t

val with_max_stall : int -> t -> t

val with_max_iterations : int -> t -> t

val with_move_candidates : int -> t -> t

val with_kmax : int -> t -> t

val with_slack : Ftes_sched.Scheduler.slack_mode -> t -> t

val with_bus : Ftes_sched.Bus.policy -> t -> t

val with_hardening : hardening_policy -> t -> t

val with_certify : bool -> t -> t

val with_memoize : bool -> t -> t

val min_strategy : t
(** {!default} with [Fixed_min]. *)

val max_strategy : t
(** {!default} with [Fixed_max]. *)

val policy_name : hardening_policy -> string
(** ["OPT"], ["MIN"] or ["MAX"] — the labels used in the paper's
    Fig. 6. *)
