(** A candidate solution (Section 4 outputs 1-3).

    A design fixes (1) the selected architecture — a subset of the node
    library, (2) the hardening level of every selected node, (3) the
    maximum number of re-executions [kj] on every selected node, and
    (4) the process mapping.  The fourth paper output, the static
    schedule, is computed from a design by {!Ftes_sched.Scheduler}. *)

type t = {
  members : int array;  (** library index of each selected node. *)
  levels : int array;  (** hardening level [h] per member (1-based). *)
  reexecs : int array;  (** [kj] per member. *)
  mapping : int array;  (** process index -> member slot [0..n-1]. *)
}

val make :
  Problem.t ->
  members:int array ->
  levels:int array ->
  reexecs:int array ->
  mapping:int array ->
  t
(** Checked constructor.  Raises [Invalid_argument] when a member index
    is out of the library, a member is selected twice, the three member
    arrays disagree in length, a level is out of that node's range, a
    [kj] is negative, or the mapping is not total over processes and
    member slots. *)

val validate : Problem.t -> t -> (unit, string) result
(** Same checks, as data. *)

val n_members : t -> int

val with_levels : t -> int array -> t
val with_reexecs : t -> int array -> t
val with_mapping : t -> int array -> t
(** Functional updates (the arrays are copied). *)

val cost : Problem.t -> t -> float
(** Total architecture cost: sum of the member node costs at their
    selected hardening levels (the objective of Section 4). *)

val wcet : Problem.t -> t -> proc:int -> float
(** WCET of a process on the member it is mapped to, at that member's
    selected level. *)

val wcet_into : Problem.t -> t -> out:float array -> unit
(** [wcet_into problem t ~out] fills [out.(p)] with
    [wcet problem t ~proc:p] for every process, resolving each
    member's h-version table once.  [out] must hold at least as many
    cells as there are processes. *)

val pfail : Problem.t -> t -> proc:int -> float
(** Failure probability of one execution of the process under the
    design. *)

val procs_on : t -> member:int -> int list
(** Processes mapped on a member slot, ascending. *)

val pfail_vector : Problem.t -> t -> member:int -> float array
(** Failure probabilities of the processes on a member — the input of
    the per-node SFP analysis. *)

val pp : Format.formatter -> Problem.t -> t -> unit
(** Human-readable multi-line dump (architecture, levels, k, mapping). *)
