(** JSON (de)serialization of problem instances.

    The on-disk format mirrors the paper's inputs directly:

    {v
    {
      "schema_version": 1,
      "application": {
        "name": "fig1",
        "deadline_ms": 360, "period_ms": 360,
        "gamma": 1e-5, "recovery_overhead_ms": 15,
        "processes": ["P1", "P2", "P3", "P4"],
        "edges": [ {"src": 0, "dst": 1, "transmission_ms": 10}, ... ]
      },
      "library": [
        { "name": "N1",
          "versions": [
            {"level": 1, "cost": 16,
             "wcet_ms": [60, 75, 60, 75],
             "pfail": [1.2e-3, 1.3e-3, 1.4e-3, 1.6e-3]}, ... ] }, ... ]
    }
    v}

    Loading re-validates everything through the checked constructors, so
    a malformed file is reported as an [Error] rather than producing an
    inconsistent instance.

    {2 Versioning}

    Writers stamp {!schema_version} (currently 1).  Readers accept
    version 1, and treat a document {e without} the field as the
    deprecated pre-versioning v0 format — same payload — reporting a
    deprecation through [on_warning] (default: a line on stderr).  Any
    other version is rejected with a diagnostic naming both the found
    and the supported versions. *)

val schema_version : int
(** The version this build writes. *)

val to_json : Problem.t -> Ftes_util.Json.t

val of_json :
  ?on_warning:(string -> unit) -> Ftes_util.Json.t -> (Problem.t, string) result

val to_string : Problem.t -> string

val of_string :
  ?on_warning:(string -> unit) -> string -> (Problem.t, string) result

val save : string -> Problem.t -> unit
(** Write to a file (overwrites). *)

val load :
  ?on_warning:(string -> unit) -> string -> (Problem.t, string) result
(** Read and parse a file; I/O errors are reported as [Error]. *)
