type t = {
  members : int array;
  levels : int array;
  reexecs : int array;
  mapping : int array;
}

let check problem t =
  let lib = Problem.n_library problem in
  let n = Problem.n_processes problem in
  let m = Array.length t.members in
  if m = 0 then Error "empty architecture"
  else if Array.length t.levels <> m then Error "levels length mismatch"
  else if Array.length t.reexecs <> m then Error "reexecs length mismatch"
  else if Array.length t.mapping <> n then Error "mapping length mismatch"
  else begin
    let seen = Array.make lib false in
    let rec check_members i =
      if i = m then Ok ()
      else begin
        let j = t.members.(i) in
        if j < 0 || j >= lib then Error "member index out of library range"
        else if seen.(j) then Error "node selected twice"
        else begin
          seen.(j) <- true;
          let level = t.levels.(i) in
          if level < 1 || level > Problem.levels problem j then
            Error "hardening level out of range"
          else if t.reexecs.(i) < 0 then Error "negative re-execution count"
          else check_members (i + 1)
        end
      end
    in
    match check_members 0 with
    | Error _ as e -> e
    | Ok () ->
        let rec check_mapping i =
          if i = n then Ok ()
          else if t.mapping.(i) < 0 || t.mapping.(i) >= m then
            Error "mapping target out of architecture range"
          else check_mapping (i + 1)
        in
        check_mapping 0
  end

let validate = check

let make problem ~members ~levels ~reexecs ~mapping =
  let t =
    { members = Array.copy members;
      levels = Array.copy levels;
      reexecs = Array.copy reexecs;
      mapping = Array.copy mapping }
  in
  match check problem t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Design.make: " ^ msg)

let n_members t = Array.length t.members

let with_levels t levels = { t with levels = Array.copy levels }
let with_reexecs t reexecs = { t with reexecs = Array.copy reexecs }
let with_mapping t mapping = { t with mapping = Array.copy mapping }

let cost problem t =
  let total = ref 0.0 in
  Array.iteri
    (fun slot j ->
      total := !total +. Problem.cost problem ~node:j ~level:t.levels.(slot))
    t.members;
  !total

let wcet problem t ~proc =
  let slot = t.mapping.(proc) in
  Problem.wcet problem ~node:t.members.(slot) ~level:t.levels.(slot) ~proc

(* Bulk variant of [wcet] for the scheduler's per-call fill: the
   h-version tables are resolved once per slot instead of once per
   process, and each written float is the same array cell [wcet]
   reads, so the fill is bit-identical to [n] scalar calls. *)
let wcet_into problem t ~out =
  let members = Array.length t.members in
  let tables =
    Array.init members (fun slot ->
        (Platform.version
           (Problem.node problem t.members.(slot))
           ~level:t.levels.(slot))
          .Platform.wcet_ms)
  in
  let mapping = t.mapping in
  for p = 0 to Array.length mapping - 1 do
    out.(p) <- tables.(mapping.(p)).(p)
  done

let pfail problem t ~proc =
  let slot = t.mapping.(proc) in
  Problem.pfail problem ~node:t.members.(slot) ~level:t.levels.(slot) ~proc

let procs_on t ~member =
  let acc = ref [] in
  for p = Array.length t.mapping - 1 downto 0 do
    if t.mapping.(p) = member then acc := p :: !acc
  done;
  !acc

let pfail_vector problem t ~member =
  procs_on t ~member
  |> List.map (fun proc -> pfail problem t ~proc)
  |> Array.of_list

let pp ppf problem t =
  Format.fprintf ppf "@[<v>architecture (cost %g):@," (cost problem t);
  Array.iteri
    (fun slot j ->
      let nt = Problem.node problem j in
      Format.fprintf ppf "  %s h=%d k=%d procs=[%s]@," nt.Platform.node_name
        t.levels.(slot) t.reexecs.(slot)
        (String.concat "; "
           (List.map string_of_int (procs_on t ~member:slot))))
    t.members;
  Format.fprintf ppf "@]"
