(** Directed acyclic task graphs (the application model of Section 2).

    Processes are numbered [0 .. n-1].  An edge [e] from [src] to [dst]
    means the output of [src] is an input of [dst]; when the two
    endpoints are mapped on different computation nodes the edge becomes
    a message on the bus with worst-case transmission time
    [e.transmission_ms].  A process starts only after all its inputs
    have arrived and is never preempted.

    An application may consist of several graphs [G_k]; they are
    represented here as the connected components of a single graph
    value. *)

type edge = { src : int; dst : int; transmission_ms : float }

type t

val make : n:int -> edge list -> t
(** [make ~n edges] validates and freezes a graph with [n] processes.
    Raises [Invalid_argument] if an endpoint is out of range, an edge is
    a self-loop, a pair of processes is connected twice, a transmission
    time is negative or not finite, or the graph has a cycle. *)

val n : t -> int
(** Number of processes. *)

val edges : t -> edge list
(** All edges, in insertion order. *)

val n_edges : t -> int

val succs : t -> int -> edge list
(** Outgoing edges of a process. *)

val succ_offsets : t -> int array
(** Successor adjacency in compressed-sparse-row form, mirroring
    {!succs} element for element: the out-edges of [u] are the indices
    [succ_offsets t .(u) .. succ_offsets t .(u+1) - 1] into
    {!succ_dsts} / {!succ_txs}.  The returned arrays are the graph's
    own (built once at {!make} time) and must not be mutated. *)

val succ_dsts : t -> int array
(** Destination process of each CSR edge slot. *)

val succ_txs : t -> float array
(** Transmission time of each CSR edge slot. *)

val preds : t -> int -> edge list
(** Incoming edges of a process. *)

val in_degree : t -> int -> int
(** O(1): degrees are frozen at {!make} time. *)

val out_degree : t -> int -> int

val in_degrees_into : t -> int array -> unit
(** Blit all in-degrees into the first [n] cells of the argument —
    fills a scheduler scratch array without an [Array.init] per call. *)

val sources : t -> int list
(** Processes with no predecessors, ascending. *)

val sinks : t -> int list
(** Processes with no successors, ascending. *)

val topological_order : t -> int array
(** A fixed topological order (Kahn, smallest-index-first, hence
    deterministic). *)

val longest_path :
  t -> exec:(int -> float) -> comm:(edge -> float) -> float
(** Length of the longest (critical) path where process [i] contributes
    [exec i] and edge [e] contributes [comm e]. *)

val critical_path :
  t -> exec:(int -> float) -> comm:(edge -> float) -> int list
(** The processes of one longest path, in execution order. *)

val bottom_levels :
  t -> exec:(int -> float) -> comm:(edge -> float) -> float array
(** [bottom_levels t ~exec ~comm].(i) is the longest path length from
    the start of process [i] to the end of the graph — the classic list
    scheduling priority. *)

val bottom_levels_wcet : t -> wcet:float array -> mapping:int array -> float array
(** Specialized {!bottom_levels} with [exec p = wcet.(p)] and
    [comm e = 0.] when [mapping] puts both endpoints on one member,
    [e.transmission_ms] otherwise — the exact priority pass of the list
    scheduler, without per-edge closure calls.  Bit-identical to the
    generic pass on finite inputs. *)

val components : t -> int list list
(** Weakly-connected components (the [G_k] of the application set). *)

val to_dot : ?name:string -> ?label:(int -> string) -> t -> string
(** GraphViz rendering, for documentation and debugging. *)
