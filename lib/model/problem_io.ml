module Json = Ftes_util.Json
open Json

(* v1 added the explicit "schema_version" field; versionless documents
   are the pre-versioning format, accepted as v0 with a deprecation
   warning.  The payload of v0 and v1 is identical — the field exists
   so that a future payload change can be told apart from a corrupt
   file instead of surfacing as a confusing constructor error. *)
let schema_version = 1

let to_json (problem : Problem.t) =
  let app = problem.Problem.app in
  let graph = app.Application.graph in
  let edges =
    List.map
      (fun (e : Task_graph.edge) ->
        Object
          [ ("src", Number (float_of_int e.src));
            ("dst", Number (float_of_int e.dst));
            ("transmission_ms", Number e.transmission_ms) ])
      (Task_graph.edges graph)
  in
  let version (v : Platform.hversion) =
    Object
      [ ("level", Number (float_of_int v.level));
        ("cost", Number v.cost);
        ("wcet_ms", List (Array.to_list (Array.map (fun x -> Number x) v.wcet_ms)));
        ("pfail", List (Array.to_list (Array.map (fun x -> Number x) v.pfail))) ]
  in
  let node (nt : Platform.node_type) =
    Object
      [ ("name", String nt.node_name);
        ("versions", List (Array.to_list (Array.map version nt.versions))) ]
  in
  Object
    [ Ftes_util.Versioned_json.field schema_version;
      ( "application",
        Object
          [ ("name", String app.Application.name);
            ("deadline_ms", Number app.Application.deadline_ms);
            ("period_ms", Number app.Application.period_ms);
            ("gamma", Number app.Application.gamma);
            ("recovery_overhead_ms", Number app.Application.recovery_overhead_ms);
            ( "processes",
              List
                (Array.to_list
                   (Array.map (fun s -> String s) app.Application.process_names)) );
            ("edges", List edges) ] );
      ("library", List (List.map node (Array.to_list problem.Problem.library))) ]

let guard label f =
  (* Checked constructors raise Invalid_argument; surface those as
     labelled errors instead. *)
  match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (label ^ ": " ^ msg)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let edge_of_json json =
  let* src = Result.bind (member "src" json) to_int in
  let* dst = Result.bind (member "dst" json) to_int in
  let* transmission_ms = Result.bind (member "transmission_ms" json) to_float in
  Ok { Task_graph.src; dst; transmission_ms }

let version_of_json json =
  let* level = Result.bind (member "level" json) to_int in
  let* cost = Result.bind (member "cost" json) to_float in
  let* wcet_ms = Result.bind (member "wcet_ms" json) float_array in
  let* pfail = Result.bind (member "pfail" json) float_array in
  guard "h-version" (fun () -> Platform.hversion ~level ~cost ~wcet_ms ~pfail)

let node_of_json json =
  let* name = Result.bind (member "name" json) to_string_value in
  let* versions = Result.bind (member "versions" json) to_list in
  let* versions = map_result version_of_json versions in
  guard ("node " ^ name) (fun () ->
      Platform.node_type ~name ~versions:(Array.of_list versions))

let application_of_json json =
  let* name = Result.bind (member "name" json) to_string_value in
  let* deadline_ms = Result.bind (member "deadline_ms" json) to_float in
  let* period_ms = Result.bind (member "period_ms" json) to_float in
  let* gamma = Result.bind (member "gamma" json) to_float in
  let* recovery_overhead_ms =
    Result.bind (member "recovery_overhead_ms" json) to_float
  in
  let* processes = Result.bind (member "processes" json) to_list in
  let* process_names = map_result to_string_value processes in
  let* edge_items = Result.bind (member "edges" json) to_list in
  let* edges = map_result edge_of_json edge_items in
  let* graph =
    guard "graph" (fun () ->
        Task_graph.make ~n:(List.length process_names) edges)
  in
  guard "application" (fun () ->
      Application.make ~name
        ~process_names:(Array.of_list process_names)
        ~period_ms ~graph ~deadline_ms ~gamma ~recovery_overhead_ms ())

let default_warn msg = Printf.eprintf "problem_io: warning: %s\n%!" msg

let of_json ?(on_warning = default_warn) json =
  let* () =
    Ftes_util.Versioned_json.check ~what:"document" ~accept_v0:true
      ~on_warning ~current:schema_version json
  in
  let* app_json = member "application" json in
  let* app = application_of_json app_json in
  let* library_items = Result.bind (member "library" json) to_list in
  let* library = map_result node_of_json library_items in
  guard "problem" (fun () ->
      Problem.make ~app ~library:(Array.of_list library))

let to_string problem = Json.to_string (to_json problem)

let of_string ?on_warning text =
  let* json = Json.of_string text in
  of_json ?on_warning json

let save path problem =
  Ftes_util.Atomic_file.write_string path (to_string problem ^ "\n")

let load ?on_warning path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string ?on_warning text
  | exception Sys_error msg -> Error msg
