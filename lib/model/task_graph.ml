type edge = { src : int; dst : int; transmission_ms : float }

type t = {
  n : int;
  edges : edge list;
  succs : edge list array; (* by src, insertion order *)
  preds : edge list array; (* by dst, insertion order *)
  in_deg : int array;
  topo : int array;
  (* Successor adjacency in compressed-sparse-row form, mirroring
     [succs] element for element: the out-edges of [u] occupy indices
     [succ_off.(u) .. succ_off.(u+1) - 1] of [succ_dst]/[succ_tx].
     The flat arrays keep the hot graph walks (scheduler release,
     WCET bottom levels) on contiguous memory instead of chasing
     3-word list cells. *)
  succ_off : int array;
  succ_dst : int array;
  succ_tx : float array;
}

let compute_topological_order n succs preds =
  let in_deg = Array.map List.length preds in
  (* Kahn's algorithm with a sorted frontier so the order is canonical. *)
  let module IS = Set.Make (Int) in
  let frontier = ref IS.empty in
  Array.iteri (fun i d -> if d = 0 then frontier := IS.add i !frontier) in_deg;
  let order = Array.make n 0 in
  let rec loop filled =
    match IS.min_elt_opt !frontier with
    | None -> filled
    | Some u ->
        frontier := IS.remove u !frontier;
        order.(filled) <- u;
        List.iter
          (fun e ->
            in_deg.(e.dst) <- in_deg.(e.dst) - 1;
            if in_deg.(e.dst) = 0 then frontier := IS.add e.dst !frontier)
          succs.(u);
        loop (filled + 1)
  in
  if loop 0 < n then invalid_arg "Task_graph.make: graph has a cycle";
  order

let make ~n edges =
  if n < 0 then invalid_arg "Task_graph.make: negative process count";
  let succs = Array.make n [] and preds = Array.make n [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg "Task_graph.make: edge endpoint out of range";
      if e.src = e.dst then invalid_arg "Task_graph.make: self-loop";
      if not (Float.is_finite e.transmission_ms) || e.transmission_ms < 0.0 then
        invalid_arg "Task_graph.make: invalid transmission time";
      if Hashtbl.mem seen (e.src, e.dst) then
        invalid_arg "Task_graph.make: duplicate edge";
      Hashtbl.add seen (e.src, e.dst) ();
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  let topo = compute_topological_order n succs preds in
  let succ_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    succ_off.(u + 1) <- succ_off.(u) + List.length succs.(u)
  done;
  let m = succ_off.(n) in
  let succ_dst = Array.make m 0 in
  let succ_tx = Array.make m 0.0 in
  Array.iteri
    (fun u l ->
      let i = ref succ_off.(u) in
      List.iter
        (fun e ->
          succ_dst.(!i) <- e.dst;
          succ_tx.(!i) <- e.transmission_ms;
          incr i)
        l)
    succs;
  { n; edges; succs; preds; in_deg = Array.map List.length preds; topo;
    succ_off; succ_dst; succ_tx }

let n t = t.n
let edges t = t.edges
let n_edges t = List.length t.edges
let succs t i = t.succs.(i)

let succ_offsets t = t.succ_off
let succ_dsts t = t.succ_dst
let succ_txs t = t.succ_tx
let preds t i = t.preds.(i)
let in_degree t i = t.in_deg.(i)

let in_degrees_into t dst = Array.blit t.in_deg 0 dst 0 t.n
let out_degree t i = List.length t.succs.(i)

let sources t =
  List.filter (fun i -> in_degree t i = 0) (List.init t.n Fun.id)

let sinks t =
  List.filter (fun i -> out_degree t i = 0) (List.init t.n Fun.id)

let topological_order t = Array.copy t.topo

(* Longest start-to-end distance from each process, over the reversed
   topological order. *)
let bottom_levels t ~exec ~comm =
  let bl = Array.make t.n 0.0 in
  for idx = t.n - 1 downto 0 do
    let u = t.topo.(idx) in
    let tail =
      List.fold_left
        (fun acc e -> Float.max acc (comm e +. bl.(e.dst)))
        0.0 t.succs.(u)
    in
    bl.(u) <- exec u +. tail
  done;
  bl

(* Monomorphic bottom-level pass for the scheduler's incremental
   kernel: [exec p] is [wcet.(p)] and [comm] zeroes same-member edges,
   with no closure indirection per edge.  The running maximum replaces
   [Float.max] with a [>] test, which agrees on every finite input (the
   accumulator starts at [+0.] and transmission times are validated
   finite and non-negative), so the result is bit-identical to
   [bottom_levels]. *)
(* Walks the CSR mirror of [succs] in the same element order, with the
   running maximum in a local (unboxed) ref: [if v > best] against an
   accumulator starting at [0.0] is [Float.max] on these inputs — all
   finite, and a [-0.] candidate can never displace the non-negative
   accumulator — so each [bl] entry is bit-identical to the
   closure-based [bottom_levels] fold. *)
let bottom_levels_wcet t ~wcet ~mapping =
  let bl = Array.make t.n 0.0 in
  let off = t.succ_off and dst = t.succ_dst and tx = t.succ_tx in
  for idx = t.n - 1 downto 0 do
    let u = t.topo.(idx) in
    let mu = mapping.(u) in
    let best = ref 0.0 in
    for i = off.(u) to off.(u + 1) - 1 do
      let d = dst.(i) in
      let c = if mapping.(d) = mu then 0.0 else tx.(i) in
      let v = c +. bl.(d) in
      if v > !best then best := v
    done;
    bl.(u) <- wcet.(u) +. !best
  done;
  bl

let longest_path t ~exec ~comm =
  let bl = bottom_levels t ~exec ~comm in
  Array.fold_left Float.max 0.0 bl

let critical_path t ~exec ~comm =
  if t.n = 0 then []
  else begin
    let bl = bottom_levels t ~exec ~comm in
    let start = ref 0 in
    Array.iteri (fun i v -> if v > bl.(!start) then start := i) bl;
    let rec follow u acc =
      let acc = u :: acc in
      (* The critical successor realizes bl.(u) = exec u + comm + bl.(dst). *)
      let next =
        List.fold_left
          (fun best e ->
            let v = comm e +. bl.(e.dst) in
            match best with
            | Some (_, bv) when bv >= v -> best
            | _ -> Some (e.dst, v))
          None t.succs.(u)
      in
      match next with
      | Some (d, v) when Float.abs (bl.(u) -. exec u -. v) < 1e-9 ->
          follow d acc
      | Some _ | None -> List.rev acc
    in
    follow !start []
  end

let components t =
  let parent = Array.init t.n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter (fun e -> union e.src e.dst) t.edges;
  let groups = Hashtbl.create 16 in
  for i = t.n - 1 downto 0 do
    let r = find i in
    let cur = Option.value ~default:[] (Hashtbl.find_opt groups r) in
    Hashtbl.replace groups r (i :: cur)
  done;
  Hashtbl.fold (fun _ procs acc -> procs :: acc) groups []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))

let to_dot ?(name = "G") ?label t =
  let label = Option.value ~default:(fun i -> Printf.sprintf "P%d" (i + 1)) label in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=TB;\n" name);
  for i = 0 to t.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  p%d [label=\"%s\"];\n" i (label i))
  done;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  p%d -> p%d [label=\"%.3g ms\"];\n" e.src e.dst
           e.transmission_ms))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
