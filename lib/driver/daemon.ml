module Json = Ftes_util.Json
module Config = Ftes_core.Config
module Redundancy_opt = Ftes_core.Redundancy_opt
module Design_strategy = Ftes_core.Design_strategy
module Problem_io = Ftes_model.Problem_io
module Scheduler = Ftes_sched.Scheduler
module Bus = Ftes_sched.Bus
module Pool = Ftes_par.Pool
module Keyed_cache = Ftes_par.Keyed_cache
module Sfp_cache = Ftes_par.Sfp_cache
module Clock = Ftes_obs.Clock

(* --- shared evaluation caches --- *)

let c_registry_hits = Ftes_obs.Metrics.counter "serve.registry_hits"

let c_registry_misses = Ftes_obs.Metrics.counter "serve.registry_misses"

type caches = {
  evals : (string, Redundancy_opt.cache) Keyed_cache.t;
  recorded : (string, Design_strategy.recorded) Keyed_cache.t;
      (* recorded optimize walks by request id — the base registry
         what-if requests warm-start from via "base_id". *)
}

let registry_event = function
  | `Hit -> Ftes_obs.Metrics.incr c_registry_hits
  | `Miss -> Ftes_obs.Metrics.incr c_registry_misses
  | `Drop -> ()

let create_caches ?(max_problems = 64) () =
  { evals = Keyed_cache.create ~max_entries:max_problems ();
    recorded =
      Keyed_cache.create ~max_entries:max_problems ~on_event:registry_event ()
  }

let cache_problems t = Keyed_cache.length t.evals

let cache_hits t = Keyed_cache.hits t.evals

let cache_misses t = Keyed_cache.misses t.evals

let registry_hits t = Keyed_cache.hits t.recorded

let registry_misses t = Keyed_cache.misses t.recorded

(* A Redundancy_opt.cache may be shared by runs over the same problem
   whose configs agree except in the hardening policy, so the bucket
   key is (problem, slack, bus, kmax) with the strategy excluded.  The
   problem travels as its minified v1 document — inline and built-in
   spellings of the same instance land in the same bucket. *)
let bucket_key (req : Request.t) =
  let config = req.Request.config in
  let slack =
    match config.Config.slack with
    | Scheduler.Shared -> Some "shared"
    | Scheduler.Conservative -> Some "conservative"
    | Scheduler.Dedicated -> Some "dedicated"
    | Scheduler.Per_process _ | Scheduler.Checkpointed _ ->
        (* Not wire-reachable; never share rather than mis-share. *)
        None
  in
  Option.map
    (fun slack ->
      let bus =
        match config.Config.bus with
        | Bus.Fcfs -> "fcfs"
        | Bus.Tdma { slot_ms } -> Printf.sprintf "tdma:%h" slot_ms
      in
      Printf.sprintf "%s|%s|%d|%s" slack bus config.Config.kmax
        (Json.to_string ~minify:true (Problem_io.to_json req.Request.problem)))
    slack

let shared_cache caches (req : Request.t) =
  match caches with
  | None -> None
  | Some t -> (
      match req.Request.command with
      | Request.Analyze | Request.Exact _ ->
          (* No candidate evaluations to share. *)
          None
      | Request.Optimize | Request.Pareto _ ->
          Option.map
            (fun key ->
              Keyed_cache.find_or_add t.evals key (fun () ->
                  Redundancy_opt.create_cache ()))
            (bucket_key req))

(* --- one batch --- *)

let best_effort_id line =
  match Json.of_string line with
  | Error _ -> ""
  | Ok json -> (
      match Result.bind (Json.member "id" json) Json.to_string_value with
      | Ok id -> id
      | Error _ -> "")

let execute ?caches ~enqueued_ns line =
  let started_ns = Clock.now_ns () in
  (* One counted registry probe per distinct base_id per request,
     shared between parse-time problem resolution and exec-time base
     resolution — a problem-less "base_id" request costs one lookup,
     not two. *)
  let lookup =
    Option.map
      (fun t ->
        let memo = ref [] in
        fun id ->
          match List.assoc_opt id !memo with
          | Some r -> r
          | None ->
              let r = Keyed_cache.find_opt t.recorded id in
              memo := (id, r) :: !memo;
              r)
      caches
  in
  let resolve_base =
    Option.map
      (fun find id ->
        Option.map (fun r -> r.Design_strategy.rec_problem) (find id))
      lookup
  in
  let id, verdict, payload, error, warm =
    match Request.of_string ~on_warning:ignore ?resolve_base line with
    | Error msg ->
        (best_effort_id line, Response.Failed, Json.Object [], Some msg, None)
    | Ok req -> (
        match
          Exec.run ?cache:(shared_cache caches req) ?recorded_of:lookup req
        with
        | exception Exec.Rejected msg ->
            (req.Request.id, Response.Failed, Json.Object [], Some msg, None)
        | exception Ftes_bnb.Bnb.Budget_exhausted n ->
            ( req.Request.id,
              Response.Failed,
              Json.Object [],
              Some
                (Printf.sprintf
                   "candidate budget exhausted after %d full evaluations \
                    (raise the limit); no optimality claim is made"
                   n),
              None )
        | exception exn ->
            ( req.Request.id,
              Response.Failed,
              Json.Object [],
              Some (Printexc.to_string exn),
              None )
        | outcome ->
            let warm =
              match outcome with
              | Exec.Optimized { recorded; reuse; _ } -> Some (recorded, reuse)
              | _ -> None
            in
            ( req.Request.id,
              Exec.verdict outcome,
              Exec.payload req outcome,
              None,
              warm ))
  in
  let finished_ns = Clock.now_ns () in
  ( id,
    verdict,
    payload,
    error,
    started_ns - enqueued_ns,
    finished_ns - started_ns,
    warm )

let run_lines ?pool ?caches ?(telemetry = true) ?(first_seq = 0) lines =
  let enqueued_ns = Clock.now_ns () in
  let executed = Pool.map ?pool (execute ?caches ~enqueued_ns) lines in
  (* Register this batch's recorded optimize walks, sequentially and
     in request order, only after the whole batch executed: a request
     naming a same-batch base_id therefore fails deterministically,
     whatever pool schedule ran the batch.  First registration wins,
     so a duplicated request id cannot retarget an existing base. *)
  (match caches with
  | None -> ()
  | Some t ->
      List.iter
        (fun (id, _, _, _, _, _, warm) ->
          match warm with
          | Some (Some recorded, _) when id <> "" ->
              ignore
                (Keyed_cache.find_or_add t.recorded id (fun () -> recorded))
          | _ -> ())
        executed);
  (* One batch-end sample of the process-wide counters for every batch
     member: completion order under the pool is unobservable, and the
     counters stay monotone in seq across batches because they only
     ever grow.  The registry is sampled after the registrations above
     for the same reason. *)
  let sample =
    if not telemetry then fun _ _ _ -> None
    else begin
      let totals = Sfp_cache.totals () in
      let evals = Redundancy_opt.eval_stats () in
      let problems =
        match caches with Some t -> cache_problems t | None -> 0
      in
      let reg_hits, reg_misses =
        match caches with
        | Some t -> (registry_hits t, registry_misses t)
        | None -> (0, 0)
      in
      fun queue_wait_ns wall_ns reuse ->
        Some
          { Response.queue_wait_ns = max 0 queue_wait_ns;
            wall_ns = max 0 wall_ns;
            sfp_hits = totals.Sfp_cache.total_hits;
            sfp_misses = totals.Sfp_cache.total_misses;
            eval_hits = evals.Redundancy_opt.hits;
            eval_misses = evals.Redundancy_opt.misses;
            cache_problems = problems;
            registry_hits = reg_hits;
            registry_misses = reg_misses;
            reuse }
    end
  in
  List.mapi
    (fun i (id, verdict, payload, error, queue_wait_ns, wall_ns, warm) ->
      let reuse = match warm with Some (_, reuse) -> reuse | None -> None in
      { Response.id;
        seq = first_seq + i;
        verdict;
        payload;
        error;
        telemetry = sample queue_wait_ns wall_ns reuse })
    executed

(* --- the loop --- *)

type stats = { requests : int; failed : int; batches : int }

let read_batch ic n =
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      match In_channel.input_line ic with
      | None -> List.rev acc
      | Some line -> go (n - 1) (line :: acc)
  in
  go n []

let serve ?pool ?caches ?telemetry ?(max_batch = 16) ic oc =
  if max_batch < 1 then invalid_arg "Daemon.serve: max_batch must be positive";
  let rec loop stats seq =
    match read_batch ic max_batch with
    | [] -> stats
    | lines ->
        let responses =
          run_lines ?pool ?caches ?telemetry ~first_seq:seq lines
        in
        List.iter
          (fun r ->
            output_string oc (Response.to_line r);
            output_char oc '\n')
          responses;
        flush oc;
        let failures =
          List.length
            (List.filter
               (fun r -> r.Response.verdict = Response.Failed)
               responses)
        in
        loop
          { requests = stats.requests + List.length responses;
            failed = stats.failed + failures;
            batches = stats.batches + 1 }
          (seq + List.length responses)
  in
  loop { requests = 0; failed = 0; batches = 0 } 0

(* --- self-test --- *)

let audit ?pool ?caches () =
  let req ?whatif id command example =
    match Request.make ~id ?whatif command (`Example example) with
    | Ok r -> Request.to_string r
    | Error e -> failwith ("Daemon.audit: " ^ e)
  in
  let lines =
    [ req "audit-analyze" Request.Analyze "fig1";
      req "audit-optimize" Request.Optimize "cc";
      req "audit-pareto"
        (Request.Pareto
           { eps = 0.0;
             objectives = Ftes_pareto.Objective.all;
             ref_cost = None })
        "fig1";
      (* A one-shot what-if (no base_id: cold base walk plus warm
         rerun in the same request) so the audited stream exercises
         the whatif/* rules. *)
      req "audit-whatif"
        ~whatif:
          { Request.base_id = None;
            delta = Ftes_whatif.Delta.Deadline_scale 0.95 }
        Request.Optimize "fig1";
      (* A deliberately malformed line: the audited stream must show
         the daemon answering garbage with a structured error. *)
      "{\"schema_version\": 1, \"id\": \"audit-bad\", \"command\": \
       \"frobnicate\", \"example\": \"fig1\"}" ]
  in
  let responses = run_lines ?pool ?caches lines in
  (* Audit the actual wire bytes, not the in-memory values: re-parse
     each emitted line as the serve rules will see it. *)
  let envelopes =
    List.map
      (fun r ->
        match Json.of_string (Response.to_line r) with
        | Ok json -> json
        | Error e -> failwith ("Daemon.audit: unparseable response: " ^ e))
      responses
  in
  let subject =
    Ftes_verify.Subject.with_responses
      (Ftes_verify.Subject.of_problem (Ftes_cc.Fig_examples.fig1_problem ()))
      envelopes
  in
  ( responses,
    Ftes_verify.Verify.run
      ~rules:(Ftes_verify.Serve_rules.all @ Ftes_verify.Whatif_rules.all)
      subject )
