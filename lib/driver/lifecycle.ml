module Span = Ftes_obs.Span
module Sink = Ftes_obs.Sink
module Metrics = Ftes_obs.Metrics
module Obs_report = Ftes_obs.Report

type exit_code = Success | Lint_failure | Infeasible

let int_of_exit_code = function
  | Success -> 0
  | Lint_failure | Infeasible -> 3

let pending = Atomic.make Success

let request_exit code =
  (* Only escalate: a recorded failure survives later successes, so a
     multi-request frontend (the daemon) keeps its worst outcome. *)
  match code with
  | Success -> ()
  | Lint_failure | Infeasible -> Atomic.set pending code

let finish eval_code =
  if eval_code <> 0 then eval_code
  else int_of_exit_code (Atomic.get pending)

let reset () = Atomic.set pending Success

type obs = { seed : int; trace : string option; metrics : string option }

let default_obs = { seed = 42; trace = None; metrics = None }

let with_observability ?(aggregate_spans = false) obs f =
  let trace_oc = Option.map open_out obs.trace in
  let sink =
    match trace_oc with Some oc -> Sink.jsonl oc | None -> Sink.null
  in
  Span.configure ~sink ~aggregate:(aggregate_spans || obs.metrics <> None) ();
  Fun.protect
    ~finally:(fun () ->
      Span.disable ();
      (match obs.metrics with
      | Some path -> Obs_report.write_metrics_csv path (Metrics.snapshot ())
      | None -> ());
      Option.iter close_out trace_oc)
    f
