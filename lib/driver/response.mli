(** One response line of the design service: a versioned envelope
    around the same certified payload the CLI emits, plus per-request
    telemetry.

    Wire format (one minified JSON object per line):

    {v
    {"schema_version": 1, "id": "r1", "seq": 0, "verdict": "feasible",
     "payload": { ... }, "telemetry": {"queue_wait_ns": ..., ...}}
    v}

    The {e payload} is the deterministic part: byte-identical to the
    JSON report of the corresponding one-shot CLI invocation (the
    property the differential tests and the bench fingerprint check
    pin).  The {e telemetry} carries timing and cache statistics and
    is excluded from every fingerprint. *)

(** Typed outcome of a request, the envelope's ["verdict"] field.

    [Feasible]/[No_solution] map to CLI status 0, [Infeasible] (a
    proof, with witnesses in the payload) and [Lint_failure] to
    status 3, exactly the {!Lifecycle.exit_code} conventions; [Failed]
    marks a request that never executed (parse error, unknown version,
    exhausted budget) and carries a message instead of a payload. *)
type verdict = Feasible | No_solution | Infeasible | Lint_failure | Failed

val verdict_name : verdict -> string
(** ["feasible"], ["no-solution"], ["infeasible"], ["lint-failure"],
    ["error"]. *)

val verdict_of_name : string -> (verdict, string) result

val exit_of_verdict : verdict -> Lifecycle.exit_code
(** The status a one-shot CLI run requests for this outcome ([Failed]
    maps to [Success]: the CLI surfaces execution errors through its
    own error channel before any exit-code mapping). *)

type telemetry = {
  queue_wait_ns : int;  (** read-to-execution latency of the request. *)
  wall_ns : int;  (** execution time of the request alone. *)
  sfp_hits : int;  (** process-wide SFP-cache totals at batch end… *)
  sfp_misses : int;  (** …monotone in [seq] by construction. *)
  eval_hits : int;  (** candidate-evaluation cache totals, ditto. *)
  eval_misses : int;
  cache_problems : int;
      (** distinct problem/policy cache keys the daemon holds. *)
  registry_hits : int;
      (** recorded-walk registry totals (what-if warm starts), monotone
          like the cache counters; wire object ["registry"], absent in
          pre-whatif envelopes and parsed as 0 then. *)
  registry_misses : int;
  reuse : Ftes_whatif.Reuse.t option;
      (** what-if reuse report (wire key ["whatif"]), present exactly
          on warm-started responses.  Telemetry, so fingerprint-excluded
          like everything else in this record. *)
}

type t = {
  id : string;  (** echoed from the request ([""] if unparseable). *)
  seq : int;  (** 0-based position in the response stream. *)
  verdict : verdict;
  payload : Ftes_util.Json.t;  (** [Object []] for [Failed]. *)
  error : string option;  (** present exactly when [verdict = Failed]. *)
  telemetry : telemetry option;
}

val schema_version : int

val to_json : t -> Ftes_util.Json.t

val to_line : t -> string
(** Minified single-line {!to_json} — the JSONL wire form. *)

val of_json : ?on_warning:(string -> unit) -> Ftes_util.Json.t -> (t, string) result
(** Parse an envelope back (audits, golden tests).  Follows the
    {!Ftes_util.Versioned_json} conventions. *)

val of_string : ?on_warning:(string -> unit) -> string -> (t, string) result

val fingerprint : t -> string
(** The deterministic identity of a response: verdict, id and minified
    payload — telemetry and seq excluded.  Two runs of the same
    request must produce equal fingerprints whatever the pool size,
    cache state or batching. *)
