(** The request lifecycle shared by every frontend.

    A request — a CLI subcommand invocation or one line of daemon
    traffic — moves through five stages: {e parse} (build a
    {!Request.t}), {e validate} (problem and config constructors),
    {e execute} ({!Exec.run}), {e certify} (the verifier report the
    execution attaches) and {e report} (render the payload, settle the
    outcome).  This module owns the two pieces of machinery every
    stage relies on and no frontend may re-implement:

    {b Typed outcomes.}  Frontends never call [Stdlib.exit]: failures
    are {e requested} as typed {!exit_code}s and mapped to a process
    status in exactly one place ({!finish}), so the observability
    teardown below always runs.  [Lint_failure] and [Infeasible] both
    map to status 3 — "a check failed with a report" — as opposed to
    cmdliner's own 1/124/125; the daemon surfaces the same distinction
    as the response envelope's ["verdict"] field instead of a process
    status.

    {b Observability finalization.}  [--trace] / [--metrics] files are
    flushed by {!with_observability}'s finalizer — on normal return,
    on exceptions, and on requested failures alike.  This is the
    lifecycle's finalizer; frontends install it once around their
    work and never duplicate the flush logic. *)

(** Typed request outcomes.  [Success] is status 0; the other two are
    status 3. *)
type exit_code = Success | Lint_failure | Infeasible

val int_of_exit_code : exit_code -> int

val request_exit : exit_code -> unit
(** Record a failure outcome for {!finish} to map; later requests only
    escalate ([Success] never overwrites a recorded failure). *)

val finish : int -> int
(** [finish eval_code] is the process status: [eval_code] when
    non-zero (the frontend's own error conventions win), otherwise the
    status of the worst requested {!exit_code}. *)

val reset : unit -> unit
(** Forget any requested exit (tests and long-running frontends). *)

(** The observability options every frontend accepts. *)
type obs = { seed : int; trace : string option; metrics : string option }

val default_obs : obs
(** Seed 42, no trace, no metrics. *)

val with_observability : ?aggregate_spans:bool -> obs -> (unit -> 'a) -> 'a
(** Install the requested span sink for the duration of [f], then
    restore the defaults and flush the files — also on exceptions and
    on {!request_exit}ed failures, which is why frontends must never
    call [Stdlib.exit] themselves.  Span aggregation is forced on
    whenever a metrics snapshot will be written. *)
