module Json = Ftes_util.Json
module Versioned_json = Ftes_util.Versioned_json
module Config = Ftes_core.Config
module Problem = Ftes_model.Problem
module Problem_io = Ftes_model.Problem_io
module Objective = Ftes_pareto.Objective
module Scheduler = Ftes_sched.Scheduler
module Bus = Ftes_sched.Bus

let ( let* ) = Result.bind

let schema_version = 1

type command =
  | Analyze
  | Optimize
  | Exact of { limit : int option }
  | Pareto of {
      eps : float;
      objectives : Objective.t list;
      ref_cost : float option;
    }

let command_name = function
  | Analyze -> "analyze"
  | Optimize -> "optimize"
  | Exact _ -> "exact"
  | Pareto _ -> "pareto"

type whatif = { base_id : string option; delta : Ftes_whatif.Delta.t }

type t = {
  id : string;
  command : command;
  strategy : string;
  config : Config.t;
  problem : Problem.t;
  origin : [ `Example of string | `Inline | `Base of string ];
  source : string;
  whatif : whatif option;
}

(* --- problem & strategy resolution (moved from bin/cli_driver) --- *)

let problem_of_example = function
  | "fig1" -> Ok (Ftes_cc.Fig_examples.fig1_problem ())
  | "fig3" -> Ok (Ftes_cc.Fig_examples.fig3_problem ())
  | "cc" | "cruise-control" -> Ok (Ftes_cc.Cruise_control.problem ())
  | other ->
      Error
        (Printf.sprintf "unknown example %S (try fig1, fig3, cc)" other)

let config_of_strategy = function
  | "opt" -> Ok Config.default
  | "min" -> Ok Config.min_strategy
  | "max" -> Ok Config.max_strategy
  | other ->
      Error (Printf.sprintf "unknown strategy %S (try opt, min, max)" other)

(* --- policy spellings --- *)

let slack_name = function
  | Scheduler.Shared -> Ok "shared"
  | Scheduler.Conservative -> Ok "conservative"
  | Scheduler.Dedicated -> Ok "dedicated"
  | Scheduler.Per_process _ | Scheduler.Checkpointed _ ->
      Error "slack: only shared, conservative and dedicated travel on the wire"

let slack_of_name = function
  | "shared" -> Ok Scheduler.Shared
  | "conservative" -> Ok Scheduler.Conservative
  | "dedicated" -> Ok Scheduler.Dedicated
  | other ->
      Error
        (Printf.sprintf
           "unknown slack policy %S (try shared, conservative, dedicated)"
           other)

let bus_to_json = function
  | Bus.Fcfs -> Json.String "fcfs"
  | Bus.Tdma { slot_ms } ->
      Json.Object [ ("tdma", Json.Object [ ("slot_ms", Json.Number slot_ms) ]) ]

let bus_of_json = function
  | Json.String "fcfs" -> Ok Bus.Fcfs
  | Json.String other ->
      Error
        (Printf.sprintf
           "unknown bus policy %S (try \"fcfs\" or {\"tdma\": {\"slot_ms\": \
            ...}})"
           other)
  | Json.Object _ as json ->
      let* tdma = Json.member "tdma" json in
      let* slot_ms = Result.bind (Json.member "slot_ms" tdma) Json.to_float in
      if Float.is_finite slot_ms && slot_ms > 0.0 then
        Ok (Bus.Tdma { slot_ms })
      else Error "bus: tdma slot_ms must be finite and positive"
  | _ -> Error "bus: expected a string or an object"

(* --- optional-field helpers --- *)

let optional key json decode =
  match Json.member key json with
  | Error _ -> Ok None
  | Ok v ->
      let* v = decode v in
      Ok (Some v)

(* --- parsing --- *)

let command_of_json name json =
  match name with
  | "analyze" -> Ok Analyze
  | "optimize" -> Ok Optimize
  | "exact" ->
      let* limit = optional "limit" json Json.to_int in
      (match limit with
      | Some n when n < 1 -> Error "limit must be positive"
      | _ -> Ok (Exact { limit }))
  | "pareto" ->
      let* eps = optional "eps" json Json.to_float in
      let eps = Option.value ~default:0.0 eps in
      if not (Float.is_finite eps) || eps < 0.0 then
        Error "eps must be finite and non-negative"
      else
        let* objectives =
          optional "objectives" json (fun v ->
              let* s = Json.to_string_value v in
              Objective.parse_list s)
        in
        let objectives = Option.value ~default:Objective.all objectives in
        let* ref_cost = optional "ref_cost" json Json.to_float in
        Ok (Pareto { eps; objectives; ref_cost })
  | other ->
      Error
        (Printf.sprintf
           "unknown command %S (try analyze, optimize, exact, pareto)" other)

(* Forward compatibility: a v1 envelope carrying a field this build
   does not know is served, not rejected — the unknown field is ignored
   with a warning, so envelope growth (as "base_id"/"delta" grew in
   this version) can never strand an older daemon. *)
let known_fields =
  [ "schema_version"; "id"; "command"; "strategy"; "slack"; "bus"; "kmax";
    "problem"; "example"; "limit"; "eps"; "objectives"; "ref_cost"; "base_id";
    "delta" ]

let warn_unknown ?on_warning json =
  match (json, on_warning) with
  | Json.Object fields, Some warn ->
      List.iter
        (fun (key, _) ->
          if not (List.mem key known_fields) then
            warn (Printf.sprintf "request: ignoring unknown field %S" key))
        fields
  | _ -> ()

let of_json ?on_warning ?resolve_base json =
  let* () =
    Versioned_json.check ~what:"request" ~accept_v0:true ?on_warning
      ~current:schema_version json
  in
  warn_unknown ?on_warning json;
  let* id = Result.bind (Json.member "id" json) Json.to_string_value in
  if id = "" then Error "id must be a non-empty string"
  else
    let* name = Result.bind (Json.member "command" json) Json.to_string_value in
    let* command = command_of_json name json in
    let* strategy = optional "strategy" json Json.to_string_value in
    let strategy = Option.value ~default:"opt" strategy in
    let* config = config_of_strategy strategy in
    let* slack =
      optional "slack" json (fun v ->
          Result.bind (Json.to_string_value v) slack_of_name)
    in
    let* bus = optional "bus" json bus_of_json in
    let* kmax = optional "kmax" json Json.to_int in
    let* config =
      match kmax with
      | Some k when k < 0 -> Error "kmax must be non-negative"
      | Some k -> Ok (Config.with_kmax k config)
      | None -> Ok config
    in
    let config =
      config
      |> (match slack with
         | Some s -> Config.with_slack s
         | None -> Fun.id)
      |> match bus with Some b -> Config.with_bus b | None -> Fun.id
    in
    let* delta = optional "delta" json Ftes_whatif.Delta.of_json in
    let* base_id =
      optional "base_id" json (fun v ->
          let* id = Json.to_string_value v in
          if id = "" then Error "base_id must be a non-empty string" else Ok id)
    in
    let* whatif =
      match (delta, base_id) with
      | None, None -> Ok None
      | None, Some _ -> Error "base_id requires a \"delta\""
      | Some _, _ when command <> Optimize ->
          Error "\"delta\" is only valid on an optimize request"
      | Some delta, base_id -> Ok (Some { base_id; delta })
    in
    let* problem, origin, source =
      match (Json.member "problem" json, Json.member "example" json) with
      | Ok _, Ok _ -> Error "give either \"problem\" or \"example\", not both"
      | Ok doc, Error _ ->
          let* problem = Problem_io.of_json ?on_warning doc in
          let name = problem.Problem.app.Ftes_model.Application.name in
          Ok (problem, `Inline, "inline:" ^ name)
      | Error _, Ok name ->
          let* name = Json.to_string_value name in
          let* problem = problem_of_example name in
          Ok (problem, `Example name, "example:" ^ name)
      | Error _, Error _ -> (
          (* A what-if request may name its base instead of carrying a
             problem; the daemon resolves the id against its registry of
             recorded runs. *)
          match whatif with
          | Some { base_id = Some base; _ } -> (
              match resolve_base with
              | None ->
                  Error
                    "base_id needs a resident session (no base resolver here)"
              | Some resolve -> (
                  match resolve base with
                  | Some problem -> Ok (problem, `Base base, "base:" ^ base)
                  | None ->
                      Error (Printf.sprintf "unknown base request id %S" base)))
          | _ -> Error "request carries neither \"problem\" nor \"example\"")
    in
    Ok { id; command; strategy; config; problem; origin; source; whatif }

let of_string ?on_warning ?resolve_base line =
  let* json = Json.of_string line in
  of_json ?on_warning ?resolve_base json

(* --- emission --- *)

let command_fields = function
  | Analyze | Optimize -> []
  | Exact { limit } -> (
      match limit with
      | Some n -> [ ("limit", Json.Number (float_of_int n)) ]
      | None -> [])
  | Pareto { eps; objectives; ref_cost } ->
      [ ("eps", Json.Number eps);
        ("objectives", Json.String (Objective.names objectives)) ]
      @ (match ref_cost with
        | Some c -> [ ("ref_cost", Json.Number c) ]
        | None -> [])

let to_json t =
  let policy_fields =
    let slack =
      match slack_name t.config.Config.slack with
      | Ok "shared" -> []
      | Ok name -> [ ("slack", Json.String name) ]
      | Error _ -> []
    in
    let bus =
      match t.config.Config.bus with
      | Bus.Fcfs -> []
      | bus -> [ ("bus", bus_to_json bus) ]
    in
    let kmax =
      if t.config.Config.kmax = Config.default.Config.kmax then []
      else [ ("kmax", Json.Number (float_of_int t.config.Config.kmax)) ]
    in
    slack @ bus @ kmax
  in
  let whatif_fields =
    match t.whatif with
    | None -> []
    | Some { base_id; delta } ->
        (match base_id with
        | Some base -> [ ("base_id", Json.String base) ]
        | None -> [])
        @ [ ("delta", Ftes_whatif.Delta.to_json delta) ]
  in
  let problem_field =
    match t.origin with
    | `Example name -> [ ("example", Json.String name) ]
    | `Inline -> [ ("problem", Problem_io.to_json t.problem) ]
    | `Base _ -> [] (* the base_id field names the problem *)
  in
  Json.Object
    ([ Versioned_json.field schema_version;
       ("id", Json.String t.id);
       ("command", Json.String (command_name t.command));
       ("strategy", Json.String t.strategy) ]
    @ command_fields t.command @ policy_fields @ whatif_fields @ problem_field)

let to_string t = Json.to_string ~minify:true (to_json t)

(* --- programmatic constructor --- *)

let counter = Atomic.make 0

let make ?id ?(strategy = "opt") ?slack ?bus ?kmax ?whatif command problem =
  let* config = config_of_strategy strategy in
  let config =
    config
    |> (match slack with Some s -> Config.with_slack s | None -> Fun.id)
    |> (match bus with Some b -> Config.with_bus b | None -> Fun.id)
    |> match kmax with Some k -> Config.with_kmax k | None -> Fun.id
  in
  let* () =
    match slack with
    | Some s -> Result.map (fun _ -> ()) (slack_name s)
    | None -> Ok ()
  in
  let* problem, origin, source =
    match problem with
    | `Example name ->
        let* problem = problem_of_example name in
        Ok (problem, `Example name, "example:" ^ name)
    | `Problem problem ->
        let name = problem.Problem.app.Ftes_model.Application.name in
        Ok (problem, `Inline, "inline:" ^ name)
  in
  let id =
    match id with
    | Some id -> id
    | None -> Printf.sprintf "req-%d" (Atomic.fetch_and_add counter 1)
  in
  if id = "" then Error "id must be a non-empty string"
  else
    let* () =
      match whatif with
      | Some _ when command <> Optimize ->
          Error "a delta is only valid on an optimize request"
      | Some { base_id = Some ""; _ } ->
          Error "base_id must be a non-empty string"
      | Some _ | None -> Ok ()
    in
    Ok { id; command; strategy; config; problem; origin; source; whatif }
