(** Execute one validated {!Request.t} — the single path behind both
    the one-shot CLI subcommands and the daemon.

    [run] produces a typed {!outcome} (so text frontends can render
    freely); {!payload} renders the machine-readable JSON report — the
    same bytes whether a CLI subcommand prints it or the daemon wraps
    it in a response envelope — and {!verdict} maps the outcome onto
    the response/exit-code semantics.

    Every execution self-certifies: optimize attaches the full
    verifier report of the emitted triple, exact audits its optimality
    certificate, pareto runs the [pareto/*] rules over the frontier
    archive.  A failed certification degrades the verdict to
    {!Response.Lint_failure} — never to silence.

    Determinism: given equal requests, [payload] is byte-identical
    across runs regardless of [cache] (memoization is contractually
    invisible, see {!Ftes_core.Redundancy_opt}) — the property the
    serve tests and the bench fingerprint check enforce. *)

exception Rejected of string
(** A request that is well-formed on the wire but unservable here:
    unknown [base_id], base recorded under a different problem/policy,
    or an inapplicable delta.  Frontends turn it into a structured
    error response, exactly like a parse failure. *)

type outcome =
  | Analyzed of {
      preflight : Ftes_analyze.Preflight.t;
      certificate : Ftes_analyze.Certificate.t;
    }
  | Optimized of {
      solution : Ftes_core.Design_strategy.solution option;
      recorded : Ftes_core.Design_strategy.recorded option;
          (** the optimize walk's recorded state — what a daemon
              registers under the request id so later what-if requests
              can warm-start from it via ["base_id"]. *)
      reuse : Ftes_whatif.Reuse.t option;
          (** reuse report, present exactly on warm-started outcomes. *)
    }
  | Proved of {
      outcome : Ftes_bnb.Bnb.outcome;
      report : Ftes_verify.Report.t;
    }
  | Frontiered of {
      frontier : Ftes_core.Design_strategy.frontier;
      reference : Ftes_pareto.Archive.reference;
      report : Ftes_verify.Report.t;
    }

val run :
  ?cache:Ftes_core.Redundancy_opt.cache ->
  ?recorded_of:(string -> Ftes_core.Design_strategy.recorded option) ->
  Request.t ->
  outcome
(** Execute the request.  [cache] shares SFP tables and candidate
    evaluations with other runs over the same problem and policy
    bucket (the daemon's cross-request warm cache); results are
    bit-identical with or without it.

    A what-if request (see {!Request.t.whatif}) resolves its base walk
    through [recorded_of] when it names a ["base_id"] — the base must
    have been recorded under the same problem and config, else
    {!Rejected} — or walks the base cold in the same request when it
    does not, then answers via {!Ftes_core.Design_strategy.rerun}.
    Either way the payload is byte-identical to a cold optimize of the
    perturbed problem; only the telemetry-side {!outcome} fields
    ([recorded], [reuse]) differ.

    Raises {!Ftes_bnb.Bnb.Budget_exhausted} when an exact request's
    evaluation budget runs out, and {!Rejected} on unservable what-if
    requests — frontends turn both into an error report / [Failed]
    response. *)

val verdict : outcome -> Response.verdict

val payload : Request.t -> outcome -> Ftes_util.Json.t
(** The versioned JSON report of the outcome ([report_json] envelope:
    [schema_version], [subject], [strategy], then command-specific
    fields). *)

val report_json :
  source:string -> strategy:string -> (string * Ftes_util.Json.t) list ->
  Ftes_util.Json.t
(** The shared report envelope every machine-readable CLI report uses
    (lint and audit reports included). *)

val default_reference :
  Ftes_model.Problem.t -> Ftes_pareto.Archive.reference
(** Worst-corner hypervolume reference: every node at its priciest
    hardening level plus one cost unit, zero slack, zero margin. *)
