module Json = Ftes_util.Json
module Versioned_json = Ftes_util.Versioned_json

let ( let* ) = Result.bind

let schema_version = 1

type verdict = Feasible | No_solution | Infeasible | Lint_failure | Failed

let verdict_name = function
  | Feasible -> "feasible"
  | No_solution -> "no-solution"
  | Infeasible -> "infeasible"
  | Lint_failure -> "lint-failure"
  | Failed -> "error"

let verdict_of_name = function
  | "feasible" -> Ok Feasible
  | "no-solution" -> Ok No_solution
  | "infeasible" -> Ok Infeasible
  | "lint-failure" -> Ok Lint_failure
  | "error" -> Ok Failed
  | other -> Error (Printf.sprintf "unknown verdict %S" other)

let exit_of_verdict = function
  | Feasible | No_solution | Failed -> Lifecycle.Success
  | Infeasible -> Lifecycle.Infeasible
  | Lint_failure -> Lifecycle.Lint_failure

type telemetry = {
  queue_wait_ns : int;
  wall_ns : int;
  sfp_hits : int;
  sfp_misses : int;
  eval_hits : int;
  eval_misses : int;
  cache_problems : int;
  registry_hits : int;
  registry_misses : int;
  reuse : Ftes_whatif.Reuse.t option;
}

type t = {
  id : string;
  seq : int;
  verdict : verdict;
  payload : Json.t;
  error : string option;
  telemetry : telemetry option;
}

let int_field name v = (name, Json.Number (float_of_int v))

let telemetry_json t =
  Json.Object
    ([ int_field "queue_wait_ns" t.queue_wait_ns;
      int_field "wall_ns" t.wall_ns;
      ( "sfp_cache",
        Json.Object
          [ int_field "hits" t.sfp_hits; int_field "misses" t.sfp_misses ] );
      ( "evals",
        Json.Object
          [ int_field "hits" t.eval_hits; int_field "misses" t.eval_misses ]
      );
      ( "registry",
        Json.Object
          [ int_field "hits" t.registry_hits;
            int_field "misses" t.registry_misses ] );
      int_field "cache_problems" t.cache_problems ]
    @
    match t.reuse with
    | Some reuse -> [ ("whatif", Ftes_whatif.Reuse.to_json reuse) ]
    | None -> [])

let to_json t =
  Json.Object
    ([ Versioned_json.field schema_version;
       ("id", Json.String t.id);
       int_field "seq" t.seq;
       ("verdict", Json.String (verdict_name t.verdict));
       ("payload", t.payload) ]
    @ (match t.error with
      | Some msg -> [ ("error", Json.String msg) ]
      | None -> [])
    @
    match t.telemetry with
    | Some tel -> [ ("telemetry", telemetry_json tel) ]
    | None -> [])

let to_line t = Json.to_string ~minify:true (to_json t)

let optional key json decode =
  match Json.member key json with
  | Error _ -> Ok None
  | Ok v ->
      let* v = decode v in
      Ok (Some v)

let telemetry_of_json json =
  let int key = Result.bind (Json.member key json) Json.to_int in
  let pair key json =
    let* v = Json.member key json in
    let* hits = Result.bind (Json.member "hits" v) Json.to_int in
    let* misses = Result.bind (Json.member "misses" v) Json.to_int in
    Ok (hits, misses)
  in
  let* queue_wait_ns = int "queue_wait_ns" in
  let* wall_ns = int "wall_ns" in
  let* sfp_hits, sfp_misses = pair "sfp_cache" json in
  let* eval_hits, eval_misses = pair "evals" json in
  (* "registry" arrived with the what-if engine; pre-whatif envelopes
     simply lack it, so absence parses as zero rather than an error. *)
  let* registry_hits, registry_misses =
    match pair "registry" json with
    | Ok counts -> Ok counts
    | Error _ when Result.is_error (Json.member "registry" json) -> Ok (0, 0)
    | Error _ as e -> e
  in
  let* cache_problems = int "cache_problems" in
  let* reuse = optional "whatif" json Ftes_whatif.Reuse.of_json in
  Ok
    { queue_wait_ns;
      wall_ns;
      sfp_hits;
      sfp_misses;
      eval_hits;
      eval_misses;
      cache_problems;
      registry_hits;
      registry_misses;
      reuse }

let of_json ?on_warning json =
  let* () =
    Versioned_json.check ~what:"response" ~accept_v0:true ?on_warning
      ~current:schema_version json
  in
  let* id = Result.bind (Json.member "id" json) Json.to_string_value in
  let* seq = Result.bind (Json.member "seq" json) Json.to_int in
  let* verdict =
    Result.bind
      (Result.bind (Json.member "verdict" json) Json.to_string_value)
      verdict_of_name
  in
  let* payload = Json.member "payload" json in
  let* error = optional "error" json Json.to_string_value in
  let* telemetry = optional "telemetry" json telemetry_of_json in
  Ok { id; seq; verdict; payload; error; telemetry }

let of_string ?on_warning line =
  let* json = Json.of_string line in
  of_json ?on_warning json

let fingerprint t =
  Printf.sprintf "%s|%s|%s" (verdict_name t.verdict) t.id
    (Json.to_string ~minify:true t.payload)
