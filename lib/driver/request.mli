(** One unit of work for the design service: a problem plus a
    subcommand configuration, parsed from a versioned JSON envelope.

    Wire format (one JSON object per line in daemon traffic):

    {v
    {"schema_version": 1, "id": "r1", "command": "optimize",
     "strategy": "opt", "example": "cc"}
    {"schema_version": 1, "id": "r2", "command": "pareto",
     "eps": 0.5, "objectives": "cost,slack", "problem": { ... }}
    v}

    - ["command"]: ["analyze"], ["optimize"], ["exact"] or ["pareto"];
    - ["strategy"] (default ["opt"]): ["opt"], ["min"] or ["max"];
    - the problem comes from ["problem"] (an inline
      {!Ftes_model.Problem_io} v1 document) or ["example"] (a built-in
      name), exactly one of the two;
    - ["slack"] (default ["shared"]): ["shared"], ["conservative"] or
      ["dedicated"]; ["bus"] (default ["fcfs"]): ["fcfs"] or
      [{"tdma": {"slot_ms": 2.0}}]; ["kmax"]: the re-execution bound;
    - command options: ["limit"] (exact), ["eps"] / ["objectives"] /
      ["ref_cost"] (pareto);
    - what-if options (optimize only): ["delta"] (a
      {!Ftes_whatif.Delta} document) perturbs the problem before
      optimization, and ["base_id"] names an earlier optimize request
      whose recorded walk the answer warm-starts from — with a
      ["base_id"], ["problem"]/["example"] may be omitted entirely and
      the base's problem is resolved from the session registry.

    The envelope follows the {!Ftes_util.Versioned_json} conventions:
    versionless requests are accepted as v0 with a warning, unknown
    versions are rejected (with a structured error response, not a
    daemon crash).  Unknown {e fields} in a known version are ignored
    with a warning — never rejected — so envelope growth cannot strand
    an older daemon. *)

type command =
  | Analyze
  | Optimize
  | Exact of { limit : int option }
  | Pareto of {
      eps : float;
      objectives : Ftes_pareto.Objective.t list;
      ref_cost : float option;
    }

val command_name : command -> string
(** ["analyze"], ["optimize"], ["exact"], ["pareto"]. *)

type whatif = {
  base_id : string option;
      (** earlier optimize request to warm-start from; [None] means the
          base walk is computed cold in the same request. *)
  delta : Ftes_whatif.Delta.t;
}

type t = {
  id : string;  (** echoed verbatim in the response envelope. *)
  command : command;
  strategy : string;  (** ["opt"], ["min"] or ["max"]. *)
  config : Ftes_core.Config.t;
      (** fully resolved: strategy policy, slack, bus, kmax. *)
  problem : Ftes_model.Problem.t;
      (** for a what-if request, the {e base} problem; the delta is
          applied by {!Exec.run}. *)
  origin : [ `Example of string | `Inline | `Base of string ];
  source : string;
      (** the subject string reports carry: ["example:cc"],
          ["inline:<application name>"] or ["base:<request id>"]. *)
  whatif : whatif option;  (** optimize-only perturbation envelope. *)
}

val schema_version : int

val problem_of_example : string -> (Ftes_model.Problem.t, string) result
(** The built-in problems ([fig1], [fig3], [cc] / [cruise-control]). *)

val config_of_strategy : string -> (Ftes_core.Config.t, string) result

val of_json :
  ?on_warning:(string -> unit) ->
  ?resolve_base:(string -> Ftes_model.Problem.t option) ->
  Ftes_util.Json.t ->
  (t, string) result

val of_string :
  ?on_warning:(string -> unit) ->
  ?resolve_base:(string -> Ftes_model.Problem.t option) ->
  string ->
  (t, string) result
(** Parse one request line.  Never raises: malformed JSON, unknown
    versions/commands and invalid problems all come back as [Error].
    [resolve_base] maps a ["base_id"] to its recorded problem when the
    request carries no ["problem"]/["example"] of its own; without a
    resolver such requests are rejected. *)

val to_json : t -> Ftes_util.Json.t
(** Re-emit the request (inline problems are embedded as full
    documents); [of_string (to_string r)] resolves to an equivalent
    request.  Used by the load generator and the golden files. *)

val to_string : t -> string
(** Minified single-line {!to_json}, ready for JSONL. *)

val make :
  ?id:string ->
  ?strategy:string ->
  ?slack:Ftes_sched.Scheduler.slack_mode ->
  ?bus:Ftes_sched.Bus.policy ->
  ?kmax:int ->
  ?whatif:whatif ->
  command ->
  [ `Example of string | `Problem of Ftes_model.Problem.t ] ->
  (t, string) result
(** Programmatic constructor used by tests and the bench (same
    validation as the wire path). *)
