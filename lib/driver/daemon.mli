(** The resident design service behind [ftes serve].

    The daemon reads one JSON request per line ({!Request}), executes
    them with bounded concurrency on a {!Ftes_par.Pool} and writes one
    response envelope per request ({!Response}) — in request order,
    whatever the pool's schedule.  Requests that target the same
    problem under the same slack/bus/kmax policies share one
    {!Ftes_core.Redundancy_opt.cache} (and through it the SFP node
    tables and candidate evaluations), so a warm daemon answers
    repeated design questions without recomputing; sharing never
    changes any payload byte (the differential tests and the bench
    fingerprint check enforce this).

    A malformed or unknown-version line produces a structured
    [verdict = "error"] response and the daemon keeps serving; nothing
    a client writes can take the process down short of closing the
    pipe. *)

type caches
(** The daemon's shared state: a registry of evaluation caches keyed
    on (problem fingerprint, slack, bus, kmax) — the exact bucket
    {!Ftes_core.Redundancy_opt.cache} sharing is sound for (hardening
    strategy deliberately excluded: probe outcomes are segregated by
    policy inside each cache) — plus a registry of recorded optimize
    walks keyed on request id, the base trail what-if requests
    warm-start from via ["base_id"].  The recorded registry feeds the
    [serve.registry_hits] / [serve.registry_misses] obs counters
    through its event hook. *)

val create_caches : ?max_problems:int -> unit -> caches
(** Fresh registry retaining at most [max_problems] (default 64)
    distinct buckets; past that, one-off problems run with a private
    cache instead of growing the daemon. *)

val cache_problems : caches -> int
(** Distinct buckets currently held. *)

val cache_hits : caches -> int

val cache_misses : caches -> int
(** Registry-level lookups: a hit means a request reused another
    request's warm evaluation cache. *)

val registry_hits : caches -> int

val registry_misses : caches -> int
(** Recorded-walk registry lookups: a hit means a ["base_id"] resolved
    to a recorded optimize walk (or a re-registration found its id
    already taken); a miss is an unknown base or a first-time
    registration. *)

val run_lines :
  ?pool:Ftes_par.Pool.t ->
  ?caches:caches ->
  ?telemetry:bool ->
  ?first_seq:int ->
  string list ->
  Response.t list
(** Execute one batch of request lines.  Responses come back 1:1 and
    in input order, numbered [first_seq], [first_seq + 1], …  (default
    0).  Parse failures, unknown versions and execution errors
    (including {!Ftes_bnb.Bnb.Budget_exhausted} and unservable
    what-if requests, {!Exec.Rejected}) become [verdict = "error"]
    responses — never exceptions.  [telemetry] (default [true])
    attaches queue-wait / wall-time and the process-wide cache
    counters sampled at batch end (so they are monotone in [seq]
    across any batching), plus the per-request what-if reuse block on
    warm-started responses.

    Each optimize request's recorded walk is registered under its
    request id {e after} the whole batch executed (sequentially, in
    request order, first registration winning), so a request naming a
    same-batch ["base_id"] fails deterministically whatever pool
    schedule ran the batch. *)

type stats = {
  requests : int;  (** responses emitted. *)
  failed : int;  (** of which [verdict = "error"]. *)
  batches : int;  (** pool dispatches. *)
}

val serve :
  ?pool:Ftes_par.Pool.t ->
  ?caches:caches ->
  ?telemetry:bool ->
  ?max_batch:int ->
  in_channel ->
  out_channel ->
  stats
(** The daemon loop: read up to [max_batch] (default 16) lines, answer
    them as one pool batch, flush, repeat until EOF.  [max_batch = 1]
    gives strict request-by-request streaming; larger batches let
    independent requests overlap on the pool. *)

val audit :
  ?pool:Ftes_par.Pool.t ->
  ?caches:caches ->
  unit ->
  Response.t list * Ftes_verify.Report.t
(** Self-test behind [ftes serve --audit] and the CI smoke alias:
    drive a mixed built-in batch (analyze, optimize, pareto, a
    one-shot what-if, plus a deliberately malformed line) through
    {!run_lines}, re-parse the emitted wire bytes, and run the
    [serve/*] and [whatif/*] rules over the captured stream. *)
