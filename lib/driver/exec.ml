module Json = Ftes_util.Json
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Preflight = Ftes_analyze.Preflight
module Certificate = Ftes_analyze.Certificate
module Certificate_io = Ftes_analyze.Certificate_io
module Bnb = Ftes_bnb.Bnb
module Bnb_certificate = Ftes_analyze.Bnb_certificate
module Bnb_certificate_io = Ftes_analyze.Bnb_certificate_io
module Archive = Ftes_pareto.Archive
module Objective = Ftes_pareto.Objective
module Frontier_io = Ftes_pareto.Frontier_io
module Verify = Ftes_verify.Verify
module Report = Ftes_verify.Report
module Subject = Ftes_verify.Subject

exception Rejected of string

type outcome =
  | Analyzed of {
      preflight : Preflight.t;
      certificate : Certificate.t;
    }
  | Optimized of {
      solution : Design_strategy.solution option;
      recorded : Design_strategy.recorded option;
          (** the walk's recorded state — registry capital for later
              warm starts ([None] only if recording was impossible). *)
      reuse : Ftes_whatif.Reuse.t option;
          (** present exactly when this outcome was warm-started. *)
    }
  | Proved of { outcome : Bnb.outcome; report : Report.t }
  | Frontiered of {
      frontier : Design_strategy.frontier;
      reference : Archive.reference;
      report : Report.t;
    }

(* --- JSON report envelope (moved from bin/cli_driver) --- *)

(* Shared by every subcommand that prints a machine-readable report:
   a versioned envelope naming the subject and the strategy, with
   command-specific fields appended. *)
let report_schema_version = 1

let report_json ~source ~strategy fields =
  Json.Object
    (("schema_version", Json.Number (float_of_int report_schema_version))
     :: ("subject", Json.String source)
     :: ("strategy", Json.String strategy)
     :: fields)

(* Worst-corner reference for the hypervolume indicator: every node at
   its priciest hardening level plus one cost unit, zero slack, zero
   margin — dominated by any design with actual headroom. *)
let default_reference problem =
  let lib = Ftes_model.Problem.n_library problem in
  let total = ref 0.0 in
  for j = 0 to lib - 1 do
    let worst = ref 0.0 in
    for level = 1 to Ftes_model.Problem.levels problem j do
      worst :=
        Float.max !worst (Ftes_model.Problem.cost problem ~node:j ~level)
    done;
    total := !total +. !worst
  done;
  { Archive.ref_cost = !total +. 1.0; ref_slack = 0.0; ref_margin = 0.0 }

(* --- execution --- *)

(* A warm start is only sound against a base walk over the same
   problem under the same config: anything else would splice a foreign
   cache into the walk.  Problems compare by their canonical v1 wire
   bytes (same convention as the daemon's cache bucket key). *)
let problem_bytes p =
  Json.to_string ~minify:true (Ftes_model.Problem_io.to_json p)

let base_matches (base : Design_strategy.recorded) ~config ~problem =
  base.Design_strategy.rec_config = config
  && problem_bytes base.Design_strategy.rec_problem = problem_bytes problem

let run ?cache ?recorded_of (req : Request.t) =
  let config = req.Request.config in
  let problem = req.Request.problem in
  match req.Request.command with
  | Request.Analyze ->
      let preflight =
        Preflight.run ~kmax:config.Config.kmax ~slack:config.Config.slack
          problem
      in
      Analyzed { preflight; certificate = Certificate.of_preflight preflight }
  | Request.Optimize -> (
      (* Self-certify: the verifier report on the emitted triple is
         part of the payload, so certify is always on here. *)
      let config = Config.with_certify true config in
      match req.Request.whatif with
      | None ->
          let record = ref None in
          let solution =
            Design_strategy.run ?cache ~record ~config problem
          in
          Optimized { solution; recorded = !record; reuse = None }
      | Some { Request.base_id; delta } ->
          let base =
            match base_id with
            | None ->
                (* One-shot what-if: walk the base cold in the same
                   request, then rerun the delta warm off it. *)
                Design_strategy.run_recorded ?cache ~config problem
            | Some id -> (
                match recorded_of with
                | None ->
                    raise
                      (Rejected
                         "base_id needs a resident session (no recorded-walk \
                          registry here)")
                | Some find -> (
                    match find id with
                    | None ->
                        raise
                          (Rejected
                             (Printf.sprintf
                                "no recorded optimize walk under base_id %S"
                                id))
                    | Some base ->
                        if base_matches base ~config ~problem then base
                        else
                          raise
                            (Rejected
                               (Printf.sprintf
                                  "base_id %S was recorded under a different \
                                   problem or policy than this request"
                                  id))))
          in
          (match Design_strategy.rerun ~from:base delta with
          | Error msg -> raise (Rejected ("delta rejected: " ^ msg))
          | Ok (warm, reuse) ->
              Optimized
                { solution = warm.Design_strategy.rec_solution;
                  recorded = Some warm;
                  reuse = Some reuse }))
  | Request.Exact { limit } ->
      (* The proof is the point: always self-audit the emitted
         certificate, whatever the strategy's certify default.  The
         exact search builds its own memo tables, so [cache] does not
         apply. *)
      let config = Config.with_certify true config in
      let outcome = Bnb.solve ?limit ~config problem in
      let report =
        match outcome.Bnb.audit with
        | Some report -> report
        | None -> assert false (* certify is set above *)
      in
      Proved { outcome; report }
  | Request.Pareto { eps; objectives; ref_cost } ->
      let spec = Archive.spec ~objectives ~eps () in
      let frontier = Design_strategy.run_frontier ?cache ~spec ~config problem in
      let reference =
        let d = default_reference problem in
        match ref_cost with
        | Some c -> { d with Archive.ref_cost = c }
        | None -> d
      in
      (* Self-certify the emitted frontier with the verifier's pareto
         rules; the cheapest-point anchor only applies when cost is
         among the objectives (otherwise the ε-grid is free to coarsen
         the cost axis away). *)
      let opt_cost =
        if List.mem Objective.Cost objectives then
          Option.map
            (fun (s : Design_strategy.solution) ->
              s.Design_strategy.result.Redundancy_opt.cost)
            frontier.Design_strategy.best
        else None
      in
      let subject =
        Subject.with_archive ?opt_cost
          { (Subject.of_problem problem) with
            Subject.slack = config.Config.slack;
            bus = config.Config.bus }
          frontier.Design_strategy.archive
      in
      let report = Verify.run ~rules:Ftes_verify.Pareto_rules.all subject in
      Frontiered { frontier; reference; report }

(* --- verdict --- *)

let verdict = function
  | Analyzed { preflight; _ } ->
      if Preflight.feasible preflight then Response.Feasible
      else Response.Infeasible
  | Optimized { solution = None; _ } -> Response.No_solution
  | Optimized { solution = Some s; _ } -> (
      match s.Design_strategy.certificate with
      | Some report when not (Report.ok report) -> Response.Lint_failure
      | _ -> Response.Feasible)
  | Proved { outcome; report } ->
      if not (Report.ok report) then Response.Lint_failure
      else if outcome.Bnb.best = None then Response.Infeasible
      else Response.Feasible
  | Frontiered { frontier; report; _ } ->
      if not (Report.ok report) then Response.Lint_failure
      else if frontier.Design_strategy.best = None then Response.No_solution
      else Response.Feasible

(* --- payload builders --- *)

let ints_json a =
  Json.List
    (Array.to_list (Array.map (fun v -> Json.Number (float_of_int v)) a))

let design_json (d : Ftes_model.Design.t) =
  Json.Object
    [ ("members", ints_json d.Ftes_model.Design.members);
      ("levels", ints_json d.Ftes_model.Design.levels);
      ("reexecs", ints_json d.Ftes_model.Design.reexecs);
      ("mapping", ints_json d.Ftes_model.Design.mapping) ]

let solution_fields (s : Design_strategy.solution) =
  let r = s.Design_strategy.result in
  let v = s.Design_strategy.verdict in
  [ ("cost", Json.Number r.Redundancy_opt.cost);
    ("schedule_length_ms", Json.Number r.Redundancy_opt.schedule_length);
    ("slack_ms", Json.Number r.Redundancy_opt.slack);
    ("margin_log10", Json.Number r.Redundancy_opt.margin);
    ( "reliability_per_hour",
      Json.Number v.Ftes_sfp.Sfp.reliability_per_hour );
    ("goal", Json.Number v.Ftes_sfp.Sfp.goal);
    ("design", design_json r.Redundancy_opt.design) ]

let exact_counters_json (c : Bnb_certificate.counters) =
  let int name v = (name, Json.Number (float_of_int v)) in
  Json.Object
    [ int "expanded" c.Bnb_certificate.expanded;
      int "closed" c.Bnb_certificate.closed;
      int "evaluated" c.Bnb_certificate.evaluated;
      int "pruned_cost" c.Bnb_certificate.pruned_cost;
      int "pruned_arch" c.Bnb_certificate.pruned_arch;
      int "pruned_symmetry" c.Bnb_certificate.pruned_symmetry;
      int "pruned_levels" c.Bnb_certificate.pruned_levels;
      int "pruned_mappings" c.Bnb_certificate.pruned_mappings ]

let exact_cost_json v = if Float.is_finite v then Json.Number v else Json.Null

let payload (req : Request.t) outcome =
  let source = req.Request.source in
  let strategy = req.Request.strategy in
  match outcome with
  | Analyzed { preflight; certificate } ->
      report_json ~source ~strategy
        [ ("feasible", Json.Bool (Preflight.feasible preflight));
          ("analysis", Certificate_io.to_json certificate) ]
  | Optimized { solution = None; _ } ->
      report_json ~source ~strategy [ ("feasible", Json.Bool false) ]
  | Optimized { solution = Some s; _ } ->
      report_json ~source ~strategy
        (( "feasible", Json.Bool true )
         :: ( "explored",
              Json.Number (float_of_int s.Design_strategy.explored) )
         :: solution_fields s
        @
        match s.Design_strategy.certificate with
        | Some report -> [ ("report", Report.to_json report) ]
        | None -> [])
  | Proved { outcome; report } ->
      let cert = outcome.Bnb.certificate in
      report_json ~source ~strategy
        [ ( "feasible",
            Json.Bool (cert.Bnb_certificate.incumbent <> None) );
          ("optimal_cost", exact_cost_json cert.Bnb_certificate.optimal_cost);
          ( "heuristic_cost",
            exact_cost_json cert.Bnb_certificate.heuristic_cost );
          ( "gap",
            match Bnb_certificate.gap cert with
            | Some g -> Json.Number g
            | None -> Json.Null );
          ("counters", exact_counters_json cert.Bnb_certificate.counters);
          ("certificate", Bnb_certificate_io.to_json cert);
          ("report", Report.to_json report) ]
  | Frontiered { frontier; reference; report } ->
      let best =
        match frontier.Design_strategy.best with
        | None -> Json.Null
        | Some s ->
            let r = s.Design_strategy.result in
            Json.Object
              [ ("cost", Json.Number r.Redundancy_opt.cost);
                ( "schedule_length_ms",
                  Json.Number r.Redundancy_opt.schedule_length );
                ("slack_ms", Json.Number r.Redundancy_opt.slack);
                ("margin_log10", Json.Number r.Redundancy_opt.margin) ]
      in
      report_json ~source ~strategy
        [ ( "feasible",
            Json.Bool (frontier.Design_strategy.best <> None) );
          ( "explored",
            Json.Number (float_of_int frontier.Design_strategy.explored) );
          ("best", best);
          ( "frontier",
            Frontier_io.to_json ~reference frontier.Design_strategy.archive );
          ("report", Report.to_json report) ]
