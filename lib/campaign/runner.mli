(** Campaign execution: shard scanning, in-process shard runs and the
    OS-process fan-out with resume.

    Worker processes re-invoke the [ftes] binary as
    [ftes campaign-worker --dir DIR --shard N]; each worker loads the
    manifest, (re)runs its shard through {!run_shard} and exits.  The
    parent never parses worker output — all state flows through the
    checkpoint files, which double as the resume protocol: a shard
    whose checkpoint is already complete is skipped, a valid partial
    checkpoint is continued from its first missing cell, and a missing
    or corrupt checkpoint is recomputed from scratch.

    Progress counters (exported in the metrics registry, audited by the
    [obs/*] verifier rules):

    - [campaign.cells_done] — cells computed (checkpoint-loaded cells
      are {e not} counted);
    - [campaign.shards_done] — shards brought to completion; every one
      computed at least one fresh cell, so
      [cells_done >= shards_done];
    - [campaign.shards_resumed] — completed shards that salvaged work
      from a pre-existing partial checkpoint ([<= shards_done]).

    The process fan-out mirrors its children's completions onto the
    same counters (the workers' registries die with them), preserving
    the same invariants at every snapshot. *)

type shard_state =
  | Complete of Checkpoint.t
  | Partial of Checkpoint.t  (** valid prefix, not complete. *)
  | Missing
  | Corrupt of string  (** file exists but fails validation. *)

val scan : manifest:Manifest.t -> dir:string -> shard_state array
(** Classify every shard's checkpoint file. *)

type shard_outcome = {
  checkpoint : Checkpoint.t;  (** complete. *)
  resumed : bool;
      (** completed from a pre-existing partial checkpoint. *)
  fresh_cells : int;  (** cells computed by this call ([0] = skipped). *)
}

val run_shard :
  ?on_cell:(cell_index:int -> n_cells:int -> unit) ->
  manifest:Manifest.t ->
  dir:string ->
  int ->
  (shard_outcome, string) result
(** Bring one shard to completion in-process.  Each computed cell is
    appended to the checkpoint and atomically saved {e before}
    [on_cell] fires (so a kill inside the callback loses nothing).
    An already-complete checkpoint returns immediately with
    [fresh_cells = 0] and touches no counter. *)

type summary = {
  shards : int;
  skipped : int;  (** already complete when the run started. *)
  executed : int;  (** brought to completion by this run. *)
  resumed : int;  (** of [executed]: continued a partial checkpoint. *)
  failed : (int * string) list;  (** shard, reason. *)
}

val run_local :
  ?on_cell:(shard:int -> cell_index:int -> n_cells:int -> unit) ->
  manifest:Manifest.t ->
  dir:string ->
  unit ->
  summary
(** Run every incomplete shard sequentially in-process. *)

val run_processes :
  ?jobs:int ->
  ?on_progress:(completed:int -> total:int -> eta_s:float option -> unit) ->
  exe:string ->
  manifest:Manifest.t ->
  dir:string ->
  unit ->
  summary
(** Fan incomplete shards out to at most [jobs] (default 1) concurrent
    worker processes.  [on_progress] fires after every shard
    completion with an ETA extrapolated from the elapsed wall time.  A
    worker that exits non-zero (or dies on a signal) marks its shard
    [failed]; exit code 130 — the deliberate mid-run kill of the
    resume tests — is reported as ["interrupted"]. *)
