module Metrics = Ftes_obs.Metrics
module Synthetic = Ftes_exp.Synthetic

let c_cells_done = Metrics.counter "campaign.cells_done"

let c_shards_done = Metrics.counter "campaign.shards_done"

let c_shards_resumed = Metrics.counter "campaign.shards_resumed"

type shard_state =
  | Complete of Checkpoint.t
  | Partial of Checkpoint.t
  | Missing
  | Corrupt of string

let classify ~manifest ~dir shard =
  if not (Sys.file_exists (Checkpoint.path ~dir shard)) then Missing
  else
    match Checkpoint.load ~manifest ~dir shard with
    | Ok c when c.Checkpoint.complete -> Complete c
    | Ok c -> Partial c
    | Error e -> Corrupt e

let scan ~manifest ~dir =
  Array.init manifest.Manifest.shards (classify ~manifest ~dir)

type shard_outcome = {
  checkpoint : Checkpoint.t;
  resumed : bool;
  fresh_cells : int;
}

let cell_result_of_run ~(run : Synthetic.cell_run) =
  {
    Checkpoint.key = run.Synthetic.key;
    costs = run.Synthetic.costs;
    points = run.Synthetic.points;
    elapsed_s = run.Synthetic.elapsed_s;
  }

let run_shard ?(on_cell = fun ~cell_index:_ ~n_cells:_ -> ()) ~manifest ~dir
    shard =
  let cells = Manifest.cells manifest in
  let n_cells = List.length cells in
  let start =
    match classify ~manifest ~dir shard with
    | Complete c -> `Skip c
    | Partial c ->
        (* A partial checkpoint can never hold every cell (completeness
           is stamped in the same write as the last cell), but guard
           anyway: dropping one cell guarantees every non-skipped shard
           computes at least one fresh cell, which is what keeps
           [cells_done >= shards_done] an invariant. *)
        let kept =
          if List.length c.Checkpoint.cells >= n_cells then
            List.filteri (fun i _ -> i < n_cells - 1) c.Checkpoint.cells
          else c.Checkpoint.cells
        in
        `Run { c with Checkpoint.cells = kept }
    | Missing | Corrupt _ -> `Run (Checkpoint.create ~manifest ~shard)
  in
  match start with
  | `Skip c -> Ok { checkpoint = c; resumed = false; fresh_cells = 0 }
  | `Run start -> (
      let resumed = start.Checkpoint.cells <> [] in
      let specs = Manifest.specs_for_shard manifest shard in
      let config =
        Ftes_core.Config.(default |> with_certify false)
      in
      let compute ckpt index key =
        let run = Synthetic.run_cell ~params:manifest.Manifest.params ~config ~specs key in
        let cells' = ckpt.Checkpoint.cells @ [ cell_result_of_run ~run ] in
        let ckpt =
          { ckpt with Checkpoint.cells = cells';
            complete = List.length cells' = n_cells }
        in
        Checkpoint.save ~dir ckpt;
        Metrics.incr c_cells_done;
        on_cell ~cell_index:index ~n_cells;
        ckpt
      in
      match
        List.fold_left
          (fun (ckpt, index) key ->
            if index < List.length start.Checkpoint.cells then (ckpt, index + 1)
            else (compute ckpt index key, index + 1))
          (start, 0) cells
      with
      | ckpt, _ ->
          Metrics.incr c_shards_done;
          if resumed then Metrics.incr c_shards_resumed;
          Ok { checkpoint = ckpt; resumed; fresh_cells = n_cells - List.length start.Checkpoint.cells }
      | exception e ->
          Error
            (Printf.sprintf "shard %d: %s" shard (Printexc.to_string e)))

type summary = {
  shards : int;
  skipped : int;
  executed : int;
  resumed : int;
  failed : (int * string) list;
}

let run_local ?(on_cell = fun ~shard:_ ~cell_index:_ ~n_cells:_ -> ())
    ~manifest ~dir () =
  let shards = manifest.Manifest.shards in
  let skipped = ref 0 and executed = ref 0 and resumed = ref 0 in
  let failed = ref [] in
  for shard = 0 to shards - 1 do
    match run_shard ~on_cell:(fun ~cell_index ~n_cells -> on_cell ~shard ~cell_index ~n_cells) ~manifest ~dir shard with
    | Ok { fresh_cells = 0; _ } -> incr skipped
    | Ok outcome ->
        incr executed;
        if outcome.resumed then incr resumed
    | Error e -> failed := (shard, e) :: !failed
  done;
  {
    shards;
    skipped = !skipped;
    executed = !executed;
    resumed = !resumed;
    failed = List.rev !failed;
  }

(* The parent mirrors each worker's completion onto its own registry
   (the worker's counters die with its process): first the fresh
   cells, then the shard — so [cells_done >= shards_done] holds at
   every intermediate snapshot too. *)
let mirror_completion ~fresh_cells ~resumed =
  if fresh_cells > 0 then begin
    Metrics.add c_cells_done fresh_cells;
    Metrics.incr c_shards_done;
    if resumed then Metrics.incr c_shards_resumed
  end

let run_processes ?(jobs = 1) ?(on_progress = fun ~completed:_ ~total:_ ~eta_s:_ -> ())
    ~exe ~manifest ~dir () =
  let jobs = max 1 jobs in
  let n_cells = Manifest.n_cells manifest in
  let states = scan ~manifest ~dir in
  let total = Array.length states in
  let pending = ref [] in
  let skipped = ref 0 in
  Array.iteri
    (fun shard state ->
      match state with
      | Complete _ -> incr skipped
      | Partial c ->
          let prior = min (List.length c.Checkpoint.cells) (n_cells - 1) in
          pending := (shard, prior) :: !pending
      | Missing | Corrupt _ -> pending := (shard, 0) :: !pending)
    states;
  let pending = ref (List.rev !pending) in
  let started = Unix.gettimeofday () in
  let executed = ref 0 and resumed = ref 0 in
  let failed = ref [] in
  let running = Hashtbl.create 8 in
  let spawn (shard, prior_cells) =
    let argv =
      [| exe; "campaign-worker"; "--dir"; dir; "--shard"; string_of_int shard |]
    in
    let pid =
      Unix.create_process exe argv Unix.stdin Unix.stdout Unix.stderr
    in
    Hashtbl.replace running pid (shard, prior_cells)
  in
  let progress () =
    let completed = !skipped + !executed in
    let eta_s =
      if !executed = 0 || completed >= total then None
      else
        let elapsed = Unix.gettimeofday () -. started in
        Some (elapsed /. float_of_int !executed *. float_of_int (total - completed))
    in
    on_progress ~completed ~total ~eta_s
  in
  let reap () =
    match Unix.wait () with
    | pid, status -> (
        match Hashtbl.find_opt running pid with
        | None -> ()
        | Some (shard, prior_cells) -> (
            Hashtbl.remove running pid;
            match status with
            | Unix.WEXITED 0 -> (
                match classify ~manifest ~dir shard with
                | Complete _ ->
                    incr executed;
                    let was_resumed = prior_cells > 0 in
                    if was_resumed then incr resumed;
                    mirror_completion ~fresh_cells:(n_cells - prior_cells)
                      ~resumed:was_resumed;
                    progress ()
                | _ ->
                    failed :=
                      (shard, "worker exited 0 without a complete checkpoint")
                      :: !failed)
            | Unix.WEXITED 130 ->
                failed := (shard, "interrupted (exit 130)") :: !failed
            | Unix.WEXITED code ->
                failed := (shard, Printf.sprintf "worker exited %d" code) :: !failed
            | Unix.WSIGNALED s | Unix.WSTOPPED s ->
                failed := (shard, Printf.sprintf "worker killed by signal %d" s) :: !failed))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let rec drive () =
    while Hashtbl.length running < jobs && !pending <> [] do
      match !pending with
      | [] -> ()
      | next :: rest ->
          pending := rest;
          spawn next
    done;
    if Hashtbl.length running > 0 then begin
      reap ();
      drive ()
    end
  in
  progress ();
  drive ();
  {
    shards = total;
    skipped = !skipped;
    executed = !executed;
    resumed = !resumed;
    failed = List.rev !failed;
  }
