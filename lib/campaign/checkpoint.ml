module Json = Ftes_util.Json
module Config = Ftes_core.Config
module Workload = Ftes_gen.Workload
module Synthetic = Ftes_exp.Synthetic
module Frontier_io = Ftes_pareto.Frontier_io
open Json

let schema_version = 1

type cell_result = {
  key : Synthetic.cell_key;
  costs : float option array;
  points : (int * Ftes_pareto.Archive.point) list;
  elapsed_s : float;
}

type t = {
  manifest_fingerprint : string;
  shard : int;
  lo : int;
  hi : int;
  complete : bool;
  cells : cell_result list;
}

let path ~dir shard = Filename.concat dir (Printf.sprintf "shard-%03d.json" shard)

let create ~manifest ~shard =
  let lo, hi = Manifest.shard_range manifest shard in
  {
    manifest_fingerprint = Manifest.fingerprint manifest;
    shard;
    lo;
    hi;
    complete = false;
    cells = [];
  }

let cell_to_json (c : cell_result) =
  Object
    [ ("ser", Number c.key.Synthetic.ser);
      ("hpd", Number c.key.Synthetic.hpd);
      ("policy", String (Config.policy_name c.key.Synthetic.policy));
      ("elapsed_s", Number c.elapsed_s);
      ( "costs",
        List
          (Array.to_list
             (Array.map
                (function Some v -> Number v | None -> Null)
                c.costs)) );
      ( "points",
        List
          (List.map
             (fun (app, p) ->
               match Frontier_io.point_to_json p with
               | Object fields ->
                   Object (("app", Number (float_of_int app)) :: fields)
               | _ -> assert false)
             c.points) ) ]

let to_json t =
  Object
    [ Ftes_util.Versioned_json.field schema_version;
      ("manifest_fingerprint", String t.manifest_fingerprint);
      ("shard", Number (float_of_int t.shard));
      ("lo", Number (float_of_int t.lo));
      ("hi", Number (float_of_int t.hi));
      ("complete", Bool t.complete);
      ("cells", List (List.map cell_to_json t.cells)) ]

let costs_of_json ~lo ~hi json =
  let* items = to_list json in
  if List.length items <> hi - lo then
    Error
      (Printf.sprintf "costs: expected %d entries, found %d" (hi - lo)
         (List.length items))
  else
    let rec build acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | Null :: rest -> build (None :: acc) rest
      | item :: rest ->
          let* v = to_float item in
          if Float.is_finite v then build (Some v :: acc) rest
          else Error "costs: non-finite cost"
    in
    build [] items

(* [specs] covers the shard's range: application [app]'s spec is at
   offset [app - lo].  Every point's design is re-validated against the
   problem regenerated for (cell, application). *)
let cell_of_json ~manifest ~specs ~lo ~hi ~index json =
  let expected = List.nth (Manifest.cells manifest) index in
  let* ser = Result.bind (member "ser" json) to_float in
  let* hpd = Result.bind (member "hpd" json) to_float in
  let* policy_name = Result.bind (member "policy" json) to_string_value in
  let named p = Config.policy_name p in
  if
    ser <> expected.Synthetic.ser
    || hpd <> expected.Synthetic.hpd
    || policy_name <> named expected.Synthetic.policy
  then
    Error
      (Printf.sprintf
         "cell %d: key (%g, %g, %s) does not match the manifest grid \
          (%g, %g, %s)"
         index ser hpd policy_name expected.Synthetic.ser
         expected.Synthetic.hpd
         (named expected.Synthetic.policy))
  else
    let* elapsed_s = Result.bind (member "elapsed_s" json) to_float in
    let* costs = Result.bind (member "costs" json) (costs_of_json ~lo ~hi) in
    let* items = Result.bind (member "points" json) to_list in
    let cell = { Workload.ser = expected.Synthetic.ser; hpd = expected.Synthetic.hpd } in
    let rec build acc row = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
          let* app = Result.bind (member "app" item) to_int in
          if app < lo || app >= hi then
            Error
              (Printf.sprintf
                 "cell %d, point %d: application %d outside the shard \
                  range [%d, %d)"
                 index row app lo hi)
          else
            let spec = List.nth specs (app - lo) in
            let problem =
              Workload.problem_of_spec ~params:manifest.Manifest.params cell
                spec
            in
            let* p = Frontier_io.point_of_json ~problem ~row item in
            build ((app, p) :: acc) (row + 1) rest
    in
    let* points = build [] 1 items in
    Ok { key = expected; costs; points; elapsed_s }

let of_json ~manifest json =
  let* () =
    Ftes_util.Versioned_json.check ~what:"campaign checkpoint"
      ~accept_v0:false ~current:schema_version json
  in
  let* fp = Result.bind (member "manifest_fingerprint" json) to_string_value in
  let expected_fp = Manifest.fingerprint manifest in
  if fp <> expected_fp then
    Error
      (Printf.sprintf
         "manifest fingerprint %s does not match this campaign (%s)" fp
         expected_fp)
  else
    let* shard = Result.bind (member "shard" json) to_int in
    if shard < 0 || shard >= manifest.Manifest.shards then
      Error (Printf.sprintf "shard %d outside [0, %d)" shard manifest.Manifest.shards)
    else
      let exp_lo, exp_hi = Manifest.shard_range manifest shard in
      let* lo = Result.bind (member "lo" json) to_int in
      let* hi = Result.bind (member "hi" json) to_int in
      if lo <> exp_lo || hi <> exp_hi then
        Error
          (Printf.sprintf
             "shard %d: range [%d, %d) does not match the plan [%d, %d)"
             shard lo hi exp_lo exp_hi)
      else
        let* complete = Result.bind (member "complete" json) to_bool in
        let* items = Result.bind (member "cells" json) to_list in
        let n_cells = Manifest.n_cells manifest in
        if List.length items > n_cells then
          Error
            (Printf.sprintf "%d cells recorded, the grid has only %d"
               (List.length items) n_cells)
        else if complete && List.length items <> n_cells then
          Error
            (Printf.sprintf
               "marked complete with %d of %d cells recorded"
               (List.length items) n_cells)
        else
          let specs = Manifest.specs_for_shard manifest shard in
          let rec build acc index = function
            | [] -> Ok (List.rev acc)
            | item :: rest ->
                let* c =
                  cell_of_json ~manifest ~specs ~lo ~hi ~index item
                in
                build (c :: acc) (index + 1) rest
          in
          let* cells = build [] 0 items in
          Ok { manifest_fingerprint = fp; shard; lo; hi; complete; cells }

let save ~dir t =
  Ftes_util.Atomic_file.write_string (path ~dir t.shard)
    (Json.to_string (to_json t) ^ "\n")

let load ~manifest ~dir shard =
  let file = path ~dir shard in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "%s: no checkpoint" file)
  else
    let text =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Result.bind (Json.of_string text) (of_json ~manifest) with
    | Ok t when t.shard <> shard ->
        Error
          (Printf.sprintf "%s: holds shard %d, expected %d" file t.shard shard)
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" file e)
