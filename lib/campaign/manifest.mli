(** Campaign manifest: the complete, versioned description of a
    sharded exploration campaign (DESIGN.md §16).

    A campaign evaluates the Section 7 cell grid (SER × HPD ×
    hardening policy) over a synthetic population of [apps]
    applications, split into [shards] contiguous application ranges.
    Everything a worker needs is derived deterministically from this
    record: the population slice of shard [i] is
    {!Ftes_gen.Workload.suite_slice} over {!shard_range} — bit-identical
    to the corresponding slice of the sequential suite — so two workers
    given the same manifest can never disagree about the work.

    The manifest is serialized once into [manifest.json] at campaign
    creation; its {!fingerprint} (FNV-1a over the minified document) is
    stamped into every checkpoint, which is how resume detects a
    checkpoint written for a different campaign. *)

type t = {
  params : Ftes_gen.Workload.params;  (** workload generator knobs. *)
  apps : int;  (** population size ([>= 1]). *)
  seed : int;  (** master seed of the population. *)
  shards : int;  (** [1 <= shards <= apps]. *)
  sers : float list;  (** SER grid axis, non-empty. *)
  hpds : float list;  (** HPD grid axis, non-empty. *)
  policies : Ftes_core.Config.hardening_policy list;  (** non-empty. *)
  eps : float;  (** frontier archive resolution; [0.] keeps it exact. *)
}

val schema_version : int

val make :
  ?params:Ftes_gen.Workload.params ->
  ?sers:float list ->
  ?hpds:float list ->
  ?policies:Ftes_core.Config.hardening_policy list ->
  ?eps:float ->
  apps:int ->
  seed:int ->
  shards:int ->
  unit ->
  t
(** Checked constructor (defaults: Section 7 params, SER [1e-11], HPD
    [0.25], policies [[MIN; OPT]], [eps = 0.]).  Raises
    [Invalid_argument] on an empty grid axis, [apps < 1], a shard count
    outside [\[1, apps\]], a non-finite grid value or a negative or
    non-finite [eps]. *)

val cells : t -> Ftes_exp.Synthetic.cell_key list
(** The cell grid in canonical order (SER outer, then HPD, then
    policy) — the order checkpoints list their per-cell results in. *)

val n_cells : t -> int

val shard_range : t -> int -> int * int
(** [shard_range t i] is the application index range [\[lo, hi)] of
    shard [i]: [lo = i*apps/shards], [hi = (i+1)*apps/shards] (integer
    division) — disjoint, contiguous and covering [\[0, apps)].  Raises
    [Invalid_argument] outside [\[0, shards)]. *)

val specs_for_shard : t -> int -> Ftes_gen.Workload.app_spec list
(** The shard's population slice, bit-identical to the corresponding
    sub-list of the sequential [apps]-application suite. *)

val archive_spec : t -> Ftes_pareto.Archive.spec
(** All three objectives at the manifest's [eps]. *)

val to_json : t -> Ftes_util.Json.t

val of_json : Ftes_util.Json.t -> (t, string) result

val fingerprint : t -> string
(** {!Ftes_util.Fingerprint.of_json} of {!to_json} — stable across a
    save/load round-trip. *)

val filename : string
(** ["manifest.json"]. *)

val path : dir:string -> string

val save : dir:string -> t -> unit
(** Atomic write of [dir/manifest.json]. *)

val load : dir:string -> (t, string) result
