(** Per-shard campaign checkpoints.

    A worker streams its results into [dir/shard-NNN.json]: after every
    completed cell the whole checkpoint is rewritten through
    {!Ftes_util.Atomic_file}, so the file on disk is always a complete,
    parsable document — a kill between cells loses at most the cell in
    flight.  [complete] is stamped in the same write as the last cell,
    so a checkpoint never claims every cell without being complete.

    Loading re-validates everything against the manifest: the schema
    version, the manifest {!Manifest.fingerprint}, the shard's
    application range, the cell keys (which must be a prefix of
    {!Manifest.cells} in order), the cost-array lengths, and every
    frontier point's design — regenerated per application through
    {!Ftes_gen.Workload.problem_of_spec} and the checked
    {!Ftes_model.Design.make}.  Corruption of any kind surfaces as
    [Error], never an exception. *)

type cell_result = {
  key : Ftes_exp.Synthetic.cell_key;
  costs : float option array;
      (** per application of the shard's range, in index order;
          [None] = infeasible. *)
  points : (int * Ftes_pareto.Archive.point) list;
      (** feasible applications' frontier points, tagged with absolute
          application indices in [\[lo, hi)]. *)
  elapsed_s : float;
}

type t = {
  manifest_fingerprint : string;
  shard : int;
  lo : int;
  hi : int;
  complete : bool;
  cells : cell_result list;  (** prefix of the manifest's cell grid. *)
}

val schema_version : int

val path : dir:string -> int -> string
(** [dir/shard-NNN.json]. *)

val create : manifest:Manifest.t -> shard:int -> t
(** Empty (no cells, incomplete) checkpoint for the shard. *)

val to_json : t -> Ftes_util.Json.t

val of_json : manifest:Manifest.t -> Ftes_util.Json.t -> (t, string) result

val save : dir:string -> t -> unit
(** Atomic write of {!path}. *)

val load : manifest:Manifest.t -> dir:string -> int -> (t, string) result
(** Read and validate shard [i]'s checkpoint.  [Error] when the file is
    missing, unparsable, from another campaign, or inconsistent with
    the manifest. *)
