module Json = Ftes_util.Json
module Workload = Ftes_gen.Workload
module Config = Ftes_core.Config
open Json

let schema_version = 1

let filename = "manifest.json"

type t = {
  params : Workload.params;
  apps : int;
  seed : int;
  shards : int;
  sers : float list;
  hpds : float list;
  policies : Config.hardening_policy list;
  eps : float;
}

let validate t =
  if t.apps < 1 then invalid_arg "Manifest.make: apps must be >= 1";
  if t.shards < 1 || t.shards > t.apps then
    invalid_arg "Manifest.make: shards must be within [1, apps]";
  let finite label vs =
    if vs = [] then invalid_arg ("Manifest.make: empty " ^ label ^ " axis");
    List.iter
      (fun v ->
        if not (Float.is_finite v) then
          invalid_arg ("Manifest.make: non-finite " ^ label ^ " value"))
      vs
  in
  finite "SER" t.sers;
  finite "HPD" t.hpds;
  if t.policies = [] then invalid_arg "Manifest.make: empty policy axis";
  if not (Float.is_finite t.eps) || t.eps < 0.0 then
    invalid_arg "Manifest.make: eps must be finite and non-negative"

let make ?(params = Workload.default_params) ?(sers = [ 1e-11 ])
    ?(hpds = [ 0.25 ]) ?(policies = [ Config.Fixed_min; Config.Optimize ])
    ?(eps = 0.0) ~apps ~seed ~shards () =
  let t = { params; apps; seed; shards; sers; hpds; policies; eps } in
  validate t;
  t

let cells t =
  List.concat_map
    (fun ser ->
      List.concat_map
        (fun hpd ->
          List.map
            (fun policy -> { Ftes_exp.Synthetic.ser; hpd; policy })
            t.policies)
        t.hpds)
    t.sers

let n_cells t =
  List.length t.sers * List.length t.hpds * List.length t.policies

let shard_range t i =
  if i < 0 || i >= t.shards then
    invalid_arg (Printf.sprintf "Manifest.shard_range: shard %d of %d" i t.shards);
  (i * t.apps / t.shards, (i + 1) * t.apps / t.shards)

let specs_for_shard t i =
  let lo, hi = shard_range t i in
  Workload.suite_slice ~params:t.params ~count:t.apps ~seed:t.seed ~lo ~hi ()

let archive_spec t = Ftes_pareto.Archive.spec ~eps:t.eps ()

let pair_json (a, b) = List [ Number a; Number b ]

let params_to_json (p : Workload.params) =
  Object
    [ ("n_library", Number (float_of_int p.n_library));
      ("levels", Number (float_of_int p.levels));
      ("base_wcet_range", pair_json p.base_wcet_range);
      ("cost_range", pair_json p.cost_range);
      ("speed_range", pair_json p.speed_range);
      ("mu_fraction_range", pair_json p.mu_fraction_range);
      ("gamma_range", pair_json p.gamma_range);
      ("deadline_factor_range", pair_json p.deadline_factor_range);
      ("reduction_factor", Number p.reduction_factor);
      ("clock_hz", Number p.clock_hz) ]

let to_json t =
  Object
    [ Ftes_util.Versioned_json.field schema_version;
      ("apps", Number (float_of_int t.apps));
      ("seed", Number (float_of_int t.seed));
      ("shards", Number (float_of_int t.shards));
      ("sers", List (List.map (fun v -> Number v) t.sers));
      ("hpds", List (List.map (fun v -> Number v) t.hpds));
      ( "policies",
        List (List.map (fun p -> String (Config.policy_name p)) t.policies) );
      ("eps", Number t.eps);
      ("params", params_to_json t.params) ]

let policy_of_name = function
  | "OPT" -> Ok Config.Optimize
  | "MIN" -> Ok Config.Fixed_min
  | "MAX" -> Ok Config.Fixed_max
  | name -> Error (Printf.sprintf "unknown hardening policy %S" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let pair_of_json json =
  let* items = to_list json in
  match items with
  | [ a; b ] ->
      let* a = to_float a in
      let* b = to_float b in
      Ok (a, b)
  | _ -> Error "expected a [lo, hi] pair"

let params_of_json json =
  let field name f = Result.bind (member name json) f in
  let* n_library = field "n_library" to_int in
  let* levels = field "levels" to_int in
  let* base_wcet_range = field "base_wcet_range" pair_of_json in
  let* cost_range = field "cost_range" pair_of_json in
  let* speed_range = field "speed_range" pair_of_json in
  let* mu_fraction_range = field "mu_fraction_range" pair_of_json in
  let* gamma_range = field "gamma_range" pair_of_json in
  let* deadline_factor_range = field "deadline_factor_range" pair_of_json in
  let* reduction_factor = field "reduction_factor" to_float in
  let* clock_hz = field "clock_hz" to_float in
  Ok
    {
      Workload.n_library;
      levels;
      base_wcet_range;
      cost_range;
      speed_range;
      mu_fraction_range;
      gamma_range;
      deadline_factor_range;
      reduction_factor;
      clock_hz;
    }

let of_json json =
  let* () =
    Ftes_util.Versioned_json.check ~what:"campaign manifest" ~accept_v0:false
      ~current:schema_version json
  in
  let* apps = Result.bind (member "apps" json) to_int in
  let* seed = Result.bind (member "seed" json) to_int in
  let* shards = Result.bind (member "shards" json) to_int in
  let floats name =
    let* items = Result.bind (member name json) to_list in
    map_result to_float items
  in
  let* sers = floats "sers" in
  let* hpds = floats "hpds" in
  let* names = Result.bind (member "policies" json) to_list in
  let* names = map_result to_string_value names in
  let* policies = map_result policy_of_name names in
  let* eps = Result.bind (member "eps" json) to_float in
  let* params = Result.bind (member "params" json) params_of_json in
  let t = { params; apps; seed; shards; sers; hpds; policies; eps } in
  match validate t with
  | () -> Ok t
  | exception Invalid_argument msg -> Error msg

let fingerprint t = Ftes_util.Fingerprint.of_json (to_json t)

let path ~dir = Filename.concat dir filename

let save ~dir t =
  Ftes_util.Atomic_file.write_string (path ~dir)
    (Json.to_string (to_json t) ^ "\n")

let load ~dir =
  let file = path ~dir in
  if not (Sys.file_exists file) then
    Error (Printf.sprintf "%s: no campaign manifest" file)
  else
    let ic = open_in_bin file in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Result.bind (Json.of_string text) of_json with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "%s: %s" file e)
