(** Exact campaign merge: per-cell concatenation of the shards' cost
    arrays plus an {!Ftes_pareto.Archive.merge} fold of their frontier
    points — proven bit-identical to running the whole population
    sequentially (the population slices are bit-identical by
    construction, per-application optimizations are independent, and
    the archive's content is insertion-order independent).

    The merged document deliberately excludes wall-clock times so its
    {!fingerprint} depends only on the results: a sequential reference
    run and a sharded campaign of the same manifest produce the same
    fingerprint byte for byte — the property the [campaign/*] verifier
    rules, the qcheck suite and [bench/campaign] all enforce. *)

type merged_cell = {
  key : Ftes_exp.Synthetic.cell_key;
  costs : float option array;  (** length [apps], population order. *)
  frontier : Ftes_pareto.Archive.t;
  elapsed_s : float;  (** summed over shards; not serialized. *)
}

type t = {
  manifest_fingerprint : string;
  cells : merged_cell list;  (** manifest cell order. *)
}

val schema_version : int

val of_checkpoints :
  manifest:Manifest.t -> Checkpoint.t list -> (t, string) result
(** Merge the campaign from its shard checkpoints.  [Error] unless the
    list holds exactly shards [0 .. shards-1] (any order), all
    complete and stamped with the manifest's fingerprint. *)

val run_sequential : manifest:Manifest.t -> t
(** The reference: generate the full population once and run every
    cell sequentially, bypassing shards and checkpoints entirely. *)

val to_json : t -> Ftes_util.Json.t

val fingerprint : t -> string

val equal : t -> t -> bool
(** Same fingerprint and — independently — same costs and
    {!Ftes_pareto.Archive.equal} frontiers cell by cell. *)

val filename : string
(** ["merged.json"]. *)

val save : dir:string -> t -> unit
