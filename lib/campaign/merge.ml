module Json = Ftes_util.Json
module Config = Ftes_core.Config
module Workload = Ftes_gen.Workload
module Synthetic = Ftes_exp.Synthetic
module Archive = Ftes_pareto.Archive
module Frontier_io = Ftes_pareto.Frontier_io
open Json

let schema_version = 1

let filename = "merged.json"

type merged_cell = {
  key : Synthetic.cell_key;
  costs : float option array;
  frontier : Archive.t;
  elapsed_s : float;
}

type t = { manifest_fingerprint : string; cells : merged_cell list }

let of_checkpoints ~manifest checkpoints =
  let shards = manifest.Manifest.shards in
  let fp = Manifest.fingerprint manifest in
  let by_shard = Array.make shards None in
  let rec place = function
    | [] -> Ok ()
    | (c : Checkpoint.t) :: rest ->
        if c.Checkpoint.manifest_fingerprint <> fp then
          Error
            (Printf.sprintf "shard %d: checkpoint from another campaign"
               c.Checkpoint.shard)
        else if c.Checkpoint.shard < 0 || c.Checkpoint.shard >= shards then
          Error (Printf.sprintf "shard %d outside [0, %d)" c.Checkpoint.shard shards)
        else if by_shard.(c.Checkpoint.shard) <> None then
          Error (Printf.sprintf "shard %d: duplicate checkpoint" c.Checkpoint.shard)
        else if not c.Checkpoint.complete then
          Error (Printf.sprintf "shard %d: checkpoint incomplete" c.Checkpoint.shard)
        else begin
          by_shard.(c.Checkpoint.shard) <- Some c;
          place rest
        end
  in
  let* () = place checkpoints in
  let rec collect acc i =
    if i < 0 then Ok acc
    else
      match by_shard.(i) with
      | None -> Error (Printf.sprintf "shard %d: checkpoint missing" i)
      | Some c -> collect (c :: acc) (i - 1)
  in
  let* ordered = collect [] (shards - 1) in
  let spec = Manifest.archive_spec manifest in
  let cells =
    List.mapi
      (fun index key ->
        let per_shard =
          List.map (fun (c : Checkpoint.t) -> List.nth c.Checkpoint.cells index) ordered
        in
        let costs =
          Array.concat (List.map (fun (c : Checkpoint.cell_result) -> c.Checkpoint.costs) per_shard)
        in
        let frontier =
          List.fold_left
            (fun acc (c : Checkpoint.cell_result) ->
              Archive.merge acc
                (Archive.of_points ~spec (List.map snd c.Checkpoint.points)))
            (Archive.create ~spec ()) per_shard
        in
        let elapsed_s =
          List.fold_left
            (fun acc (c : Checkpoint.cell_result) -> acc +. c.Checkpoint.elapsed_s)
            0.0 per_shard
        in
        { key; costs; frontier; elapsed_s })
      (Manifest.cells manifest)
  in
  Ok { manifest_fingerprint = fp; cells }

let run_sequential ~manifest =
  let specs =
    Workload.paper_suite ~params:manifest.Manifest.params
      ~count:manifest.Manifest.apps ~seed:manifest.Manifest.seed ()
  in
  let spec = Manifest.archive_spec manifest in
  let config = Config.(default |> with_certify false) in
  let cells =
    List.map
      (fun key ->
        let run = Synthetic.run_cell ~params:manifest.Manifest.params ~config ~specs key in
        {
          key;
          costs = run.Synthetic.costs;
          frontier =
            Archive.of_points ~spec (List.map snd run.Synthetic.points);
          elapsed_s = run.Synthetic.elapsed_s;
        })
      (Manifest.cells manifest)
  in
  { manifest_fingerprint = Manifest.fingerprint manifest; cells }

let cell_to_json c =
  Object
    [ ("ser", Number c.key.Synthetic.ser);
      ("hpd", Number c.key.Synthetic.hpd);
      ("policy", String (Config.policy_name c.key.Synthetic.policy));
      ( "costs",
        List
          (Array.to_list
             (Array.map (function Some v -> Number v | None -> Null) c.costs)) );
      ("frontier", Frontier_io.to_json c.frontier) ]

let to_json t =
  Object
    [ Ftes_util.Versioned_json.field schema_version;
      ("manifest_fingerprint", String t.manifest_fingerprint);
      ("cells", List (List.map cell_to_json t.cells)) ]

let fingerprint t = Ftes_util.Fingerprint.of_json (to_json t)

let equal a b =
  fingerprint a = fingerprint b
  && List.length a.cells = List.length b.cells
  && List.for_all2
       (fun ca cb ->
         ca.key = cb.key && ca.costs = cb.costs
         && Archive.equal ca.frontier cb.frontier)
       a.cells b.cells

let save ~dir t =
  Ftes_util.Atomic_file.write_string (Filename.concat dir filename)
    (Json.to_string (to_json t) ^ "\n")
