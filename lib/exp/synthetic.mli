(** Synthetic-benchmark experiment cells (Section 7).

    A {e cell} is one point of the paper's evaluation grid: a
    fabrication technology (SER), a hardening performance degradation
    (HPD) and a design strategy (MIN / MAX / OPT).  Running a cell
    applies the strategy to every application of the population and
    records the optimized architecture cost (or infeasibility).  The
    acceptance percentage of Fig. 6 is then a pure function of the cell
    run and the maximum architecture cost [ArC] — so one run serves
    every ArC row, and cells shared between figures are computed once
    and memoized in a {!suite}. *)

type cell_key = {
  ser : float;
  hpd : float;
  policy : Ftes_core.Config.hardening_policy;
}

type cell_run = {
  key : cell_key;
  costs : float option array;
      (** per application: best architecture cost, or [None] when the
          strategy found no schedulable & reliable solution. *)
  points : (int * Ftes_pareto.Archive.point) list;
      (** one frontier point (cost / slack / margin plus the design) per
          feasible application, tagged with the application's absolute
          suite index — the raw material for campaign frontier merges.
          Like [costs], a pure per-application function: the list for a
          population slice is exactly the corresponding sub-list of the
          full population's. *)
  elapsed_s : float;
}

val run_cell :
  ?pool:Ftes_par.Pool.t ->
  ?params:Ftes_gen.Workload.params ->
  ?config:Ftes_core.Config.t ->
  ?analyze:bool ->
  specs:Ftes_gen.Workload.app_spec list ->
  cell_key ->
  cell_run
(** Run one cell over a fixed application population.  [config]'s
    hardening policy is overridden by the cell's.  With a multi-domain
    [pool] the (independent) applications are optimized concurrently;
    the per-application results and their order are bit-identical to a
    sequential run.  [elapsed_s] is CPU time, summed over domains.

    [analyze] (default [false]) runs an {!Ftes_analyze.Preflight}
    report per application and feeds it to the strategy as its pruning
    oracle; costs are bit-identical either way (the tests are one-sided
    proofs), only the [analyze.pruned_*] counters and the wall time
    change. *)

val acceptance : cell_run -> max_cost:float -> float
(** Percentage (0-100) of applications accepted at the given maximum
    architectural cost. *)

val feasibility : cell_run -> float
(** Percentage of applications with any feasible solution (ArC = inf). *)

(** Memoizing driver for a whole evaluation. *)
type suite

val create_suite :
  ?pool:Ftes_par.Pool.t ->
  ?params:Ftes_gen.Workload.params ->
  ?config:Ftes_core.Config.t ->
  ?count:int ->
  seed:int ->
  unit ->
  suite
(** Generates the application population once (default 150 apps, half
    with 20 and half with 40 processes).  [pool] is used by every
    {!cell} computation. *)

val suite_specs : suite -> Ftes_gen.Workload.app_spec list

val cell : suite -> cell_key -> cell_run
(** Memoized {!run_cell} on the suite's population. *)

val policies : Ftes_core.Config.hardening_policy list
(** [MAX; MIN; OPT] — the order used by the paper's charts. *)
