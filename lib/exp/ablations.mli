(** Ablation experiments for the design choices called out in DESIGN.md.

    These are not paper artifacts; they quantify (1) what recovery-slack
    sharing buys over per-process slack and what the sound conservative
    bound costs (Section 6.4's design choice), (2) what the tabu mapping
    search adds over the greedy initial mapping (Section 6.2), and
    (3) how optimistic the paper's shared-slack schedule bound is under
    actually injected faults (measured with {!Ftes_faultsim}). *)

type slack_row = {
  mode : string;
  feasible_pct : float;  (** OPT feasibility over the population. *)
  mean_cost : float;  (** mean cost over the commonly-feasible apps. *)
}

val slack_ablation :
  ?pool:Ftes_par.Pool.t ->
  ?count:int -> ?ser:float -> ?hpd:float -> seed:int -> unit -> slack_row list
(** OPT under Shared / Conservative / Dedicated slack on a synthetic
    population (defaults: 40 apps, SER 1e-11, HPD 25%).  [pool] runs
    the applications of each mode concurrently. *)

val render_slack : slack_row list -> string

type mapping_row = {
  variant : string;
  acceptance_at_20 : float;
  mean_cost : float;
}

val mapping_ablation :
  ?pool:Ftes_par.Pool.t ->
  ?count:int -> ?ser:float -> ?hpd:float -> seed:int -> unit -> mapping_row list
(** OPT with the full tabu search vs. the greedy initial mapping only
    (tabu iterations set to zero). *)

val render_mapping : mapping_row list -> string

type bound_row = {
  ser : float;
  mean_extra_k : float;
      (** average extra re-executions per node when k is chosen by the
          first-order bound instead of the exact SFP analysis. *)
  exact_mean_k : float;
  bound_mean_k : float;
  bound_unreachable_pct : float;
      (** nodes where the bound cannot certify the budget at all
          (S >= 1 or k beyond the cap) although the exact analysis can. *)
}

val bound_ablation : ?count:int -> ?hpd:float -> seed:int -> unit -> bound_row list
(** Exact SFP analysis (Appendix A) vs the closed-form S^(k+1)/(1-S)
    bound, across the three fabrication technologies: how much software
    redundancy the simple bound over-provisions (defaults: 30 apps,
    HPD 25%). *)

val render_bound : bound_row list -> string

type gap_row = {
  instances : int;
  both_feasible : int;
  heuristic_optimal : int;  (** instances where OPT matched the optimum. *)
  mean_gap_pct : float;
      (** mean (C_heuristic - C_optimal) / C_optimal over the
          both-feasible instances. *)
  max_gap_pct : float;
}

val optimality_gap :
  ?count:int -> ?n_processes:int -> seed:int -> unit -> gap_row
(** The paper's heuristics vs the exhaustive reference
    {!Ftes_core.Exhaustive} on small instances (defaults: 12 instances
    of 7 processes on a 2-node library). *)

val render_gap : gap_row -> string

type policy_row = {
  policy : string;
  schedulable_pct : float;
      (** how many of the OPT designs stay schedulable when their
          software-redundancy policy is replaced. *)
  mean_sl_ratio : float;
      (** mean schedule-length inflation relative to the paper's shared
          policy. *)
}

val retry_policy_comparison :
  ?count:int -> ?ser:float -> ?hpd:float -> seed:int -> unit -> policy_row list
(** On each OPT design (architecture, levels, mapping fixed), compare
    the paper's shared per-node budgets against (a) the same budgets
    with dedicated per-process slack and (b) individually optimized
    per-process retry budgets ({!Ftes_core.Retry_opt}). *)

val render_policy : policy_row list -> string

type checkpoint_row = {
  save_label : string;  (** checkpoint save cost, relative to mu. *)
  mean_sl_reduction_pct : float;
      (** worst-case schedule shortening vs plain re-execution. *)
  rescued : int;
      (** applications unschedulable under plain re-execution at minimum
          hardening that become schedulable with checkpointing. *)
  total : int;
}

val checkpoint_ablation : ?count:int -> seed:int -> unit -> checkpoint_row list
(** Plain re-execution vs checkpointed recovery ([15]'s technique) on
    minimum-hardening designs, across three checkpoint-save costs
    (mu/4, mu/2, mu). *)

val render_checkpoint : checkpoint_row list -> string

type exact_row = {
  app : string;
  shared_ms : float;  (** the paper's schedule bound. *)
  exact_ms : float;  (** exhaustive worst case over admissible scenarios. *)
  conservative_ms : float;  (** our sound bound. *)
  certified_optimistic : bool;
      (** some admissible fault scenario exceeds the shared bound. *)
}

val exact_worst_case :
  ?count:int -> ?n_processes:int -> seed:int -> unit -> exact_row list
(** Exhaustive scenario replay on OPT designs of small instances
    (defaults: 8 instances of 8 processes): how often and by how much the
    paper's shared-slack bound is optimistic, and that the conservative
    bound never is. *)

val render_exact : exact_row list -> string

type runtime_row = {
  n_procs : int;
  mean_opt_s : float;
  max_opt_s : float;
}

val runtime_study : ?per_size:int -> seed:int -> unit -> runtime_row list
(** OPT wall-clock vs application size (10/20/30/40 processes), the
    counterpart of the paper's "3 to 60 minutes on a Pentium 4". *)

val render_runtime : runtime_row list -> string

type optimism_row = {
  app : string;
  boost : float;
  predicted : float;  (** boosted per-iteration SFP, formula (5). *)
  observed : float;  (** Monte-Carlo budget-exceedance rate. *)
  surviving_deadline_miss_rate : float;
      (** fraction of within-budget runs that still missed the deadline:
          the optimism of the shared-slack bound. *)
}

val optimism :
  ?pool:Ftes_par.Pool.t ->
  ?count:int -> ?trials:int -> ?boost:float -> seed:int -> unit -> optimism_row list
(** Validate the SFP prediction and measure the shared-slack optimism on
    OPT solutions of a small population (defaults: 5 apps, 20_000
    trials, boost 2000).  Each application's fault-injection campaign
    draws from its own PRNG stream, split from the master seed in spec
    order before any parallelism, so the rows do not depend on the
    domain count. *)

val render_optimism : optimism_row list -> string
