module Workload = Ftes_gen.Workload
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt

type cell_key = { ser : float; hpd : float; policy : Config.hardening_policy }

type cell_run = {
  key : cell_key;
  costs : float option array;
  points : (int * Ftes_pareto.Archive.point) list;
  elapsed_s : float;
}

let run_cell ?pool ?params ?(config = Config.default) ?(analyze = false)
    ~specs key =
  Ftes_obs.Span.with_ ~name:"exp/cell" @@ fun () ->
  let config = Config.with_hardening key.policy config in
  let cell = { Workload.ser = key.ser; hpd = key.hpd } in
  let t0 = Sys.time () in
  let solutions =
    specs
    |> Ftes_par.Pool.map ?pool (fun spec ->
           let problem = Workload.problem_of_spec ?params cell spec in
           (* Per-application pre-flight report: pruning is one-sided,
              so the cell's costs are bit-identical either way. *)
           let preflight =
             if analyze then
               Some
                 (Ftes_analyze.Preflight.run ~kmax:config.Config.kmax
                    ~slack:config.Config.slack problem)
             else None
           in
           let solution = Design_strategy.run ?pool ?preflight ~config problem in
           ( spec.Workload.index,
             Option.map
               (fun (s : Design_strategy.solution) ->
                 let r = s.Design_strategy.result in
                 ( r.Redundancy_opt.cost,
                   { Ftes_pareto.Archive.design = r.Redundancy_opt.design;
                     cost = r.Redundancy_opt.cost;
                     slack = r.Redundancy_opt.slack;
                     margin = r.Redundancy_opt.margin } ))
               solution ))
  in
  let costs =
    solutions
    |> List.map (fun (_, v) -> Option.map fst v)
    |> Array.of_list
  in
  let points =
    List.filter_map
      (fun (index, v) -> Option.map (fun (_, p) -> (index, p)) v)
      solutions
  in
  { key; costs; points; elapsed_s = Sys.time () -. t0 }

let percentage hits total =
  if total = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int total

let acceptance run ~max_cost =
  let hits =
    Array.fold_left
      (fun acc cost ->
        match cost with
        | Some c when c <= max_cost +. 1e-9 -> acc + 1
        | Some _ | None -> acc)
      0 run.costs
  in
  percentage hits (Array.length run.costs)

let feasibility run =
  let hits =
    Array.fold_left
      (fun acc -> function Some _ -> acc + 1 | None -> acc)
      0 run.costs
  in
  percentage hits (Array.length run.costs)

type suite = {
  specs : Workload.app_spec list;
  params : Workload.params option;
  config : Config.t;
  pool : Ftes_par.Pool.t option;
  table : (cell_key, cell_run) Hashtbl.t;
}

let create_suite ?pool ?params ?(config = Config.default) ?(count = 150) ~seed
    () =
  let specs =
    match params with
    | Some params -> Workload.paper_suite ~params ~count ~seed ()
    | None -> Workload.paper_suite ~count ~seed ()
  in
  { specs; params; config; pool; table = Hashtbl.create 32 }

let suite_specs suite = suite.specs

let cell suite key =
  match Hashtbl.find_opt suite.table key with
  | Some run -> run
  | None ->
      let run =
        run_cell ?pool:suite.pool ?params:suite.params ~config:suite.config
          ~specs:suite.specs key
      in
      Hashtbl.replace suite.table key run;
      run

let policies = [ Config.Fixed_max; Config.Fixed_min; Config.Optimize ]
