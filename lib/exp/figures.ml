module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Text_table = Ftes_util.Text_table
module Ascii_chart = Ftes_util.Ascii_chart

type artifact = {
  id : string;
  title : string;
  x_labels : string list;
  ours : (string * float list) list;
  paper : (string * float list) list;
  note : string;
}

let hpd_values = [ 0.05; 0.25; 0.50; 1.00 ]

let ser_values = [ 1e-12; 1e-11; 1e-10 ]

let hpd_label hpd = Printf.sprintf "HPD=%g%%" (100.0 *. hpd)

let ser_label ser = Printf.sprintf "SER=%g" ser

let series suite ~cells policy =
  List.map
    (fun (ser, hpd, max_cost) ->
      let run =
        Synthetic.cell suite { Synthetic.ser; hpd; policy }
      in
      Synthetic.acceptance run ~max_cost)
    cells

let collect suite ~cells =
  List.map
    (fun policy -> (Config.policy_name policy, series suite ~cells policy))
    Synthetic.policies

(* Fig. 6b printed table: (ArC, HPD) -> (MAX, MIN, OPT). *)
let paper_fig6b =
  [ ((15, 0.05), (35., 76., 92.));
    ((20, 0.05), (71., 76., 94.));
    ((25, 0.05), (92., 82., 98.));
    ((15, 0.25), (33., 76., 86.));
    ((20, 0.25), (63., 76., 86.));
    ((25, 0.25), (84., 82., 92.));
    ((15, 0.50), (27., 76., 80.));
    ((20, 0.50), (49., 76., 84.));
    ((25, 0.50), (74., 82., 90.));
    ((15, 1.00), (23., 76., 78.));
    ((20, 1.00), (41., 76., 84.));
    ((25, 1.00), (65., 82., 90.)) ]

let paper_row_6b ~arc =
  let get hpd =
    List.assoc (arc, hpd) paper_fig6b
  in
  let maxs = List.map (fun h -> let a, _, _ = get h in a) hpd_values in
  let mins = List.map (fun h -> let _, b, _ = get h in b) hpd_values in
  let opts = List.map (fun h -> let _, _, c = get h in c) hpd_values in
  [ ("MAX", maxs); ("MIN", mins); ("OPT", opts) ]

(* Fig. 6c / 6d reference series are read off the printed bar charts
   (the paper tabulates only Fig. 6b); treat them as approximate. *)
let paper_fig6c =
  [ ("MAX", [ 71.; 71.; 71. ]);
    ("MIN", [ 92.; 76.; 10. ]);
    ("OPT", [ 92.; 94.; 82. ]) ]

let paper_fig6d =
  [ ("MAX", [ 41.; 41.; 41. ]);
    ("MIN", [ 92.; 76.; 10. ]);
    ("OPT", [ 88.; 84.; 70. ]) ]

let fig6a suite =
  let cells = List.map (fun hpd -> (1e-11, hpd, 20.0)) hpd_values in
  { id = "fig6a";
    title =
      "Fig. 6a: % accepted architectures vs hardening performance \
       degradation (SER = 1e-11, ArC = 20)";
    x_labels = List.map hpd_label hpd_values;
    ours = collect suite ~cells;
    paper = paper_row_6b ~arc:20;
    note = "paper values from the Fig. 6b table, ArC = 20 rows" }

let fig6b suite =
  List.map
    (fun arc ->
      let cells = List.map (fun hpd -> (1e-11, hpd, float_of_int arc)) hpd_values in
      { id = Printf.sprintf "fig6b-arc%d" arc;
        title =
          Printf.sprintf
            "Fig. 6b: %% accepted architectures (SER = 1e-11, ArC = %d)" arc;
        x_labels = List.map hpd_label hpd_values;
        ours = collect suite ~cells;
        paper = paper_row_6b ~arc;
        note = "paper values from the printed Fig. 6b table" })
    [ 15; 20; 25 ]

let fig6c suite =
  let cells = List.map (fun ser -> (ser, 0.05, 20.0)) ser_values in
  { id = "fig6c";
    title =
      "Fig. 6c: % accepted architectures vs soft error rate (HPD = 5%, \
       ArC = 20)";
    x_labels = List.map ser_label ser_values;
    ours = collect suite ~cells;
    paper = paper_fig6c;
    note = "paper values approximate (read off the printed bar chart)" }

let fig6d suite =
  let cells = List.map (fun ser -> (ser, 1.00, 20.0)) ser_values in
  { id = "fig6d";
    title =
      "Fig. 6d: % accepted architectures vs soft error rate (HPD = 100%, \
       ArC = 20)";
    x_labels = List.map ser_label ser_values;
    ours = collect suite ~cells;
    paper = paper_fig6d;
    note = "paper values approximate (read off the printed bar chart)" }

let render artifact =
  let table =
    Text_table.create
      ~headers:("strategy" :: List.concat_map (fun x -> [ x; "(paper)" ]) artifact.x_labels)
  in
  Text_table.set_aligns table
    (Text_table.Left :: List.concat_map (fun _ -> Text_table.[ Right; Right ]) artifact.x_labels);
  List.iter
    (fun (name, values) ->
      let paper_values = List.assoc_opt name artifact.paper in
      let cells =
        List.concat
          (List.mapi
             (fun i v ->
               let p =
                 match paper_values with
                 | Some ps -> Printf.sprintf "%.0f" (List.nth ps i)
                 | None -> "-"
               in
               [ Printf.sprintf "%.1f" v; p ])
             values)
      in
      Text_table.add_row table (name :: cells))
    artifact.ours;
  let chart =
    Ascii_chart.bar_chart ~title:"" ~x_labels:artifact.x_labels
      (List.map
         (fun (label, values) -> { Ascii_chart.label; values })
         artifact.ours)
  in
  Printf.sprintf "%s\n%s(note: %s)\n\n%s" artifact.title
    (Text_table.render table) artifact.note chart

let to_csv artifact =
  let header = "strategy" :: "kind" :: artifact.x_labels in
  let ours_rows =
    List.map
      (fun (name, values) ->
        name :: "measured" :: List.map (Printf.sprintf "%.2f") values)
      artifact.ours
  in
  let paper_rows =
    List.map
      (fun (name, values) ->
        name :: "paper" :: List.map (Printf.sprintf "%.2f") values)
      artifact.paper
  in
  header :: (ours_rows @ paper_rows)

type cc_result = {
  rows : (string * bool * float option * float option) list;
  opt_saving_vs_max : float option;
}

let cc_study ?(config = Config.default) () =
  let problem = Ftes_cc.Cruise_control.problem () in
  let run policy =
    let config = Config.with_hardening policy config in
    Design_strategy.run ~config problem
  in
  let describe policy =
    let name = Config.policy_name policy in
    match run policy with
    | None -> (name, false, None, None)
    | Some s ->
        ( name,
          true,
          Some s.Design_strategy.result.Redundancy_opt.cost,
          Some s.Design_strategy.result.Redundancy_opt.schedule_length )
  in
  let rows = List.map describe Synthetic.policies in
  let cost_of name =
    List.find_map
      (fun (n, _, cost, _) -> if n = name then cost else None)
      rows
  in
  let opt_saving_vs_max =
    match (cost_of "MAX", cost_of "OPT") with
    | Some cmax, Some copt when cmax > 0.0 -> Some ((cmax -. copt) /. cmax)
    | _ -> None
  in
  { rows; opt_saving_vs_max }

let render_cc result =
  let table =
    Text_table.create
      ~headers:[ "strategy"; "schedulable & reliable"; "cost"; "SL (ms)"; "paper" ]
  in
  let paper_row = function
    | "MIN" -> "unschedulable"
    | "MAX" -> "schedulable"
    | "OPT" -> "schedulable, 66% cheaper than MAX"
    | _ -> ""
  in
  List.iter
    (fun (name, feasible, cost, sl) ->
      Text_table.add_row table
        [ name;
          (if feasible then "yes" else "no");
          (match cost with Some c -> Printf.sprintf "%.0f" c | None -> "-");
          (match sl with Some s -> Printf.sprintf "%.1f" s | None -> "-");
          paper_row name ])
    result.rows;
  let saving =
    match result.opt_saving_vs_max with
    | Some s ->
        Printf.sprintf
          "measured OPT saving vs MAX: %.1f%% (paper reports 66%%)\n"
          (100.0 *. s)
    | None -> "OPT saving vs MAX not available\n"
  in
  "Cruise controller case study (32 processes on ETM/ABS/TCM, D = 300 ms,\n\
   rho = 1 - 1.2e-5/h, SER = 2e-12, HPD = 25%)\n"
  ^ Text_table.render table ^ saving
