module Workload = Ftes_gen.Workload
module Config = Ftes_core.Config
module Design_strategy = Ftes_core.Design_strategy
module Redundancy_opt = Ftes_core.Redundancy_opt
module Scheduler = Ftes_sched.Scheduler
module Text_table = Ftes_util.Text_table
module Prng = Ftes_util.Prng
module Executor = Ftes_faultsim.Executor

let population ~count ~seed =
  List.init count (fun index ->
      let n_processes = if index mod 2 = 0 then 20 else 40 in
      Workload.generate_spec ~seed ~index ~n_processes ())

(* Minimum-hardening design on the full library with the greedy initial
   mapping — the common starting point of the per-node analyses. *)
let design_on_all_nodes problem =
  let m = Ftes_model.Problem.n_library problem in
  let members = Array.init m Fun.id in
  let mapping =
    Ftes_core.Mapping_opt.initial_mapping ~config:Config.default problem
      ~members
  in
  Ftes_model.Design.make problem ~members ~levels:(Array.make m 1)
    ~reexecs:(Array.make m 0) ~mapping

type slack_row = { mode : string; feasible_pct : float; mean_cost : float }

let slack_ablation ?pool ?(count = 40) ?(ser = 1e-11) ?(hpd = 0.25) ~seed () =
  let specs = population ~count ~seed in
  let cell = { Workload.ser; hpd } in
  let modes =
    [ ("shared (paper)", Scheduler.Shared);
      ("conservative", Scheduler.Conservative);
      ("dedicated", Scheduler.Dedicated) ]
  in
  let runs =
    List.map
      (fun (name, slack) ->
        let config = Config.with_slack slack Config.default in
        let costs =
          Ftes_par.Pool.map ?pool
            (fun spec ->
              let problem = Workload.problem_of_spec cell spec in
              Design_strategy.run ?pool ~config problem
              |> Option.map (fun (s : Design_strategy.solution) ->
                     s.Design_strategy.result.Redundancy_opt.cost))
            specs
        in
        (name, costs))
      modes
  in
  (* Mean cost over the apps feasible under every mode, so the cost
     columns compare like with like. *)
  let all_feasible =
    List.init count (fun i ->
        List.for_all (fun (_, costs) -> List.nth costs i <> None) runs)
  in
  List.map
    (fun (mode, costs) ->
      let feasible =
        List.length (List.filter Option.is_some costs)
      in
      let common =
        List.filteri (fun i _ -> List.nth all_feasible i) costs
        |> List.filter_map Fun.id
      in
      { mode;
        feasible_pct = 100.0 *. float_of_int feasible /. float_of_int count;
        mean_cost = Ftes_util.Stats.mean common })
    runs

let render_slack rows =
  let table =
    Text_table.create
      ~headers:[ "slack policy"; "feasible %"; "mean cost (common apps)" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ r.mode;
          Printf.sprintf "%.1f" r.feasible_pct;
          Printf.sprintf "%.2f" r.mean_cost ])
    rows;
  "Ablation: recovery-slack policy (OPT strategy, SER = 1e-11, HPD = 25%)\n"
  ^ Text_table.render table

type mapping_row = {
  variant : string;
  acceptance_at_20 : float;
  mean_cost : float;
}

let mapping_ablation ?pool ?(count = 40) ?(ser = 1e-11) ?(hpd = 0.25) ~seed () =
  let specs = population ~count ~seed in
  let cell = { Workload.ser; hpd } in
  let variants =
    [ ("tabu search (paper)", Config.default);
      ( "greedy initial mapping only",
        Config.with_max_iterations 0 Config.default ) ]
  in
  List.map
    (fun (variant, config) ->
      let costs =
        Ftes_par.Pool.map ?pool
          (fun spec ->
            let problem = Workload.problem_of_spec cell spec in
            Design_strategy.run ?pool ~config problem
            |> Option.map (fun (s : Design_strategy.solution) ->
                   s.Design_strategy.result.Redundancy_opt.cost))
          specs
        |> List.filter_map Fun.id
      in
      let accepted = List.filter (fun c -> c <= 20.0 +. 1e-9) costs in
      { variant;
        acceptance_at_20 =
          100.0 *. float_of_int (List.length accepted) /. float_of_int count;
        mean_cost = Ftes_util.Stats.mean costs })
    variants

let render_mapping rows =
  let table =
    Text_table.create
      ~headers:[ "mapping optimization"; "accepted % (ArC=20)"; "mean cost" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ r.variant;
          Printf.sprintf "%.1f" r.acceptance_at_20;
          Printf.sprintf "%.2f" r.mean_cost ])
    rows;
  "Ablation: tabu mapping search vs greedy mapping (OPT, SER = 1e-11, HPD = 25%)\n"
  ^ Text_table.render table

type bound_row = {
  ser : float;
  mean_extra_k : float;
  exact_mean_k : float;
  bound_mean_k : float;
  bound_unreachable_pct : float;
}

let bound_ablation ?(count = 30) ?(hpd = 0.25) ~seed () =
  let specs = population ~count ~seed in
  List.map
    (fun ser ->
      let cell = { Workload.ser; hpd } in
      let exact_total = ref 0 and bound_total = ref 0 in
      let nodes = ref 0 and unreachable = ref 0 in
      List.iter
        (fun (spec : Workload.app_spec) ->
          let problem = Workload.problem_of_spec cell spec in
          let design = design_on_all_nodes problem in
          let app = problem.Ftes_model.Problem.app in
          let members = Ftes_model.Design.n_members design in
          (* Even split of the per-iteration failure budget over nodes:
             the engineering rule a designer would apply by hand. *)
          let budget =
            app.Ftes_model.Application.gamma
            /. Float.ceil (Ftes_model.Application.iterations_per_hour app)
            /. float_of_int members
          in
          for member = 0 to members - 1 do
            let p = Ftes_model.Design.pfail_vector problem design ~member in
            if Array.length p > 0 then begin
              let analysis = Ftes_sfp.Sfp.node_analysis p in
              let rec exact_k k =
                if k > Ftes_sfp.Sfp.kmax analysis then None
                else if Ftes_sfp.Sfp.pr_exceeds analysis ~k <= budget then Some k
                else exact_k (k + 1)
              in
              match exact_k 0 with
              | None -> () (* budget unreachable even exactly; skip node *)
              | Some ke ->
                  incr nodes;
                  exact_total := !exact_total + ke;
                  (match
                     Ftes_sfp.Bound.required_k p ~budget
                       ~kmax:Ftes_sfp.Sfp.default_kmax
                   with
                  | Some kb -> bound_total := !bound_total + kb
                  | None ->
                      incr unreachable;
                      bound_total := !bound_total + ke)
            end
          done)
        specs;
      let nodes_f = float_of_int (max 1 !nodes) in
      { ser;
        mean_extra_k = float_of_int (!bound_total - !exact_total) /. nodes_f;
        exact_mean_k = float_of_int !exact_total /. nodes_f;
        bound_mean_k = float_of_int !bound_total /. nodes_f;
        bound_unreachable_pct = 100.0 *. float_of_int !unreachable /. nodes_f })
    [ 1e-12; 1e-11; 1e-10 ]

let render_bound rows =
  let table =
    Text_table.create
      ~headers:
        [ "SER"; "mean k (exact)"; "mean k (bound)"; "extra k / node";
          "bound fails %" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ Printf.sprintf "%g" r.ser;
          Printf.sprintf "%.2f" r.exact_mean_k;
          Printf.sprintf "%.2f" r.bound_mean_k;
          Printf.sprintf "%.2f" r.mean_extra_k;
          Printf.sprintf "%.1f" r.bound_unreachable_pct ])
    rows;
  "Ablation: exact SFP analysis (Appendix A) vs the closed-form\n\
   S^(k+1)/(1-S) bound, re-executions needed per node for an even budget\n\
   split\n"
  ^ Text_table.render table

type gap_row = {
  instances : int;
  both_feasible : int;
  heuristic_optimal : int;
  mean_gap_pct : float;
  max_gap_pct : float;
}

let small_params =
  { Workload.default_params with
    Ftes_gen.Workload.n_library = 2;
    levels = 3 }

let optimality_gap ?(count = 12) ?(n_processes = 7) ~seed () =
  let config = Config.default in
  let gaps = ref [] in
  let both = ref 0 and optimal = ref 0 in
  for index = 0 to count - 1 do
    let spec =
      Workload.generate_spec ~params:small_params ~seed ~index ~n_processes ()
    in
    let problem =
      Workload.problem_of_spec ~params:small_params
        { Workload.ser = 1e-11; hpd = 0.25 }
        spec
    in
    let heuristic = Design_strategy.run ~config problem in
    let exact = Ftes_core.Exhaustive.run ~config problem in
    match (heuristic, exact) with
    | Some h, Some e ->
        incr both;
        let ch = h.Design_strategy.result.Redundancy_opt.cost in
        let ce = e.Redundancy_opt.cost in
        let gap = (ch -. ce) /. ce in
        if gap <= 1e-9 then incr optimal;
        gaps := gap :: !gaps
    | None, None -> ()
    | None, Some _ | Some _, None -> ()
  done;
  { instances = count;
    both_feasible = !both;
    heuristic_optimal = !optimal;
    mean_gap_pct = 100.0 *. Ftes_util.Stats.mean !gaps;
    max_gap_pct =
      100.0 *. List.fold_left Float.max 0.0 !gaps }

let render_gap r =
  Printf.sprintf
    "Ablation: heuristic vs exhaustive optimum on small instances\n\
    \  instances            %d\n\
    \  both feasible        %d\n\
    \  heuristic == optimum %d\n\
    \  mean cost gap        %.1f%%\n\
    \  max cost gap         %.1f%%\n"
    r.instances r.both_feasible r.heuristic_optimal r.mean_gap_pct
    r.max_gap_pct

type policy_row = {
  policy : string;
  schedulable_pct : float;
  mean_sl_ratio : float;
}

let retry_policy_comparison ?(count = 30) ?(ser = 1e-11) ?(hpd = 0.25) ~seed ()
    =
  let specs = population ~count ~seed in
  let cell = { Workload.ser; hpd } in
  let samples =
    List.filter_map
      (fun spec ->
        let problem = Workload.problem_of_spec cell spec in
        match Design_strategy.run ~config:Config.default problem with
        | None -> None
        | Some s ->
            let design = s.Design_strategy.result.Redundancy_opt.design in
            let deadline =
              problem.Ftes_model.Problem.app.Ftes_model.Application.deadline_ms
            in
            (* The optimizer ran under the default (shared-slack, FCFS)
               policies, so its result already carries this length. *)
            let shared = s.Design_strategy.result.Redundancy_opt.schedule_length in
            let dedicated =
              Scheduler.schedule_length ~slack:Scheduler.Dedicated problem
                design
            in
            let per_process =
              Ftes_core.Retry_opt.optimize problem design
              |> Option.map (fun (_, sl) -> sl)
            in
            Some (deadline, shared, dedicated, per_process))
      specs
  in
  let total = float_of_int (max 1 (List.length samples)) in
  let summarize policy extract =
    let schedulable = ref 0 and ratios = ref [] in
    List.iter
      (fun ((deadline, shared, _, _) as sample) ->
        match extract sample with
        | None -> ()
        | Some sl ->
            if sl <= deadline +. 1e-9 then incr schedulable;
            if shared > 0.0 then ratios := (sl /. shared) :: !ratios)
      samples;
    { policy;
      schedulable_pct = 100.0 *. float_of_int !schedulable /. total;
      mean_sl_ratio = Ftes_util.Stats.mean !ratios }
  in
  [ summarize "shared per-node k (paper)" (fun (_, shared, _, _) -> Some shared);
    summarize "same k, dedicated slack" (fun (_, _, dedicated, _) ->
        Some dedicated);
    summarize "per-process retry budgets" (fun (_, _, _, pp) -> pp) ]

let render_policy rows =
  let table =
    Text_table.create
      ~headers:
        [ "software-redundancy policy"; "designs still schedulable %";
          "mean SL vs shared" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ r.policy;
          Printf.sprintf "%.1f" r.schedulable_pct;
          Printf.sprintf "%.2fx" r.mean_sl_ratio ])
    rows;
  "Ablation: software-redundancy policy on fixed OPT designs\n"
  ^ Text_table.render table

type checkpoint_row = {
  save_label : string;
  mean_sl_reduction_pct : float;
  rescued : int;
  total : int;
}

let checkpoint_ablation ?(count = 30) ~seed () =
  let specs = population ~count ~seed in
  let cell = { Workload.ser = 1e-10; hpd = 0.25 } in
  (* Minimum-hardening designs need the most software redundancy, so
     checkpointing has the most slack to reclaim there. *)
  let cases =
    List.filter_map
      (fun spec ->
        let problem = Workload.problem_of_spec cell spec in
        let base = design_on_all_nodes problem in
        match Ftes_core.Re_execution_opt.optimize problem base with
        | None -> None
        | Some design ->
            let deadline =
              problem.Ftes_model.Problem.app.Ftes_model.Application.deadline_ms
            in
            let mu =
              problem.Ftes_model.Problem.app
                .Ftes_model.Application.recovery_overhead_ms
            in
            let plain = Scheduler.schedule_length problem design in
            Some (problem, design, deadline, mu, plain))
      specs
  in
  let total = List.length cases in
  List.map
    (fun (label, fraction) ->
      let reductions = ref [] and rescued = ref 0 in
      List.iter
        (fun (problem, design, deadline, mu, plain) ->
          let _, ckpt =
            Ftes_core.Checkpoint_opt.optimize ~save_ms:(fraction *. mu) problem
              design
          in
          if plain > 0.0 then
            reductions := (100.0 *. (plain -. ckpt) /. plain) :: !reductions;
          if plain > deadline +. 1e-9 && ckpt <= deadline +. 1e-9 then
            incr rescued)
        cases;
      { save_label = label;
        mean_sl_reduction_pct = Ftes_util.Stats.mean !reductions;
        rescued = !rescued;
        total })
    [ ("save = mu/4", 0.25); ("save = mu/2", 0.5); ("save = mu", 1.0) ]

let render_checkpoint rows =
  let table =
    Text_table.create
      ~headers:
        [ "checkpoint save cost"; "mean SL reduction %";
          "unschedulable apps rescued" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ r.save_label;
          Printf.sprintf "%.1f" r.mean_sl_reduction_pct;
          Printf.sprintf "%d / %d" r.rescued r.total ])
    rows;
  "Extension: checkpointed recovery vs plain re-execution on\n\
   minimum-hardening designs (SER = 1e-10, HPD = 25%)\n"
  ^ Text_table.render table

type exact_row = {
  app : string;
  shared_ms : float;
  exact_ms : float;
  conservative_ms : float;
  certified_optimistic : bool;
}

let exact_worst_case ?(count = 8) ?(n_processes = 8) ~seed () =
  let params =
    { Workload.default_params with Ftes_gen.Workload.n_library = 2; levels = 5 }
  in
  List.filter_map
    (fun index ->
      let spec =
        Workload.generate_spec ~params ~seed ~index ~n_processes ()
      in
      let problem =
        Workload.problem_of_spec ~params
          { Workload.ser = 1e-10; hpd = 0.25 }
          spec
      in
      match Design_strategy.run ~config:Config.default problem with
      | None -> None
      | Some s ->
          let design = s.Design_strategy.result.Redundancy_opt.design in
          if Ftes_faultsim.Scenarios.count_scenarios design > 100_000.0 then
            None
          else begin
            let r = Ftes_faultsim.Scenarios.worst_case problem design in
            Some
              { app = Printf.sprintf "small-%03d" index;
                shared_ms = r.Ftes_faultsim.Scenarios.shared_bound_ms;
                exact_ms = r.Ftes_faultsim.Scenarios.exact_worst_ms;
                conservative_ms =
                  r.Ftes_faultsim.Scenarios.conservative_bound_ms;
                certified_optimistic =
                  Ftes_faultsim.Scenarios.optimism_certificate r }
          end)
    (List.init count Fun.id)

let render_exact rows =
  let table =
    Text_table.create
      ~headers:
        [ "application"; "shared SL (paper)"; "exact worst case";
          "conservative SL"; "shared bound optimistic?" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ r.app;
          Printf.sprintf "%.1f" r.shared_ms;
          Printf.sprintf "%.1f" r.exact_ms;
          Printf.sprintf "%.1f" r.conservative_ms;
          (if r.certified_optimistic then "yes" else "no") ])
    rows;
  "Exact worst case (exhaustive fault-scenario replay) vs the two\n\
   schedule bounds, on OPT designs of small instances\n"
  ^ Text_table.render table

type runtime_row = {
  n_procs : int;
  mean_opt_s : float;
  max_opt_s : float;
}

let runtime_study ?(per_size = 5) ~seed () =
  List.map
    (fun n_procs ->
      let times =
        List.init per_size (fun index ->
            let spec =
              Workload.generate_spec ~seed ~index ~n_processes:n_procs ()
            in
            let problem =
              Workload.problem_of_spec { Workload.ser = 1e-11; hpd = 0.25 } spec
            in
            let t0 = Sys.time () in
            ignore (Design_strategy.run ~config:Config.default problem);
            Sys.time () -. t0)
      in
      { n_procs;
        mean_opt_s = Ftes_util.Stats.mean times;
        max_opt_s = List.fold_left Float.max 0.0 times })
    [ 10; 20; 30; 40 ]

let render_runtime rows =
  let table =
    Text_table.create
      ~headers:[ "processes"; "mean OPT time (s)"; "max OPT time (s)" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ string_of_int r.n_procs;
          Printf.sprintf "%.3f" r.mean_opt_s;
          Printf.sprintf "%.3f" r.max_opt_s ])
    rows;
  "Runtime scaling of the OPT strategy (the paper reports 3-60 minutes\n\
   per application on a 2.8 GHz Pentium 4)\n"
  ^ Text_table.render table

type optimism_row = {
  app : string;
  boost : float;
  predicted : float;
  observed : float;
  surviving_deadline_miss_rate : float;
}

let optimism ?pool ?(count = 5) ?(trials = 20_000) ?(boost = 2000.0) ~seed () =
  let specs = population ~count ~seed in
  let cell = { Workload.ser = 1e-11; hpd = 0.25 } in
  (* Streams are split from the master PRNG in spec order before any
     parallelism, so the campaign of each application is bit-identical
     across domain counts. *)
  let master = Prng.create seed in
  Ftes_par.Pool.map_seeded ?pool ~prng:master
    (fun prng (spec : Workload.app_spec) ->
      let problem = Workload.problem_of_spec cell spec in
      match Design_strategy.run ?pool ~config:Config.default problem with
      | None -> None
      | Some s ->
          let design = s.Design_strategy.result.Redundancy_opt.design in
          let schedule = Scheduler.schedule problem design in
          let deadline =
            problem.Ftes_model.Problem.app.Ftes_model.Application.deadline_ms
          in
          let failures = ref 0 and survived = ref 0 and misses = ref 0 in
          for _ = 1 to trials do
            let o = Executor.run_iteration ~boost prng problem design schedule in
            match o.Executor.failed_node with
            | Some _ -> incr failures
            | None ->
                incr survived;
                if o.Executor.makespan > deadline +. 1e-9 then incr misses
          done;
          let campaign =
            Executor.run_campaign ~boost prng problem design ~trials:1
          in
          Some
            { app = Printf.sprintf "synthetic-%03d" spec.Workload.index;
              boost;
              predicted = campaign.Executor.predicted_failure_rate;
              observed = float_of_int !failures /. float_of_int trials;
              surviving_deadline_miss_rate =
                (if !survived = 0 then 0.0
                 else float_of_int !misses /. float_of_int !survived) })
    specs
  |> List.filter_map Fun.id

let render_optimism rows =
  let table =
    Text_table.create
      ~headers:
        [ "application"; "boost"; "SFP predicted"; "observed"; "miss rate | survived" ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ r.app;
          Printf.sprintf "%.0fx" r.boost;
          Printf.sprintf "%.2e" r.predicted;
          Printf.sprintf "%.2e" r.observed;
          Printf.sprintf "%.4f" r.surviving_deadline_miss_rate ])
    rows;
  "Fault-injection validation: SFP formula (5) vs Monte-Carlo (boosted\n\
   probabilities), and the shared-slack optimism (fraction of\n\
   within-budget runs finishing after the deadline)\n"
  ^ Text_table.render table
