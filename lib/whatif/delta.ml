module Json = Ftes_util.Json
open Ftes_model
open Json

type t =
  | Deadline_set of float
  | Deadline_scale of float
  | Period_set of float
  | Period_scale of float
  | Gamma_set of float
  | Wcet_scale of { node : int; factor : float }
  | Ser_scale of { node : int; factor : float }
  | Hversion_cost_set of { node : int; level : int; cost : float }
  | Hversion_wcet_set of { node : int; level : int; proc : int; wcet_ms : float }
  | Hversion_pfail_set of { node : int; level : int; proc : int; pfail : float }
  | Node_add of Platform.node_type
  | Node_remove of int
  | Kmax_set of int

let class_name = function
  | Deadline_set _ -> "deadline-set"
  | Deadline_scale _ -> "deadline-scale"
  | Period_set _ -> "period-set"
  | Period_scale _ -> "period-scale"
  | Gamma_set _ -> "gamma-set"
  | Wcet_scale _ -> "wcet-scale"
  | Ser_scale _ -> "ser-scale"
  | Hversion_cost_set _ -> "hversion-cost-set"
  | Hversion_wcet_set _ -> "hversion-wcet-set"
  | Hversion_pfail_set _ -> "hversion-pfail-set"
  | Node_add _ -> "node-add"
  | Node_remove _ -> "node-remove"
  | Kmax_set _ -> "kmax-set"

let class_names =
  [ "deadline-set"; "deadline-scale"; "period-set"; "period-scale"; "gamma-set";
    "wcet-scale"; "ser-scale"; "hversion-cost-set"; "hversion-wcet-set";
    "hversion-pfail-set"; "node-add"; "node-remove"; "kmax-set" ]

let guard label f =
  match f () with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (label ^ ": " ^ msg)

let positive_factor label factor =
  if Float.is_finite factor && factor > 0. then Ok ()
  else Error (Printf.sprintf "%s: factor must be positive and finite" label)

(* Rebuild the application with some globals replaced.  The period is
   always passed explicitly — [Application.make] defaults it to the
   deadline, which would silently couple the two under a deadline
   delta. *)
let with_app problem ?deadline_ms ?period_ms ?gamma label =
  let app = problem.Problem.app in
  let deadline_ms =
    Option.value deadline_ms ~default:app.Application.deadline_ms
  in
  let period_ms = Option.value period_ms ~default:app.Application.period_ms in
  let gamma = Option.value gamma ~default:app.Application.gamma in
  guard label (fun () ->
      let app =
        Application.make ~name:app.Application.name
          ~process_names:app.Application.process_names ~period_ms
          ~graph:app.Application.graph ~deadline_ms ~gamma
          ~recovery_overhead_ms:app.Application.recovery_overhead_ms ()
      in
      Problem.make ~app ~library:problem.Problem.library)

let with_library problem library label =
  guard label (fun () -> Problem.make ~app:problem.Problem.app ~library)

(* Replace library node [j] by [f (node j)].  Untouched node types are
   passed through physically so their tables stay the exact bits a cold
   load of the perturbed problem would carry. *)
let edit_node problem j f label =
  if j < 0 || j >= Problem.n_library problem then
    Error (Printf.sprintf "%s: node index %d out of range" label j)
  else
    let* nt = f (Problem.node problem j) in
    let library =
      Array.mapi
        (fun i old -> if i = j then nt else old)
        problem.Problem.library
    in
    with_library problem library label

(* Rebuild one node type with the version at [level] replaced by
   [f version]; other versions pass through untouched.  [node_type]
   re-validates hardening monotonicity over the edited array. *)
let edit_version (nt : Platform.node_type) ~level f label =
  if level < 1 || level > Platform.levels nt then
    Error (Printf.sprintf "%s: level %d out of range" label level)
  else
    guard label (fun () ->
        let versions =
          Array.map
            (fun (v : Platform.hversion) -> if v.level = level then f v else v)
            nt.Platform.versions
        in
        Platform.node_type ~name:nt.Platform.node_name ~versions)

let set_cell label arr i value =
  if i < 0 || i >= Array.length arr then
    invalid_arg (Printf.sprintf "%s: process index %d out of range" label i)
  else Array.mapi (fun k x -> if k = i then value else x) arr

let apply problem delta =
  match delta with
  | Deadline_set d -> with_app problem ~deadline_ms:d "deadline-set"
  | Deadline_scale f ->
      let* () = positive_factor "deadline-scale" f in
      with_app problem
        ~deadline_ms:(problem.Problem.app.Application.deadline_ms *. f)
        "deadline-scale"
  | Period_set p -> with_app problem ~period_ms:p "period-set"
  | Period_scale f ->
      let* () = positive_factor "period-scale" f in
      with_app problem
        ~period_ms:(problem.Problem.app.Application.period_ms *. f)
        "period-scale"
  | Gamma_set g -> with_app problem ~gamma:g "gamma-set"
  | Wcet_scale { node; factor } ->
      let* () = positive_factor "wcet-scale" factor in
      edit_node problem node
        (fun nt ->
          guard "wcet-scale" (fun () ->
              let versions =
                Array.map
                  (fun (v : Platform.hversion) ->
                    Platform.hversion ~level:v.level ~cost:v.cost
                      ~wcet_ms:(Array.map (fun w -> w *. factor) v.wcet_ms)
                      ~pfail:v.pfail)
                  nt.Platform.versions
              in
              Platform.node_type ~name:nt.Platform.node_name ~versions))
        "wcet-scale"
  | Ser_scale { node; factor } ->
      let* () = positive_factor "ser-scale" factor in
      edit_node problem node
        (fun nt ->
          guard "ser-scale" (fun () ->
              let versions =
                Array.map
                  (fun (v : Platform.hversion) ->
                    Platform.hversion ~level:v.level ~cost:v.cost
                      ~wcet_ms:v.wcet_ms
                      ~pfail:(Array.map (fun p -> p *. factor) v.pfail))
                  nt.Platform.versions
              in
              Platform.node_type ~name:nt.Platform.node_name ~versions))
        "ser-scale"
  | Hversion_cost_set { node; level; cost } ->
      edit_node problem node
        (fun nt ->
          edit_version nt ~level
            (fun v ->
              Platform.hversion ~level:v.level ~cost ~wcet_ms:v.wcet_ms
                ~pfail:v.pfail)
            "hversion-cost-set")
        "hversion-cost-set"
  | Hversion_wcet_set { node; level; proc; wcet_ms } ->
      edit_node problem node
        (fun nt ->
          edit_version nt ~level
            (fun v ->
              Platform.hversion ~level:v.level ~cost:v.cost
                ~wcet_ms:(set_cell "hversion-wcet-set" v.wcet_ms proc wcet_ms)
                ~pfail:v.pfail)
            "hversion-wcet-set")
        "hversion-wcet-set"
  | Hversion_pfail_set { node; level; proc; pfail } ->
      edit_node problem node
        (fun nt ->
          edit_version nt ~level
            (fun v ->
              Platform.hversion ~level:v.level ~cost:v.cost ~wcet_ms:v.wcet_ms
                ~pfail:(set_cell "hversion-pfail-set" v.pfail proc pfail))
            "hversion-pfail-set")
        "hversion-pfail-set"
  | Node_add nt ->
      with_library problem
        (Array.append problem.Problem.library [| nt |])
        "node-add"
  | Node_remove j ->
      let n = Problem.n_library problem in
      if j < 0 || j >= n then
        Error (Printf.sprintf "node-remove: node index %d out of range" j)
      else
        with_library problem
          (Array.init (n - 1) (fun i ->
               problem.Problem.library.(if i < j then i else i + 1)))
          "node-remove"
  | Kmax_set k ->
      if k < 0 then Error "kmax-set: kmax must be non-negative" else Ok problem

let kmax_override = function Kmax_set k -> Some k | _ -> None

type footprint = {
  node_map : int -> int option;
  tables_dirty : node:int -> level:int -> bool;
  pfail_dirty : node:int -> level:int -> bool;
  eval_policy : [ `Keep | `Drop | `Remap_slack of float ];
  keep_probes : bool;
}

let footprint problem delta =
  let identity i = Some i in
  let nothing ~node:_ ~level:_ = false in
  let whole_node j ~node ~level:_ = node = j in
  let one_cell j l ~node ~level = node = j && level = l in
  let base =
    { node_map = identity;
      tables_dirty = nothing;
      pfail_dirty = nothing;
      eval_policy = `Keep;
      keep_probes = true }
  in
  match delta with
  | Deadline_set d -> { base with eval_policy = `Remap_slack d; keep_probes = false }
  | Deadline_scale f ->
      (* Must be the same float expression [apply] used, so the remapped
         slack is bit-identical to a fresh [deadline -. length]. *)
      { base with
        eval_policy =
          `Remap_slack (problem.Problem.app.Application.deadline_ms *. f);
        keep_probes = false }
  | Period_set _ | Period_scale _ | Gamma_set _ ->
      (* The stored re-execution choice maximizes the margin against the
         per-iteration budget, which reads gamma and the period. *)
      { base with eval_policy = `Drop; keep_probes = false }
  | Wcet_scale { node; _ } -> { base with tables_dirty = whole_node node }
  | Ser_scale { node; _ } -> { base with pfail_dirty = whole_node node }
  | Hversion_cost_set { node; level; _ } ->
      { base with tables_dirty = one_cell node level }
  | Hversion_wcet_set { node; level; _ } ->
      { base with tables_dirty = one_cell node level }
  | Hversion_pfail_set { node; level; _ } ->
      { base with pfail_dirty = one_cell node level }
  | Node_add _ -> base
  | Node_remove j ->
      { base with
        node_map = (fun i -> if i = j then None else if i > j then Some (i - 1) else Some i) }
  | Kmax_set _ ->
      (* SFP entries carry kmax in their key and survive; eval results
         bake the chosen re-execution counts in, so they go. *)
      { base with eval_policy = `Drop; keep_probes = false }

let cannot_weaken problem delta =
  let app = problem.Problem.app in
  match delta with
  | Deadline_set d -> d <= app.Application.deadline_ms
  | Deadline_scale f -> f <= 1.
  | Period_set p -> p <= app.Application.period_ms && p > 0.
  | Period_scale f -> f <= 1.
  | Gamma_set g -> g <= app.Application.gamma
  | Wcet_scale { factor; _ } -> factor >= 1.
  | Ser_scale { factor; _ } -> factor >= 1.
  | Hversion_cost_set { node; level; cost } ->
      (* Pre-flight cost bounds are lower bounds; raising a cost keeps
         them valid. *)
      node >= 0 && node < Problem.n_library problem
      && level >= 1 && level <= Problem.levels problem node
      && cost >= Problem.cost problem ~node ~level
  | Hversion_wcet_set { node; level; proc; wcet_ms } ->
      node >= 0 && node < Problem.n_library problem
      && level >= 1 && level <= Problem.levels problem node
      && proc >= 0 && proc < Problem.n_processes problem
      && wcet_ms >= Problem.wcet problem ~node ~level ~proc
  | Hversion_pfail_set { node; level; proc; pfail } ->
      node >= 0 && node < Problem.n_library problem
      && level >= 1 && level <= Problem.levels problem node
      && proc >= 0 && proc < Problem.n_processes problem
      && pfail >= Problem.pfail problem ~node ~level ~proc
  | Node_add _ | Node_remove _ | Kmax_set _ -> false

(* Wire codec.  The node-type payload mirrors Problem_io's library
   schema ({"name", "versions": [{"level","cost","wcet_ms","pfail"}]}),
   so a node copied out of an exported problem file pastes straight into
   a node-add delta. *)

let int_field name v = (name, Number (float_of_int v))

let version_to_json (v : Platform.hversion) =
  Object
    [ int_field "level" v.level;
      ("cost", Number v.cost);
      ("wcet_ms", List (Array.to_list (Array.map (fun x -> Number x) v.wcet_ms)));
      ("pfail", List (Array.to_list (Array.map (fun x -> Number x) v.pfail))) ]

let node_to_json (nt : Platform.node_type) =
  Object
    [ ("name", String nt.node_name);
      ("versions", List (Array.to_list (Array.map version_to_json nt.versions))) ]

let to_json delta =
  let tag fields = Object (("class", String (class_name delta)) :: fields) in
  match delta with
  | Deadline_set d -> tag [ ("deadline_ms", Number d) ]
  | Deadline_scale f -> tag [ ("factor", Number f) ]
  | Period_set p -> tag [ ("period_ms", Number p) ]
  | Period_scale f -> tag [ ("factor", Number f) ]
  | Gamma_set g -> tag [ ("gamma", Number g) ]
  | Wcet_scale { node; factor } -> tag [ int_field "node" node; ("factor", Number factor) ]
  | Ser_scale { node; factor } -> tag [ int_field "node" node; ("factor", Number factor) ]
  | Hversion_cost_set { node; level; cost } ->
      tag [ int_field "node" node; int_field "level" level; ("cost", Number cost) ]
  | Hversion_wcet_set { node; level; proc; wcet_ms } ->
      tag
        [ int_field "node" node; int_field "level" level; int_field "proc" proc;
          ("wcet_ms", Number wcet_ms) ]
  | Hversion_pfail_set { node; level; proc; pfail } ->
      tag
        [ int_field "node" node; int_field "level" level; int_field "proc" proc;
          ("pfail", Number pfail) ]
  | Node_add nt -> tag [ ("node_type", node_to_json nt) ]
  | Node_remove j -> tag [ int_field "node" j ]
  | Kmax_set k -> tag [ int_field "kmax" k ]

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let version_of_json json =
  let* level = Result.bind (member "level" json) to_int in
  let* cost = Result.bind (member "cost" json) to_float in
  let* wcet_ms = Result.bind (member "wcet_ms" json) float_array in
  let* pfail = Result.bind (member "pfail" json) float_array in
  guard "node-add h-version" (fun () ->
      Platform.hversion ~level ~cost ~wcet_ms ~pfail)

let node_of_json json =
  let* name = Result.bind (member "name" json) to_string_value in
  let* versions = Result.bind (member "versions" json) to_list in
  let* versions = map_result version_of_json versions in
  guard "node-add node type" (fun () ->
      Platform.node_type ~name ~versions:(Array.of_list versions))

let of_json json =
  let* cls = Result.bind (member "class" json) to_string_value in
  (* Eager range validation: malformed wire deltas are rejected here,
     before any problem is in scope; bounds against a concrete instance
     (node/level/proc existence) remain [apply]'s job. *)
  let float_of name = Result.bind (member name json) to_float in
  let int_of name = Result.bind (member name json) to_int in
  let positive name v =
    if Float.is_finite v && v > 0. then Ok v
    else
      Error
        (Printf.sprintf "%s: %s must be positive and finite (got %g)" cls name
           v)
  in
  let positive_of name = Result.bind (float_of name) (positive name) in
  let index_of ?(min = 0) name =
    Result.bind (int_of name) (fun v ->
        if v >= min then Ok v
        else
          Error (Printf.sprintf "%s: %s must be >= %d (got %d)" cls name min v))
  in
  match cls with
  | "deadline-set" ->
      let* d = positive_of "deadline_ms" in
      Ok (Deadline_set d)
  | "deadline-scale" ->
      let* f = positive_of "factor" in
      Ok (Deadline_scale f)
  | "period-set" ->
      let* p = positive_of "period_ms" in
      Ok (Period_set p)
  | "period-scale" ->
      let* f = positive_of "factor" in
      Ok (Period_scale f)
  | "gamma-set" ->
      let* g = float_of "gamma" in
      if Float.is_finite g && g > 0. && g < 1. then Ok (Gamma_set g)
      else Error (Printf.sprintf "gamma-set: gamma must lie in (0, 1) (got %g)" g)
  | "wcet-scale" ->
      let* node = index_of "node" in
      let* factor = positive_of "factor" in
      Ok (Wcet_scale { node; factor })
  | "ser-scale" ->
      let* node = index_of "node" in
      let* factor = positive_of "factor" in
      Ok (Ser_scale { node; factor })
  | "hversion-cost-set" ->
      let* node = index_of "node" in
      let* level = index_of ~min:1 "level" in
      let* cost = positive_of "cost" in
      Ok (Hversion_cost_set { node; level; cost })
  | "hversion-wcet-set" ->
      let* node = index_of "node" in
      let* level = index_of ~min:1 "level" in
      let* proc = index_of "proc" in
      let* wcet_ms = positive_of "wcet_ms" in
      Ok (Hversion_wcet_set { node; level; proc; wcet_ms })
  | "hversion-pfail-set" ->
      let* node = index_of "node" in
      let* level = index_of ~min:1 "level" in
      let* proc = index_of "proc" in
      let* pfail = float_of "pfail" in
      if Float.is_finite pfail && pfail >= 0. && pfail < 1. then
        Ok (Hversion_pfail_set { node; level; proc; pfail })
      else
        Error
          (Printf.sprintf
             "hversion-pfail-set: pfail must lie in [0, 1) (got %g)" pfail)
  | "node-add" ->
      let* nt = Result.bind (member "node_type" json) node_of_json in
      Ok (Node_add nt)
  | "node-remove" ->
      let* j = index_of "node" in
      Ok (Node_remove j)
  | "kmax-set" ->
      let* k = index_of "kmax" in
      Ok (Kmax_set k)
  | other -> Error (Printf.sprintf "delta: unknown class %S" other)
