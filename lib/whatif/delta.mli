(** The typed delta algebra for warm-start what-if queries.

    A [Delta.t] is a single-field perturbation of a {!Ftes_model.Problem.t}
    — one deadline tightened, one WCET bumped, one SER changed, one
    processor added.  Interactive exploration traffic is dominated by
    such near-duplicates, and the Fig.5 walk is naturally incremental: a
    perturbation invalidates only the touched nodes' exceedance vectors
    and the memo entries whose keys reach into the edited table cells.

    [apply] rebuilds the perturbed problem through the model's checked
    constructors, so a delta can never produce an instance the cold path
    would reject.  Untouched float arrays are passed through physically,
    which is what makes warm-vs-cold bit-identity possible at all: the
    perturbed problem's unedited tables are the {e same bits} a cold
    load would see.

    [footprint] is the classifier: it maps a delta to the exact set of
    cache keys it can influence, phrased as cleanliness predicates over
    (node, level) table cells plus a library-index remap.  Everything
    the predicates call clean is provably unaffected — the survival
    argument for each class is spelled out in DESIGN.md §15 — so
    migration keeps those entries and the warm walk replays them
    verbatim. *)

type t =
  | Deadline_set of float  (** Replace the global deadline [D] (ms). *)
  | Deadline_scale of float  (** Multiply [D] by a positive factor. *)
  | Period_set of float  (** Replace the period [T] (ms). *)
  | Period_scale of float  (** Multiply [T] by a positive factor. *)
  | Gamma_set of float  (** Replace the reliability goal [gamma]. *)
  | Wcet_scale of { node : int; factor : float }
      (** Scale every WCET of library node [node] (all levels, all
          processes) by a positive factor — a per-node derating. *)
  | Ser_scale of { node : int; factor : float }
      (** Scale every failure probability of library node [node] by a
          positive factor — a raw-SER change for one node type. *)
  | Hversion_cost_set of { node : int; level : int; cost : float }
      (** Replace [Cjh] for one h-version. *)
  | Hversion_wcet_set of { node : int; level : int; proc : int; wcet_ms : float }
      (** Replace one [tijh] table cell. *)
  | Hversion_pfail_set of { node : int; level : int; proc : int; pfail : float }
      (** Replace one [pijh] table cell. *)
  | Node_add of Ftes_model.Platform.node_type
      (** Append a node type to the library. *)
  | Node_remove of int  (** Remove library node [j]; higher indices shift down. *)
  | Kmax_set of int
      (** Change the re-execution cap.  The problem instance itself is
          untouched; [kmax_override] carries the new cap to the config. *)

val class_name : t -> string
(** Stable kebab-case tag, e.g. ["deadline-scale"] — the wire spelling
    of the ["class"] field and the bench/telemetry label. *)

val class_names : string list
(** Every [class_name], for verifier rules and exhaustive tests. *)

val apply : Ftes_model.Problem.t -> t -> (Ftes_model.Problem.t, string) result
(** Build the perturbed problem.  Goes through the checked constructors
    ({!Ftes_model.Platform.hversion}, {!Ftes_model.Platform.node_type},
    {!Ftes_model.Application.make}, {!Ftes_model.Problem.make}), so
    range violations — a pfail pushed out of [\[0,1)], a cost edit that
    breaks hardening monotonicity, removing the last library node —
    surface as [Error] rather than a corrupt instance.  [Kmax_set]
    returns the problem unchanged. *)

val kmax_override : t -> int option
(** [Some k] for [Kmax_set k]; [None] otherwise. *)

(** The invalidation footprint: which cache keys a delta can reach.

    [node_map] remaps a base library index to its perturbed index, or
    [None] when the node is gone (entries mentioning it must drop).
    [tables_dirty] marks (node, level) cells whose WCET or cost changed;
    [pfail_dirty] marks cells whose failure probability changed.  All
    indices are in the {e base} problem's numbering. *)
type footprint = {
  node_map : int -> int option;
  tables_dirty : node:int -> level:int -> bool;
  pfail_dirty : node:int -> level:int -> bool;
  eval_policy : [ `Keep | `Drop | `Remap_slack of float ];
      (** [`Keep]: an eval-memo entry survives iff every slot is clean
          under both dirtiness predicates.  [`Drop]: no entry survives
          (the delta moved a global the stored result bakes in — period,
          gamma, kmax).  [`Remap_slack d]: deadline-only delta — results
          survive with [slack] rewritten to [d -. schedule_length],
          which is bit-identical to recomputation because the schedule
          itself never reads the deadline. *)
  keep_probes : bool;
      (** Probe memos store escalation decisions that range over {e all}
          levels of their members, so they survive only class-wise: kept
          iff the delta touches neither any level of any member nor a
          global the climb reads (deadline, period, gamma, kmax). *)
}

val footprint : Ftes_model.Problem.t -> t -> footprint
(** Classify [delta] against the base problem it will be applied to. *)

val cannot_weaken : Ftes_model.Problem.t -> t -> bool
(** [true] when the delta provably cannot weaken any pre-flight
    infeasibility witness or lower bound: it only tightens (deadline
    decrease, period/gamma decrease, WCET increase, pfail increase) or
    touches fields pre-flight never reads (costs).  Library shape and
    kmax changes always return [false] — the pre-flight tables are
    indexed by both. *)

val to_json : t -> Ftes_util.Json.t
val of_json : Ftes_util.Json.t -> (t, string) result
(** Wire codec: an object tagged by ["class"], e.g.
    [{"class": "wcet-scale", "node": 0, "factor": 1.1}].  [of_json]
    validates ranges eagerly (positive factors, 0-based indices), but
    index bounds against a concrete problem are checked by [apply]. *)
