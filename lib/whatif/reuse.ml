module Json = Ftes_util.Json
open Json

type t = {
  delta_class : string;
  sfp_kept : int;
  sfp_dropped : int;
  evals_kept : int;
  evals_dropped : int;
  probes_kept : int;
  probes_dropped : int;
  steps_replayed : int;
  steps_total : int;
  preflight_reused : bool;
  witnesses_rechecked : int;
}

let pair kept dropped =
  Object
    [ ("kept", Number (float_of_int kept));
      ("dropped", Number (float_of_int dropped)) ]

let to_json t =
  Object
    [ ("class", String t.delta_class);
      ("sfp", pair t.sfp_kept t.sfp_dropped);
      ("evals", pair t.evals_kept t.evals_dropped);
      ("probes", pair t.probes_kept t.probes_dropped);
      ( "steps",
        Object
          [ ("replayed", Number (float_of_int t.steps_replayed));
            ("total", Number (float_of_int t.steps_total)) ] );
      ("preflight_reused", Bool t.preflight_reused);
      ("witnesses_rechecked", Number (float_of_int t.witnesses_rechecked)) ]

let of_json json =
  let* delta_class = Result.bind (member "class" json) to_string_value in
  let pair_of name =
    let* obj = member name json in
    let* kept = Result.bind (member "kept" obj) to_int in
    let* dropped = Result.bind (member "dropped" obj) to_int in
    Ok (kept, dropped)
  in
  let* sfp_kept, sfp_dropped = pair_of "sfp" in
  let* evals_kept, evals_dropped = pair_of "evals" in
  let* probes_kept, probes_dropped = pair_of "probes" in
  let* steps = member "steps" json in
  let* steps_replayed = Result.bind (member "replayed" steps) to_int in
  let* steps_total = Result.bind (member "total" steps) to_int in
  let* preflight_reused = Result.bind (member "preflight_reused" json) to_bool in
  let* witnesses_rechecked =
    Result.bind (member "witnesses_rechecked" json) to_int
  in
  Ok
    { delta_class; sfp_kept; sfp_dropped; evals_kept; evals_dropped;
      probes_kept; probes_dropped; steps_replayed; steps_total;
      preflight_reused; witnesses_rechecked }
