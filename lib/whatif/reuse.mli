(** Reuse telemetry for one warm re-run.

    Counts what the cache migration kept versus dropped and how much of
    the recorded walk the warm pass replayed verbatim — the evidence the
    [whatif/*] verifier rules and [bench/whatif.exe] audit.  The counts
    are observational only: the reuse {e mechanism} is the migrated
    cache, and correctness never depends on these numbers. *)

type t = {
  delta_class : string;  (** {!Delta.class_name} of the applied delta. *)
  sfp_kept : int;
  sfp_dropped : int;
  evals_kept : int;
  evals_dropped : int;
  probes_kept : int;
  probes_dropped : int;
  steps_replayed : int;
      (** Length of the common prefix of the recorded and warm trails. *)
  steps_total : int;  (** Steps in the warm walk's trail. *)
  preflight_reused : bool;
      (** The base pre-flight analysis was retargeted (delta could not
          weaken it) instead of discarded. *)
  witnesses_rechecked : int;
      (** Infeasibility witnesses arithmetically re-verified against the
          perturbed problem when reusing the pre-flight. *)
}

val to_json : t -> Ftes_util.Json.t
val of_json : Ftes_util.Json.t -> (t, string) result
