(* Consistency rules over a metrics snapshot attached to the subject.

   The observability layer is write-only, so a broken invariant here
   never corrupts a result — but it does mean the numbers a profile or
   a bench report prints are lying, which is worth catching with the
   same machinery that certifies schedules. *)

module Metrics = Ftes_obs.Metrics
module Span = Ftes_obs.Span
module D = Diagnostic

let metrics_exn subject =
  match subject.Subject.metrics with
  | Some m -> m
  | None -> invalid_arg "verifier: obs rule run without a metrics snapshot"

let find name assoc = List.assoc_opt name assoc

(* obs/counters-monotone: counters only ever move up from zero, so a
   negative value means the registry was bypassed or the snapshot was
   edited. *)
let check_counters subject =
  let rule = "obs/counters-monotone" in
  let m = metrics_exn subject in
  List.filter_map
    (fun (name, v) ->
      if v < 0 then Some (D.error ~rule "counter %s is negative (%d)" name v)
      else None)
    m.Metrics.counters

(* obs/cache-consistency: every cache instrumented in this repo exposes
   the triple <prefix>.lookups / .hits / .misses, and each lookup is
   classified exactly once, so hits + misses = lookups. *)
let check_caches subject =
  let rule = "obs/cache-consistency" in
  let m = metrics_exn subject in
  List.concat_map
    (fun (name, lookups) ->
      match Filename.chop_suffix_opt ~suffix:".lookups" name with
      | None -> []
      | Some prefix -> (
          match
            ( find (prefix ^ ".hits") m.Metrics.counters,
              find (prefix ^ ".misses") m.Metrics.counters )
          with
          | Some hits, Some misses ->
              if hits + misses <> lookups then
                [ D.error ~rule
                    "cache %s: hits (%d) + misses (%d) = %d, but %d lookups \
                     were recorded"
                    prefix hits misses (hits + misses) lookups ]
              else []
          | None, _ | _, None ->
              [ D.warn ~rule
                  "cache %s records lookups but not both hits and misses; \
                   its hit rate cannot be audited"
                  prefix ]))
    m.Metrics.counters

(* obs/cache-capacity: a capped cache that refuses an insert records
   the drop, and every drop was first classified as a miss (only a miss
   computes a value there is no room for), so drops <= misses — and the
   lookup triple must be present for the drop count to mean anything. *)
let check_cache_capacity subject =
  let rule = "obs/cache-capacity" in
  let m = metrics_exn subject in
  List.concat_map
    (fun (name, drops) ->
      match Filename.chop_suffix_opt ~suffix:".capacity_drops" name with
      | None -> []
      | Some prefix -> (
          match
            ( find (prefix ^ ".lookups") m.Metrics.counters,
              find (prefix ^ ".hits") m.Metrics.counters,
              find (prefix ^ ".misses") m.Metrics.counters )
          with
          | Some lookups, Some hits, Some misses ->
              List.concat
                [ (if drops > misses then
                     [ D.error ~rule
                         "cache %s: %d capacity drops but only %d misses — \
                          an insert was skipped without a prior miss"
                         prefix drops misses ]
                   else []);
                  (if hits + misses <> lookups then
                     [ D.error ~rule
                         "cache %s: hits (%d) + misses (%d) = %d, but %d \
                          lookups were recorded"
                         prefix hits misses (hits + misses) lookups ]
                   else []) ]
          | None, _, _ | _, None, _ | _, _, None ->
              [ D.warn ~rule
                  "cache %s records capacity drops without the full \
                   lookups/hits/misses triple; the drops cannot be audited"
                  prefix ]))
    m.Metrics.counters

(* obs/histogram-consistency: bucket populations are non-negative and
   sum to the recorded observation count; an empty histogram has sum
   zero. *)
let check_histograms subject =
  let rule = "obs/histogram-consistency" in
  let m = metrics_exn subject in
  List.concat_map
    (fun (name, h) ->
      let negative =
        Array.exists (fun b -> b < 0) h.Metrics.buckets
      in
      let bucket_total = Array.fold_left ( + ) 0 h.Metrics.buckets in
      List.concat
        [ (if negative then
             [ D.error ~rule "histogram %s has a negative bucket" name ]
           else []);
          (if bucket_total <> h.Metrics.count then
             [ D.error ~rule
                 "histogram %s: buckets hold %d observations but count is %d"
                 name bucket_total h.Metrics.count ]
           else []);
          (if h.Metrics.count = 0 && h.Metrics.sum <> 0 then
             [ D.error ~rule
                 "histogram %s is empty but its sum is %d" name h.Metrics.sum ]
           else []) ])
    m.Metrics.histograms

(* obs/span-aggregates: the span aggregator bumps span.<n>.count and
   observes span.<n>.ns.hist once per completed span, so the two must
   agree unless one of them was reset mid-run. *)
let check_span_aggregates subject =
  let rule = "obs/span-aggregates" in
  let m = metrics_exn subject in
  List.concat_map
    (fun (name, h) ->
      match Filename.chop_suffix_opt ~suffix:".ns.hist" name with
      | None -> []
      | Some prefix -> (
          if not (String.starts_with ~prefix:Span.span_prefix prefix) then []
          else
            match find (prefix ^ ".count") m.Metrics.counters with
            | None ->
                [ D.warn ~rule
                    "span histogram %s has no matching %s.count counter" name
                    prefix ]
            | Some count ->
                if count <> h.Metrics.count then
                  [ D.error ~rule
                      "span %s: %d completions counted but %d latencies \
                       observed"
                      prefix count h.Metrics.count ]
                else []))
    m.Metrics.histograms

(* obs/pareto-merge: every point offered during an archive merge is
   counted once on pareto.merge_points and then classified by the
   insert path as inserted or dominated — and inserts happen outside
   merges too, so merge_points <= inserted + dominated. *)
let check_pareto_merge subject =
  let rule = "obs/pareto-merge" in
  let m = metrics_exn subject in
  match find "pareto.merge_points" m.Metrics.counters with
  | None -> []
  | Some merge_points ->
      let inserted =
        Option.value ~default:0 (find "pareto.inserted" m.Metrics.counters)
      in
      let dominated =
        Option.value ~default:0 (find "pareto.dominated" m.Metrics.counters)
      in
      if merge_points > inserted + dominated then
        [ D.error ~rule
            "%d points offered through merges, but only %d inserts were \
             classified (%d inserted + %d dominated)"
            merge_points (inserted + dominated) inserted dominated ]
      else []

(* obs/campaign-progress: a shard is counted done only after computing
   at least one fresh cell (cells_done >= shards_done), and only a
   completed shard can have been resumed (shards_resumed <=
   shards_done). *)
let check_campaign_progress subject =
  let rule = "obs/campaign-progress" in
  let m = metrics_exn subject in
  let value name = find name m.Metrics.counters in
  match
    ( value "campaign.cells_done",
      value "campaign.shards_done",
      value "campaign.shards_resumed" )
  with
  | None, None, None -> []
  | cells, shards, resumed ->
      let cells = Option.value ~default:0 cells in
      let shards = Option.value ~default:0 shards in
      let resumed = Option.value ~default:0 resumed in
      List.concat
        [ (if shards > cells then
             [ D.error ~rule
                 "%d shards done but only %d cells computed — a shard \
                  completed without computing a fresh cell"
                 shards cells ]
           else []);
          (if resumed > shards then
             [ D.error ~rule
                 "%d shards resumed but only %d completed — a resume was \
                  counted before its shard finished"
                 resumed shards ]
           else []) ]

let all =
  [ Rule.make ~id:"obs/counters-monotone"
      ~synopsis:"metrics counters are non-negative" ~requires:Rule.Needs_metrics
      check_counters;
    Rule.make ~id:"obs/cache-consistency"
      ~synopsis:"cache counters satisfy hits + misses = lookups"
      ~requires:Rule.Needs_metrics check_caches;
    Rule.make ~id:"obs/cache-capacity"
      ~synopsis:"capped-cache drops are classified misses"
      ~requires:Rule.Needs_metrics check_cache_capacity;
    Rule.make ~id:"obs/histogram-consistency"
      ~synopsis:"histogram buckets are sane and sum to the count"
      ~requires:Rule.Needs_metrics check_histograms;
    Rule.make ~id:"obs/span-aggregates"
      ~synopsis:"span completion counts match their latency histograms"
      ~requires:Rule.Needs_metrics check_span_aggregates;
    Rule.make ~id:"obs/pareto-merge"
      ~synopsis:"merge offers are classified archive inserts"
      ~requires:Rule.Needs_metrics check_pareto_merge;
    Rule.make ~id:"obs/campaign-progress"
      ~synopsis:"campaign counters satisfy resumed <= shards <= cells"
      ~requires:Rule.Needs_metrics check_campaign_progress ]
