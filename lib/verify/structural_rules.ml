(* Structural contracts of the problem and design, re-checked from the
   raw arrays rather than trusted from the smart constructors: a corrupt
   value built through the record-update escape hatches must still be
   caught here. *)

module Task_graph = Ftes_model.Task_graph
module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Platform = Ftes_model.Platform
module D = Diagnostic

let design_exn subject =
  match subject.Subject.design with
  | Some d -> d
  | None -> invalid_arg "verifier: design rule run without a design"

(* graph/acyclic: independent cycle detection (iterated colouring DFS
   over the edge list; the cached topological order is not trusted). *)
let check_acyclic subject =
  let rule = "graph/acyclic" in
  let graph = Problem.graph subject.Subject.problem in
  let n = Task_graph.n graph in
  let succs = Array.make n [] in
  List.iter
    (fun (e : Task_graph.edge) ->
      if e.src >= 0 && e.src < n && e.dst >= 0 && e.dst < n then
        succs.(e.src) <- e.dst :: succs.(e.src))
    (Task_graph.edges graph);
  let state = Array.make n `White in
  let witness = ref None in
  let rec visit u =
    match state.(u) with
    | `Grey -> if !witness = None then witness := Some u
    | `Black -> ()
    | `White ->
        state.(u) <- `Grey;
        List.iter (fun v -> if !witness = None then visit v) succs.(u);
        state.(u) <- `Black
  in
  for u = 0 to n - 1 do
    if !witness = None then visit u
  done;
  match !witness with
  | Some u ->
      [ D.error ~loc:(D.Process u) ~rule
          "task graph has a cycle through process %d" u ]
  | None -> []

(* graph/edges: endpoint ranges, self-loops, duplicate edges and
   transmission-time sanity. *)
let check_edges subject =
  let rule = "graph/edges" in
  let graph = Problem.graph subject.Subject.problem in
  let n = Task_graph.n graph in
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun (e : Task_graph.edge) ->
      let loc = D.Edge { src = e.src; dst = e.dst } in
      let range =
        if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
          [ D.error ~loc ~rule "edge endpoint outside 0..%d" (n - 1) ]
        else []
      in
      let self =
        if e.src = e.dst then [ D.error ~loc ~rule "self-loop" ] else []
      in
      let duplicate =
        if Hashtbl.mem seen (e.src, e.dst) then
          [ D.error ~loc ~rule "duplicate edge" ]
        else begin
          Hashtbl.add seen (e.src, e.dst) ();
          []
        end
      in
      let time =
        if (not (Float.is_finite e.transmission_ms)) || e.transmission_ms < 0.0
        then
          [ D.error ~loc ~rule "invalid transmission time %g ms"
              e.transmission_ms ]
        else []
      in
      range @ self @ duplicate @ time)
    (Task_graph.edges graph)

(* problem/library: every node type's h-version tables are shaped for
   the application and respect the hardening contract (positive WCETs,
   probabilities in [0,1), strictly increasing cost, non-increasing
   failure probability). *)
let check_library subject =
  let rule = "problem/library" in
  let problem = subject.Subject.problem in
  let n = Problem.n_processes problem in
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  for j = 0 to Problem.n_library problem - 1 do
    let nt = Problem.node problem j in
    let name = nt.Platform.node_name in
    if Platform.n_processes nt <> n then
      emit
        (D.error ~rule "node %s tables cover %d processes, application has %d"
           name (Platform.n_processes nt) n);
    Array.iteri
      (fun i (v : Platform.hversion) ->
        if v.level <> i + 1 then
          emit
            (D.error ~rule "node %s: levels not consecutive from 1 (found %d)"
               name v.level);
        if (not (Float.is_finite v.cost)) || v.cost <= 0.0 then
          emit (D.error ~rule "node %s h=%d: non-positive cost %g" name v.level
                  v.cost);
        Array.iteri
          (fun p w ->
            if (not (Float.is_finite w)) || w <= 0.0 then
              emit
                (D.error ~loc:(D.Process p) ~rule
                   "node %s h=%d: non-positive WCET %g ms" name v.level w))
          v.wcet_ms;
        Array.iteri
          (fun p pr ->
            if (not (Float.is_finite pr)) || pr < 0.0 || pr >= 1.0 then
              emit
                (D.error ~loc:(D.Process p) ~rule
                   "node %s h=%d: failure probability %g outside [0,1)" name
                   v.level pr))
          v.pfail;
        if i > 0 then begin
          let lower = nt.Platform.versions.(i - 1) in
          if v.cost <= lower.cost then
            emit
              (D.error ~rule
                 "node %s: cost does not increase from h=%d to h=%d" name
                 lower.level v.level);
          Array.iteri
            (fun p pr ->
              if p < Array.length lower.pfail && pr > lower.pfail.(p) then
                emit
                  (D.error ~loc:(D.Process p) ~rule
                     "node %s: failure probability increases from h=%d to h=%d"
                     name lower.level v.level))
            v.pfail
        end)
      nt.Platform.versions
  done;
  List.rev !acc

(* design/members: the selected architecture is a valid subset of the
   node library. *)
let check_members subject =
  let rule = "design/members" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  let lib = Problem.n_library problem in
  let m = Array.length design.Design.members in
  if m = 0 then [ D.error ~rule "empty architecture" ]
  else begin
    let acc = ref [] in
    if Array.length design.Design.levels <> m then
      acc :=
        D.error ~rule "levels array has %d entries for %d members"
          (Array.length design.Design.levels) m
        :: !acc;
    if Array.length design.Design.reexecs <> m then
      acc :=
        D.error ~rule "reexecs array has %d entries for %d members"
          (Array.length design.Design.reexecs) m
        :: !acc;
    let seen = Array.make (max lib 1) false in
    Array.iteri
      (fun slot j ->
        if j < 0 || j >= lib then
          acc :=
            D.error ~loc:(D.Member slot) ~rule
              "member %d outside the library 0..%d" j (lib - 1)
            :: !acc
        else if seen.(j) then
          acc :=
            D.error ~loc:(D.Member slot) ~rule "library node %d selected twice"
              j
            :: !acc
        else seen.(j) <- true)
      design.Design.members;
    List.rev !acc
  end

(* design/hardening: h-version bounds and non-negative re-execution
   counts per member. *)
let check_hardening subject =
  let rule = "design/hardening" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  let lib = Problem.n_library problem in
  let acc = ref [] in
  Array.iteri
    (fun slot j ->
      if j >= 0 && j < lib then begin
        let levels = Problem.levels problem j in
        if slot < Array.length design.Design.levels then begin
          let h = design.Design.levels.(slot) in
          if h < 1 || h > levels then
            acc :=
              D.error ~loc:(D.Member slot) ~rule
                "hardening level %d outside 1..%d" h levels
              :: !acc
        end;
        if slot < Array.length design.Design.reexecs then begin
          let k = design.Design.reexecs.(slot) in
          if k < 0 then
            acc :=
              D.error ~loc:(D.Member slot) ~rule
                "negative re-execution count %d" k
              :: !acc
        end
      end)
    design.Design.members;
  List.rev !acc

(* design/mapping: the mapping is total over processes and lands inside
   the architecture. *)
let check_mapping subject =
  let rule = "design/mapping" in
  let problem = subject.Subject.problem in
  let design = design_exn subject in
  let n = Problem.n_processes problem in
  let m = Array.length design.Design.members in
  if Array.length design.Design.mapping <> n then
    [ D.error ~rule "mapping covers %d of %d processes"
        (Array.length design.Design.mapping)
        n ]
  else begin
    let acc = ref [] in
    Array.iteri
      (fun p slot ->
        if slot < 0 || slot >= m then
          acc :=
            D.error ~loc:(D.Process p) ~rule
              "process mapped to slot %d outside 0..%d" slot (m - 1)
            :: !acc)
      design.Design.mapping;
    List.rev !acc
  end

let all =
  [ Rule.make ~id:"graph/acyclic"
      ~synopsis:"the task graph is a DAG (independent cycle search)"
      ~requires:Rule.Problem_only check_acyclic;
    Rule.make ~id:"graph/edges"
      ~synopsis:"edge endpoints, self-loops, duplicates, transmission times"
      ~requires:Rule.Problem_only check_edges;
    Rule.make ~id:"problem/library"
      ~synopsis:"h-version tables: shape, positivity, hardening monotonicity"
      ~requires:Rule.Problem_only check_library;
    Rule.make ~id:"design/members"
      ~synopsis:"the architecture is a duplicate-free subset of the library"
      ~requires:Rule.Needs_design check_members;
    Rule.make ~id:"design/hardening"
      ~synopsis:"hardening levels within each node's range, k >= 0"
      ~requires:Rule.Needs_design check_hardening;
    Rule.make ~id:"design/mapping"
      ~synopsis:"the mapping is total and lands inside the architecture"
      ~requires:Rule.Needs_design check_mapping ]
