(** Rules over the what-if (warm-start) blocks of a design-service
    response stream.

    A warm-started optimize response carries a
    {!Ftes_whatif.Reuse.t} report under [telemetry.whatif]; these
    rules audit every such block in a captured stream:

    - [whatif/reuse]: the block decodes, names a known delta class,
      all counters are non-negative, the replayed prefix fits inside
      the trail, and witnesses are only re-checked when the pre-flight
      was actually reused.
    - [whatif/verdict]: a warm-started response still carries an
      optimize verdict ([feasible] / [no-solution]) and a feasible
      payload reports at least one explored architecture — the
      bit-identity contract says a warm answer is indistinguishable
      from a cold one.

    Responses without a reuse block are ignored, so these rules
    compose with {!Serve_rules.all} over mixed streams. *)

val all : Rule.t list
