(* Claims of a frontier archive, re-derived from scratch.  A point's
   feasibility is checked against the subject's slack and bus policies
   (the ones the frontier was explored under), not against anything the
   producer recorded; dominance is re-checked on exact objective
   vectors, so the ε-grid may only make the reported frontier sparser,
   never let a dominated point through. *)

module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Application = Ftes_model.Application
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp
module Archive = Ftes_pareto.Archive
module Tolerance = Ftes_util.Tolerance
module D = Diagnostic

let archive_exn subject =
  match subject.Subject.archive with
  | Some a -> a
  | None -> invalid_arg "verifier: pareto rule run without an archive"

let deadline problem = problem.Problem.app.Application.deadline_ms

(* Iterate a per-point check over the frontier, tagging diagnostics
   with the point's position in the canonical points order. *)
let per_point archive f =
  List.concat (List.mapi f (Archive.points archive))

(* pareto/feasible: every frontier point is a valid design that meets
   the deadline under the subject's policies and the reliability goal
   ρ = 1 - γ. *)
let check_feasible subject =
  let rule = "pareto/feasible" in
  let problem = subject.Subject.problem in
  per_point (archive_exn subject) (fun index (p : Archive.point) ->
      match Design.validate problem p.Archive.design with
      | Error msg ->
          [ D.error ~rule "frontier point %d: invalid design: %s" index msg ]
      | Ok () ->
          let acc = ref [] in
          let sl =
            Scheduler.schedule_length ~slack:subject.Subject.slack
              ~bus:subject.Subject.bus problem p.Archive.design
          in
          if not (Tolerance.leq sl (deadline problem)) then
            acc :=
              D.error ~rule
                "frontier point %d: schedule length %.17g ms misses the \
                 deadline %g ms"
                index sl (deadline problem)
              :: !acc;
          let verdict = Sfp.evaluate problem p.Archive.design in
          if not verdict.Sfp.meets_goal then
            acc :=
              D.error ~rule
                "frontier point %d: per-hour reliability %.11f misses the \
                 goal %.11f"
                index verdict.Sfp.reliability_per_hour verdict.Sfp.goal
              :: !acc;
          List.rev !acc)

(* pareto/objectives: the recorded objective values are the ones the
   design actually has — cost from the library, slack from a re-derived
   schedule, margin from a re-derived SFP verdict. *)
let check_objectives subject =
  let rule = "pareto/objectives" in
  let problem = subject.Subject.problem in
  per_point (archive_exn subject) (fun index (p : Archive.point) ->
      match Design.validate problem p.Archive.design with
      | Error _ -> [] (* pareto/feasible already reports the broken design *)
      | Ok () ->
          let acc = ref [] in
          let cost = Design.cost problem p.Archive.design in
          if
            not
              (Tolerance.approx ~eps:Tolerance.cost_eps p.Archive.cost cost)
          then
            acc :=
              D.error ~rule
                "frontier point %d: recorded cost %.17g but the library \
                 prices the design at %.17g"
                index p.Archive.cost cost
              :: !acc;
          let slack =
            deadline problem
            -. Scheduler.schedule_length ~slack:subject.Subject.slack
                 ~bus:subject.Subject.bus problem p.Archive.design
          in
          if not (Tolerance.approx ~eps:Tolerance.time_eps_ms p.Archive.slack slack)
          then
            acc :=
              D.error ~rule
                "frontier point %d: recorded slack %.17g ms but re-derivation \
                 gives %.17g ms"
                index p.Archive.slack slack
              :: !acc;
          let verdict = Sfp.evaluate problem p.Archive.design in
          let margin =
            Sfp.log10_margin problem.Problem.app
              ~per_iteration_failure:verdict.Sfp.per_iteration_failure
          in
          (* The producer may have analysed under a different kmax than
             [Sfp.analysis_kmax]; the directed rounding of formula (4)
             can then differ by a grain, which log10 stretches — a loose
             absolute tolerance still catches corrupted margins, which
             mutate by whole decades. *)
          if not (Tolerance.approx ~eps:1e-6 p.Archive.margin margin) then
            acc :=
              D.error ~rule
                "frontier point %d: recorded margin %.17g decades but \
                 re-derivation gives %.17g"
                index p.Archive.margin margin
              :: !acc;
          List.rev !acc)

(* pareto/non-dominated: after ε-filtering, the reported frontier must
   be mutually non-dominated under the exact (ε-free) dominance on the
   archive's objectives — the grid may drop points, never admit a
   dominated one. *)
let check_non_dominated subject =
  let rule = "pareto/non-dominated" in
  let archive = archive_exn subject in
  let spec = Archive.spec_of archive in
  let pts = Array.of_list (Archive.points archive) in
  let vectors = Array.map (Archive.vector spec) pts in
  let acc = ref [] in
  Array.iteri
    (fun i vi ->
      Array.iteri
        (fun j vj ->
          if i <> j && Archive.dominates vi vj then
            acc :=
              D.error ~rule
                "frontier point %d (cost %.17g, slack %.17g, margin %.17g) \
                 dominates point %d (cost %.17g, slack %.17g, margin %.17g)"
                i pts.(i).Archive.cost pts.(i).Archive.slack
                pts.(i).Archive.margin j pts.(j).Archive.cost
                pts.(j).Archive.slack pts.(j).Archive.margin
              :: !acc)
        vectors)
    vectors;
  List.rev !acc

(* pareto/min-cost: anytime optimality anchor — the archive's cheapest
   point costs exactly what the single-objective OPT walk found.  The
   frontier recorder sees every candidate the walk records, so the
   equality is bit-level, not approximate. *)
let check_min_cost subject =
  let rule = "pareto/min-cost" in
  match subject.Subject.opt_cost with
  | None -> [] (* nothing to anchor against *)
  | Some opt_cost -> (
      match Archive.min_cost_point (archive_exn subject) with
      | None ->
          [ D.error ~rule
              "archive is empty but the OPT walk found a solution of cost \
               %.17g"
              opt_cost ]
      | Some p ->
          if p.Archive.cost = opt_cost then []
          else
            [ D.error ~rule
                "archive's cheapest point costs %.17g but the OPT walk found \
                 %.17g"
                p.Archive.cost opt_cost ])

let all =
  [ Rule.make ~id:"pareto/feasible"
      ~synopsis:"every frontier point meets the deadline and the \
                 reliability goal"
      ~requires:Rule.Needs_archive check_feasible;
    Rule.make ~id:"pareto/objectives"
      ~synopsis:"recorded cost/slack/margin match re-derivation"
      ~requires:Rule.Needs_archive check_objectives;
    Rule.make ~id:"pareto/non-dominated"
      ~synopsis:"the reported frontier is mutually non-dominated"
      ~requires:Rule.Needs_archive check_non_dominated;
    Rule.make ~id:"pareto/min-cost"
      ~synopsis:"the archive's cheapest point equals the OPT cost"
      ~requires:Rule.Needs_archive check_min_cost ]
