(** Schedule-soundness rules, recomputed independently of the scheduler:
    entry/mapping correspondence, WCET lower bounds, precedence through
    bus-message times, per-node and bus exclusivity, recovery-slack
    re-derivation per policy (shared / conservative / dedicated /
    per-process / checkpointed) and the deadline guarantee.

    Rule ids: [sched/entries], [sched/wcet], [sched/precedence],
    [sched/node-overlap], [sched/bus-overlap], [sched/slack],
    [sched/length], [sched/deadline]. *)

val all : Rule.t list
