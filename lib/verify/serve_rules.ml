(* Rules over a captured design-service response stream.

   The subject carries the stream as raw parsed JSON (one envelope per
   emitted line, in emission order): the rules re-derive the wire
   contract from the documents themselves instead of trusting the
   daemon's encoder/decoder pair — an encoder bug cannot vouch for
   itself.  The envelope spec audited here is DESIGN.md §14. *)

module Json = Ftes_util.Json
module D = Diagnostic

let envelope_version = 1

let verdicts = [ "feasible"; "no-solution"; "infeasible"; "lint-failure"; "error" ]

let responses_exn subject =
  match subject.Subject.responses with
  | Some rs -> rs
  | None -> invalid_arg "verifier: serve rule run without a response stream"

let str key json =
  Result.bind (Json.member key json) Json.to_string_value

let int key json = Result.bind (Json.member key json) Json.to_int

let label i json =
  match str "id" json with
  | Ok id when id <> "" -> Printf.sprintf "response %d (id %S)" i id
  | _ -> Printf.sprintf "response %d" i

(* serve/envelope: each line is a v1 envelope with id, seq, a known
   verdict and a payload object; the error field travels exactly with
   the "error" verdict, and executed payloads open with the versioned
   report header every one-shot CLI report carries. *)
let check_envelope subject =
  let rule = "serve/envelope" in
  List.concat
    (List.mapi
       (fun i json ->
         let who = label i json in
         let version =
           match int "schema_version" json with
           | Ok v when v = envelope_version -> []
           | Ok v ->
               [ D.error ~rule "%s: envelope schema_version %d, expected %d"
                   who v envelope_version ]
           | Error e -> [ D.error ~rule "%s: %s" who e ]
         in
         let id =
           match str "id" json with
           | Ok "" -> [ D.error ~rule "%s: empty id" who ]
           | Ok _ -> []
           | Error e -> [ D.error ~rule "%s: %s" who e ]
         in
         let seq =
           match int "seq" json with
           | Ok s when s >= 0 -> []
           | Ok s -> [ D.error ~rule "%s: negative seq %d" who s ]
           | Error e -> [ D.error ~rule "%s: %s" who e ]
         in
         let verdict =
           match str "verdict" json with
           | Ok v when List.mem v verdicts -> []
           | Ok v -> [ D.error ~rule "%s: unknown verdict %S" who v ]
           | Error e -> [ D.error ~rule "%s: %s" who e ]
         in
         let is_error = str "verdict" json = Ok "error" in
         let error_field =
           match (str "error" json, is_error) with
           | Ok "", true -> [ D.error ~rule "%s: empty error message" who ]
           | Ok _, true -> []
           | Ok _, false ->
               [ D.error ~rule
                   "%s: error message on a non-error verdict" who ]
           | Error _, true ->
               [ D.error ~rule
                   "%s: verdict \"error\" without an error message" who ]
           | Error _, false -> []
         in
         let payload =
           match Json.member "payload" json with
           | Error e -> [ D.error ~rule "%s: %s" who e ]
           | Ok (Json.Object fields) ->
               if is_error then
                 if fields = [] then []
                 else
                   [ D.error ~rule
                       "%s: error responses must carry an empty payload" who ]
               else
                 List.filter_map
                   (fun key ->
                     if List.mem_assoc key fields then None
                     else
                       Some
                         (D.error ~rule "%s: payload lacks %S" who key))
                   [ "schema_version"; "subject"; "strategy" ]
           | Ok _ ->
               [ D.error ~rule "%s: payload is not an object" who ]
         in
         version @ id @ seq @ verdict @ error_field @ payload)
       (responses_exn subject))

(* serve/order: responses are 1:1 with requests and in request order —
   seq numbers contiguous and ascending from the stream's first,
   whatever pool schedule produced them. *)
let check_order subject =
  let rule = "serve/order" in
  let seqs =
    List.mapi (fun i json -> (i, json, int "seq" json)) (responses_exn subject)
  in
  let rec walk = function
    | (_, _, Ok a) :: ((j, json, Ok b) :: _ as rest) ->
        (if b <> a + 1 then
           [ D.error ~rule "%s: seq %d follows seq %d (want %d)"
               (label j json) b a (a + 1) ]
         else [])
        @ walk rest
    | _ :: rest -> walk rest
    | [] -> []
  in
  walk seqs

(* serve/verdict: the envelope verdict and the payload's own feasible
   claim tell one story. *)
let check_verdict subject =
  let rule = "serve/verdict" in
  List.concat
    (List.mapi
       (fun i json ->
         let who = label i json in
         match (str "verdict" json, Json.member "payload" json) with
         | Ok verdict, Ok payload -> (
             match Result.bind (Json.member "feasible" payload) Json.to_bool with
             | Error _ -> []
             | Ok feasible -> (
                 match verdict with
                 | "feasible" when not feasible ->
                     [ D.error ~rule
                         "%s: verdict \"feasible\" over a payload claiming \
                          feasible=false"
                         who ]
                 | ("no-solution" | "infeasible") when feasible ->
                     [ D.error ~rule
                         "%s: verdict %S over a payload claiming \
                          feasible=true"
                         who verdict ]
                 | _ -> []))
         | _ -> [])
       (responses_exn subject))

(* serve/telemetry: per-request numbers are sane and the process-wide
   cache counters never decrease along the stream (the daemon samples
   them at batch end, so they are monotone in seq by construction —
   a decrease means the stream was reordered or forged). *)
let check_telemetry subject =
  let rule = "serve/telemetry" in
  let counters =
    [ ("queue_wait_ns", false); ("wall_ns", false);
      ("cache_problems", true) ]
  in
  (* "registry" (the recorded-walk registry behind what-if warm
     starts) postdates the first envelope version, so its absence is
     tolerated — a pre-whatif capture still audits clean. *)
  let nested =
    [ ("sfp_cache", "hits", `Required); ("sfp_cache", "misses", `Required);
      ("evals", "hits", `Required); ("evals", "misses", `Required);
      ("registry", "hits", `Optional); ("registry", "misses", `Optional) ]
  in
  let read_nested outer inner tel =
    Result.bind (Json.member outer tel) (fun v ->
        Result.bind (Json.member inner v) Json.to_int)
  in
  let prev = Hashtbl.create 8 in
  List.concat
    (List.mapi
       (fun i json ->
         let who = label i json in
         match Json.member "telemetry" json with
         | Error _ -> []
         | Ok tel ->
             let flat =
               List.concat_map
                 (fun (key, monotone) ->
                   match int key tel with
                   | Error e -> [ D.error ~rule "%s: %s" who e ]
                   | Ok v ->
                       (if v < 0 then
                          [ D.error ~rule "%s: %s is negative (%d)" who key v ]
                        else [])
                       @
                       if not monotone then []
                       else
                         let last =
                           Option.value ~default:0 (Hashtbl.find_opt prev key)
                         in
                         if v < last then
                           [ D.error ~rule
                               "%s: %s fell from %d to %d along the stream"
                               who key last v ]
                         else begin
                           Hashtbl.replace prev key v;
                           []
                         end)
                 counters
             in
             let shared =
               List.concat_map
                 (fun (outer, inner, presence) ->
                   let key = outer ^ "." ^ inner in
                   match (read_nested outer inner tel, presence) with
                   | Error _, `Optional
                     when Result.is_error (Json.member outer tel) ->
                       []
                   | Error e, _ -> [ D.error ~rule "%s: %s" who e ]
                   | Ok v, _ ->
                       let last =
                         Option.value ~default:0 (Hashtbl.find_opt prev key)
                       in
                       if v < 0 then
                         [ D.error ~rule "%s: %s is negative (%d)" who key v ]
                       else if v < last then
                         [ D.error ~rule
                             "%s: %s fell from %d to %d along the stream"
                             who key last v ]
                       else begin
                         Hashtbl.replace prev key v;
                         []
                       end)
                 nested
             in
             flat @ shared)
       (responses_exn subject))

let all =
  [ Rule.make ~id:"serve/envelope"
      ~synopsis:"service responses are well-formed v1 envelopes"
      ~requires:Rule.Needs_responses check_envelope;
    Rule.make ~id:"serve/order"
      ~synopsis:"service responses are 1:1 with requests and in order"
      ~requires:Rule.Needs_responses check_order;
    Rule.make ~id:"serve/verdict"
      ~synopsis:"envelope verdicts agree with their payloads"
      ~requires:Rule.Needs_responses check_verdict;
    Rule.make ~id:"serve/telemetry"
      ~synopsis:"per-request telemetry is sane and cache counters are \
                 monotone"
      ~requires:Rule.Needs_responses check_telemetry ]
