(** What the verifier is asked to certify.

    A subject is a [(problem, design, schedule)] triple or any prefix of
    it.  The slack policy and bus arbitration the schedule was built
    under must accompany the schedule, because the verifier re-derives
    the recovery-slack accounting per policy instead of trusting the
    scheduler's own bookkeeping. *)

type campaign_docs = {
  manifest : Ftes_util.Json.t;
  checkpoints : (string * Ftes_util.Json.t) list;
      (** label (e.g. filename) and parsed document per shard
          checkpoint. *)
  merged : Ftes_util.Json.t option;
}
(** Raw campaign documents, exactly as read from a campaign directory.
    Kept as parsed JSON — the [campaign/*] rules audit the on-disk
    formats themselves (schema, shard partition, fingerprints, merge
    identities), independent of [Ftes_campaign]'s own decoders, which
    also keeps the verifier free of a dependency on the optimizer
    stack. *)

type t = {
  problem : Ftes_model.Problem.t;
  design : Ftes_model.Design.t option;
  schedule : Ftes_sched.Schedule.t option;
  slack : Ftes_sched.Scheduler.slack_mode;
      (** policy the schedule was synthesized under. *)
  bus : Ftes_sched.Bus.policy;  (** bus arbitration of the schedule. *)
  sfp_tables : Ftes_sfp.Sfp.node_analysis array option;
      (** memoized per-member SFP tables the producer actually used
          (one per architecture slot), when it used a cache; the
          SFP-cache contract rule re-derives each from scratch. *)
  metrics : Ftes_obs.Metrics.snapshot option;
      (** metrics snapshot taken from the producing run, when the
          caller wants its internal consistency certified. *)
  archive : Ftes_pareto.Archive.t option;
      (** Pareto archive produced by a frontier run, when the caller
          wants the [pareto/*] rules to certify it against the
          subject's problem and policies. *)
  opt_cost : float option;
      (** the single-objective OPT cost {!Ftes_core.Design_strategy}
          found for the same problem and config, when known — enables
          the [pareto/min-cost] cross-check. *)
  certificate : Ftes_analyze.Certificate.t option;
      (** a pre-flight analysis certificate to audit against the
          subject's problem (and, when present, its design / archive /
          OPT cost), enabling the [analyze/*] rules. *)
  bnb_certificate : Ftes_analyze.Bnb_certificate.t option;
      (** a branch-and-bound optimality certificate to audit, enabling
          the [bnb/*] rules.  The subject's [slack] and [bus] must be
          the policies the search ran under: the incumbent is
          re-scheduled and the prune premises re-derived against
          them. *)
  responses : Ftes_util.Json.t list option;
      (** a design-service response stream (one parsed JSON envelope
          per emitted line, in emission order), enabling the [serve/*]
          rules.  Kept as raw JSON — the rules audit the wire format
          itself, independent of the daemon's own decoder. *)
  campaign : campaign_docs option;
      (** a campaign's manifest, shard checkpoints and (optionally)
          merged result, enabling the [campaign/*] rules. *)
}

val of_problem : Ftes_model.Problem.t -> t
(** Problem only: graph and library rules apply. *)

val of_design : Ftes_model.Problem.t -> Ftes_model.Design.t -> t
(** Problem + design: adds mapping/architecture and SFP rules. *)

val of_schedule :
  ?slack:Ftes_sched.Scheduler.slack_mode ->
  ?bus:Ftes_sched.Bus.policy ->
  ?sfp_tables:Ftes_sfp.Sfp.node_analysis array ->
  Ftes_model.Problem.t ->
  Ftes_model.Design.t ->
  Ftes_sched.Schedule.t ->
  t
(** The full triple (defaults: shared slack, FCFS bus, no tables). *)

val with_sfp_tables : t -> Ftes_sfp.Sfp.node_analysis array -> t
(** Attach memoized SFP tables to an existing subject. *)

val with_metrics : t -> Ftes_obs.Metrics.snapshot -> t
(** Attach a metrics snapshot, enabling the [obs/*] rules. *)

val with_archive : ?opt_cost:float -> t -> Ftes_pareto.Archive.t -> t
(** Attach a frontier archive (and, when known, the reference OPT
    cost), enabling the [pareto/*] rules.  The subject's [slack] and
    [bus] must be the policies the frontier was explored under: the
    feasibility rules re-derive each point's schedule against them. *)

val with_certificate : t -> Ftes_analyze.Certificate.t -> t
(** Attach a pre-flight certificate, enabling the [analyze/*] audit
    rules — they re-derive the whole analysis from the subject's
    problem and compare it against the certificate's claims. *)

val with_bnb_certificate : t -> Ftes_analyze.Bnb_certificate.t -> t
(** Attach a branch-and-bound optimality certificate, enabling the
    [bnb/*] audit rules.  Set the subject's [slack] and [bus] to the
    search's policies first (e.g. through a record update on
    {!of_problem} / {!of_design}). *)

val with_responses : t -> Ftes_util.Json.t list -> t
(** Attach a design-service response stream (parsed envelopes in
    emission order), enabling the [serve/*] rules. *)

val with_campaign :
  ?merged:Ftes_util.Json.t ->
  t ->
  manifest:Ftes_util.Json.t ->
  checkpoints:(string * Ftes_util.Json.t) list ->
  t
(** Attach a campaign's raw documents, enabling the [campaign/*]
    rules.  The subject's problem is unused by those rules (any
    problem, e.g. the one the verifier CLI already loaded, will do). *)
