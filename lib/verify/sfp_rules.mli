(** Numerical contracts of the SFP analysis (formulae (1)-(6)):
    pessimistic rounding directions, monotonicity in the re-execution
    count and in the hardening level, soundness of the closed-form
    bound against the exact dynamic program, and per-hour exponent
    consistency.

    Rule ids: [sfp/rounding], [sfp/monotone-k], [sfp/monotone-hardening],
    [sfp/bound-sound], [sfp/per-hour], [sfp/goal]. *)

val all : Rule.t list
