(** Structural rules: task-graph sanity (acyclicity, edge validity),
    h-version library contracts, and design well-formedness
    (architecture subset, hardening bounds, mapping totality).

    Rule ids: [graph/acyclic], [graph/edges], [problem/library],
    [design/members], [design/hardening], [design/mapping]. *)

val all : Rule.t list
