(** Offline audit of {!Ftes_analyze} pre-flight certificates.

    Each rule re-derives the analysis from the subject's problem under
    the certificate's recorded premises — no optimizer runs and nothing
    from the certificate feeds its own check — and compares claim by
    claim: summary and premises against the problem, bound tables
    against a fresh {!Ftes_analyze.Preflight.run_with}, the feasibility
    verdict and witnesses against the re-derivation, and the cost lower
    bound against every cost the subject actually achieved (attached
    design, recorded OPT, frontier points).

    Rule ids: [analyze/schema], [analyze/bounds], [analyze/verdict],
    [analyze/lower-bound]. *)

val all : Rule.t list
