module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler
module Schedule = Ftes_sched.Schedule
module Bus = Ftes_sched.Bus

type campaign_docs = {
  manifest : Ftes_util.Json.t;
  checkpoints : (string * Ftes_util.Json.t) list;
  merged : Ftes_util.Json.t option;
}

type t = {
  problem : Problem.t;
  design : Design.t option;
  schedule : Schedule.t option;
  slack : Scheduler.slack_mode;
  bus : Bus.policy;
  sfp_tables : Ftes_sfp.Sfp.node_analysis array option;
  metrics : Ftes_obs.Metrics.snapshot option;
  archive : Ftes_pareto.Archive.t option;
  opt_cost : float option;
  certificate : Ftes_analyze.Certificate.t option;
  bnb_certificate : Ftes_analyze.Bnb_certificate.t option;
  responses : Ftes_util.Json.t list option;
  campaign : campaign_docs option;
}

let of_problem problem =
  { problem; design = None; schedule = None; slack = Scheduler.Shared;
    bus = Bus.Fcfs; sfp_tables = None; metrics = None; archive = None;
    opt_cost = None; certificate = None; bnb_certificate = None;
    responses = None; campaign = None }

let of_design problem design = { (of_problem problem) with design = Some design }

let of_schedule ?(slack = Scheduler.Shared) ?(bus = Bus.Fcfs) ?sfp_tables
    problem design schedule =
  { (of_problem problem) with
    design = Some design;
    schedule = Some schedule;
    slack;
    bus;
    sfp_tables }

let with_sfp_tables t tables = { t with sfp_tables = Some tables }

let with_metrics t snapshot = { t with metrics = Some snapshot }

let with_archive ?opt_cost t archive =
  { t with archive = Some archive; opt_cost }

let with_certificate t certificate = { t with certificate = Some certificate }

let with_bnb_certificate t certificate =
  { t with bnb_certificate = Some certificate }

let with_responses t responses = { t with responses = Some responses }

let with_campaign ?merged t ~manifest ~checkpoints =
  { t with campaign = Some { manifest; checkpoints; merged } }
