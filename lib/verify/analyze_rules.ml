(* Offline audit of a pre-flight analysis certificate.  Every claim is
   re-derived from the subject's problem alone — the certificate is
   never trusted as input to its own check — and compared field by
   field: integer tables exactly, derived lengths and costs up to a
   small absolute slop (the producer and the auditor accumulate the
   same WCETs in different orders). *)

module Problem = Ftes_model.Problem
module Application = Ftes_model.Application
module Design = Ftes_model.Design
module Sfp = Ftes_sfp.Sfp
module Bound = Ftes_sfp.Bound
module Archive = Ftes_pareto.Archive
module Tolerance = Ftes_util.Tolerance
module Preflight = Ftes_analyze.Preflight
module Certificate = Ftes_analyze.Certificate
module D = Diagnostic

let audit_eps = 1e-6

(* [infinity] means "no admissible assignment" on both sides; plain
   [approx] is NaN-false on two infinities, so compare for physical
   equality first. *)
let feq a b = a = b || Tolerance.approx ~eps:audit_eps a b

(* Probability-scale premises (threshold, budget) live around 1e-9: an
   absolute epsilon would wave through any corruption, so they get a
   relative one. *)
let feq_rel a b =
  a = b
  || Float.abs (a -. b) <= audit_eps *. Float.max (Float.abs a) (Float.abs b)

let certificate_exn subject =
  match subject.Subject.certificate with
  | Some c -> c
  | None -> invalid_arg "verifier: analyze rule run without a certificate"

(* analyze/schema: the certificate's problem summary and premises
   describe the subject's problem — same application constants, a
   threshold equal to the re-derived admissible failure probability and
   a budget equal to the re-derived one-sided slop at the recorded
   kmax, and tables shaped like the library. *)
let check_schema subject =
  let rule = "analyze/schema" in
  let cert = certificate_exn subject in
  let problem = subject.Subject.problem in
  let s = cert.Certificate.summary in
  let expect = Certificate.summary_of_problem problem in
  let acc = ref [] in
  let fail fmt = Printf.ksprintf (fun d -> acc := D.error ~rule "%s" d :: !acc) fmt in
  if s.Certificate.n_processes <> expect.Certificate.n_processes then
    fail "summary claims %d processes; the problem has %d"
      s.Certificate.n_processes expect.Certificate.n_processes;
  if s.Certificate.n_library <> expect.Certificate.n_library then
    fail "summary claims a library of %d nodes; the problem has %d"
      s.Certificate.n_library expect.Certificate.n_library;
  if not (feq s.Certificate.deadline_ms expect.Certificate.deadline_ms) then
    fail "summary deadline %g ms; the problem's is %g ms"
      s.Certificate.deadline_ms expect.Certificate.deadline_ms;
  if not (feq s.Certificate.period_ms expect.Certificate.period_ms) then
    fail "summary period %g ms; the problem's is %g ms"
      s.Certificate.period_ms expect.Certificate.period_ms;
  if not (feq s.Certificate.gamma expect.Certificate.gamma) then
    fail "summary gamma %g; the problem's is %g" s.Certificate.gamma
      expect.Certificate.gamma;
  if not (feq s.Certificate.mu_ms expect.Certificate.mu_ms) then
    fail "summary recovery overhead %g ms; the problem's is %g ms"
      s.Certificate.mu_ms expect.Certificate.mu_ms;
  if cert.Certificate.kmax < 0 then
    fail "premise kmax = %d is negative" cert.Certificate.kmax
  else begin
    let app = problem.Problem.app in
    let threshold = Sfp.max_admissible_failure app in
    let budget = Bound.admissible_budget ~kmax:cert.Certificate.kmax app in
    if not (feq_rel cert.Certificate.threshold threshold) then
      fail "premise threshold %.17g differs from the re-derived %.17g"
        cert.Certificate.threshold threshold;
    if not (feq_rel cert.Certificate.budget budget) then
      fail "premise budget %.17g differs from the re-derived %.17g"
        cert.Certificate.budget budget
  end;
  let n = Problem.n_processes problem and m = Problem.n_library problem in
  let shaped name len = function
    | arr when Array.length arr = len -> ()
    | arr -> fail "%s has %d entries for %d processes" name (Array.length arr) len
  in
  shaped "min_wcets" n cert.Certificate.min_wcets;
  shaped "task_min_length" n cert.Certificate.task_min_length;
  shaped "task_cheapest" n cert.Certificate.task_cheapest;
  if Array.length cert.Certificate.kneed <> n then
    fail "kneed has %d entries for %d processes"
      (Array.length cert.Certificate.kneed) n
  else
    Array.iteri
      (fun proc rows ->
        if Array.length rows <> m then
          fail "kneed.(%d) has %d rows for a library of %d" proc
            (Array.length rows) m
        else
          Array.iteri
            (fun node levels ->
              if Array.length levels <> Problem.levels problem node then
                fail "kneed.(%d).(%d) has %d levels; the node offers %d" proc
                  node (Array.length levels) (Problem.levels problem node))
            rows)
      cert.Certificate.kneed;
  List.rev !acc

(* Re-derive the whole analysis under the certificate's premises.  The
   bounds and verdict rules both compare against this. *)
let rederive subject =
  let cert = certificate_exn subject in
  Preflight.run_with ~kmax:(max 0 cert.Certificate.kmax)
    ~reexec:cert.Certificate.reexec subject.Subject.problem

(* analyze/bounds: every recorded table and aggregate bound equals the
   re-derived one — kneed exactly, floats up to the audit slop. *)
let check_bounds subject =
  let rule = "analyze/bounds" in
  let cert = certificate_exn subject in
  let fresh = rederive subject in
  let acc = ref [] in
  let fail ?loc fmt =
    Printf.ksprintf (fun d -> acc := D.error ?loc ~rule "%s" d :: !acc) fmt
  in
  let per_task name claimed derived =
    if Array.length claimed = Array.length derived then
      Array.iteri
        (fun proc v ->
          if not (feq v derived.(proc)) then
            fail ~loc:(D.Process proc) "%s %g differs from the re-derived %g"
              name v derived.(proc))
        claimed
  in
  per_task "min_wcet_ms" cert.Certificate.min_wcets fresh.Preflight.min_wcets;
  per_task "min_length_ms" cert.Certificate.task_min_length
    fresh.Preflight.task_min_length;
  per_task "cheapest_cost" cert.Certificate.task_cheapest
    fresh.Preflight.task_cheapest;
  if
    Array.length cert.Certificate.kneed
    = Array.length fresh.Preflight.kneed
    && Array.for_all2
         (fun a b -> Array.length a = Array.length b)
         cert.Certificate.kneed fresh.Preflight.kneed
  then
    Array.iteri
      (fun proc rows ->
        Array.iteri
          (fun node levels ->
            let derived = fresh.Preflight.kneed.(proc).(node) in
            if Array.length levels = Array.length derived then
              Array.iteri
                (fun l k ->
                  if k <> derived.(l) then
                    fail ~loc:(D.Process proc)
                      "kneed.(%d).(%d).(%d) = %d differs from the re-derived \
                       %d"
                      proc node l k derived.(l))
                levels)
          rows)
      cert.Certificate.kneed;
  if not (feq cert.Certificate.critical_path_ms fresh.Preflight.critical_path_ms)
  then
    fail "critical path %g ms differs from the re-derived %g ms"
      cert.Certificate.critical_path_ms fresh.Preflight.critical_path_ms;
  if cert.Certificate.critical_path <> fresh.Preflight.critical_path then
    fail "critical path [%s] differs from the re-derived [%s]"
      (String.concat ";"
         (List.map string_of_int cert.Certificate.critical_path))
      (String.concat ";"
         (List.map string_of_int fresh.Preflight.critical_path));
  if not (feq cert.Certificate.total_work_ms fresh.Preflight.total_work_ms)
  then
    fail "total work %g ms differs from the re-derived %g ms"
      cert.Certificate.total_work_ms fresh.Preflight.total_work_ms;
  if not (feq cert.Certificate.capacity_ms fresh.Preflight.capacity_ms) then
    fail "capacity %g ms differs from the re-derived %g ms"
      cert.Certificate.capacity_ms fresh.Preflight.capacity_ms;
  if
    not
      (feq cert.Certificate.cost_lower_bound fresh.Preflight.cost_lower_bound)
  then
    fail "cost lower bound %g differs from the re-derived %g"
      cert.Certificate.cost_lower_bound fresh.Preflight.cost_lower_bound;
  if
    not
      (feq cert.Certificate.sfp_cost_lower_bound
         fresh.Preflight.sfp_cost_lower_bound)
  then
    fail "SFP cost lower bound %g differs from the re-derived %g"
      cert.Certificate.sfp_cost_lower_bound
      fresh.Preflight.sfp_cost_lower_bound;
  List.rev !acc

let witness_key (w : Preflight.witness) =
  match w with
  | Preflight.Task_wcet { proc; _ } -> ("task-wcet", proc)
  | Preflight.Task_slack { proc; _ } -> ("task-slack", proc)
  | Preflight.Task_unreliable { proc } -> ("task-unreliable", proc)
  | Preflight.Critical_path _ -> ("critical-path", -1)
  | Preflight.Total_work _ -> ("total-work", -1)

let witness_agrees (a : Preflight.witness) (b : Preflight.witness) =
  match (a, b) with
  | ( Preflight.Task_wcet { min_wcet_ms = x; _ },
      Preflight.Task_wcet { min_wcet_ms = y; _ } ) ->
      feq x y
  | ( Preflight.Task_slack { min_length_ms = x; _ },
      Preflight.Task_slack { min_length_ms = y; _ } ) ->
      feq x y
  | Preflight.Task_unreliable _, Preflight.Task_unreliable _ -> true
  | ( Preflight.Critical_path { length_ms = x; path = p },
      Preflight.Critical_path { length_ms = y; path = q } ) ->
      feq x y && p = q
  | ( Preflight.Total_work { work_ms = x; capacity_ms = cx },
      Preflight.Total_work { work_ms = y; capacity_ms = cy } ) ->
      feq x y && feq cx cy
  | _ -> false

(* analyze/verdict: the feasible flag is exactly "no witnesses", and
   the witness list matches the re-derived one — same conditions
   violated, same recorded evidence. *)
let check_verdict subject =
  let rule = "analyze/verdict" in
  let cert = certificate_exn subject in
  let fresh = rederive subject in
  let acc = ref [] in
  let fail fmt =
    Printf.ksprintf (fun d -> acc := D.error ~rule "%s" d :: !acc) fmt
  in
  if cert.Certificate.feasible <> (cert.Certificate.witnesses = []) then
    fail "feasible = %b but the certificate carries %d witnesses"
      cert.Certificate.feasible
      (List.length cert.Certificate.witnesses);
  if cert.Certificate.feasible <> Preflight.feasible fresh then
    fail "verdict feasible = %b; the re-derived analysis says %b"
      cert.Certificate.feasible (Preflight.feasible fresh);
  let claimed = List.map witness_key cert.Certificate.witnesses in
  let derived = List.map witness_key fresh.Preflight.witnesses in
  if List.sort compare claimed <> List.sort compare derived then
    fail "witness set {%s} differs from the re-derived {%s}"
      (String.concat ", " (List.map fst claimed))
      (String.concat ", " (List.map fst derived))
  else
    List.iter
      (fun w ->
        let key = witness_key w in
        match
          List.find_opt
            (fun w' -> witness_key w' = key)
            fresh.Preflight.witnesses
        with
        | Some w' when witness_agrees w w' -> ()
        | Some w' ->
            fail "witness %s: recorded %s; re-derived %s" (fst key)
              (Preflight.witness_to_string subject.Subject.problem w)
              (Preflight.witness_to_string subject.Subject.problem w')
        | None -> ())
      cert.Certificate.witnesses;
  List.rev !acc

(* analyze/lower-bound: the certified cost lower bound is consistent
   internally (deadline-aware >= reliability-only) and never exceeds
   any cost the subject actually achieved — an attached design, the
   recorded single-objective OPT, or any frontier point. *)
let check_lower_bound subject =
  let rule = "analyze/lower-bound" in
  let cert = certificate_exn subject in
  let problem = subject.Subject.problem in
  let lb = cert.Certificate.cost_lower_bound in
  let acc = ref [] in
  let fail fmt =
    Printf.ksprintf (fun d -> acc := D.error ~rule "%s" d :: !acc) fmt
  in
  if
    Float.is_finite lb
    && lb +. Tolerance.cost_eps < cert.Certificate.sfp_cost_lower_bound
  then
    fail
      "deadline-aware lower bound %g is below the reliability-only bound %g"
      lb cert.Certificate.sfp_cost_lower_bound;
  let check_cost what cost =
    if lb -. Tolerance.cost_eps > cost then
      fail "lower bound %g exceeds the %s cost %g" lb what cost
  in
  (match subject.Subject.design with
  | Some design -> check_cost "attached design's" (Design.cost problem design)
  | None -> ());
  (match subject.Subject.opt_cost with
  | Some cost -> check_cost "recorded OPT" cost
  | None -> ());
  (match subject.Subject.archive with
  | Some archive ->
      List.iteri
        (fun index (p : Archive.point) ->
          check_cost (Printf.sprintf "frontier point %d's" index)
            p.Archive.cost)
        (Archive.points archive)
  | None -> ());
  List.rev !acc

let all =
  [ Rule.make ~id:"analyze/schema"
      ~synopsis:"certificate premises and summary describe the subject's \
                 problem"
      ~requires:Rule.Needs_certificate check_schema;
    Rule.make ~id:"analyze/bounds"
      ~synopsis:"every certified table and bound matches a from-scratch \
                 re-derivation"
      ~requires:Rule.Needs_certificate check_bounds;
    Rule.make ~id:"analyze/verdict"
      ~synopsis:"the feasibility verdict and its witnesses are re-derivable"
      ~requires:Rule.Needs_certificate check_verdict;
    Rule.make ~id:"analyze/lower-bound"
      ~synopsis:"the certified cost lower bound never exceeds an achieved \
                 cost"
      ~requires:Rule.Needs_certificate check_lower_bound ]
