(** Offline audit of {!Ftes_analyze.Bnb_certificate} optimality
    certificates.

    Each rule re-derives its claim from the subject's problem under the
    certificate's recorded [kmax] and the subject's slack / bus policies
    — nothing from the certificate feeds its own check.  The incumbent
    is re-validated, re-costed, re-scheduled and re-checked against the
    reliability goal; every prune premise is re-derived through the
    {!Ftes_analyze.Preflight} oracles; and the closed architectures
    plus the premises must tile the architecture lattice exactly once,
    so no part of the design space can have been silently dropped.

    Rule ids: [bnb/schema], [bnb/incumbent], [bnb/prune-premise],
    [bnb/coverage], [bnb/optimal]. *)

val all : Rule.t list
