(* Offline audit of a branch-and-bound optimality certificate.  Every
   premise is re-derived from the subject's problem under the
   certificate's recorded kmax and the subject's slack / bus policies —
   the certificate is never trusted as input to its own check — and the
   premises plus the closed architectures must tile the architecture
   lattice exactly once. *)

module Problem = Ftes_model.Problem
module Design = Ftes_model.Design
module Scheduler = Ftes_sched.Scheduler
module Sfp = Ftes_sfp.Sfp
module Tolerance = Ftes_util.Tolerance
module Preflight = Ftes_analyze.Preflight
module Certificate = Ftes_analyze.Certificate
module Cert = Ftes_analyze.Bnb_certificate
module D = Diagnostic

let audit_eps = 1e-6

let feq a b = a = b || Tolerance.approx ~eps:audit_eps a b

(* Search spaces reach 1e9 and beyond, so the re-derivation is compared
   relatively. *)
let feq_rel a b =
  a = b
  || Float.abs (a -. b) <= audit_eps *. Float.max (Float.abs a) (Float.abs b)

let certificate_exn subject =
  match subject.Subject.bnb_certificate with
  | Some c -> c
  | None -> invalid_arg "verifier: bnb rule run without a certificate"

let rederive subject =
  let cert = certificate_exn subject in
  Preflight.run_with
    ~kmax:(max 0 cert.Cert.kmax)
    ~reexec:(Preflight.reexec_of_slack subject.Subject.slack)
    subject.Subject.problem

(* A premise's prefix must be a strictly increasing member list; its
   open suffix starts right after the last member. *)
let prefix_shape problem prefix =
  let lib = Problem.n_library problem in
  let ok = ref true in
  Array.iteri
    (fun i j ->
      if j < 0 || j >= lib || (i > 0 && j <= prefix.(i - 1)) then ok := false)
    prefix;
  if not !ok then None
  else
    Some (if Array.length prefix = 0 then 0 else prefix.(Array.length prefix - 1) + 1)

let prefix_str prefix =
  "{" ^ String.concat "," (List.map string_of_int (Array.to_list prefix)) ^ "}"

(* Σ over non-empty subsets of the library of (levels product) * m^n —
   [Ftes_core.Exhaustive.search_space], re-derived here because the
   verifier sits below the search engines. *)
let rederive_search_space problem =
  let lib = Problem.n_library problem in
  let n = float_of_int (Problem.n_processes problem) in
  let total = ref 0.0 in
  for mask = 1 to (1 lsl lib) - 1 do
    let levels = ref 1.0 and m = ref 0 in
    for j = 0 to lib - 1 do
      if mask land (1 lsl j) <> 0 then begin
        incr m;
        levels := !levels *. float_of_int (Problem.levels problem j)
      end
    done;
    total := !total +. (!levels *. (float_of_int !m ** n))
  done;
  !total

(* bnb/schema: the summary describes the subject's problem, the
   premises are re-derivable, counters are non-negative and consistent
   with the premise list, and the symmetry-expanded architecture count
   stays within the lattice. *)
let check_schema subject =
  let rule = "bnb/schema" in
  let cert = certificate_exn subject in
  let problem = subject.Subject.problem in
  let lib = Problem.n_library problem in
  let acc = ref [] in
  let fail fmt =
    Printf.ksprintf (fun d -> acc := D.error ~rule "%s" d :: !acc) fmt
  in
  let s = cert.Cert.summary in
  let expect = Certificate.summary_of_problem problem in
  if s.Certificate.n_processes <> expect.Certificate.n_processes then
    fail "summary claims %d processes; the problem has %d"
      s.Certificate.n_processes expect.Certificate.n_processes;
  if s.Certificate.n_library <> expect.Certificate.n_library then
    fail "summary claims a library of %d nodes; the problem has %d"
      s.Certificate.n_library expect.Certificate.n_library;
  if not (feq s.Certificate.deadline_ms expect.Certificate.deadline_ms) then
    fail "summary deadline %g ms; the problem's is %g ms"
      s.Certificate.deadline_ms expect.Certificate.deadline_ms;
  if not (feq s.Certificate.gamma expect.Certificate.gamma) then
    fail "summary gamma %g; the problem's is %g" s.Certificate.gamma
      expect.Certificate.gamma;
  if cert.Cert.kmax < 0 then fail "premise kmax = %d is negative" cert.Cert.kmax;
  if lib <= 30 && not (feq_rel cert.Cert.search_space (rederive_search_space problem))
  then
    fail "search space %.17g differs from the re-derived %.17g"
      cert.Cert.search_space (rederive_search_space problem);
  let k = cert.Cert.counters in
  List.iter
    (fun (name, v) -> if v < 0 then fail "counter %s = %d is negative" name v)
    [ ("expanded", k.Cert.expanded);
      ("closed", k.Cert.closed);
      ("evaluated", k.Cert.evaluated);
      ("pruned_cost", k.Cert.pruned_cost);
      ("pruned_arch", k.Cert.pruned_arch);
      ("pruned_symmetry", k.Cert.pruned_symmetry);
      ("pruned_levels", k.Cert.pruned_levels);
      ("pruned_mappings", k.Cert.pruned_mappings) ];
  let count pred = List.length (List.filter pred cert.Cert.prunes) in
  let n_cost = count (function Cert.Cost_bound _ -> true | _ -> false) in
  let n_arch = count (function Cert.Arch_infeasible _ -> true | _ -> false) in
  let n_sym = count (function Cert.Symmetry _ -> true | _ -> false) in
  if k.Cert.pruned_cost <> n_cost then
    fail "pruned_cost = %d but the certificate carries %d cost-bound premises"
      k.Cert.pruned_cost n_cost;
  if k.Cert.pruned_arch <> n_arch then
    fail
      "pruned_arch = %d but the certificate carries %d infeasibility premises"
      k.Cert.pruned_arch n_arch;
  if k.Cert.pruned_symmetry <> n_sym then
    fail "pruned_symmetry = %d but the certificate carries %d symmetry premises"
      k.Cert.pruned_symmetry n_sym;
  if lib <= 60 then begin
    let subsets = (2.0 ** float_of_int lib) -. 1.0 in
    if
      cert.Cert.represented_subsets +. 0.5 < float_of_int k.Cert.closed
      || cert.Cert.represented_subsets > subsets +. 0.5
    then
      fail
        "represented_subsets = %g is outside [closed = %d, 2^%d - 1 = %g]"
        cert.Cert.represented_subsets k.Cert.closed lib subsets
  end;
  List.rev !acc

(* bnb/incumbent: the claimed optimal design is a valid design of the
   problem, its re-derived cost and schedule length match the claims,
   it meets the deadline and the reliability goal, and the certified
   optimal cost is exactly the incumbent's. *)
let check_incumbent subject =
  let rule = "bnb/incumbent" in
  let cert = certificate_exn subject in
  let problem = subject.Subject.problem in
  let acc = ref [] in
  let fail fmt =
    Printf.ksprintf (fun d -> acc := D.error ~rule "%s" d :: !acc) fmt
  in
  (match cert.Cert.incumbent with
  | None ->
      if Float.is_finite cert.Cert.optimal_cost then
        fail "optimal cost %g is finite but no incumbent is recorded"
          cert.Cert.optimal_cost
  | Some i ->
      if not (Float.is_finite cert.Cert.optimal_cost) then
        fail "an incumbent is recorded but the optimal cost is unbounded";
      if cert.Cert.optimal_cost <> i.Cert.cost then
        fail "optimal cost %g differs from the incumbent's claimed cost %g"
          cert.Cert.optimal_cost i.Cert.cost;
      let candidate =
        { Design.members = i.Cert.members;
          levels = i.Cert.levels;
          reexecs = i.Cert.reexecs;
          mapping = i.Cert.mapping }
      in
      (match Design.validate problem candidate with
      | Error msg -> fail "incumbent is not a valid design: %s" msg
      | Ok () ->
          let cost = Design.cost problem candidate in
          if not (feq cost i.Cert.cost) then
            fail "incumbent cost %g differs from the re-derived %g"
              i.Cert.cost cost;
          let sl =
            Scheduler.schedule_length ~slack:subject.Subject.slack
              ~bus:subject.Subject.bus problem candidate
          in
          if not (feq sl i.Cert.schedule_length_ms) then
            fail "incumbent schedule length %g ms differs from the re-derived \
                  %g ms"
              i.Cert.schedule_length_ms sl;
          let deadline =
            problem.Problem.app.Ftes_model.Application.deadline_ms
          in
          if sl > deadline +. audit_eps then
            fail "incumbent schedule length %g ms misses the deadline %g ms"
              sl deadline;
          if not (Sfp.meets_goal problem candidate) then
            fail "incumbent does not meet the reliability goal"));
  List.rev !acc

(* bnb/prune-premise: every recorded prune is re-derivable — the cost
   bound from [Preflight.completion_cost_lower_bound] with a prune
   reference no better than the proven optimum, the infeasibility
   verdicts from [Preflight.architecture_check], the symmetry skips
   from [Preflight.canonical_nodes]. *)
let check_prune_premises subject =
  let rule = "bnb/prune-premise" in
  let cert = certificate_exn subject in
  let problem = subject.Subject.problem in
  let lib = Problem.n_library problem in
  let fresh = rederive subject in
  let canonical = Preflight.canonical_nodes problem in
  let acc = ref [] in
  let fail fmt =
    Printf.ksprintf (fun d -> acc := D.error ~rule "%s" d :: !acc) fmt
  in
  List.iteri
    (fun index prune ->
      let prefix =
        match prune with
        | Cert.Cost_bound { prefix; _ }
        | Cert.Arch_infeasible { prefix; _ }
        | Cert.Symmetry { prefix; _ } ->
            prefix
      in
      match prefix_shape problem prefix with
      | None ->
          fail "premise %d: prefix %s is not a strictly increasing member \
                list"
            index (prefix_str prefix)
      | Some first_open -> (
          match prune with
          | Cert.Cost_bound { lower_bound; incumbent_cost; _ } ->
              let derived =
                Preflight.completion_cost_lower_bound fresh ~prefix
                  ~first_open
              in
              if not (feq lower_bound derived) then
                fail
                  "premise %d: lower bound %g below %s differs from the \
                   re-derived %g"
                  index lower_bound (prefix_str prefix) derived;
              if not (lower_bound > incumbent_cost) then
                fail
                  "premise %d: lower bound %g does not exceed the prune \
                   reference %g"
                  index lower_bound incumbent_cost;
              if incumbent_cost +. audit_eps < cert.Cert.optimal_cost then
                fail
                  "premise %d: prune reference %g is below the proven \
                   optimum %g"
                  index incumbent_cost cert.Cert.optimal_cost
          | Cert.Arch_infeasible { subtree; verdict; _ } -> (
              let members =
                if subtree then
                  Array.append prefix
                    (Array.init (lib - first_open) (fun i -> first_open + i))
                else prefix
              in
              if Array.length members = 0 then
                fail "premise %d: infeasibility claimed for an empty \
                      architecture"
                  index
              else
                match
                  (Preflight.architecture_check fresh ~members, verdict)
                with
                | `Unreliable p, Cert.Unreliable q when p = q -> ()
                | `Deadline lb, Cert.Deadline lb' when feq lb lb' -> ()
                | `Feasible, _ ->
                    fail
                      "premise %d: architecture %s re-derives as feasible"
                      index (prefix_str members)
                | `Unreliable p, _ ->
                    fail
                      "premise %d: verdict differs — re-derived: process %d \
                       has no admissible assignment"
                      index p
                | `Deadline lb, _ ->
                    fail
                      "premise %d: verdict differs — re-derived: length \
                       lower bound %g ms"
                      index lb)
          | Cert.Symmetry { skipped; canonical = twin; _ } ->
              if skipped < first_open || skipped >= lib then
                fail "premise %d: skipped node %d is not an extension of %s"
                  index skipped (prefix_str prefix)
              else if twin < 0 || twin >= skipped then
                fail "premise %d: node %d is no smaller twin of %d" index
                  twin skipped
              else begin
                if canonical.(twin) <> canonical.(skipped) then
                  fail
                    "premise %d: nodes %d and %d are not interchangeable"
                    index twin skipped;
                if Array.exists (fun x -> x = twin) prefix then
                  fail
                    "premise %d: twin %d is already a member of %s"
                    index twin (prefix_str prefix)
              end))
    cert.Cert.prunes;
  List.rev !acc

(* bnb/coverage: the closed architectures and the prune premises tile
   the architecture lattice exactly once — subtree prunes stand for
   every extension of their prefix, symmetry skips for the subtree of
   the skipped edge, infeasible leaves for themselves. *)
let check_coverage subject =
  let rule = "bnb/coverage" in
  let cert = certificate_exn subject in
  let problem = subject.Subject.problem in
  let lib = Problem.n_library problem in
  if lib > 60 then []
  else begin
    let pow2 e = 2.0 ** float_of_int e in
    let bad = ref false in
    let covered = ref (float_of_int cert.Cert.counters.Cert.closed) in
    List.iter
      (fun prune ->
        let prefix =
          match prune with
          | Cert.Cost_bound { prefix; _ }
          | Cert.Arch_infeasible { prefix; _ }
          | Cert.Symmetry { prefix; _ } ->
              prefix
        in
        match prefix_shape problem prefix with
        | None -> bad := true
        | Some first_open -> (
            match prune with
            | Cert.Cost_bound _ | Cert.Arch_infeasible { subtree = true; _ }
              ->
                let root = Array.length prefix = 0 in
                covered :=
                  !covered +. pow2 (lib - first_open)
                  -. (if root then 1.0 else 0.0)
            | Cert.Arch_infeasible { subtree = false; _ } ->
                covered := !covered +. 1.0
            | Cert.Symmetry { skipped; _ } ->
                if skipped < 0 || skipped >= lib then bad := true
                else covered := !covered +. pow2 (lib - 1 - skipped)))
      cert.Cert.prunes;
    if !bad then
      [ D.error ~rule
          "a premise prefix is malformed; the lattice coverage cannot be \
           accounted" ]
    else begin
      let lattice = pow2 lib -. 1.0 in
      if Float.abs (!covered -. lattice) > 0.5 then
        [ D.error ~rule
            "closed architectures and premises cover %g architectures; the \
             lattice holds %g"
            !covered lattice ]
      else []
    end
  end

(* bnb/optimal: the cost chain is ordered — the fresh pre-flight lower
   bound never exceeds the proven optimum, which never exceeds the
   heuristic seed. *)
let check_optimal subject =
  let rule = "bnb/optimal" in
  let cert = certificate_exn subject in
  let fresh = rederive subject in
  let acc = ref [] in
  let fail fmt =
    Printf.ksprintf (fun d -> acc := D.error ~rule "%s" d :: !acc) fmt
  in
  if cert.Cert.optimal_cost > cert.Cert.heuristic_cost +. audit_eps then
    fail
      "proven optimum %g exceeds the heuristic seed %g — the search can \
       never end worse than its incumbent seed"
      cert.Cert.optimal_cost cert.Cert.heuristic_cost;
  if
    Float.is_finite cert.Cert.optimal_cost
    && fresh.Preflight.cost_lower_bound > cert.Cert.optimal_cost +. audit_eps
  then
    fail "pre-flight cost lower bound %g exceeds the proven optimum %g"
      fresh.Preflight.cost_lower_bound cert.Cert.optimal_cost;
  List.rev !acc

let all =
  [ Rule.make ~id:"bnb/schema"
      ~synopsis:"certificate summary, counters and premise list are shaped \
                 by the subject's problem"
      ~requires:Rule.Needs_bnb_certificate check_schema;
    Rule.make ~id:"bnb/incumbent"
      ~synopsis:"the claimed optimal design re-derives as feasible at the \
                 claimed cost and length"
      ~requires:Rule.Needs_bnb_certificate check_incumbent;
    Rule.make ~id:"bnb/prune-premise"
      ~synopsis:"every prune premise is re-derivable from the problem"
      ~requires:Rule.Needs_bnb_certificate check_prune_premises;
    Rule.make ~id:"bnb/coverage"
      ~synopsis:"closed architectures and premises tile the architecture \
                 lattice exactly once"
      ~requires:Rule.Needs_bnb_certificate check_coverage;
    Rule.make ~id:"bnb/optimal"
      ~synopsis:"lower bound <= proven optimum <= heuristic seed"
      ~requires:Rule.Needs_bnb_certificate check_optimal ]
