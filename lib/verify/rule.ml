type requires =
  | Problem_only
  | Needs_design
  | Needs_schedule
  | Needs_sfp_tables
  | Needs_metrics
  | Needs_archive
  | Needs_certificate
  | Needs_bnb_certificate
  | Needs_responses
  | Needs_campaign

type t = {
  id : string;
  synopsis : string;
  requires : requires;
  check : Subject.t -> Diagnostic.t list;
}

let make ~id ~synopsis ~requires check = { id; synopsis; requires; check }

let applicable subject t =
  match t.requires with
  | Problem_only -> true
  | Needs_design -> subject.Subject.design <> None
  | Needs_schedule ->
      subject.Subject.design <> None && subject.Subject.schedule <> None
  | Needs_sfp_tables ->
      subject.Subject.design <> None && subject.Subject.sfp_tables <> None
  | Needs_metrics -> subject.Subject.metrics <> None
  | Needs_archive -> subject.Subject.archive <> None
  | Needs_certificate -> subject.Subject.certificate <> None
  | Needs_bnb_certificate -> subject.Subject.bnb_certificate <> None
  | Needs_responses -> subject.Subject.responses <> None
  | Needs_campaign -> subject.Subject.campaign <> None
